#include "vcu/partitioner.hpp"

#include <gtest/gtest.h>

#include "workload/apps.hpp"

namespace vdap::vcu {
namespace {

using workload::AppDag;
using workload::TaskSpec;

TEST(Partitioner, DivisibleClasses) {
  EXPECT_TRUE(divisible(hw::TaskClass::kCnnInference));
  EXPECT_TRUE(divisible(hw::TaskClass::kVisionClassic));
  EXPECT_TRUE(divisible(hw::TaskClass::kPreprocess));
  EXPECT_TRUE(divisible(hw::TaskClass::kCodec));
  EXPECT_FALSE(divisible(hw::TaskClass::kGeneric));
  EXPECT_FALSE(divisible(hw::TaskClass::kCnnTraining));
  EXPECT_FALSE(divisible(hw::TaskClass::kDbQuery));
}

TEST(Partitioner, SmallTasksPassThrough) {
  AppDag dag("d", workload::ServiceCategory::kAdas, {});
  dag.add_task({"small", hw::TaskClass::kCnnInference, 1.0, 100, 10, true});
  AppDag out = partition(dag, {2.0, 4, 0.002});
  EXPECT_EQ(out.size(), 1);
  EXPECT_EQ(out.task(0).name, "small");
}

TEST(Partitioner, LargeTaskSplitsIntoChunksPlusMerge) {
  AppDag dag("d", workload::ServiceCategory::kAdas, {});
  dag.add_task({"big", hw::TaskClass::kCnnInference, 6.0, 1200, 48, true});
  AppDag out = partition(dag, {2.0, 4, 0.002});
  // ceil(6/2) = 3 chunks + merge.
  ASSERT_EQ(out.size(), 4);
  double chunk_sum = 0.0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(out.task(i).name, "big#" + std::to_string(i));
    EXPECT_DOUBLE_EQ(out.task(i).gflop, 2.0);
    EXPECT_EQ(out.task(i).input_bytes, 400u);
    chunk_sum += out.task(i).gflop;
  }
  EXPECT_DOUBLE_EQ(chunk_sum, 6.0);  // compute conserved
  EXPECT_EQ(out.task(3).name, "big#merge");
  EXPECT_EQ(out.predecessors(3).size(), 3u);
  EXPECT_TRUE(out.validate());
}

TEST(Partitioner, FanoutIsCapped) {
  AppDag dag("d", workload::ServiceCategory::kAdas, {});
  dag.add_task({"huge", hw::TaskClass::kCodec, 100.0, 1000, 10, true});
  AppDag out = partition(dag, {2.0, 4, 0.002});
  EXPECT_EQ(out.size(), 5);  // 4 chunks (capped) + merge
  EXPECT_DOUBLE_EQ(out.task(0).gflop, 25.0);
}

TEST(Partitioner, NonOffloadableTasksNotSplit) {
  AppDag dag("d", workload::ServiceCategory::kAdas, {});
  dag.add_task({"pinned", hw::TaskClass::kCnnInference, 50.0, 1000, 10,
                /*offloadable=*/false});
  AppDag out = partition(dag);
  EXPECT_EQ(out.size(), 1);
}

TEST(Partitioner, PrecedencePreservedAcrossSplit) {
  AppDag dag("d", workload::ServiceCategory::kThirdParty, {});
  int a = dag.add_task({"a", hw::TaskClass::kGeneric, 0.1, 10, 10, true});
  int b = dag.add_task({"b", hw::TaskClass::kCnnInference, 6.0, 600, 30, true});
  int c = dag.add_task({"c", hw::TaskClass::kGeneric, 0.1, 10, 10, true});
  dag.add_edge(a, b);
  dag.add_edge(b, c);
  AppDag out = partition(dag, {2.0, 4, 0.002});
  // a + 3 chunks + merge + c = 6 tasks.
  ASSERT_EQ(out.size(), 6);
  EXPECT_TRUE(out.validate());
  // a precedes every chunk; c follows the merge.
  auto order = out.topo_order();
  EXPECT_EQ(out.task(order.front()).name, "a");
  EXPECT_EQ(out.task(order.back()).name, "c");
  // Each chunk has exactly one predecessor (a) and one successor (merge).
  for (int i = 0; i < out.size(); ++i) {
    if (out.task(i).name.find("b#") == 0 &&
        out.task(i).name.find("merge") == std::string::npos) {
      EXPECT_EQ(out.predecessors(i).size(), 1u);
      EXPECT_EQ(out.successors(i).size(), 1u);
    }
  }
}

TEST(Partitioner, QosAndIdentityPreserved) {
  AppDag dag = workload::apps::pedestrian_detection();
  AppDag out = partition(dag, {1.0, 4, 0.002});
  EXPECT_EQ(out.name(), dag.name());
  EXPECT_EQ(out.category(), dag.category());
  EXPECT_EQ(out.qos().deadline, dag.qos().deadline);
  EXPECT_TRUE(out.validate());
  // The 5-GFLOP pedestrian CNN splits under a 1-GFLOP chunk policy.
  EXPECT_GT(out.size(), dag.size());
}

TEST(Partitioner, CriticalPathShrinks) {
  // Splitting a large serial task across devices shortens the compute
  // critical path — the point of fine-grained division.
  AppDag dag("d", workload::ServiceCategory::kThirdParty, {});
  dag.add_task({"big", hw::TaskClass::kCnnInference, 8.0, 800, 10, true});
  AppDag out = partition(dag, {2.0, 4, 0.002});
  EXPECT_LT(out.critical_path_gflop(), dag.critical_path_gflop());
  EXPECT_NEAR(out.total_gflop(), dag.total_gflop(), 0.01);
}

TEST(Partitioner, AllPackagedAppsSurvivePartitioning) {
  for (const AppDag& dag : workload::apps::all()) {
    AppDag out = partition(dag, {0.5, 4, 0.002});
    std::string why;
    EXPECT_TRUE(out.validate(&why)) << dag.name() << ": " << why;
    EXPECT_NEAR(out.total_gflop(), dag.total_gflop(),
                dag.total_gflop() * 0.05 + 0.05)
        << dag.name();
  }
}

}  // namespace
}  // namespace vdap::vcu
