#include "core/offload.hpp"

#include <gtest/gtest.h>

#include "hw/catalog.hpp"
#include "workload/apps.hpp"

namespace vdap::core {
namespace {

class OffloadTest : public ::testing::Test {
 protected:
  OffloadTest()
      : cpu(sim, hw::catalog::core_i7_6700()),
        gpu(sim, hw::catalog::jetson_tx2_maxp()),
        rsu(sim, hw::catalog::rsu_edge_server()),
        cloud(sim, hw::catalog::cloud_server()),
        topo(sim),
        dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>()),
        mgr(sim, dsf, topo),
        planner(mgr) {
    reg.join(&cpu);
    reg.join(&gpu);
    mgr.set_remote_device(net::Tier::kRsuEdge, &rsu);
    mgr.set_remote_device(net::Tier::kCloud, &cloud);
  }

  sim::Simulator sim;
  hw::ComputeDevice cpu, gpu, rsu, cloud;
  vcu::ResourceRegistry reg;
  net::Topology topo;
  vcu::Dsf dsf;
  edgeos::ElasticManager mgr;
  OffloadPlanner planner;
};

TEST_F(OffloadTest, WholeDagServiceOnePipelinePerTier) {
  auto dag = workload::apps::inception_v3();
  auto svc = whole_dag_service(
      dag, {net::Tier::kOnBoard, net::Tier::kCloud});
  ASSERT_EQ(svc.pipelines.size(), 2u);
  EXPECT_EQ(svc.pipelines[0].name, "on-board");
  EXPECT_EQ(svc.pipelines[1].name, "cloud");
  EXPECT_TRUE(svc.validate());
}

TEST_F(OffloadTest, PinnedTasksStayHomeInWholeDagService) {
  auto svc = whole_dag_service(workload::apps::pedestrian_detection(),
                               {net::Tier::kCloud});
  EXPECT_EQ(svc.pipelines[0].placement[2], net::Tier::kOnBoard);
  EXPECT_TRUE(svc.validate());
}

TEST_F(OffloadTest, LightTaskStaysOnBoard) {
  // Lane detection: tiny compute, tight deadline — network round trips
  // never pay off.
  auto d = planner.decide(workload::apps::lane_detection());
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.tier, net::Tier::kOnBoard);
}

TEST_F(OffloadTest, HeavyTaskOffloadsWhenVehicleBusy) {
  for (int i = 0; i < 40; ++i) {
    cpu.submit({hw::TaskClass::kCnnInference, 74.0, 0, nullptr});
    gpu.submit({hw::TaskClass::kCnnInference, 99.0, 0, nullptr});
  }
  auto dag = workload::apps::vehicle_detection_tf();  // 27.9 GFLOP
  auto d = planner.decide(dag);
  ASSERT_TRUE(d.feasible);
  EXPECT_NE(d.tier, net::Tier::kOnBoard);
}

TEST_F(OffloadTest, EstimatePerTierOrdering) {
  // For a compute-heavy, small-payload task on an idle vehicle the RSU
  // should beat the cloud (same DSRC hop, less backhaul).
  auto dag = workload::apps::inception_v3();
  auto rsu_est = planner.estimate(dag, net::Tier::kRsuEdge);
  auto cloud_est = planner.estimate(dag, net::Tier::kCloud);
  ASSERT_TRUE(rsu_est && cloud_est);
  EXPECT_LT(*rsu_est, *cloud_est);
}

TEST_F(OffloadTest, InfeasibleTierReportsNullopt) {
  topo.set_available(net::Tier::kCloud, false);
  EXPECT_FALSE(
      planner.estimate(workload::apps::inception_v3(), net::Tier::kCloud)
          .has_value());
}

TEST_F(OffloadTest, DegradedCellularFlipsCloudDecision) {
  // Make on-board busy so a remote tier wins, then kill the cellular
  // quality: the decision should abandon cloud/base-station tiers.
  for (int i = 0; i < 40; ++i) {
    cpu.submit({hw::TaskClass::kCnnInference, 74.0, 0, nullptr});
    gpu.submit({hw::TaskClass::kCnnInference, 99.0, 0, nullptr});
  }
  topo.set_available(net::Tier::kRsuEdge, false);  // only cellular tiers
  auto dag = workload::apps::vehicle_detection_tf();
  dag.set_qos({0, 7, 0});  // compare destinations without a deadline gate
  auto before = planner.decide(dag);
  ASSERT_TRUE(before.feasible);
  EXPECT_TRUE(before.tier == net::Tier::kCloud ||
              before.tier == net::Tier::kBaseStationEdge);
  // Deep-fringe cellular: effectively no uplink. The planner must fall
  // back to the (busy) vehicle rather than ship frames into a black hole.
  topo.apply_cellular_condition(0.01, 0.8);
  auto after = planner.decide(dag);
  ASSERT_TRUE(after.feasible);
  EXPECT_EQ(after.tier, net::Tier::kOnBoard);
}

TEST_F(OffloadTest, RunExecutesAtDecidedTier) {
  edgeos::ServiceRunReport rep;
  planner.run(workload::apps::lane_detection(),
              [&](const edgeos::ServiceRunReport& r) { rep = r; });
  sim.run_until(sim::seconds(10));
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.pipeline, "on-board");
}

TEST_F(OffloadTest, DecisionCarriesEstimates) {
  auto d = planner.decide(workload::apps::inception_v3());
  ASSERT_TRUE(d.feasible);
  EXPECT_GT(d.est_latency, 0);
  EXPECT_GE(d.onboard_energy_j, 0.0);
}

}  // namespace
}  // namespace vdap::core
