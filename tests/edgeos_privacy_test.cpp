#include "edgeos/privacy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vdap::edgeos {
namespace {

TEST(Pseudonyms, StableWithinEpoch) {
  PseudonymManager pm(0xDEADBEEF, sim::minutes(5));
  EXPECT_EQ(pm.pseudonym(0), pm.pseudonym(sim::minutes(4)));
  EXPECT_EQ(pm.epoch(0), pm.epoch(sim::minutes(4)));
  EXPECT_FALSE(pm.rotated_between(0, sim::minutes(4)));
}

TEST(Pseudonyms, RotateAcrossEpochs) {
  PseudonymManager pm(0xDEADBEEF, sim::minutes(5));
  EXPECT_NE(pm.pseudonym(0), pm.pseudonym(sim::minutes(6)));
  EXPECT_TRUE(pm.rotated_between(0, sim::minutes(6)));
}

TEST(Pseudonyms, ManyEpochsAllDistinct) {
  PseudonymManager pm(42, sim::minutes(5));
  std::set<std::string> seen;
  for (int e = 0; e < 100; ++e) {
    seen.insert(pm.pseudonym(sim::minutes(5) * e));
  }
  EXPECT_EQ(seen.size(), 100u);  // unlinkable across rotations
}

TEST(Pseudonyms, DifferentVehiclesNeverCollide) {
  PseudonymManager a(1, sim::minutes(5));
  PseudonymManager b(2, sim::minutes(5));
  for (int e = 0; e < 20; ++e) {
    EXPECT_NE(a.pseudonym(sim::minutes(5) * e),
              b.pseudonym(sim::minutes(5) * e));
  }
}

TEST(Pseudonyms, RejectsNonPositiveRotation) {
  EXPECT_THROW(PseudonymManager(1, 0), std::invalid_argument);
}

TEST(LocationFuzzer, BoundedError) {
  LocationFuzzer fuzzer(500.0, 100.0);
  util::RngStream rng(7);
  GeoPoint detroit{42.3314, -83.0458};
  for (int i = 0; i < 200; ++i) {
    GeoPoint fuzzed = fuzzer.fuzz(detroit, rng);
    EXPECT_LE(distance_m(detroit, fuzzed), fuzzer.max_error_m() + 1.0);
  }
}

TEST(LocationFuzzer, HidesExactAddress) {
  // Two nearby homes in the same cell fuzz to points whose difference says
  // nothing about which home the vehicle was at: same grid center, random
  // jitter.
  LocationFuzzer fuzzer(500.0, 100.0);
  util::RngStream rng(7);
  GeoPoint home_a{42.33140, -83.04580};
  GeoPoint home_b{42.33150, -83.04560};  // ~20 m away, same cell
  GeoPoint fa = fuzzer.fuzz(home_a, rng);
  GeoPoint fb = fuzzer.fuzz(home_b, rng);
  // Both land within the same cell's fuzz radius of each other's outputs.
  EXPECT_LE(distance_m(fa, fb), 2.0 * fuzzer.max_error_m());
  // And neither equals the raw input.
  EXPECT_GT(distance_m(home_a, fa), 1.0);
}

TEST(LocationFuzzer, FuzzIsNondeterministicPerCall) {
  LocationFuzzer fuzzer(500.0, 100.0);
  util::RngStream rng(7);
  GeoPoint p{42.3314, -83.0458};
  GeoPoint f1 = fuzzer.fuzz(p, rng);
  GeoPoint f2 = fuzzer.fuzz(p, rng);
  EXPECT_GT(distance_m(f1, f2), 0.0);  // fresh jitter each share
}

TEST(DistanceM, KnownDistances) {
  GeoPoint a{42.0, -83.0};
  GeoPoint b{42.0, -83.0};
  EXPECT_NEAR(distance_m(a, b), 0.0, 1e-9);
  GeoPoint north{42.01, -83.0};  // 0.01 deg lat ~ 1113 m
  EXPECT_NEAR(distance_m(a, north), 1113.2, 5.0);
}

}  // namespace
}  // namespace vdap::edgeos
