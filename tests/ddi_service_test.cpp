#include "ddi/ddi.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace vdap::ddi {
namespace {

namespace fs = std::filesystem;

class DdiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vdap-ddi-" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DdiOptions opts() {
    DdiOptions o;
    o.disk.dir = dir_.string();
    o.flush_period = sim::seconds(5);
    o.staging_ttl = sim::seconds(10);
    return o;
  }

  static DataRecord rec(sim::SimTime ts, double speed = 10.0) {
    DataRecord r;
    r.stream = "vehicle/obd";
    r.timestamp = ts;
    r.lat = 42.0;
    r.lon = -83.0;
    r.payload["speed_mps"] = speed;
    return r;
  }

  fs::path dir_;
};

TEST_F(DdiTest, UploadThenDownloadSeesStagedData) {
  sim::Simulator sim;
  Ddi ddi(sim, opts());
  ddi.upload(rec(sim::seconds(1)));
  ddi.upload(rec(sim::seconds(2)));
  auto resp = ddi.download_now({"vehicle/obd", 0, sim::seconds(10)});
  EXPECT_EQ(resp.records.size(), 2u);
  EXPECT_FALSE(resp.from_cache);
  EXPECT_EQ(ddi.uploads(), 2u);
  EXPECT_EQ(ddi.downloads(), 1u);
}

TEST_F(DdiTest, RepeatQueryHitsCacheWithLowerLatency) {
  sim::Simulator sim;
  Ddi ddi(sim, opts());
  ddi.upload(rec(sim::seconds(1)));
  DownloadRequest q{"vehicle/obd", 0, sim::seconds(10)};
  auto cold = ddi.download_now(q);
  auto warm = ddi.download_now(q);
  EXPECT_FALSE(cold.from_cache);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_LT(warm.latency, cold.latency);
  EXPECT_EQ(warm.records.size(), cold.records.size());
  EXPECT_EQ(warm.records[0].payload.get_double("speed_mps"), 10.0);
}

TEST_F(DdiTest, WriteBackMovesStagedRecordsToDisk) {
  sim::Simulator sim;
  Ddi ddi(sim, opts());
  ddi.upload(rec(sim::seconds(0)));
  EXPECT_EQ(ddi.staged_count(), 1u);
  EXPECT_EQ(ddi.disk().record_count(), 0u);
  // After staging TTL + a flush period, the record is on disk.
  sim.run_until(sim::seconds(16));
  EXPECT_EQ(ddi.staged_count(), 0u);
  EXPECT_EQ(ddi.disk().record_count(), 1u);
  // Still queryable.
  auto resp = ddi.download_now({"vehicle/obd", 0, sim::seconds(10)});
  EXPECT_EQ(resp.records.size(), 1u);
}

TEST_F(DdiTest, QueryMergesDiskAndStaging) {
  sim::Simulator sim;
  Ddi ddi(sim, opts());
  ddi.upload(rec(sim::seconds(1)));
  sim.run_until(sim::seconds(16));  // first record flushed to disk
  ddi.upload(rec(sim::seconds(17)));
  auto resp = ddi.download_now({"vehicle/obd", 0, sim::seconds(20)});
  ASSERT_EQ(resp.records.size(), 2u);
  EXPECT_EQ(resp.records[0].timestamp, sim::seconds(1));   // disk
  EXPECT_EQ(resp.records[1].timestamp, sim::seconds(17));  // staged
}

TEST_F(DdiTest, AsyncDownloadDeliversAfterSimulatedLatency) {
  sim::Simulator sim;
  Ddi ddi(sim, opts());
  ddi.upload(rec(sim::seconds(1)));
  DownloadResponse got;
  sim::SimTime delivered_at = -1;
  ddi.download({"vehicle/obd", 0, sim::seconds(10)},
               [&](const DownloadResponse& r) {
                 got = r;
                 delivered_at = sim.now();
               });
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(got.records.size(), 1u);
  EXPECT_EQ(delivered_at, opts().disk_latency);  // cold = disk path
}

TEST_F(DdiTest, GeoKeywordFiltering) {
  sim::Simulator sim;
  Ddi ddi(sim, opts());
  DataRecord a = rec(sim::seconds(1));
  DataRecord b = rec(sim::seconds(2));
  b.lat = 43.0;
  ddi.upload(a);
  ddi.upload(b);
  DownloadRequest q{"vehicle/obd", 0, sim::seconds(10), true,
                    41.9, 42.1, -83.1, -82.9};
  auto resp = ddi.download_now(q);
  ASSERT_EQ(resp.records.size(), 1u);
  EXPECT_EQ(resp.records[0].timestamp, sim::seconds(1));
}

TEST_F(DdiTest, CollectorsFeedTheIntegrator) {
  sim::Simulator sim(11);
  Ddi ddi(sim, opts());
  ObdCollector obd(sim, [&](DataRecord r) { ddi.upload(std::move(r)); });
  WeatherFeed weather(sim, [&](DataRecord r) { ddi.upload(std::move(r)); });
  TrafficFeed traffic(sim, [&](DataRecord r) { ddi.upload(std::move(r)); });
  SocialFeed social(sim, [&](DataRecord r) { ddi.upload(std::move(r)); },
                    600.0);  // one event per ~6 s
  obd.start();
  weather.start();
  traffic.start();
  social.start();
  sim.run_until(sim::minutes(2));
  // 10 Hz OBD for 120 s.
  EXPECT_NEAR(static_cast<double>(obd.emitted()), 1200.0, 5.0);
  EXPECT_GE(weather.emitted(), 2u);
  EXPECT_GE(traffic.emitted(), 3u);
  EXPECT_GE(social.emitted(), 5u);
  // Everything is queryable through the service layer.
  auto obd_resp = ddi.download_now({"vehicle/obd", 0, sim::minutes(2)});
  EXPECT_EQ(obd_resp.records.size(), obd.emitted());
  auto wx = ddi.download_now({"env/weather", 0, sim::minutes(2)});
  EXPECT_EQ(wx.records.size(), weather.emitted());
  for (const auto& r : obd_resp.records) {
    EXPECT_GE(r.payload.get_double("speed_mps"), 0.0);
    EXPECT_GT(r.payload.get_double("rpm"), 0.0);
  }
}

TEST_F(DdiTest, ObdDynamicsArePlausible) {
  sim::Simulator sim(3);
  std::vector<DataRecord> records;
  ObdCollector obd(sim, [&](DataRecord r) { records.push_back(std::move(r)); });
  obd.set_target_speed(25.0);
  obd.start();
  sim.run_until(sim::minutes(1));
  ASSERT_GT(records.size(), 100u);
  double max_speed = 0.0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    double ds = records[i].payload.get_double("speed_mps") -
                records[i - 1].payload.get_double("speed_mps");
    EXPECT_LT(std::abs(ds), 1.0);  // bounded accel per 100 ms
    max_speed =
        std::max(max_speed, records[i].payload.get_double("speed_mps"));
  }
  EXPECT_GT(max_speed, 5.0);  // it actually drove
  // Position moved.
  EXPECT_GT(records.back().payload.get_double("odometer_m"), 100.0);
}

TEST_F(DdiTest, WeatherTransitionsAreValid) {
  sim::Simulator sim(7);
  std::set<std::string> seen;
  WeatherFeed weather(
      sim,
      [&](DataRecord r) { seen.insert(r.payload.get_string("condition")); },
      sim::seconds(10));
  weather.start();
  sim.run_until(sim::minutes(60));
  for (const auto& c : seen) {
    EXPECT_TRUE(c == "clear" || c == "rain" || c == "snow") << c;
  }
  EXPECT_GE(seen.size(), 2u);  // an hour sees at least one transition
}

TEST_F(DdiTest, SurvivesReopenAcrossSessions) {
  sim::Simulator sim;
  {
    Ddi ddi(sim, opts());
    ddi.upload(rec(sim::seconds(1)));
    ddi.flush_staged(/*force_all=*/true);
  }
  Ddi ddi2(sim, opts());
  auto resp = ddi2.download_now({"vehicle/obd", 0, sim::seconds(10)});
  EXPECT_EQ(resp.records.size(), 1u);
}

}  // namespace
}  // namespace vdap::ddi
