// SLO evaluation (telemetry/analysis/slo.hpp) and the closed health loop
// (core/health.hpp): windowed breach/recover semantics in isolation, then
// the ISSUE acceptance scenario — an injected latency fault produces a
// breach event naming the impaired tier and ElasticManager demonstrably
// switches pipeline variant in response.
#include <gtest/gtest.h>

#include <optional>

#include "core/platform.hpp"
#include "telemetry/analysis/slo.hpp"
#include "telemetry/session.hpp"
#include "workload/dag.hpp"

namespace vdap {
namespace {

namespace analysis = telemetry::analysis;
using analysis::HealthEvent;
using analysis::HealthEventKind;
using analysis::RunObservation;
using analysis::Severity;
using analysis::SloEvaluator;
using analysis::SloTarget;

SloEvaluator::Options tight_options() {
  SloEvaluator::Options opt;
  opt.window = sim::seconds(1);
  opt.min_samples = 3;
  opt.critical_factor = 2.0;
  return opt;
}

RunObservation obs(sim::SimTime finished, sim::SimDuration latency,
                   bool ok = true, std::string segment = "net",
                   std::string tier = "rsu-edge",
                   std::string service = "svc") {
  RunObservation o;
  o.service = std::move(service);
  o.finished = finished;
  o.latency = latency;
  o.ok = ok;
  o.dominant_segment = std::move(segment);
  o.implicated_tier = std::move(tier);
  return o;
}

TEST(SloEvaluator, EmitsOnlyBreachRecoverTransitions) {
  SloEvaluator ev(tight_options());
  ev.add_target({"svc", sim::msec(100), 0.95, /*min_availability=*/-1.0});

  // Window [0, 1 s): three slow runs. Nothing fires until the boundary.
  for (int i = 0; i < 3; ++i) {
    ev.observe(obs(sim::msec(100 * (i + 1)), sim::msec(150)));
  }
  EXPECT_TRUE(ev.events().empty());
  EXPECT_FALSE(ev.breached("svc"));

  // First observation past the boundary judges the closed window.
  ev.observe(obs(sim::msec(1050), sim::msec(50)));
  ASSERT_EQ(ev.events().size(), 1u);
  const HealthEvent& breach = ev.events()[0];
  EXPECT_EQ(breach.kind, HealthEventKind::kLatencyBreach);
  EXPECT_EQ(breach.severity, Severity::kWarning);  // 150 < 2 x 100
  EXPECT_EQ(breach.at, sim::seconds(1));
  EXPECT_EQ(breach.service, "svc");
  EXPECT_DOUBLE_EQ(breach.observed, 150.0);
  EXPECT_DOUBLE_EQ(breach.target, 100.0);
  EXPECT_EQ(breach.attributed_segment, "net");
  EXPECT_EQ(breach.implicated_tier, "rsu-edge");
  EXPECT_TRUE(ev.breached("svc"));

  // Window [1 s, 2 s): fast runs -> a single recover at the next boundary.
  ev.observe(obs(sim::msec(1100), sim::msec(50)));
  ev.observe(obs(sim::msec(1200), sim::msec(50)));
  ev.observe(obs(sim::msec(2050), sim::msec(50)));
  ASSERT_EQ(ev.events().size(), 2u);
  const HealthEvent& recover = ev.events()[1];
  EXPECT_EQ(recover.kind, HealthEventKind::kLatencyRecover);
  EXPECT_EQ(recover.at, sim::seconds(2));
  EXPECT_DOUBLE_EQ(recover.observed, 50.0);
  EXPECT_TRUE(recover.attributed_segment.empty());
  EXPECT_TRUE(recover.implicated_tier.empty());
  EXPECT_FALSE(ev.breached("svc"));
}

TEST(SloEvaluator, CriticalSeverityAndAvailabilityAxis) {
  SloEvaluator ev(tight_options());
  ev.add_target({"svc", sim::msec(100), 0.95, /*min_availability=*/0.5});

  // Three failed, very slow runs; cross the boundary with an untracked
  // service (observe() closes windows before the target lookup).
  for (int i = 0; i < 3; ++i) {
    ev.observe(obs(sim::msec(100 * (i + 1)), sim::msec(250), /*ok=*/false,
                   "failover", "cloud"));
  }
  ev.observe(obs(sim::msec(1100), sim::msec(1), true, "", "", "other"));

  ASSERT_EQ(ev.events().size(), 2u);
  const HealthEvent& lat = ev.events()[0];
  EXPECT_EQ(lat.kind, HealthEventKind::kLatencyBreach);
  EXPECT_EQ(lat.severity, Severity::kCritical);  // 250 >= 2 x 100
  EXPECT_EQ(lat.attributed_segment, "failover");
  EXPECT_EQ(lat.implicated_tier, "cloud");

  const HealthEvent& avail = ev.events()[1];
  EXPECT_EQ(avail.kind, HealthEventKind::kAvailabilityBreach);
  EXPECT_EQ(avail.severity, Severity::kCritical);  // 0.0 <= 0.5 / 2
  EXPECT_DOUBLE_EQ(avail.observed, 0.0);
  EXPECT_DOUBLE_EQ(avail.target, 0.5);
  EXPECT_EQ(avail.implicated_tier, "cloud");
}

TEST(SloEvaluator, SparseWindowsCarryForwardUntilMinSamples) {
  SloEvaluator ev(tight_options());
  ev.add_target({"svc", sim::msec(100), 0.95, -1.0});

  ev.observe(obs(sim::msec(100), sim::msec(150)));
  ev.observe(obs(sim::msec(200), sim::msec(150)));
  // Boundary at 1 s passes with only 2 samples: carried forward, no event.
  ev.observe(obs(sim::msec(1500), sim::msec(150)));
  EXPECT_TRUE(ev.events().empty());
  // Boundary at 2 s sees the accumulated 3 samples and judges them.
  ev.observe(obs(sim::msec(2100), sim::msec(1), true, "", "", "other"));
  ASSERT_EQ(ev.events().size(), 1u);
  EXPECT_EQ(ev.events()[0].kind, HealthEventKind::kLatencyBreach);
  EXPECT_EQ(ev.events()[0].at, sim::seconds(2));
}

TEST(SloEvaluator, AttributionTiesGoToLexicographicallySmallest) {
  SloEvaluator ev(tight_options());
  ev.add_target({"svc", sim::msec(100), 0.95, -1.0});

  ev.observe(obs(sim::msec(100), sim::msec(150), true, "net", "cloud"));
  ev.observe(obs(sim::msec(200), sim::msec(150), true, "compute",
                 "basestation-edge"));
  ev.observe(obs(sim::msec(300), sim::msec(150), true, "net",
                 "basestation-edge"));
  ev.observe(obs(sim::msec(400), sim::msec(150), true, "compute", "cloud"));
  ev.flush(sim::msec(400));

  ASSERT_EQ(ev.events().size(), 1u);
  // 2x net vs 2x compute, 2x cloud vs 2x basestation-edge: map order wins.
  EXPECT_EQ(ev.events()[0].attributed_segment, "compute");
  EXPECT_EQ(ev.events()[0].implicated_tier, "basestation-edge");
}

TEST(SloEvaluator, FlushJudgesInProgressWindowOnce) {
  SloEvaluator ev(tight_options());
  ev.add_target({"svc", sim::msec(100), 0.95, -1.0});
  for (int i = 0; i < 3; ++i) {
    ev.observe(obs(sim::msec(100 * (i + 1)), sim::msec(150)));
  }
  ev.flush(sim::msec(500));
  ASSERT_EQ(ev.events().size(), 1u);
  EXPECT_EQ(ev.events()[0].at, sim::seconds(1));
  ev.flush(sim::msec(500));  // idempotent: the window was consumed
  EXPECT_EQ(ev.events().size(), 1u);

  std::string table = ev.compliance_table();
  EXPECT_NE(table.find("BREACHED"), std::string::npos);
}

TEST(SloEvaluator, StandardSlosCoverTheServiceCatalog) {
  std::vector<SloTarget> slos = analysis::standard_slos();
  ASSERT_EQ(slos.size(), 7u);
  for (const SloTarget& t : slos) {
    EXPECT_GT(t.latency_target, 0) << t.service;
    EXPECT_DOUBLE_EQ(t.quantile, 0.95) << t.service;
    EXPECT_GE(t.min_availability, 0.90) << t.service;
  }
  EXPECT_EQ(slos[0].service, "lane-detection");
  EXPECT_EQ(slos[0].latency_target, sim::msec(50));
}

TEST(SloEvaluator, UntrackedServicesAreIgnored) {
  SloEvaluator ev(tight_options());
  ev.add_target({"svc", sim::msec(100), 0.95, -1.0});
  for (int i = 0; i < 5; ++i) {
    ev.observe(obs(sim::msec(100 * (i + 1)), sim::msec(900), false, "net",
                   "cloud", "nobody-watches-me"));
  }
  ev.flush(sim::seconds(5));
  EXPECT_TRUE(ev.events().empty());
  EXPECT_FALSE(ev.breached("nobody-watches-me"));
}

// --- the acceptance scenario ------------------------------------------------
// A probe service whose honest estimates prefer the RSU pipeline (~38 ms
// vs ~50 ms on board, 150 ms deadline). A background flood then saturates
// the RSU uplink: the elastic estimator is queueing-blind (net/link.hpp),
// so it keeps choosing "remote" while actual latencies blow past the 60 ms
// SLO. The health loop must notice (latency breach implicating rsu-edge),
// penalize the tier, and steer subsequent releases back on board.
TEST(HealthLoop, LatencyFaultBreachesSloAndSwitchesPipeline) {
  sim::Simulator sim(42);
  telemetry::Session session(sim);

  core::PlatformConfig cfg;
  cfg.vehicle_name = "slo-cav";
  cfg.health.enabled = true;
  cfg.health.evaluator.window = sim::seconds(5);
  cfg.health.evaluator.min_samples = 3;
  cfg.health.targets = {{"probe-cam", sim::msec(60), 0.95, -1.0}};
  core::OpenVdap car(sim, cfg);
  ASSERT_NE(car.health(), nullptr);

  workload::QosSpec qos;
  qos.deadline = sim::msec(150);
  workload::AppDag dag("probe-cam", workload::ServiceCategory::kAdas, qos);
  workload::TaskSpec task;
  task.name = "infer";
  task.cls = hw::TaskClass::kVisionClassic;
  task.gflop = 2.25;          // 50 ms on the Jetson, 25 ms on the RSU box
  task.input_bytes = 30'000;  // ~11 ms up the DSRC hop when idle
  task.output_bytes = 1'000;
  dag.add_task(task);
  edgeos::PolymorphicService svc;
  svc.dag = dag;
  svc.pipelines = {{"onboard", {net::Tier::kOnBoard}},
                   {"remote", {net::Tier::kRsuEdge}}};
  car.os().install_service(svc, edgeos::IsolationMode::kNone);

  // Sanity: under clean conditions the estimator prefers the RSU pipeline.
  ASSERT_NE(car.elastic().choose(svc), nullptr);
  EXPECT_EQ(car.elastic().choose(svc)->name, "remote");

  // The injected fault: a 1 MB flood every 200 ms (~40 Mbps offered on a
  // 27 Mbps link) queues the RSU uplink without tripping availability.
  for (sim::SimTime t = sim::msec(200); t <= sim::seconds(20);
       t += sim::msec(200)) {
    sim.at(t, [&] {
      car.topology().transfer_up(net::Tier::kRsuEdge, 1'000'000,
                                 [](const net::TransferOutcome&) {});
    });
  }

  std::vector<edgeos::ServiceRunReport> reports;
  auto record = [&](const edgeos::ServiceRunReport& rep) {
    reports.push_back(rep);
  };
  for (sim::SimTime t = sim::seconds(1); t <= sim::seconds(12);
       t += sim::msec(500)) {
    sim.at(t, [&] { car.run_service("probe-cam", record); });
  }

  sim.run_until(sim::seconds(8));

  // The breach fired, named the impaired tier, and blamed the network.
  const std::vector<HealthEvent>& events = car.health()->events();
  ASSERT_FALSE(events.empty());
  const HealthEvent& breach = events[0];
  EXPECT_EQ(breach.kind, HealthEventKind::kLatencyBreach);
  EXPECT_EQ(breach.severity, Severity::kCritical);
  EXPECT_EQ(breach.service, "probe-cam");
  EXPECT_EQ(breach.implicated_tier, "rsu-edge");
  EXPECT_EQ(breach.attributed_segment, "net");
  EXPECT_GT(breach.observed, 60.0);

  // ...and the control knob actually moved.
  EXPECT_DOUBLE_EQ(car.elastic().tier_penalty(net::Tier::kRsuEdge), 4.0);
  ASSERT_EQ(car.health()->penalized().count(net::Tier::kRsuEdge), 1u);
  ASSERT_NE(car.elastic().choose(svc), nullptr);
  EXPECT_EQ(car.elastic().choose(svc)->name, "onboard");

  // Pre-breach releases rode the saturated RSU pipeline and missed the SLO.
  ASSERT_FALSE(reports.empty());
  bool saw_slow_remote = false;
  for (const auto& rep : reports) {
    if (rep.pipeline == "remote" && rep.latency() > sim::msec(60)) {
      saw_slow_remote = true;
      EXPECT_EQ(rep.implicated_tier, "rsu-edge");
    }
  }
  EXPECT_TRUE(saw_slow_remote);

  // A fresh release now runs on board and meets the target again. (Late
  // pre-breach remote runs are still draining the queue, so capture this
  // run's report directly instead of indexing `reports`.)
  std::optional<edgeos::ServiceRunReport> healed;
  car.run_service("probe-cam",
                  [&](const edgeos::ServiceRunReport& rep) { healed = rep; });
  sim.run_until(sim.now() + sim::seconds(1));
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->pipeline, "onboard");
  EXPECT_TRUE(healed->ok);
  EXPECT_TRUE(healed->deadline_met);
  EXPECT_LE(healed->latency(), sim::msec(60));
  EXPECT_EQ(healed->implicated_tier, "on-board");

  // The loop's actions are visible in the trace for vdap-report to show.
  std::string trace = session.chrome_trace();
  EXPECT_NE(trace.find("latency-breach"), std::string::npos);
  EXPECT_NE(trace.find("health.penalize"), std::string::npos);
}

}  // namespace
}  // namespace vdap
