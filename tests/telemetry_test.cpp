// Unit tests for the telemetry subsystem: tracer span bookkeeping, labeled
// metric canonicalization, registry merge/reset, the Chrome-trace and
// snapshot exporters (parsed back through util::json), and the Session
// scoping rules.
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "telemetry/export.hpp"
#include "telemetry/session.hpp"

namespace vdap::telemetry {
namespace {

// Every test runs against the process-wide instance, so scope state tightly.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry::instance().reset();
    Telemetry::instance().enable();
  }
  void TearDown() override {
    Telemetry::instance().disable();
    Telemetry::instance().reset();
  }
};

TEST_F(TelemetryTest, DisabledByDefaultOutsideASession) {
  Telemetry::instance().disable();
  EXPECT_FALSE(on());
  // Guarded helpers are no-ops when off.
  count("x");
  observe("y", 1.0);
  gauge("z", 2.0);
  EXPECT_EQ(metrics().counter_value("x"), 0);
  EXPECT_EQ(metrics().histogram("y"), nullptr);
  EXPECT_DOUBLE_EQ(metrics().gauge_value("z"), 0.0);
}

TEST_F(TelemetryTest, TrackInterningIsStable) {
  Tracer t;
  std::uint32_t a = t.track("dsf");
  std::uint32_t b = t.track("net/cloud");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(t.track("dsf"), a);  // re-interning returns the same index
  ASSERT_EQ(t.tracks().size(), 2u);
  EXPECT_EQ(t.tracks()[0], "dsf");
  EXPECT_EQ(t.tracks()[1], "net/cloud");
}

TEST_F(TelemetryTest, BeginEndBalancesOpenSpans) {
  Tracer t;
  std::uint64_t s1 = t.begin(100, "task", "run-1", "dsf");
  std::uint64_t s2 = t.begin(150, "task", "run-2", "dsf");
  EXPECT_NE(s1, 0u);
  EXPECT_NE(s2, s1);
  EXPECT_EQ(t.open_spans(), 2u);
  t.end(200, s1);
  EXPECT_EQ(t.open_spans(), 1u);
  t.end(250, s2);
  EXPECT_EQ(t.open_spans(), 0u);
  ASSERT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.events()[0].ph, 'b');
  EXPECT_EQ(t.events()[2].ph, 'e');
  EXPECT_EQ(t.events()[2].id, s1);
}

TEST_F(TelemetryTest, EndIgnoresUnknownAndZeroIds) {
  Tracer t;
  t.end(10, 0);     // begin() recorded while telemetry was off
  t.end(10, 999);   // never opened
  std::uint64_t s = t.begin(10, "c", "n", "trk");
  t.end(20, s);
  t.end(30, s);     // double close
  EXPECT_EQ(t.open_spans(), 0u);
  EXPECT_EQ(t.events().size(), 2u);  // only the real begin/end pair
}

TEST_F(TelemetryTest, CompleteInstantCounterShapes) {
  Tracer t;
  t.complete(100, 50, "net", "xfer", "net/lte-up");
  t.instant(200, "offload", "decide", "offload");
  t.counter(300, "net/cellular", "bw", 0.25);
  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.events()[0].ph, 'X');
  EXPECT_EQ(t.events()[0].dur, 50);
  EXPECT_EQ(t.events()[1].ph, 'i');
  EXPECT_EQ(t.events()[2].ph, 'C');
  EXPECT_DOUBLE_EQ(t.events()[2].args.at("value").as_double(), 0.25);
}

TEST_F(TelemetryTest, LabeledKeysAreCanonical) {
  // Keys sort, so insertion order doesn't matter.
  EXPECT_EQ(labeled("net.bytes", {{"link", "lte-up"}}),
            "net.bytes{link=lte-up}");
  EXPECT_EQ(labeled("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
  EXPECT_EQ(labeled("m", {}), "m");
}

TEST_F(TelemetryTest, RegistryCountersGaugesHistograms) {
  MetricsRegistry r;
  r.inc("a");
  r.inc("a", 4);
  r.inc("b", {{"k", "v"}}, 2);
  r.set_gauge("g", 1.5);
  r.observe("h", 10.0);
  r.observe("h", 20.0);
  EXPECT_EQ(r.counter_value("a"), 5);
  EXPECT_EQ(r.counter_value("b{k=v}"), 2);
  EXPECT_DOUBLE_EQ(r.gauge_value("g"), 1.5);
  ASSERT_NE(r.histogram("h"), nullptr);
  EXPECT_EQ(r.histogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(r.histogram("h")->mean(), 15.0);
  // Registry-created histograms carry the soak-safety cap.
  EXPECT_EQ(r.histogram("h")->sample_cap(),
            MetricsRegistry::kHistogramSampleCap);
}

TEST_F(TelemetryTest, RegistryMergeAndReset) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.inc("c", 1);
  b.inc("c", 2);
  b.inc("only-b");
  a.set_gauge("g", 1.0);
  b.set_gauge("g", 2.0);  // last writer wins on merge
  a.observe("h", 1.0);
  b.observe("h", 3.0);
  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 3);
  EXPECT_EQ(a.counter_value("only-b"), 1);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 2.0);
  EXPECT_EQ(a.histogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("h")->mean(), 2.0);
  a.reset();
  EXPECT_EQ(a.counter_value("c"), 0);
  EXPECT_TRUE(a.gauges().empty());
  EXPECT_TRUE(a.histograms().empty());
}

TEST_F(TelemetryTest, ScopedSpanClosesOnScopeExit) {
  {
    ScopedSpan span(10, "cat", "scoped", "trk");
    EXPECT_EQ(tracer().open_spans(), 1u);
    span.close_at(50);
  }
  EXPECT_EQ(tracer().open_spans(), 0u);
  ASSERT_EQ(tracer().events().size(), 2u);
  EXPECT_EQ(tracer().events()[1].ts, 50);
}

// --- exporters -------------------------------------------------------------

TEST_F(TelemetryTest, ChromeTraceJsonRoundTrips) {
  Tracer t;
  json::Object args;
  args["bytes"] = 1234;
  t.complete(1000, 500, "net", "xfer", "net/lte-up", std::move(args));
  std::uint64_t s = t.begin(2000, "task", "run", "dsf");
  t.instant(2500, "offload", "decide", "offload");
  t.end(3000, s);

  std::string doc = chrome_trace_json(t);
  json::Value v = json::parse(doc);  // throws on malformed output
  EXPECT_EQ(v.at("displayTimeUnit").as_string(), "ms");
  const json::Array& evs = v.at("traceEvents").as_array();
  // 3 thread_name metadata records + 4 events.
  ASSERT_EQ(evs.size(), 7u);
  EXPECT_EQ(evs[0].at("ph").as_string(), "M");
  EXPECT_EQ(evs[0].at("args").at("name").as_string(), "net/lte-up");
  const json::Value& x = evs[3];
  EXPECT_EQ(x.at("ph").as_string(), "X");
  EXPECT_EQ(x.at("ts").as_int(), 1000);
  EXPECT_EQ(x.at("dur").as_int(), 500);
  EXPECT_EQ(x.at("args").at("bytes").as_int(), 1234);
  const json::Value& b = evs[4];
  EXPECT_EQ(b.at("ph").as_string(), "b");
  EXPECT_EQ(b.at("id").as_string(), evs[6].at("id").as_string());
  EXPECT_EQ(evs[5].at("ph").as_string(), "i");
  EXPECT_EQ(evs[5].at("s").as_string(), "t");

  // Identical event sequences export byte-identically.
  EXPECT_EQ(doc, chrome_trace_json(t));
}

TEST_F(TelemetryTest, MetricsSnapshotJsonShape) {
  MetricsRegistry r;
  r.inc("dsf.completed", 7);
  r.set_gauge("ddi.staged", 42.0);
  for (int i = 1; i <= 100; ++i) r.observe("lat", i);

  json::Value v = json::parse(metrics_snapshot_json(r, 123456).dump());
  EXPECT_EQ(v.at("t").as_int(), 123456);
  EXPECT_EQ(v.at("counters").at("dsf.completed").as_int(), 7);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("ddi.staged").as_double(), 42.0);
  const json::Value& h = v.at("histograms").at("lat");
  EXPECT_EQ(h.at("count").as_int(), 100);
  EXPECT_DOUBLE_EQ(h.at("mean").as_double(), 50.5);
  EXPECT_DOUBLE_EQ(h.at("min").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(h.at("max").as_double(), 100.0);
  EXPECT_NEAR(h.at("p95").as_double(), 95.0, 1.0);
  // Top-level field order is fixed by the ordered json::Object.
  std::string doc = metrics_snapshot_json(r, 123456).dump();
  EXPECT_LT(doc.find("\"counters\""), doc.find("\"gauges\""));
  EXPECT_LT(doc.find("\"gauges\""), doc.find("\"histograms\""));
}

TEST_F(TelemetryTest, TextReportListsEveryFamily) {
  MetricsRegistry r;
  r.inc("boots");
  r.set_gauge("bw", 0.5);
  r.observe("lat", 3.0);
  std::string rep = metrics_text_report(r);
  EXPECT_NE(rep.find("telemetry counters"), std::string::npos);
  EXPECT_NE(rep.find("telemetry gauges"), std::string::npos);
  EXPECT_NE(rep.find("telemetry histograms"), std::string::npos);
  EXPECT_NE(rep.find("boots"), std::string::npos);
  // Empty registry => empty report, not empty tables.
  EXPECT_TRUE(metrics_text_report(MetricsRegistry{}).empty());
}

// --- Session ---------------------------------------------------------------

TEST(TelemetrySession, EnablesForItsScopeOnly) {
  ASSERT_FALSE(on());
  sim::Simulator sim(1);
  {
    Session session(sim);
    EXPECT_TRUE(on());
    count("x");
    EXPECT_EQ(metrics().counter_value("x"), 1);
  }
  EXPECT_FALSE(on());
}

TEST(TelemetrySession, SecondConcurrentSessionThrows) {
  sim::Simulator sim(1);
  Session session(sim);
  EXPECT_THROW(Session{sim}, std::logic_error);
  // Sequential sessions are fine, and each starts clean.
}

TEST(TelemetrySession, FreshSessionResetsPriorCapture) {
  sim::Simulator sim(1);
  {
    Session session(sim);
    count("left-over");
    tracer().begin(0, "c", "n", "trk");
  }
  Session session(sim);
  EXPECT_EQ(metrics().counter_value("left-over"), 0);
  EXPECT_EQ(session.open_spans(), 0u);
}

TEST(TelemetrySession, PeriodicSnapshotsRideTheSimClock) {
  sim::Simulator sim(7);
  Session session(sim);
  session.start_snapshots(sim::seconds(10));
  sim.every(sim::seconds(1), []() { count("tick"); });
  sim.run_until(sim::seconds(35));
  ASSERT_EQ(session.snapshot_lines().size(), 3u);  // t=10,20,30
  json::Value first = json::parse(session.snapshot_lines()[0]);
  json::Value last = json::parse(session.snapshot_lines()[2]);
  EXPECT_EQ(first.at("t").as_int(), sim::seconds(10));
  EXPECT_EQ(last.at("t").as_int(), sim::seconds(30));
  EXPECT_EQ(first.at("counters").at("tick").as_int(), 10);
  EXPECT_EQ(last.at("counters").at("tick").as_int(), 30);
  // JSONL assembly: one line per snapshot.
  std::string jsonl = session.snapshots_jsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
  session.stop_snapshots();
  sim.run_until(sim::seconds(60));
  EXPECT_EQ(session.snapshot_lines().size(), 3u);
}

}  // namespace
}  // namespace vdap::telemetry
