#include "hw/storage.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vdap::hw {
namespace {

SsdSpec small_ssd() {
  SsdSpec s;
  s.read_mbps = 100.0;   // 1 MB reads take ~10 ms
  s.write_mbps = 50.0;
  s.read_latency = sim::usec(100);
  s.write_latency = sim::usec(50);
  s.channels = 2;
  return s;
}

TEST(Ssd, ReadLatencyModel) {
  sim::Simulator sim;
  SsdModel ssd(sim, small_ssd());
  IoReport got;
  ssd.read(1'000'000, [&](const IoReport& r) { got = r; });
  sim.run_until();
  // 100 µs fixed + 10 ms transfer.
  EXPECT_EQ(got.latency(), sim::usec(100) + sim::msec(10));
  EXPECT_FALSE(got.write);
  EXPECT_EQ(ssd.bytes_read(), 1'000'000u);
}

TEST(Ssd, WriteSlowerThanRead) {
  sim::Simulator sim;
  SsdModel ssd(sim, small_ssd());
  IoReport rr, wr;
  ssd.read(1'000'000, [&](const IoReport& r) { rr = r; });
  ssd.write(1'000'000, [&](const IoReport& r) { wr = r; });
  sim.run_until();
  EXPECT_GT(wr.latency(), rr.latency());
  EXPECT_TRUE(wr.write);
  EXPECT_EQ(ssd.bytes_written(), 1'000'000u);
}

TEST(Ssd, ChannelsBoundConcurrency) {
  sim::Simulator sim;
  SsdModel ssd(sim, small_ssd());  // 2 channels
  std::vector<IoReport> done;
  for (int i = 0; i < 4; ++i) {
    ssd.read(1'000'000, [&](const IoReport& r) { done.push_back(r); });
  }
  EXPECT_EQ(ssd.busy_channels(), 2);
  EXPECT_EQ(ssd.queue_length(), 2u);
  sim.run_until();
  ASSERT_EQ(done.size(), 4u);
  // First two finish together; last two queue behind them.
  EXPECT_EQ(done[0].finished, done[1].finished);
  EXPECT_GT(done[2].finished, done[0].finished);
  EXPECT_EQ(done[2].started, done[0].finished);
  EXPECT_EQ(ssd.completed(), 4u);
}

TEST(Ssd, ZeroByteOpStillHasFixedCost) {
  sim::Simulator sim;
  SsdModel ssd(sim, small_ssd());
  IoReport got;
  ssd.write(0, [&](const IoReport& r) { got = r; });
  sim.run_until();
  EXPECT_EQ(got.latency(), sim::usec(50));
}

TEST(Ssd, RejectsZeroChannels) {
  sim::Simulator sim;
  SsdSpec s = small_ssd();
  s.channels = 0;
  EXPECT_THROW(SsdModel(sim, s), std::invalid_argument);
}

}  // namespace
}  // namespace vdap::hw
