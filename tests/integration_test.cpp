// Whole-platform integration: a 10-minute chaotic soak across every
// subsystem at once, checking conservation laws and bit-exact determinism
// of the full stack (same seed ⇒ same aggregate results).
#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "ddi/cloudsync.hpp"
#include "workload/apps.hpp"

namespace vdap {
namespace {

struct SoakResult {
  int callbacks = 0;
  int ok = 0;
  int failed = 0;
  std::uint64_t elastic_completed = 0;
  std::uint64_t elastic_failed = 0;
  std::uint64_t ddi_disk_records = 0;
  std::uint64_t cloud_synced = 0;
  std::uint64_t reinstalls = 0;
  double energy_j = 0.0;
  sim::SimDuration total_latency = 0;

  bool operator==(const SoakResult& o) const {
    return callbacks == o.callbacks && ok == o.ok && failed == o.failed &&
           elastic_completed == o.elastic_completed &&
           elastic_failed == o.elastic_failed &&
           ddi_disk_records == o.ddi_disk_records &&
           cloud_synced == o.cloud_synced && reinstalls == o.reinstalls &&
           energy_j == o.energy_j && total_latency == o.total_latency;
  }
};

SoakResult run_soak(std::uint64_t seed) {
  sim::Simulator sim(seed);
  core::PlatformConfig cfg;
  cfg.vehicle_name = "soak";
  cfg.start_collectors = true;
  core::OpenVdap cav(sim, cfg);
  cav.install_standard_services();

  core::DriveScenario scenario(sim, cav.topology(),
                               core::DriveScenario::commute(),
                               &cav.elastic());
  scenario.start();

  ddi::CloudSync cloud_sync(sim, cav.ddi(), cav.topology());
  cloud_sync.start();

  SoakResult res;
  auto release = [&](const char* svc) {
    cav.run_service(svc, [&](const edgeos::ServiceRunReport& r) {
      ++res.callbacks;
      if (r.ok) {
        ++res.ok;
        res.total_latency += r.latency();
      } else {
        ++res.failed;
      }
    });
  };
  sim.every(sim::msec(500), [&] { release("license-plate"); });
  sim.every(sim::seconds(2), [&] { release("a3-kidnapper-search"); });
  sim.every(sim::seconds(5), [&] { release("obd-diagnostics"); });
  sim.every(sim::seconds(2), [&] { release("infotainment-chunk"); });

  // Chaos: phone joins/leaves, compromises, device flaps.
  auto phone = std::make_unique<hw::ComputeDevice>(
      sim, hw::catalog::phone_soc());
  sim.at(sim::minutes(3), [&] { cav.registry().join(phone.get()); });
  sim.at(sim::minutes(8), [&] { cav.registry().leave("phone-soc"); });
  sim.at(sim::minutes(4), [&] {
    cav.os().security().compromise("infotainment-chunk");
  });
  sim.at(sim::minutes(9), [&] {
    cav.os().security().compromise("license-plate");
  });
  sim.at(sim::minutes(5), [&] {
    auto* fpga = cav.registry().find("automotive-fpga");
    ASSERT_NE(fpga, nullptr);
    fpga->set_online(false);
  });
  sim.at(sim::minutes(6), [&] {
    cav.registry().find("automotive-fpga")->set_online(true);
  });

  sim.run_until(sim::minutes(10));

  res.elastic_completed = cav.elastic().completed();
  res.elastic_failed = cav.elastic().failed();
  res.ddi_disk_records = cav.ddi().disk().record_count();
  res.cloud_synced = cloud_sync.records_synced();
  res.reinstalls = cav.os().security().reinstalls();
  res.energy_j = cav.board().energy_joules();
  return res;
}

TEST(PlatformSoak, TenMinuteChaosConservesEverything) {
  SoakResult r = run_soak(777);
  // 10 min of releases: 1200 plate + 300 a3 + 120 diag + 300 infotainment
  // = 1920 releases (+1 each for the t=0 firing).
  EXPECT_GE(r.callbacks, 1900);
  EXPECT_EQ(r.callbacks, r.ok + r.failed);
  // Hung runs at the horizon are the only allowed gap.
  EXPECT_GE(r.ok, r.callbacks * 8 / 10);
  EXPECT_GT(r.ddi_disk_records, 4000u);  // collectors persisted the drive
  EXPECT_GT(r.cloud_synced, 1000u);      // and the cloud got a good share
  EXPECT_EQ(r.reinstalls, 2u);           // both compromises recovered
  EXPECT_GT(r.energy_j, 0.0);
}

TEST(PlatformSoak, DeterministicAcrossRuns) {
  SoakResult a = run_soak(4242);
  SoakResult b = run_soak(4242);
  EXPECT_TRUE(a == b);
  SoakResult c = run_soak(4243);
  EXPECT_FALSE(a == c);  // different seed, different world
}

}  // namespace
}  // namespace vdap
