#include "vcu/registry.hpp"

#include <gtest/gtest.h>

#include "hw/catalog.hpp"

namespace vdap::vcu {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  hw::ComputeDevice cpu{sim, hw::catalog::core_i7_6700()};
  hw::ComputeDevice gpu{sim, hw::catalog::jetson_tx2_maxp()};
  hw::ComputeDevice asic{sim, hw::catalog::cnn_asic()};
  ResourceRegistry reg;
};

TEST_F(RegistryTest, JoinAndFind) {
  reg.join(&cpu);
  reg.join(&gpu);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.contains("core-i7-6700"));
  EXPECT_EQ(reg.find("jetson-tx2-maxp"), &gpu);
  EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST_F(RegistryTest, DuplicateJoinRejected) {
  reg.join(&cpu);
  EXPECT_THROW(reg.join(&cpu), std::invalid_argument);
  EXPECT_THROW(reg.join(nullptr), std::invalid_argument);
}

TEST_F(RegistryTest, LeaveAbortsInFlightWork) {
  reg.join(&cpu);
  bool ok = true;
  cpu.submit({hw::TaskClass::kGeneric, 1000.0, 0,
              [&](const hw::WorkReport& r) { ok = r.ok; }});
  reg.leave("core-i7-6700");
  EXPECT_FALSE(ok);  // aborted synchronously
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_THROW(reg.leave("core-i7-6700"), std::invalid_argument);
}

TEST_F(RegistryTest, CandidatesFilterByClassAndOnline) {
  reg.join(&cpu);
  reg.join(&gpu);
  reg.join(&asic);
  // Everyone supports CNN inference.
  EXPECT_EQ(reg.candidates("svc", hw::TaskClass::kCnnInference).size(), 3u);
  // Only CPU+GPU support generic work.
  EXPECT_EQ(reg.candidates("svc", hw::TaskClass::kGeneric).size(), 2u);
  gpu.set_online(false);
  EXPECT_EQ(reg.candidates("svc", hw::TaskClass::kGeneric).size(), 1u);
}

TEST_F(RegistryTest, ControlKnobGatesAccess) {
  reg.join(&asic);
  // By default everyone is admitted.
  EXPECT_EQ(reg.candidates("anyone", hw::TaskClass::kCnnInference).size(), 1u);
  // Restrict the ASIC to the pedestrian service ("resources accessed by
  // applications are tightly controlled by DSF").
  reg.knob("cnn-asic").allow("pedestrian-alert");
  EXPECT_TRUE(reg.candidates("third-party-x", hw::TaskClass::kCnnInference)
                  .empty());
  EXPECT_EQ(
      reg.candidates("pedestrian-alert", hw::TaskClass::kCnnInference).size(),
      1u);
  // Disabling the knob blocks everyone.
  reg.knob("cnn-asic").set_enabled(false);
  EXPECT_TRUE(reg.candidates("pedestrian-alert", hw::TaskClass::kCnnInference)
                  .empty());
  // Re-enable and clear allowlist: open again.
  reg.knob("cnn-asic").set_enabled(true);
  reg.knob("cnn-asic").clear_allowlist();
  EXPECT_EQ(reg.candidates("anyone", hw::TaskClass::kCnnInference).size(), 1u);
  EXPECT_THROW(reg.knob("missing"), std::invalid_argument);
}

TEST_F(RegistryTest, KnobRevoke) {
  reg.join(&cpu);
  reg.knob("core-i7-6700").allow("a");
  reg.knob("core-i7-6700").allow("b");
  reg.knob("core-i7-6700").revoke("a");
  EXPECT_TRUE(reg.candidates("a", hw::TaskClass::kGeneric).empty());
  EXPECT_FALSE(reg.candidates("b", hw::TaskClass::kGeneric).empty());
}

TEST_F(RegistryTest, ListenersSeeJoinAndLeave) {
  std::vector<std::pair<std::string, bool>> events;
  reg.subscribe([&](const std::string& name, bool joined) {
    events.emplace_back(name, joined);
  });
  reg.join(&cpu);
  reg.leave("core-i7-6700");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], std::make_pair(std::string("core-i7-6700"), true));
  EXPECT_EQ(events[1], std::make_pair(std::string("core-i7-6700"), false));
}

TEST_F(RegistryTest, ProfilesSnapshotDynamicState) {
  reg.join(&cpu);
  cpu.submit({hw::TaskClass::kGeneric, 100.0, 0, nullptr});
  auto profiles = reg.profiles();
  ASSERT_EQ(profiles.size(), 1u);
  const ResourceProfile& p = profiles[0];
  EXPECT_EQ(p.device, "core-i7-6700");
  EXPECT_TRUE(p.online);
  EXPECT_EQ(p.busy_slots, 1);
  EXPECT_GT(p.power_now_w, cpu.spec().idle_power_w);
  EXPECT_TRUE(p.gflops.count(hw::TaskClass::kCnnInference) > 0);
}

TEST_F(RegistryTest, SecondHepPhoneJoinsAndLeaves) {
  // The 2ndHEP story: a passenger phone joins, contributes, then leaves.
  reg.join(&cpu);
  hw::ComputeDevice phone(sim, hw::catalog::phone_soc());
  reg.join(&phone);
  EXPECT_EQ(reg.candidates("svc", hw::TaskClass::kCnnInference).size(), 2u);
  reg.leave("phone-soc");
  EXPECT_EQ(reg.candidates("svc", hw::TaskClass::kCnnInference).size(), 1u);
}

}  // namespace
}  // namespace vdap::vcu
