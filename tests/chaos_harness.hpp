// Shared harness for the chaos/soak suites: builds a full OpenVdap vehicle,
// wires a FaultInjector to every reacting layer (net impairments, VCU
// processors, DDI disk, EdgeOSv security), drives deterministic collector +
// service load while a FaultPlan runs, then heals, drains and snapshots
// everything the invariant checks need.
#pragma once

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/platform.hpp"
#include "ddi/cloudsync.hpp"
#include "ddi/collectors.hpp"
#include "net/impair.hpp"
#include "sim/faults.hpp"
#include "telemetry/session.hpp"
#include "util/strings.hpp"
#include "workload/apps.hpp"

namespace vdap::chaos {

struct ChaosOutcome {
  // Determinism evidence: two runs of the same (seed, plan) must match on
  // all three traces below plus every counter.
  std::vector<std::string> fault_trace;
  std::vector<std::string> report_trace;

  // Conservation evidence.
  std::map<std::pair<std::string, long long>, int> cloud;  // key -> copies
  std::uint64_t uploads = 0;
  std::uint64_t backlog = 0;
  std::uint64_t staged = 0;

  // Service-run accounting.
  std::uint64_t releases = 0;
  std::uint64_t reports = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t infeasible = 0;
  std::size_t active_runs = 0;
  std::size_t hung = 0;

  // Fault-reaction stats (what actually got exercised).
  std::uint64_t faults_applied = 0;
  std::uint64_t failovers = 0;
  std::uint64_t reinstalls = 0;
  std::uint64_t crashes = 0;
  std::uint64_t detected = 0;
  std::uint64_t sync_failed = 0;
  std::uint64_t sync_retries = 0;
  std::uint64_t disk_failures = 0;

  // Telemetry evidence: the full Chrome-trace export (byte-identical across
  // same-(seed, plan) runs), periodic metric snapshots, and the number of
  // spans still open at drain — which must be zero (no leaked begin()s).
  std::string trace_json;
  std::string snapshots_jsonl;
  std::size_t open_spans = 0;
};

struct ChaosConfig {
  /// Release a service every this often until load_until.
  sim::SimDuration release_period = sim::seconds(5);
  sim::SimTime load_until = sim::minutes(3);
  /// Keep running (faults still firing) until this time, then heal+drain.
  sim::SimTime run_until = sim::minutes(6);
  sim::SimDuration obd_period = sim::msec(200);
  std::size_t sync_batch = 500;
};

inline ChaosOutcome run_chaos(const sim::FaultPlan& plan, std::uint64_t seed,
                              const std::string& dir_tag,
                              ChaosConfig cc = {}) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("vdap-chaos-" + plan.name + "-" + dir_tag);
  fs::remove_all(dir);

  ChaosOutcome out;
  {
    sim::Simulator sim(seed);
    telemetry::Session session(sim);
    session.start_snapshots(sim::seconds(30));
    core::PlatformConfig cfg;
    cfg.vehicle_name = "chaos-cav";
    cfg.ddi_dir = dir.string();
    core::OpenVdap car(sim, cfg);
    car.install_standard_services();
    car.offload().enable_failover(3);
    car.os().security().start_monitor();

    // --- deterministic collector load into DDI ---------------------------
    auto upload = [&](ddi::DataRecord r) { car.ddi().upload(std::move(r)); };
    ddi::ObdCollector obd(sim, upload, cc.obd_period);
    ddi::WeatherFeed weather(sim, upload);
    ddi::TrafficFeed traffic(sim, upload);
    obd.start();
    weather.start();
    traffic.start();

    // --- cloud sync with a duplicate-detecting sink ----------------------
    ddi::CloudSyncOptions sopts;
    sopts.check_period = sim::seconds(10);
    sopts.batch_records = cc.sync_batch;
    ddi::CloudSync sync(sim, car.ddi(), car.topology(), sopts);
    sync.set_sink([&](const ddi::DataRecord& r) {
      ++out.cloud[{r.stream, static_cast<long long>(r.timestamp)}];
    });
    sync.start();

    // --- fault injector wired to every reacting layer --------------------
    net::ImpairmentController imp(car.topology());
    sim::FaultInjector inj(sim);
    auto link_toggle = [&](const sim::FaultSpec& f, bool begin) {
      auto t = net::tier_from_string(f.target);
      if (!t) return;
      if (begin) {
        imp.link_down(*t);
      } else {
        imp.link_up(*t);
        car.elastic().reevaluate();  // conditions improved: retry hung runs
      }
    };
    inj.on(sim::FaultKind::kLinkDown, link_toggle);
    inj.on(sim::FaultKind::kLinkFlap, link_toggle);

    std::map<std::string, std::vector<std::uint64_t>> tokens;
    inj.on(sim::FaultKind::kLinkDegrade,
           [&](const sim::FaultSpec& f, bool begin) {
             auto t = net::tier_from_string(f.target);
             if (!t) return;
             if (begin) {
               tokens[f.name].push_back(
                   imp.degrade(*t, f.severity, f.extra_loss));
             } else if (!tokens[f.name].empty()) {
               imp.restore(tokens[f.name].back());
               tokens[f.name].pop_back();
             }
           });
    inj.on(sim::FaultKind::kCellularCollapse,
           [&](const sim::FaultSpec& f, bool begin) {
             if (begin) {
               tokens[f.name].push_back(
                   imp.cellular_collapse(f.severity, f.extra_loss));
             } else if (!tokens[f.name].empty()) {
               imp.restore(tokens[f.name].back());
               tokens[f.name].pop_back();
             }
           });

    auto board_device = [&](const std::string& target) -> hw::ComputeDevice* {
      int idx = -1;
      if (std::sscanf(target.c_str(), "proc:%d", &idx) != 1) return nullptr;
      const auto& devs = car.board().devices();
      if (idx < 0 || static_cast<std::size_t>(idx) >= devs.size()) {
        return nullptr;
      }
      return devs[static_cast<std::size_t>(idx)].get();
    };
    std::map<std::string, hw::ProcessorSpec> saved_specs;
    inj.on(sim::FaultKind::kProcessorSlowdown,
           [&](const sim::FaultSpec& f, bool begin) {
             hw::ComputeDevice* dev = board_device(f.target);
             if (dev == nullptr) return;
             if (begin) {
               saved_specs[f.name] = dev->spec();
               hw::ProcessorSpec slow = dev->spec();
               for (auto& [cls, gf] : slow.gflops) gf *= f.severity;
               dev->reconfigure(slow);
             } else if (saved_specs.count(f.name) > 0) {
               dev->reconfigure(saved_specs[f.name]);
               saved_specs.erase(f.name);
             }
           });
    inj.on(sim::FaultKind::kProcessorOffline,
           [&](const sim::FaultSpec& f, bool begin) {
             hw::ComputeDevice* dev = board_device(f.target);
             if (dev != nullptr) dev->set_online(!begin);
           });
    inj.on(sim::FaultKind::kDiskWriteError,
           [&](const sim::FaultSpec&, bool begin) {
             car.ddi().disk().set_write_fault(begin);
           });
    inj.on(sim::FaultKind::kServiceCrash,
           [&](const sim::FaultSpec& f, bool begin) {
             if (begin && car.os().security().installed(f.target)) {
               car.os().security().crash(f.target);
             }
           });
    inj.on(sim::FaultKind::kServiceCompromise,
           [&](const sim::FaultSpec& f, bool begin) {
             if (begin && car.os().security().installed(f.target)) {
               car.os().security().compromise(f.target);
             }
           });
    inj.arm(plan);

    // --- service release + reevaluation schedules ------------------------
    const std::vector<std::string> services = {
        "lane-detection",   "obd-diagnostics", "infotainment-chunk",
        "license-plate",    "speech-assistant"};
    // The matching app DAGs, so each release also records an offload-tier
    // decision (decide() is a pure estimator: no RNG, no queue events —
    // it only adds the decision instant + scores to the telemetry trace).
    const std::vector<workload::AppDag> service_dags = {
        workload::apps::lane_detection(), workload::apps::obd_diagnostics(),
        workload::apps::infotainment_chunk(),
        workload::apps::license_plate_pipeline(),
        workload::apps::speech_assistant()};
    auto record_report = [&](const edgeos::ServiceRunReport& rep) {
      ++out.reports;
      if (rep.ok) ++out.completed_ok;
      if (rep.infeasible) ++out.infeasible;
      out.report_trace.push_back(util::format(
          "t=%lld svc=%s ok=%d hung=%d failovers=%d infeasible=%d pipe=%s",
          static_cast<long long>(rep.finished), rep.service.c_str(),
          rep.ok ? 1 : 0, rep.was_hung ? 1 : 0, rep.failovers,
          rep.infeasible ? 1 : 0, rep.pipeline.c_str()));
    };
    int release_idx = 0;
    for (sim::SimTime t = cc.release_period; t <= cc.load_until;
         t += cc.release_period) {
      int idx = release_idx++;
      sim.at(t, [&, idx]() {
        ++out.releases;
        car.offload().decide(service_dags[idx % service_dags.size()]);
        car.run_service(services[idx % services.size()], record_report);
      });
    }
    for (sim::SimTime t = sim::seconds(7); t <= cc.run_until;
         t += sim::seconds(7)) {
      sim.at(t, [&]() { car.elastic().reevaluate(); });
    }

    // --- run under fire ---------------------------------------------------
    sim.run_until(cc.run_until);

    // --- heal, then drain --------------------------------------------------
    obd.stop();
    weather.stop();
    traffic.stop();
    imp.restore_all();
    car.ddi().disk().set_write_fault(false);
    car.elastic().reevaluate();
    sim.run_until(cc.run_until + sim::minutes(2));
    car.elastic().abandon_hung();
    car.ddi().flush_staged(/*force_all=*/true);
    for (int i = 0; i < 60 && sync.backlog() > 0; ++i) {
      sync.sync_once();
      sim.run_until(sim.now() + sim::seconds(30));
    }
    sync.stop();
    sim.run_until(sim.now() + sim::minutes(1));

    // --- snapshot ----------------------------------------------------------
    out.fault_trace = inj.trace_lines();
    out.faults_applied = inj.applied();
    out.uploads = car.ddi().uploads();
    out.backlog = sync.backlog();
    out.staged = car.ddi().staged_count();
    out.active_runs = car.elastic().active_runs();
    out.hung = car.elastic().hung_count();
    out.failovers = car.elastic().failovers();
    out.reinstalls = car.os().security().reinstalls();
    out.crashes = car.os().security().crashes();
    out.detected = car.os().security().compromises_detected();
    out.sync_failed = sync.failed_uploads();
    out.sync_retries = sync.retries();
    out.disk_failures = car.ddi().disk_write_failures();
    out.trace_json = session.chrome_trace();
    out.snapshots_jsonl = session.snapshots_jsonl();
    out.open_spans = session.open_spans();
  }
  fs::remove_all(dir);
  return out;
}

}  // namespace vdap::chaos
