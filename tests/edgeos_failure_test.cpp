// Failure injection on the offload path: what happens to remote pipelines
// when the network is actively hostile (the Fig. 2 world) and when remote
// endpoints vanish mid-run.
#include <gtest/gtest.h>

#include "edgeos/elastic.hpp"
#include "hw/catalog.hpp"
#include "workload/apps.hpp"

namespace vdap::edgeos {
namespace {

class ElasticFailureTest : public ::testing::Test {
 protected:
  ElasticFailureTest()
      : cpu(sim, hw::catalog::core_i7_6700()),
        cloud(sim, hw::catalog::cloud_server()),
        topo(sim),
        dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>()),
        mgr(sim, dsf, topo) {
    reg.join(&cpu);
    mgr.set_remote_device(net::Tier::kCloud, &cloud);
  }

  PolymorphicService cloud_only_service() {
    auto svc = make_polymorphic(workload::apps::inception_v3(),
                                net::Tier::kCloud);
    svc.pipelines = {svc.pipelines[1]};  // remote-cloud, no fallback
    svc.dag.set_qos({0, 3, 0});
    return svc;
  }

  sim::Simulator sim{13};
  hw::ComputeDevice cpu, cloud;
  vcu::ResourceRegistry reg;
  net::Topology topo;
  vcu::Dsf dsf;
  ElasticManager mgr;
};

TEST_F(ElasticFailureTest, ExtremeLossFailsMostRemoteRuns) {
  // Near-total cellular loss: even 5 retries per hop rarely get through.
  topo.apply_cellular_condition(1.0, 0.99);
  int ok = 0, failed = 0;
  for (int i = 0; i < 30; ++i) {
    mgr.run(cloud_only_service(), [&](const ServiceRunReport& r) {
      (r.ok ? ok : failed)++;
    });
  }
  sim.run_until(sim::minutes(5));
  EXPECT_EQ(ok + failed, 30);
  EXPECT_GT(failed, 20);  // the link is the failure mode, not the compute
  EXPECT_EQ(mgr.failed(), static_cast<std::uint64_t>(failed));
}

TEST_F(ElasticFailureTest, ModerateLossRecoversThroughRetries) {
  topo.apply_cellular_condition(1.0, 0.3);
  int ok = 0, failed = 0;
  for (int i = 0; i < 30; ++i) {
    mgr.run(cloud_only_service(), [&](const ServiceRunReport& r) {
      (r.ok ? ok : failed)++;
    });
  }
  sim.run_until(sim::minutes(5));
  EXPECT_EQ(ok + failed, 30);
  // 1-(0.3)^5 per message: nearly everything survives retries.
  EXPECT_GT(ok, 25);
}

TEST_F(ElasticFailureTest, RemoteDeviceGoesOfflineMidRun) {
  ServiceRunReport rep;
  rep.ok = true;
  mgr.run(cloud_only_service(),
          [&](const ServiceRunReport& r) { rep = r; });
  // Kill the cloud endpoint while the upload / compute is in flight.
  sim.after(sim::msec(30), [&] { cloud.set_online(false); });
  sim.run_until(sim::minutes(1));
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(mgr.failed(), 1u);
}

TEST_F(ElasticFailureTest, FailoverReplansOntoSurvivingTierMidRun) {
  mgr.options().failover = true;
  mgr.options().max_failovers = 3;
  // Cripple the on-board CPU so the planner's first choice is the cloud —
  // the slow local pipeline stays feasible as the failover target.
  hw::ProcessorSpec slow = cpu.spec();
  for (auto& [cls, gf] : slow.gflops) gf *= 0.05;
  cpu.reconfigure(slow);

  auto svc = make_polymorphic(workload::apps::inception_v3(),
                              net::Tier::kCloud);
  // Deadline generous enough that the slow on-board fallback stays eligible
  // when the planner re-decides (min-latency still prefers the cloud first).
  svc.dag.set_qos({sim::seconds(10), 3, 0});
  const Pipeline* first = mgr.choose(svc);
  ASSERT_NE(first, nullptr);
  EXPECT_NE(first->name.find("cloud"), std::string::npos);

  ServiceRunReport rep;
  bool done = false;
  mgr.run(svc, [&](const ServiceRunReport& r) {
    rep = r;
    done = true;
  });
  // The chosen tier dies mid-flight; failover must re-plan onto what's left.
  sim.after(sim::msec(30), [&] { cloud.set_online(false); });
  sim.run_until(sim::minutes(5));

  ASSERT_TRUE(done);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.failovers, 1);
  EXPECT_EQ(rep.pipeline.find("cloud"), std::string::npos);
  EXPECT_EQ(mgr.failovers(), 1u);
  EXPECT_EQ(mgr.failed(), 0u);
  EXPECT_EQ(mgr.active_runs(), 0u);
}

TEST_F(ElasticFailureTest, FailoverWithNoAlternativeHangsThenResumes) {
  mgr.options().failover = true;
  ServiceRunReport rep;
  bool done = false;
  mgr.run(cloud_only_service(), [&](const ServiceRunReport& r) {
    rep = r;
    done = true;
  });
  sim.after(sim::msec(30), [&] { cloud.set_online(false); });
  sim.run_until(sim::minutes(1));
  // Only pipeline's tier is gone: the failover parks the run instead of
  // failing it.
  EXPECT_FALSE(done);
  EXPECT_EQ(mgr.hung_count(), 1u);
  EXPECT_EQ(mgr.failed(), 0u);

  cloud.set_online(true);
  mgr.reevaluate();
  sim.run_until(sim::minutes(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.was_hung);
  EXPECT_EQ(rep.failovers, 1);
  EXPECT_EQ(mgr.hung_count(), 0u);
}

TEST_F(ElasticFailureTest, TierDisappearingBetweenChooseAndRunIsSafe) {
  // choose() sees the cloud; by the time data moves the tier is gone.
  PolymorphicService svc = cloud_only_service();
  ServiceRunReport rep;
  rep.ok = true;
  mgr.run(svc, [&](const ServiceRunReport& r) { rep = r; });
  topo.set_available(net::Tier::kCloud, false);  // same timestep
  sim.run_until(sim::minutes(1));
  EXPECT_FALSE(rep.ok);
}

TEST_F(ElasticFailureTest, FallbackPipelineAbsorbsNetworkTrouble) {
  // With the onboard pipeline available, hostile cellular just shifts the
  // choice rather than failing runs.
  topo.apply_cellular_condition(0.01, 0.9);
  auto svc = make_polymorphic(workload::apps::inception_v3(),
                              net::Tier::kCloud);
  svc.dag.set_qos({0, 3, 0});
  int ok = 0, failed = 0;
  std::map<std::string, int> pipelines;
  for (int i = 0; i < 20; ++i) {
    mgr.run(svc, [&](const ServiceRunReport& r) {
      (r.ok ? ok : failed)++;
      if (r.ok) pipelines[r.pipeline]++;
    });
  }
  sim.run_until(sim::minutes(5));
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(pipelines["onboard"], 20);
}

}  // namespace
}  // namespace vdap::edgeos
