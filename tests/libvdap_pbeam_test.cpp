#include "libvdap/pbeam.hpp"

#include <gtest/gtest.h>

#include "ddi/collectors.hpp"

namespace vdap::libvdap {
namespace {

TEST(DrivingFeatures, VectorShapeAndScale) {
  DrivingFeatures f;
  f.mean_speed_mps = 30.0;
  f.overspeed_frac = 0.5;
  auto v = f.to_vector();
  ASSERT_EQ(v.size(), DrivingFeatures::kDim);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[6], 0.5);
}

TEST(DrivingFeatures, FromRecordsComputesStatistics) {
  std::vector<ddi::DataRecord> window;
  for (int i = 0; i < 600; ++i) {  // one minute at 10 Hz
    ddi::DataRecord r;
    r.stream = "vehicle/obd";
    r.timestamp = sim::msec(100) * i;
    r.payload["speed_mps"] = 20.0 + (i % 2 == 0 ? 1.0 : -1.0);
    r.payload["accel_mps2"] = i % 100 == 0 ? -3.0 : 0.2;  // 6 harsh brakes
    window.push_back(std::move(r));
  }
  DrivingFeatures f = features_from_records(window);
  EXPECT_NEAR(f.mean_speed_mps, 20.0, 0.1);
  EXPECT_NEAR(f.speed_stddev, 1.0, 0.05);
  EXPECT_NEAR(f.harsh_brake_rate, 6.0, 0.5);  // per minute
  EXPECT_GT(f.mean_abs_jerk, 0.0);
  EXPECT_DOUBLE_EQ(f.overspeed_frac, 0.0);
}

TEST(DrivingFeatures, TinyWindowIsZero) {
  DrivingFeatures f = features_from_records({});
  EXPECT_DOUBLE_EQ(f.mean_speed_mps, 0.0);
}

TEST(StyleGenerator, StylesAreOrderedInHarshness) {
  util::RngStream rng(5);
  double brake_rates[3] = {0, 0, 0};
  for (int s = 0; s < kNumStyles; ++s) {
    for (int i = 0; i < 200; ++i) {
      brake_rates[s] +=
          sample_style_features(static_cast<DrivingStyle>(s), rng)
              .harsh_brake_rate / 200.0;
    }
  }
  EXPECT_LT(brake_rates[0], brake_rates[1]);  // cautious < normal
  EXPECT_LT(brake_rates[1], brake_rates[2]);  // normal < aggressive
}

TEST(PBeam, CloudTrainingSeparatesStyles) {
  util::RngStream rng(21);
  Dataset fleet = synth_fleet_dataset(200, rng);
  PBeam pbeam = PBeam::build(fleet, {}, rng);
  util::RngStream eval(77);
  Dataset test = synth_fleet_dataset(100, eval);
  EXPECT_GT(pbeam.accuracy(test), 0.85);
  EXPECT_FALSE(pbeam.personalized());
  EXPECT_GT(pbeam.compression().ratio(), 2.0);
}

TEST(PBeam, AggressivenessScoreTracksStyle) {
  util::RngStream rng(21);
  PBeam pbeam = PBeam::build(synth_fleet_dataset(200, rng), {}, rng);
  util::RngStream eval(78);
  double agg_sum = 0.0, caut_sum = 0.0;
  for (int i = 0; i < 50; ++i) {
    agg_sum += pbeam.aggressiveness(
        sample_style_features(DrivingStyle::kAggressive, eval));
    caut_sum += pbeam.aggressiveness(
        sample_style_features(DrivingStyle::kCautious, eval));
  }
  EXPECT_GT(agg_sum / 50.0, 0.7);
  EXPECT_LT(caut_sum / 50.0, 0.3);
}

TEST(PBeam, PersonalizationImprovesOnBiasedDriver) {
  // The paper's Fig. 9 story: the compressed fleet model transfers to the
  // individual driver by learning on their DDI data.
  util::RngStream rng(31);
  PBeam pbeam = PBeam::build(synth_fleet_dataset(200, rng), {}, rng);

  // A strongly idiosyncratic normal driver the fleet model misreads.
  util::RngStream driver_rng(55);
  Dataset driver_train =
      synth_driver_dataset(DrivingStyle::kNormal, 150, 2.2, driver_rng);
  Dataset driver_test =
      synth_driver_dataset(DrivingStyle::kNormal, 150, 2.2, driver_rng);

  double acc_before = pbeam.accuracy(driver_test);
  pbeam.personalize(driver_train, rng);
  double acc_after = pbeam.accuracy(driver_test);
  EXPECT_TRUE(pbeam.personalized());
  EXPECT_GT(acc_after, acc_before);
  EXPECT_GT(acc_after, 0.8);
}

TEST(PBeam, PersonalizationPreservesCompressedStructure) {
  util::RngStream rng(31);
  PBeam pbeam = PBeam::build(synth_fleet_dataset(150, rng), {}, rng);
  double sparsity_before = model_sparsity(pbeam.model());
  util::RngStream driver_rng(56);
  pbeam.personalize(
      synth_driver_dataset(DrivingStyle::kCautious, 100, 1.0, driver_rng),
      rng);
  // Transfer learning must not densify the pruned model (it still has to
  // fit on the edge).
  EXPECT_GE(model_sparsity(pbeam.model()), sparsity_before - 1e-9);
}

TEST(PBeam, EndToEndFromObdCollector) {
  // Whole-stack smoke: drive the OBD collector, window the records,
  // extract features, score with pBEAM.
  sim::Simulator sim(9);
  std::vector<ddi::DataRecord> records;
  ddi::ObdCollector obd(
      sim, [&](ddi::DataRecord r) { records.push_back(std::move(r)); });
  obd.set_target_speed(20.0);
  obd.start();
  sim.run_until(sim::minutes(2));
  ASSERT_GT(records.size(), 600u);

  util::RngStream rng(21);
  PBeam pbeam = PBeam::build(synth_fleet_dataset(150, rng), {}, rng);
  DrivingFeatures f = features_from_records(records);
  double score = pbeam.aggressiveness(f);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
  DrivingStyle style = pbeam.classify(f);
  EXPECT_GE(static_cast<int>(style), 0);
  EXPECT_LT(static_cast<int>(style), kNumStyles);
}

TEST(PBeam, RejectsEmptyDatasets) {
  util::RngStream rng(1);
  EXPECT_THROW(PBeam::build({}, {}, rng), std::invalid_argument);
  PBeam pbeam = PBeam::build(synth_fleet_dataset(30, rng), {}, rng);
  EXPECT_THROW(pbeam.personalize({}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace vdap::libvdap
