#include "edgeos/edgeos.hpp"

#include <gtest/gtest.h>

#include "hw/catalog.hpp"
#include "workload/apps.hpp"

namespace vdap::edgeos {
namespace {

class EdgeOsTest : public ::testing::Test {
 protected:
  EdgeOsTest()
      : cpu(sim, hw::catalog::core_i7_6700()),
        gpu(sim, hw::catalog::jetson_tx2_maxp()),
        rsu(sim, hw::catalog::rsu_edge_server()),
        topo(sim),
        dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>()),
        os(sim, dsf, topo) {
    reg.join(&cpu);
    reg.join(&gpu);
    os.elastic().set_remote_device(net::Tier::kRsuEdge, &rsu);
  }

  sim::Simulator sim;
  hw::ComputeDevice cpu, gpu, rsu;
  vcu::ResourceRegistry reg;
  net::Topology topo;
  vcu::Dsf dsf;
  EdgeOSv os;
};

TEST_F(EdgeOsTest, InstallAndRunService) {
  os.install_service(make_polymorphic(workload::apps::license_plate_pipeline(),
                                      net::Tier::kRsuEdge),
                     IsolationMode::kContainer);
  EXPECT_TRUE(os.has_service("license-plate"));
  ServiceRunReport rep;
  os.run_service("license-plate",
                 [&](const ServiceRunReport& r) { rep = r; });
  sim.run_until(sim.now() + sim::seconds(30));
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.deadline_met);
}

TEST_F(EdgeOsTest, DuplicateInstallRejected) {
  auto svc = make_polymorphic(workload::apps::lane_detection(),
                              net::Tier::kRsuEdge);
  os.install_service(svc, IsolationMode::kTee);
  EXPECT_THROW(os.install_service(svc, IsolationMode::kTee),
               std::invalid_argument);
  EXPECT_THROW(os.run_service("ghost"), std::invalid_argument);
}

TEST_F(EdgeOsTest, TeeOverheadSlowsService) {
  auto svc = make_polymorphic(workload::apps::inception_v3(),
                              net::Tier::kRsuEdge);
  // Strip remote pipelines so we compare pure on-board compute.
  svc.pipelines = {svc.pipelines[0]};
  auto svc_tee = svc;
  svc_tee.dag.set_qos({0, 3, 0});
  svc.dag.set_qos({0, 3, 0});

  os.install_service(svc, IsolationMode::kNone);
  sim::SimDuration raw_latency = 0;
  os.run_service("inception-v3",
                 [&](const ServiceRunReport& r) { raw_latency = r.latency(); });
  sim.run_until(sim.now() + sim::seconds(30));

  // Same DAG under a different name with TEE isolation.
  EdgeOSv os2(sim, dsf, topo);
  os2.install_service(svc_tee, IsolationMode::kTee);
  sim::SimDuration tee_latency = 0;
  os2.run_service("inception-v3",
                  [&](const ServiceRunReport& r) { tee_latency = r.latency(); });
  sim.run_until(sim.now() + sim::seconds(30));

  EXPECT_GT(tee_latency, raw_latency);
  EXPECT_NEAR(static_cast<double>(tee_latency) / raw_latency, 1.18, 0.03);
}

TEST_F(EdgeOsTest, CompromisedServiceRefusesToRunThenRecovers) {
  os.install_service(make_polymorphic(workload::apps::license_plate_pipeline(),
                                      net::Tier::kRsuEdge),
                     IsolationMode::kContainer);
  os.security().compromise("license-plate");
  bool ran_ok = true;
  os.run_service("license-plate",
                 [&](const ServiceRunReport& r) { ran_ok = r.ok; });
  EXPECT_FALSE(ran_ok);

  // The monitor reinstalls it; afterwards it runs again.
  sim.run_until(sim::seconds(10));
  EXPECT_EQ(os.security().state("license-plate"), ServiceState::kRunning);
  ServiceRunReport rep;
  os.run_service("license-plate",
                 [&](const ServiceRunReport& r) { rep = r; });
  sim.run_until(sim::seconds(20));
  EXPECT_TRUE(rep.ok);
}

TEST_F(EdgeOsTest, ReinstallRotatesBusCredential) {
  os.install_service(make_polymorphic(workload::apps::license_plate_pipeline(),
                                      net::Tier::kRsuEdge),
                     IsolationMode::kContainer);
  std::uint64_t stolen = os.credential("license-plate");
  os.bus().grant_publish("results", "license-plate");
  EXPECT_GE(os.bus().publish("license-plate", stolen, "results",
                             json::Value(1)),
            0);
  os.security().compromise("license-plate");
  sim.run_until(sim::seconds(10));  // monitor detects + reinstalls
  // Old credential no longer authenticates; the fresh one does.
  EXPECT_EQ(os.bus().publish("license-plate", stolen, "results",
                             json::Value(2)),
            -1);
  EXPECT_GE(os.bus().publish("license-plate", os.credential("license-plate"),
                             "results", json::Value(3)),
            0);
}

TEST_F(EdgeOsTest, DeirReportAggregates) {
  os.install_service(make_polymorphic(workload::apps::license_plate_pipeline(),
                                      net::Tier::kRsuEdge),
                     IsolationMode::kContainer);
  os.install_service(make_polymorphic(workload::apps::lane_detection(),
                                      net::Tier::kRsuEdge),
                     IsolationMode::kTee);
  for (int i = 0; i < 3; ++i) os.run_service("license-plate");
  os.run_service("lane-detection");
  sim.run_until(sim::seconds(5));
  os.security().compromise("license-plate");
  sim.run_until(sim::seconds(15));

  DeirReport r = os.deir_report();
  EXPECT_EQ(r.installed_services, 2u);
  EXPECT_EQ(r.registered_devices, 2u);
  EXPECT_EQ(r.compromises_detected, 1u);
  EXPECT_EQ(r.reinstalls, 1u);
  std::uint64_t plate_runs = 0;
  for (const auto& [pipeline, n] : r.pipeline_use["license-plate"]) {
    plate_runs += n;
  }
  EXPECT_EQ(plate_runs, 3u);
}

TEST_F(EdgeOsTest, PseudonymsExposedForV2xSharing) {
  std::string p0 = os.pseudonyms().pseudonym(sim.now());
  EXPECT_FALSE(p0.empty());
  EXPECT_NE(p0.find("veh-"), std::string::npos);
}

}  // namespace
}  // namespace vdap::edgeos
