#include "edgeos/sharing.hpp"

#include <gtest/gtest.h>

namespace vdap::edgeos {
namespace {

TEST(SharingBus, EnrollIssuesDistinctCredentials) {
  DataSharingBus bus;
  auto a = bus.enroll("a");
  auto b = bus.enroll("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(bus.enrolled("a"));
  EXPECT_FALSE(bus.enrolled("c"));
}

TEST(SharingBus, PaperScenarioCameraSharing) {
  // §IV-C: pedestrian detection and mobile A3 both consume the camera
  // topic; A3 shares results with the vehicle recorder.
  DataSharingBus bus;
  auto cam = bus.enroll("camera-driver");
  auto ped = bus.enroll("pedestrian-detection");
  auto a3 = bus.enroll("mobile-a3");
  auto rec = bus.enroll("vehicle-recorder");

  bus.grant_publish("camera/frames", "camera-driver");
  bus.grant_subscribe("camera/frames", "pedestrian-detection");
  bus.grant_subscribe("camera/frames", "mobile-a3");
  bus.grant_publish("a3/results", "mobile-a3");
  bus.grant_subscribe("a3/results", "vehicle-recorder");

  int ped_got = 0, a3_got = 0, rec_got = 0;
  ASSERT_TRUE(bus.subscribe("pedestrian-detection", ped, "camera/frames",
                            [&](const SharedMessage&) { ++ped_got; }));
  ASSERT_TRUE(bus.subscribe("mobile-a3", a3, "camera/frames",
                            [&](const SharedMessage&) { ++a3_got; }));
  ASSERT_TRUE(bus.subscribe("vehicle-recorder", rec, "a3/results",
                            [&](const SharedMessage& m) {
                              ++rec_got;
                              EXPECT_EQ(m.publisher, "mobile-a3");
                            }));

  EXPECT_EQ(bus.publish("camera-driver", cam, "camera/frames",
                        json::Value("frame-1")),
            2);
  json::Value result;
  result["plate"] = "ABC123";
  EXPECT_EQ(bus.publish("mobile-a3", a3, "a3/results", result), 1);
  EXPECT_EQ(ped_got, 1);
  EXPECT_EQ(a3_got, 1);
  EXPECT_EQ(rec_got, 1);
  EXPECT_EQ(bus.published(), 2u);
  EXPECT_EQ(bus.delivered(), 3u);
}

TEST(SharingBus, BadCredentialRejected) {
  DataSharingBus bus;
  auto cred = bus.enroll("svc");
  bus.grant_publish("t", "svc");
  EXPECT_EQ(bus.publish("svc", cred + 1, "t", json::Value(1)), -1);
  EXPECT_EQ(bus.publish("ghost", cred, "t", json::Value(1)), -1);
  EXPECT_EQ(bus.rejected_auth(), 2u);
  EXPECT_EQ(bus.published(), 0u);
}

TEST(SharingBus, AclRejectsUngrantedPublisher) {
  DataSharingBus bus;
  auto cred = bus.enroll("svc");
  EXPECT_EQ(bus.publish("svc", cred, "t", json::Value(1)), -1);
  EXPECT_EQ(bus.rejected_acl(), 1u);
}

TEST(SharingBus, AclRejectsUngrantedSubscriber) {
  DataSharingBus bus;
  auto cred = bus.enroll("spy");
  EXPECT_FALSE(bus.subscribe("spy", cred, "camera/frames",
                             [](const SharedMessage&) {}));
  EXPECT_EQ(bus.rejected_acl(), 1u);
}

TEST(SharingBus, RevocationStopsDelivery) {
  DataSharingBus bus;
  auto pub = bus.enroll("pub");
  auto sub = bus.enroll("sub");
  bus.grant_publish("t", "pub");
  bus.grant_subscribe("t", "sub");
  int got = 0;
  bus.subscribe("sub", sub, "t", [&](const SharedMessage&) { ++got; });
  bus.publish("pub", pub, "t", json::Value(1));
  EXPECT_EQ(got, 1);
  // Revoke the subscriber: existing subscription is torn down.
  bus.revoke_subscribe("t", "sub");
  bus.publish("pub", pub, "t", json::Value(2));
  EXPECT_EQ(got, 1);
  // Revoke the publisher too.
  bus.revoke_publish("t", "pub");
  EXPECT_EQ(bus.publish("pub", pub, "t", json::Value(3)), -1);
}

TEST(SharingBus, CredentialRotationInvalidatesOldOne) {
  // After a compromise+reinstall, EdgeOSv re-enrolls the service; the
  // attacker's stolen credential must stop working.
  DataSharingBus bus;
  auto stolen = bus.enroll("svc");
  bus.grant_publish("t", "svc");
  EXPECT_EQ(bus.publish("svc", stolen, "t", json::Value(1)), 0);
  auto fresh = bus.enroll("svc");  // rotation
  EXPECT_EQ(bus.publish("svc", stolen, "t", json::Value(1)), -1);
  EXPECT_EQ(bus.publish("svc", fresh, "t", json::Value(1)), 0);
}

TEST(SharingBus, SequenceNumbersIncrease) {
  DataSharingBus bus;
  auto pub = bus.enroll("pub");
  auto sub = bus.enroll("sub");
  bus.grant_publish("t", "pub");
  bus.grant_subscribe("t", "sub");
  std::vector<std::uint64_t> seqs;
  bus.subscribe("sub", sub, "t",
                [&](const SharedMessage& m) { seqs.push_back(m.seq); });
  for (int i = 0; i < 3; ++i) bus.publish("pub", pub, "t", json::Value(i));
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_LT(seqs[0], seqs[1]);
  EXPECT_LT(seqs[1], seqs[2]);
}

TEST(SharingBus, PayloadIntegrity) {
  DataSharingBus bus;
  auto pub = bus.enroll("pub");
  auto sub = bus.enroll("sub");
  bus.grant_publish("t", "pub");
  bus.grant_subscribe("t", "sub");
  json::Value got;
  bus.subscribe("sub", sub, "t",
                [&](const SharedMessage& m) { got = m.payload; });
  json::Value sent;
  sent["speed"] = 55.5;
  sent["tags"] = json::Value(json::Array{"a", "b"});
  bus.publish("pub", pub, "t", sent);
  EXPECT_EQ(got, sent);
}

}  // namespace
}  // namespace vdap::edgeos
