// Oracle-equivalence suite for the sharded columnar ingest backend
// (DESIGN.md §6g), run under the `ingest` ctest label (and under
// TSan/ASan via scripts/check.sh).
//
// Randomized wire streams — duplicates, reordering, transport gaps,
// decode garbage, one injected outlier vehicle — are replayed through:
//   * a {1,2,8} shards × {1,2,8} threads matrix of backends, whose every
//     observable output (tables, queries, accounting, anomalies) must be
//     BYTE-identical to the 1×1 reference;
//   * the old single-threaded FleetAggregator as the accounting and
//     detection oracle;
//   * an in-test brute-force replay as ground truth for range/near
//     query answers.
// Plus the PR's two regression pins: exactly one impaired vehicle among
// 10k is flagged by the unthrottled MAD pass, and the registry's ingest
// counters prove detection scans O(V) per barrier, not O(V) per frame.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/fleet/aggregator.hpp"
#include "telemetry/fleet/columnar.hpp"
#include "telemetry/fleet/ingest.hpp"
#include "telemetry/fleet/query.hpp"
#include "telemetry/fleet/wire.hpp"
#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"

namespace vdap::telemetry::fleet {
namespace {

std::string veh_name(int i) { return util::format("cav-%04d", i); }

struct StreamSpec {
  std::uint64_t seed = 1;
  int vehicles = 8;
  int batches = 30;
  int outlier = -1;          // vehicle index whose latency is shifted
  double outlier_shift = 60.0;
  bool garbage_lines = true; // inject undecodable lines
};

/// A generated wire stream plus its brute-force ground truth: the
/// accepted (post-dedup) samples per vehicle per metric, in ingest order.
struct Stream {
  std::vector<std::vector<std::string>> batches;
  std::map<std::string, std::map<std::string, std::vector<WireSample>>> truth;
  std::uint64_t truth_samples = 0;  // accepted samples, all metrics
  std::string outlier_vehicle;
};

/// Epoch-shaped batches: each vehicle ships 1-2 frames per batch (seq
/// strictly increasing), with duplicate re-emissions, same-vehicle swaps
/// (reordering), silently skipped seqs (transport loss) and optional
/// garbage lines. Sequence numbers stay far inside the default
/// seq_window, so acceptance is exactly "seq not seen before".
Stream make_stream(const StreamSpec& spec) {
  std::mt19937_64 rng(spec.seed);
  Stream out;
  std::vector<std::uint64_t> seq(static_cast<std::size_t>(spec.vehicles), 0);
  std::vector<std::vector<std::string>> history(
      static_cast<std::size_t>(spec.vehicles));
  if (spec.outlier >= 0) out.outlier_vehicle = veh_name(spec.outlier);

  for (int b = 0; b < spec.batches; ++b) {
    const sim::SimTime t0 = sim::seconds(b + 1);
    std::vector<std::string> batch;
    for (int i = 0; i < spec.vehicles; ++i) {
      const std::size_t vi = static_cast<std::size_t>(i);
      if (rng() % 16 == 0) continue;       // vehicle idle this epoch
      if (rng() % 8 == 0) ++seq[vi];       // frame lost in transport
      const int frames = rng() % 5 == 0 ? 2 : 1;
      std::vector<std::string> emitted;
      for (int f = 0; f < frames; ++f) {
        WireFrame frame;
        frame.vehicle = veh_name(i);
        frame.seq = ++seq[vi];
        frame.created = t0 + sim::usec(17) * (i * 2 + f);
        const double base =
            25.0 + 0.5 * (i % 5) +
            (i == spec.outlier ? spec.outlier_shift : 0.0);
        for (int k = 0; k < 2; ++k) {
          const double noise =
              (static_cast<double>(rng() % 1000) - 500.0) / 2000.0;
          frame.samples["svc.latency_ms"].push_back(
              {t0 - sim::msec(100) * k, base + noise});
        }
        frame.samples["loc.x"].push_back({frame.created, 10.0 * i + 0.25 * b});
        frame.samples["loc.y"].push_back({frame.created, -5.0 * i});
        frame.counters["svc.ok"] = 1 + static_cast<std::int64_t>(rng() % 3);
        frame.gauges["q.depth"] = static_cast<double>(rng() % 7);
        emitted.push_back(wire_encode(frame));
      }
      if (frames == 2 && rng() % 2 == 0) {
        std::swap(emitted[0], emitted[1]);  // same-vehicle reorder
      }
      for (std::string& line : emitted) {
        history[vi].push_back(line);
        batch.push_back(std::move(line));
      }
      if (rng() % 6 == 0 && !history[vi].empty()) {
        batch.push_back(history[vi][rng() % history[vi].size()]);  // dup
      }
    }
    if (spec.garbage_lines && b == spec.batches / 2) {
      batch.push_back("{\"v\":\"cav-0000\"");  // truncated JSON
      batch.push_back("not a frame at all");
    }
    out.batches.push_back(std::move(batch));
  }

  // Ground truth: replay the final line order through the documented
  // dedup contract (seq already seen => duplicate, everything else —
  // including reordered seqs — accepted).
  std::map<std::string, std::set<std::uint64_t>> seen;
  for (const std::vector<std::string>& batch : out.batches) {
    for (const std::string& line : batch) {
      std::optional<WireFrame> frame = wire_decode(line);
      if (!frame.has_value()) continue;
      if (!seen[frame->vehicle].insert(frame->seq).second) continue;
      for (const auto& [metric, samples] : frame->samples) {
        auto& dst = out.truth[frame->vehicle][metric];
        dst.insert(dst.end(), samples.begin(), samples.end());
        out.truth_samples += samples.size();
      }
    }
  }
  return out;
}

void feed(ShardedIngestBackend* backend, const Stream& stream) {
  for (const std::vector<std::string>& batch : stream.batches) {
    std::vector<std::string_view> views(batch.begin(), batch.end());
    backend->ingest_batch(views);
  }
}

/// Every output surface the byte-identity contract covers, concatenated.
std::string snapshot(const ShardedIngestBackend& b,
                     const std::vector<std::string>& queries) {
  std::string s = b.rollup_table() + b.anomaly_table() + b.vehicle_table();
  for (const std::string& q : queries) {
    std::string error;
    const std::string table = b.run_query_text(q, &error);
    s += table.empty() ? "error: " + error + "\n" : table;
  }
  for (const std::string& v : b.vehicles()) {
    s += util::format("%s ok=%lld\n", v.c_str(),
                      static_cast<long long>(b.counter_total(v, "svc.ok")));
  }
  for (const std::string& v : b.anomalous_vehicles()) s += "anomalous " + v + "\n";
  s += util::format(
      "frames=%llu dup=%llu reorder=%llu lost=%llu decode_errors=%llu "
      "samples=%llu batches=%llu watermark=%lld passes=%llu scanned=%llu\n",
      static_cast<unsigned long long>(b.frames_ingested()),
      static_cast<unsigned long long>(b.duplicates()),
      static_cast<unsigned long long>(b.reordered()),
      static_cast<unsigned long long>(b.lost_frames()),
      static_cast<unsigned long long>(b.decode_errors()),
      static_cast<unsigned long long>(b.samples_ingested()),
      static_cast<unsigned long long>(b.batches()),
      static_cast<long long>(b.watermark()),
      static_cast<unsigned long long>(b.detect_passes()),
      static_cast<unsigned long long>(b.detect_scanned()));
  return s;
}

// --- satellite 1: the shard × thread byte-identity matrix ------------------

TEST(IngestOracle, ByteIdenticalAcrossShardAndThreadMatrix) {
  std::mt19937_64 meta(2026);
  for (int draw = 0; draw < 3; ++draw) {
    StreamSpec spec;
    spec.seed = meta();
    spec.vehicles = 5 + static_cast<int>(meta() % 8);
    spec.batches = 20 + static_cast<int>(meta() % 15);
    spec.outlier = static_cast<int>(meta() % spec.vehicles);
    const Stream stream = make_stream(spec);
    const std::vector<std::string> queries = {
        "range metric=svc.latency_ms",
        "range metric=svc.latency_ms vehicle=" + veh_name(1) +
            " from=3s to=18s",
        "range metric=loc.x from=0.5min",
        "near x=0 y=0 r=40 at=" + std::to_string(spec.batches) +
            "s within=20s",
    };

    std::string reference;
    for (int shards : {1, 2, 8}) {
      for (int threads : {1, 2, 8}) {
        IngestOptions opts;
        opts.shards = shards;
        opts.threads = threads;
        opts.block.block_samples = 16;  // force the sealed-block paths
        ShardedIngestBackend backend(opts);
        feed(&backend, stream);
        const std::string got = snapshot(backend, queries);
        if (reference.empty()) {
          reference = got;
          // The injected outlier — and only it — is flagged.
          EXPECT_EQ(backend.anomalous_vehicles(),
                    std::vector<std::string>{stream.outlier_vehicle})
              << "draw " << draw;
          EXPECT_GT(backend.duplicates(), 0u) << "draw " << draw;
          EXPECT_GT(backend.reordered(), 0u) << "draw " << draw;
          EXPECT_GT(backend.lost_frames(), 0u) << "draw " << draw;
          EXPECT_EQ(backend.decode_errors(), 2u) << "draw " << draw;
        } else {
          EXPECT_EQ(got, reference)
              << "draw " << draw << " shards=" << shards
              << " threads=" << threads;
        }
      }
    }
  }
}

// --- satellite 1: the old FleetAggregator as accounting oracle -------------

TEST(IngestOracle, MatchesFleetAggregatorAccountingAndDetection) {
  std::mt19937_64 meta(7041);
  for (int draw = 0; draw < 3; ++draw) {
    StreamSpec spec;
    spec.seed = meta();
    spec.vehicles = 6 + static_cast<int>(meta() % 6);
    spec.batches = 25;
    // Draws alternate between one impaired vehicle and a healthy fleet.
    spec.outlier =
        draw % 2 == 0 ? static_cast<int>(meta() % spec.vehicles) : -1;
    const Stream stream = make_stream(spec);

    IngestOptions iopts;
    iopts.shards = 4;
    iopts.threads = 2;
    ShardedIngestBackend backend(iopts);
    FleetAggregator oracle;  // defaults match IngestOptions' defaults
    feed(&backend, stream);
    for (const std::vector<std::string>& batch : stream.batches) {
      std::vector<std::string_view> views(batch.begin(), batch.end());
      oracle.ingest_batch(views);
    }

    EXPECT_EQ(backend.frames_ingested(), oracle.frames_ingested());
    EXPECT_EQ(backend.duplicates(), oracle.duplicates());
    EXPECT_EQ(backend.reordered(), oracle.reordered());
    EXPECT_EQ(backend.decode_errors(), oracle.decode_errors());
    EXPECT_EQ(backend.lost_frames(), oracle.lost_frames());
    EXPECT_EQ(backend.batches(), oracle.batches());
    EXPECT_EQ(backend.watermark(), oracle.watermark());
    EXPECT_EQ(backend.vehicles(), oracle.vehicles());
    // The transport-accounting table is byte-for-byte the oracle's.
    EXPECT_EQ(backend.vehicle_table(), oracle.vehicle_table());
    for (const std::string& v : oracle.vehicles()) {
      EXPECT_EQ(backend.counter_total(v, "svc.ok"),
                oracle.counter_total(v, "svc.ok"))
          << v;
    }
    // Detection parity is semantic (the backend detects at barriers, the
    // oracle mid-ingest under its own throttle): both flag exactly the
    // impaired vehicle, or nobody on a healthy fleet.
    const std::vector<std::string> expected =
        spec.outlier >= 0 ? std::vector<std::string>{stream.outlier_vehicle}
                          : std::vector<std::string>{};
    EXPECT_EQ(backend.anomalous_vehicles(), expected) << "draw " << draw;
    EXPECT_EQ(oracle.anomalous_vehicles(), expected) << "draw " << draw;
  }
}

// --- satellite 1: brute-force ground truth for the query layer -------------

TEST(IngestOracle, QueriesMatchBruteForceGroundTruth) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    StreamSpec spec;
    spec.seed = seed;
    spec.vehicles = 6;
    spec.batches = 25;
    spec.garbage_lines = false;
    const Stream stream = make_stream(spec);

    IngestOptions opts;
    opts.shards = 4;
    opts.threads = 2;
    opts.block.block_samples = 8;   // many sealed blocks, partial decodes
    opts.block.max_blocks = 4096;   // no eviction: truth covers everything
    ShardedIngestBackend backend(opts);
    feed(&backend, stream);
    ASSERT_EQ(backend.samples_ingested(), stream.truth_samples);

    std::mt19937_64 rng(seed * 31 + 7);
    for (int round = 0; round < 24; ++round) {
      sim::SimTime from = sim::msec(rng() % (26 * 1000));
      sim::SimTime to = sim::msec(rng() % (26 * 1000));
      if (round == 0) { from = 0; to = sim::kTimeMax; }  // full history
      if (from > to) std::swap(from, to);
      Query q;
      q.kind = Query::Kind::kRange;
      q.metric = "svc.latency_ms";
      q.from = from;
      q.to = to;
      const QueryResult r = backend.run_query(q);

      std::size_t row = 0;
      for (const auto& [vehicle, metrics] : stream.truth) {
        auto it = metrics.find(q.metric);
        if (it == metrics.end()) continue;
        ASSERT_LT(row, r.per_vehicle.size());
        const QueryVehicleRow& got = r.per_vehicle[row++];
        EXPECT_EQ(got.vehicle, vehicle);
        std::size_t count = 0;
        double sum = 0.0, mn = 0.0, mx = 0.0;
        for (const WireSample& s : it->second) {
          if (s.first < from || s.first > to) continue;
          if (count == 0) {
            mn = mx = s.second;
          } else {
            mn = std::min(mn, s.second);
            mx = std::max(mx, s.second);
          }
          ++count;
          sum += s.second;
        }
        EXPECT_EQ(got.agg.count, count) << vehicle;
        EXPECT_DOUBLE_EQ(got.agg.sum, sum) << vehicle;
        if (count > 0) {
          EXPECT_EQ(got.agg.min, mn) << vehicle;
          EXPECT_EQ(got.agg.max, mx) << vehicle;
        }
      }
      EXPECT_EQ(row, r.per_vehicle.size());
    }

    // `near` against a brute-force replay of last_at_or_before semantics
    // (later-appended wins timestamp ties; both fixes within `within`).
    for (int round = 0; round < 12; ++round) {
      Query q;
      q.kind = Query::Kind::kNear;
      q.x = static_cast<double>(rng() % 60);
      q.y = -static_cast<double>(rng() % 30);
      q.radius = 5.0 + static_cast<double>(rng() % 40);
      q.at = sim::msec(rng() % (26 * 1000));
      q.within = sim::seconds(1 + rng() % 20);
      const QueryResult r = backend.run_query(q);

      std::vector<QueryNearHit> expected;
      const sim::SimTime horizon = q.at > q.within ? q.at - q.within : 0;
      for (const auto& [vehicle, metrics] : stream.truth) {
        auto gx = metrics.find("loc.x");
        auto gy = metrics.find("loc.y");
        if (gx == metrics.end() || gy == metrics.end()) continue;
        const WireSample* fx = nullptr;
        const WireSample* fy = nullptr;
        for (const WireSample& s : gx->second) {
          if (s.first <= q.at && (fx == nullptr || s.first >= fx->first)) {
            fx = &s;
          }
        }
        for (const WireSample& s : gy->second) {
          if (s.first <= q.at && (fy == nullptr || s.first >= fy->first)) {
            fy = &s;
          }
        }
        if (fx == nullptr || fy == nullptr) continue;
        if (fx->first < horizon || fy->first < horizon) continue;
        const double dx = fx->second - q.x;
        const double dy = fy->second - q.y;
        const double dist = std::sqrt(dx * dx + dy * dy);
        if (dist > q.radius) continue;
        expected.push_back({vehicle, fx->second, fy->second, dist,
                            std::max(fx->first, fy->first)});
      }
      std::sort(expected.begin(), expected.end(),
                [](const QueryNearHit& a, const QueryNearHit& b) {
                  if (a.dist != b.dist) return a.dist < b.dist;
                  return a.vehicle < b.vehicle;
                });
      ASSERT_EQ(r.hits.size(), expected.size()) << "round " << round;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(r.hits[i].vehicle, expected[i].vehicle);
        EXPECT_DOUBLE_EQ(r.hits[i].x, expected[i].x);
        EXPECT_DOUBLE_EQ(r.hits[i].y, expected[i].y);
        EXPECT_DOUBLE_EQ(r.hits[i].dist, expected[i].dist);
        EXPECT_EQ(r.hits[i].at, expected[i].at);
      }
    }
  }
}

// --- satellite 3: one impaired vehicle among 10k, unthrottled --------------

TEST(IngestOracle, ExactlyOneImpairedVehicleAmongTenThousandIsFlagged) {
  const int kVehicles = 10'000;
  const int kImpaired = 4242;
  IngestOptions opts;
  opts.shards = 8;
  opts.threads = 8;
  ShardedIngestBackend backend(opts);

  for (int b = 0; b < 3; ++b) {
    const sim::SimTime t0 = sim::seconds(b + 1);
    std::vector<std::string> batch;
    batch.reserve(static_cast<std::size_t>(kVehicles));
    for (int i = 0; i < kVehicles; ++i) {
      WireFrame frame;
      frame.vehicle = veh_name(i);
      frame.seq = static_cast<std::uint64_t>(b) + 1;
      frame.created = t0;
      const double value =
          25.0 + 0.01 * (i % 7) + (i == kImpaired ? 80.0 : 0.0);
      frame.samples["svc.latency_ms"].push_back({t0, value});
      batch.push_back(wire_encode(frame));
    }
    std::vector<std::string_view> views(batch.begin(), batch.end());
    backend.ingest_batch(views);
  }

  EXPECT_EQ(backend.frames_ingested(),
            static_cast<std::uint64_t>(kVehicles) * 3);
  EXPECT_EQ(backend.anomalous_vehicles(),
            std::vector<std::string>{veh_name(kImpaired)});
  for (const FleetAnomaly& a : backend.anomalies()) {
    EXPECT_EQ(a.vehicle, veh_name(kImpaired));
    EXPECT_EQ(a.metric, "svc.latency_ms");
    EXPECT_GE(a.score, 3.5);
  }
  // Hysteresis: one impairment, one flag event — not one per barrier.
  EXPECT_EQ(backend.anomalies().size(), 1u);
}

// --- satellite 3: the registry counters pin O(V)-per-barrier cost ----------

TEST(IngestOracle, RegistryCountersProveDetectionScansLinearlyPerBarrier) {
  const int kVehicles = 200;
  const int kBatches = 10;
  Telemetry& t = Telemetry::instance();
  t.reset();
  t.enable();

  IngestOptions opts;
  opts.shards = 4;
  opts.threads = 2;
  ShardedIngestBackend backend(opts);
  for (int b = 0; b < kBatches; ++b) {
    const sim::SimTime t0 = sim::seconds(b + 1);
    std::vector<std::string> batch;
    for (int i = 0; i < kVehicles; ++i) {
      WireFrame frame;
      frame.vehicle = veh_name(i);
      frame.seq = static_cast<std::uint64_t>(b) + 1;
      frame.created = t0;
      frame.samples["svc.latency_ms"].push_back({t0, 25.0 + 0.1 * (i % 4)});
      batch.push_back(wire_encode(frame));
    }
    std::vector<std::string_view> views(batch.begin(), batch.end());
    backend.ingest_batch(views);
  }

  const MetricsRegistry& m = t.metrics();
  // One pass per (barrier, dirty metric); every pass examines each
  // vehicle's window mean exactly once. The PR-4 per-frame behaviour
  // would have scanned batches × V × V means — two orders of magnitude
  // more — so this equality pins the O(V)-per-barrier cost.
  EXPECT_EQ(m.counter_value("fleet.ingest.detect.passes"), kBatches);
  EXPECT_EQ(m.counter_value("fleet.ingest.detect.scanned"),
            static_cast<std::int64_t>(kBatches) * kVehicles);
  EXPECT_EQ(m.counter_value("fleet.ingest.frames"),
            static_cast<std::int64_t>(backend.frames_ingested()));
  EXPECT_EQ(m.counter_value("fleet.ingest.samples"),
            static_cast<std::int64_t>(backend.samples_ingested()));
  EXPECT_EQ(m.counter_value("fleet.ingest.duplicates"), 0);
  EXPECT_EQ(m.gauge_value("fleet.ingest.vehicles"),
            static_cast<double>(kVehicles));

  t.disable();
  t.reset();
}

// --- columnar series / store / pool units ----------------------------------

TEST(ColumnarSeries, SealingRangeAndEvictionAccounting) {
  ColumnarSeries::Options opts;
  opts.block_samples = 16;
  opts.max_blocks = 256;
  ColumnarSeries series(opts);
  std::vector<WireSample> all;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 100; ++i) {
    const sim::SimTime at = sim::msec(10) * i;
    const double v = static_cast<double>(rng() % 1000) / 8.0;
    series.append(at, v, nullptr);
    all.push_back({at, v});
  }
  EXPECT_EQ(series.total_count(), 100u);
  EXPECT_EQ(series.sealed_blocks(), 100u / 16);
  EXPECT_EQ(series.evicted_blocks(), 0u);
  EXPECT_GT(series.encoded_bytes(), 0u);

  for (int round = 0; round < 50; ++round) {
    sim::SimTime from = sim::msec(rng() % 1100);
    sim::SimTime to = sim::msec(rng() % 1100);
    if (from > to) std::swap(from, to);
    const ColumnarSeries::RangeAgg agg = series.range(from, to);
    std::size_t count = 0;
    double sum = 0.0, mn = 0.0, mx = 0.0;
    for (const WireSample& s : all) {
      if (s.first < from || s.first > to) continue;
      if (count == 0) {
        mn = mx = s.second;
      } else {
        mn = std::min(mn, s.second);
        mx = std::max(mx, s.second);
      }
      ++count;
      sum += s.second;
    }
    EXPECT_EQ(agg.count, count);
    EXPECT_DOUBLE_EQ(agg.sum, sum);
    if (count > 0) {
      EXPECT_EQ(agg.min, mn);
      EXPECT_EQ(agg.max, mx);
    }
  }
  // The full-range sketch holds every sample (cap not hit here).
  EXPECT_EQ(series.sketch(0, sim::kTimeMax).count(), 100u);

  // Eviction: a 3-block budget drops the oldest blocks with exact
  // accounting; lifetime totals stay exact.
  ColumnarSeries::Options small = opts;
  small.max_blocks = 3;
  ColumnarSeries evicting(small);
  for (int i = 0; i < 100; ++i) {
    evicting.append(sim::msec(10) * i, static_cast<double>(i), nullptr);
  }
  EXPECT_EQ(evicting.evicted_blocks(), 3u);
  EXPECT_EQ(evicting.evicted_samples(), 3u * 16);
  EXPECT_EQ(evicting.sealed_blocks(), 3u);
  EXPECT_EQ(evicting.total_count(), 100u);
  EXPECT_EQ(evicting.total_max(), 99.0);
  // Evicted samples are gone from range() but not from the totals.
  EXPECT_EQ(evicting.range(0, sim::kTimeMax).count, 100u - 48u);
}

TEST(ColumnarSeries, LastAtOrBeforePrefersLaterAppendedOnTies) {
  ColumnarSeries series;
  series.append(sim::seconds(10), 1.0, nullptr);
  series.append(sim::seconds(10), 2.0, nullptr);
  series.append(sim::seconds(30), 9.0, nullptr);
  auto fix = series.last_at_or_before(sim::seconds(20));
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->first, sim::seconds(10));
  EXPECT_EQ(fix->second, 2.0);  // later-appended wins the tie
  EXPECT_FALSE(series.last_at_or_before(sim::seconds(9)).has_value());
  // Ties across a block seal keep the same rule.
  ColumnarSeries::Options opts;
  opts.block_samples = 2;
  ColumnarSeries sealed(opts);
  sealed.append(sim::seconds(10), 1.0, nullptr);
  sealed.append(sim::seconds(10), 2.0, nullptr);  // sealed block
  sealed.append(sim::seconds(10), 3.0, nullptr);  // active block
  fix = sealed.last_at_or_before(sim::seconds(10));
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->second, 3.0);
}

TEST(ColumnarStore, PoolRecyclesBlockMemoryAcrossSeals) {
  BlockPool pool;
  ColumnarSeries::Options opts;
  opts.block_samples = 8;
  opts.max_blocks = 4;  // force evictions so encode buffers recycle too
  ColumnarStore store(opts, &pool);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store.observe("m", sim::msec(i), static_cast<double>(i)));
  }
  // 50 seals: after the first few, columns and encode buffers come from
  // the free lists instead of fresh allocations.
  EXPECT_GT(pool.column_reuses(), 40u);
  EXPECT_GT(pool.buffer_reuses(), 0u);
  EXPECT_LT(pool.column_allocs(), 5u);
  // Validation contract: non-finite values and negative times rejected.
  EXPECT_FALSE(store.observe("m", sim::msec(1), std::nan("")));
  EXPECT_FALSE(store.observe("m", -1, 1.0));
  EXPECT_EQ(store.rejected(), 2u);
  EXPECT_EQ(store.total_count("m"), 400u);
}

}  // namespace
}  // namespace vdap::telemetry::fleet
