#include "edgeos/elastic.hpp"

#include <gtest/gtest.h>

#include "hw/catalog.hpp"
#include "workload/apps.hpp"

namespace vdap::edgeos {
namespace {

class ElasticTest : public ::testing::Test {
 protected:
  ElasticTest()
      : cpu(sim, hw::catalog::core_i7_6700()),
        gpu(sim, hw::catalog::jetson_tx2_maxp()),
        fpga(sim, hw::catalog::automotive_fpga()),
        asic(sim, hw::catalog::cnn_asic()),
        rsu(sim, hw::catalog::rsu_edge_server()),
        cloud(sim, hw::catalog::cloud_server()),
        topo(sim),
        dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>()),
        mgr(sim, dsf, topo) {
    // The full reference 1stHEP: a healthy vehicle beats paying the network.
    reg.join(&cpu);
    reg.join(&gpu);
    reg.join(&fpga);
    reg.join(&asic);
    mgr.set_remote_device(net::Tier::kRsuEdge, &rsu);
    mgr.set_remote_device(net::Tier::kCloud, &cloud);
  }

  PolymorphicService plate_service() {
    return make_polymorphic_multi(
        workload::apps::license_plate_pipeline(),
        {net::Tier::kRsuEdge, net::Tier::kCloud});
  }

  sim::Simulator sim;
  hw::ComputeDevice cpu, gpu, fpga, asic, rsu, cloud;
  vcu::ResourceRegistry reg;
  net::Topology topo;
  vcu::Dsf dsf;
  ElasticManager mgr;
};

TEST_F(ElasticTest, ServiceFactoryBuildsPaperPipelines) {
  PolymorphicService svc = plate_service();
  // onboard + (remote, split) x 2 tiers = 5 pipelines.
  ASSERT_EQ(svc.pipelines.size(), 5u);
  EXPECT_TRUE(svc.pipelines[0].all_on_board());
  std::string why;
  EXPECT_TRUE(svc.validate(&why)) << why;
}

TEST_F(ElasticTest, SplitKeepsSourceOnBoard) {
  PolymorphicService svc =
      make_polymorphic(workload::apps::license_plate_pipeline(),
                       net::Tier::kRsuEdge);
  const Pipeline& split = svc.pipelines[2];
  EXPECT_EQ(split.placement[0], net::Tier::kOnBoard);   // motion detect
  EXPECT_EQ(split.placement[1], net::Tier::kRsuEdge);   // plate detect
  EXPECT_EQ(split.placement[2], net::Tier::kRsuEdge);   // recognize
}

TEST_F(ElasticTest, PinnedTasksStayOnBoardInEveryPipeline) {
  PolymorphicService svc = make_polymorphic(
      workload::apps::pedestrian_detection(), net::Tier::kCloud);
  for (const Pipeline& p : svc.pipelines) {
    EXPECT_EQ(p.placement[2], net::Tier::kOnBoard) << p.name;  // actuation
  }
  EXPECT_TRUE(svc.validate());
}

TEST_F(ElasticTest, ValidateCatchesBadPipelines) {
  PolymorphicService svc = plate_service();
  svc.pipelines[1].placement.pop_back();
  std::string why;
  EXPECT_FALSE(svc.validate(&why));
  EXPECT_NE(why.find("cover"), std::string::npos);
}

TEST_F(ElasticTest, EstimatesEveryPipeline) {
  auto ests = mgr.estimate(plate_service());
  ASSERT_EQ(ests.size(), 5u);
  for (const auto& e : ests) {
    EXPECT_TRUE(e.feasible) << e.pipeline;
    EXPECT_GT(e.latency, 0) << e.pipeline;
  }
}

TEST_F(ElasticTest, OffboardPipelinesUseLessOnboardEnergy) {
  auto ests = mgr.estimate(plate_service());
  // ests[0] = onboard, ests[1] = remote-rsu.
  EXPECT_GT(ests[0].onboard_energy_j, ests[1].onboard_energy_j);
}

TEST_F(ElasticTest, UnreachableTierIsInfeasible) {
  topo.set_available(net::Tier::kRsuEdge, false);
  auto ests = mgr.estimate(plate_service());
  EXPECT_TRUE(ests[0].feasible);                       // onboard
  EXPECT_FALSE(ests[1].feasible) << ests[1].pipeline;  // remote-rsu
  EXPECT_FALSE(ests[2].feasible);                      // split-rsu
  EXPECT_TRUE(ests[3].feasible);                       // remote-cloud
}

TEST_F(ElasticTest, MissingRemoteDeviceIsInfeasible) {
  ElasticManager bare(sim, dsf, topo);
  auto ests = bare.estimate(plate_service());
  EXPECT_TRUE(ests[0].feasible);
  EXPECT_FALSE(ests[1].feasible);
}

TEST_F(ElasticTest, ChoosePrefersOnboardWhenLocalIsFast) {
  // Plate pipeline is light; on-board beats paying network latency.
  PolymorphicService svc = plate_service();
  const Pipeline* p = mgr.choose(svc);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name, "onboard");
}

TEST_F(ElasticTest, ChooseOffloadsWhenVehicleIsBusy) {
  // Saturate the on-board devices; the edge becomes the fastest finish.
  for (int i = 0; i < 30; ++i) {
    cpu.submit({hw::TaskClass::kCnnInference, 74.0, 0, nullptr});
    gpu.submit({hw::TaskClass::kCnnInference, 99.0, 0, nullptr});
    fpga.submit({hw::TaskClass::kCnnInference, 60.0, 0, nullptr});
    asic.submit({hw::TaskClass::kCnnInference, 230.0, 0, nullptr});
  }
  PolymorphicService svc = plate_service();
  const Pipeline* p = mgr.choose(svc);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(p->name, "onboard");
}

TEST_F(ElasticTest, GoalEnergyPicksLowestOnboardEnergy) {
  mgr.options().goal = Goal::kMinEnergy;
  PolymorphicService svc = plate_service();
  svc.dag.set_qos({0, 4, 0});  // drop the deadline so all feasible
  const Pipeline* p = mgr.choose(svc);
  ASSERT_NE(p, nullptr);
  auto ests = mgr.estimate(svc);
  double chosen_energy = -1.0;
  double min_energy = 1e18;
  for (const auto& e : ests) {
    if (e.pipeline == p->name) chosen_energy = e.onboard_energy_j;
    if (e.feasible) min_energy = std::min(min_energy, e.onboard_energy_j);
  }
  EXPECT_DOUBLE_EQ(chosen_energy, min_energy);
}

TEST_F(ElasticTest, RunExecutesChosenPipelineEndToEnd) {
  ServiceRunReport rep;
  mgr.run(plate_service(), [&](const ServiceRunReport& r) { rep = r; });
  sim.run_until();
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.deadline_met);
  EXPECT_EQ(rep.pipeline, "onboard");
  EXPECT_GT(rep.latency(), 0);
  EXPECT_EQ(mgr.completed(), 1u);
}

TEST_F(ElasticTest, RemotePipelineActuallyUsesRemoteDevice) {
  PolymorphicService svc = plate_service();
  svc.pipelines = {svc.pipelines[1]};  // force remote-rsu
  ServiceRunReport rep;
  mgr.run(svc, [&](const ServiceRunReport& r) { rep = r; });
  sim.run_until();
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.pipeline, "remote-rsu-edge");
  EXPECT_EQ(rsu.completed(), 3u);  // all three stages ran at the RSU
  EXPECT_EQ(cpu.completed() + gpu.completed(), 0u);
}

TEST_F(ElasticTest, TightDeadlineWithNoFeasiblePipelineHangsService) {
  PolymorphicService svc = plate_service();
  svc.dag.set_qos({sim::usec(10), 4, 0});  // impossible deadline
  ServiceRunReport rep;
  bool called = false;
  mgr.run(svc, [&](const ServiceRunReport& r) {
    rep = r;
    called = true;
  });
  EXPECT_EQ(mgr.hung_count(), 1u);
  sim.run_until(sim::seconds(1));
  EXPECT_FALSE(called);  // still hung
}

TEST_F(ElasticTest, HungServiceResumesWhenConditionsImprove) {
  // Take every tier away except a saturated vehicle; hang, then free the
  // vehicle and reevaluate.
  topo.set_available(net::Tier::kRsuEdge, false);
  topo.set_available(net::Tier::kBaseStationEdge, false);
  topo.set_available(net::Tier::kCloud, false);
  for (int i = 0; i < 200; ++i) {
    cpu.submit({hw::TaskClass::kCnnInference, 74.0, 0, nullptr});
    gpu.submit({hw::TaskClass::kCnnInference, 99.0, 0, nullptr});
    fpga.submit({hw::TaskClass::kCnnInference, 60.0, 0, nullptr});
    asic.submit({hw::TaskClass::kCnnInference, 230.0, 0, nullptr});
  }
  PolymorphicService svc = plate_service();
  ServiceRunReport rep;
  bool called = false;
  mgr.run(svc, [&](const ServiceRunReport& r) {
    rep = r;
    called = true;
  });
  EXPECT_EQ(mgr.hung_count(), 1u);
  // Conditions improve: the RSU comes back into range.
  sim.after(sim::seconds(2), [&] {
    topo.set_available(net::Tier::kRsuEdge, true);
    mgr.reevaluate();
  });
  sim.run_until(sim::seconds(30));
  ASSERT_TRUE(called);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.was_hung);
  EXPECT_GE(rep.latency(), sim::seconds(2));  // includes hung time
  EXPECT_EQ(mgr.hung_count(), 0u);
}

TEST_F(ElasticTest, DegradedCellularShiftsChoiceToRsu) {
  // Make on-board unattractive (busy) so the choice is between tiers, then
  // degrade cellular: the cloud pipelines should lose to RSU ones.
  for (int i = 0; i < 50; ++i) {
    cpu.submit({hw::TaskClass::kCnnInference, 74.0, 0, nullptr});
    gpu.submit({hw::TaskClass::kCnnInference, 99.0, 0, nullptr});
    fpga.submit({hw::TaskClass::kCnnInference, 60.0, 0, nullptr});
    asic.submit({hw::TaskClass::kCnnInference, 230.0, 0, nullptr});
  }
  topo.apply_cellular_condition(0.05, 0.3);
  PolymorphicService svc = plate_service();
  const Pipeline* p = mgr.choose(svc);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(p->name.find("rsu"), std::string::npos) << p->name;
}

TEST_F(ElasticTest, EstimatesTrackActualsOnIdleSystem) {
  // The planner is only as good as its estimator: on an idle system (no
  // contention arising after the decision) each pipeline's estimated
  // latency must be close to what actually happens.
  PolymorphicService base = plate_service();
  base.dag.set_qos({0, 4, 0});
  auto ests = mgr.estimate(base);
  for (std::size_t i = 0; i < base.pipelines.size(); ++i) {
    ASSERT_TRUE(ests[i].feasible) << ests[i].pipeline;
    PolymorphicService forced = base;
    forced.pipelines = {base.pipelines[i]};
    ServiceRunReport rep;
    mgr.run(forced, [&](const ServiceRunReport& r) { rep = r; });
    sim.run_until(sim.now() + sim::minutes(2));
    ASSERT_TRUE(rep.ok) << ests[i].pipeline;
    double est_ms = sim::to_millis(ests[i].latency);
    double act_ms = sim::to_millis(rep.latency());
    // Within 30% or 10 ms — transfers pay per-message loss/retry jitter
    // the analytic estimate only averages.
    EXPECT_NEAR(act_ms, est_ms, std::max(10.0, 0.30 * est_ms))
        << ests[i].pipeline;
  }
}

TEST_F(ElasticTest, RejectsOnBoardRemoteDevice) {
  EXPECT_THROW(mgr.set_remote_device(net::Tier::kOnBoard, &cpu),
               std::invalid_argument);
}

TEST_F(ElasticTest, EstimateRejectsInvalidService) {
  PolymorphicService svc;
  EXPECT_THROW(mgr.estimate(svc), std::invalid_argument);
}

}  // namespace
}  // namespace vdap::edgeos
