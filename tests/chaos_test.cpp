// Chaos suite: every canned fault plan x several seeds, each run TWICE.
// Asserts the platform's conservation invariants under injected faults and
// that the whole run — fault trace, service reports, sync counters — is
// bit-identical for a repeated (seed, plan) pair.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "chaos_harness.hpp"

namespace vdap {
namespace {

using chaos::ChaosOutcome;
using chaos::run_chaos;

class ChaosMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  static sim::FaultPlan plan_by_name(const std::string& name) {
    for (const sim::FaultPlan& p : sim::plans::all()) {
      if (p.name == name) return p;
    }
    ADD_FAILURE() << "unknown plan " << name;
    return {};
  }
};

TEST_P(ChaosMatrix, InvariantsHoldAndRunsAreDeterministic) {
  const auto& [plan_name, seed] = GetParam();
  sim::FaultPlan plan = plan_by_name(plan_name);
  std::string tag = std::to_string(seed);
  ChaosOutcome a = run_chaos(plan, seed, tag + "-a");
  ChaosOutcome b = run_chaos(plan, seed, tag + "-b");

  // --- the plan actually did something -----------------------------------
  EXPECT_GT(a.faults_applied, 0u);
  EXPECT_FALSE(a.fault_trace.empty());

  // --- conservation: no DDI record lost or duplicated --------------------
  EXPECT_GT(a.uploads, 0u);
  EXPECT_EQ(a.cloud.size(), a.uploads)
      << "cloud is missing records (lost across flaps/retries)";
  for (const auto& [key, copies] : a.cloud) {
    ASSERT_EQ(copies, 1) << "duplicate delivery of " << key.first << "@"
                         << key.second;
  }
  EXPECT_EQ(a.backlog, 0u) << "sync never drained after healing";
  EXPECT_EQ(a.staged, 0u) << "records stuck in staging after force flush";

  // --- conservation: every released DAG is accounted for -----------------
  EXPECT_GT(a.releases, 0u);
  EXPECT_EQ(a.reports, a.releases)
      << "a released service never produced a completion report";
  EXPECT_EQ(a.active_runs, 0u) << "run leaked in the elastic manager";
  EXPECT_EQ(a.hung, 0u) << "hung run neither resumed nor abandoned";
  // Whatever wasn't completed ok was explicitly reported, not dropped.
  EXPECT_LE(a.completed_ok + a.infeasible, a.reports);

  // --- telemetry: every begin() was matched by an end() -------------------
  EXPECT_EQ(a.open_spans, 0u) << "telemetry span leaked across the drain";
  EXPECT_FALSE(a.trace_json.empty());

  // --- determinism: identical (seed, plan) => identical run --------------
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.report_trace, b.report_trace);
  EXPECT_EQ(a.cloud, b.cloud);
  EXPECT_EQ(a.uploads, b.uploads);
  EXPECT_EQ(a.completed_ok, b.completed_ok);
  EXPECT_EQ(a.infeasible, b.infeasible);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.reinstalls, b.reinstalls);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.sync_failed, b.sync_failed);
  EXPECT_EQ(a.sync_retries, b.sync_retries);
  EXPECT_EQ(a.disk_failures, b.disk_failures);
}

std::vector<std::string> plan_names() {
  std::vector<std::string> names;
  for (const sim::FaultPlan& p : sim::plans::all()) names.push_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllPlans, ChaosMatrix,
    ::testing::Combine(::testing::ValuesIn(plan_names()),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<ChaosMatrix::ParamType>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// --- targeted scenario checks on top of the generic invariants -------------

TEST(ChaosScenario, CloudBlackoutForcesRetriesThenDrains) {
  ChaosOutcome out = run_chaos(sim::plans::cloud_blackout(), 11, "scenario");
  // The 75 s cloud outage must have made CloudSync fail and retry.
  EXPECT_GT(out.sync_failed, 0u);
  EXPECT_GT(out.sync_retries, 0u);
  EXPECT_EQ(out.backlog, 0u);
  EXPECT_EQ(out.cloud.size(), out.uploads);
}

TEST(ChaosScenario, EdgeAttackTriggersSecurityAndFailover) {
  ChaosOutcome out = run_chaos(sim::plans::edge_attack(), 11, "scenario");
  // The container compromise is detected; crashes trigger reinstalls.
  EXPECT_GT(out.detected, 0u);
  EXPECT_GT(out.crashes, 0u);
  EXPECT_GT(out.reinstalls, 0u);
  EXPECT_EQ(out.reports, out.releases);
}

TEST(ChaosScenario, DiskHiccupsAreRetriedWithoutLoss) {
  ChaosOutcome out = run_chaos(sim::plans::disk_hiccups(), 11, "scenario");
  // Write faults were hit, yet nothing was lost end to end.
  EXPECT_GT(out.disk_failures, 0u);
  EXPECT_EQ(out.cloud.size(), out.uploads);
  EXPECT_EQ(out.staged, 0u);
}

}  // namespace
}  // namespace vdap
