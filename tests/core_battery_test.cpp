#include "core/battery.hpp"

#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "workload/apps.hpp"

namespace vdap::core {
namespace {

TEST(Battery, SocDrainsWithBoardLoad) {
  sim::Simulator sim(3);
  hw::VcuBoard board(sim, "b");
  hw::populate_reference_1sthep(board);
  BatteryModel battery(sim, board, {10'000.0, sim::seconds(1)});
  battery.start();
  EXPECT_DOUBLE_EQ(battery.soc(), 1.0);
  // Keep the CPU busy for a minute (~60 W -> ~3.6 kJ) plus idle floors.
  auto* cpu = board.device("core-i7-6700");
  for (int i = 0; i < 100; ++i) {
    cpu->submit({hw::TaskClass::kGeneric, 25.0, 0, nullptr});  // 1 s each
  }
  sim.run_until(sim::minutes(1));
  EXPECT_LT(battery.soc(), 0.85);
  EXPECT_GT(battery.soc(), 0.0);
  EXPECT_GT(battery.consumed_j(), 1'800.0);
}

TEST(Battery, ExternalEnergyCounts) {
  sim::Simulator sim(3);
  hw::VcuBoard board(sim, "b");
  BatteryModel battery(sim, board, {1'000.0, sim::seconds(1)});
  battery.start();
  battery.add_external_energy(600.0);  // radio transfers
  EXPECT_NEAR(battery.soc(), 0.4, 1e-9);
}

TEST(Battery, SocClampsAtZero) {
  sim::Simulator sim(3);
  hw::VcuBoard board(sim, "b");
  BatteryModel battery(sim, board, {100.0, sim::seconds(1)});
  battery.start();
  battery.add_external_energy(1e6);
  EXPECT_DOUBLE_EQ(battery.soc(), 0.0);
}

TEST(Battery, RejectsBadOptions) {
  sim::Simulator sim(3);
  hw::VcuBoard board(sim, "b");
  EXPECT_THROW(BatteryModel(sim, board, {0.0, sim::seconds(1)}),
               std::invalid_argument);
}

TEST(Governor, SwitchesGoalAtLowSocAndBack) {
  sim::Simulator sim(7);
  OpenVdap cav(sim);
  // Small budget so sustained load drains it within the test window.
  BatteryModel battery(sim, cav.board(), {2'000.0, sim::seconds(1)});
  battery.start();
  GovernorOptions gopts;
  gopts.low_soc = 0.5;
  gopts.restore_soc = 0.8;
  gopts.check_period = sim::seconds(1);
  EnergyGovernor governor(sim, battery, cav.elastic(), gopts);
  governor.start();
  std::vector<bool> transitions;
  governor.on_switch([&](bool saving) { transitions.push_back(saving); });

  EXPECT_EQ(cav.elastic().options().goal, edgeos::Goal::kMinLatency);
  // Burn energy: idle floors alone (~10 W) need help; add CPU load.
  auto* cpu = cav.registry().find("core-i7-6700");
  for (int i = 0; i < 60; ++i) {
    cpu->submit({hw::TaskClass::kGeneric, 25.0, 0, nullptr});
  }
  sim.run_until(sim::minutes(2));
  EXPECT_TRUE(governor.saving());
  EXPECT_EQ(cav.elastic().options().goal, edgeos::Goal::kMinEnergy);
  ASSERT_FALSE(transitions.empty());
  EXPECT_TRUE(transitions.front());
  EXPECT_EQ(governor.mode_switches(), 1);  // no flapping back (budget spent)
}

TEST(Governor, EnergyModeChangesOffloadChoices) {
  // The point of the governor: under the energy goal the elastic manager
  // prefers shipping work off the vehicle even when on-board is faster.
  sim::Simulator sim(9);
  OpenVdap cav(sim);
  auto svc = edgeos::make_polymorphic(workload::apps::inception_v3(),
                                      net::Tier::kRsuEdge);
  svc.dag.set_qos({0, 3, 0});
  cav.elastic().options().goal = edgeos::Goal::kMinLatency;
  {
    const edgeos::Pipeline* fast = cav.elastic().choose(svc);
    ASSERT_NE(fast, nullptr);
    EXPECT_EQ(fast->name, "onboard");
  }
  cav.elastic().options().goal = edgeos::Goal::kMinEnergy;
  const edgeos::Pipeline* frugal = cav.elastic().choose(svc);
  ASSERT_NE(frugal, nullptr);
  EXPECT_NE(frugal->name, "onboard");
}

TEST(Governor, CanDriveDvfsThroughTheSwitchHook) {
  // Combined energy response: when the budget runs low, besides preferring
  // off-vehicle pipelines, drop the GPU to its Max-Q operating point.
  sim::Simulator sim(13);
  OpenVdap cav(sim);
  BatteryModel battery(sim, cav.board(), {1'500.0, sim::seconds(1)});
  battery.start();
  EnergyGovernor governor(sim, battery, cav.elastic(),
                          {0.5, 0.8, sim::seconds(1)});
  auto* gpu = cav.registry().find("jetson-tx2-maxp");
  ASSERT_NE(gpu, nullptr);
  governor.on_switch([&](bool saving) {
    hw::ProcessorSpec mode = saving ? hw::catalog::jetson_tx2_maxq()
                                    : hw::catalog::jetson_tx2_maxp();
    mode.name = gpu->name();  // same physical device, new operating point
    mode.slots = gpu->spec().slots;
    gpu->reconfigure(mode);
  });
  governor.start();
  // Drain the budget with CPU load; the GPU mode must flip to eco.
  auto* cpu = cav.registry().find("core-i7-6700");
  for (int i = 0; i < 60; ++i) {
    cpu->submit({hw::TaskClass::kGeneric, 25.0, 0, nullptr});
  }
  sim.run_until(sim::minutes(3));
  EXPECT_TRUE(governor.saving());
  EXPECT_DOUBLE_EQ(gpu->spec().max_power_w, 7.5);  // Max-Q tables active
  EXPECT_NEAR(gpu->spec().throughput(hw::TaskClass::kCnnInference),
              hw::kInceptionV3Gflop / 0.2428, 1.0);
}

TEST(Governor, RejectsInvertedThresholds) {
  sim::Simulator sim(3);
  hw::VcuBoard board(sim, "b");
  BatteryModel battery(sim, board);
  net::Topology topo(sim);
  vcu::ResourceRegistry reg;
  vcu::Dsf dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>());
  edgeos::ElasticManager elastic(sim, dsf, topo);
  EXPECT_THROW(
      EnergyGovernor(sim, battery, elastic, {0.5, 0.3, sim::seconds(1)}),
      std::invalid_argument);
}

}  // namespace
}  // namespace vdap::core
