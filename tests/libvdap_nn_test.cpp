#include "libvdap/nn.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vdap::libvdap {
namespace {

TEST(Matrix, ApplyAndTranspose) {
  Matrix m(2, 3);
  // [[1,2,3],[4,5,6]]
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      m.at(r, c) = static_cast<double>(r * 3 + c + 1);
    }
  }
  auto y = m.apply({1.0, 0.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  auto yt = m.apply_transposed({1.0, 1.0});
  ASSERT_EQ(yt.size(), 3u);
  EXPECT_DOUBLE_EQ(yt[0], 5.0);
  EXPECT_DOUBLE_EQ(yt[2], 9.0);
}

TEST(Matrix, RankOneUpdate) {
  Matrix m(2, 2);
  m.rank_one_update({1.0, 2.0}, {3.0, 4.0}, 0.1);
  EXPECT_DOUBLE_EQ(m.at(0, 0), -0.3);
  EXPECT_DOUBLE_EQ(m.at(1, 1), -0.8);
}

TEST(Matrix, SparsityCounting) {
  Matrix m(2, 2);
  EXPECT_DOUBLE_EQ(m.sparsity(), 1.0);
  m.at(0, 0) = 5.0;
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.sparsity(), 0.75);
}

TEST(Activations, ReluAndSoftmax) {
  std::vector<double> v{-1.0, 0.5, 2.0};
  relu(v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);
  auto mask = relu_mask(v);
  EXPECT_DOUBLE_EQ(mask[0], 0.0);
  EXPECT_DOUBLE_EQ(mask[1], 1.0);

  std::vector<double> s{1.0, 2.0, 3.0};
  softmax(s);
  double sum = s[0] + s[1] + s[2];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(s[2], s[1]);
  EXPECT_EQ(argmax(s), 2u);
  // Stability under large logits.
  std::vector<double> big{1000.0, 1001.0};
  softmax(big);
  EXPECT_FALSE(std::isnan(big[0]));
  EXPECT_NEAR(big[0] + big[1], 1.0, 1e-12);
}

Dataset xor_dataset() {
  // XOR with a margin: not linearly separable, needs the hidden layer.
  Dataset d;
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int rep = 0; rep < 10; ++rep) {
        LabeledSample s;
        s.features = {static_cast<double>(a), static_cast<double>(b)};
        s.label = a ^ b;
        d.push_back(std::move(s));
      }
    }
  }
  return d;
}

TEST(Mlp, LearnsXor) {
  util::RngStream rng(17);
  Mlp model({2, 8, 2}, rng);
  Dataset data = xor_dataset();
  double initial_loss = model.mean_loss(data);
  TrainOptions opt;
  opt.epochs = 200;
  opt.lr = 0.1;
  model.train(data, opt, rng);
  EXPECT_LT(model.mean_loss(data), initial_loss);
  EXPECT_DOUBLE_EQ(model.accuracy(data), 1.0);
}

TEST(Mlp, PredictProbaIsDistribution) {
  util::RngStream rng(1);
  Mlp model({4, 6, 3}, rng);
  auto p = model.predict_proba({0.1, -0.2, 0.3, 0.4});
  ASSERT_EQ(p.size(), 3u);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Mlp, DimensionValidation) {
  util::RngStream rng(1);
  EXPECT_THROW(Mlp({4}, rng), std::invalid_argument);
  Mlp model({4, 3, 2}, rng);
  EXPECT_EQ(model.input_dim(), 4u);
  EXPECT_EQ(model.output_dim(), 2u);
  EXPECT_THROW(model.predict_proba({1.0}), std::invalid_argument);
  EXPECT_THROW(model.train({}, {}, rng), std::invalid_argument);
}

TEST(Mlp, ParamCountAndBytes) {
  util::RngStream rng(1);
  Mlp model({7, 32, 16, 3}, rng);
  // 32*7+32 + 16*32+16 + 3*16+3 = 256 + 528 + 819? compute: 224+32=256;
  // 512+16=528; 48+3=51 → 835.
  EXPECT_EQ(model.num_params(), 835u);
  EXPECT_EQ(model.dense_bytes(), 835u * 4);
}

TEST(Mlp, FreezeHiddenOnlyChangesLastLayer) {
  util::RngStream rng(5);
  Mlp model({2, 8, 2}, rng);
  Matrix hidden_before = model.weights(0);
  Matrix out_before = model.weights(1);
  TrainOptions opt;
  opt.epochs = 5;
  opt.freeze_hidden = true;
  model.train(xor_dataset(), opt, rng);
  // Hidden layer untouched; output layer moved.
  EXPECT_EQ(model.weights(0).data(), hidden_before.data());
  EXPECT_NE(model.weights(1).data(), out_before.data());
}

TEST(Mlp, PreserveZerosKeepsPrunedStructure) {
  util::RngStream rng(5);
  Mlp model({2, 8, 2}, rng);
  // Zero a few weights by hand.
  model.weights(0).at(0, 0) = 0.0;
  model.weights(1).at(1, 3) = 0.0;
  TrainOptions opt;
  opt.epochs = 10;
  opt.preserve_zeros = true;
  model.train(xor_dataset(), opt, rng);
  EXPECT_DOUBLE_EQ(model.weights(0).at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.weights(1).at(1, 3), 0.0);
}

TEST(Mlp, TrainingIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    util::RngStream rng(seed);
    Mlp model({2, 8, 2}, rng);
    TrainOptions opt;
    opt.epochs = 20;
    model.train(xor_dataset(), opt, rng);
    return model.mean_loss(xor_dataset());
  };
  EXPECT_DOUBLE_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

}  // namespace
}  // namespace vdap::libvdap
