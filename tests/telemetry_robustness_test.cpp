// Exporter robustness and Session misuse (DESIGN.md §6c): hostile strings
// (non-ASCII, control chars, invalid UTF-8) must round-trip through every
// exported artifact; non-finite metric values are rejected at the door; and
// Session misuse is non-throwing except the documented nested-capture
// throw. Also the disk-shaped fleet surfaces (DESIGN.md §6g): the VCB1
// columnar block codec and the DDI-style query parser are fuzzed here —
// truncations, bit flips, hostile lengths and token soup must all come
// back as clean errors, never crashes (the suite runs under ASan in
// check.sh).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>

#include "sim/simulator.hpp"
#include "telemetry/analysis/critical_path.hpp"
#include "telemetry/fleet/columnar.hpp"
#include "telemetry/fleet/query.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/session.hpp"
#include "util/json.hpp"

namespace vdap {
namespace {

// Decodes an escaped JSON string by parsing it back.
std::string roundtrip(const std::string& s) {
  return json::parse(json::escape(s)).as_string();
}

TEST(JsonEscape, BmpNonAsciiBecomesEscapesAndRoundTrips) {
  // Latin-1 and CJK stay inside the BMP: pure-ASCII output, lossless.
  for (const std::string s :
       {std::string("\u00b5s"), std::string("na\u00efve"),
        std::string("\u8eca\u8f09")}) {
    std::string escaped = json::escape(s);
    for (char c : escaped) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
      EXPECT_LT(static_cast<unsigned char>(c), 0x80u);
    }
    EXPECT_EQ(roundtrip(s), s);
  }
  EXPECT_EQ(json::escape("\u00b5s"), "\"\\u00b5s\"");
}

TEST(JsonEscape, ControlCharsAreEscaped) {
  std::string s = "a\x01\x1f\n\t\"b\\";
  std::string escaped = json::escape(s);
  EXPECT_EQ(escaped, "\"a\\u0001\\u001f\\n\\t\\\"b\\\\\"");
  EXPECT_EQ(roundtrip(s), s);
}

TEST(JsonEscape, AstralPlanesPassThroughRaw) {
  // 4-byte UTF-8 (outside the BMP) passes through unescaped — the parser
  // has no surrogate pairs — and round-trips byte-for-byte.
  std::string car = "\xF0\x9F\x9A\x97";  // U+1F697
  EXPECT_EQ(json::escape(car), "\"" + car + "\"");
  EXPECT_EQ(roundtrip(car), car);
}

TEST(JsonEscape, InvalidUtf8BecomesReplacementChar) {
  for (const std::string s :
       {std::string("a\xffz"), std::string("\xc3"),      // truncated lead
        std::string("\xe2\x28\xa1"),                     // bad continuation
        std::string("\xc0\xaf")}) {                      // overlong
    std::string escaped = json::escape(s);
    std::string decoded = json::parse(escaped).as_string();
    EXPECT_NE(decoded.find("\xEF\xBF\xBD"), std::string::npos) << escaped;
  }
  // The valid neighbors survive.
  EXPECT_EQ(roundtrip("a\xffz").front(), 'a');
  EXPECT_EQ(roundtrip("a\xffz").back(), 'z');
}

TEST(Metrics, NonFiniteValuesAreRejected) {
  sim::Simulator sim(1);
  telemetry::Session session(sim);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  telemetry::observe("lat", nan);
  telemetry::observe("lat", {{"svc", "x"}}, inf);
  telemetry::gauge("g", -inf);
  telemetry::metrics().set_gauge("g2", {{"svc", "x"}}, nan);
  telemetry::tracer().counter(0, "track", "c", nan);
  telemetry::tracer().counter(0, "track", "c", inf);

  EXPECT_EQ(telemetry::metrics().histogram("lat"), nullptr);
  EXPECT_EQ(telemetry::metrics().histogram("lat{svc=x}"), nullptr);
  EXPECT_TRUE(telemetry::metrics().gauges().empty());
  EXPECT_TRUE(telemetry::tracer().events().empty());

  // Finite values still land, and a later non-finite write can't clobber.
  telemetry::gauge("g", 2.5);
  telemetry::gauge("g", nan);
  EXPECT_DOUBLE_EQ(telemetry::metrics().gauge_value("g"), 2.5);
  telemetry::observe("lat", 10.0);
  ASSERT_NE(telemetry::metrics().histogram("lat"), nullptr);
  EXPECT_EQ(telemetry::metrics().histogram("lat")->count(), 1u);

  // No artifact ever contains a non-finite token.
  session.snapshot();
  for (const std::string& artifact :
       {session.chrome_trace(), session.snapshots_jsonl()}) {
    EXPECT_EQ(artifact.find("nan"), std::string::npos);
    EXPECT_EQ(artifact.find("inf"), std::string::npos);
  }
}

TEST(Exporters, HostileStringsRoundTripThroughEveryArtifact) {
  sim::Simulator sim(1);
  telemetry::Session session(sim);
  session.start_snapshots(sim::seconds(1));

  const std::string weird = "svc \u00b5/\u8eca \xF0\x9F\x9A\x97 \x01\"\\";
  const std::string bad = "bad\xff bytes";
  json::Object args;
  args[weird] = weird;
  telemetry::tracer().instant(5, weird, weird, weird, std::move(args));
  std::uint64_t id = telemetry::tracer().begin(10, "cat", bad, bad);
  telemetry::tracer().end(20, id);
  telemetry::count("runs", {{"svc", weird}});
  telemetry::observe("lat", {{"svc", bad}}, 1.5);
  telemetry::gauge(weird, 1.0);
  sim.run_until(sim::seconds(3));

  // Chrome trace: parses as JSON, and through the analysis parser; the
  // BMP/control portions decode back losslessly.
  std::string trace = session.chrome_trace();
  json::Value doc = json::parse(trace);
  ASSERT_TRUE(doc.contains("traceEvents"));

  std::vector<telemetry::TraceEvent> events;
  std::vector<std::string> tracks;
  std::string error;
  ASSERT_TRUE(telemetry::analysis::parse_chrome_trace(trace, &events, &tracks,
                                                      &error))
      << error;
  bool found = false;
  for (const telemetry::TraceEvent& ev : events) {
    if (ev.ph == 'i' && ev.ts == 5) {
      found = true;
      EXPECT_EQ(ev.name, weird);
      EXPECT_EQ(ev.cat, weird);
      ASSERT_LT(ev.tid, tracks.size());
      EXPECT_EQ(tracks[ev.tid], weird);
      EXPECT_EQ(ev.args.at(weird).as_string(), weird);
    }
  }
  EXPECT_TRUE(found);

  // Snapshots: every JSONL line is valid JSON with the expected keys.
  ASSERT_FALSE(session.snapshot_lines().empty());
  for (const std::string& line : session.snapshot_lines()) {
    json::Value snap = json::parse(line);
    EXPECT_TRUE(snap.contains("t"));
    EXPECT_TRUE(snap.contains("counters"));
    EXPECT_TRUE(snap.contains("histograms"));
  }

  // The text report renders without throwing.
  EXPECT_FALSE(session.text_report().empty());
}

TEST(Session, NestedCaptureThrows) {
  sim::Simulator sim(1);
  telemetry::Session outer(sim);
  EXPECT_THROW(telemetry::Session inner(sim), std::logic_error);
  // The failed nested construction must not have disabled the outer one.
  EXPECT_TRUE(telemetry::on());
}

TEST(Session, MidRunCaptureUsesCurrentSimTime) {
  sim::Simulator sim(1);
  sim.run_until(sim::seconds(5));
  telemetry::Session session(sim);  // capture starts mid-run: fine
  session.snapshot();
  ASSERT_EQ(session.snapshot_lines().size(), 1u);
  EXPECT_EQ(json::parse(session.snapshot_lines()[0]).get_int("t"),
            static_cast<std::int64_t>(sim::seconds(5)));
}

TEST(Session, StopAndDoubleStopAreNoops) {
  sim::Simulator sim(1);
  telemetry::Session session(sim);
  session.stop_snapshots();  // never started: no-op
  session.start_snapshots(sim::seconds(1));
  session.start_snapshots(sim::seconds(2));  // restart replaces the schedule
  sim.run_until(sim::seconds(5));
  std::size_t n = session.snapshot_lines().size();
  EXPECT_EQ(n, 2u);  // t=2s, t=4s — the 1 s schedule was replaced
  session.stop_snapshots();
  session.stop_snapshots();  // double stop: no-op
  sim.run_until(sim::seconds(10));
  EXPECT_EQ(session.snapshot_lines().size(), n);
}

TEST(Session, ZeroEventExportsAreValid) {
  sim::Simulator sim(1);
  telemetry::Session session(sim);
  std::string trace = session.chrome_trace();
  json::Value doc = json::parse(trace);
  EXPECT_EQ(doc.at("traceEvents").size(), 0u);
  EXPECT_TRUE(session.snapshots_jsonl().empty());
  EXPECT_TRUE(session.text_report().empty());  // no metrics, no tables
  EXPECT_EQ(session.open_spans(), 0u);

  // And the zero-event trace feeds the analysis layer cleanly.
  std::vector<telemetry::TraceEvent> events;
  std::vector<std::string> tracks;
  std::string error;
  EXPECT_TRUE(telemetry::analysis::parse_chrome_trace(trace, &events, &tracks,
                                                      &error))
      << error;
  EXPECT_TRUE(events.empty());
}

// --- parse-back error paths (DESIGN.md §6d) --------------------------------
// Artifacts re-read by vdap-report and the analysis layer come from disk,
// so truncation and corruption must produce clean errors, never crashes
// (the suite runs under ASan in check.sh).

TEST(ParseBack, TruncatedAndMalformedJsonlLinesAreCleanErrors) {
  // Cut a real snapshot line at every prefix length: each cut either parses
  // (short valid prefixes like "{}" don't exist here, so it won't) or
  // returns nullopt — no throw, no crash.
  sim::Simulator sim(1);
  telemetry::Session session(sim);
  telemetry::count("runs", 3);
  telemetry::observe("lat", 1.5);
  session.snapshot();
  ASSERT_EQ(session.snapshot_lines().size(), 1u);
  const std::string line = session.snapshot_lines()[0];
  for (std::size_t cut = 0; cut < line.size(); ++cut) {
    std::optional<json::Value> v = json::try_parse(line.substr(0, cut));
    if (cut > 0) {
      EXPECT_FALSE(v.has_value()) << "cut=" << cut;
    }
  }
  EXPECT_TRUE(json::try_parse(line).has_value());
  EXPECT_FALSE(json::try_parse("{\"t\":1,").has_value());
  EXPECT_FALSE(json::try_parse("\xff\xfe garbage").has_value());
}

TEST(ParseBack, MalformedChromeTraceIsRejectedWithError) {
  std::vector<telemetry::TraceEvent> events;
  std::vector<std::string> tracks;
  const char* cases[] = {
      "",                                             // empty file
      "not json",
      "{\"traceEvents\": 7}",                         // wrong type
      "{\"other\": []}",                              // missing array
      "{\"traceEvents\": [7]}",                       // non-object event
      "{\"traceEvents\": [{\"ph\": \"XX\"}]}",        // bad ph
      "{\"traceEvents\": [{\"ph\": \"\"}]}",
      "{\"traceEvents\": [{\"ph\": \"X\", \"args\": 3}]}",  // non-object args
      "{\"traceEvents\": [{\"ph\": \"X\", \"ts\": 1",       // truncated
  };
  for (const char* text : cases) {
    std::string error;
    EXPECT_FALSE(
        telemetry::analysis::parse_chrome_trace(text, &events, &tracks, &error))
        << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ParseBack, HostileTidsAreRejectedNotAllocated) {
  // A corrupt tid must not drive tracks.resize() toward out-of-memory, and
  // a negative one must not wrap to a huge unsigned index.
  std::vector<telemetry::TraceEvent> events;
  std::vector<std::string> tracks;
  const char* cases[] = {
      "{\"traceEvents\": [{\"ph\": \"M\", \"name\": \"thread_name\","
      " \"tid\": 99999999999, \"args\": {\"name\": \"x\"}}]}",
      "{\"traceEvents\": [{\"ph\": \"i\", \"tid\": -5}]}",
      "{\"traceEvents\": [{\"ph\": \"X\", \"tid\": 2147483648}]}",
  };
  for (const char* text : cases) {
    std::string error;
    EXPECT_FALSE(
        telemetry::analysis::parse_chrome_trace(text, &events, &tracks, &error))
        << text;
    EXPECT_EQ(error, "tid out of range") << text;
  }
}

TEST(ParseBack, UnknownFieldsAndEventsAreTolerated) {
  // Forward compatibility: fields and ph kinds this version doesn't know
  // must be carried or skipped, not rejected.
  std::vector<telemetry::TraceEvent> events;
  std::vector<std::string> tracks;
  std::string error;
  const std::string text =
      "{\"otherTopLevel\": {\"a\": 1}, \"traceEvents\": ["
      "{\"ph\": \"M\", \"name\": \"process_sort_index\", \"tid\": 0},"
      "{\"ph\": \"i\", \"ts\": 5, \"tid\": 0, \"name\": \"n\","
      " \"cat\": \"c\", \"novel_field\": [1, 2, 3]},"
      "{\"ph\": \"q\", \"ts\": 9, \"tid\": 0, \"name\": \"future-kind\"}"
      "]}";
  ASSERT_TRUE(telemetry::analysis::parse_chrome_trace(text, &events, &tracks,
                                                      &error))
      << error;
  ASSERT_EQ(events.size(), 2u);  // metadata consumed, both events kept
  EXPECT_EQ(events[0].ph, 'i');
  EXPECT_EQ(events[1].ph, 'q');
}

// --- columnar block codec (DESIGN.md §6g) ----------------------------------

using telemetry::fleet::ColumnData;
using telemetry::fleet::columnar_decode;
using telemetry::fleet::columnar_encode;

ColumnData sample_columns() {
  ColumnData cols;
  // Includes a backward time step (reordered sample): the zigzag delta
  // encoding must carry negative deltas.
  std::mt19937_64 rng(404);
  sim::SimTime t = 0;
  for (int i = 0; i < 64; ++i) {
    t += static_cast<sim::SimTime>(rng() % 2'000'000) - 400'000;
    if (t < 0) t = 0;
    cols.times.push_back(t);
    cols.values.push_back(
        std::ldexp(static_cast<double>(rng() % 1'000'000), -7));
  }
  return cols;
}

TEST(ColumnarCodec, RoundTripsIncludingBackwardTimeSteps) {
  const ColumnData cols = sample_columns();
  const std::string bytes = columnar_encode(cols);
  ColumnData back;
  std::string error;
  ASSERT_TRUE(columnar_decode(bytes, &back, &error)) << error;
  EXPECT_EQ(back.times, cols.times);
  EXPECT_EQ(back.values, cols.values);
  // Deterministic bytes: re-encoding reproduces the encoding.
  EXPECT_EQ(columnar_encode(back), bytes);
  // An empty block round-trips too.
  ColumnData empty;
  const std::string empty_bytes = columnar_encode(empty);
  ASSERT_TRUE(columnar_decode(empty_bytes, &back, &error)) << error;
  EXPECT_TRUE(back.empty());
}

TEST(ColumnarCodec, EveryTruncationIsACleanError) {
  const std::string bytes = columnar_encode(sample_columns());
  ColumnData out;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string error;
    EXPECT_FALSE(
        columnar_decode(std::string_view(bytes).substr(0, cut), &out, &error))
        << "cut=" << cut;
    EXPECT_FALSE(error.empty()) << "cut=" << cut;
  }
  // Trailing garbage is also rejected (declared count vs actual size).
  std::string padded = bytes + "x";
  EXPECT_FALSE(columnar_decode(padded, &out));
}

TEST(ColumnarCodec, EverySingleBitFlipIsDetected) {
  // The checksum covers everything after the magic, and the magic is
  // compared byte-for-byte — so no single-bit corruption may decode.
  const std::string bytes = columnar_encode(sample_columns());
  ColumnData out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      std::string error;
      EXPECT_FALSE(columnar_decode(corrupt, &out, &error))
          << "byte=" << i << " bit=" << bit;
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ColumnarCodec, HostileCountsDoNotDriveAllocation) {
  // A block declaring 2^32-1 samples in a 16-byte payload must be
  // rejected by arithmetic (count vs available bytes) BEFORE any reserve.
  std::string hostile = "VCB1";
  hostile += '\xff';
  hostile += '\xff';
  hostile += '\xff';
  hostile += '\xff';
  hostile += std::string(8, '\0');
  ColumnData out;
  std::string error;
  EXPECT_FALSE(columnar_decode(hostile, &out, &error));
  EXPECT_NE(error.find("count"), std::string::npos) << error;
}

TEST(ColumnarCodec, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(1234);
  ColumnData out;
  for (int round = 0; round < 2000; ++round) {
    std::string garbage(rng() % 96, '\0');
    for (char& c : garbage) c = static_cast<char>(rng() & 0xFF);
    if (round % 3 == 0 && garbage.size() >= 4) {
      garbage.replace(0, 4, "VCB1");  // valid magic, hostile payload
    }
    std::string error;
    if (!columnar_decode(garbage, &out, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

// --- query parser (DESIGN.md §6g) ------------------------------------------

using telemetry::fleet::Query;
using telemetry::fleet::parse_query;

TEST(QueryParser, AcceptsTheDocumentedGrammar) {
  Query q;
  std::string error;
  ASSERT_TRUE(parse_query("range metric=lat_ms", &q, &error)) << error;
  EXPECT_EQ(q.kind, Query::Kind::kRange);
  EXPECT_EQ(q.metric, "lat_ms");
  EXPECT_EQ(q.from, 0);
  EXPECT_EQ(q.to, sim::kTimeMax);

  ASSERT_TRUE(parse_query(
      "range metric=lat_ms vehicle=cav-3 from=40s to=1.5min", &q, &error))
      << error;
  EXPECT_EQ(q.vehicle, "cav-3");
  EXPECT_EQ(q.from, sim::seconds(40));
  EXPECT_EQ(q.to, sim::seconds(90));

  ASSERT_TRUE(parse_query("near x=100 y=-50.5 r=25 at=60s within=500ms", &q,
                          &error))
      << error;
  EXPECT_EQ(q.kind, Query::Kind::kNear);
  EXPECT_DOUBLE_EQ(q.x, 100.0);
  EXPECT_DOUBLE_EQ(q.y, -50.5);
  EXPECT_DOUBLE_EQ(q.radius, 25.0);
  EXPECT_EQ(q.at, sim::seconds(60));
  EXPECT_EQ(q.within, sim::msec(500));

  // Unit suffixes: us, ms, bare number = seconds.
  ASSERT_TRUE(parse_query("range metric=m from=1500us to=2500ms", &q, &error));
  EXPECT_EQ(q.from, 1500);
  EXPECT_EQ(q.to, sim::msec(2500));
  ASSERT_TRUE(parse_query("range metric=m from=2 to=3", &q, &error));
  EXPECT_EQ(q.from, sim::seconds(2));
}

TEST(QueryParser, RejectsMalformedQueriesWithDiagnostics) {
  const char* cases[] = {
      "",                                    // empty
      "   ",                                 // whitespace only
      "scan metric=m",                       // unknown keyword
      "range",                               // missing metric
      "range metric=",                       // empty value
      "range metric=m metric=m2",            // duplicate key
      "range metric=m x=1",                  // near-only key
      "range metric=m from=10s to=5s",       // inverted range
      "range metric=m from=-5s",             // negative time
      "range metric=m from=abc",             // bad number
      "range metric=m from=1e400",           // overflow
      "range metric=m from=9e18",            // out of SimTime range
      "range metric=m junk",                 // not key=value
      "range metric=m =v",                   // empty key
      "near x=1 y=2 r=3",                    // missing at
      "near x=1 y=2 at=5s r=-2",             // negative radius
      "near x=nan y=2 r=3 at=5s",            // non-finite
      "near x=1 y=2 r=3 at=5s vehicle=v",    // range-only key
  };
  for (const char* text : cases) {
    Query q;
    std::string error;
    EXPECT_FALSE(parse_query(text, &q, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(QueryParser, TokenSoupNeverCrashes) {
  // Random byte soup biased toward the grammar's alphabet: every parse
  // returns either a Query or a non-empty diagnostic.
  const std::string alphabet = "rangenearmetricvehiclfromtxywithin=.- 0123456789smu\t\xff";
  std::mt19937_64 rng(777);
  for (int round = 0; round < 4000; ++round) {
    std::string text(rng() % 64, ' ');
    for (char& c : text) c = alphabet[rng() % alphabet.size()];
    Query q;
    std::string error;
    if (!parse_query(text, &q, &error)) {
      EXPECT_FALSE(error.empty()) << text;
    }
  }
  // Mutations of a valid query: drop/duplicate/garble one token.
  const std::string valid = "near x=100 y=-50.5 r=25 at=60s within=500ms";
  for (int round = 0; round < 2000; ++round) {
    std::string text = valid;
    const std::size_t pos = rng() % text.size();
    switch (rng() % 3) {
      case 0: text.erase(pos, rng() % 5); break;
      case 1: text.insert(pos, 1, alphabet[rng() % alphabet.size()]); break;
      default: text[pos] = static_cast<char>(rng() & 0xFF); break;
    }
    Query q;
    std::string error;
    if (!parse_query(text, &q, &error)) {
      EXPECT_FALSE(error.empty()) << text;
    }
  }
}

// --- flight-recorder bundle parse-back (DESIGN.md §6i) ----------------------
// Incident bundles are read back after crashes, so the VFR1 parser and
// the bundle renderer face torn files by design: truncations, bit flips
// and hostile counts must come back as clean diagnostics, never
// allocation blowups or UB.

static std::string sample_rings() {
  telemetry::FlightRecorder fr(2);
  fr.ring(0).append(telemetry::make_flight_record(
      telemetry::FlightKind::kMetric, 10, "m.count", "track", "", 3, 0.0));
  fr.ring(1).append(telemetry::make_flight_record(
      telemetry::FlightKind::kHealth, 20, "license-plate", "breach",
      "cloud", 1, 99.5));
  fr.ring(0).append(telemetry::make_flight_record(
      telemetry::FlightKind::kIncident, 30, "unit", "incident", "", 0, 0.0));
  fr.fold_barrier(40);
  return fr.serialize_rings();
}

TEST(FlightParseBack, EveryTruncationIsACleanError) {
  const std::string bytes = sample_rings();
  ASSERT_TRUE(telemetry::parse_flight_rings(bytes).ok);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    telemetry::FlightParse p =
        telemetry::parse_flight_rings(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(p.ok) << "cut=" << cut;
    EXPECT_FALSE(p.error.empty()) << "cut=" << cut;
  }
  // Trailing garbage is rejected too (declared sections vs actual size).
  telemetry::FlightParse padded = telemetry::parse_flight_rings(bytes + "x");
  EXPECT_FALSE(padded.ok);
  EXPECT_FALSE(padded.error.empty());
}

TEST(FlightParseBack, EverySingleBitFlipIsACleanOutcome) {
  // Record pages are covered by the section checksum, so flips there are
  // detected; header-field flips may land on another self-consistent
  // layout, but every outcome must be a clean parse or a clean error.
  const std::string bytes = sample_rings();
  std::size_t detected = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      telemetry::FlightParse p = telemetry::parse_flight_rings(corrupt);
      if (!p.ok) {
        EXPECT_FALSE(p.error.empty()) << "byte=" << i << " bit=" << bit;
        ++detected;
      }
    }
  }
  EXPECT_GT(detected, bytes.size());  // the vast majority must be caught
}

TEST(FlightParseBack, HostileCountsDoNotDriveAllocation) {
  // A section declaring 2^22 records in a tiny payload must be rejected
  // by byte-budget arithmetic BEFORE any vector reserve.
  auto put_u32 = [](std::string& s, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) s += static_cast<char>((v >> (8 * i)) & 0xFF);
  };
  auto put_u64 = [](std::string& s, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) s += static_cast<char>((v >> (8 * i)) & 0xFF);
  };
  std::string hostile = "VFR1";
  put_u32(hostile, 1);    // version
  put_u32(hostile, 104);  // record size
  put_u32(hostile, 1);    // one section
  put_u32(hostile, static_cast<std::uint32_t>(-1));  // domain
  put_u32(hostile, 0);                               // reserved
  put_u64(hostile, 1u << 22);                        // appended
  put_u64(hostile, 0);                               // head
  put_u64(hostile, 1u << 22);                        // hostile count
  telemetry::FlightParse p = telemetry::parse_flight_rings(hostile);
  EXPECT_FALSE(p.ok);
  EXPECT_FALSE(p.error.empty());

  // A hostile section COUNT is bounded before the loop even starts.
  std::string many = "VFR1";
  put_u32(many, 1);
  put_u32(many, 104);
  put_u32(many, 0xFFFFFFFFu);
  telemetry::FlightParse q = telemetry::parse_flight_rings(many);
  EXPECT_FALSE(q.ok);
  EXPECT_FALSE(q.error.empty());
}

TEST(FlightParseBack, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(90210);
  for (int round = 0; round < 2000; ++round) {
    std::string garbage(rng() % 160, '\0');
    for (char& c : garbage) c = static_cast<char>(rng() & 0xFF);
    if (round % 3 == 0 && garbage.size() >= 4) {
      garbage.replace(0, 4, "VFR1");  // valid magic, hostile payload
    }
    telemetry::FlightParse p = telemetry::parse_flight_rings(garbage);
    if (!p.ok) EXPECT_FALSE(p.error.empty());
  }
}

TEST(FlightParseBack, BrokenBundleDirsAreCleanRenderErrors) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "vdap-flight-robust";
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto write = [&dir](const char* name, const std::string& bytes) {
    std::ofstream f(dir / name, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  auto render = [&dir](std::string* error) {
    return telemetry::render_incident_dir(dir.string(), error);
  };
  std::string error;

  // Empty dir: missing manifest.
  EXPECT_TRUE(render(&error).empty());
  EXPECT_NE(error.find("manifest.json"), std::string::npos) << error;

  // Truncated manifest (every prefix of a real one): malformed-JSON error.
  telemetry::FlightRecorder fr(1);
  const std::string manifest = fr.manifest_json(nullptr);
  const std::string rings = sample_rings();
  for (std::size_t cut = 1; cut + 1 < manifest.size(); cut += 7) {
    write("manifest.json", manifest.substr(0, cut));
    write("rings.vfr", rings);
    EXPECT_TRUE(render(&error).empty()) << "cut=" << cut;
    EXPECT_FALSE(error.empty()) << "cut=" << cut;
  }

  // Valid manifest, missing rings.
  write("manifest.json", manifest);
  fs::remove(dir / "rings.vfr");
  EXPECT_TRUE(render(&error).empty());
  EXPECT_NE(error.find("rings.vfr"), std::string::npos) << error;

  // Valid manifest, bit-flipped ring page: the parser's diagnostic
  // surfaces through the renderer.
  std::string corrupt = rings;
  corrupt[corrupt.size() / 2] ^= 0x10;
  write("rings.vfr", corrupt);
  EXPECT_TRUE(render(&error).empty());
  EXPECT_FALSE(error.empty());

  // And the intact pair renders.
  write("rings.vfr", rings);
  EXPECT_FALSE(render(&error).empty()) << error;
  fs::remove_all(dir);
}

TEST(Tracer, EndOfUnknownOrDoubleClosedSpanIsIgnored) {
  sim::Simulator sim(1);
  telemetry::Session session(sim);
  telemetry::Tracer& tracer = telemetry::tracer();
  tracer.end(5, 12345);  // unknown id: ignored
  tracer.end(5, 0);      // id 0 (begin recorded while off): ignored
  std::uint64_t id = tracer.begin(1, "cat", "op", "track");
  tracer.end(2, id);
  tracer.end(3, id);  // double close: ignored
  EXPECT_EQ(tracer.open_spans(), 0u);
  std::size_t ends = 0;
  for (const telemetry::TraceEvent& ev : tracer.events()) {
    if (ev.ph == 'e') ++ends;
  }
  EXPECT_EQ(ends, 1u);
}

}  // namespace
}  // namespace vdap
