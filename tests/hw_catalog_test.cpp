// Catalog calibration tests: the device models must reproduce the paper's
// published numbers (Fig. 3 and Table I) exactly at the model level — these
// anchors are what every scheduling/offloading experiment builds on.
#include "hw/catalog.hpp"

#include <gtest/gtest.h>

#include "hw/board.hpp"

namespace vdap::hw {
namespace {

double inception_ms(const ProcessorSpec& s) {
  auto d = s.service_time(TaskClass::kCnnInference, kInceptionV3Gflop);
  return d ? sim::to_millis(*d) : -1.0;
}

// Fig. 3 anchors: Inception v3 processing time per processor.
struct Fig3Case {
  const char* device;
  double paper_ms;
  double paper_power_w;
};

class Fig3Calibration : public ::testing::TestWithParam<Fig3Case> {};

TEST_P(Fig3Calibration, TimeAndPowerMatchPaper) {
  const Fig3Case& c = GetParam();
  auto spec = catalog::by_name(c.device);
  ASSERT_TRUE(spec.has_value()) << c.device;
  EXPECT_NEAR(inception_ms(*spec), c.paper_ms, c.paper_ms * 0.005);
  EXPECT_DOUBLE_EQ(spec->max_power_w, c.paper_power_w);
}

INSTANTIATE_TEST_SUITE_P(
    PaperDevices, Fig3Calibration,
    ::testing::Values(Fig3Case{"intel-mncs", 334.5, 1.0},
                      Fig3Case{"jetson-tx2-maxq", 242.8, 7.5},
                      Fig3Case{"jetson-tx2-maxp", 114.3, 15.0},
                      Fig3Case{"core-i7-6700", 153.9, 60.0},
                      Fig3Case{"tesla-v100", 26.8, 250.0}));

TEST(Fig3Shape, V100FastestButMostPowerHungry) {
  auto specs = {catalog::intel_mncs(), catalog::jetson_tx2_maxq(),
                catalog::jetson_tx2_maxp(), catalog::core_i7_6700()};
  auto v100 = catalog::tesla_v100();
  for (const auto& s : specs) {
    EXPECT_LT(inception_ms(v100), inception_ms(s)) << s.name;
    EXPECT_GT(v100.max_power_w, s.max_power_w) << s.name;
  }
}

// Table I anchors on the EC2 vCPU device.
TEST(TableICalibration, LaneDetection) {
  auto s = catalog::ec2_vcpu();
  auto d = s.service_time(TaskClass::kVisionClassic, 0.10856);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(sim::to_millis(*d), 13.57, 0.01);
}

TEST(TableICalibration, VehicleDetectionHaar) {
  auto s = catalog::ec2_vcpu();
  auto d = s.service_time(TaskClass::kVisionClassic, 2.15568);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(sim::to_millis(*d), 269.46, 0.01);
}

TEST(TableICalibration, VehicleDetectionTensorFlow) {
  auto s = catalog::ec2_vcpu();
  auto d = s.service_time(TaskClass::kCnnInference, 27.94396);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(sim::to_millis(*d), 13971.98, 0.01);
}

TEST(TableIShape, HaarIsRoughly51xFasterThanTensorFlow) {
  // "the latency of Haar-based algorithm significantly outperforms (around
  // 51x faster) than the TensorFlow-based" (§II-B).
  double ratio = 13971.98 / 269.46;
  EXPECT_NEAR(ratio, 51.9, 1.0);
}

TEST(Catalog, ByNameFindsEveryEntry) {
  for (const auto& s : catalog::all()) {
    auto found = catalog::by_name(s.name);
    ASSERT_TRUE(found.has_value()) << s.name;
    EXPECT_EQ(found->max_power_w, s.max_power_w);
  }
  EXPECT_FALSE(catalog::by_name("no-such-device").has_value());
}

TEST(Catalog, SpecsAreSane) {
  for (const auto& s : catalog::all()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.slots, 0) << s.name;
    EXPECT_GT(s.max_power_w, 0.0) << s.name;
    EXPECT_GE(s.idle_power_w, 0.0) << s.name;
    EXPECT_LT(s.idle_power_w, s.max_power_w) << s.name;
    EXPECT_FALSE(s.gflops.empty()) << s.name;
    for (const auto& [cls, tput] : s.gflops) {
      EXPECT_GT(tput, 0.0) << s.name << "/" << to_string(cls);
    }
  }
}

TEST(Catalog, EdgeTiersOrderedByCnnThroughput) {
  // vehicle GPU < RSU < base station < cloud — the two-tier premise (§I).
  double vehicle = catalog::jetson_tx2_maxp().throughput(TaskClass::kCnnInference);
  double rsu = catalog::rsu_edge_server().throughput(TaskClass::kCnnInference);
  double bs = catalog::basestation_edge_server().throughput(TaskClass::kCnnInference);
  double cloud = catalog::cloud_server().throughput(TaskClass::kCnnInference);
  EXPECT_LT(vehicle, rsu);
  EXPECT_LT(rsu, bs);
  EXPECT_LT(bs, cloud);
}

TEST(Catalog, AsicOnlyRunsCnn) {
  auto s = catalog::cnn_asic();
  EXPECT_TRUE(s.supports(TaskClass::kCnnInference));
  EXPECT_FALSE(s.supports(TaskClass::kGeneric));
  EXPECT_FALSE(s.supports(TaskClass::kVisionClassic));
}

TEST(Board, ReferenceBoardComposition) {
  sim::Simulator sim;
  VcuBoard board(sim, "vcu");
  populate_reference_1sthep(board);
  EXPECT_EQ(board.devices().size(), 4u);
  EXPECT_NE(board.device("core-i7-6700"), nullptr);
  EXPECT_NE(board.device("jetson-tx2-maxp"), nullptr);
  EXPECT_NE(board.device("automotive-fpga"), nullptr);
  EXPECT_NE(board.device("cnn-asic"), nullptr);
  EXPECT_EQ(board.device("tesla-v100"), nullptr);
  EXPECT_DOUBLE_EQ(board.max_power_w(), 60.0 + 15.0 + 10.0 + 8.0);
}

TEST(Board, PowerHungryRigExceedsReferenceBudget) {
  // §III-B: "the combination of one CPU and one powerful GPU ... will cost
  // hundreds of watts".
  sim::Simulator sim;
  VcuBoard ref(sim, "ref");
  populate_reference_1sthep(ref);
  VcuBoard rig(sim, "rig");
  populate_power_hungry_rig(rig);
  EXPECT_GT(rig.max_power_w(), 300.0);
  EXPECT_LT(ref.max_power_w(), 100.0);
}

TEST(Board, EnergyAggregatesAcrossDevices) {
  sim::Simulator sim;
  VcuBoard board(sim, "vcu");
  populate_reference_1sthep(board);
  auto* cpu = board.device("core-i7-6700");
  ASSERT_NE(cpu, nullptr);
  cpu->submit({TaskClass::kGeneric, 25.0, 0, nullptr});  // 1 s on 25 GF/s
  sim.run_until(sim::seconds(2));
  EXPECT_GT(board.energy_joules(), 0.0);
  EXPECT_GE(board.power_now(), 0.0);
}

}  // namespace
}  // namespace vdap::hw
