// V2V computing (§IV overview: OpenVDAP provides "systematic mechanisms on
// how to request, utilize, share and even collaborate with external
// computing entities located on neighboring vehicles"): the neighbor tier
// as a compute destination, and container migration between vehicles.
#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "util/strings.hpp"
#include "workload/apps.hpp"

namespace vdap::core {
namespace {

TEST(NeighborCompute, IdleNeighborServesAsOffloadTier) {
  sim::Simulator sim(21);
  core::PlatformConfig a_cfg;
  a_cfg.vehicle_name = "busy-cav";
  core::OpenVdap busy(sim, a_cfg);
  core::PlatformConfig b_cfg;
  b_cfg.vehicle_name = "idle-cav";
  b_cfg.with_remote_tiers = false;
  core::OpenVdap idle(sim, b_cfg);

  // Platooning: the idle neighbor's GPU becomes busy-cav's neighbor tier.
  busy.topology().set_available(net::Tier::kNeighbor, true);
  busy.elastic().set_remote_device(net::Tier::kNeighbor,
                                   idle.registry().find("jetson-tx2-maxp"));
  // Other external tiers out of range: highway tunnel.
  busy.topology().set_available(net::Tier::kRsuEdge, false);
  busy.topology().set_available(net::Tier::kBaseStationEdge, false);
  busy.topology().set_available(net::Tier::kCloud, false);

  // Saturate busy-cav's own board with single-stage CNN jobs (these queue
  // on the devices immediately, unlike multi-stage DAGs whose later stages
  // only materialize as predecessors finish).
  auto detector = workload::apps::vehicle_detection_tf();
  for (int i = 0; i < 40; ++i) busy.dsf().submit(detector);

  OffloadPlanner planner(busy.elastic(),
                         {net::Tier::kOnBoard, net::Tier::kNeighbor});
  auto dag = workload::apps::inception_v3();
  dag.set_qos({0, 3, 0});
  auto decision = planner.decide(dag);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.tier, net::Tier::kNeighbor);

  edgeos::ServiceRunReport rep;
  planner.run(dag, [&](const edgeos::ServiceRunReport& r) { rep = r; });
  sim.run_until(sim::minutes(2));
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.pipeline, "neighbor");
  // The neighbor's GPU actually did the work.
  EXPECT_GE(idle.registry().find("jetson-tx2-maxp")->completed(), 1u);
}

TEST(NeighborCompute, NeighborDrivingAwayMidTaskFailsGracefully) {
  sim::Simulator sim(22);
  core::OpenVdap cav(sim);
  hw::ComputeDevice neighbor_gpu(sim, hw::catalog::jetson_tx2_maxq());
  cav.topology().set_available(net::Tier::kNeighbor, true);
  cav.elastic().set_remote_device(net::Tier::kNeighbor, &neighbor_gpu);

  auto svc = edgeos::make_polymorphic(workload::apps::inception_v3(),
                                      net::Tier::kNeighbor);
  svc.pipelines = {svc.pipelines[1]};  // force neighbor
  svc.dag.set_qos({0, 3, 0});
  edgeos::ServiceRunReport rep;
  rep.ok = true;
  cav.elastic().run(svc, [&](const edgeos::ServiceRunReport& r) { rep = r; });
  sim.after(sim::msec(50), [&] { neighbor_gpu.set_online(false); });
  sim.run_until(sim::minutes(1));
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(cav.elastic().failed(), 1u);
}

TEST(ServiceMigration, ContainerMovesBetweenVehiclesOverDsrc) {
  // §IV-C: "the service might be migrated from a neighbor vehicle" — a
  // container image leaves vehicle A, crosses DSRC, and installs on B
  // under B's root of trust.
  sim::Simulator sim(23);
  core::PlatformConfig a_cfg, b_cfg;
  a_cfg.vehicle_name = "donor";
  a_cfg.vehicle_secret = 1;
  b_cfg.vehicle_name = "recipient";
  b_cfg.vehicle_secret = 2;
  core::OpenVdap donor(sim, a_cfg), recipient(sim, b_cfg);

  donor.os().security().install("road-reporter",
                                edgeos::IsolationMode::kContainer,
                                3 << 20);
  auto image = donor.os().security().migrate_out("road-reporter");
  ASSERT_TRUE(image.has_value());
  EXPECT_FALSE(donor.os().security().installed("road-reporter"));

  // Ship the image over a DSRC link between the vehicles.
  net::LinkSpec dsrc = net::links::dsrc();
  net::Link link(sim, dsrc);
  bool installed = false;
  sim::SimTime arrival = 0;
  link.send(image->state_bytes, [&](const net::TransferReport& rep) {
    ASSERT_TRUE(rep.delivered);
    recipient.os().security().migrate_in(*image);
    installed = true;
    arrival = sim.now();
  });
  sim.run_until(sim::minutes(1));
  ASSERT_TRUE(installed);
  EXPECT_TRUE(recipient.os().security().installed("road-reporter"));
  // 3 MiB over 27 Mbps DSRC ≈ 0.93 s.
  EXPECT_NEAR(sim::to_seconds(arrival), 0.93, 0.15);
  // Re-keyed on arrival: donor-era attestations do not verify at B.
  EXPECT_FALSE(recipient.os().security().verify(
      "road-reporter", util::fnv1a("road-reporter") ^ image->attestation_key));
  auto fresh = recipient.os().security().attest("road-reporter");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(recipient.os().security().verify("road-reporter", *fresh));
}

}  // namespace
}  // namespace vdap::core
