#include "libvdap/api.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "hw/catalog.hpp"

namespace vdap::libvdap {
namespace {

namespace fs = std::filesystem;

TEST(ApiRouter, ExactAndParamRoutes) {
  ApiRouter router;
  router.route(Method::kGet, "/v1/ping",
               [](const ApiRequest&, const PathParams&) {
                 return ApiResponse::ok(json::Value("pong"));
               });
  router.route(Method::kGet, "/v1/things/:id",
               [](const ApiRequest&, const PathParams& p) {
                 json::Value body;
                 body["id"] = p.at("id");
                 return ApiResponse::ok(std::move(body));
               });
  EXPECT_EQ(router.handle({Method::kGet, "/v1/ping", {}}).status, 200);
  auto resp = router.handle({Method::kGet, "/v1/things/42", {}});
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.get_string("id"), "42");
}

TEST(ApiRouter, NotFoundAndMethodNotAllowed) {
  ApiRouter router;
  router.route(Method::kGet, "/v1/x",
               [](const ApiRequest&, const PathParams&) {
                 return ApiResponse::ok();
               });
  EXPECT_EQ(router.handle({Method::kGet, "/v1/nope", {}}).status, 404);
  EXPECT_EQ(router.handle({Method::kPost, "/v1/x", {}}).status, 405);
  // Trailing slash normalizes (split drops empties).
  EXPECT_EQ(router.handle({Method::kGet, "/v1/x/", {}}).status, 200);
}

TEST(ApiRouter, MultipleParams) {
  ApiRouter router;
  router.route(Method::kGet, "/a/:x/b/:y",
               [](const ApiRequest&, const PathParams& p) {
                 json::Value body;
                 body["xy"] = p.at("x") + p.at("y");
                 return ApiResponse::ok(std::move(body));
               });
  auto resp = router.handle({Method::kGet, "/a/1/b/2", {}});
  EXPECT_EQ(resp.body.get_string("xy"), "12");
  EXPECT_EQ(router.handle({Method::kGet, "/a/1/b", {}}).status, 404);
}

class LibVdapTest : public ::testing::Test {
 protected:
  LibVdapTest()
      : dir_(fs::temp_directory_path() / "vdap-api-test"),
        cpu_(sim_, hw::catalog::core_i7_6700()),
        ddi_(sim_, make_opts()) {
    reg_.join(&cpu_);
    api_ = std::make_unique<LibVdap>(ModelRegistry::with_default_catalog(),
                                     reg_, ddi_);
  }
  ~LibVdapTest() override { fs::remove_all(dir_); }

  ddi::DdiOptions make_opts() {
    fs::remove_all(dir_);
    ddi::DdiOptions o;
    o.disk.dir = dir_.string();
    return o;
  }

  fs::path dir_;
  sim::Simulator sim_;
  hw::ComputeDevice cpu_;
  vcu::ResourceRegistry reg_;
  ddi::Ddi ddi_;
  std::unique_ptr<LibVdap> api_;
};

TEST_F(LibVdapTest, ListModels) {
  auto resp = api_->get("/v1/models");
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.at("models").size(), 10u);
}

TEST_F(LibVdapTest, GetModelByName) {
  auto resp = api_->get("/v1/models/inception-v3-edge");
  ASSERT_EQ(resp.status, 200);
  EXPECT_TRUE(resp.body.get_bool("compressed"));
  EXPECT_EQ(resp.body.get_string("base_model"), "inception-v3");
  EXPECT_LT(resp.body.get_int("size_bytes"), 10'000'000);
  EXPECT_EQ(api_->get("/v1/models/ghost").status, 404);
}

TEST_F(LibVdapTest, ResourceProfilesOverApi) {
  auto resp = api_->get("/v1/resources");
  ASSERT_EQ(resp.status, 200);
  ASSERT_EQ(resp.body.at("resources").size(), 1u);
  const json::Value& dev = resp.body.at("resources").at(std::size_t{0});
  EXPECT_EQ(dev.get_string("device"), "core-i7-6700");
  EXPECT_TRUE(dev.get_bool("online"));
  auto one = api_->get("/v1/resources/core-i7-6700");
  EXPECT_EQ(one.status, 200);
  EXPECT_EQ(api_->get("/v1/resources/ghost").status, 404);
}

TEST_F(LibVdapTest, DataUploadAndQueryThroughApi) {
  json::Value rec;
  rec["stream"] = "vehicle/obd";
  rec["ts"] = 1'000'000;
  rec["lat"] = 42.0;
  rec["lon"] = -83.0;
  rec["payload"]["speed_mps"] = 12.5;
  EXPECT_EQ(api_->post("/v1/data/upload", rec).status, 200);

  json::Value q;
  q["stream"] = "vehicle/obd";
  q["t0"] = 0;
  q["t1"] = 2'000'000;
  auto resp = api_->post("/v1/data/query", q);
  ASSERT_EQ(resp.status, 200);
  ASSERT_EQ(resp.body.at("records").size(), 1u);
  EXPECT_DOUBLE_EQ(resp.body.at("records")
                       .at(std::size_t{0})
                       .at("payload")
                       .get_double("speed_mps"),
                   12.5);
  // Second identical query comes from cache.
  auto warm = api_->post("/v1/data/query", q);
  EXPECT_TRUE(warm.body.get_bool("from_cache"));
}

TEST_F(LibVdapTest, DataQueryValidation) {
  EXPECT_EQ(api_->post("/v1/data/query", json::Value(1)).status, 400);
  EXPECT_EQ(api_->post("/v1/data/upload", json::Value()).status, 400);
}

TEST_F(LibVdapTest, PBeamRoutes) {
  EXPECT_EQ(api_->get("/v1/pbeam").status, 404);  // not built yet
  util::RngStream rng(21);
  api_->attach_pbeam(PBeam::build(synth_fleet_dataset(100, rng), {}, rng));
  auto info = api_->get("/v1/pbeam");
  ASSERT_EQ(info.status, 200);
  EXPECT_GT(info.body.get_int("dense_bytes"),
            info.body.get_int("compressed_bytes"));

  // Score an unambiguously aggressive feature vector (fixed, so the test
  // does not depend on a random draw landing far from the class boundary).
  DrivingFeatures f;
  f.mean_speed_mps = 25.0;
  f.speed_stddev = 8.0;
  f.accel_stddev = 2.2;
  f.harsh_brake_rate = 3.0;
  f.harsh_accel_rate = 2.8;
  f.mean_abs_jerk = 3.0;
  f.overspeed_frac = 0.35;
  json::Value body;
  body["mean_speed_mps"] = f.mean_speed_mps;
  body["speed_stddev"] = f.speed_stddev;
  body["accel_stddev"] = f.accel_stddev;
  body["harsh_brake_rate"] = f.harsh_brake_rate;
  body["harsh_accel_rate"] = f.harsh_accel_rate;
  body["mean_abs_jerk"] = f.mean_abs_jerk;
  body["overspeed_frac"] = f.overspeed_frac;
  auto score = api_->post("/v1/pbeam/score", body);
  ASSERT_EQ(score.status, 200);
  EXPECT_GT(score.body.get_double("aggressiveness"), 0.5);
  EXPECT_EQ(score.body.get_string("style"), "aggressive");
}

TEST_F(LibVdapTest, DefaultCatalogShape) {
  ModelRegistry reg = ModelRegistry::with_default_catalog();
  EXPECT_EQ(reg.size(), 10u);
  // Every compressed variant is smaller than its base.
  for (const ModelSpec& m : reg.list()) {
    if (!m.compressed) continue;
    auto base = reg.find(m.base_model);
    ASSERT_TRUE(base.has_value()) << m.name;
    EXPECT_LT(m.size_bytes, base->size_bytes / 5) << m.name;
    EXPECT_LT(base->accuracy - m.accuracy, 0.05) << m.name;
  }
  // Edge budget filtering.
  auto edge = reg.edge_deployable(20'000'000);
  for (const auto& m : edge) EXPECT_LE(m.size_bytes, 20'000'000u);
  EXPECT_FALSE(edge.empty());
  EXPECT_LT(edge.size(), reg.size());
  // Domains are covered.
  EXPECT_FALSE(reg.by_domain(ModelDomain::kNlp).empty());
  EXPECT_FALSE(reg.by_domain(ModelDomain::kAudio).empty());
  EXPECT_FALSE(reg.by_domain(ModelDomain::kVideo).empty());
  EXPECT_FALSE(reg.by_domain(ModelDomain::kDriving).empty());
  // Duplicate registration rejected.
  EXPECT_THROW(reg.add({"cbeam", ModelDomain::kDriving,
                        hw::TaskClass::kCnnInference, 1, 1, 1, false, ""}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdap::libvdap
