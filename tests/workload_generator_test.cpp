#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <map>

namespace vdap::workload {
namespace {

StreamSpec periodic_stream(sim::SimDuration period,
                           std::uint64_t max_instances = 0) {
  StreamSpec s;
  s.dag = apps::lane_detection();
  s.period = period;
  s.max_instances = max_instances;
  return s;
}

TEST(Generator, PeriodicReleasesAtPeriod) {
  sim::Simulator sim;
  std::vector<sim::SimTime> releases;
  WorkloadGenerator gen(sim, [&](const Release& r) {
    releases.push_back(r.released_at);
  });
  gen.add_stream(periodic_stream(sim::seconds(1)));
  gen.start();
  sim.run_until(sim::seconds(5));
  // t = 0,1,2,3,4,5.
  ASSERT_EQ(releases.size(), 6u);
  for (std::size_t i = 0; i < releases.size(); ++i) {
    EXPECT_EQ(releases[i], sim::seconds(static_cast<std::int64_t>(i)));
  }
}

TEST(Generator, MaxInstancesBoundsStream) {
  sim::Simulator sim;
  int count = 0;
  WorkloadGenerator gen(sim, [&](const Release&) { ++count; });
  gen.add_stream(periodic_stream(sim::msec(10), 7));
  gen.start();
  sim.run_until(sim::seconds(10));
  EXPECT_EQ(count, 7);
  EXPECT_EQ(gen.released(), 7u);
}

TEST(Generator, StopHaltsReleases) {
  sim::Simulator sim;
  int count = 0;
  WorkloadGenerator gen(sim, [&](const Release&) { ++count; });
  gen.add_stream(periodic_stream(sim::seconds(1)));
  gen.start();
  sim.after(sim::seconds(2) + 1, [&] { gen.stop(); });
  sim.run_until(sim::seconds(10));
  EXPECT_EQ(count, 3);  // t = 0, 1, 2
}

TEST(Generator, PoissonRateApproximatelyHonored) {
  sim::Simulator sim(77);
  int count = 0;
  WorkloadGenerator gen(sim, [&](const Release&) { ++count; });
  StreamSpec s;
  s.dag = apps::inception_v3();
  s.poisson_rate_hz = 5.0;
  gen.add_stream(std::move(s));
  gen.start();
  sim.run_until(sim::seconds(100));
  EXPECT_NEAR(count, 500, 80);  // ~4 sigma
}

TEST(Generator, JitterStaysWithinBound) {
  sim::Simulator sim(5);
  std::vector<sim::SimTime> releases;
  WorkloadGenerator gen(sim, [&](const Release& r) {
    releases.push_back(r.released_at);
  });
  StreamSpec s = periodic_stream(sim::seconds(1));
  s.jitter = sim::msec(100);
  gen.add_stream(std::move(s));
  gen.start();
  sim.run_until(sim::seconds(10));
  ASSERT_GE(releases.size(), 9u);
  for (std::size_t i = 1; i < releases.size(); ++i) {
    sim::SimDuration gap = releases[i] - releases[i - 1];
    EXPECT_GE(gap, sim::seconds(1) - sim::msec(100));
    EXPECT_LE(gap, sim::seconds(1) + sim::msec(200));
  }
}

TEST(Generator, MultipleStreamsInterleave) {
  sim::Simulator sim;
  std::map<std::string, int> counts;
  WorkloadGenerator gen(sim, [&](const Release& r) {
    counts[r.dag->name()]++;
  });
  gen.add_stream(periodic_stream(sim::msec(100)));
  StreamSpec s2;
  s2.dag = apps::obd_diagnostics();
  s2.period = sim::seconds(1);
  gen.add_stream(std::move(s2));
  gen.start();
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(counts["lane-detection"], 21);
  EXPECT_EQ(counts["obd-diagnostics"], 3);
}

TEST(Generator, InstanceIdsAreUnique) {
  sim::Simulator sim;
  std::vector<std::uint64_t> ids;
  WorkloadGenerator gen(sim, [&](const Release& r) {
    ids.push_back(r.instance_id);
  });
  gen.add_stream(periodic_stream(sim::msec(10)));
  gen.add_stream(periodic_stream(sim::msec(15)));
  gen.start();
  sim.run_until(sim::seconds(1));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Generator, RejectsBadStreams) {
  sim::Simulator sim;
  WorkloadGenerator gen(sim, nullptr);
  StreamSpec bad;  // empty dag
  EXPECT_THROW(gen.add_stream(bad), std::invalid_argument);
  StreamSpec no_rate;
  no_rate.dag = apps::lane_detection();
  no_rate.period = 0;
  EXPECT_THROW(gen.add_stream(no_rate), std::invalid_argument);
  gen.add_stream(periodic_stream(sim::seconds(1)));
  gen.start();
  EXPECT_THROW(gen.add_stream(periodic_stream(sim::seconds(1))),
               std::logic_error);
}

TEST(Generator, PredefinedMixesAreValid) {
  for (auto mix : {full_vehicle_mix(), adas_mix()}) {
    EXPECT_FALSE(mix.empty());
    for (const auto& s : mix) {
      EXPECT_TRUE(s.dag.validate()) << s.dag.name();
      EXPECT_TRUE(s.period > 0 || s.poisson_rate_hz > 0) << s.dag.name();
    }
  }
}

TEST(Generator, FullMixRunsUnderSimulation) {
  sim::Simulator sim(3);
  int count = 0;
  WorkloadGenerator gen(sim, [&](const Release&) { ++count; });
  for (auto& s : full_vehicle_mix()) gen.add_stream(std::move(s));
  gen.start();
  sim.run_until(sim::seconds(10));
  EXPECT_GT(count, 100);  // lane detection alone releases ~100
}

}  // namespace
}  // namespace vdap::workload
