// Shard-aware telemetry suite (DESIGN.md §6h).
//
// The load-bearing assertions are the capture sweeps: with per-shard
// domains attached, the SAME (seed, config) must export BYTE-identical
// trace + metrics artifacts no matter how many shards partition the fleet
// or how many threads drive them — and turning capture on must never move
// the run's digest. The DomainSet unit tests exist to localize a sweep
// failure; the shard-report tests cover the runtime (wall-clock) plane
// that is deliberately outside the byte-identity contract.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/fleet_scale.hpp"
#include "sim/sharded.hpp"
#include "telemetry/domains.hpp"
#include "telemetry/session.hpp"
#include "telemetry/shard_report.hpp"

namespace {

using namespace vdap;
using telemetry::Domain;
using telemetry::DomainSet;
using telemetry::ShardRuntimeRow;

// The 100k acceptance sweep runs at full size on a plain build but is
// scaled down under ASan/TSan, where a 100k-vehicle run costs minutes.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// --- DomainSet merge mechanics ----------------------------------------------

// The determinism keystone: the merged export is a pure function of the
// event MULTISET, not of which domain recorded what. Record the same
// events under two different shard placements and the merged traces must
// match byte for byte.
TEST(DomainSetTest, MergeIndependentOfDomainPlacement) {
  auto record = [](DomainSet& set, const std::vector<int>& placement) {
    // Three instants + one complete slice, "placed" per the vector.
    set.shard_domain(placement[0])->tracer().instant(
        sim::usec(30), "net", "send", "net/uplink");
    set.shard_domain(placement[1])->tracer().instant(
        sim::usec(10), "net", "send", "net/uplink");
    set.shard_domain(placement[2])->tracer().complete(
        sim::usec(10), sim::usec(5), "task", "decode", "ingest/0");
    set.shard_domain(placement[3])->tracer().instant(
        sim::usec(20), "net", "ack", "net/uplink");
    set.merge_epoch();
  };
  DomainSet a(2);
  DomainSet b(2);
  record(a, {0, 0, 1, 1});
  record(b, {1, 0, 0, 1});
  EXPECT_EQ(a.chrome_trace(), b.chrome_trace());
  EXPECT_EQ(a.events(), 4u);
  // And the canonical order is by timestamp first.
  EXPECT_EQ(a.tracer().events()[0].ts, sim::usec(10));
  EXPECT_EQ(a.tracer().events()[3].ts, sim::usec(30));
}

TEST(DomainSetTest, SpanIdsRenumberedInMergedOrder) {
  DomainSet set(2);
  // Shard 1 opens its span first in wall order, but shard 0's begins
  // earlier in sim time — the merged ids follow merged (canonical) order.
  const std::uint64_t late =
      set.shard_domain(1)->tracer().begin(sim::usec(50), "svc", "run-b", "svc");
  const std::uint64_t early =
      set.shard_domain(0)->tracer().begin(sim::usec(5), "svc", "run-a", "svc");
  set.shard_domain(1)->tracer().end(sim::usec(60), late);
  set.shard_domain(0)->tracer().end(sim::usec(70), early);
  set.merge_epoch();

  std::vector<std::uint64_t> begin_ids;
  for (const telemetry::TraceEvent& ev : set.tracer().events()) {
    if (ev.ph == 'b') begin_ids.push_back(ev.id);
  }
  EXPECT_EQ(begin_ids, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(set.open_spans(), 0u);
}

// 'b'/'e' pairs may straddle an epoch barrier; the id mapping must
// survive the merge in between.
TEST(DomainSetTest, SpanPairsSurviveEpochBarriers) {
  DomainSet set(1);
  const std::uint64_t id =
      set.shard_domain(0)->tracer().begin(sim::usec(5), "svc", "run", "svc");
  set.merge_epoch();
  EXPECT_EQ(set.open_spans(), 1u);
  set.shard_domain(0)->tracer().end(sim::usec(9), id);
  set.merge_epoch();
  EXPECT_EQ(set.open_spans(), 0u);
  ASSERT_EQ(set.events(), 2u);
  EXPECT_EQ(set.tracer().events()[0].id, set.tracer().events()[1].id);
}

TEST(DomainSetTest, MergedMetricsFoldAllDomains) {
  DomainSet set(2);
  set.shard_domain(0)->metrics().inc("frames", 3);
  set.shard_domain(1)->metrics().inc("frames", 4);
  set.coordinator_domain()->metrics().inc("frames", 5);
  set.shard_domain(1)->metrics().observe("lat", 2.0);
  const telemetry::MetricsRegistry merged = set.merged_metrics();
  EXPECT_EQ(merged.counter_value("frames"), 12);
  ASSERT_NE(merged.histogram("lat"), nullptr);
  // The runtime registry is a separate plane: nothing leaked into it.
  EXPECT_TRUE(set.runtime().counters().all().empty());
}

// --- thread-local binding + legacy Session ----------------------------------

TEST(DomainBindingTest, AccessorsFallBackToGlobalWhenUnbound) {
  ASSERT_EQ(telemetry::bound_domain(), nullptr);
  EXPECT_FALSE(telemetry::on());
  EXPECT_EQ(&telemetry::tracer(),
            &telemetry::Telemetry::instance().tracer());

  Domain mine;
  Domain* prev = telemetry::bind_domain(&mine);
  EXPECT_EQ(prev, nullptr);
  EXPECT_TRUE(telemetry::on());
  EXPECT_EQ(&telemetry::tracer(), &mine.tracer());
  telemetry::bind_domain(prev);
  EXPECT_FALSE(telemetry::on());
}

TEST(DomainBindingTest, SessionRefusesToShadowABoundDomain) {
  sim::Simulator host(7);
  Domain mine;
  Domain* prev = telemetry::bind_domain(&mine);
  EXPECT_THROW(telemetry::Session session(host), std::logic_error);
  telemetry::bind_domain(prev);
  // With the domain gone the Session works as before.
  telemetry::Session session(host);
  EXPECT_TRUE(telemetry::on());
}

TEST(ShardedCaptureTest, RefusesMismatchedDomainCount) {
  sim::ShardedSimulator ssim(7, {2, 1, sim::seconds(1)});
  DomainSet wrong(3);
  ssim.set_capture(&wrong);
  EXPECT_THROW(ssim.run_until(sim::seconds(1)), std::invalid_argument);
}

// The old blanket ban is gone: worker threads + DomainSet capture is the
// supported combination (only a live legacy Session still refuses —
// sharded_test covers that).
TEST(ShardedCaptureTest, ThreadsWithDomainCaptureRun) {
  sim::ShardedSimulator ssim(7, {2, 2, sim::seconds(1)});
  DomainSet domains(2);
  ssim.set_capture(&domains);
  for (int s = 0; s < 2; ++s) {
    ssim.shard(s).at(sim::msec(100), [s, &ssim] {
      if (telemetry::on()) {
        telemetry::tracer().instant(ssim.shard(s).now(), "test", "tick",
                                    "shard");
      }
    });
  }
  EXPECT_EQ(ssim.run_until(sim::seconds(1)), 2u);
  domains.merge_epoch();
  EXPECT_EQ(domains.events(), 2u);
}

// --- capture byte-identity sweeps -------------------------------------------

core::FleetScaleConfig scale_config(int shards, int threads) {
  core::FleetScaleConfig cfg;
  cfg.vehicles = 40;
  cfg.seed = 11;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.run_until = sim::seconds(6);
  cfg.drain = sim::seconds(6);
  cfg.capture = true;
  cfg.ingest_backend = true;  // cover the ingest mirror instrumentation
  return cfg;
}

TEST(ObsSweepTest, ScaleCaptureIdenticalAcrossShardAndThreadCounts) {
  core::FleetScaleConfig off_cfg = scale_config(1, 1);
  off_cfg.capture = false;
  const core::FleetScaleOutcome off = core::run_fleet_scale(off_cfg);

  const core::FleetScaleOutcome base = core::run_fleet_scale(scale_config(1, 1));
  EXPECT_GT(base.trace_events, 0u);
  EXPECT_GT(base.metric_keys, 0u);
  EXPECT_EQ(base.open_spans, 0u);
  // Observing the run must not perturb it.
  EXPECT_EQ(base.digest, off.digest);
  EXPECT_EQ(base.summary, off.summary);

  for (int shards : {1, 2, 8}) {
    for (int threads : {1, 2, 8}) {
      if (shards == 1 && threads == 1) continue;
      const core::FleetScaleOutcome out =
          core::run_fleet_scale(scale_config(shards, threads));
      EXPECT_EQ(out.chrome_trace, base.chrome_trace)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(out.metrics_jsonl, base.metrics_jsonl)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(out.trace_events, base.trace_events);
      EXPECT_EQ(out.metric_keys, base.metric_keys);
      EXPECT_EQ(out.open_spans, 0u) << "leaked spans at shards=" << shards
                                    << " threads=" << threads;
      EXPECT_EQ(out.digest, base.digest);
    }
  }
}

// The acceptance sweep: a 100k-vehicle run_fleet_scale with capture on and
// threads=8 exports byte-identically to shards=threads=1 (scaled down
// under sanitizers, where full size costs minutes — the full matrix above
// still proves the invariance shape).
TEST(ObsSweepTest, HundredKCapturePairwiseIdentical) {
  core::FleetScaleConfig cfg;
  cfg.vehicles = kSanitized ? 2000 : 100000;
  cfg.seed = 7;
  cfg.epoch = sim::seconds(1);
  cfg.sample_period = sim::seconds(2);
  cfg.samples_per_tick = 2;
  cfg.run_until = sim::seconds(4);
  cfg.drain = sim::seconds(4);
  cfg.shipper.flush_period = sim::seconds(2);
  cfg.capture = true;

  cfg.shards = 1;
  cfg.threads = 1;
  const core::FleetScaleOutcome serial = core::run_fleet_scale(cfg);
  cfg.shards = 8;
  cfg.threads = 8;
  const core::FleetScaleOutcome parallel = core::run_fleet_scale(cfg);

  EXPECT_EQ(parallel.digest, serial.digest);
  EXPECT_EQ(parallel.chrome_trace, serial.chrome_trace);
  EXPECT_EQ(parallel.metrics_jsonl, serial.metrics_jsonl);
  EXPECT_EQ(serial.open_spans, 0u);
  EXPECT_EQ(parallel.open_spans, 0u);
  EXPECT_GT(parallel.trace_events, 0u);
}

// run_fleet duplicates some world instrumentation per shard (shared
// shipping topology, tier links), so its capture contract is
// thread-invariance at a FIXED shard count (FleetConfig::capture).
TEST(ObsSweepTest, FullFleetCaptureThreadInvariantAtFixedShards) {
  core::FleetConfig cfg;
  cfg.vehicles = 6;
  cfg.seed = 11;
  cfg.shards = 2;
  cfg.load_until = sim::seconds(60);
  cfg.run_until = sim::seconds(90);
  cfg.drain = sim::seconds(30);
  cfg.capture = true;
  sim::FaultPlan none;
  none.name = "none";

  cfg.threads = 1;
  cfg.dir_tag = "obs-fleet-1";
  const core::FleetOutcome base = core::run_fleet(none, cfg);
  EXPECT_GT(base.trace_events, 0u);
  EXPECT_EQ(base.open_spans, 0u);
  int variant = 2;
  for (int threads : {2, 8}) {
    cfg.threads = threads;
    cfg.dir_tag = "obs-fleet-" + std::to_string(variant++);
    const core::FleetOutcome out = core::run_fleet(none, cfg);
    EXPECT_EQ(out.chrome_trace, base.chrome_trace) << "threads=" << threads;
    EXPECT_EQ(out.metrics_jsonl, base.metrics_jsonl) << "threads=" << threads;
    EXPECT_EQ(out.open_spans, 0u);
    EXPECT_EQ(out.frames_jsonl, base.frames_jsonl);
  }
}

// --- runtime-plane shard report ---------------------------------------------

TEST(ShardReportTest, JsonlRoundTripsEveryField) {
  ShardRuntimeRow a;
  a.shard = 0;
  a.epochs = 20;
  a.events = 1234;
  a.busy_s = 1.5;
  a.wait_s = 0.25;
  a.queue_peak = 99;
  a.wheel_peak = 88;
  a.overflow_peak = 7;
  ShardRuntimeRow b;
  b.shard = 1;
  b.frames = 42;
  b.samples = 420;
  b.ring_late = 3;
  b.decode_errors = 1;
  b.backlog_peak = 17;
  b.lag_us_peak = -2500;  // a shard AHEAD of the merged watermark
  b.pool_hits = 30;
  b.pool_misses = 10;
  b.pool_free = 5;

  const std::string jsonl = telemetry::shards_report_jsonl({a, b});
  std::vector<ShardRuntimeRow> rows;
  std::string error;
  ASSERT_TRUE(telemetry::parse_shards_report(jsonl, &rows, &error)) << error;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].events, 1234u);
  EXPECT_DOUBLE_EQ(rows[0].busy_s, 1.5);
  EXPECT_DOUBLE_EQ(rows[0].wait_s, 0.25);
  EXPECT_EQ(rows[0].overflow_peak, 7u);
  EXPECT_EQ(rows[1].frames, 42u);
  EXPECT_EQ(rows[1].lag_us_peak, -2500);
  EXPECT_EQ(rows[1].pool_hits, 30u);
  // Re-serializing the parsed rows reproduces the input byte for byte.
  EXPECT_EQ(telemetry::shards_report_jsonl(rows), jsonl);

  const std::string table = telemetry::shards_report_table(rows);
  EXPECT_NE(table.find("judgement"), std::string::npos);
  EXPECT_NE(table.find("75.0"), std::string::npos);  // pool hit% of row b
}

TEST(ShardReportTest, ParseRejectsMalformedInput) {
  std::vector<ShardRuntimeRow> rows;
  std::string error;
  EXPECT_FALSE(telemetry::parse_shards_report("not json\n", &rows, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(telemetry::parse_shards_report("{\"shard\":0}\n[1,2]\n", &rows,
                                              &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(telemetry::parse_shards_report("", &rows, &error));
  EXPECT_NE(error.find("no rows"), std::string::npos);
}

TEST(ShardReportTest, JudgementsNameEachPathology) {
  ShardRuntimeRow row;
  row.busy_s = 1.0;
  EXPECT_EQ(telemetry::analysis::judge_shard_runtime(row), "ok");

  row.wait_s = 0.5;  // a third of wall time waiting at barriers
  EXPECT_EQ(telemetry::analysis::judge_shard_runtime(row), "imbalanced");

  // Sub-10ms runs are scheduling noise, never "imbalanced".
  ShardRuntimeRow tiny;
  tiny.busy_s = 0.001;
  tiny.wait_s = 0.008;
  EXPECT_EQ(telemetry::analysis::judge_shard_runtime(tiny), "ok");

  ShardRuntimeRow bad;
  bad.overflow_peak = 1;
  bad.ring_late = 2;
  bad.decode_errors = 3;
  EXPECT_EQ(telemetry::analysis::judge_shard_runtime(bad),
            "overflow,backpressure,decode-errors");
}

// The imbalance threshold is strict (> 0.25 * wall): a shard waiting for
// EXACTLY a quarter of its wall time is still "ok" — the verdict flips
// only past the boundary, and these pins keep the boundary from drifting
// silently under a refactor.
TEST(ShardReportTest, JudgementBoundaries) {
  ShardRuntimeRow quarter;
  quarter.busy_s = 0.75;
  quarter.wait_s = 0.25;  // wait == 0.25 * wall, not >
  EXPECT_EQ(telemetry::analysis::judge_shard_runtime(quarter), "ok");

  ShardRuntimeRow just_over;
  just_over.busy_s = 0.7499;
  just_over.wait_s = 0.2501;
  EXPECT_EQ(telemetry::analysis::judge_shard_runtime(just_over), "imbalanced");

  // A shard that never ran an epoch has zero wall time: nothing to judge.
  ShardRuntimeRow zero;
  EXPECT_EQ(telemetry::analysis::judge_shard_runtime(zero), "ok");

  // All-idle (busy 0, all wall time at barriers) IS imbalance — the shard
  // had nothing to do while its siblings worked.
  ShardRuntimeRow idle;
  idle.busy_s = 0.0;
  idle.wait_s = 1.0;
  EXPECT_EQ(telemetry::analysis::judge_shard_runtime(idle), "imbalanced");
}

// The --json report carries each row's judgement inline, so machine
// consumers never re-implement the verdict rules.
TEST(ShardReportTest, JudgedJsonlAppendsVerdicts) {
  ShardRuntimeRow ok;
  ok.shard = 0;
  ok.busy_s = 1.0;
  ShardRuntimeRow late;
  late.shard = 1;
  late.ring_late = 2;
  const std::string jsonl = telemetry::shards_report_judged_jsonl({ok, late});
  EXPECT_NE(jsonl.find("\"judgement\":\"ok\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"judgement\":\"backpressure\""), std::string::npos);
  // The judged form stays parseable: judgement is an unknown key to the
  // round-trip parser and is ignored.
  std::vector<ShardRuntimeRow> rows;
  std::string error;
  ASSERT_TRUE(telemetry::parse_shards_report(jsonl, &rows, &error)) << error;
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].ring_late, 2u);
}

// The report a real sharded run emits parses and judges cleanly.
TEST(ShardReportTest, ScaleRunEmitsParsableReport) {
  core::FleetScaleConfig cfg;
  cfg.vehicles = 40;
  cfg.seed = 11;
  cfg.shards = 4;
  cfg.threads = 2;
  cfg.run_until = sim::seconds(4);
  cfg.drain = sim::seconds(4);
  cfg.ingest_backend = true;
  const core::FleetScaleOutcome out = core::run_fleet_scale(cfg);

  std::vector<ShardRuntimeRow> rows;
  std::string error;
  ASSERT_TRUE(telemetry::parse_shards_report(out.shards_jsonl, &rows, &error))
      << error;
  ASSERT_EQ(rows.size(), 4u);
  std::uint64_t events = 0;
  std::uint64_t frames = 0;
  for (const ShardRuntimeRow& r : rows) {
    events += r.events;
    frames += r.frames;
    EXPECT_EQ(r.epochs, out.epochs);
    EXPECT_GT(r.queue_peak, 0u);
  }
  EXPECT_EQ(events, out.events_fired);
  EXPECT_EQ(frames, out.frames_ingested);
}

}  // namespace
