// Sharded-simulator determinism suite (DESIGN.md §6f).
//
// The load-bearing assertions are the sweeps: the SAME (seed, plan,
// config) must yield BYTE-identical output — digests, report tables,
// frame logs, fault traces — no matter how many shards partition the
// fleet or how many threads drive them. Everything else here (calendar
// queue vs heap oracle, thread pool, epoch mechanics) exists to localize
// a sweep failure.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/fleet_scale.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded.hpp"
#include "sim/thread_pool.hpp"
#include "telemetry/session.hpp"

namespace {

using namespace vdap;
using sim::EventQueue;
using sim::HeapEventQueue;

// --- calendar queue vs heap oracle ------------------------------------------

// Drives the bucketed calendar queue and the reference heap queue through
// one identical randomized schedule of push/cancel/pop and asserts they
// fire the same events at the same times in the same order. A small wheel
// (4 buckets x 1024 us) forces constant overflow spills, window advances
// and re-anchors — the paths a plain in-window workload never touches.
TEST(CalendarQueueTest, MatchesHeapOracleOnRandomizedSchedule) {
  util::RngStream rng(0xBADC0DE);
  EventQueue calendar(sim::usec(1024), 4);
  HeapEventQueue heap;

  std::vector<int> calendar_fired;
  std::vector<int> heap_fired;
  std::vector<sim::SimTime> calendar_times;
  std::vector<sim::SimTime> heap_times;
  // tag -> the EventId each queue handed out for it (for cancels).
  std::map<int, sim::EventId> calendar_ids;
  std::map<int, sim::EventId> heap_ids;
  std::vector<int> live_tags;

  sim::SimTime now = 0;
  int next_tag = 0;
  for (int op = 0; op < 5000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.55) {
      // Push at a time from "past" (clamped by pop order anyway) to far
      // beyond the wheel window.
      const sim::SimTime at = now + rng.uniform_int(0, 20'000);
      const int tag = next_tag++;
      calendar_ids[tag] = calendar.push(
          at, [tag, &calendar_fired]() { calendar_fired.push_back(tag); });
      heap_ids[tag] =
          heap.push(at, [tag, &heap_fired]() { heap_fired.push_back(tag); });
      live_tags.push_back(tag);
    } else if (dice < 0.70 && !live_tags.empty()) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live_tags.size()) - 1));
      const int tag = live_tags[pick];
      live_tags.erase(live_tags.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_EQ(calendar.cancel(calendar_ids[tag]), heap.cancel(heap_ids[tag]))
          << "cancel verdicts diverged for tag " << tag;
    } else if (!calendar.empty()) {
      ASSERT_FALSE(heap.empty());
      ASSERT_EQ(calendar.next_time(), heap.next_time()) << "op " << op;
      EventQueue::Fired cf = calendar.pop();
      HeapEventQueue::Fired hf = heap.pop();
      ASSERT_EQ(cf.at, hf.at) << "op " << op;
      now = cf.at;
      calendar_times.push_back(cf.at);
      heap_times.push_back(hf.at);
      cf.fn();
      hf.fn();
    }
    ASSERT_EQ(calendar.size(), heap.size()) << "op " << op;
  }
  // Drain what is left.
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    ASSERT_EQ(calendar.next_time(), heap.next_time());
    EventQueue::Fired cf = calendar.pop();
    HeapEventQueue::Fired hf = heap.pop();
    ASSERT_EQ(cf.at, hf.at);
    cf.fn();
    hf.fn();
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar_fired, heap_fired);
  EXPECT_EQ(calendar_times, heap_times);
}

// Regression: drain the queue (the cursor bucket keeps its consumed
// prefix), then push an event that re-anchors the wheel onto that SAME
// bucket index. The stale consumed entries must not be retired twice —
// that corrupted the slot free list and silently dropped later events.
TEST(CalendarQueueTest, ReanchorOntoConsumedBucketDoesNotDropEvents) {
  const sim::SimDuration width = sim::usec(1024);
  const std::size_t buckets = 4;
  EventQueue q(width, buckets);
  const sim::SimDuration window = width * static_cast<sim::SimDuration>(buckets);

  std::vector<int> fired;
  q.push(0, [&fired]() { fired.push_back(0); });
  q.push(1, [&fired]() { fired.push_back(1); });
  q.pop().fn();
  q.pop().fn();  // bucket 0 now holds two consumed (retired) entries

  // 10 * window lands on bucket index 0 again after the re-anchor.
  q.push(10 * window, [&fired]() { fired.push_back(2); });
  q.push(10 * window + 1, [&fired]() { fired.push_back(3); });
  q.push(10 * window + 2, [&fired]() { fired.push_back(4); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(CalendarQueueTest, CancelOfOverflowedEventHolds) {
  EventQueue q(sim::usec(1024), 4);
  std::vector<int> fired;
  sim::EventId far = q.push(sim::seconds(100),
                            [&fired]() { fired.push_back(99); });
  q.push(sim::usec(10), [&fired]() { fired.push_back(1); });
  EXPECT_TRUE(q.cancel(far));
  EXPECT_FALSE(q.cancel(far));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, std::vector<int>{1});
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskAcrossBatches) {
  for (int threads : {1, 4}) {
    sim::ThreadPool pool(threads);
    std::atomic<int> hits{0};
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < 17; ++i) {
        tasks.emplace_back([&hits]() { hits.fetch_add(1); });
      }
      pool.run(tasks);
    }
    EXPECT_EQ(hits.load(), 3 * 17) << "threads=" << threads;
  }
}

// --- sharded simulator mechanics --------------------------------------------

TEST(ShardedSimulatorTest, EpochsAdvanceInLockStep) {
  sim::ShardedSimulator ssim(7, {4, 1, sim::seconds(1)});
  std::vector<int> fired_shards;
  for (int s = 0; s < 4; ++s) {
    ssim.shard(s).at(sim::msec(100) * (s + 1),
                     [s, &fired_shards]() { fired_shards.push_back(s); });
  }
  std::size_t fired = ssim.run_until(sim::seconds(10));
  EXPECT_EQ(fired, 4u);
  EXPECT_EQ(ssim.epochs_run(), 10u);
  EXPECT_EQ(ssim.now(), sim::seconds(10));
  EXPECT_TRUE(ssim.idle());
  EXPECT_EQ(fired_shards, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ShardedSimulatorTest, MergesEpochMessagesByTimeThenKey) {
  sim::ShardedSimulator ssim(7, {3, 1, sim::seconds(1)});
  std::vector<std::string> order;
  ssim.set_epoch_sink([&order](sim::SimTime,
                               std::vector<sim::ShardMessage>&& batch) {
    for (const sim::ShardMessage& m : batch) order.push_back(m.payload);
  });
  // Posted out of shard order and out of time order; the sink must see
  // (at, key) order regardless.
  ssim.post(2, sim::msec(500), 8, "t500-k8");
  ssim.post(1, sim::msec(200), 7, "t200-k7");
  ssim.post(0, sim::msec(500), 3, "t500-k3");
  ssim.post(1, sim::msec(200), 1, "t200-k1");
  ssim.run_until(sim::seconds(1));
  EXPECT_EQ(order, (std::vector<std::string>{"t200-k1", "t200-k7", "t500-k3",
                                             "t500-k8"}));
}

TEST(ShardedSimulatorTest, RefusesOpenEndedHorizon) {
  sim::ShardedSimulator ssim(7, {2, 1, sim::seconds(1)});
  EXPECT_THROW(ssim.run_until(sim::kTimeMax), std::invalid_argument);
}

// Only the LEGACY Session (which binds the process-global domain on a
// thread that participates in pool work) still refuses worker threads;
// per-shard DomainSet capture across threads is covered by obs_test.
TEST(ShardedSimulatorTest, RefusesThreadsWithLiveTelemetry) {
  sim::Simulator host(7);
  telemetry::Session session(host);
  sim::ShardedSimulator ssim(7, {2, 2, sim::seconds(1)});
  EXPECT_THROW(ssim.run_until(sim::seconds(1)), std::logic_error);
}

// --- byte-identity sweeps ----------------------------------------------------

core::FleetScaleConfig scale_config(int shards, int threads) {
  core::FleetScaleConfig cfg;
  cfg.vehicles = 40;
  cfg.seed = 11;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.run_until = sim::seconds(6);
  cfg.drain = sim::seconds(6);
  return cfg;
}

TEST(ShardSweepTest, ScalePathIdenticalAcrossShardAndThreadCounts) {
  core::FleetScaleOutcome base = core::run_fleet_scale(scale_config(1, 1));
  EXPECT_GT(base.frames_delivered, 0u);
  EXPECT_GT(base.samples_delivered, 0u);
  EXPECT_EQ(base.decode_errors, 0u);
  for (int shards : {2, 8}) {
    for (int threads : {1, 4}) {
      core::FleetScaleOutcome out =
          core::run_fleet_scale(scale_config(shards, threads));
      EXPECT_EQ(out.digest, base.digest)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(out.summary, base.summary)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(out.frames_delivered, base.frames_delivered);
      EXPECT_EQ(out.wire_bytes, base.wire_bytes);
    }
  }
}

core::FleetConfig fleet_config(int shards, int threads, const char* tag) {
  core::FleetConfig cfg;
  cfg.vehicles = 6;
  cfg.seed = 11;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.dir_tag = tag;
  cfg.load_until = sim::seconds(90);
  cfg.run_until = sim::seconds(120);
  cfg.drain = sim::seconds(30);
  return cfg;
}

TEST(ShardSweepTest, FullFleetIdenticalAcrossShardAndThreadCounts) {
  const sim::FaultPlan plan = core::fleet_uplink_chaos_plan();
  core::FleetOutcome base =
      core::run_fleet(plan, fleet_config(1, 1, "sweep-base"));
  EXPECT_GT(base.frames_ingested, 0u);
  int variant = 0;
  for (int shards : {2, 8}) {
    for (int threads : {1, 4}) {
      std::string tag = "sweep-" + std::to_string(variant++);
      core::FleetOutcome out =
          core::run_fleet(plan, fleet_config(shards, threads, tag.c_str()));
      EXPECT_EQ(out.frames_jsonl, base.frames_jsonl)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(out.rollup_table, base.rollup_table);
      EXPECT_EQ(out.vehicle_table, base.vehicle_table);
      EXPECT_EQ(out.anomaly_table, base.anomaly_table);
      EXPECT_EQ(out.fault_trace, base.fault_trace);
      EXPECT_EQ(out.frames_ingested, base.frames_ingested);
      EXPECT_EQ(out.lost_frames, base.lost_frames);
      EXPECT_EQ(out.releases, base.releases);
      EXPECT_EQ(out.completed_ok, base.completed_ok);
    }
  }
}

// The compute-outlier experiment must still localize the sick vehicle
// when that vehicle's shard is one of many.
TEST(ShardSweepTest, ComputeOutlierSurvivesSharding) {
  const sim::FaultPlan plan = core::fleet_compute_outlier_plan(3);
  core::FleetOutcome base =
      core::run_fleet(plan, fleet_config(1, 1, "outlier-base"));
  core::FleetOutcome sharded =
      core::run_fleet(plan, fleet_config(4, 2, "outlier-sharded"));
  EXPECT_EQ(sharded.anomaly_table, base.anomaly_table);
  EXPECT_EQ(sharded.anomalous_vehicles, base.anomalous_vehicles);
  EXPECT_EQ(sharded.frames_jsonl, base.frames_jsonl);
}

}  // namespace
