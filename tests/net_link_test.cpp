#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vdap::net {
namespace {

LinkSpec test_link(double mbps = 8.0, sim::SimDuration lat = sim::msec(10),
                   double loss = 0.0) {
  return {"test", LinkKind::kWired, mbps, lat, loss};
}

TEST(LinkSpec, EstimateIsSerializationPlusLatency) {
  LinkSpec s = test_link(8.0, sim::msec(10));  // 8 Mbps = 1 MB/s
  EXPECT_EQ(s.estimate(1'000'000), sim::msec(10) + sim::seconds(1));
  EXPECT_EQ(s.estimate(0), sim::msec(10));
}

TEST(LinkSpec, ReliableEstimateInflatesWithLoss) {
  LinkSpec clean = test_link(8.0, sim::msec(10), 0.0);
  LinkSpec lossy = test_link(8.0, sim::msec(10), 0.5);
  EXPECT_EQ(clean.estimate_reliable(1000), clean.estimate(1000));
  EXPECT_EQ(lossy.estimate_reliable(1000), 2 * lossy.estimate(1000));
  // Pathological loss stays finite.
  LinkSpec dead = test_link(8.0, sim::msec(10), 1.0);
  EXPECT_LT(dead.estimate_reliable(1000), sim::seconds(10));
}

TEST(LinkReference, SpecsAreOrderedSensibly) {
  // DSRC/5G beat LTE uplink in bandwidth (why the paper picks them for
  // V2V / V2X); the wired backhaul beats everything.
  EXPECT_GT(links::dsrc().bandwidth_mbps, links::lte_uplink().bandwidth_mbps);
  EXPECT_GT(links::nr5g().bandwidth_mbps, links::dsrc().bandwidth_mbps);
  EXPECT_GT(links::metro_fiber().bandwidth_mbps,
            links::nr5g().bandwidth_mbps);
  // One-hop media have much lower latency than wide-area cellular.
  EXPECT_LT(links::dsrc().latency, links::lte_uplink().latency);
}

TEST(Link, DeliversWithLatency) {
  sim::Simulator sim;
  Link link(sim, test_link(8.0, sim::msec(10)));
  TransferReport got;
  link.send(1'000'000, [&](const TransferReport& r) { got = r; });
  sim.run_until();
  EXPECT_TRUE(got.delivered);
  EXPECT_EQ(got.latency(), sim::seconds(1) + sim::msec(10));
  EXPECT_EQ(link.delivered(), 1u);
  EXPECT_EQ(link.bytes_sent(), 1'000'000u);
}

TEST(Link, SerializesFifo) {
  sim::Simulator sim;
  Link link(sim, test_link(8.0, sim::msec(10)));
  std::vector<TransferReport> done;
  link.send(1'000'000, [&](const TransferReport& r) { done.push_back(r); });
  link.send(1'000'000, [&](const TransferReport& r) { done.push_back(r); });
  sim.run_until();
  ASSERT_EQ(done.size(), 2u);
  // Second message waits for the first's serialization (but not its
  // propagation): finishes one second later.
  EXPECT_EQ(done[1].finished - done[0].finished, sim::seconds(1));
}

TEST(Link, PipelinesPropagation) {
  // Propagation overlaps with the next serialization: N messages of 1s
  // serialization each finish at 1s+lat, 2s+lat, ... not 1s+lat, 2s+2lat.
  sim::Simulator sim;
  Link link(sim, test_link(8.0, sim::msec(500)));
  std::vector<sim::SimTime> finish;
  for (int i = 0; i < 3; ++i) {
    link.send(1'000'000,
              [&](const TransferReport& r) { finish.push_back(r.finished); });
  }
  sim.run_until();
  ASSERT_EQ(finish.size(), 3u);
  EXPECT_EQ(finish[0], sim::seconds(1) + sim::msec(500));
  EXPECT_EQ(finish[1], sim::seconds(2) + sim::msec(500));
  EXPECT_EQ(finish[2], sim::seconds(3) + sim::msec(500));
}

TEST(Link, LossRateApproximatelyRespected) {
  sim::Simulator sim(7);
  Link link(sim, test_link(1000.0, sim::msec(1), 0.3));
  int delivered = 0;
  int dropped = 0;
  for (int i = 0; i < 2000; ++i) {
    link.send(100, [&](const TransferReport& r) {
      (r.delivered ? delivered : dropped)++;
    });
  }
  sim.run_until();
  EXPECT_EQ(delivered + dropped, 2000);
  double rate = static_cast<double>(dropped) / 2000.0;
  EXPECT_NEAR(rate, 0.3, 0.05);
  EXPECT_EQ(link.dropped(), static_cast<std::uint64_t>(dropped));
}

TEST(Link, RejectsNonPositiveBandwidth) {
  sim::Simulator sim;
  LinkSpec s = test_link(0.0);
  EXPECT_THROW(Link(sim, s), std::invalid_argument);
}

}  // namespace
}  // namespace vdap::net
