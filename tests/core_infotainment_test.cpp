#include "core/infotainment.hpp"

#include <gtest/gtest.h>

#include "hw/catalog.hpp"

namespace vdap::core {
namespace {

class InfotainmentTest : public ::testing::Test {
 protected:
  InfotainmentTest()
      : cpu(sim, hw::catalog::core_i7_6700()),
        gpu(sim, hw::catalog::jetson_tx2_maxp()),
        topo(sim),
        dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>()) {
    reg.join(&cpu);
    reg.join(&gpu);
  }

  InfotainmentReport run(int chunks, InfotainmentOptions opts = {}) {
    InfotainmentSession session(sim, topo, dsf, opts);
    InfotainmentReport rep;
    bool finished = false;
    session.start(chunks, [&](const InfotainmentReport& r) {
      rep = r;
      finished = true;
    });
    sim.run_until(sim.now() + sim::minutes(30));
    EXPECT_TRUE(finished);
    return rep;
  }

  sim::Simulator sim{5};
  hw::ComputeDevice cpu, gpu;
  vcu::ResourceRegistry reg;
  net::Topology topo;
  vcu::Dsf dsf;
};

TEST_F(InfotainmentTest, CleanNetworkPlaysWithoutStalls) {
  // 1.5 MB / 2 s chunk = 6 Mbps over a 60 Mbps downlink: easy.
  InfotainmentReport rep = run(30);
  EXPECT_EQ(rep.chunks_played, 30);
  EXPECT_EQ(rep.chunks_failed, 0);
  EXPECT_EQ(rep.stalls, 0);
  EXPECT_DOUBLE_EQ(rep.rebuffer_ratio(), 0.0);
  // Startup: one chunk download + decode, well under a second... but real:
  EXPECT_GT(rep.startup_delay, 0);
  EXPECT_LT(rep.startup_delay, sim::seconds(2));
  // Watch time ≈ 30 chunks x 2 s + startup.
  EXPECT_NEAR(sim::to_seconds(rep.watch_time), 60.0, 3.0);
}

TEST_F(InfotainmentTest, DegradedDownlinkCausesStalls) {
  // 6 Mbps stream over a ~3 Mbps effective downlink: sustained deficit.
  topo.apply_cellular_condition(0.05, 0.1);
  InfotainmentReport rep = run(15);
  EXPECT_GT(rep.stalls, 0);
  EXPECT_GT(rep.stall_time, 0);
  EXPECT_GT(rep.rebuffer_ratio(), 0.2);
  EXPECT_EQ(rep.chunks_played + rep.chunks_failed, 15);
}

TEST_F(InfotainmentTest, WorseNetworkMeansMoreRebuffering) {
  double prev = -1.0;
  for (double factor : {1.0, 0.08, 0.03}) {
    topo.apply_cellular_condition(factor, 0.05);
    InfotainmentReport rep = run(10);
    EXPECT_GE(rep.rebuffer_ratio(), prev) << factor;
    prev = rep.rebuffer_ratio();
  }
  EXPECT_GT(prev, 0.3);
}

TEST_F(InfotainmentTest, DeeperBufferAbsorbsJitter) {
  topo.apply_cellular_condition(0.09, 0.2);  // marginal link
  InfotainmentOptions shallow;
  shallow.buffer_target_chunks = 1;
  InfotainmentOptions deep;
  deep.buffer_target_chunks = 6;
  InfotainmentReport r_shallow = run(15, shallow);
  InfotainmentReport r_deep = run(15, deep);
  EXPECT_LE(r_deep.stall_time, r_shallow.stall_time);
}

TEST_F(InfotainmentTest, UnreachableSourceFailsAllChunks) {
  topo.set_available(net::Tier::kCloud, false);
  InfotainmentReport rep = run(5);
  EXPECT_EQ(rep.chunks_played, 0);
  EXPECT_EQ(rep.chunks_failed, 5);
}

TEST_F(InfotainmentTest, StartupDelayGrowsWithPrefetch) {
  InfotainmentOptions eager;
  eager.startup_chunks = 1;
  InfotainmentOptions cautious;
  cautious.startup_chunks = 3;
  InfotainmentReport a = run(10, eager);
  InfotainmentReport b = run(10, cautious);
  EXPECT_LT(a.startup_delay, b.startup_delay);
}

TEST_F(InfotainmentTest, AbrDropsQualityInsteadOfStalling) {
  // Fixed 4K over a deficient link stalls heavily; the ABR ladder trades
  // quality for continuity.
  topo.apply_cellular_condition(0.05, 0.1);
  InfotainmentOptions fixed;
  fixed.chunk_bytes = 3'750'000;  // 4K only
  InfotainmentReport rigid = run(15, fixed);

  InfotainmentOptions abr;
  abr.abr_ladder = {400'000, 1'500'000, 3'750'000};  // SD / HD / 4K
  InfotainmentReport adaptive = run(15, abr);

  EXPECT_GT(rigid.stall_time, adaptive.stall_time);
  // The ABR session used more than one rung.
  ASSERT_EQ(adaptive.rung_fetches.size(), 3u);
  int rungs_used = 0;
  for (int n : adaptive.rung_fetches) rungs_used += n > 0 ? 1 : 0;
  EXPECT_GE(rungs_used, 2);
  EXPECT_GE(adaptive.mean_rung(), 0.0);
  EXPECT_LE(adaptive.mean_rung(), 2.0);
}

TEST_F(InfotainmentTest, AbrUsesTopRungOnCleanNetwork) {
  InfotainmentOptions abr;
  abr.abr_ladder = {400'000, 1'500'000, 3'750'000};
  InfotainmentReport rep = run(20, abr);
  EXPECT_EQ(rep.stalls, 0);
  // After the ramp-up, the buffer stays full and fetches sit at the top.
  ASSERT_EQ(rep.rung_fetches.size(), 3u);
  EXPECT_GT(rep.rung_fetches[2], rep.rung_fetches[0]);
  EXPECT_GT(rep.mean_rung(), 1.0);
}

TEST_F(InfotainmentTest, RejectsZeroChunks) {
  InfotainmentSession session(sim, topo, dsf, {});
  EXPECT_THROW(session.start(0), std::invalid_argument);
}

}  // namespace
}  // namespace vdap::core
