#include "workload/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace vdap::workload {
namespace {

TaskSpec t(const std::string& name, double gflop = 1.0) {
  return {name, hw::TaskClass::kGeneric, gflop, 100, 10, true};
}

TEST(AppDag, AddTaskAndLookup) {
  AppDag dag("d", ServiceCategory::kAdas, {});
  int a = dag.add_task(t("a"));
  int b = dag.add_task(t("b", 2.0));
  EXPECT_EQ(dag.size(), 2);
  EXPECT_EQ(dag.task(a).name, "a");
  EXPECT_DOUBLE_EQ(dag.task(b).gflop, 2.0);
  EXPECT_THROW(dag.task(5), std::out_of_range);
  EXPECT_THROW(dag.task(-1), std::out_of_range);
}

TEST(AppDag, RejectsInvalidTask) {
  AppDag dag;
  EXPECT_THROW(dag.add_task({"", hw::TaskClass::kGeneric, 1.0, 0, 0, true}),
               std::invalid_argument);
  EXPECT_THROW(dag.add_task({"x", hw::TaskClass::kGeneric, -1.0, 0, 0, true}),
               std::invalid_argument);
}

TEST(AppDag, EdgesAndNeighbors) {
  AppDag dag;
  int a = dag.add_task(t("a"));
  int b = dag.add_task(t("b"));
  int c = dag.add_task(t("c"));
  dag.add_edge(a, b);
  dag.add_edge(a, c);
  dag.add_edge(b, c);
  EXPECT_EQ(dag.successors(a).size(), 2u);
  EXPECT_EQ(dag.predecessors(c).size(), 2u);
  EXPECT_EQ(dag.sources(), (std::vector<int>{a}));
  EXPECT_EQ(dag.sinks(), (std::vector<int>{c}));
}

TEST(AppDag, EdgeValidation) {
  AppDag dag;
  int a = dag.add_task(t("a"));
  int b = dag.add_task(t("b"));
  EXPECT_THROW(dag.add_edge(a, a), std::invalid_argument);
  EXPECT_THROW(dag.add_edge(a, 7), std::out_of_range);
  dag.add_edge(a, b);
  EXPECT_THROW(dag.add_edge(a, b), std::invalid_argument);  // duplicate
}

TEST(AppDag, TopoOrderRespectsEdges) {
  AppDag dag;
  int a = dag.add_task(t("a"));
  int b = dag.add_task(t("b"));
  int c = dag.add_task(t("c"));
  int d = dag.add_task(t("d"));
  dag.add_edge(c, b);
  dag.add_edge(b, a);
  dag.add_edge(c, d);
  auto order = dag.topo_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](int id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(c), pos(b));
  EXPECT_LT(pos(b), pos(a));
  EXPECT_LT(pos(c), pos(d));
}

TEST(AppDag, CycleDetected) {
  AppDag dag("cyc", ServiceCategory::kThirdParty, {});
  int a = dag.add_task(t("a"));
  int b = dag.add_task(t("b"));
  dag.add_edge(a, b);
  dag.add_edge(b, a);
  EXPECT_THROW(dag.topo_order(), std::logic_error);
  std::string why;
  EXPECT_FALSE(dag.validate(&why));
  EXPECT_NE(why.find("cycle"), std::string::npos);
}

TEST(AppDag, ValidateEmptyFails) {
  AppDag dag;
  std::string why;
  EXPECT_FALSE(dag.validate(&why));
  EXPECT_FALSE(why.empty());
}

TEST(AppDag, Aggregates) {
  AppDag dag;
  int a = dag.add_task(t("a", 1.0));
  int b = dag.add_task(t("b", 2.0));
  int c = dag.add_task(t("c", 4.0));
  dag.add_edge(a, b);
  dag.add_edge(a, c);
  EXPECT_DOUBLE_EQ(dag.total_gflop(), 7.0);
  EXPECT_EQ(dag.total_input_bytes(), 300u);
  // Critical path: a -> c = 5.
  EXPECT_DOUBLE_EQ(dag.critical_path_gflop(), 5.0);
}

TEST(AppDag, CriticalPathOnChainEqualsTotal) {
  AppDag dag;
  int prev = dag.add_task(t("t0", 1.5));
  for (int i = 1; i < 5; ++i) {
    int cur = dag.add_task(t("t" + std::to_string(i), 1.5));
    dag.add_edge(prev, cur);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(dag.critical_path_gflop(), dag.total_gflop());
}

TEST(AppDag, QosAccessors) {
  QosSpec q{sim::from_millis(100), 5, sim::seconds(1)};
  AppDag dag("x", ServiceCategory::kInfotainment, q);
  EXPECT_TRUE(dag.qos().has_deadline());
  EXPECT_TRUE(dag.qos().periodic());
  EXPECT_EQ(dag.category(), ServiceCategory::kInfotainment);
  dag.set_qos({});
  EXPECT_FALSE(dag.qos().has_deadline());
  EXPECT_FALSE(dag.qos().periodic());
}

}  // namespace
}  // namespace vdap::workload
