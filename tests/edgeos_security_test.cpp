#include "edgeos/security.hpp"

#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace vdap::edgeos {
namespace {

class SecurityTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  SecurityModule sec{sim};
};

TEST_F(SecurityTest, InstallAndQuery) {
  sec.install("adas", IsolationMode::kTee);
  sec.install("radio", IsolationMode::kContainer);
  EXPECT_TRUE(sec.installed("adas"));
  EXPECT_EQ(sec.mode("adas"), IsolationMode::kTee);
  EXPECT_EQ(sec.state("radio"), ServiceState::kRunning);
  EXPECT_EQ(sec.services().size(), 2u);
  EXPECT_THROW(sec.install("adas", IsolationMode::kNone),
               std::invalid_argument);
  EXPECT_THROW(sec.mode("ghost"), std::invalid_argument);
  sec.uninstall("radio");
  EXPECT_FALSE(sec.installed("radio"));
  EXPECT_THROW(sec.uninstall("radio"), std::invalid_argument);
}

TEST_F(SecurityTest, OverheadOrdering) {
  sec.install("tee", IsolationMode::kTee);
  sec.install("ctr", IsolationMode::kContainer);
  sec.install("raw", IsolationMode::kNone);
  EXPECT_GT(sec.compute_overhead("tee"), sec.compute_overhead("ctr"));
  EXPECT_GT(sec.compute_overhead("ctr"), 1.0 - 1e-12);
  EXPECT_DOUBLE_EQ(sec.compute_overhead("raw"), 1.0);
}

TEST_F(SecurityTest, AttestationRoundTrip) {
  sec.install("svc", IsolationMode::kTee);
  auto token = sec.attest("svc");
  ASSERT_TRUE(token.has_value());
  EXPECT_TRUE(sec.verify("svc", *token));
  EXPECT_FALSE(sec.verify("svc", *token + 1));
  EXPECT_FALSE(sec.verify("other", *token));
}

TEST_F(SecurityTest, TeeResistsCompromise) {
  sec.install("critical", IsolationMode::kTee);
  EXPECT_FALSE(sec.compromise("critical"));
  EXPECT_EQ(sec.state("critical"), ServiceState::kRunning);
}

TEST_F(SecurityTest, ContainerCompromiseDetectedAndReinstalled) {
  sec.install("thirdparty", IsolationMode::kContainer);
  sec.start_monitor();
  auto old_token = sec.attest("thirdparty");
  ASSERT_TRUE(old_token.has_value());

  sim.after(sim::seconds(1), [&] {
    EXPECT_TRUE(sec.compromise("thirdparty"));
    // Compromised services cannot attest.
    EXPECT_FALSE(sec.attest("thirdparty").has_value());
  });
  sim.run_until(sim::seconds(10));

  EXPECT_EQ(sec.compromises_detected(), 1u);
  EXPECT_EQ(sec.reinstalls(), 1u);
  EXPECT_EQ(sec.state("thirdparty"), ServiceState::kRunning);
  // The reinstalled instance has a fresh key: old tokens die.
  EXPECT_FALSE(sec.verify("thirdparty", *old_token));
  auto fresh = sec.attest("thirdparty");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(sec.verify("thirdparty", *fresh));
}

TEST_F(SecurityTest, RecoveryTimeIsBoundedByScanPlusReinstall) {
  SecurityOptions opt;
  opt.monitor_interval = sim::msec(200);
  opt.reinstall_duration = sim::seconds(1);
  SecurityModule fast(sim, opt);
  fast.install("svc", IsolationMode::kContainer);
  fast.start_monitor();
  sim::SimTime recovered = -1;
  fast.on_reinstall([&](const std::string&) { recovered = sim.now(); });
  sim.after(sim::msec(500), [&] { fast.compromise("svc"); });
  sim.run_until(sim::seconds(5));
  ASSERT_GE(recovered, 0);
  // Detected by the next scan (<= 200 ms) + 1 s reinstall.
  EXPECT_LE(recovered, sim::msec(500) + sim::msec(200) + sim::seconds(1));
}

TEST_F(SecurityTest, MonitorIdempotentStartStop) {
  sec.install("svc", IsolationMode::kContainer);
  sec.start_monitor();
  sec.start_monitor();  // no double-firing
  sec.compromise("svc");
  sim.run_until(sim::seconds(5));
  EXPECT_EQ(sec.compromises_detected(), 1u);
  sec.stop_monitor();
  sec.compromise("svc");
  sim.run_until(sim::seconds(10));
  EXPECT_EQ(sec.compromises_detected(), 1u);  // monitor off
}

TEST_F(SecurityTest, MigrationMovesContainerAndRekeys) {
  sec.install("a3", IsolationMode::kContainer, 5 << 20);
  auto img = sec.migrate_out("a3");
  ASSERT_TRUE(img.has_value());
  EXPECT_FALSE(sec.installed("a3"));
  EXPECT_EQ(img->state_bytes, 5u << 20);

  SecurityModule other(sim);
  other.migrate_in(*img);
  EXPECT_TRUE(other.installed("a3"));
  EXPECT_EQ(other.state("a3"), ServiceState::kRunning);
  // The foreign key is not honored on the destination vehicle.
  auto token = other.attest("a3");
  ASSERT_TRUE(token.has_value());
  EXPECT_NE(*token, util::fnv1a("a3") ^ img->attestation_key);
  EXPECT_THROW(other.migrate_in(*img), std::invalid_argument);
}

TEST_F(SecurityTest, TeeServicesRefuseMigration) {
  sec.install("critical", IsolationMode::kTee);
  EXPECT_FALSE(sec.migrate_out("critical").has_value());
  EXPECT_TRUE(sec.installed("critical"));
}

TEST_F(SecurityTest, CompromisedServiceCannotMigrate) {
  sec.install("svc", IsolationMode::kContainer);
  sec.compromise("svc");
  EXPECT_FALSE(sec.migrate_out("svc").has_value());
}

TEST_F(SecurityTest, AttestationKeysAreUniquePerService) {
  std::uint64_t k1 = sec.install("a", IsolationMode::kContainer);
  std::uint64_t k2 = sec.install("b", IsolationMode::kContainer);
  EXPECT_NE(k1, k2);
}

}  // namespace
}  // namespace vdap::edgeos
