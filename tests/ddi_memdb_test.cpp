#include "ddi/memdb.hpp"

#include <gtest/gtest.h>

namespace vdap::ddi {
namespace {

DataRecord rec(const std::string& v) {
  DataRecord r;
  r.stream = "s";
  r.payload["v"] = v;
  return r;
}

TEST(MemDb, PutGetRoundTrip) {
  MemDb db;
  db.put("k", rec("hello"), 0);
  auto got = db.get("k", sim::seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload.get_string("v"), "hello");
  EXPECT_EQ(db.hits(), 1u);
  EXPECT_EQ(db.misses(), 0u);
}

TEST(MemDb, MissingKeyIsMiss) {
  MemDb db;
  EXPECT_FALSE(db.get("nope", 0).has_value());
  EXPECT_EQ(db.misses(), 1u);
  EXPECT_DOUBLE_EQ(db.hit_rate(), 0.0);
}

TEST(MemDb, TtlExpiry) {
  MemDb db({1 << 20, sim::seconds(10)});
  db.put("k", rec("v"), 0);
  EXPECT_TRUE(db.contains("k", sim::seconds(9)));
  EXPECT_FALSE(db.contains("k", sim::seconds(10)));
  EXPECT_FALSE(db.get("k", sim::seconds(10)).has_value());
  EXPECT_EQ(db.size(), 0u);  // lazily removed on touch
}

TEST(MemDb, ExplicitTtlOverridesDefault) {
  MemDb db({1 << 20, sim::seconds(10)});
  db.put("k", rec("v"), 0, sim::seconds(100));
  EXPECT_TRUE(db.contains("k", sim::seconds(50)));
}

TEST(MemDb, OverwriteReplacesValueAndSize) {
  MemDb db;
  db.put("k", rec("short"), 0);
  std::uint64_t b1 = db.bytes();
  db.put("k", rec("a-considerably-longer-value-string"), 0);
  EXPECT_GT(db.bytes(), b1);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.get("k", 1)->payload.get_string("v"),
            "a-considerably-longer-value-string");
}

TEST(MemDb, LruEvictionUnderPressure) {
  // Tiny cache: three entries fit, the fourth evicts the least recent.
  DataRecord r = rec("x");
  std::uint64_t unit = encoded_size(r) + 2;  // key length 2
  MemDb db({3 * unit + 10, sim::seconds(100)});
  db.put("k1", r, 0);
  db.put("k2", r, 0);
  db.put("k3", r, 0);
  // Touch k1 so k2 is now the LRU victim.
  EXPECT_TRUE(db.get("k1", 1).has_value());
  db.put("k4", r, 0);
  EXPECT_TRUE(db.contains("k1", 1));
  EXPECT_FALSE(db.contains("k2", 1));
  EXPECT_TRUE(db.contains("k3", 1));
  EXPECT_TRUE(db.contains("k4", 1));
  EXPECT_GE(db.evictions(), 1u);
}

TEST(MemDb, OversizedEntryRejected) {
  MemDb db({100, sim::seconds(10)});
  DataRecord big = rec(std::string(500, 'x'));
  db.put("big", big, 0);
  EXPECT_FALSE(db.contains("big", 0));
  EXPECT_EQ(db.bytes(), 0u);
}

TEST(MemDb, EraseAndPurge) {
  MemDb db({1 << 20, sim::seconds(10)});
  db.put("a", rec("1"), 0);
  db.put("b", rec("2"), 0);
  EXPECT_TRUE(db.erase("a"));
  EXPECT_FALSE(db.erase("a"));
  db.purge_expired(sim::seconds(20));
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.bytes(), 0u);
}

TEST(MemDb, DrainExpiredReturnsRecordsForWriteBack) {
  MemDb db({1 << 20, sim::seconds(10)});
  db.put("a", rec("1"), 0);
  db.put("b", rec("2"), 0);
  db.put("c", rec("3"), sim::seconds(5));  // expires at 15
  auto drained = db.drain_expired(sim::seconds(12));
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_TRUE(db.contains("c", sim::seconds(12)));
}

TEST(MemDb, BytesAccountingConsistent) {
  MemDb db;
  for (int i = 0; i < 50; ++i) {
    db.put("key" + std::to_string(i), rec(std::string(i * 3, 'v')), 0);
  }
  std::uint64_t total = db.bytes();
  EXPECT_GT(total, 0u);
  for (int i = 0; i < 50; ++i) db.erase("key" + std::to_string(i));
  EXPECT_EQ(db.bytes(), 0u);
  EXPECT_EQ(db.size(), 0u);
}

TEST(MemDb, HitRateTracksAccesses) {
  MemDb db;
  db.put("k", rec("v"), 0);
  db.get("k", 1);
  db.get("k", 1);
  db.get("gone", 1);
  EXPECT_NEAR(db.hit_rate(), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace vdap::ddi
