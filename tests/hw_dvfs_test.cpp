// DVFS / power-mode switching: the Jetson TX2's Max-Q ↔ Max-P duality as a
// runtime reconfigure (§IV-B1 pairs the two as one device at two operating
// points; Fig. 3 measures both).
#include <gtest/gtest.h>

#include "hw/catalog.hpp"

namespace vdap::hw {
namespace {

ProcessorSpec maxq_named_as_maxp() {
  // Same physical device: keep the Max-P identity, run the Max-Q tables.
  ProcessorSpec eco = catalog::jetson_tx2_maxq();
  eco.name = catalog::jetson_tx2_maxp().name;
  return eco;
}

TEST(Dvfs, ReconfigureChangesFutureServiceTimes) {
  sim::Simulator sim;
  ComputeDevice dev(sim, catalog::jetson_tx2_maxp());
  double ms_fast = 0.0, ms_slow = 0.0;
  dev.submit({TaskClass::kCnnInference, kInceptionV3Gflop, 0,
              [&](const WorkReport& r) { ms_fast = sim::to_millis(r.latency()); }});
  sim.run_until();
  dev.reconfigure(maxq_named_as_maxp());
  dev.submit({TaskClass::kCnnInference, kInceptionV3Gflop, 0,
              [&](const WorkReport& r) { ms_slow = sim::to_millis(r.latency()); }});
  sim.run_until();
  EXPECT_NEAR(ms_fast, 114.3, 0.5);  // Max-P
  EXPECT_NEAR(ms_slow, 242.8, 0.5);  // Max-Q, post-switch
}

TEST(Dvfs, RunningTaskFinishesAtOldRate) {
  sim::Simulator sim;
  ComputeDevice dev(sim, catalog::jetson_tx2_maxp());
  sim::SimTime finished = 0;
  dev.submit({TaskClass::kCnnInference, kInceptionV3Gflop, 0,
              [&](const WorkReport& r) { finished = r.finished; }});
  // Drop to eco mode mid-flight: the in-flight inference is unaffected.
  sim.after(sim::msec(50), [&] { dev.reconfigure(maxq_named_as_maxp()); });
  sim.run_until();
  EXPECT_NEAR(sim::to_millis(finished), 114.3, 0.5);
}

TEST(Dvfs, EnergyAttributedPerMode) {
  sim::Simulator sim;
  ComputeDevice dev(sim, catalog::jetson_tx2_maxp());  // 2.5 W idle
  // Idle 10 s in Max-P, switch to Max-Q (1.5 W idle), idle 10 s more.
  sim.after(sim::seconds(10), [&] { dev.reconfigure(maxq_named_as_maxp()); });
  sim.run_until(sim::seconds(20));
  EXPECT_NEAR(dev.energy_joules(), 10.0 * 2.5 + 10.0 * 1.5, 0.01);
}

TEST(Dvfs, IdentityInvariantsEnforced) {
  sim::Simulator sim;
  ComputeDevice dev(sim, catalog::jetson_tx2_maxp());
  EXPECT_THROW(dev.reconfigure(catalog::jetson_tx2_maxq()),
               std::invalid_argument);  // different name
  ProcessorSpec bad = maxq_named_as_maxp();
  bad.slots = 4;
  EXPECT_THROW(dev.reconfigure(bad), std::invalid_argument);
}

TEST(Dvfs, SchedulerEstimatesFollowTheMode) {
  sim::Simulator sim;
  ComputeDevice dev(sim, catalog::jetson_tx2_maxp());
  auto fast = dev.estimate_finish(TaskClass::kCnnInference, kInceptionV3Gflop);
  dev.reconfigure(maxq_named_as_maxp());
  auto slow = dev.estimate_finish(TaskClass::kCnnInference, kInceptionV3Gflop);
  ASSERT_TRUE(fast && slow);
  EXPECT_GT(*slow, *fast);
}

}  // namespace
}  // namespace vdap::hw
