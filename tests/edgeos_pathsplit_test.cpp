// The §IV-C open problem: dividing a chain workload across the
// vehicle→edge→cloud path ("how to dynamical divide workload on the edges").
#include <gtest/gtest.h>

#include "edgeos/elastic.hpp"
#include "hw/catalog.hpp"
#include "workload/apps.hpp"

namespace vdap::edgeos {
namespace {

const std::vector<net::Tier> kPath = {net::Tier::kOnBoard,
                                      net::Tier::kRsuEdge, net::Tier::kCloud};

TEST(PathSplit, EnumeratesAllMonotoneCuts) {
  // 3-stage chain over 3 tiers: C(3+2, 2) = 10 monotone assignments.
  auto svc = make_path_split_pipelines(
      workload::apps::license_plate_pipeline(), kPath);
  EXPECT_EQ(svc.pipelines.size(), 10u);
  std::string why;
  EXPECT_TRUE(svc.validate(&why)) << why;
}

TEST(PathSplit, PlacementsAreMonotone) {
  auto svc = make_path_split_pipelines(
      workload::apps::license_plate_pipeline(), kPath);
  auto tier_index = [&](net::Tier t) {
    for (std::size_t i = 0; i < kPath.size(); ++i) {
      if (kPath[i] == t) return static_cast<int>(i);
    }
    return -1;
  };
  for (const Pipeline& p : svc.pipelines) {
    int prev = 0;
    for (int id : svc.dag.topo_order()) {
      int level = tier_index(p.placement[static_cast<std::size_t>(id)]);
      EXPECT_GE(level, prev) << p.name;  // data flows strictly outward
      prev = level;
    }
  }
}

TEST(PathSplit, IncludesPureEndpoints) {
  auto svc = make_path_split_pipelines(
      workload::apps::license_plate_pipeline(), kPath);
  bool all_onboard = false, all_cloud = false;
  for (const Pipeline& p : svc.pipelines) {
    if (p.all_on_board()) all_onboard = true;
    bool cloud = true;
    for (net::Tier t : p.placement) cloud &= t == net::Tier::kCloud;
    all_cloud |= cloud;
  }
  EXPECT_TRUE(all_onboard);
  EXPECT_TRUE(all_cloud);
}

TEST(PathSplit, PinnedStagesPinTheCut) {
  // Pedestrian detection's sink (actuation) is pinned on board — but it is
  // a chain whose LAST stage is pinned, so every pipeline must be fully
  // on-board (monotone placement can never come back to the vehicle).
  auto svc = make_path_split_pipelines(
      workload::apps::pedestrian_detection(), kPath);
  ASSERT_EQ(svc.pipelines.size(), 1u);
  EXPECT_TRUE(svc.pipelines[0].all_on_board());
}

TEST(PathSplit, RejectsNonChainDags) {
  workload::AppDag fan("fan", workload::ServiceCategory::kThirdParty, {});
  int a = fan.add_task({"a", hw::TaskClass::kGeneric, 0.1, 10, 10, true});
  int b = fan.add_task({"b", hw::TaskClass::kGeneric, 0.1, 10, 10, true});
  int c = fan.add_task({"c", hw::TaskClass::kGeneric, 0.1, 10, 10, true});
  fan.add_edge(a, b);
  fan.add_edge(a, c);
  EXPECT_THROW(make_path_split_pipelines(fan, kPath), std::invalid_argument);
}

TEST(PathSplit, RejectsPathNotStartingOnBoard) {
  EXPECT_THROW(make_path_split_pipelines(
                   workload::apps::license_plate_pipeline(),
                   {net::Tier::kRsuEdge, net::Tier::kCloud}),
               std::invalid_argument);
}

class PathSplitElasticTest : public ::testing::Test {
 protected:
  PathSplitElasticTest()
      : cpu(sim, hw::catalog::core_i7_6700()),
        gpu(sim, hw::catalog::jetson_tx2_maxp()),
        rsu(sim, hw::catalog::rsu_edge_server()),
        cloud(sim, hw::catalog::cloud_server()),
        topo(sim),
        dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>()),
        mgr(sim, dsf, topo) {
    reg.join(&cpu);
    reg.join(&gpu);
    mgr.set_remote_device(net::Tier::kRsuEdge, &rsu);
    mgr.set_remote_device(net::Tier::kCloud, &cloud);
  }

  sim::Simulator sim;
  hw::ComputeDevice cpu, gpu, rsu, cloud;
  vcu::ResourceRegistry reg;
  net::Topology topo;
  vcu::Dsf dsf;
  ElasticManager mgr;
};

TEST_F(PathSplitElasticTest, EveryCutIsEstimableAndRunnable) {
  auto svc = make_path_split_pipelines(
      workload::apps::license_plate_pipeline(), kPath);
  svc.dag.set_qos({0, 4, 0});
  auto ests = mgr.estimate(svc);
  ASSERT_EQ(ests.size(), 10u);
  for (const auto& e : ests) {
    EXPECT_TRUE(e.feasible) << e.pipeline;
    EXPECT_GT(e.latency, 0) << e.pipeline;
  }
  ServiceRunReport rep;
  mgr.run(svc, [&](const ServiceRunReport& r) { rep = r; });
  sim.run_until(sim::seconds(30));
  EXPECT_TRUE(rep.ok);
}

TEST_F(PathSplitElasticTest, OptimalCutMovesWithVehicleLoad) {
  // Idle vehicle: keep everything local. Saturated vehicle: the chosen cut
  // pushes at least the heavy stages outward.
  auto svc = make_path_split_pipelines(
      workload::apps::license_plate_pipeline(), kPath);
  svc.dag.set_qos({0, 4, 0});
  const Pipeline* idle_choice = mgr.choose(svc);
  ASSERT_NE(idle_choice, nullptr);
  std::string idle_name = idle_choice->name;

  for (int i = 0; i < 60; ++i) {
    cpu.submit({hw::TaskClass::kCnnInference, 74.0, 0, nullptr});
    gpu.submit({hw::TaskClass::kCnnInference, 99.0, 0, nullptr});
    cpu.submit({hw::TaskClass::kVisionClassic, 40.0, 0, nullptr});
    gpu.submit({hw::TaskClass::kPreprocess, 35.0, 0, nullptr});
  }
  const Pipeline* busy_choice = mgr.choose(svc);
  ASSERT_NE(busy_choice, nullptr);
  EXPECT_NE(busy_choice->name, idle_name);
  // At least one stage left the vehicle.
  bool offloaded = false;
  for (net::Tier t : busy_choice->placement) {
    offloaded |= t != net::Tier::kOnBoard;
  }
  EXPECT_TRUE(offloaded);
}

}  // namespace
}  // namespace vdap::edgeos
