#include "ddi/collectors.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "ddi/ddi.hpp"

namespace vdap::ddi {
namespace {

namespace fs = std::filesystem;

TEST(ObdCollector, EmitsAtItsCadence) {
  sim::Simulator sim;
  std::vector<DataRecord> records;
  ObdCollector obd(sim, [&](DataRecord r) { records.push_back(std::move(r)); });
  obd.start();
  sim.run_until(sim::seconds(10));
  obd.stop();
  // 10 Hz for 10 s: one tick per 100 ms, t=0 through t=10s inclusive.
  EXPECT_EQ(records.size(), 101u);
  EXPECT_EQ(obd.emitted(), 101u);
  for (const DataRecord& r : records) {
    EXPECT_EQ(r.stream, "vehicle/obd");
  }
  // Timestamps step by exactly the period.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].timestamp - records[i - 1].timestamp, sim::msec(100));
  }
  // Stopped: no further emissions.
  sim.run_until(sim::seconds(20));
  EXPECT_EQ(records.size(), 101u);
}

TEST(ObdCollector, StateEvolvesPlausibly) {
  sim::Simulator sim;
  ObdCollector obd(sim, [](DataRecord) {});
  obd.set_target_speed(30.0);
  obd.start();
  sim.run_until(sim::minutes(2));
  const VehicleStateModel& s = obd.state();
  EXPECT_GT(s.speed_mps, 5.0);    // accelerated toward the target
  EXPECT_GT(s.odometer_m, 100.0);  // actually moved
  EXPECT_GT(s.coolant_c, 70.0);    // warmed up under way
}

TEST(FeedCadence, WeatherAndTrafficUseTheirPeriods) {
  sim::Simulator sim;
  std::uint64_t weather_n = 0, traffic_n = 0;
  WeatherFeed weather(sim, [&](DataRecord) { ++weather_n; });
  TrafficFeed traffic(sim, [&](DataRecord) { ++traffic_n; });
  weather.start();
  traffic.start();
  sim.run_until(sim::minutes(10));
  EXPECT_EQ(weather_n, 11u);  // every 60 s, t=0 through t=600s inclusive
  EXPECT_EQ(traffic_n, 21u);  // every 30 s, ditto
}

TEST(SocialFeed, PoissonStreamIsSeedDeterministic) {
  auto count = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    std::uint64_t n = 0;
    SocialFeed social(sim, [&](DataRecord) { ++n; }, /*events_per_hour=*/60.0);
    social.start();
    sim.run_until(sim::minutes(60));
    return n;
  };
  EXPECT_EQ(count(7), count(7));
  // ~60 events expected; allow generous Poisson slack.
  std::uint64_t n = count(7);
  EXPECT_GT(n, 20u);
  EXPECT_LT(n, 140u);
}

TEST(CollectorToDdi, TtlHandOffMovesRecordsToDisk) {
  fs::path dir = fs::temp_directory_path() / "vdap-collectors-ttl";
  fs::remove_all(dir);
  {
    sim::Simulator sim;
    DdiOptions opts;
    opts.disk.dir = dir.string();
    opts.staging_ttl = sim::seconds(10);
    opts.flush_period = sim::seconds(5);
    Ddi ddi(sim, opts);
    ObdCollector obd(sim, [&](DataRecord r) { ddi.upload(std::move(r)); });
    obd.start();

    sim.run_until(sim::seconds(8));
    // All records younger than the TTL: still staged, none on disk.
    EXPECT_EQ(ddi.uploads(), 81u);  // ticks at t=0 through t=8s
    EXPECT_EQ(ddi.staged_count(), 81u);
    EXPECT_EQ(ddi.disk().record_count(), 0u);

    sim.run_until(sim::minutes(1));
    obd.stop();
    // Old records migrated; only the ones younger than TTL (modulo the
    // flush period) still staged.
    EXPECT_GT(ddi.disk().record_count(), 400u);
    EXPECT_LT(ddi.staged_count(), 160u);
    EXPECT_EQ(ddi.uploads(), ddi.disk().record_count() + ddi.staged_count());

    // Queries see staged + persisted records seamlessly.
    auto resp = ddi.download_now(
        DownloadRequest{"vehicle/obd", 0, sim::kTimeMax});
    EXPECT_EQ(resp.records.size(), ddi.uploads());
  }
  fs::remove_all(dir);
}

TEST(CollectorToDdi, ForceFlushDrainsStagingCompletely) {
  fs::path dir = fs::temp_directory_path() / "vdap-collectors-force";
  fs::remove_all(dir);
  {
    sim::Simulator sim;
    DdiOptions opts;
    opts.disk.dir = dir.string();
    Ddi ddi(sim, opts);
    WeatherFeed weather(sim, [&](DataRecord r) { ddi.upload(std::move(r)); });
    weather.start();
    sim.run_until(sim::minutes(5));
    ddi.flush_staged(/*force_all=*/true);
    EXPECT_EQ(ddi.staged_count(), 0u);
    EXPECT_EQ(ddi.disk().record_count(), ddi.uploads());
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace vdap::ddi
