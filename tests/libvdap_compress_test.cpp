#include "libvdap/compress.hpp"

#include <gtest/gtest.h>

#include <set>

#include "libvdap/pbeam.hpp"

namespace vdap::libvdap {
namespace {

Mlp trained_model(util::RngStream& rng) {
  Mlp model({DrivingFeatures::kDim, 32, 16, kNumStyles}, rng);
  Dataset data = synth_fleet_dataset(150, rng);
  TrainOptions opt;
  opt.epochs = 40;
  model.train(data, opt, rng);
  return model;
}

TEST(Prune, ReachesTargetSparsity) {
  util::RngStream rng(3);
  Mlp model({10, 20, 5}, rng);
  prune(model, 0.7);
  EXPECT_NEAR(model_sparsity(model), 0.7, 0.02);
}

TEST(Prune, RemovesSmallestMagnitudes) {
  util::RngStream rng(3);
  Mlp model({10, 20, 5}, rng);
  // Find the largest |w| before pruning; it must survive.
  double max_w = 0.0;
  for (double v : model.weights(0).data()) {
    max_w = std::max(max_w, std::abs(v));
  }
  prune(model, 0.5);
  double max_after = 0.0;
  double min_nonzero = 1e300;
  for (double v : model.weights(0).data()) {
    if (v != 0.0) {
      max_after = std::max(max_after, std::abs(v));
      min_nonzero = std::min(min_nonzero, std::abs(v));
    }
  }
  EXPECT_DOUBLE_EQ(max_after, max_w);
  EXPECT_GT(min_nonzero, 0.0);
}

TEST(Prune, ValidatesSparsity) {
  util::RngStream rng(3);
  Mlp model({4, 4, 2}, rng);
  EXPECT_THROW(prune(model, -0.1), std::invalid_argument);
  EXPECT_THROW(prune(model, 1.0), std::invalid_argument);
  prune(model, 0.0);  // no-op is fine
  EXPECT_DOUBLE_EQ(model_sparsity(model), 0.0);
}

TEST(Quantize, LimitsDistinctWeightValues) {
  util::RngStream rng(3);
  Mlp model({10, 20, 5}, rng);
  quantize(model, 4);  // 16 centroids per layer
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    std::set<double> distinct;
    for (double v : model.weights(l).data()) {
      if (v != 0.0) distinct.insert(v);
    }
    EXPECT_LE(distinct.size(), 16u) << l;
    EXPECT_GE(distinct.size(), 2u) << l;
  }
}

TEST(Quantize, PreservesZeros) {
  util::RngStream rng(3);
  Mlp model({10, 20, 5}, rng);
  prune(model, 0.6);
  double sparsity_before = model_sparsity(model);
  quantize(model, 4);
  EXPECT_DOUBLE_EQ(model_sparsity(model), sparsity_before);
}

TEST(Quantize, ValidatesBits) {
  util::RngStream rng(3);
  Mlp model({4, 4, 2}, rng);
  EXPECT_THROW(quantize(model, 0), std::invalid_argument);
  EXPECT_THROW(quantize(model, 17), std::invalid_argument);
}

TEST(CompressedBytes, DenseWhenUntouched) {
  util::RngStream rng(3);
  Mlp model({10, 20, 5}, rng);
  EXPECT_EQ(compressed_bytes(model, 0),
            model.weights(0).size() * 4 + model.weights(1).size() * 4 +
                20 * 4 + 5 * 4);
}

TEST(CompressedBytes, ShrinksWithSparsityAndBits) {
  util::RngStream rng(3);
  Mlp a({10, 40, 5}, rng);
  Mlp b = a;
  Mlp c = a;
  prune(b, 0.8);
  prune(c, 0.8);
  quantize(c, 4);
  EXPECT_LT(compressed_bytes(b, 0), compressed_bytes(a, 0));
  EXPECT_LT(compressed_bytes(c, 4), compressed_bytes(b, 0));
}

TEST(DeepCompress, EndToEndRatioAndAccuracy) {
  util::RngStream rng(11);
  Mlp model = trained_model(rng);
  util::RngStream eval_rng(99);
  Dataset test = synth_fleet_dataset(100, eval_rng);
  double acc_before = model.accuracy(test);
  EXPECT_GT(acc_before, 0.85);  // the classes are separable

  CompressionReport rep = deep_compress(model, 0.6, 5);
  EXPECT_NEAR(rep.sparsity, 0.6, 0.03);
  EXPECT_EQ(rep.codebook_bits, 5);
  EXPECT_GT(rep.ratio(), 3.0);  // worthwhile compression
  double acc_after = model.accuracy(test);
  // The paper's premise: compressed models stay usable on the edge.
  EXPECT_GT(acc_after, acc_before - 0.10);
}

// Parameterized sweep: more aggressive compression monotonically shrinks
// the model (the accuracy cost is measured in bench_pbeam).
class SparsitySweep : public ::testing::TestWithParam<double> {};

TEST_P(SparsitySweep, SizeShrinksMonotonically) {
  util::RngStream rng(7);
  Mlp base({DrivingFeatures::kDim, 32, 16, kNumStyles}, rng);
  Mlp pruned = base;
  prune(pruned, GetParam());
  EXPECT_LE(compressed_bytes(pruned, 5), compressed_bytes(base, 5));
  EXPECT_NEAR(model_sparsity(pruned), GetParam(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparsitySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

class BitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitsSweep, FewerBitsFewerCentroidsSmallerModel) {
  util::RngStream rng(7);
  Mlp model({DrivingFeatures::kDim, 32, 16, kNumStyles}, rng);
  prune(model, 0.5);
  Mlp q = model;
  quantize(q, GetParam());
  std::set<double> distinct;
  for (double v : q.weights(0).data()) {
    if (v != 0.0) distinct.insert(v);
  }
  EXPECT_LE(distinct.size(), std::size_t{1} << GetParam());
  // Pruned + quantized always beats the dense fp32 footprint. (At high bit
  // widths on a tiny model the codebook overhead can exceed the pruned-fp32
  // encoding, so the sparse baseline is not the right comparison there.)
  EXPECT_LE(compressed_bytes(q, GetParam()), q.dense_bytes());
  if (GetParam() <= 5) {
    EXPECT_LE(compressed_bytes(q, GetParam()), compressed_bytes(model, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitsSweep, ::testing::Values(2, 3, 4, 5, 8));

}  // namespace
}  // namespace vdap::libvdap
