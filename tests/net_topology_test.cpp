#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace vdap::net {
namespace {

TEST(PathSpec, EstimatesSumHops) {
  PathSpec p{{links::lte_uplink(), links::metro_fiber()}};
  std::uint64_t bytes = 1'000'000;
  EXPECT_EQ(p.estimate(bytes), links::lte_uplink().estimate(bytes) +
                                   links::metro_fiber().estimate(bytes));
  EXPECT_GE(p.estimate_reliable(bytes), p.estimate(bytes));
}

TEST(PathSpec, BottleneckAndDelivery) {
  PathSpec p{{links::lte_uplink(), links::metro_fiber()}};
  EXPECT_DOUBLE_EQ(p.bottleneck_mbps(), links::lte_uplink().bandwidth_mbps);
  double expect = (1.0 - links::lte_uplink().loss_rate) *
                  (1.0 - links::metro_fiber().loss_rate);
  EXPECT_DOUBLE_EQ(p.delivery_probability(), expect);
}

TEST(PathSpec, CollapsePreservesAggregate) {
  PathSpec p{{links::lte_uplink(), links::metro_fiber()}};
  LinkSpec c = p.collapse("x");
  EXPECT_DOUBLE_EQ(c.bandwidth_mbps, p.bottleneck_mbps());
  EXPECT_EQ(c.latency,
            links::lte_uplink().latency + links::metro_fiber().latency);
  EXPECT_NEAR(c.loss_rate, 1.0 - p.delivery_probability(), 1e-12);
}

TEST(Topology, DefaultAvailability) {
  sim::Simulator sim;
  Topology topo(sim);
  EXPECT_TRUE(topo.available(Tier::kOnBoard));
  EXPECT_FALSE(topo.available(Tier::kNeighbor));  // needs a willing peer
  EXPECT_TRUE(topo.available(Tier::kRsuEdge));
  EXPECT_TRUE(topo.available(Tier::kBaseStationEdge));
  EXPECT_TRUE(topo.available(Tier::kCloud));
}

TEST(Topology, OnBoardCannotBeDisabled) {
  sim::Simulator sim;
  Topology topo(sim);
  EXPECT_THROW(topo.set_available(Tier::kOnBoard, false),
               std::invalid_argument);
  topo.set_available(Tier::kRsuEdge, false);
  EXPECT_FALSE(topo.available(Tier::kRsuEdge));
  EXPECT_FALSE(topo.estimate_round_trip(Tier::kRsuEdge, 100, 100).has_value());
}

TEST(Topology, OnBoardRoundTripIsZero) {
  sim::Simulator sim;
  Topology topo(sim);
  auto rt = topo.estimate_round_trip(Tier::kOnBoard, 1 << 20, 1 << 20);
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(*rt, 0);
}

TEST(Topology, EdgeCloserThanCloud) {
  // The edge premise (§I): RSU round trips beat cloud round trips for the
  // same payload.
  sim::Simulator sim;
  Topology topo(sim);
  std::uint64_t up = 500'000, down = 10'000;
  auto rsu = topo.estimate_round_trip(Tier::kRsuEdge, up, down);
  auto cloud = topo.estimate_round_trip(Tier::kCloud, up, down);
  ASSERT_TRUE(rsu && cloud);
  EXPECT_LT(*rsu, *cloud);
}

TEST(Topology, CellularDegradationSlowsCloudNotRsu) {
  sim::Simulator sim;
  Topology topo(sim);
  std::uint64_t up = 500'000, down = 10'000;
  auto cloud_before = *topo.estimate_round_trip(Tier::kCloud, up, down);
  auto rsu_before = *topo.estimate_round_trip(Tier::kRsuEdge, up, down);
  topo.apply_cellular_condition(0.25, 0.2);
  auto cloud_after = *topo.estimate_round_trip(Tier::kCloud, up, down);
  auto rsu_after = *topo.estimate_round_trip(Tier::kRsuEdge, up, down);
  EXPECT_GT(cloud_after, cloud_before);
  EXPECT_EQ(rsu_after, rsu_before);  // DSRC path unaffected by cellular
  // Restoring the condition restores the estimate.
  topo.apply_cellular_condition(1.0, 0.0);
  EXPECT_EQ(*topo.estimate_round_trip(Tier::kCloud, up, down), cloud_before);
}

TEST(Topology, ConditionClampsInputs) {
  sim::Simulator sim;
  Topology topo(sim);
  topo.apply_cellular_condition(-1.0, 2.0);  // clamped, no crash
  EXPECT_GT(topo.cellular_bandwidth_factor(), 0.0);
  auto rt = topo.estimate_round_trip(Tier::kCloud, 1000, 1000);
  ASSERT_TRUE(rt.has_value());
  EXPECT_GT(*rt, 0);
}

TEST(Topology, TransferUpDeliversEventDriven) {
  sim::Simulator sim;
  Topology topo(sim);
  TransferOutcome got;
  topo.transfer_up(Tier::kRsuEdge, 100'000,
                   [&](const TransferOutcome& o) { got = o; });
  sim.run_until();
  EXPECT_TRUE(got.delivered);
  EXPECT_GE(got.attempts, 1);
  EXPECT_GT(got.latency(), 0);
}

TEST(Topology, TransferToUnavailableTierFailsFast) {
  sim::Simulator sim;
  Topology topo(sim);
  TransferOutcome got;
  got.delivered = true;
  topo.transfer_up(Tier::kNeighbor, 1000,
                   [&](const TransferOutcome& o) { got = o; });
  sim.run_until();
  EXPECT_FALSE(got.delivered);
  EXPECT_EQ(got.attempts, 0);
}

TEST(Topology, OnBoardTransferIsInstant) {
  sim::Simulator sim;
  Topology topo(sim);
  TransferOutcome got;
  topo.transfer_up(Tier::kOnBoard, 1 << 20,
                   [&](const TransferOutcome& o) { got = o; });
  EXPECT_TRUE(got.delivered);
  EXPECT_EQ(got.latency(), 0);
}

TEST(Topology, RetriesOnLoss) {
  sim::Simulator sim(3);
  Topology topo(sim);
  // Heavy cellular loss: transfers should need >1 attempt sometimes but
  // still mostly succeed within the retry budget.
  topo.apply_cellular_condition(1.0, 0.5);
  int delivered = 0;
  int multi_attempt = 0;
  int total = 50;
  for (int i = 0; i < total; ++i) {
    topo.transfer_up(Tier::kCloud, 10'000, [&](const TransferOutcome& o) {
      delivered += o.delivered ? 1 : 0;
      multi_attempt += o.attempts > 1 ? 1 : 0;
    });
  }
  sim.run_until();
  EXPECT_GT(delivered, total / 2);
  EXPECT_GT(multi_attempt, 0);
}

TEST(Topology, NeighborBecomesUsableWhenEnabled) {
  sim::Simulator sim;
  Topology topo(sim);
  topo.set_available(Tier::kNeighbor, true);
  auto rt = topo.estimate_round_trip(Tier::kNeighbor, 100'000, 100'000);
  ASSERT_TRUE(rt.has_value());
  // One-hop DSRC: faster than the cellular base-station path.
  auto bs = topo.estimate_round_trip(Tier::kBaseStationEdge, 100'000, 100'000);
  EXPECT_LT(*rt, *bs);
}

}  // namespace
}  // namespace vdap::net
