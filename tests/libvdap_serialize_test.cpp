// Model shipping (§IV-E): the compressed cBEAM travels cloud → vehicle as a
// binary blob; round trips must be exact and corrupt blobs must be refused.
#include <gtest/gtest.h>

#include <cstring>

#include "libvdap/compress.hpp"
#include "libvdap/pbeam.hpp"

namespace vdap::libvdap {
namespace {

Mlp sample_model(std::uint64_t seed = 3) {
  util::RngStream rng(seed);
  Mlp model({DrivingFeatures::kDim, 16, 8, kNumStyles}, rng);
  Dataset data = synth_fleet_dataset(50, rng);
  TrainOptions opt;
  opt.epochs = 10;
  model.train(data, opt, rng);
  return model;
}

TEST(ModelSerialize, RoundTripIsBitExact) {
  Mlp model = sample_model();
  Mlp back = Mlp::deserialize(model.serialize());
  ASSERT_EQ(back.num_layers(), model.num_layers());
  ASSERT_EQ(back.num_params(), model.num_params());
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    EXPECT_EQ(back.weights(l).data(), model.weights(l).data()) << l;
    EXPECT_EQ(back.bias(l), model.bias(l)) << l;
  }
  // Identical predictions.
  util::RngStream rng(9);
  for (int i = 0; i < 20; ++i) {
    auto f =
        sample_style_features(DrivingStyle::kAggressive, rng).to_vector();
    EXPECT_EQ(back.predict_proba(f), model.predict_proba(f));
  }
}

TEST(ModelSerialize, CompressedModelSurvivesShipping) {
  // The actual cloud → vehicle flow: compress, ship, use.
  Mlp model = sample_model();
  deep_compress(model, 0.6, 5);
  double sparsity = model_sparsity(model);
  Mlp shipped = Mlp::deserialize(model.serialize());
  EXPECT_DOUBLE_EQ(model_sparsity(shipped), sparsity);
  util::RngStream rng(99);
  Dataset test = synth_fleet_dataset(50, rng);
  EXPECT_DOUBLE_EQ(shipped.accuracy(test), model.accuracy(test));
}

TEST(ModelSerialize, TruncatedBlobRejected) {
  auto bytes = sample_model().serialize();
  for (std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{7}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::vector<std::uint8_t> trunc(bytes.begin(),
                                    bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(Mlp::deserialize(trunc), std::runtime_error) << cut;
  }
}

TEST(ModelSerialize, TrailingGarbageRejected) {
  auto bytes = sample_model().serialize();
  bytes.push_back(0x42);
  EXPECT_THROW(Mlp::deserialize(bytes), std::runtime_error);
}

TEST(ModelSerialize, BadMagicRejected) {
  auto bytes = sample_model().serialize();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(Mlp::deserialize(bytes), std::runtime_error);
}

TEST(ModelSerialize, ImplausibleShapesRejected) {
  auto bytes = sample_model().serialize();
  // Smash the first layer's row count to something absurd.
  std::uint32_t huge = 0x7FFFFFFF;
  std::memcpy(bytes.data() + 8, &huge, 4);
  EXPECT_THROW(Mlp::deserialize(bytes), std::runtime_error);
}

TEST(ModelSerialize, SizeMatchesDenseFootprint) {
  Mlp model = sample_model();
  auto bytes = model.serialize();
  // fp64 here (simulation fidelity) vs the fp32 dense_bytes accounting:
  // header + 2x params.
  EXPECT_GE(bytes.size(), model.num_params() * 8);
  EXPECT_LE(bytes.size(), model.num_params() * 8 + 128);
}

}  // namespace
}  // namespace vdap::libvdap
