#include "core/platform.hpp"

#include "workload/apps.hpp"

#include <gtest/gtest.h>

namespace vdap::core {
namespace {

TEST(Scenario, CellularConditionModelShape) {
  CellularConditionModel m;
  EXPECT_NEAR(m.bandwidth_factor(0.0), 1.0, 1e-9);
  EXPECT_GT(m.bandwidth_factor(35.0), m.bandwidth_factor(70.0));
  EXPECT_LT(m.bandwidth_factor(70.0), 0.35);
  EXPECT_DOUBLE_EQ(m.loss_rate(0.0), 0.0);
  EXPECT_GT(m.loss_rate(70.0), m.loss_rate(35.0));
  EXPECT_LE(m.loss_rate(200.0), 0.9);
}

TEST(Scenario, SegmentsApplyOverTime) {
  sim::Simulator sim;
  net::Topology topo(sim);
  DriveScenario scenario(sim, topo,
                         {{10.0, 0.0, true, false},
                          {10.0, 70.0, false, true}});
  scenario.start();
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(scenario.current_segment(), 0);
  EXPECT_TRUE(topo.available(net::Tier::kRsuEdge));
  EXPECT_FALSE(topo.available(net::Tier::kNeighbor));
  EXPECT_NEAR(topo.cellular_bandwidth_factor(), 1.0, 1e-9);

  sim.run_until(sim::seconds(11));
  EXPECT_EQ(scenario.current_segment(), 1);
  EXPECT_FALSE(topo.available(net::Tier::kRsuEdge));
  EXPECT_TRUE(topo.available(net::Tier::kNeighbor));
  EXPECT_LT(topo.cellular_bandwidth_factor(), 0.35);
  EXPECT_DOUBLE_EQ(scenario.speed_mph_at(sim::seconds(15)), 70.0);
  EXPECT_NEAR(scenario.total_duration_s(), 20.0, 1e-9);
}

TEST(Scenario, PresetsAreSane) {
  EXPECT_GT(DriveScenario::commute().size(), 3u);
  EXPECT_EQ(DriveScenario::parked().size(), 1u);
  EXPECT_DOUBLE_EQ(DriveScenario::highway_sprint()[0].speed_mph, 70.0);
  sim::Simulator sim;
  net::Topology topo(sim);
  EXPECT_THROW(DriveScenario(sim, topo, {}), std::invalid_argument);
}

TEST(Platform, BootsWithReferenceBoard) {
  sim::Simulator sim(42);
  OpenVdap cav(sim);
  EXPECT_EQ(cav.board().devices().size(), 4u);
  EXPECT_EQ(cav.registry().size(), 4u);
  EXPECT_NE(cav.remote_device(net::Tier::kRsuEdge), nullptr);
  EXPECT_NE(cav.remote_device(net::Tier::kCloud), nullptr);
  EXPECT_EQ(cav.remote_device(net::Tier::kOnBoard), nullptr);
}

TEST(Platform, StandardServicesInstallAndRun) {
  sim::Simulator sim(42);
  OpenVdap cav(sim);
  cav.install_standard_services();
  EXPECT_TRUE(cav.os().has_service("lane-detection"));
  EXPECT_TRUE(cav.os().has_service("a3-kidnapper-search"));
  // TEE for safety-critical, containers for third-party (§IV-C).
  EXPECT_EQ(cav.os().security().mode("pedestrian-alert"),
            edgeos::IsolationMode::kTee);
  EXPECT_EQ(cav.os().security().mode("license-plate"),
            edgeos::IsolationMode::kContainer);

  int ok = 0;
  for (const char* svc : {"lane-detection", "pedestrian-alert",
                          "obd-diagnostics", "license-plate"}) {
    cav.run_service(svc, [&](const edgeos::ServiceRunReport& r) {
      ok += r.ok ? 1 : 0;
    });
  }
  sim.run_until(sim::seconds(30));
  EXPECT_EQ(ok, 4);
}

TEST(Platform, ApiReachesLiveComponents) {
  sim::Simulator sim(42);
  OpenVdap cav(sim);
  auto resp = cav.api().get("/v1/resources");
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.at("resources").size(), 4u);
  EXPECT_EQ(cav.api().get("/v1/models").status, 200);
}

TEST(Platform, CollectorsFillDdi) {
  sim::Simulator sim(42);
  PlatformConfig cfg;
  cfg.start_collectors = true;
  OpenVdap cav(sim, cfg);
  sim.run_until(sim::seconds(30));
  auto resp =
      cav.ddi().download_now({"vehicle/obd", 0, sim::seconds(30)});
  EXPECT_GT(resp.records.size(), 250u);  // ~10 Hz for 30 s
}

TEST(Platform, ScenarioDrivesOffloadDecisions) {
  sim::Simulator sim(42);
  OpenVdap cav(sim);
  cav.install_standard_services();
  DriveScenario scenario(sim, cav.topology(),
                         DriveScenario::highway_sprint(60.0),
                         &cav.elastic());
  scenario.start();
  sim.run_until(sim::seconds(1));
  // At 70 MPH with no RSU, cellular is degraded and RSU unavailable.
  EXPECT_FALSE(cav.topology().available(net::Tier::kRsuEdge));
  auto d = cav.offload().decide(workload::apps::vehicle_detection_tf());
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.tier, net::Tier::kOnBoard);
}

TEST(Platform, TwoVehiclesCollaborate) {
  sim::Simulator sim(42);
  PlatformConfig a_cfg, b_cfg;
  a_cfg.vehicle_name = "cav-a";
  a_cfg.vehicle_secret = 1;
  b_cfg.vehicle_name = "cav-b";
  b_cfg.vehicle_secret = 2;
  OpenVdap a(sim, a_cfg), b(sim, b_cfg);
  CollaborationCache::connect(a.collaboration(), b.collaboration());
  a.collaboration().put("plate:AMBER-1", json::Value("sighted"));
  std::optional<SharedResult> got;
  b.collaboration().lookup("plate:AMBER-1",
                           [&](std::optional<SharedResult> r) {
                             got = std::move(r);
                           });
  sim.run_until(sim::seconds(2));
  ASSERT_TRUE(got.has_value());
  // Pseudonymous producer, distinct per vehicle secret.
  EXPECT_NE(got->producer_pseudonym, b.collaboration().pseudonym());
  EXPECT_EQ(got->producer_pseudonym.substr(0, 4), "veh-");
}

TEST(Platform, DistinctVehiclesHaveDistinctPseudonyms) {
  sim::Simulator sim(42);
  PlatformConfig a_cfg, b_cfg;
  a_cfg.vehicle_name = "cav-a";
  a_cfg.vehicle_secret = 10;
  b_cfg.vehicle_name = "cav-b";
  b_cfg.vehicle_secret = 20;
  OpenVdap a(sim, a_cfg), b(sim, b_cfg);
  EXPECT_NE(a.collaboration().pseudonym(), b.collaboration().pseudonym());
}

}  // namespace
}  // namespace vdap::core
