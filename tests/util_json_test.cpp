#include "util/json.hpp"

#include <gtest/gtest.h>

namespace vdap::json {
namespace {

TEST(JsonValue, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.dump(), "null");
}

TEST(JsonValue, Scalars) {
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_EQ(Value(2.5).dump(), "2.5");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(JsonValue, IntDoubleInterop) {
  Value i(3);
  Value d(3.5);
  EXPECT_DOUBLE_EQ(i.as_double(), 3.0);
  EXPECT_EQ(d.as_int(), 3);
  EXPECT_TRUE(i.is_number());
  EXPECT_TRUE(d.is_number());
}

TEST(JsonValue, ObjectInsertAndLookup) {
  Value v;
  v["a"] = 1;
  v["b"]["nested"] = "x";
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").at("nested").as_string(), "x");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("zz"));
  EXPECT_EQ(v.find("zz"), nullptr);
  EXPECT_THROW(v.at("zz"), std::out_of_range);
}

TEST(JsonValue, TypedGettersWithDefaults) {
  Value v;
  v["i"] = 5;
  v["d"] = 1.5;
  v["s"] = "str";
  v["b"] = true;
  EXPECT_EQ(v.get_int("i"), 5);
  EXPECT_EQ(v.get_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(v.get_double("d"), 1.5);
  EXPECT_DOUBLE_EQ(v.get_double("i"), 5.0);  // int promotes
  EXPECT_EQ(v.get_string("s"), "str");
  EXPECT_EQ(v.get_string("i", "def"), "def");  // wrong type -> default
  EXPECT_TRUE(v.get_bool("b"));
}

TEST(JsonValue, ArrayAccess) {
  Value v(Array{1, "two", 3.0});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(std::size_t{0}).as_int(), 1);
  EXPECT_EQ(v.at(std::size_t{1}).as_string(), "two");
  EXPECT_THROW(v.at(std::size_t{3}), std::out_of_range);
}

TEST(JsonValue, WrongTypeAccessThrows) {
  Value v(42);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(Value("x").as_int(), std::runtime_error);
}

TEST(JsonParse, Document) {
  Value v = parse(R"({"name":"vdap","version":1,"pi":3.25,
                      "tags":["edge","cav"],"nested":{"ok":true},
                      "none":null})");
  EXPECT_EQ(v.at("name").as_string(), "vdap");
  EXPECT_EQ(v.at("version").as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at("pi").as_double(), 3.25);
  EXPECT_EQ(v.at("tags").size(), 2u);
  EXPECT_TRUE(v.at("nested").at("ok").as_bool());
  EXPECT_TRUE(v.at("none").is_null());
}

TEST(JsonParse, RoundTripCompact) {
  const char* docs[] = {
      "null",
      "true",
      "-12",
      "1.5",
      "\"a\\nb\"",
      "[]",
      "{}",
      "[1,2,[3,{\"k\":\"v\"}]]",
      "{\"a\":{\"b\":[false,null,0.5]}}",
  };
  for (const char* d : docs) {
    Value v = parse(d);
    EXPECT_EQ(v, parse(v.dump())) << d;
  }
}

TEST(JsonParse, PrettyRoundTrips) {
  Value v = parse(R"({"a":[1,2],"b":{"c":"d"}})");
  EXPECT_EQ(parse(v.pretty()), v);
  EXPECT_NE(v.pretty().find('\n'), std::string::npos);
}

TEST(JsonParse, StringEscapes) {
  Value v = parse(R"("line\n\ttab \"quote\" back\\slash Aé")");
  EXPECT_EQ(v.as_string(), "line\n\ttab \"quote\" back\\slash A\xC3\xA9");
  // Escaped control characters round-trip.
  Value s(std::string("\x01 control"));
  EXPECT_EQ(parse(s.dump()), s);
}

TEST(JsonParse, Numbers) {
  EXPECT_EQ(parse("0").as_int(), 0);
  EXPECT_EQ(parse("-0").as_int(), 0);
  EXPECT_EQ(parse("9223372036854775807").as_int(), INT64_MAX);
  EXPECT_TRUE(parse("1e3").is_double());
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-2.5E-1").as_double(), -0.25);
}

TEST(JsonParse, ErrorsThrow) {
  const char* bad[] = {
      "",      "{",          "[1,",     "{\"a\":}", "tru",
      "nul",   "\"unterm",   "1 2",     "{'a':1}",  "[1,]",
      "{\"a\":1,}",
  };
  for (const char* d : bad) {
    EXPECT_THROW(parse(d), std::runtime_error) << d;
    EXPECT_FALSE(try_parse(d).has_value()) << d;
  }
}

TEST(JsonParse, TryParseOk) {
  auto v = try_parse("[1,2,3]");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 3u);
}

TEST(JsonParse, WhitespaceTolerant) {
  Value v = parse("  \n\t { \"a\" : [ 1 , 2 ] } \r\n ");
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(JsonParse, DeterministicObjectOrder) {
  // Keys serialize sorted, so semantically equal docs dump identically.
  Value a = parse(R"({"z":1,"a":2})");
  Value b = parse(R"({"a":2,"z":1})");
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(JsonParse, DoubleRoundTripPrecision) {
  double values[] = {0.1, 1.0 / 3.0, 1e-9, 123456789.123456789, -2.5e300};
  for (double d : values) {
    Value v(d);
    EXPECT_DOUBLE_EQ(parse(v.dump()).as_double(), d) << d;
  }
}

}  // namespace
}  // namespace vdap::json
