#include "ddi/cloudsync.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <utility>

#include "net/impair.hpp"

namespace vdap::ddi {
namespace {

namespace fs = std::filesystem;

class CloudSyncTest : public ::testing::Test {
 protected:
  CloudSyncTest()
      : dir_(fs::temp_directory_path() /
             ("vdap-cloudsync-" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()))),
        topo_(sim_),
        ddi_(sim_, make_opts()) {}
  ~CloudSyncTest() override { fs::remove_all(dir_); }

  DdiOptions make_opts() {
    fs::remove_all(dir_);
    DdiOptions o;
    o.disk.dir = dir_.string();
    o.staging_ttl = sim::seconds(1);
    o.flush_period = sim::seconds(1);
    return o;
  }

  void ingest(int n, sim::SimTime start = 0) {
    for (int i = 0; i < n; ++i) {
      DataRecord r;
      r.stream = "vehicle/obd";
      r.timestamp = start + sim::msec(100) * i;
      r.payload["i"] = i;
      ddi_.upload(std::move(r));
    }
    ddi_.flush_staged(/*force_all=*/true);
  }

  fs::path dir_;
  sim::Simulator sim_;
  net::Topology topo_;
  Ddi ddi_;
};

TEST_F(CloudSyncTest, SyncsPersistedRecordsToCloud) {
  CloudSync sync(sim_, ddi_, topo_);
  std::vector<DataRecord> cloud;
  sync.set_sink([&](const DataRecord& r) { cloud.push_back(r); });
  ingest(100);
  EXPECT_EQ(sync.backlog(), 100u);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(cloud.size(), 100u);
  EXPECT_EQ(sync.records_synced(), 100u);
  EXPECT_GT(sync.bytes_synced(), 0u);
  EXPECT_EQ(sync.backlog(), 0u);
  // Records arrive intact.
  EXPECT_EQ(cloud.front().payload.get_int("i"), 0);
  EXPECT_EQ(cloud.back().payload.get_int("i"), 99);
}

TEST_F(CloudSyncTest, SecondSyncShipsNothingNew) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(50);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.sync_once(), 0u);  // cursor advanced
}

TEST_F(CloudSyncTest, IncrementalSyncPicksUpNewData) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(50);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  ingest(30, sim::seconds(100));
  EXPECT_EQ(sync.backlog(), 30u);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.records_synced(), 80u);
}

TEST_F(CloudSyncTest, BadNetworkDefersSync) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(50);
  // 70 MPH-grade cellular: below the sync gate.
  topo_.apply_cellular_condition(0.2, 0.5);
  EXPECT_EQ(sync.sync_once(), 0u);
  EXPECT_EQ(sync.skipped_bad_network(), 1u);
  EXPECT_EQ(sync.backlog(), 50u);
  // Parked again: sync proceeds.
  topo_.apply_cellular_condition(1.0, 0.0);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.records_synced(), 50u);
}

TEST_F(CloudSyncTest, UnavailableTierDefersSync) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(10);
  topo_.set_available(net::Tier::kCloud, false);
  EXPECT_EQ(sync.sync_once(), 0u);
  EXPECT_GE(sync.skipped_bad_network(), 1u);
}

TEST_F(CloudSyncTest, BatchLimitSplitsLargeBacklogs) {
  CloudSyncOptions opts;
  opts.batch_records = 40;
  CloudSync sync(sim_, ddi_, topo_, opts);
  ingest(100);
  sync.sync_once();
  // A second call while the batch is in flight is a no-op (no duplicates).
  EXPECT_EQ(sync.sync_once(), 0u);
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.records_synced(), 40u);
  for (int i = 0; i < 2; ++i) {
    sync.sync_once();
    sim_.run_until(sim_.now() + sim::minutes(1));
  }
  EXPECT_EQ(sync.records_synced(), 100u);  // drained over wake-ups
}

TEST_F(CloudSyncTest, PeriodicModeDrainsBacklog) {
  CloudSyncOptions opts;
  opts.check_period = sim::seconds(10);
  opts.batch_records = 25;
  CloudSync sync(sim_, ddi_, topo_, opts);
  ingest(100);
  sync.start();
  sim_.run_until(sim_.now() + sim::minutes(2));
  EXPECT_EQ(sync.records_synced(), 100u);
  sync.stop();
}

TEST_F(CloudSyncTest, MultipleStreamsTrackedIndependently) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(20);
  DataRecord wx;
  wx.stream = "env/weather";
  wx.timestamp = sim::seconds(1);
  wx.payload["condition"] = "rain";
  ddi_.upload(wx);
  ddi_.flush_staged(true);
  std::map<std::string, int> per_stream;
  sync.set_sink([&](const DataRecord& r) { per_stream[r.stream]++; });
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(per_stream["vehicle/obd"], 20);
  EXPECT_EQ(per_stream["env/weather"], 1);
}

TEST_F(CloudSyncTest, CommunityDataServerReceivesQueryableData) {
  // §IV-A end to end: "All data collected by the DDI ... eventually
  // migrated to a cloud based data server. Note that these data will be
  // open to the community." The sink is an actual DiskDb playing the
  // community server; researchers can range-query what vehicles uploaded.
  fs::path cloud_dir = dir_.string() + "-cloud";
  fs::remove_all(cloud_dir);
  {
    DiskDb community({cloud_dir.string(), 4 << 20});
    CloudSync sync(sim_, ddi_, topo_);
    sync.set_sink([&](const DataRecord& r) { community.put(r); });
    ingest(80);
    sync.sync_once();
    sim_.run_until(sim_.now() + sim::minutes(1));
    community.flush();
    auto out = community.query("vehicle/obd", sim::seconds(2),
                               sim::seconds(4));
    EXPECT_EQ(out.size(), 21u);  // 100 ms cadence, inclusive bounds
  }
  // The community server survives restarts like any DiskDb.
  DiskDb reopened({cloud_dir.string(), 4 << 20});
  EXPECT_EQ(reopened.record_count(), 80u);
  fs::remove_all(cloud_dir);
}

// --- gate exactness at min_bandwidth_factor --------------------------------

TEST_F(CloudSyncTest, GateOpensAtExactlyTheThresholdFactor) {
  CloudSync sync(sim_, ddi_, topo_);  // min_bandwidth_factor = 0.5
  ingest(10);
  // Exactly at the threshold: `factor < min` is false, so the gate is open.
  topo_.apply_cellular_impairment(0.5, 0.0);
  EXPECT_GT(sync.sync_once(), 0u);
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.records_synced(), 10u);

  // A hair below: the gate closes.
  ingest(10, sim::minutes(5));
  topo_.apply_cellular_impairment(0.499, 0.0);
  EXPECT_EQ(sync.sync_once(), 0u);
  EXPECT_GE(sync.skipped_bad_network(), 1u);
  EXPECT_EQ(sync.backlog(), 10u);
}

TEST_F(CloudSyncTest, GateUsesScenarioTimesImpairmentComposition) {
  CloudSync sync(sim_, ddi_, topo_);
  net::ImpairmentController imp(topo_);
  ingest(10);
  topo_.apply_cellular_condition(0.8, 0.0);         // drive regime
  std::uint64_t tok = imp.cellular_collapse(0.625, 0.0);  // 0.8*0.625 = 0.5
  EXPECT_GT(sync.sync_once(), 0u);  // composed factor right at the gate
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.records_synced(), 10u);
  imp.restore(tok);

  ingest(10, sim::minutes(5));
  tok = imp.cellular_collapse(0.6, 0.0);  // 0.8*0.6 = 0.48 < gate
  EXPECT_EQ(sync.sync_once(), 0u);
  EXPECT_GE(sync.skipped_bad_network(), 1u);
  imp.restore(tok);
  EXPECT_GT(sync.sync_once(), 0u);  // restored: gate open again
}

// --- failed uploads retry with exponential backoff, losing nothing ---------

TEST_F(CloudSyncTest, LossyLinkRetriesWithBackoffUntilDelivered) {
  CloudSyncOptions opts;
  opts.check_period = sim::seconds(30);
  opts.batch_records = 5;  // several batches => several chances to fail
  opts.retry_backoff = sim::seconds(2);
  CloudSync sync(sim_, ddi_, topo_, opts);
  std::map<std::pair<std::string, long long>, int> cloud;
  sync.set_sink([&](const DataRecord& r) {
    ++cloud[{r.stream, static_cast<long long>(r.timestamp)}];
  });
  ingest(30);
  // Hostile but above-gate conditions: the gate stays open, the link drops
  // most packets, so uploads fail and the backoff path engages.
  topo_.apply_cellular_condition(0.6, 0.95);
  sync.start();
  sim_.run_until(sim::minutes(20));
  topo_.apply_cellular_condition(1.0, 0.0);  // conditions recover
  sim_.run_until(sim::minutes(40));
  sync.stop();

  EXPECT_GT(sync.failed_uploads(), 0u);
  EXPECT_GT(sync.retries(), 0u);
  // Conservation despite the carnage: everything arrived exactly once.
  EXPECT_EQ(sync.records_synced(), 30u);
  EXPECT_EQ(sync.backlog(), 0u);
  EXPECT_EQ(cloud.size(), 30u);
  for (const auto& [key, copies] : cloud) {
    EXPECT_EQ(copies, 1) << key.first << "@" << key.second;
  }
}

TEST_F(CloudSyncTest, BackoffGivesUpToPeriodicWakeupWhenGateCloses) {
  CloudSyncOptions opts;
  opts.retry_backoff = sim::seconds(2);
  CloudSync sync(sim_, ddi_, topo_, opts);
  ingest(10);
  // Tier vanishes mid-flight: the upload fails and a retry is scheduled.
  sync.sync_once();
  sim_.after(sim::msec(1), [&]() {
    topo_.set_available(net::Tier::kCloud, false);
  });
  sim_.run_until(sim::minutes(5));
  EXPECT_GT(sync.failed_uploads(), 0u);
  EXPECT_EQ(sync.records_synced(), 0u);
  // The retry fired against a closed gate and stood down; nothing was lost.
  EXPECT_EQ(sync.backlog(), 10u);
  // Tier returns: the next explicit sync drains the backlog.
  topo_.set_available(net::Tier::kCloud, true);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.records_synced(), 10u);
  EXPECT_EQ(sync.backlog(), 0u);
}

}  // namespace
}  // namespace vdap::ddi
