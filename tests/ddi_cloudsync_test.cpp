#include "ddi/cloudsync.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace vdap::ddi {
namespace {

namespace fs = std::filesystem;

class CloudSyncTest : public ::testing::Test {
 protected:
  CloudSyncTest()
      : dir_(fs::temp_directory_path() /
             ("vdap-cloudsync-" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()))),
        topo_(sim_),
        ddi_(sim_, make_opts()) {}
  ~CloudSyncTest() override { fs::remove_all(dir_); }

  DdiOptions make_opts() {
    fs::remove_all(dir_);
    DdiOptions o;
    o.disk.dir = dir_.string();
    o.staging_ttl = sim::seconds(1);
    o.flush_period = sim::seconds(1);
    return o;
  }

  void ingest(int n, sim::SimTime start = 0) {
    for (int i = 0; i < n; ++i) {
      DataRecord r;
      r.stream = "vehicle/obd";
      r.timestamp = start + sim::msec(100) * i;
      r.payload["i"] = i;
      ddi_.upload(std::move(r));
    }
    ddi_.flush_staged(/*force_all=*/true);
  }

  fs::path dir_;
  sim::Simulator sim_;
  net::Topology topo_;
  Ddi ddi_;
};

TEST_F(CloudSyncTest, SyncsPersistedRecordsToCloud) {
  CloudSync sync(sim_, ddi_, topo_);
  std::vector<DataRecord> cloud;
  sync.set_sink([&](const DataRecord& r) { cloud.push_back(r); });
  ingest(100);
  EXPECT_EQ(sync.backlog(), 100u);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(cloud.size(), 100u);
  EXPECT_EQ(sync.records_synced(), 100u);
  EXPECT_GT(sync.bytes_synced(), 0u);
  EXPECT_EQ(sync.backlog(), 0u);
  // Records arrive intact.
  EXPECT_EQ(cloud.front().payload.get_int("i"), 0);
  EXPECT_EQ(cloud.back().payload.get_int("i"), 99);
}

TEST_F(CloudSyncTest, SecondSyncShipsNothingNew) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(50);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.sync_once(), 0u);  // cursor advanced
}

TEST_F(CloudSyncTest, IncrementalSyncPicksUpNewData) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(50);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  ingest(30, sim::seconds(100));
  EXPECT_EQ(sync.backlog(), 30u);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.records_synced(), 80u);
}

TEST_F(CloudSyncTest, BadNetworkDefersSync) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(50);
  // 70 MPH-grade cellular: below the sync gate.
  topo_.apply_cellular_condition(0.2, 0.5);
  EXPECT_EQ(sync.sync_once(), 0u);
  EXPECT_EQ(sync.skipped_bad_network(), 1u);
  EXPECT_EQ(sync.backlog(), 50u);
  // Parked again: sync proceeds.
  topo_.apply_cellular_condition(1.0, 0.0);
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.records_synced(), 50u);
}

TEST_F(CloudSyncTest, UnavailableTierDefersSync) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(10);
  topo_.set_available(net::Tier::kCloud, false);
  EXPECT_EQ(sync.sync_once(), 0u);
  EXPECT_GE(sync.skipped_bad_network(), 1u);
}

TEST_F(CloudSyncTest, BatchLimitSplitsLargeBacklogs) {
  CloudSyncOptions opts;
  opts.batch_records = 40;
  CloudSync sync(sim_, ddi_, topo_, opts);
  ingest(100);
  sync.sync_once();
  // A second call while the batch is in flight is a no-op (no duplicates).
  EXPECT_EQ(sync.sync_once(), 0u);
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(sync.records_synced(), 40u);
  for (int i = 0; i < 2; ++i) {
    sync.sync_once();
    sim_.run_until(sim_.now() + sim::minutes(1));
  }
  EXPECT_EQ(sync.records_synced(), 100u);  // drained over wake-ups
}

TEST_F(CloudSyncTest, PeriodicModeDrainsBacklog) {
  CloudSyncOptions opts;
  opts.check_period = sim::seconds(10);
  opts.batch_records = 25;
  CloudSync sync(sim_, ddi_, topo_, opts);
  ingest(100);
  sync.start();
  sim_.run_until(sim_.now() + sim::minutes(2));
  EXPECT_EQ(sync.records_synced(), 100u);
  sync.stop();
}

TEST_F(CloudSyncTest, MultipleStreamsTrackedIndependently) {
  CloudSync sync(sim_, ddi_, topo_);
  ingest(20);
  DataRecord wx;
  wx.stream = "env/weather";
  wx.timestamp = sim::seconds(1);
  wx.payload["condition"] = "rain";
  ddi_.upload(wx);
  ddi_.flush_staged(true);
  std::map<std::string, int> per_stream;
  sync.set_sink([&](const DataRecord& r) { per_stream[r.stream]++; });
  sync.sync_once();
  sim_.run_until(sim_.now() + sim::minutes(1));
  EXPECT_EQ(per_stream["vehicle/obd"], 20);
  EXPECT_EQ(per_stream["env/weather"], 1);
}

TEST_F(CloudSyncTest, CommunityDataServerReceivesQueryableData) {
  // §IV-A end to end: "All data collected by the DDI ... eventually
  // migrated to a cloud based data server. Note that these data will be
  // open to the community." The sink is an actual DiskDb playing the
  // community server; researchers can range-query what vehicles uploaded.
  fs::path cloud_dir = dir_.string() + "-cloud";
  fs::remove_all(cloud_dir);
  {
    DiskDb community({cloud_dir.string(), 4 << 20});
    CloudSync sync(sim_, ddi_, topo_);
    sync.set_sink([&](const DataRecord& r) { community.put(r); });
    ingest(80);
    sync.sync_once();
    sim_.run_until(sim_.now() + sim::minutes(1));
    community.flush();
    auto out = community.query("vehicle/obd", sim::seconds(2),
                               sim::seconds(4));
    EXPECT_EQ(out.size(), 21u);  // 100 ms cadence, inclusive bounds
  }
  // The community server survives restarts like any DiskDb.
  DiskDb reopened({cloud_dir.string(), 4 << 20});
  EXPECT_EQ(reopened.record_count(), 80u);
  fs::remove_all(cloud_dir);
}

}  // namespace
}  // namespace vdap::ddi
