#include "net/coverage.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "ddi/cloudsync.hpp"
#include "net/impair.hpp"

namespace vdap::net {
namespace {

TEST(CoverageMap, SingleSite) {
  CoverageMap map({{1000.0, 300.0}});
  EXPECT_FALSE(map.covered(0.0));
  EXPECT_FALSE(map.covered(699.9));
  EXPECT_TRUE(map.covered(700.0));
  EXPECT_TRUE(map.covered(1000.0));
  EXPECT_TRUE(map.covered(1299.9));
  EXPECT_FALSE(map.covered(1300.0));
}

TEST(CoverageMap, OverlappingSitesMerge) {
  CoverageMap map({{1000.0, 300.0}, {1400.0, 300.0}});
  // Ranges [700,1300) and [1100,1700) merge into [700,1700).
  for (double p : {700.0, 1200.0, 1500.0, 1699.0}) {
    EXPECT_TRUE(map.covered(p)) << p;
  }
  EXPECT_FALSE(map.covered(1700.0));
  auto b = map.next_boundary(800.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(*b, 1700.0);  // one merged interval, one exit boundary
}

TEST(CoverageMap, NextBoundaryWalksGaps) {
  CoverageMap map({{500.0, 100.0}, {2000.0, 100.0}});
  EXPECT_DOUBLE_EQ(*map.next_boundary(0.0), 400.0);    // enter site 1
  EXPECT_DOUBLE_EQ(*map.next_boundary(450.0), 600.0);  // leave site 1
  EXPECT_DOUBLE_EQ(*map.next_boundary(700.0), 1900.0); // enter site 2
  EXPECT_DOUBLE_EQ(*map.next_boundary(1950.0), 2100.0);
  EXPECT_FALSE(map.next_boundary(2100.0).has_value());
}

TEST(CoverageMap, CoverageFraction) {
  CoverageMap map({{500.0, 100.0}});  // covers [400, 600) of [0, 1000)
  EXPECT_NEAR(map.coverage_fraction(1000.0), 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(CoverageMap({}).coverage_fraction(1000.0), 0.0);
}

TEST(CoverageMap, CorridorSpacing) {
  CoverageMap city = CoverageMap::corridor(5000.0, 500.0, 300.0);
  // RSUs every 500 m with 300 m range: contiguous coverage.
  EXPECT_NEAR(city.coverage_fraction(5000.0), 1.0, 0.05);
  CoverageMap rural = CoverageMap::corridor(5000.0, 2000.0, 300.0);
  EXPECT_LT(rural.coverage_fraction(5000.0), 0.4);
}

TEST(RouteScenario, SegmentsSplitAtCoverageBoundaries) {
  // 3 km at 35 MPH through one RSU at 1.5 km with 500 m range: the drive
  // should produce uncovered / covered / uncovered segments.
  CoverageMap map({{1500.0, 500.0}});
  auto segments = core::DriveScenario::from_route(
      {{3000.0, 35.0, false}}, map);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_FALSE(segments[0].rsu_coverage);
  EXPECT_TRUE(segments[1].rsu_coverage);
  EXPECT_FALSE(segments[2].rsu_coverage);
  // Durations follow the geometry: 1000 m / 1000 m / 1000 m at 15.65 m/s.
  for (const auto& s : segments) {
    EXPECT_NEAR(s.duration_s, 1000.0 / net::mph_to_mps(35.0), 0.5);
    EXPECT_DOUBLE_EQ(s.speed_mph, 35.0);
  }
}

TEST(RouteScenario, SpeedChangesPreserved) {
  CoverageMap map = CoverageMap::corridor(4000.0, 1000.0, 600.0);
  auto segments = core::DriveScenario::from_route(
      {{2000.0, 25.0, true}, {2000.0, 70.0, false}}, map);
  ASSERT_GE(segments.size(), 2u);
  EXPECT_DOUBLE_EQ(segments.front().speed_mph, 25.0);
  EXPECT_TRUE(segments.front().neighbor_present);
  EXPECT_DOUBLE_EQ(segments.back().speed_mph, 70.0);
  EXPECT_FALSE(segments.back().neighbor_present);
  double total = 0.0;
  for (const auto& s : segments) total += s.duration_s;
  double expected =
      2000.0 / net::mph_to_mps(25.0) + 2000.0 / net::mph_to_mps(70.0);
  EXPECT_NEAR(total, expected, 1.0);
}

TEST(RouteScenario, RunsOnTheSimulatedPlatform) {
  sim::Simulator sim(3);
  Topology topo(sim);
  CoverageMap map = CoverageMap::corridor(3000.0, 1500.0, 400.0);
  auto segments =
      core::DriveScenario::from_route({{3000.0, 35.0, false}}, map);
  core::DriveScenario scenario(sim, topo, segments);
  scenario.start();
  // Sample RSU availability over the drive: it must flip at least twice.
  int flips = 0;
  bool last = topo.available(Tier::kRsuEdge);
  sim.every(sim::seconds(1), [&] {
    bool now = topo.available(Tier::kRsuEdge);
    if (now != last) ++flips;
    last = now;
  });
  sim.run_until(sim::from_seconds(scenario.total_duration_s()));
  EXPECT_GE(flips, 2);
}

TEST(RouteScenario, RejectsEmptyProfile) {
  CoverageMap map({});
  EXPECT_THROW(core::DriveScenario::from_route({}, map),
               std::invalid_argument);
}

// --- Fig. 2 regimes against the CloudSync gate threshold --------------------
//
// CloudSyncOptions::min_bandwidth_factor defaults to 0.5; the Doppler knee
// 1/(1+(v/v0)^k) crosses exactly 0.5 at v = doppler_v0_mps. These pin the
// regimes the sync gate separates.

TEST(Fig2Gate, DopplerKneeCrossesTheSyncThresholdAtV0) {
  core::CellularConditionModel m;
  ddi::CloudSyncOptions opts;
  double v0_mph = m.lte.doppler_v0_mps / 0.44704;
  EXPECT_NEAR(m.bandwidth_factor(v0_mph), opts.min_bandwidth_factor, 1e-9);
  EXPECT_GT(m.bandwidth_factor(v0_mph - 1.0), opts.min_bandwidth_factor);
  EXPECT_LT(m.bandwidth_factor(v0_mph + 1.0), opts.min_bandwidth_factor);
  // The two canonical Fig. 2 operating points sit on opposite sides.
  EXPECT_GT(m.bandwidth_factor(35.0), opts.min_bandwidth_factor);
  EXPECT_LT(m.bandwidth_factor(70.0), opts.min_bandwidth_factor);
}

TEST(Fig2Gate, InjectedCollapseComposesWithTheDriveRegime) {
  sim::Simulator sim;
  Topology topo(sim);
  core::CellularConditionModel m;
  double f35 = m.bandwidth_factor(35.0);  // city regime: gate open
  topo.apply_cellular_condition(f35, m.loss_rate(35.0));
  EXPECT_NEAR(topo.cellular_bandwidth_factor(), f35, 1e-12);

  // A fault-injected cellular collapse multiplies on top of the scenario
  // and pushes the composed factor through the 0.5 gate.
  ImpairmentController imp(topo);
  std::uint64_t tok = imp.cellular_collapse(0.45 / f35, 0.0);
  EXPECT_LT(topo.cellular_bandwidth_factor(), 0.5);
  imp.restore(tok);
  EXPECT_NEAR(topo.cellular_bandwidth_factor(), f35, 1e-12);
}

}  // namespace
}  // namespace vdap::net
