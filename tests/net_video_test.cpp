#include "net/video.hpp"

#include <gtest/gtest.h>

namespace vdap::net {
namespace {

TEST(VideoStreamSpec, PaperStreams) {
  auto s720 = VideoStreamSpec::hd720();
  auto s1080 = VideoStreamSpec::hd1080();
  EXPECT_DOUBLE_EQ(s720.bitrate_mbps, 3.8);
  EXPECT_DOUBLE_EQ(s1080.bitrate_mbps, 5.8);
  EXPECT_EQ(s720.fps, 30);
  EXPECT_EQ(s720.frames_per_gop(), 60);  // one key frame per two seconds
}

TEST(VideoStreamSpec, FrameSizesConserveBitrate) {
  auto s = VideoStreamSpec::hd1080();
  std::uint64_t gop_bytes =
      s.key_frame_bytes() +
      static_cast<std::uint64_t>(s.frames_per_gop() - 1) * s.p_frame_bytes();
  double gop_expected = s.bitrate_mbps * 1e6 / 8.0 * s.gop_seconds;
  EXPECT_NEAR(static_cast<double>(gop_bytes), gop_expected,
              gop_expected * 0.01);
  EXPECT_NEAR(static_cast<double>(s.key_frame_bytes()),
              s.keyframe_size_ratio * static_cast<double>(s.p_frame_bytes()),
              2.0);
}

TEST(RtpUpload, CleanChannelDeliversAlmostEverything) {
  LteMobilityParams lte;
  auto stats = run_fig2_cell(0.0, VideoStreamSpec::hd720(), 99, 120.0, lte);
  EXPECT_GT(stats.packets_sent, 10'000u);
  EXPECT_LT(stats.packet_loss_rate(), 0.02);
  EXPECT_EQ(stats.frames_total, 3600u);
  EXPECT_EQ(stats.gops_total, 60u);
}

TEST(RtpUpload, FrameLossAtLeastGopAmplified) {
  // Under the paper's counting policy frame loss is always >= the fraction
  // of lost GOPs, and a lost GOP loses all its frames.
  auto stats = run_fig2_cell(35.0, VideoStreamSpec::hd1080(), 3, 120.0);
  EXPECT_EQ(stats.frames_lost % 1, 0u);
  double gop_rate = static_cast<double>(stats.gops_lost) / stats.gops_total;
  EXPECT_NEAR(stats.frame_loss_rate(), gop_rate, 0.02);
}

TEST(RtpUpload, FrameLossExceedsPacketLoss) {
  // The paper: "the frame loss rate is bigger than the packet loss rate for
  // all the cases."
  for (double mph : {0.0, 35.0, 70.0}) {
    for (auto spec : {VideoStreamSpec::hd720(), VideoStreamSpec::hd1080()}) {
      auto stats = run_fig2_cell(mph, spec, 11, 120.0);
      EXPECT_GE(stats.frame_loss_rate(), stats.packet_loss_rate())
          << mph << " " << spec.name;
    }
  }
}

TEST(RtpUpload, LossIncreasesWithSpeed) {
  // "the data loss rate increases exponentially with the increase of
  // moving speed".
  for (auto spec : {VideoStreamSpec::hd720(), VideoStreamSpec::hd1080()}) {
    double prev_packet = -1.0;
    double prev_frame = -1.0;
    for (double mph : {0.0, 35.0, 70.0}) {
      auto stats = run_fig2_cell(mph, spec, 17, 150.0);
      EXPECT_GT(stats.packet_loss_rate(), prev_packet) << mph << spec.name;
      EXPECT_GT(stats.frame_loss_rate(), prev_frame) << mph << spec.name;
      prev_packet = stats.packet_loss_rate();
      prev_frame = stats.frame_loss_rate();
    }
  }
}

TEST(RtpUpload, HigherResolutionLosesMore) {
  for (double mph : {35.0, 70.0}) {
    auto lo = run_fig2_cell(mph, VideoStreamSpec::hd720(), 23, 150.0);
    auto hi = run_fig2_cell(mph, VideoStreamSpec::hd1080(), 23, 150.0);
    EXPECT_GT(hi.packet_loss_rate(), lo.packet_loss_rate()) << mph;
    EXPECT_GE(hi.frame_loss_rate(), lo.frame_loss_rate()) << mph;
  }
}

TEST(RtpUpload, SeventyMphIsCatastrophicFor1080p) {
  // Paper: "more than 80% data loss rate" (frames) at 70 MPH / 1080P.
  auto stats = run_fig2_cell(70.0, VideoStreamSpec::hd1080(), 29, 300.0);
  EXPECT_GT(stats.frame_loss_rate(), 0.80);
  EXPECT_GT(stats.packet_loss_rate(), 0.40);
}

TEST(RtpUpload, DeterministicForSeed) {
  auto a = run_fig2_cell(35.0, VideoStreamSpec::hd720(), 5, 60.0);
  auto b = run_fig2_cell(35.0, VideoStreamSpec::hd720(), 5, 60.0);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
}

TEST(RtpUpload, ByteConservation) {
  auto stats = run_fig2_cell(35.0, VideoStreamSpec::hd720(), 5, 60.0);
  EXPECT_LE(stats.bytes_delivered, stats.bytes_offered);
  EXPECT_EQ(stats.packets_sent > stats.packets_lost, true);
  // Delivered + lost accounts for every packet (lost includes tail drops,
  // air losses, and end-of-session stragglers).
  EXPECT_GT(stats.bytes_delivered, 0u);
}

TEST(RtpUpload, RejectsNonPositiveDuration) {
  LteMobilityParams p;
  CellularChannel ch(p, 0.0, 10.0, 1);
  EXPECT_THROW(
      simulate_rtp_upload(ch, VideoStreamSpec::hd720(), 0.0, 1),
      std::invalid_argument);
}

// Parameterized Fig. 2 reproduction: every cell must land in a band around
// the paper's bar (generous at the low-loss end where absolute values are
// tiny, tighter at the catastrophic end).
struct Fig2Band {
  double mph;
  bool hd1080;
  double paper_packet;
  double paper_frame;
  double packet_lo, packet_hi;
  double frame_lo, frame_hi;
};

class Fig2Bands : public ::testing::TestWithParam<Fig2Band> {};

TEST_P(Fig2Bands, WithinBand) {
  const auto& b = GetParam();
  auto spec =
      b.hd1080 ? VideoStreamSpec::hd1080() : VideoStreamSpec::hd720();
  // Average three seeds to damp run-to-run variance, as the bench does.
  double packet = 0.0, frame = 0.0;
  for (std::uint64_t seed : {101, 202, 303}) {
    auto stats = run_fig2_cell(b.mph, spec, seed, 300.0);
    packet += stats.packet_loss_rate() / 3.0;
    frame += stats.frame_loss_rate() / 3.0;
  }
  EXPECT_GE(packet, b.packet_lo);
  EXPECT_LE(packet, b.packet_hi);
  EXPECT_GE(frame, b.frame_lo);
  EXPECT_LE(frame, b.frame_hi);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCells, Fig2Bands,
    ::testing::Values(
        // mph, 1080?, paper(P,F), packet band, frame band
        Fig2Band{0, false, 0.002, 0.012, 0.0, 0.02, 0.0, 0.08},
        Fig2Band{0, true, 0.006, 0.027, 0.0, 0.03, 0.0, 0.10},
        Fig2Band{35, false, 0.021, 0.390, 0.005, 0.08, 0.15, 0.60},
        Fig2Band{35, true, 0.070, 0.763, 0.02, 0.15, 0.35, 0.90},
        Fig2Band{70, false, 0.535, 0.911, 0.35, 0.70, 0.80, 1.0},
        Fig2Band{70, true, 0.617, 0.980, 0.45, 0.80, 0.90, 1.0}));

}  // namespace
}  // namespace vdap::net
