// Trace suite (`ctest -L trace`): runs a full chaos plan under a telemetry
// Session and checks the exported artifacts end to end —
//   * the Chrome trace JSON is well-formed (parsed back with util::json)
//     and structurally sound (metadata records, balanced async pairs);
//   * two runs of the same (seed, plan) export BYTE-identical traces and
//     metric snapshots — the determinism contract from DESIGN.md §6c;
//   * the capture actually saw every instrumented layer.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "chaos_harness.hpp"
#include "util/json.hpp"

namespace vdap {
namespace {

using chaos::ChaosOutcome;
using chaos::run_chaos;

sim::FaultPlan plan_by_name(const std::string& name) {
  for (const sim::FaultPlan& p : sim::plans::all()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown plan " << name;
  return {};
}

TEST(TelemetryTrace, ChaosRunExportsWellFormedChromeTrace) {
  ChaosOutcome out = run_chaos(plan_by_name("rolling-chaos"), 42, "trace-wf");
  ASSERT_FALSE(out.trace_json.empty());
  EXPECT_EQ(out.open_spans, 0u);

  json::Value doc = json::parse(out.trace_json);  // throws if malformed
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const json::Array& evs = doc.at("traceEvents").as_array();
  ASSERT_GT(evs.size(), 100u) << "a chaos run should produce a rich trace";

  std::size_t metadata = 0;
  std::map<std::string, int> async_balance;  // span id -> b minus e
  std::map<std::string, std::size_t> phases;
  for (const json::Value& ev : evs) {
    const std::string& ph = ev.at("ph").as_string();
    ++phases[ph];
    EXPECT_EQ(ev.at("pid").as_int(), 1);
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(ev.at("name").as_string(), "thread_name");
      continue;
    }
    EXPECT_GE(ev.at("ts").as_int(), 0);
    if (ph == "X") EXPECT_GE(ev.at("dur").as_int(), 0);
    if (ph == "b") ++async_balance[ev.at("id").as_string()];
    if (ph == "e") --async_balance[ev.at("id").as_string()];
  }
  EXPECT_GT(metadata, 0u);
  for (const auto& [id, balance] : async_balance) {
    EXPECT_EQ(balance, 0) << "unbalanced async span id " << id;
  }
  // Every event shape the instrumentation uses shows up in a chaos run:
  // slices (tasks, transfers), spans (services, faults, sync batches),
  // instants (decisions, failovers) and counter samples (bandwidth).
  EXPECT_GT(phases["X"], 0u);
  EXPECT_GT(phases["b"], 0u);
  EXPECT_GT(phases["i"], 0u);
  EXPECT_GT(phases["C"], 0u);

  // Snapshots are valid JSONL: every line parses to an object with "t".
  ASSERT_FALSE(out.snapshots_jsonl.empty());
  std::size_t start = 0;
  std::size_t lines = 0;
  while (start < out.snapshots_jsonl.size()) {
    std::size_t nl = out.snapshots_jsonl.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    json::Value snap =
        json::parse(out.snapshots_jsonl.substr(start, nl - start));
    EXPECT_TRUE(snap.contains("t"));
    EXPECT_TRUE(snap.contains("counters"));
    start = nl + 1;
    ++lines;
  }
  EXPECT_GT(lines, 5u);
}

TEST(TelemetryTrace, SameSeedAndPlanExportByteIdenticalTraces) {
  ChaosOutcome a = run_chaos(plan_by_name("commute-cellular"), 9, "trace-a");
  ChaosOutcome b = run_chaos(plan_by_name("commute-cellular"), 9, "trace-b");
  ASSERT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json)
      << "telemetry perturbed the run or exported nondeterministically";
  EXPECT_EQ(a.snapshots_jsonl, b.snapshots_jsonl);
  EXPECT_EQ(a.open_spans, 0u);
  EXPECT_EQ(b.open_spans, 0u);
}

TEST(TelemetryTrace, DifferentSeedsExportDifferentTraces) {
  ChaosOutcome a = run_chaos(plan_by_name("commute-cellular"), 9, "seed-a");
  ChaosOutcome b = run_chaos(plan_by_name("commute-cellular"), 10, "seed-b");
  EXPECT_NE(a.trace_json, b.trace_json)
      << "trace is insensitive to the seed — is anything being recorded?";
}

TEST(TelemetryTrace, CaptureSpansEveryInstrumentedLayer) {
  ChaosOutcome out = run_chaos(plan_by_name("rolling-chaos"), 42, "layers");
  json::Value doc = json::parse(out.trace_json);

  // Track names land in thread_name metadata — collect them.
  std::map<std::string, bool> tracks;
  for (const json::Value& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() == "M") {
      tracks[ev.at("args").at("name").as_string()] = true;
    }
  }
  // (The DSF track is exercised by the infotainment pipeline / DSF tests,
  // not by the elastic-managed chaos services, so it is not expected here.)
  for (const char* expected :
       {"platform", "elastic", "offload", "faults", "cloudsync", "ddi",
        "net/topology"}) {
    EXPECT_TRUE(tracks.count(expected) > 0)
        << "no events recorded on track " << expected;
  }

  // And the metric snapshots cover every layer's counter families.
  std::size_t last_nl = out.snapshots_jsonl.find_last_of('\n');
  std::size_t prev_nl =
      out.snapshots_jsonl.find_last_of('\n', last_nl - 1);
  std::string last_line = out.snapshots_jsonl.substr(
      prev_nl == std::string::npos ? 0 : prev_nl + 1,
      last_nl - (prev_nl == std::string::npos ? 0 : prev_nl + 1));
  json::Value snap = json::parse(last_line);
  const json::Object& counters = snap.at("counters").as_object();
  auto has_prefix = [&](const std::string& prefix) {
    for (const auto& [name, v] : counters) {
      if (name.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  for (const char* prefix : {"platform.", "elastic.", "offload.", "ddi.",
                             "sync.", "net.", "faults.", "security."}) {
    EXPECT_TRUE(has_prefix(prefix))
        << "no counters with prefix " << prefix << " in the last snapshot";
  }
}

}  // namespace
}  // namespace vdap
