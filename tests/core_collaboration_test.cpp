#include "core/collaboration.hpp"

#include <gtest/gtest.h>

namespace vdap::core {
namespace {

class CollabTest : public ::testing::Test {
 protected:
  CollabTest()
      : a(sim, "cav-a", "veh-aaaa"),
        b(sim, "cav-b", "veh-bbbb"),
        c(sim, "cav-c", "veh-cccc") {}

  sim::Simulator sim{5};
  CollaborationCache a, b, c;
};

TEST_F(CollabTest, LocalHitIsImmediate) {
  a.put("plate:ABC123", json::Value("seen"));
  bool called = false;
  a.lookup("plate:ABC123", [&](std::optional<SharedResult> r) {
    called = true;
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->value.as_string(), "seen");
    EXPECT_EQ(r->producer_pseudonym, "veh-aaaa");
  });
  EXPECT_TRUE(called);  // synchronous for local hits
  EXPECT_EQ(a.local_hits(), 1u);
}

TEST_F(CollabTest, MissWithNoNeighbors) {
  bool called = false;
  a.lookup("plate:ZZZ", [&](std::optional<SharedResult> r) {
    called = true;
    EXPECT_FALSE(r.has_value());
  });
  EXPECT_TRUE(called);
  EXPECT_EQ(a.misses(), 1u);
}

TEST_F(CollabTest, RemoteHitOverDsrc) {
  CollaborationCache::connect(a, b);
  b.put("plate:ABC123", json::Value("match"), 5'000);
  std::optional<SharedResult> got;
  sim::SimTime answered = -1;
  a.lookup("plate:ABC123", [&](std::optional<SharedResult> r) {
    got = std::move(r);
    answered = sim.now();
  });
  sim.run_until(sim::seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->producer_pseudonym, "veh-bbbb");
  EXPECT_EQ(a.remote_hits(), 1u);
  EXPECT_EQ(b.requests_served(), 1u);
  // Paid real DSRC time: two messages (query + 5 kB response).
  EXPECT_GT(answered, sim::msec(4));
}

TEST_F(CollabTest, RemoteMissResolvesAfterAllPeersAnswer) {
  CollaborationCache::connect(a, b);
  CollaborationCache::connect(a, c);
  std::optional<SharedResult> got;
  bool called = false;
  a.lookup("plate:NOPE", [&](std::optional<SharedResult> r) {
    got = std::move(r);
    called = true;
  });
  sim.run_until(sim::seconds(2));
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(a.misses(), 1u);
}

TEST_F(CollabTest, FirstPositiveResponseWins) {
  CollaborationCache::connect(a, b);
  CollaborationCache::connect(a, c);
  b.put("k", json::Value("from-b"));
  c.put("k", json::Value("from-c"));
  int calls = 0;
  a.lookup("k", [&](std::optional<SharedResult> r) {
    ++calls;
    EXPECT_TRUE(r.has_value());
  });
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(calls, 1);  // resolved exactly once
  EXPECT_EQ(a.remote_hits(), 1u);
}

TEST_F(CollabTest, DisconnectStopsSharing) {
  CollaborationCache::connect(a, b);
  CollaborationCache::disconnect(a, b);
  b.put("k", json::Value(1));
  bool found = true;
  a.lookup("k", [&](std::optional<SharedResult> r) { found = r.has_value(); });
  sim.run_until(sim::seconds(1));
  EXPECT_FALSE(found);
  EXPECT_EQ(a.neighbor_count(), 0u);
}

TEST_F(CollabTest, ComputeSavingsScenario) {
  // The paper's dedup story: N vehicles scan overlapping plates; followers
  // reuse the leader's recognitions instead of re-running the CNN.
  CollaborationCache::connect(a, b);
  CollaborationCache::connect(b, c);
  for (int i = 0; i < 20; ++i) {
    a.put("plate:" + std::to_string(i), json::Value("decoded"));
  }
  int reused = 0;
  int computed = 0;
  for (int i = 0; i < 30; ++i) {
    b.lookup("plate:" + std::to_string(i),
             [&](std::optional<SharedResult> r) {
               if (r.has_value()) {
                 ++reused;
               } else {
                 ++computed;  // would run the recognition pipeline
               }
             });
  }
  sim.run_until(sim::seconds(5));
  EXPECT_EQ(reused, 20);
  EXPECT_EQ(computed, 10);
}

TEST_F(CollabTest, SelfConnectIsNoop) {
  CollaborationCache::connect(a, a);
  EXPECT_EQ(a.neighbor_count(), 0u);
}

TEST_F(CollabTest, ResultsExposePseudonymNotName) {
  CollaborationCache::connect(a, b);
  b.put("k", json::Value(1));
  a.lookup("k", [&](std::optional<SharedResult> r) {
    ASSERT_TRUE(r.has_value());
    // Privacy: the wire result carries the rotating pseudonym, never the
    // vehicle name.
    EXPECT_EQ(r->producer_pseudonym, "veh-bbbb");
    EXPECT_EQ(r->producer_pseudonym.find("cav-"), std::string::npos);
  });
  sim.run_until(sim::seconds(1));
}

}  // namespace
}  // namespace vdap::core
