#include "ddi/diskdb.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace vdap::ddi {
namespace {

namespace fs = std::filesystem;

class DiskDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vdap-diskdb-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DiskDbOptions opts(std::uint64_t segment_bytes = 4 << 20) {
    return DiskDbOptions{dir_.string(), segment_bytes};
  }

  static DataRecord rec(const std::string& stream, sim::SimTime ts,
                        double lat = 42.0, double lon = -83.0) {
    DataRecord r;
    r.stream = stream;
    r.timestamp = ts;
    r.lat = lat;
    r.lon = lon;
    r.payload["ts"] = ts;
    return r;
  }

  fs::path dir_;
};

TEST_F(DiskDbTest, PutAndQueryRange) {
  DiskDb db(opts());
  for (int i = 0; i < 100; ++i) {
    db.put(rec("obd", sim::seconds(i)));
  }
  auto out = db.query("obd", sim::seconds(10), sim::seconds(19));
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().timestamp, sim::seconds(10));
  EXPECT_EQ(out.back().timestamp, sim::seconds(19));
  EXPECT_EQ(db.record_count(), 100u);
}

TEST_F(DiskDbTest, QueryIsTimeOrderedEvenForUnorderedPuts) {
  DiskDb db(opts());
  for (int i : {5, 1, 9, 3, 7}) db.put(rec("s", sim::seconds(i)));
  auto out = db.query("s", 0, sim::seconds(100));
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].timestamp, out[i].timestamp);
  }
}

TEST_F(DiskDbTest, StreamsAreIndependent) {
  DiskDb db(opts());
  db.put(rec("a", sim::seconds(1)));
  db.put(rec("b", sim::seconds(1)));
  db.put(rec("a", sim::seconds(2)));
  EXPECT_EQ(db.query("a", 0, sim::seconds(10)).size(), 2u);
  EXPECT_EQ(db.query("b", 0, sim::seconds(10)).size(), 1u);
  EXPECT_TRUE(db.query("c", 0, sim::seconds(10)).empty());
  EXPECT_EQ(db.streams().size(), 2u);
}

TEST_F(DiskDbTest, GeoQueryFilters) {
  DiskDb db(opts());
  db.put(rec("s", sim::seconds(1), 42.00, -83.00));
  db.put(rec("s", sim::seconds(2), 42.10, -83.00));
  db.put(rec("s", sim::seconds(3), 42.00, -82.50));
  auto out = db.query_geo("s", 0, sim::seconds(10), 41.95, 42.05, -83.05,
                          -82.95);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp, sim::seconds(1));
}

TEST_F(DiskDbTest, SegmentsRollAtSizeLimit) {
  DiskDb db(opts(2'000));  // tiny segments
  for (int i = 0; i < 100; ++i) db.put(rec("s", sim::seconds(i)));
  EXPECT_GT(db.segment_count(), 1);
  EXPECT_EQ(db.query("s", 0, sim::seconds(1000)).size(), 100u);
}

TEST_F(DiskDbTest, ReopenRecoversEverything) {
  {
    DiskDb db(opts(2'000));
    for (int i = 0; i < 50; ++i) db.put(rec("obd", sim::seconds(i)));
    db.flush();
  }
  // "Vehicle reboot": a fresh instance over the same directory.
  DiskDb db2(opts(2'000));
  EXPECT_EQ(db2.record_count(), 50u);
  auto out = db2.query("obd", sim::seconds(40), sim::seconds(49));
  EXPECT_EQ(out.size(), 10u);
  // And it keeps accepting writes.
  db2.put(rec("obd", sim::seconds(50)));
  EXPECT_EQ(db2.query("obd", 0, sim::seconds(100)).size(), 51u);
}

TEST_F(DiskDbTest, RecoverySkipsTornTailWrite) {
  {
    DiskDb db(opts());
    for (int i = 0; i < 10; ++i) db.put(rec("s", sim::seconds(i)));
    db.flush();
  }
  // Corrupt the tail: append half a record worth of garbage.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::ofstream f(entry.path(), std::ios::binary | std::ios::app);
    std::uint32_t fake_len = 1000;
    f.write(reinterpret_cast<const char*>(&fake_len), 4);
    f.write("torn", 4);
  }
  DiskDb db2(opts());
  EXPECT_EQ(db2.record_count(), 10u);  // torn tail ignored
}

TEST_F(DiskDbTest, EmptyRangeAndInvertedRange) {
  DiskDb db(opts());
  db.put(rec("s", sim::seconds(5)));
  EXPECT_TRUE(db.query("s", sim::seconds(6), sim::seconds(10)).empty());
  EXPECT_TRUE(db.query("s", sim::seconds(10), sim::seconds(6)).empty());
  // Inclusive boundaries.
  EXPECT_EQ(db.query("s", sim::seconds(5), sim::seconds(5)).size(), 1u);
}

TEST_F(DiskDbTest, RejectsEmptyStreamOrDir) {
  DiskDb db(opts());
  DataRecord r;
  EXPECT_THROW(db.put(r), std::invalid_argument);
  EXPECT_THROW(DiskDb(DiskDbOptions{"", 1024}), std::invalid_argument);
}

TEST_F(DiskDbTest, PayloadSurvivesStorage) {
  DiskDb db(opts());
  DataRecord r = rec("s", sim::seconds(1));
  r.payload["nested"]["deep"] = json::Value(json::Array{1, 2.5, "three"});
  db.put(r);
  auto out = db.query("s", 0, sim::seconds(10));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], r);
}

TEST_F(DiskDbTest, RetentionByByteBudget) {
  DiskDb db(opts(2'000));  // tiny segments -> many of them
  for (int i = 0; i < 200; ++i) db.put(rec("s", sim::seconds(i)));
  db.flush();
  std::uint64_t before_bytes = db.bytes_on_disk();
  int before_segments = db.segment_count();
  ASSERT_GE(before_segments, 5);
  std::uint64_t dropped = db.enforce_retention(before_bytes / 3);
  EXPECT_GT(dropped, 0u);
  EXPECT_LE(db.bytes_on_disk(), before_bytes / 3 + 2'000);
  EXPECT_LT(db.segment_count(), before_segments);
  // The survivors are the newest records, still queryable and ordered.
  auto out = db.query("s", 0, sim::seconds(1000));
  EXPECT_EQ(out.size(), db.record_count());
  EXPECT_EQ(out.back().timestamp, sim::seconds(199));
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].timestamp, out[i].timestamp);
  }
}

TEST_F(DiskDbTest, RetentionByAge) {
  DiskDb db(opts(2'000));
  for (int i = 0; i < 100; ++i) db.put(rec("s", sim::seconds(i)));
  db.flush();
  // Drop everything strictly older than t=50 (segment-granular: only
  // segments whose *newest* record predates the cutoff go).
  db.enforce_retention(0, sim::seconds(50));
  auto out = db.query("s", 0, sim::seconds(1000));
  ASSERT_FALSE(out.empty());
  // Nothing newer than the cutoff was lost.
  EXPECT_EQ(out.back().timestamp, sim::seconds(99));
  std::uint64_t newer = 0;
  for (const auto& r : out) newer += r.timestamp >= sim::seconds(50) ? 1 : 0;
  EXPECT_EQ(newer, 50u);
  // Everything dropped was older than the cutoff.
  EXPECT_LT(out.size(), 100u);
}

TEST_F(DiskDbTest, RetentionNeverTouchesActiveSegment) {
  DiskDb db(opts(1 << 20));  // everything fits one (active) segment
  for (int i = 0; i < 50; ++i) db.put(rec("s", sim::seconds(i)));
  EXPECT_EQ(db.enforce_retention(1), 0u);  // budget absurd, but active stays
  EXPECT_EQ(db.record_count(), 50u);
}

TEST_F(DiskDbTest, RetentionSurvivesReopen) {
  {
    DiskDb db(opts(2'000));
    for (int i = 0; i < 200; ++i) db.put(rec("s", sim::seconds(i)));
    db.flush();
    db.enforce_retention(db.bytes_on_disk() / 2);
  }
  DiskDb db2(opts(2'000));
  auto out = db2.query("s", 0, sim::seconds(1000));
  EXPECT_EQ(out.size(), db2.record_count());
  EXPECT_EQ(out.back().timestamp, sim::seconds(199));
}

TEST_F(DiskDbTest, ThousandsOfRecordsAcrossSegments) {
  DiskDb db(opts(16'000));
  for (int i = 0; i < 5000; ++i) {
    db.put(rec(i % 2 == 0 ? "a" : "b", sim::msec(i)));
  }
  EXPECT_EQ(db.query("a", 0, sim::msec(5000)).size(), 2500u);
  EXPECT_EQ(db.query("b", sim::msec(1000), sim::msec(1999)).size(), 500u);
  EXPECT_GT(db.segment_count(), 5);
}

}  // namespace
}  // namespace vdap::ddi
