// Cross-module property tests: randomized workloads checked against
// reference models or conservation laws, the invariants DESIGN.md §6 calls
// out.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "ddi/diskdb.hpp"
#include "ddi/memdb.hpp"
#include "hw/board.hpp"
#include "hw/catalog.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "vcu/dsf.hpp"
#include "workload/apps.hpp"

namespace vdap {
namespace {

namespace fs = std::filesystem;

// --- JSON: random documents round-trip through dump/parse ------------------

json::Value random_json(util::RngStream& rng, int depth) {
  double u = rng.uniform();
  if (depth <= 0 || u < 0.35) {
    switch (rng.uniform_int(0, 4)) {
      case 0: return json::Value(nullptr);
      case 1: return json::Value(rng.chance(0.5));
      case 2: return json::Value(rng.uniform_int(-1'000'000, 1'000'000));
      case 3: return json::Value(rng.normal(0.0, 1e6));
      default: {
        std::string s;
        int len = static_cast<int>(rng.uniform_int(0, 12));
        for (int i = 0; i < len; ++i) {
          s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
        }
        return json::Value(std::move(s));
      }
    }
  }
  if (u < 0.65) {
    json::Array a;
    int n = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < n; ++i) a.push_back(random_json(rng, depth - 1));
    return json::Value(std::move(a));
  }
  json::Object o;
  int n = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < n; ++i) {
    o["k" + std::to_string(rng.uniform_int(0, 99))] =
        random_json(rng, depth - 1);
  }
  return json::Value(std::move(o));
}

class JsonFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzz, DumpParseRoundTrip) {
  util::RngStream rng(static_cast<std::uint64_t>(GetParam()), "json-fuzz");
  for (int i = 0; i < 200; ++i) {
    json::Value v = random_json(rng, 4);
    json::Value back = json::parse(v.dump());
    EXPECT_EQ(back, v);
    EXPECT_EQ(json::parse(v.pretty()), v);
    // Idempotent second round trip.
    EXPECT_EQ(json::parse(back.dump()).dump(), back.dump());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --- MemDb: random op sequence vs a reference model -------------------------

class MemDbModel : public ::testing::TestWithParam<int> {};

TEST_P(MemDbModel, MatchesReferenceWithoutCapacityPressure) {
  // With an effectively unlimited budget, MemDb must behave exactly like a
  // map with TTL semantics.
  util::RngStream rng(static_cast<std::uint64_t>(GetParam()), "memdb-fuzz");
  ddi::MemDb db({1ull << 30, sim::seconds(10)});
  struct Ref {
    ddi::DataRecord value;
    sim::SimTime expires;
  };
  std::map<std::string, Ref> ref;
  sim::SimTime now = 0;

  for (int op = 0; op < 3000; ++op) {
    now += rng.uniform_int(0, sim::seconds(1));
    std::string key = "k" + std::to_string(rng.uniform_int(0, 30));
    switch (rng.uniform_int(0, 3)) {
      case 0: {  // put
        ddi::DataRecord rec;
        rec.stream = "s";
        rec.payload["op"] = op;
        sim::SimDuration ttl = rng.uniform_int(1, sim::seconds(20));
        db.put(key, rec, now, ttl);
        ref[key] = Ref{std::move(rec), now + ttl};
        break;
      }
      case 1: {  // get
        auto got = db.get(key, now);
        auto it = ref.find(key);
        bool expect = it != ref.end() && it->second.expires > now;
        EXPECT_EQ(got.has_value(), expect) << "op " << op << " key " << key;
        if (got && expect) EXPECT_EQ(*got, it->second.value);
        if (it != ref.end() && it->second.expires <= now) ref.erase(it);
        break;
      }
      case 2: {  // erase
        bool db_had = db.erase(key);
        auto it = ref.find(key);
        bool ref_had = it != ref.end() && it->second.expires > now;
        // A key expired-but-not-yet-purged may still be erased in db.
        if (ref_had) EXPECT_TRUE(db_had);
        if (it != ref.end()) ref.erase(it);
        break;
      }
      default: {  // contains
        auto it = ref.find(key);
        bool expect = it != ref.end() && it->second.expires > now;
        EXPECT_EQ(db.contains(key, now), expect);
        break;
      }
    }
  }
}

TEST_P(MemDbModel, CapacityNeverExceeded) {
  util::RngStream rng(static_cast<std::uint64_t>(GetParam()) + 50,
                      "memdb-cap");
  constexpr std::uint64_t kCap = 8 * 1024;
  ddi::MemDb db({kCap, sim::seconds(100)});
  for (int op = 0; op < 2000; ++op) {
    ddi::DataRecord rec;
    rec.stream = "s";
    rec.payload["pad"] =
        std::string(static_cast<std::size_t>(rng.uniform_int(0, 300)), 'x');
    db.put("k" + std::to_string(rng.uniform_int(0, 100)), rec, op);
    EXPECT_LE(db.bytes(), kCap);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemDbModel, ::testing::Values(11, 12, 13));

// --- DiskDb: random records round-trip across reopen -------------------------

class DiskDbFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DiskDbFuzz, RandomRecordsSurviveReopen) {
  util::RngStream rng(static_cast<std::uint64_t>(GetParam()), "diskdb-fuzz");
  fs::path dir = fs::temp_directory_path() /
                 ("vdap-fuzz-" + std::to_string(GetParam()));
  fs::remove_all(dir);
  std::vector<ddi::DataRecord> written;
  {
    ddi::DiskDb db({dir.string(), 8 * 1024});
    for (int i = 0; i < 400; ++i) {
      ddi::DataRecord r;
      r.stream = "s" + std::to_string(rng.uniform_int(0, 3));
      r.timestamp = rng.uniform_int(0, sim::minutes(10));
      r.lat = rng.uniform(-90, 90);
      r.lon = rng.uniform(-180, 180);
      r.payload = random_json(rng, 2);
      db.put(r);
      written.push_back(r);
    }
    db.flush();
  }
  ddi::DiskDb db({dir.string(), 8 * 1024});
  EXPECT_EQ(db.record_count(), written.size());
  // Every written record is found in its stream's full-range query.
  std::map<std::string, std::multiset<sim::SimTime>> expect_ts;
  for (const auto& r : written) expect_ts[r.stream].insert(r.timestamp);
  for (const auto& [stream, times] : expect_ts) {
    auto out = db.query(stream, 0, sim::minutes(10));
    ASSERT_EQ(out.size(), times.size()) << stream;
    std::multiset<sim::SimTime> got;
    for (const auto& r : out) got.insert(r.timestamp);
    EXPECT_EQ(got, times) << stream;
    // Time-ordered.
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_LE(out[i - 1].timestamp, out[i].timestamp);
    }
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskDbFuzz, ::testing::Values(21, 22, 23));

// --- ComputeDevice: conservation & monotonicity under random load -----------

class DeviceConservation : public ::testing::TestWithParam<int> {};

TEST_P(DeviceConservation, EveryWorkItemReportsExactlyOnce) {
  sim::Simulator sim(static_cast<std::uint64_t>(GetParam()));
  hw::ComputeDevice dev(sim, hw::catalog::jetson_tx2_maxp());
  util::RngStream& rng = sim.rng("load");
  int submitted = 0;
  int reported = 0;
  sim::SimTime last_finish = 0;
  for (int i = 0; i < 300; ++i) {
    sim.after(rng.uniform_int(0, sim::seconds(5)), [&] {
      ++submitted;
      hw::TaskClass cls = rng.chance(0.8) ? hw::TaskClass::kCnnInference
                                          : hw::TaskClass::kDbQuery;  // unsupported
      dev.submit({cls, rng.uniform(0.1, 20.0), static_cast<int>(rng.uniform_int(0, 5)),
                  [&](const hw::WorkReport& rep) {
                    ++reported;
                    EXPECT_GE(rep.finished, rep.started);
                    EXPECT_GE(rep.started, rep.submitted);
                    last_finish = std::max(last_finish, rep.finished);
                  }});
    });
  }
  // Yank the device offline at a random time, bring it back later.
  sim.after(sim::seconds(2), [&] { dev.set_online(false); });
  sim.after(sim::seconds(3), [&] { dev.set_online(true); });
  sim.run_until(sim::minutes(5));
  EXPECT_EQ(submitted, 300);
  EXPECT_EQ(reported, 300);  // nothing lost, nothing duplicated
  EXPECT_EQ(dev.completed() + dev.aborted(),
            static_cast<std::uint64_t>(submitted));
  EXPECT_EQ(dev.busy_slots(), 0);
  EXPECT_EQ(dev.queue_length(), 0u);
  EXPECT_GE(dev.energy_joules(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceConservation,
                         ::testing::Values(31, 32, 33, 34));

// --- DSF: instance conservation under chaos ---------------------------------

class DsfChaos : public ::testing::TestWithParam<int> {};

TEST_P(DsfChaos, EveryInstanceCompletesOrFailsOnce) {
  sim::Simulator sim(static_cast<std::uint64_t>(GetParam()));
  hw::VcuBoard board(sim, "chaos");
  hw::populate_reference_1sthep(board);
  vcu::ResourceRegistry reg;
  for (const auto& d : board.devices()) reg.join(d.get());
  vcu::Dsf dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>());

  util::RngStream& rng = sim.rng("chaos");
  auto all_apps = workload::apps::all();
  int submitted = 0;
  int callbacks = 0;
  for (int i = 0; i < 200; ++i) {
    sim.after(rng.uniform_int(0, sim::seconds(20)), [&] {
      ++submitted;
      const auto& dag = all_apps[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(all_apps.size()) - 1))];
      dsf.submit(dag, [&](const vcu::DagRun&) { ++callbacks; });
    });
  }
  // Random device outages (plug-and-play chaos).
  for (int i = 0; i < 6; ++i) {
    sim.after(rng.uniform_int(0, sim::seconds(20)), [&] {
      auto devices = reg.devices();
      hw::ComputeDevice* d = devices[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(devices.size()) - 1))];
      d->set_online(!d->online());
    });
  }
  sim.run_until(sim::minutes(10));
  EXPECT_EQ(submitted, 200);
  EXPECT_EQ(callbacks, 200);
  EXPECT_EQ(dsf.completed() + dsf.failed(),
            static_cast<std::uint64_t>(submitted));
  EXPECT_EQ(dsf.in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsfChaos, ::testing::Values(41, 42, 43, 44));

// --- Simulator: determinism under a heavy random event storm ---------------

TEST(SimDeterminism, EventStormReplaysExactly) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    util::RngStream& rng = sim.rng("storm");
    std::vector<sim::SimTime> trace;
    std::function<void(int)> spawn = [&](int depth) {
      trace.push_back(sim.now());
      if (depth >= 4) return;
      int children = static_cast<int>(rng.uniform_int(0, 3));
      for (int c = 0; c < children; ++c) {
        sim.after(rng.uniform_int(0, sim::msec(100)),
                  [&, depth] { spawn(depth + 1); });
      }
    };
    for (int i = 0; i < 50; ++i) {
      sim.after(rng.uniform_int(0, sim::seconds(1)), [&] { spawn(0); });
    }
    sim.run_until(sim::seconds(5));
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7).size(), 0u);
}

}  // namespace
}  // namespace vdap
