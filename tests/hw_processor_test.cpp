#include "hw/processor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/catalog.hpp"

namespace vdap::hw {
namespace {

ProcessorSpec simple_spec(int slots = 1) {
  ProcessorSpec s;
  s.name = "test-proc";
  s.kind = ProcKind::kCpu;
  s.max_power_w = 10.0;
  s.idle_power_w = 2.0;
  s.slots = slots;
  s.gflops = {{TaskClass::kGeneric, 1.0},  // 1 GFLOP takes 1 s
              {TaskClass::kCnnInference, 2.0}};
  return s;
}

TEST(ProcessorSpec, ServiceTime) {
  ProcessorSpec s = simple_spec();
  EXPECT_EQ(*s.service_time(TaskClass::kGeneric, 1.0), sim::seconds(1));
  EXPECT_EQ(*s.service_time(TaskClass::kCnnInference, 1.0),
            sim::from_millis(500));
  EXPECT_FALSE(s.service_time(TaskClass::kNlp, 1.0).has_value());
  EXPECT_FALSE(s.supports(TaskClass::kNlp));
  // Zero-cost work still takes a minimal quantum.
  EXPECT_EQ(*s.service_time(TaskClass::kGeneric, 0.0), 1);
}

TEST(ComputeDevice, SingleTaskLatency) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec());
  WorkReport got;
  dev.submit({TaskClass::kGeneric, 2.0, 0,
              [&](const WorkReport& r) { got = r; }});
  sim.run_until();
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.latency(), sim::seconds(2));
  EXPECT_EQ(got.queueing(), 0);
  EXPECT_EQ(dev.completed(), 1u);
}

TEST(ComputeDevice, FifoQueueingOnOneSlot) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(1));
  std::vector<WorkReport> done;
  for (int i = 0; i < 3; ++i) {
    dev.submit({TaskClass::kGeneric, 1.0, 0,
                [&](const WorkReport& r) { done.push_back(r); }});
  }
  sim.run_until();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].finished, sim::seconds(1));
  EXPECT_EQ(done[1].finished, sim::seconds(2));
  EXPECT_EQ(done[2].finished, sim::seconds(3));
  EXPECT_EQ(done[2].queueing(), sim::seconds(2));
}

TEST(ComputeDevice, PriorityJumpsQueue) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(1));
  std::vector<std::string> order;
  auto mk = [&](std::string tag, int prio) {
    return WorkRequest{TaskClass::kGeneric, 1.0, prio,
                       [&order, tag](const WorkReport&) {
                         order.push_back(tag);
                       }};
  };
  dev.submit(mk("first", 0));   // starts immediately
  dev.submit(mk("low", 0));
  dev.submit(mk("high", 5));    // should run before "low"
  sim.run_until();
  EXPECT_EQ(order, (std::vector<std::string>{"first", "high", "low"}));
}

TEST(ComputeDevice, SlotsRunConcurrently) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(2));
  std::vector<WorkReport> done;
  for (int i = 0; i < 2; ++i) {
    dev.submit({TaskClass::kGeneric, 1.0, 0,
                [&](const WorkReport& r) { done.push_back(r); }});
  }
  sim.run_until();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].finished, sim::seconds(1));
  EXPECT_EQ(done[1].finished, sim::seconds(1));  // parallel, not serial
}

TEST(ComputeDevice, UnsupportedClassRejectedImmediately) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec());
  WorkReport got;
  bool called = false;
  dev.submit({TaskClass::kNlp, 1.0, 0, [&](const WorkReport& r) {
                got = r;
                called = true;
              }});
  EXPECT_TRUE(called);  // synchronous rejection
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(dev.aborted(), 1u);
}

TEST(ComputeDevice, EstimateFinishTracksBacklog) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(1));
  auto e0 = dev.estimate_finish(TaskClass::kGeneric, 1.0);
  ASSERT_TRUE(e0.has_value());
  EXPECT_EQ(*e0, sim::seconds(1));
  dev.submit({TaskClass::kGeneric, 1.0, 0, nullptr});
  auto e1 = dev.estimate_finish(TaskClass::kGeneric, 1.0);
  EXPECT_EQ(*e1, sim::seconds(2));  // behind one queued second
  dev.submit({TaskClass::kGeneric, 1.0, 0, nullptr});
  EXPECT_EQ(*dev.estimate_finish(TaskClass::kGeneric, 1.0), sim::seconds(3));
  EXPECT_FALSE(dev.estimate_finish(TaskClass::kNlp, 1.0).has_value());
}

TEST(ComputeDevice, EstimateMatchesActualForFifoStream) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(2));
  for (int i = 0; i < 6; ++i) {
    double gflop = 0.5 + 0.25 * i;
    auto est = dev.estimate_finish(TaskClass::kGeneric, gflop);
    ASSERT_TRUE(est.has_value());
    auto est_copy = *est;
    dev.submit({TaskClass::kGeneric, gflop, 0,
                [est_copy, &sim](const WorkReport& r) {
                  EXPECT_EQ(r.finished, est_copy) << sim.now();
                }});
  }
  sim.run_until();
}

TEST(ComputeDevice, OfflineAbortsRunningAndQueued) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(1));
  std::vector<bool> ok;
  for (int i = 0; i < 3; ++i) {
    dev.submit({TaskClass::kGeneric, 10.0, 0,
                [&](const WorkReport& r) { ok.push_back(r.ok); }});
  }
  sim.after(sim::seconds(1), [&] { dev.set_online(false); });
  sim.run_until();
  EXPECT_EQ(ok, (std::vector<bool>{false, false, false}));
  EXPECT_EQ(dev.aborted(), 3u);
  EXPECT_EQ(dev.completed(), 0u);
  // New submissions while offline are rejected.
  bool rejected_ok = true;
  dev.submit({TaskClass::kGeneric, 1.0, 0,
              [&](const WorkReport& r) { rejected_ok = r.ok; }});
  EXPECT_FALSE(rejected_ok);
}

TEST(ComputeDevice, BackOnlineAcceptsWork) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(1));
  dev.set_online(false);
  dev.set_online(true);
  bool ok = false;
  dev.submit({TaskClass::kGeneric, 1.0, 0,
              [&](const WorkReport& r) { ok = r.ok; }});
  sim.run_until();
  EXPECT_TRUE(ok);
}

TEST(ComputeDevice, EnergyAccounting) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(1));  // 2 W idle, 10 W max
  WorkReport got;
  dev.submit({TaskClass::kGeneric, 5.0, 0,
              [&](const WorkReport& r) { got = r; }});
  sim.run_until(sim::seconds(10));
  // 5 s busy at (10-2)=8 W dynamic + 10 s idle floor at 2 W.
  EXPECT_NEAR(dev.dynamic_energy_joules(), 40.0, 1e-6);
  EXPECT_NEAR(dev.energy_joules(), 40.0 + 20.0, 1e-6);
  EXPECT_NEAR(got.dynamic_energy_j, 40.0, 1e-6);
  EXPECT_NEAR(dev.average_utilization(), 0.5, 1e-6);
}

TEST(ComputeDevice, PowerNowReflectsLoad) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(2));
  EXPECT_DOUBLE_EQ(dev.power_now(), 2.0);  // idle
  dev.submit({TaskClass::kGeneric, 10.0, 0, nullptr});
  EXPECT_DOUBLE_EQ(dev.power_now(), 2.0 + 4.0);  // one of two slots busy
  dev.submit({TaskClass::kGeneric, 10.0, 0, nullptr});
  EXPECT_DOUBLE_EQ(dev.power_now(), 10.0);  // saturated
  EXPECT_DOUBLE_EQ(dev.utilization(), 1.0);
  EXPECT_EQ(dev.queue_length(), 0u);
}

TEST(ComputeDevice, UtilizationAndQueueMetrics) {
  sim::Simulator sim;
  ComputeDevice dev(sim, simple_spec(1));
  for (int i = 0; i < 3; ++i) {
    dev.submit({TaskClass::kGeneric, 1.0, 0, nullptr});
  }
  EXPECT_EQ(dev.busy_slots(), 1);
  EXPECT_EQ(dev.queue_length(), 2u);
  sim.run_until();
  EXPECT_EQ(dev.busy_slots(), 0);
  EXPECT_EQ(dev.queue_length(), 0u);
}

TEST(ComputeDevice, RejectsZeroSlotSpec) {
  sim::Simulator sim;
  ProcessorSpec s = simple_spec();
  s.slots = 0;
  EXPECT_THROW(ComputeDevice(sim, s), std::invalid_argument);
}

}  // namespace
}  // namespace vdap::hw
