// Trace analytics (telemetry/analysis): critical-path extraction over real
// chaos captures, the chrome-trace parse-back, and the determinism the
// vdap-report tables inherit from the capture contract (byte-identical for
// a fixed (seed, fault plan)).
#include <gtest/gtest.h>

#include "chaos_harness.hpp"
#include "telemetry/analysis/critical_path.hpp"
#include "telemetry/analysis/slo.hpp"

namespace vdap {
namespace {

namespace analysis = telemetry::analysis;
using chaos::ChaosOutcome;
using chaos::run_chaos;

analysis::CriticalPathReport report_from_json(const std::string& trace_json) {
  std::vector<telemetry::TraceEvent> events;
  std::vector<std::string> tracks;
  std::string error;
  EXPECT_TRUE(
      analysis::parse_chrome_trace(trace_json, &events, &tracks, &error))
      << error;
  return analysis::extract_critical_paths(events, tracks);
}

TEST(ParseChromeTrace, RoundTripsTracksAndEvents) {
  telemetry::Tracer tracer;
  json::Object args;
  args["run"] = static_cast<std::int64_t>(7);
  tracer.complete(100, 50, "segment", "net", "elastic/segments",
                  std::move(args));
  std::uint64_t id = tracer.begin(10, "service", "svc", "elastic");
  tracer.end(400, id);
  tracer.instant(5, "cat", "point", "other");
  tracer.counter(6, "other", "depth", 2.5);

  std::vector<telemetry::TraceEvent> events;
  std::vector<std::string> tracks;
  std::string error;
  ASSERT_TRUE(analysis::parse_chrome_trace(telemetry::chrome_trace_json(tracer),
                                           &events, &tracks, &error))
      << error;
  ASSERT_EQ(tracks.size(), tracer.tracks().size());
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    EXPECT_EQ(tracks[i], tracer.tracks()[i]);
  }
  ASSERT_EQ(events.size(), tracer.events().size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const telemetry::TraceEvent& a = tracer.events()[i];
    const telemetry::TraceEvent& b = events[i];
    EXPECT_EQ(a.ph, b.ph);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.dur, b.dur);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.tid, b.tid);
    EXPECT_EQ(a.cat, b.cat);
    EXPECT_EQ(a.name, b.name);
  }
}

TEST(ParseChromeTrace, RejectsMalformedInput) {
  std::vector<telemetry::TraceEvent> events;
  std::vector<std::string> tracks;
  std::string error;
  EXPECT_FALSE(analysis::parse_chrome_trace("{not json", &events, &tracks,
                                            &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(analysis::parse_chrome_trace("{}", &events, &tracks, &error));
  EXPECT_FALSE(
      analysis::parse_chrome_trace(R"({"traceEvents": 3})", &events, &tracks,
                                   &error));
}

TEST(CriticalPath, ExclusiveSegmentsPartitionEveryRunLatency) {
  ChaosOutcome out = run_chaos(sim::plans::flaky_rsu(), 21, "cp-partition");
  analysis::CriticalPathReport report = report_from_json(out.trace_json);

  // Every reported run appears in the trace-derived report.
  ASSERT_GT(report.runs.size(), 0u);
  EXPECT_EQ(report.runs.size(), out.reports);

  for (const analysis::RunCriticalPath& run : report.runs) {
    EXPECT_EQ(run.segments.total(), run.latency())
        << "run " << run.run_id << " (" << run.service << ")";
    // Tier attribution covers exactly the non-slack time.
    sim::SimDuration tier_sum = 0;
    for (const auto& [tier, d] : run.tier_time) tier_sum += d;
    EXPECT_EQ(tier_sum, run.latency() - run.segments.slack);
  }

  // Offloaded pipelines spent wall time on the wire; and whenever the run
  // actually took a failover, the decomposition must charge it.
  sim::SimDuration net = 0, failover = 0;
  int failovers_taken = 0;
  for (const analysis::RunCriticalPath& run : report.runs) {
    net += run.segments.network;
    failover += run.segments.failover;
    failovers_taken += run.failovers;
  }
  EXPECT_GT(net, 0);
  if (failovers_taken > 0) EXPECT_GT(failover, 0);
}

TEST(CriticalPath, InMemoryAndParsedExtractionsAgree) {
  sim::Simulator sim(5);
  telemetry::Session session(sim);
  core::OpenVdap car(sim);
  car.install_standard_services();
  for (int i = 0; i < 8; ++i) {
    sim.at(sim::seconds(1 + i), [&] { car.run_service("lane-detection"); });
  }
  sim.run_until(sim::minutes(1));

  analysis::CriticalPathReport direct =
      analysis::extract_critical_paths(telemetry::tracer());
  analysis::CriticalPathReport parsed =
      report_from_json(session.chrome_trace());
  EXPECT_EQ(analysis::critical_path_table(direct),
            analysis::critical_path_table(parsed));
  ASSERT_EQ(direct.runs.size(), 8u);
  for (const analysis::RunCriticalPath& run : direct.runs) {
    EXPECT_TRUE(run.ok);
    EXPECT_GT(run.segments.compute, 0);
  }
}

// The vdap-report acceptance bar: for a fixed (seed, plan), the critical-
// path and SLO tables are byte-identical across runs.
TEST(CriticalPath, TablesAreByteIdenticalAcrossReplays) {
  ChaosOutcome a = run_chaos(sim::plans::rolling_chaos(), 33, "cp-det-a");
  ChaosOutcome b = run_chaos(sim::plans::rolling_chaos(), 33, "cp-det-b");
  ASSERT_EQ(a.trace_json, b.trace_json);

  analysis::CriticalPathReport ra = report_from_json(a.trace_json);
  analysis::CriticalPathReport rb = report_from_json(b.trace_json);
  std::string table_a = analysis::critical_path_table(ra);
  EXPECT_EQ(table_a, analysis::critical_path_table(rb));
  EXPECT_NE(table_a.find("lane-detection"), std::string::npos);

  auto slo_replay = [](const analysis::CriticalPathReport& report) {
    analysis::SloEvaluator ev;
    for (analysis::SloTarget& t : analysis::standard_slos()) {
      ev.add_target(std::move(t));
    }
    sim::SimTime last = 0;
    for (const analysis::RunCriticalPath& run : report.runs) {
      analysis::RunObservation obs;
      obs.service = run.service;
      obs.finished = run.finished;
      obs.latency = run.latency();
      obs.ok = run.ok;
      obs.dominant_segment = std::string(run.segments.dominant());
      ev.observe(obs);
      last = std::max(last, run.finished);
    }
    ev.flush(last);
    return ev.compliance_table();
  };
  std::string slo_a = slo_replay(ra);
  EXPECT_EQ(slo_a, slo_replay(rb));
  EXPECT_NE(slo_a.find("SLO compliance"), std::string::npos);
}

TEST(CriticalPath, DominantPicksLargestBucket) {
  analysis::ExclusiveSegments s;
  EXPECT_EQ(s.dominant(), "compute");
  s.queue = 10;
  EXPECT_EQ(s.dominant(), "queue");
  s.network = 20;
  EXPECT_EQ(s.dominant(), "net");
  s.failover = 30;
  EXPECT_EQ(s.dominant(), "failover");
  s.compute = 40;
  EXPECT_EQ(s.dominant(), "compute");
}

}  // namespace
}  // namespace vdap
