#include "net/cellular.hpp"

#include <gtest/gtest.h>

namespace vdap::net {
namespace {

TEST(MphToMps, Conversion) {
  EXPECT_NEAR(mph_to_mps(35.0), 15.65, 0.01);
  EXPECT_NEAR(mph_to_mps(70.0), 31.29, 0.01);
  EXPECT_DOUBLE_EQ(mph_to_mps(0.0), 0.0);
}

TEST(CellularChannel, StaticVehicleHasStableCleanChannel) {
  LteMobilityParams p;
  CellularChannel ch(p, 0.0, 300.0, 1);
  EXPECT_EQ(ch.handovers(), 0);
  EXPECT_EQ(ch.rlf_count(), 0);
  EXPECT_DOUBLE_EQ(ch.micro_loss(), 0.0);
  // Mean capacity is near the profile value at the parking spot.
  EXPECT_GT(ch.mean_capacity_mbps(), 0.6 * p.peak_uplink_mbps);
  EXPECT_LT(ch.outage_fraction(), 0.03);  // only rare deep fades
}

TEST(CellularChannel, HandoverCountMatchesGeometry) {
  LteMobilityParams p;
  double v = mph_to_mps(70.0);
  CellularChannel ch(p, v, 300.0, 2);
  // Cells span 2R = 1 km; at ~31.3 m/s the car crosses ~9.4 boundaries
  // in 300 s.
  double expected = v * 300.0 / (2.0 * p.cell_radius_m);
  EXPECT_NEAR(ch.handovers(), expected, 1.0);
}

TEST(CellularChannel, FasterMeansMoreHandovers) {
  LteMobilityParams p;
  CellularChannel slow(p, mph_to_mps(35), 300.0, 3);
  CellularChannel fast(p, mph_to_mps(70), 300.0, 3);
  EXPECT_GT(fast.handovers(), slow.handovers());
}

TEST(CellularChannel, MeanCapacityDecreasesWithSpeed) {
  LteMobilityParams p;
  double prev = 1e9;
  for (double mph : {0.0, 35.0, 70.0}) {
    CellularChannel ch(p, mph_to_mps(mph), 300.0, 4);
    double cap = ch.mean_capacity_mbps();
    EXPECT_LT(cap, prev) << mph;
    prev = cap;
  }
}

TEST(CellularChannel, SeventyMphCannotSustain720p) {
  // The §III-A mechanism: at 70 MPH achievable capacity drops below the
  // 3.8 Mbps the 720P stream needs, for much of the drive.
  LteMobilityParams p;
  CellularChannel ch(p, mph_to_mps(70.0), 300.0, 5);
  EXPECT_LT(ch.mean_capacity_mbps(), 3.8);
}

TEST(CellularChannel, StaticSustainsBothStreams) {
  LteMobilityParams p;
  CellularChannel ch(p, 0.0, 300.0, 5);
  EXPECT_GT(ch.mean_capacity_mbps(), 5.8);
}

TEST(CellularChannel, OutageFractionGrowsWithSpeed) {
  LteMobilityParams p;
  CellularChannel parked(p, 0.0, 300.0, 6);
  CellularChannel slow(p, mph_to_mps(35), 300.0, 6);
  CellularChannel fast(p, mph_to_mps(70), 300.0, 6);
  EXPECT_LE(parked.outage_fraction(), slow.outage_fraction());
  EXPECT_LT(slow.outage_fraction(), fast.outage_fraction());
}

TEST(CellularChannel, CapacityZeroDuringOutage) {
  LteMobilityParams p;
  CellularChannel ch(p, mph_to_mps(70.0), 300.0, 7);
  int outage_blocks = 0;
  for (double t = 0; t < 300.0; t += ch.block_s()) {
    if (ch.in_outage(t)) {
      ++outage_blocks;
      EXPECT_DOUBLE_EQ(ch.capacity_mbps(t), 0.0);
    }
  }
  EXPECT_GT(outage_blocks, 0);
}

TEST(CellularChannel, DeterministicForSeed) {
  LteMobilityParams p;
  CellularChannel a(p, mph_to_mps(35), 60.0, 42);
  CellularChannel b(p, mph_to_mps(35), 60.0, 42);
  CellularChannel c(p, mph_to_mps(35), 60.0, 43);
  bool differs_from_c = false;
  for (double t = 0; t < 60.0; t += 0.1) {
    EXPECT_DOUBLE_EQ(a.capacity_mbps(t), b.capacity_mbps(t));
    if (a.capacity_mbps(t) != c.capacity_mbps(t)) differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(CellularChannel, MicroLossScalesWithSpeed) {
  LteMobilityParams p;
  CellularChannel slow(p, 10.0, 10.0, 1);
  CellularChannel fast(p, 30.0, 10.0, 1);
  EXPECT_NEAR(fast.micro_loss(), 3.0 * slow.micro_loss(), 1e-12);
}

TEST(CellularChannel, RejectsBadArguments) {
  LteMobilityParams p;
  EXPECT_THROW(CellularChannel(p, 10.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(CellularChannel(p, -1.0, 10.0, 1), std::invalid_argument);
}

TEST(CellularChannel, QueryClampsOutOfRangeTimes) {
  LteMobilityParams p;
  CellularChannel ch(p, 0.0, 10.0, 1);
  EXPECT_NO_THROW(ch.capacity_mbps(-5.0));
  EXPECT_NO_THROW(ch.capacity_mbps(1e6));
}

}  // namespace
}  // namespace vdap::net
