// Flight-recorder suite (DESIGN.md §6i).
//
// The load-bearing assertions are the incident-bundle sweeps: a
// sim-clock-triggered incident must snapshot BYTE-identical
// manifest.json + rings.vfr no matter how many shards partition the
// fleet or how many threads drive them — on both the fleet-scale path
// (metric mirrors on) and the full-platform run_fleet path (health +
// fault + incident records). The ring/fold unit tests localize a sweep
// failure; the death test proves a fatal signal still yields a
// parseable bundle.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/fleet_scale.hpp"
#include "sim/sharded.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/session.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace vdap;
using telemetry::FlightKind;
using telemetry::FlightParse;
using telemetry::FlightRecord;
using telemetry::FlightRecorder;
using telemetry::FlightRing;
using telemetry::make_flight_record;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

FlightRecord rec(std::int64_t ts, std::string_view name) {
  return make_flight_record(FlightKind::kInstant, ts, name, "t", "d", ts, 0.0);
}

// --- ring semantics ---------------------------------------------------------

TEST(FlightRingTest, OverwritesOldestKeepsOrder) {
  FlightRing ring(4);
  for (int i = 1; i <= 6; ++i) ring.append(rec(i, "r"));
  EXPECT_EQ(ring.appended(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.overwritten(), 2u);

  std::vector<FlightRecord> out;
  ring.drain_into(out);
  ASSERT_EQ(out.size(), 4u);
  // Oldest two were overwritten; the survivors come out oldest-first.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[(std::size_t)i].ts, i + 3);
  EXPECT_EQ(ring.dropped_total(), 2u);
  EXPECT_EQ(ring.drained_total(), 4u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.overwritten(), 0u);
}

TEST(FlightRingTest, SpanPairStraddlingWrapKeepsTheEnd) {
  FlightRing ring(3);
  ring.append(make_flight_record(FlightKind::kSpanBegin, 10, "decode", "w",
                                 "task", 0, 0.0));
  for (int i = 0; i < 3; ++i) ring.append(rec(20 + i, "noise"));
  ring.append(make_flight_record(FlightKind::kSpanEnd, 30, "decode", "w",
                                 "task", 0, 0.0));

  std::vector<FlightRecord> out;
  ring.drain_into(out);
  ASSERT_EQ(out.size(), 3u);
  // The begin was overwritten; the end survives as a well-formed record
  // (reports tolerate unmatched pairs — identity is name/track, not ids).
  EXPECT_EQ(out.back().kind, (std::uint32_t)FlightKind::kSpanEnd);
  EXPECT_STREQ(out.back().name, "decode");
  EXPECT_EQ(ring.dropped_total(), 2u);
}

TEST(FlightRingTest, ZeroCapacityIsDisabledNoOp) {
  FlightRing ring;  // capacity 0
  EXPECT_FALSE(ring.enabled());
  for (int i = 0; i < 100; ++i) ring.append(rec(i, "r"));
  EXPECT_EQ(ring.appended(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.overwritten(), 0u);
  std::vector<FlightRecord> out;
  ring.drain_into(out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ring.dropped_total(), 0u);
}

TEST(FlightRingTest, TruncatesLongStringsWithNul) {
  const std::string long_name(100, 'n');
  FlightRecord r = make_flight_record(FlightKind::kMetric, 1, long_name,
                                      std::string(50, 't'),
                                      std::string(50, 'd'), 1, 0.0);
  EXPECT_EQ(std::string(r.name).size(), sizeof(r.name) - 1);
  EXPECT_EQ(std::string(r.track).size(), sizeof(r.track) - 1);
  EXPECT_EQ(std::string(r.detail).size(), sizeof(r.detail) - 1);
}

// --- fold determinism -------------------------------------------------------

// The determinism keystone: the master ring is a pure function of the
// record multiset, independent of which scratch ring recorded what.
TEST(FlightFoldTest, FoldIndependentOfRingPlacement) {
  auto run = [](const std::vector<int>& placement) {
    FlightRecorder fr(3);
    fr.set_context(7, "unit", json::Value());
    const std::vector<FlightRecord> records = {
        rec(30, "c"), rec(10, "a"), rec(10, "b"), rec(20, "b")};
    for (std::size_t i = 0; i < records.size(); ++i) {
      fr.ring(placement[i]).append(records[i]);
    }
    fr.fold_barrier(sim::usec(40));
    return fr.serialize_rings();
  };
  const std::string a = run({0, 0, 1, 2});
  const std::string b = run({2, 1, 0, 0});
  const std::string c = run({1, 1, 1, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(FlightFoldTest, SerializeParseRoundTrip) {
  FlightRecorder fr(2);
  fr.ring(0).append(rec(5, "one"));
  fr.ring(1).append(rec(3, "two"));
  fr.fold_barrier(sim::usec(10));

  const std::string bytes = fr.serialize_rings();
  FlightParse parse = telemetry::parse_flight_rings(bytes);
  ASSERT_TRUE(parse.ok) << parse.error;
  ASSERT_EQ(parse.sections.size(), 1u);
  EXPECT_EQ(parse.sections[0].domain, -1);  // master
  ASSERT_EQ(parse.sections[0].records.size(), 2u);
  // Canonical content order: ts first.
  EXPECT_STREQ(parse.sections[0].records[0].name, "two");
  EXPECT_STREQ(parse.sections[0].records[1].name, "one");
  EXPECT_EQ(parse.sections[0].corrupt_skipped, 0u);
}

TEST(FlightFoldTest, IncidentNowSnapshotsBundleAndReports) {
  FlightRecorder::Options opts;
  opts.dir = std::filesystem::temp_directory_path() / "vdap-flight-unit";
  std::filesystem::remove_all(opts.dir);
  FlightRecorder fr(1, opts);
  fr.set_context(42, "unit-plan", json::Value());
  fr.ring(0).set_time_hint(sim::usec(90));
  telemetry::FlightRing* prev = telemetry::bind_flight(&fr.ring(0));
  telemetry::flight_metric("unit.counter", 3);
  telemetry::bind_flight(prev);

  const FlightRecorder::Bundle* b =
      fr.incident_now(sim::usec(100), "unit-test", "detail");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(fr.triggers_seen(), 1u);
  EXPECT_EQ(b->id, "incident-001-t100");

  // In-memory round trip.
  FlightParse parse = telemetry::parse_flight_rings(b->rings);
  ASSERT_TRUE(parse.ok) << parse.error;
  std::optional<json::Value> manifest = json::try_parse(b->manifest);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->get_string("plan"), "unit-plan");
  EXPECT_EQ(manifest->get_int("seed"), 42);

  // On-disk round trip through the report renderer.
  std::string error;
  const std::string report = telemetry::render_incident_dir(b->dir, &error);
  ASSERT_FALSE(report.empty()) << error;
  EXPECT_NE(report.find("unit-test"), std::string::npos);
  EXPECT_NE(report.find("unit.counter"), std::string::npos);
  std::filesystem::remove_all(opts.dir);
}

TEST(FlightFoldTest, MaxBundlesCapsSnapshotsNotTriggerCount) {
  FlightRecorder::Options opts;
  opts.max_bundles = 2;
  FlightRecorder fr(1, opts);
  for (int i = 1; i <= 5; ++i) {
    fr.incident_now(sim::usec(i * 10), "again");
  }
  EXPECT_EQ(fr.bundles().size(), 2u);
  EXPECT_EQ(fr.triggers_seen(), 5u);
}

TEST(FlightFoldTest, TriggerOverwrittenFallbackStillSnapshots) {
  FlightRecorder::Options opts;
  opts.scratch_capacity = 2;  // tiny: the kIncident gets overwritten
  FlightRecorder fr(1, opts);
  fr.ring(0).set_time_hint(sim::usec(5));
  telemetry::FlightRing* prev = telemetry::bind_flight(&fr.ring(0));
  telemetry::incident("lost-trigger");
  telemetry::bind_flight(prev);
  for (int i = 0; i < 4; ++i) fr.ring(0).append(rec(6 + i, "noise"));

  fr.fold_barrier(sim::usec(20));
  ASSERT_EQ(fr.bundles().size(), 1u);
  EXPECT_NE(fr.bundles()[0].manifest.find("trigger-overwritten"),
            std::string::npos);
}

TEST(ShardedFlightTest, RejectsWrongDomainCount) {
  sim::ShardedSimulator ssim(7, sim::ShardedSimulator::Options{2, 1,
                                                               sim::seconds(1)});
  FlightRecorder fr(2);  // needs shards + 1 = 3
  EXPECT_THROW(ssim.set_flight(&fr), std::invalid_argument);
}

TEST(SessionFlightTest, AttachFlightMirrorsMetrics) {
  sim::Simulator sim(7);
  FlightRecorder fr(1);
  fr.ring(0).set_clock(sim.now_ptr());
  telemetry::Session session(sim);
  session.attach_flight(&fr.ring(0));
  sim.at(sim::usec(50), [] { telemetry::count("session.flight", 2); });
  sim.run_until(sim::usec(100));
  session.attach_flight(nullptr);

  std::vector<FlightRecord> out;
  fr.ring(0).drain_into(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_STREQ(out[0].name, "session.flight");
  EXPECT_EQ(out[0].ts, 50);
  EXPECT_EQ(out[0].value, 2);
}

// --- fleet-scale sweep ------------------------------------------------------

core::FleetScaleOutcome run_scale(int shards, int threads, bool flight,
                                  bool ingest) {
  core::FleetScaleConfig cfg;
  cfg.vehicles = kSanitized ? 40 : 120;
  cfg.seed = 11;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.run_until = sim::seconds(8);
  cfg.drain = sim::seconds(6);
  cfg.ingest_backend = ingest;
  cfg.flight = flight;
  cfg.flight_incident_at = sim::seconds(5);
  return core::run_fleet_scale(cfg);
}

// A sim-clock-triggered incident bundle is byte-identical across the
// shard × thread matrix — manifest AND rings — and the recorder never
// moves the digest.
TEST(FlightSweepTest, ScaleBundleByteIdenticalAcrossMatrix) {
  const core::FleetScaleOutcome base = run_scale(1, 1, true, true);
  ASSERT_EQ(base.flight_bundles.size(), 1u);
  EXPECT_EQ(base.flight_scratch_dropped, 0u);
  EXPECT_EQ(base.flight_triggers, 1u);
  EXPECT_EQ(base.flight_bundles[0].id, "incident-001-t5000000");

  const core::FleetScaleOutcome plain = run_scale(1, 1, false, true);
  EXPECT_EQ(plain.digest, base.digest) << "flight recorder moved the digest";

  for (const auto& [shards, threads] :
       std::vector<std::pair<int, int>>{{2, 1}, {2, 2}, {8, 2}, {8, 8}}) {
    const core::FleetScaleOutcome out =
        run_scale(shards, threads, true, true);
    SCOPED_TRACE("shards=" + std::to_string(shards) +
                 " threads=" + std::to_string(threads));
    EXPECT_EQ(out.digest, base.digest);
    EXPECT_EQ(out.flight_scratch_dropped, 0u);
    ASSERT_EQ(out.flight_bundles.size(), 1u);
    EXPECT_EQ(out.flight_bundles[0].id, base.flight_bundles[0].id);
    EXPECT_EQ(out.flight_bundles[0].manifest, base.flight_bundles[0].manifest);
    EXPECT_EQ(out.flight_bundles[0].rings, base.flight_bundles[0].rings);
    EXPECT_EQ(out.flight_rings, base.flight_rings);
  }
}

// --- full-platform sweep ----------------------------------------------------

core::FleetOutcome run_fleet_flight(int shards, int threads) {
  core::FleetConfig cfg;
  cfg.vehicles = 4;
  cfg.seed = 7;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.dir_tag = "flight-" + std::to_string(shards) + "-" +
                std::to_string(threads);
  cfg.load_until = sim::seconds(60);
  cfg.run_until = sim::seconds(80);
  cfg.drain = sim::seconds(30);
  cfg.flight = true;
  return core::run_fleet(core::fleet_compute_outlier_plan(1), cfg);
}

// The full platform records the entity-partitioned streams (fault edges
// from shard 0's injector, per-vehicle health edges, incidents); bundles
// and the end-of-run rings must be geometry-invariant.
TEST(FlightSweepTest, FleetFaultTriggeredBundleInvariantAcrossMatrix) {
  const core::FleetOutcome base = run_fleet_flight(1, 1);
  // The outlier plan fires 4 slowdown begins at t=40s — each raises a
  // trigger; the barrier after t=40s snapshots one bundle for all of
  // them.
  EXPECT_GE(base.flight_triggers, 4u);
  ASSERT_GE(base.flight_bundles.size(), 1u);
  EXPECT_EQ(base.flight_scratch_dropped, 0u);

  // The bundle's rings hold the fault edges with their targets.
  FlightParse parse =
      telemetry::parse_flight_rings(base.flight_bundles[0].rings);
  ASSERT_TRUE(parse.ok) << parse.error;
  int faults = 0;
  int incidents = 0;
  for (const FlightRecord& r : parse.sections[0].records) {
    if (r.kind == (std::uint32_t)FlightKind::kFault) ++faults;
    if (r.kind == (std::uint32_t)FlightKind::kIncident) ++incidents;
  }
  EXPECT_EQ(faults, 4);
  EXPECT_GE(incidents, 4);

  for (const auto& [shards, threads] :
       std::vector<std::pair<int, int>>{{2, 2}, {4, 2}}) {
    const core::FleetOutcome out = run_fleet_flight(shards, threads);
    SCOPED_TRACE("shards=" + std::to_string(shards) +
                 " threads=" + std::to_string(threads));
    EXPECT_EQ(out.flight_scratch_dropped, 0u);
    EXPECT_EQ(out.flight_triggers, base.flight_triggers);
    ASSERT_EQ(out.flight_bundles.size(), base.flight_bundles.size());
    for (std::size_t i = 0; i < base.flight_bundles.size(); ++i) {
      EXPECT_EQ(out.flight_bundles[i].id, base.flight_bundles[i].id);
      EXPECT_EQ(out.flight_bundles[i].manifest,
                base.flight_bundles[i].manifest);
      EXPECT_EQ(out.flight_bundles[i].rings, base.flight_bundles[i].rings);
    }
    EXPECT_EQ(out.flight_rings, base.flight_rings);
    EXPECT_EQ(out.fault_trace, base.fault_trace);
  }
}

// --- crash dump -------------------------------------------------------------

// Aborting mid-run must still yield a parseable bundle: the fatal-signal
// handler streams the raw rings with only async-signal-safe write()s,
// then re-raises, so the process dies by SIGABRT as usual.
TEST(FlightCrashTest, AbortMidRunYieldsParseableBundle) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "vdap-flight-crash";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto crash_run = [&dir] {
    core::FleetScaleConfig cfg;
    cfg.vehicles = 20;
    cfg.seed = 3;
    cfg.run_until = sim::seconds(6);
    cfg.drain = sim::seconds(2);
    cfg.flight = true;
    cfg.flight_opts.dir = dir.string();
    cfg.flight_crash_dump = true;
    cfg.prepare = [](sim::ShardedSimulator& ssim) {
      ssim.shard(0).at(sim::seconds(3), [] { std::abort(); });
    };
    core::run_fleet_scale(cfg);
  };
  EXPECT_EXIT(crash_run(), ::testing::KilledBySignal(SIGABRT), "");

  // The child's handler streamed a bundle; parse it back in this process.
  std::string error;
  const std::string report =
      telemetry::render_incident_dir((dir / "incident-crash").string(),
                                     &error);
  ASSERT_FALSE(report.empty()) << error;
  EXPECT_NE(report.find("crash"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
