// Soak suite: one vehicle-hour of recurring, overlapping faults. Verifies
// that the platform neither leaks runs nor loses records over a long horizon
// and that even an hour-long chaotic run replays bit-identically.
#include <gtest/gtest.h>

#include "chaos_harness.hpp"

namespace vdap {
namespace {

using chaos::ChaosConfig;
using chaos::ChaosOutcome;
using chaos::run_chaos;

// Recurring faults spread over ~55 minutes — every fault kind keeps firing
// for the whole soak window.
sim::FaultPlan soak_plan() {
  sim::FaultPlan p;
  p.name = "soak-rolling";

  sim::FaultSpec flap;
  flap.name = "rsu-flap";
  flap.kind = sim::FaultKind::kLinkFlap;
  flap.target = "rsu-edge";
  flap.start = sim::seconds(60);
  flap.duration = sim::seconds(60);
  flap.down_time = sim::seconds(3);
  flap.up_time = sim::seconds(8);
  flap.jitter = 0.3;
  flap.repeat = 10;
  flap.period = sim::minutes(5);
  p.faults.push_back(flap);

  sim::FaultSpec cloud;
  cloud.name = "cloud-out";
  cloud.kind = sim::FaultKind::kLinkDown;
  cloud.target = "cloud";
  cloud.start = sim::seconds(90);
  cloud.duration = sim::seconds(30);
  cloud.repeat = 8;
  cloud.period = sim::minutes(6);
  p.faults.push_back(cloud);

  sim::FaultSpec cell;
  cell.name = "cell-crunch";
  cell.kind = sim::FaultKind::kCellularCollapse;
  cell.target = "cellular";
  cell.start = sim::seconds(120);
  cell.duration = sim::seconds(60);
  cell.severity = 0.15;
  cell.extra_loss = 0.1;
  cell.repeat = 9;
  cell.period = sim::seconds(330);
  p.faults.push_back(cell);

  // Lossy-but-up cloud path: the cellular gate stays open, so sync
  // attempts fail for real and the backoff machinery gets exercised.
  sim::FaultSpec lossy;
  lossy.name = "cloud-lossy";
  lossy.kind = sim::FaultKind::kLinkDegrade;
  lossy.target = "cloud";
  lossy.start = sim::seconds(150);
  lossy.duration = sim::seconds(45);
  lossy.severity = 0.7;
  lossy.extra_loss = 0.9;
  lossy.repeat = 10;
  lossy.period = sim::seconds(320);
  p.faults.push_back(lossy);

  sim::FaultSpec disk;
  disk.name = "disk-stall";
  disk.kind = sim::FaultKind::kDiskWriteError;
  disk.target = "ddi";
  disk.start = sim::seconds(200);
  disk.duration = sim::seconds(10);
  disk.repeat = 12;
  disk.period = sim::seconds(240);
  p.faults.push_back(disk);

  sim::FaultSpec crash;
  crash.name = "speech-crash";
  crash.kind = sim::FaultKind::kServiceCrash;
  crash.target = "speech-assistant";
  crash.start = sim::minutes(5);
  crash.repeat = 6;
  crash.period = sim::minutes(8);
  p.faults.push_back(crash);

  sim::FaultSpec slow;
  slow.name = "cpu-thermal";
  slow.kind = sim::FaultKind::kProcessorSlowdown;
  slow.target = "proc:0";
  slow.start = sim::seconds(400);
  slow.duration = sim::minutes(2);
  slow.severity = 0.5;
  slow.repeat = 5;
  slow.period = sim::minutes(9);
  p.faults.push_back(slow);

  return p;
}

ChaosConfig soak_config() {
  ChaosConfig cc;
  cc.release_period = sim::seconds(10);
  cc.load_until = sim::minutes(50);
  cc.run_until = sim::minutes(60);
  cc.obd_period = sim::seconds(1);  // keep the hour-long run cheap
  return cc;
}

void check_invariants(const ChaosOutcome& out) {
  EXPECT_GT(out.faults_applied, 20u);  // recurrences actually recurred
  EXPECT_GT(out.uploads, 3000u);       // an hour of telemetry
  EXPECT_EQ(out.cloud.size(), out.uploads);
  for (const auto& [key, copies] : out.cloud) {
    ASSERT_EQ(copies, 1) << "duplicate delivery of " << key.first << "@"
                         << key.second;
  }
  EXPECT_EQ(out.backlog, 0u);
  EXPECT_EQ(out.staged, 0u);
  EXPECT_EQ(out.reports, out.releases);
  EXPECT_EQ(out.active_runs, 0u);
  EXPECT_EQ(out.hung, 0u);
  // The soak hit every reacting layer.
  EXPECT_GT(out.sync_failed, 0u);
  EXPECT_GT(out.disk_failures, 0u);
  EXPECT_GT(out.crashes, 0u);
  EXPECT_GT(out.reinstalls, 0u);
  // No telemetry span may survive the drain — an hour of recurring faults,
  // failovers and hang/resume cycles must still balance every begin()/end().
  EXPECT_EQ(out.open_spans, 0u);
}

TEST(Soak, OneVehicleHourOfRollingFaults) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosOutcome out =
        run_chaos(soak_plan(), seed, "soak-" + std::to_string(seed),
                  soak_config());
    check_invariants(out);
  }
}

TEST(Soak, HourLongRunReplaysBitIdentically) {
  ChaosOutcome a = run_chaos(soak_plan(), 77, "soak-det-a", soak_config());
  ChaosOutcome b = run_chaos(soak_plan(), 77, "soak-det-b", soak_config());
  check_invariants(a);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.report_trace, b.report_trace);
  EXPECT_EQ(a.cloud, b.cloud);
  EXPECT_EQ(a.sync_retries, b.sync_retries);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.reinstalls, b.reinstalls);
  EXPECT_EQ(a.trace_json, b.trace_json) << "exported trace not byte-stable";
  EXPECT_EQ(a.snapshots_jsonl, b.snapshots_jsonl);
}

}  // namespace
}  // namespace vdap
