// Continuous-profiling suite (DESIGN.md §6j).
//
// The load-bearing assertion is the sweep: turning the sampling profiler
// on must not move a single byte of any deterministic output — digest,
// capture artifacts, ingest summary — across the whole shard × thread
// matrix. Profiles are wall-plane samples; everything else here (seqlock
// slot mechanics, tag interning, Tracer mirroring, the JSONL round trip,
// table rendering) exists to localize a sweep failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet_scale.hpp"
#include "telemetry/prof/profiler.hpp"
#include "telemetry/prof/report.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace vdap;
using namespace vdap::telemetry::prof;

// The full 9-point geometry matrix is cheap on a plain build but costs
// minutes under ASan/TSan; scale the fleet down there (the matrix itself
// stays complete — geometry coverage is the point of this suite).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// --- tag interning -----------------------------------------------------------

TEST(ProfTagTest, InterningIsStableAndIdempotent) {
  const TagId a = intern_tag("prof-test/alpha");
  const TagId b = intern_tag("prof-test/beta");
  EXPECT_NE(a, kInvalidTag);
  EXPECT_NE(b, kInvalidTag);
  EXPECT_NE(a, b);
  EXPECT_EQ(intern_tag("prof-test/alpha"), a);
  EXPECT_EQ(tag_name(a), "prof-test/alpha");
  EXPECT_EQ(tag_name(b), "prof-test/beta");
  EXPECT_EQ(tag_name(kInvalidTag), "");
  EXPECT_EQ(tag_name(0xffffffffu), "");
  EXPECT_GE(tag_count(), 2u);
}

// --- ProfSlot seqlock mechanics ----------------------------------------------

std::vector<TagId> snap(const ProfSlot& slot) {
  std::array<TagId, kMaxProfDepth> stack{};
  const int depth = slot.snapshot(stack);
  EXPECT_GE(depth, 0);
  return std::vector<TagId>(stack.begin(), stack.begin() + depth);
}

TEST(ProfSlotTest, PushPopMaintainsTheStack) {
  ProfSlot slot;
  const TagId a = intern_tag("prof-test/a");
  const TagId b = intern_tag("prof-test/b");
  EXPECT_TRUE(snap(slot).empty());
  slot.push(a);
  slot.push(b);
  EXPECT_EQ(snap(slot), (std::vector<TagId>{a, b}));
  slot.pop();
  EXPECT_EQ(snap(slot), (std::vector<TagId>{a}));
  slot.pop();
  EXPECT_TRUE(snap(slot).empty());
  slot.pop();  // empty pop is a no-op, not UB
  EXPECT_TRUE(snap(slot).empty());
}

TEST(ProfSlotTest, PopTagRemovesTopmostMatchAndShifts) {
  ProfSlot slot;
  const TagId a = intern_tag("prof-test/a");
  const TagId b = intern_tag("prof-test/b");
  const TagId c = intern_tag("prof-test/c");
  slot.push(a);
  slot.push(b);
  slot.push(c);
  // Out-of-order close: b leaves from the middle, deeper frames shift up.
  slot.pop_tag(b);
  EXPECT_EQ(snap(slot), (std::vector<TagId>{a, c}));
  // Absent tag: no-op.
  slot.pop_tag(b);
  EXPECT_EQ(snap(slot), (std::vector<TagId>{a, c}));
  // Duplicate frames: the TOPMOST match leaves first.
  slot.push(a);
  slot.pop_tag(a);
  EXPECT_EQ(snap(slot), (std::vector<TagId>{a, c}));
  EXPECT_EQ(slot.truncated(), 0u);
}

TEST(ProfSlotTest, OverflowTruncatesButStaysBalanced) {
  ProfSlot slot;
  const TagId t = intern_tag("prof-test/deep");
  for (std::size_t i = 0; i < kMaxProfDepth + 3; ++i) slot.push(t);
  EXPECT_EQ(slot.truncated(), 3u);
  // The sampler sees the outermost kMaxProfDepth frames.
  EXPECT_EQ(snap(slot).size(), kMaxProfDepth);
  // Unwinding the truncated frames restores balance exactly.
  slot.pop();
  slot.pop_tag(t);  // pop_tag on a truncated depth also only moves the count
  slot.pop();
  EXPECT_EQ(snap(slot).size(), kMaxProfDepth);
  for (std::size_t i = 0; i < kMaxProfDepth; ++i) slot.pop();
  EXPECT_TRUE(snap(slot).empty());
}

// --- scopes and bindings -----------------------------------------------------

TEST(ProfScopeTest, RaiiPushesOnTheBoundSlotOnly) {
  ProfSlot slot;
  const TagId t = intern_tag("prof-test/scope");
  {
    ProfScope unbound(t);  // no slot bound: a pointer check, nothing more
    EXPECT_TRUE(snap(slot).empty());
  }
  ProfSlot* prev = bind_prof(&slot);
  EXPECT_EQ(prev, nullptr);
  EXPECT_EQ(bound_prof(), &slot);
  {
    PROF_SCOPE("prof-test/macro");
    ProfScope inner(t);
    EXPECT_EQ(snap(slot).size(), 2u);
    EXPECT_EQ(snap(slot)[0], intern_tag("prof-test/macro"));
    EXPECT_EQ(snap(slot)[1], t);
  }
  EXPECT_TRUE(snap(slot).empty());
  bind_prof(prev);
  EXPECT_EQ(bound_prof(), nullptr);
}

// A scope captures its slot at construction: rebinding mid-scope must not
// unbalance either slot (the epoch runner rebinds between scopes, but the
// guarantee is what makes that safe).
TEST(ProfScopeTest, ScopeSticksToItsConstructionSlot) {
  ProfSlot a;
  ProfSlot b;
  const TagId t = intern_tag("prof-test/rebind");
  ProfSlot* prev = bind_prof(&a);
  {
    ProfScope scope(t);
    bind_prof(&b);
    EXPECT_EQ(snap(a).size(), 1u);
    EXPECT_TRUE(snap(b).empty());
  }
  EXPECT_TRUE(snap(a).empty());  // popped from a, not b
  EXPECT_TRUE(snap(b).empty());
  bind_prof(prev);
}

// --- Tracer span mirroring ---------------------------------------------------

TEST(ProfTracerTest, SpansMirrorIntoTheBoundSlot) {
  telemetry::Tracer tracer;
  ProfSlot slot;
  ProfSlot* prev = bind_prof(&slot);
  const std::uint64_t outer =
      tracer.begin(sim::usec(10), "svc", "prof-test/outer", "svc");
  const std::uint64_t inner =
      tracer.begin(sim::usec(20), "svc", "prof-test/inner", "svc");
  EXPECT_EQ(snap(slot), (std::vector<TagId>{intern_tag("prof-test/outer"),
                                            intern_tag("prof-test/inner")}));
  // Async spans may close out of order; the mirror pops by tag, not depth.
  tracer.end(sim::usec(30), outer);
  EXPECT_EQ(snap(slot), (std::vector<TagId>{intern_tag("prof-test/inner")}));
  tracer.end(sim::usec(40), inner);
  EXPECT_TRUE(snap(slot).empty());
  bind_prof(prev);
}

TEST(ProfTracerTest, SpansRecordedUnboundNeverTouchASlot) {
  telemetry::Tracer tracer;
  ProfSlot slot;
  // begin() with nothing bound: the span records prof_tag 0...
  const std::uint64_t id =
      tracer.begin(sim::usec(10), "svc", "prof-test/unbound", "svc");
  // ...so a later end() with a slot bound must not pop anything.
  ProfSlot* prev = bind_prof(&slot);
  slot.push(intern_tag("prof-test/resident"));
  tracer.end(sim::usec(20), id);
  EXPECT_EQ(snap(slot).size(), 1u);
  bind_prof(prev);
}

// --- sampler -----------------------------------------------------------------

TEST(ProfSamplerTest, SamplesTheBoundStackIntoFolds) {
  Profiler prof(2, ProfOptions{100});  // 10 kHz so the test stays short
  EXPECT_EQ(prof.interval_us(), 100u);
  EXPECT_NE(prof.slot(0), nullptr);
  EXPECT_NE(prof.slot(1), nullptr);
  EXPECT_EQ(prof.slot(2), nullptr);  // out-of-range: bind-unconditionally API
  prof.slot(0)->push(intern_tag("prof-test/sampled"));
  prof.start();
  prof.start();  // idempotent
  // Wait until the sampler demonstrably ticked a few times.
  for (int i = 0; i < 200 && prof.samples() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  prof.stop();
  EXPECT_GE(prof.samples(), 5u);
  prof.slot(0)->pop();

  const ProfileData data = prof.collect();
  EXPECT_EQ(data.slots, 2u);
  EXPECT_EQ(data.samples, prof.samples());
  EXPECT_EQ(data.truncated, 0u);
  ASSERT_EQ(data.rows.size(), 1u);  // slot 1 stayed empty: no row
  EXPECT_EQ(data.rows[0].shard, 0u);
  EXPECT_EQ(data.rows[0].stack, "prof-test/sampled");
  EXPECT_GE(data.rows[0].count, 5u);
}

TEST(ProfSamplerTest, IntervalIsClampedAgainstBusySpin) {
  Profiler prof(1, ProfOptions{1});
  EXPECT_EQ(prof.interval_us(), 50u);
}

TEST(ProfOptionsTest, EnvOverrideParsesPositiveIntegersOnly) {
  ASSERT_EQ(setenv("VDAP_PROF_INTERVAL_US", "250", 1), 0);
  EXPECT_EQ(ProfOptions::from_env().interval_us, 250u);
  ASSERT_EQ(setenv("VDAP_PROF_INTERVAL_US", "nonsense", 1), 0);
  EXPECT_EQ(ProfOptions::from_env().interval_us, ProfOptions{}.interval_us);
  ASSERT_EQ(setenv("VDAP_PROF_INTERVAL_US", "0", 1), 0);
  EXPECT_EQ(ProfOptions::from_env().interval_us, ProfOptions{}.interval_us);
  ASSERT_EQ(unsetenv("VDAP_PROF_INTERVAL_US"), 0);
  EXPECT_EQ(ProfOptions::from_env().interval_us, ProfOptions{}.interval_us);
}

// --- artifact round trip -----------------------------------------------------

ProfileData sample_profile() {
  ProfileData data;
  data.interval_us = 1000;
  data.samples = 100;
  data.slots = 2;
  data.truncated = 0;
  data.rows.push_back({0, "sim/epoch", 10});
  data.rows.push_back({0, "sim/epoch;ingest/decode", 30});
  data.rows.push_back({1, "pool/wait", 40});
  return data;
}

TEST(ProfArtifactTest, JsonlRoundTripsExactly) {
  const ProfileData data = sample_profile();
  const std::string jsonl = profile_jsonl(data);
  // Meta first, then rows sorted by (shard, stack), keys in fixed order.
  EXPECT_EQ(jsonl.substr(0, jsonl.find('\n')),
            "{\"interval_us\":1000,\"samples\":100,\"slots\":2,"
            "\"truncated\":0}");
  ProfileData parsed;
  std::string error;
  ASSERT_TRUE(parse_profile_jsonl(jsonl, &parsed, &error)) << error;
  EXPECT_EQ(parsed.interval_us, data.interval_us);
  EXPECT_EQ(parsed.samples, data.samples);
  EXPECT_EQ(parsed.slots, data.slots);
  ASSERT_EQ(parsed.rows.size(), 3u);
  EXPECT_EQ(parsed.rows[1].stack, "sim/epoch;ingest/decode");
  EXPECT_EQ(parsed.rows[1].count, 30u);
  // Re-serializing reproduces the input byte for byte.
  EXPECT_EQ(profile_jsonl(parsed), jsonl);
}

TEST(ProfArtifactTest, ParseDiagnosesMalformedInput) {
  ProfileData data;
  std::string error;
  EXPECT_FALSE(parse_profile_jsonl("", &data, &error));
  EXPECT_NE(error.find("no meta line"), std::string::npos);
  EXPECT_FALSE(parse_profile_jsonl("not json\n", &data, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  const std::string bad_row =
      "{\"interval_us\":1000,\"samples\":1,\"slots\":1,\"truncated\":0}\n"
      "{\"count\":1,\"shard\":0}\n";
  EXPECT_FALSE(parse_profile_jsonl(bad_row, &data, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ProfArtifactTest, FoldedMergesSlotsForFlamegraphs) {
  ProfileData data = sample_profile();
  data.rows.push_back({1, "sim/epoch", 5});  // same stack, other slot
  EXPECT_EQ(profile_folded(data),
            "pool/wait 40\n"
            "sim/epoch 15\n"
            "sim/epoch;ingest/decode 30\n");
}

// --- frame stats and tables --------------------------------------------------

TEST(ProfReportTest, FrameStatsSeparateSelfFromTotal) {
  const std::vector<FrameStat> stats = frame_stats(sample_profile());
  ASSERT_EQ(stats.size(), 3u);
  // Sorted by descending self: pool/wait 40, decode 30, epoch 10.
  EXPECT_EQ(stats[0].frame, "pool/wait");
  EXPECT_EQ(stats[0].self, 40u);
  EXPECT_EQ(stats[0].total, 40u);
  EXPECT_EQ(stats[1].frame, "ingest/decode");
  EXPECT_EQ(stats[1].self, 30u);
  EXPECT_EQ(stats[2].frame, "sim/epoch");
  EXPECT_EQ(stats[2].self, 10u);
  EXPECT_EQ(stats[2].total, 40u);  // on-stack for the decode samples too
}

TEST(ProfReportTest, RecursionCountsOncePerSample) {
  ProfileData data;
  data.interval_us = 1000;
  data.samples = 7;
  data.slots = 1;
  data.rows.push_back({0, "a;a;a", 7});
  const std::vector<FrameStat> stats = frame_stats(data);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].self, 7u);
  EXPECT_EQ(stats[0].total, 7u);  // NOT 21: once per distinct frame per stack
}

TEST(ProfReportTest, TableRendersSharesOfSampledTime) {
  const std::string table = profile_table(sample_profile());
  EXPECT_NE(table.find("pool/wait"), std::string::npos);
  EXPECT_NE(table.find("50.0"), std::string::npos);  // 40 of 80 sampled
  EXPECT_NE(table.find("(sampled)"), std::string::npos);
}

TEST(ProfReportTest, DiffTableNamesTheFramesThatAbsorbedTime) {
  const ProfileData base = sample_profile();
  ProfileData cand = sample_profile();
  cand.rows[1].count = 90;  // decode 30 -> 90: its self-share triples
  const std::string diff = profile_diff_table(base, cand);
  EXPECT_NE(diff.find("profile diff"), std::string::npos);
  EXPECT_NE(diff.find("ingest/decode"), std::string::npos);
  // Regressed frames print a '+' delta and sort first.
  const std::size_t decode = diff.find("ingest/decode");
  const std::size_t wait = diff.find("pool/wait");
  ASSERT_NE(decode, std::string::npos);
  ASSERT_NE(wait, std::string::npos);
  EXPECT_LT(decode, wait);
  EXPECT_NE(diff.find("+"), std::string::npos);
}

// --- sampler on/off byte-identity sweep --------------------------------------

core::FleetScaleConfig prof_sweep_config(int shards, int threads, bool prof) {
  core::FleetScaleConfig cfg;
  cfg.vehicles = kSanitized ? 16 : 40;
  cfg.seed = 11;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.run_until = sim::seconds(6);
  cfg.drain = sim::seconds(6);
  cfg.capture = true;        // prove the capture plane doesn't move either
  cfg.ingest_backend = true;  // cover the decode/detect PROF_SCOPE sites
  cfg.prof = prof;
  cfg.prof_opts.interval_us = 200;  // oversample so short runs still fold
  return cfg;
}

TEST(ProfSweepTest, SamplerNeverMovesDeterministicOutputs) {
  const core::FleetScaleOutcome base =
      core::run_fleet_scale(prof_sweep_config(1, 1, false));
  EXPECT_TRUE(base.profile_jsonl.empty());
  EXPECT_EQ(base.prof_samples, 0u);

  for (int shards : {1, 2, 8}) {
    for (int threads : {1, 2, 8}) {
      const core::FleetScaleOutcome out =
          core::run_fleet_scale(prof_sweep_config(shards, threads, true));
      // Every deterministic plane is byte-identical with the sampler on.
      EXPECT_EQ(out.digest, base.digest)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(out.summary, base.summary);
      EXPECT_EQ(out.chrome_trace, base.chrome_trace)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(out.metrics_jsonl, base.metrics_jsonl)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(out.ingest_summary, base.ingest_summary);
      // And the wall-plane artifact actually materialized.
      EXPECT_GT(out.prof_samples, 0u)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_FALSE(out.profile_jsonl.empty());
      EXPECT_FALSE(out.profile_folded.empty());
      ProfileData parsed;
      std::string error;
      ASSERT_TRUE(parse_profile_jsonl(out.profile_jsonl, &parsed, &error))
          << error;
      EXPECT_EQ(parsed.samples, out.prof_samples);
      // Slot layout (ShardedSimulator::set_prof): shards + coordinator +
      // one per pool worker (the runner clamps threads to the shard count).
      EXPECT_EQ(parsed.slots,
                static_cast<std::size_t>(shards + 1 + std::min(shards, threads)));
    }
  }
}

}  // namespace
