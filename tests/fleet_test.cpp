// Fleet telemetry suite (`fleet` ctest label): the downsampling
// time-series store, the wire format, the aggregator's dedup/reorder/MAD
// machinery, and the two end-to-end scenarios ISSUE 5 gates on — a canned
// compute fault on one vehicle is flagged as exactly that vehicle
// (byte-identically per (seed, plan)), and shipper loss accounting stays
// exact under shipping-network impairment.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/fleet.hpp"
#include "net/impair.hpp"
#include "telemetry/fleet/aggregator.hpp"
#include "telemetry/fleet/shipper.hpp"
#include "telemetry/fleet/tsdb.hpp"
#include "telemetry/fleet/wire.hpp"

namespace vdap {
namespace {

using telemetry::fleet::FleetAggregator;
using telemetry::fleet::FleetAnomaly;
using telemetry::fleet::TimeSeriesStore;
using telemetry::fleet::WireFrame;
using telemetry::fleet::WireHealthEvent;
using telemetry::fleet::wire_decode;
using telemetry::fleet::wire_encode;

// --- time-series store ------------------------------------------------------

TEST(Tsdb, BucketsCountSumMinMax) {
  TimeSeriesStore store;
  store.observe("m", sim::msec(10), 5.0);
  store.observe("m", sim::msec(20), 1.0);
  store.observe("m", sim::msec(150), 9.0);
  const auto* raw = store.buckets("m", TimeSeriesStore::Tier::kRaw);
  ASSERT_NE(raw, nullptr);
  ASSERT_EQ(raw->size(), 2u);
  EXPECT_EQ((*raw)[0].start, 0);
  EXPECT_EQ((*raw)[0].count, 2u);
  EXPECT_DOUBLE_EQ((*raw)[0].sum, 6.0);
  EXPECT_DOUBLE_EQ((*raw)[0].min, 1.0);
  EXPECT_DOUBLE_EQ((*raw)[0].max, 5.0);
  EXPECT_EQ((*raw)[1].start, sim::msec(100));
  EXPECT_EQ(store.total_count("m"), 3u);
  EXPECT_DOUBLE_EQ(store.total_sum("m"), 15.0);
  EXPECT_EQ(store.latest("m"), sim::msec(150));
}

TEST(Tsdb, DownsamplingCascadeConservesSamples) {
  TimeSeriesStore::Options opts;
  opts.raw_buckets = 4;
  opts.mid_buckets = 3;
  opts.coarse_buckets = 2;
  TimeSeriesStore store(opts);
  // One sample per 100 ms bucket for 60 s: forces raw→mid→coarse→evict.
  const int samples = 600;
  for (int i = 0; i < samples; ++i) {
    store.observe("m", sim::msec(100) * i, static_cast<double>(i));
  }
  EXPECT_EQ(store.total_count("m"), static_cast<std::size_t>(samples));
  EXPECT_GT(store.evicted_buckets("m"), 0u);
  std::size_t retained = 0;
  for (auto tier : {TimeSeriesStore::Tier::kRaw, TimeSeriesStore::Tier::kMid,
                    TimeSeriesStore::Tier::kCoarse}) {
    const auto* buckets = store.buckets("m", tier);
    ASSERT_NE(buckets, nullptr);
    EXPECT_LE(buckets->size(),
              tier == TimeSeriesStore::Tier::kRaw    ? opts.raw_buckets
              : tier == TimeSeriesStore::Tier::kMid ? opts.mid_buckets
                                                     : opts.coarse_buckets);
    for (const auto& b : *buckets) retained += b.count;
  }
  // Conservation: every sample is retained in some tier or counted evicted.
  EXPECT_EQ(retained + store.evicted_samples("m"),
            static_cast<std::size_t>(samples));
}

TEST(Tsdb, RangeSummarizeAndQuantiles) {
  TimeSeriesStore store;
  for (int i = 0; i < 100; ++i) {
    store.observe("lat", sim::msec(50) * i, 10.0 + i);
  }
  auto all = store.summarize("lat", 0, sim::kTimeMax);
  EXPECT_EQ(all.count, 100u);
  EXPECT_DOUBLE_EQ(all.min, 10.0);
  EXPECT_DOUBLE_EQ(all.max, 109.0);
  // A window that covers only the tail.
  auto tail = store.summarize("lat", sim::msec(50) * 90, sim::kTimeMax);
  EXPECT_LE(tail.count, 12u);
  EXPECT_GE(tail.count, 10u);
  EXPECT_GE(tail.mean(), 99.0);
  const double p50 = store.quantile("lat", 0.50);
  EXPECT_GE(p50, 40.0);
  EXPECT_LE(p50, 80.0);
  EXPECT_GE(store.quantile("lat", 0.99), store.quantile("lat", 0.5));
}

TEST(Tsdb, OutOfOrderAndRejects) {
  TimeSeriesStore store;
  EXPECT_TRUE(store.observe("m", sim::seconds(5), 1.0));
  EXPECT_TRUE(store.observe("m", sim::seconds(1), 2.0));  // late arrival
  EXPECT_FALSE(store.observe("m", sim::seconds(2), std::nan("")));
  EXPECT_FALSE(store.observe("m", -1, 3.0));
  EXPECT_EQ(store.rejected(), 2u);
  EXPECT_EQ(store.total_count("m"), 2u);
  const auto* raw = store.buckets("m", TimeSeriesStore::Tier::kRaw);
  ASSERT_NE(raw, nullptr);
  ASSERT_EQ(raw->size(), 2u);
  EXPECT_LT((*raw)[0].start, (*raw)[1].start);  // kept sorted
}

// --- wire format ------------------------------------------------------------

WireFrame sample_frame() {
  WireFrame f;
  f.vehicle = "cav-3";
  f.seq = 7;
  f.created = sim::seconds(12);
  f.counters["svc.ok"] = 4;
  f.gauges["queue"] = 2.5;
  f.samples["lat_ms"] = {{sim::seconds(11), 12.5}, {sim::seconds(12), 14.0}};
  WireHealthEvent ev;
  ev.at = sim::seconds(11);
  ev.kind = "latency-breach";
  ev.severity = "warning";
  ev.service = "license-plate";
  ev.observed = 900.0;
  ev.target = 700.0;
  ev.implicated_tier = "on-board";
  f.events.push_back(ev);
  return f;
}

TEST(Wire, RoundTrip) {
  const WireFrame f = sample_frame();
  const std::string line = wire_encode(f);
  std::string error;
  auto back = wire_decode(line, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->vehicle, f.vehicle);
  EXPECT_EQ(back->seq, f.seq);
  EXPECT_EQ(back->created, f.created);
  EXPECT_EQ(back->counters, f.counters);
  EXPECT_EQ(back->gauges, f.gauges);
  EXPECT_EQ(back->samples, f.samples);
  ASSERT_EQ(back->events.size(), 1u);
  EXPECT_EQ(back->events[0].kind, "latency-breach");
  EXPECT_EQ(back->events[0].service, "license-plate");
  EXPECT_EQ(back->events[0].implicated_tier, "on-board");
  // Deterministic bytes: encoding the decoded frame reproduces the line.
  EXPECT_EQ(wire_encode(*back), line);
}

TEST(Wire, UnknownFieldsTolerated) {
  std::string error;
  auto f = wire_decode(
      R"({"v":"cav-1","seq":2,"t":1000,"future_field":{"x":1},"counters":{"a":1}})",
      &error);
  ASSERT_TRUE(f.has_value()) << error;
  EXPECT_EQ(f->vehicle, "cav-1");
  EXPECT_EQ(f->counters.at("a"), 1);
}

TEST(Wire, MalformedInputsAreCleanErrors) {
  const char* cases[] = {
      "not json at all",
      "[1,2,3]",
      R"({"seq":1,"t":0})",                         // missing vehicle
      R"({"v":"","seq":1,"t":0})",                  // empty vehicle
      R"({"v":"cav-0","seq":0,"t":0})",             // non-positive seq
      R"({"v":"cav-0","seq":1})",                   // missing t
      R"({"v":"cav-0","seq":1,"t":0,"counters":3})",
      R"({"v":"cav-0","seq":1,"t":0,"counters":{"a":1.5}})",
      R"({"v":"cav-0","seq":1,"t":0,"gauges":{"a":"x"}})",
      R"({"v":"cav-0","seq":1,"t":0,"samples":{"m":[[1]]}})",
      R"({"v":"cav-0","seq":1,"t":0,"samples":{"m":[[1,"x"]]}})",
      R"({"v":"cav-0","seq":1,"t":0,"events":[{"at":1}]})",
      R"({"v":"cav-0","seq":1,"t":0,"samples":{"m":[[1,2)",  // truncated
  };
  for (const char* line : cases) {
    std::string error;
    auto f = wire_decode(line, &error);
    EXPECT_FALSE(f.has_value()) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

// --- aggregator -------------------------------------------------------------

WireFrame frame_for(const std::string& vehicle, std::uint64_t seq,
                    sim::SimTime at, double latency) {
  WireFrame f;
  f.vehicle = vehicle;
  f.seq = seq;
  f.created = at;
  f.samples["lat_ms"] = {{at, latency}};
  return f;
}

TEST(Aggregator, DuplicatesAndReorderingTolerated) {
  FleetAggregator agg;
  EXPECT_TRUE(agg.ingest(frame_for("cav-0", 1, sim::seconds(1), 10)));
  EXPECT_TRUE(agg.ingest(frame_for("cav-0", 3, sim::seconds(3), 10)));
  EXPECT_TRUE(agg.ingest(frame_for("cav-0", 2, sim::seconds(2), 10)));  // late
  EXPECT_FALSE(agg.ingest(frame_for("cav-0", 2, sim::seconds(2), 10)));  // dup
  EXPECT_FALSE(agg.ingest(frame_for("cav-0", 1, sim::seconds(1), 10)));  // dup
  EXPECT_EQ(agg.frames_ingested(), 3u);
  EXPECT_EQ(agg.duplicates(), 2u);
  EXPECT_EQ(agg.reordered(), 1u);
  EXPECT_EQ(agg.lost_frames(), 0u);
  // A gap: seq 6 arrives, 4 and 5 never do.
  EXPECT_TRUE(agg.ingest(frame_for("cav-0", 6, sim::seconds(6), 10)));
  EXPECT_EQ(agg.lost_frames(), 2u);
  // Duplicate ingestion does not double-count samples.
  EXPECT_EQ(agg.fleet_store().total_count("lat_ms"), 4u);
}

TEST(Aggregator, MalformedLinesCountedNotFatal) {
  FleetAggregator agg;
  std::string error;
  EXPECT_FALSE(agg.ingest_wire("{{{{", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(agg.ingest_wire(wire_encode(frame_for("cav-0", 1, 1000, 5))));
  EXPECT_EQ(agg.decode_errors(), 1u);
  EXPECT_EQ(agg.frames_ingested(), 1u);
}

TEST(Aggregator, MadDetectorFlagsTheDeviantVehicleOnly) {
  FleetAggregator::Options opts;
  opts.min_vehicles = 3;
  opts.detect_window = sim::seconds(30);
  FleetAggregator agg(opts);
  // Five vehicles, 20 frames each: cav-3 runs 3x slower than the pack.
  std::uint64_t seq = 0;
  for (int round = 0; round < 20; ++round) {
    ++seq;
    for (int v = 0; v < 5; ++v) {
      const std::string name = "cav-" + std::to_string(v);
      const double jitter = 0.1 * ((round + v) % 3);
      const double latency = (v == 3 ? 300.0 : 100.0) + jitter;
      agg.ingest(frame_for(name, seq, sim::seconds(1) * (round + 1), latency));
    }
  }
  ASSERT_FALSE(agg.anomalies().empty());
  for (const FleetAnomaly& a : agg.anomalies()) {
    EXPECT_EQ(a.vehicle, "cav-3");
    EXPECT_EQ(a.metric, "lat_ms");
    EXPECT_GT(a.score, 3.5);
    EXPECT_NEAR(a.fleet_median, 100.0, 5.0);
  }
  EXPECT_EQ(agg.anomalous_vehicles(),
            std::vector<std::string>{std::string("cav-3")});
  // Hysteresis: one transition, not one anomaly per frame.
  EXPECT_LE(agg.anomalies().size(), 2u);
}

TEST(Aggregator, UniformFleetNeverFlags) {
  FleetAggregator agg;
  for (int round = 0; round < 20; ++round) {
    for (int v = 0; v < 5; ++v) {
      agg.ingest(frame_for("cav-" + std::to_string(v),
                           static_cast<std::uint64_t>(round + 1),
                           sim::seconds(1) * (round + 1), 100.0));
    }
  }
  EXPECT_TRUE(agg.anomalies().empty());
  const std::string rollup = agg.rollup_table();
  EXPECT_NE(rollup.find("lat_ms"), std::string::npos);
}

// --- shipper over an impairable topology ------------------------------------

TEST(Shipper, DeliversFramesAndAccountsDrops) {
  sim::Simulator sim(5);
  net::Topology topo(sim);
  net::ImpairmentController imp(topo);
  std::vector<std::string> delivered;
  telemetry::fleet::TelemetryShipper::Options opts;
  opts.max_queue = 4;
  opts.max_attempts = 3;
  opts.backoff_base = sim::msec(100);
  telemetry::fleet::TelemetryShipper shipper(
      sim, "cav-0", topo,
      [&](const std::string& bytes) { delivered.push_back(bytes); }, opts);
  shipper.start();
  sim.every(sim::msec(500), [&]() { shipper.observe("m", 1.0); });

  // Healthy uplink: everything ships.
  sim.run_until(sim::seconds(10));
  EXPECT_GT(shipper.stats().frames_acked, 0u);
  EXPECT_EQ(shipper.stats().frames_dropped, 0u);

  // Tier down long enough to exhaust retries and overflow the queue.
  imp.link_down(net::Tier::kCloud);
  sim.run_until(sim::seconds(40));
  imp.link_up(net::Tier::kCloud);
  sim.run_until(sim::seconds(60));
  shipper.stop();
  shipper.flush_now();
  sim.run_until(sim::seconds(90));

  const auto& s = shipper.stats();
  EXPECT_GT(s.frames_dropped, 0u);
  EXPECT_GT(s.retries, 0u);
  EXPECT_TRUE(shipper.idle());
  // The loss-accounting identity the fleet chaos test also asserts.
  EXPECT_EQ(s.frames_enqueued - s.frames_acked, s.frames_dropped);
  EXPECT_EQ(delivered.size(), s.frames_acked);
  EXPECT_GT(s.wire_bytes, 0u);
}

// --- end-to-end fleet scenarios ---------------------------------------------

core::FleetConfig quick_config(const std::string& tag) {
  core::FleetConfig cfg;
  cfg.vehicles = 5;
  cfg.seed = 11;
  cfg.dir_tag = tag;
  cfg.load_until = sim::seconds(120);
  cfg.run_until = sim::seconds(150);
  cfg.drain = sim::seconds(45);
  return cfg;
}

TEST(Fleet, ComputeOutlierFlagsExactlyTheImpairedVehicle) {
  const sim::FaultPlan plan = core::fleet_compute_outlier_plan(2);
  core::FleetOutcome a = core::run_fleet(plan, quick_config("outlier-a"));
  core::FleetOutcome b = core::run_fleet(plan, quick_config("outlier-b"));

  ASSERT_FALSE(a.anomalies.empty());
  for (const FleetAnomaly& an : a.anomalies) {
    EXPECT_EQ(an.vehicle, "cav-2") << an.metric;
  }
  EXPECT_EQ(a.anomalous_vehicles,
            std::vector<std::string>{std::string("cav-2")});

  // Byte-identical per (seed, plan): the full report and frame stream.
  EXPECT_EQ(a.rollup_table, b.rollup_table);
  EXPECT_EQ(a.anomaly_table, b.anomaly_table);
  EXPECT_EQ(a.vehicle_table, b.vehicle_table);
  EXPECT_EQ(a.frames_jsonl, b.frames_jsonl);
  EXPECT_EQ(a.fault_trace, b.fault_trace);

  // Sanity on the run itself.
  EXPECT_GT(a.releases, 0u);
  EXPECT_EQ(a.releases, a.reports);
  EXPECT_EQ(a.decode_errors, 0u);
  EXPECT_EQ(a.duplicates, 0u);
}

TEST(Fleet, ShipperAccountingExactUnderUplinkChaos) {
  core::FleetConfig cfg = quick_config("uplink");
  cfg.seed = 23;
  cfg.vehicles = 4;
  cfg.shipper.max_queue = 8;  // small queue: overflow drops under outage
  core::FleetOutcome out =
      core::run_fleet(core::fleet_uplink_chaos_plan(), cfg);
  std::uint64_t dropped = 0;
  for (const auto& [name, vs] : out.vehicles) {
    // Exact loss accounting per vehicle after the drain.
    EXPECT_EQ(vs.frames_enqueued - vs.frames_acked, vs.frames_dropped) << name;
    EXPECT_GT(vs.frames_acked, 0u) << name;
    dropped += vs.frames_dropped;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(out.frames_ingested,
            [&] {
              std::uint64_t acked = 0;
              for (const auto& [name, vs] : out.vehicles) {
                acked += vs.frames_acked;
              }
              return acked;
            }());
  EXPECT_EQ(out.duplicates, 0u);
  // Sequence gaps at the aggregator can only come from shipper drops
  // (trailing drops are invisible, hence <=).
  EXPECT_LE(out.lost_frames, dropped);
}

TEST(Fleet, HealthyFleetShipsCleanAndFlagsNobody) {
  core::FleetConfig cfg = quick_config("healthy");
  cfg.seed = 31;
  cfg.vehicles = 4;
  cfg.load_until = sim::seconds(60);
  cfg.run_until = sim::seconds(80);
  sim::FaultPlan none;
  none.name = "none";
  core::FleetOutcome out = core::run_fleet(none, cfg);
  EXPECT_TRUE(out.anomalies.empty()) << out.anomaly_table;
  for (const auto& [name, vs] : out.vehicles) {
    EXPECT_EQ(vs.frames_dropped, 0u) << name;
    EXPECT_EQ(vs.frames_enqueued, vs.frames_acked) << name;
  }
  EXPECT_EQ(out.lost_frames, 0u);
  EXPECT_GT(out.frames_ingested, 0u);
}

}  // namespace
}  // namespace vdap
