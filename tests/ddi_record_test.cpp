#include "ddi/record.hpp"

#include <gtest/gtest.h>

namespace vdap::ddi {
namespace {

DataRecord sample(const std::string& stream = "vehicle/obd") {
  DataRecord r;
  r.stream = stream;
  r.timestamp = sim::seconds(42);
  r.lat = 42.3314;
  r.lon = -83.0458;
  r.payload["speed_mps"] = 13.4;
  r.payload["rpm"] = 2100;
  r.payload["tags"] = json::Value(json::Array{"a", "b"});
  return r;
}

TEST(RecordCodec, RoundTrip) {
  DataRecord r = sample();
  std::vector<std::uint8_t> buf;
  encode(r, buf);
  std::size_t offset = 0;
  auto back = decode(buf, offset);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);
  EXPECT_EQ(offset, buf.size());
}

TEST(RecordCodec, EncodedSizeMatches) {
  DataRecord r = sample();
  std::vector<std::uint8_t> buf;
  encode(r, buf);
  EXPECT_EQ(buf.size(), encoded_size(r));
}

TEST(RecordCodec, MultipleRecordsStreamed) {
  std::vector<std::uint8_t> buf;
  std::vector<DataRecord> records;
  for (int i = 0; i < 10; ++i) {
    DataRecord r = sample("stream/" + std::to_string(i % 3));
    r.timestamp = sim::seconds(i);
    records.push_back(r);
    encode(r, buf);
  }
  std::size_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    auto back = decode(buf, offset);
    ASSERT_TRUE(back.has_value()) << i;
    EXPECT_EQ(*back, records[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(RecordCodec, TruncatedInputRejectedWithoutAdvance) {
  DataRecord r = sample();
  std::vector<std::uint8_t> buf;
  encode(r, buf);
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, buf.size() / 2,
                          buf.size() - 1}) {
    std::vector<std::uint8_t> trunc(buf.begin(),
                                    buf.begin() + static_cast<long>(cut));
    std::size_t offset = 0;
    EXPECT_FALSE(decode(trunc, offset).has_value()) << cut;
    EXPECT_EQ(offset, 0u) << cut;
  }
}

TEST(RecordCodec, CorruptPayloadRejected) {
  DataRecord r = sample();
  std::vector<std::uint8_t> buf;
  encode(r, buf);
  // Smash a byte inside the JSON payload region.
  buf[buf.size() - 3] = 0x01;
  std::size_t offset = 0;
  EXPECT_FALSE(decode(buf, offset).has_value());
}

TEST(RecordCodec, EmptyStreamAndPayload) {
  DataRecord r;
  r.stream = "s";
  std::vector<std::uint8_t> buf;
  encode(r, buf);
  std::size_t offset = 0;
  auto back = decode(buf, offset);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.is_null());
  EXPECT_EQ(back->timestamp, 0);
}

TEST(RecordCodec, UnicodeAndEscapesSurvive) {
  DataRecord r = sample();
  r.payload["note"] = "line\nbreak \"quoted\" caf\xC3\xA9";
  std::vector<std::uint8_t> buf;
  encode(r, buf);
  std::size_t offset = 0;
  auto back = decode(buf, offset);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload.at("note").as_string(),
            "line\nbreak \"quoted\" caf\xC3\xA9");
}

}  // namespace
}  // namespace vdap::ddi
