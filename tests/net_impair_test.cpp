#include "net/impair.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/faults.hpp"

namespace vdap::net {
namespace {

TEST(TierFromString, RoundTripsEveryTier) {
  for (Tier t : kAllTiers) {
    auto parsed = tier_from_string(std::string(to_string(t)));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(tier_from_string("mars-relay").has_value());
}

class ImpairTest : public ::testing::Test {
 protected:
  ImpairTest() : topo_(sim_), imp_(topo_) {}
  sim::Simulator sim_;
  Topology topo_;
  ImpairmentController imp_;
};

TEST_F(ImpairTest, LinkDownWindowsRefcount) {
  ASSERT_TRUE(topo_.available(Tier::kCloud));
  EXPECT_TRUE(imp_.link_down(Tier::kCloud));   // first window: goes down
  EXPECT_FALSE(imp_.link_down(Tier::kCloud));  // overlapping window
  EXPECT_FALSE(topo_.available(Tier::kCloud));
  EXPECT_FALSE(imp_.link_up(Tier::kCloud));  // one window still open
  EXPECT_FALSE(topo_.available(Tier::kCloud));
  EXPECT_TRUE(imp_.link_up(Tier::kCloud));  // last window: back up
  EXPECT_TRUE(topo_.available(Tier::kCloud));
}

TEST_F(ImpairTest, LinkUpRestoresPriorUnavailability) {
  // A neighbor tier the coverage model had NOT made available must stay
  // unavailable after a fault window ends.
  ASSERT_FALSE(topo_.available(Tier::kNeighbor));
  imp_.link_down(Tier::kNeighbor);
  EXPECT_FALSE(imp_.link_up(Tier::kNeighbor));  // "up" = still unreachable
  EXPECT_FALSE(topo_.available(Tier::kNeighbor));
}

TEST_F(ImpairTest, DegradeAndRestoreAreExact) {
  double base_bw = topo_.uplink(Tier::kRsuEdge).bottleneck_mbps();
  std::uint64_t tok = imp_.degrade(Tier::kRsuEdge, 0.25, 0.1);
  EXPECT_DOUBLE_EQ(topo_.uplink(Tier::kRsuEdge).bottleneck_mbps(),
                   base_bw * 0.25);
  EXPECT_DOUBLE_EQ(topo_.tier_bandwidth_factor(Tier::kRsuEdge), 0.25);
  imp_.restore(tok);
  EXPECT_DOUBLE_EQ(topo_.uplink(Tier::kRsuEdge).bottleneck_mbps(), base_bw);
  EXPECT_DOUBLE_EQ(topo_.tier_bandwidth_factor(Tier::kRsuEdge), 1.0);
}

TEST_F(ImpairTest, CellularCollapseComposesWithScenarioCondition) {
  topo_.apply_cellular_condition(0.8, 0.0);  // drive scenario
  std::uint64_t tok = imp_.cellular_collapse(0.5, 0.0);
  EXPECT_DOUBLE_EQ(topo_.cellular_bandwidth_factor(), 0.8 * 0.5);
  imp_.restore(tok);
  // The scenario's own condition survives the fault's end.
  EXPECT_DOUBLE_EQ(topo_.cellular_bandwidth_factor(), 0.8);
}

TEST_F(ImpairTest, StaleTokenRestoreIsNoOp) {
  std::uint64_t tok = imp_.degrade(Tier::kCloud, 0.5, 0.0);
  imp_.restore(tok);
  double bw = topo_.uplink(Tier::kCloud).bottleneck_mbps();
  imp_.restore(tok);     // second restore of the same token
  imp_.restore(999999);  // token never handed out
  EXPECT_DOUBLE_EQ(topo_.uplink(Tier::kCloud).bottleneck_mbps(), bw);
}

TEST_F(ImpairTest, RestoreAllClearsEverything) {
  imp_.link_down(Tier::kCloud);
  imp_.link_down(Tier::kRsuEdge);
  imp_.degrade(Tier::kBaseStationEdge, 0.3, 0.2);
  imp_.cellular_collapse(0.1, 0.5);
  imp_.restore_all();
  EXPECT_TRUE(topo_.available(Tier::kCloud));
  EXPECT_TRUE(topo_.available(Tier::kRsuEdge));
  EXPECT_DOUBLE_EQ(topo_.tier_bandwidth_factor(Tier::kBaseStationEdge), 1.0);
  EXPECT_DOUBLE_EQ(topo_.cellular_bandwidth_factor(), 1.0);
}

TEST_F(ImpairTest, MidFlightLinkDownFailsTransferDeterministically) {
  bool finished = false;
  TransferOutcome outcome;
  topo_.transfer_up(Tier::kCloud, 10 << 20, [&](const TransferOutcome& o) {
    finished = true;
    outcome = o;
  });
  // Kill the tier while the upload is serializing.
  sim_.after(sim::msec(50), [&]() { imp_.link_down(Tier::kCloud); });
  sim_.run_until(sim::minutes(5));
  ASSERT_TRUE(finished);
  EXPECT_FALSE(outcome.delivered);
}

TEST_F(ImpairTest, TransferSurvivesDegradationChangeMidFlight) {
  // Reconfiguring the link mid-transfer must not lose the completion (the
  // old Topology destroyed Link objects on condition changes — a
  // use-after-free under fault injection).
  bool finished = false;
  topo_.transfer_up(Tier::kCloud, 1 << 20,
                    [&](const TransferOutcome& o) { finished = o.delivered; });
  sim_.after(sim::msec(10), [&]() { imp_.degrade(Tier::kCloud, 0.2, 0.0); });
  sim_.after(sim::msec(20), [&]() { topo_.apply_cellular_condition(0.5, 0.1); });
  sim_.run_until(sim::minutes(5));
  EXPECT_TRUE(finished);
}

// --- FaultInjector on its own (handlers wired to the controller) -----------

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : topo_(sim_), imp_(topo_), inj_(sim_) {
    inj_.on(sim::FaultKind::kLinkDown,
            [this](const sim::FaultSpec& f, bool begin) {
              Tier t = *tier_from_string(f.target);
              if (begin) {
                imp_.link_down(t);
              } else {
                imp_.link_up(t);
              }
            });
    inj_.on(sim::FaultKind::kLinkFlap,
            [this](const sim::FaultSpec& f, bool begin) {
              Tier t = *tier_from_string(f.target);
              if (begin) {
                imp_.link_down(t);
              } else {
                imp_.link_up(t);
              }
            });
  }
  sim::Simulator sim_;
  Topology topo_;
  ImpairmentController imp_;
  sim::FaultInjector inj_;
};

TEST_F(FaultInjectorTest, WindowOpensAndCloses) {
  sim::FaultPlan plan;
  plan.name = "one-window";
  sim::FaultSpec f;
  f.name = "cloud-out";
  f.kind = sim::FaultKind::kLinkDown;
  f.target = "cloud";
  f.start = sim::seconds(10);
  f.duration = sim::seconds(5);
  plan.faults.push_back(f);
  inj_.arm(plan);

  sim_.run_until(sim::seconds(12));
  EXPECT_FALSE(topo_.available(Tier::kCloud));
  EXPECT_EQ(inj_.active_faults(), 1);
  sim_.run_until(sim::seconds(20));
  EXPECT_TRUE(topo_.available(Tier::kCloud));
  EXPECT_EQ(inj_.active_faults(), 0);
  ASSERT_EQ(inj_.trace().size(), 2u);
  EXPECT_EQ(inj_.trace()[0].time, sim::seconds(10));
  EXPECT_TRUE(inj_.trace()[0].begin);
  EXPECT_EQ(inj_.trace()[1].time, sim::seconds(15));
  EXPECT_FALSE(inj_.trace()[1].begin);
}

TEST_F(FaultInjectorTest, RecurrenceReplaysTheWindow) {
  sim::FaultPlan plan;
  plan.name = "recurring";
  sim::FaultSpec f;
  f.name = "blip";
  f.kind = sim::FaultKind::kLinkDown;
  f.target = "rsu-edge";
  f.start = sim::seconds(1);
  f.duration = sim::seconds(1);
  f.repeat = 4;
  f.period = sim::seconds(10);
  plan.faults.push_back(f);
  inj_.arm(plan);
  sim_.run_until(sim::minutes(2));
  EXPECT_EQ(inj_.applied(), 4u);
  EXPECT_EQ(inj_.trace().size(), 8u);  // 4 begin + 4 end
  EXPECT_TRUE(topo_.available(Tier::kRsuEdge));
}

TEST(FaultInjectorDeterminism, SameSeedSamePlanSameTrace) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    Topology topo(sim);
    ImpairmentController imp(topo);
    sim::FaultInjector inj(sim);
    inj.on(sim::FaultKind::kLinkFlap,
           [&](const sim::FaultSpec& f, bool begin) {
             Tier t = *tier_from_string(f.target);
             if (begin) {
               imp.link_down(t);
             } else {
               imp.link_up(t);
             }
           });
    inj.arm(sim::plans::flaky_rsu());
    sim.run_until(sim::minutes(10));
    return inj.trace_lines();
  };
  auto a = run_once(42);
  auto b = run_once(42);
  EXPECT_EQ(a, b);
  // Jitter actually randomizes across seeds (not a constant schedule).
  auto c = run_once(43);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorDeterminism, ArmTwiceThrows) {
  sim::Simulator sim;
  sim::FaultInjector inj(sim);
  inj.arm(sim::plans::disk_hiccups());
  EXPECT_THROW(inj.arm(sim::plans::disk_hiccups()), std::logic_error);
}

TEST(FaultPlans, LibraryHasAtLeastFivePlansWithUniqueNames) {
  auto all = sim::plans::all();
  EXPECT_GE(all.size(), 5u);
  std::set<std::string> names;
  for (const auto& p : all) {
    EXPECT_FALSE(p.faults.empty()) << p.name;
    names.insert(p.name);
  }
  EXPECT_EQ(names.size(), all.size());
}

}  // namespace
}  // namespace vdap::net
