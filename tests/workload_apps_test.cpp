#include "workload/apps.hpp"

#include <gtest/gtest.h>

#include "hw/catalog.hpp"

namespace vdap::workload {
namespace {

// Every packaged app must be a valid DAG with sane payloads.
class AllApps : public ::testing::TestWithParam<int> {};

TEST_P(AllApps, ValidDag) {
  auto dags = apps::all();
  const AppDag& dag = dags[static_cast<std::size_t>(GetParam())];
  std::string why;
  EXPECT_TRUE(dag.validate(&why)) << dag.name() << ": " << why;
  EXPECT_FALSE(dag.name().empty());
  EXPECT_GT(dag.total_gflop(), 0.0) << dag.name();
  for (int i = 0; i < dag.size(); ++i) {
    EXPECT_FALSE(dag.task(i).name.empty()) << dag.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, AllApps,
                         ::testing::Range(0, 11));

TEST(Apps, CountMatches) { EXPECT_EQ(apps::all().size(), 11u); }

// Table I reproduction at the model level: running each algorithm's demand
// on the EC2 vCPU spec must give the paper's milliseconds.
TEST(Apps, TableILatenciesOnEc2) {
  auto ec2 = hw::catalog::ec2_vcpu();
  auto run_ms = [&](const AppDag& dag) {
    double total = 0.0;
    for (int i = 0; i < dag.size(); ++i) {
      auto d = ec2.service_time(dag.task(i).cls, dag.task(i).gflop);
      EXPECT_TRUE(d.has_value()) << dag.name();
      total += sim::to_millis(*d);
    }
    return total;
  };
  EXPECT_NEAR(run_ms(apps::lane_detection()), 13.57, 0.01);
  EXPECT_NEAR(run_ms(apps::vehicle_detection_haar()), 269.46, 0.01);
  EXPECT_NEAR(run_ms(apps::vehicle_detection_tf()), 13971.98, 0.01);
}

TEST(Apps, InceptionMatchesCatalogConstant) {
  auto dag = apps::inception_v3();
  EXPECT_DOUBLE_EQ(dag.total_gflop(), hw::kInceptionV3Gflop);
}

TEST(Apps, LicensePlatePipelineIsThreeStageChain) {
  auto dag = apps::license_plate_pipeline();
  ASSERT_EQ(dag.size(), 3);
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
  EXPECT_EQ(dag.task(0).name, "motion-detect");
  EXPECT_EQ(dag.task(2).name, "plate-recognize");
  // Stage outputs shrink along the pipeline (why partial offload saves
  // bandwidth): camera frame > ROI > plate crop > result.
  EXPECT_GT(dag.task(0).input_bytes, dag.task(1).input_bytes);
  EXPECT_GT(dag.task(1).input_bytes, dag.task(2).input_bytes);
  EXPECT_GT(dag.task(2).input_bytes, dag.task(2).output_bytes);
}

TEST(Apps, A3ExtendsPlatePipeline) {
  auto dag = apps::a3_kidnapper_search();
  EXPECT_EQ(dag.size(), 4);
  EXPECT_EQ(dag.task(3).name, "watchlist-match");
  EXPECT_TRUE(dag.validate());
}

TEST(Apps, SafetyStagesArePinned) {
  auto ped = apps::pedestrian_detection();
  bool has_pinned = false;
  for (int i = 0; i < ped.size(); ++i) {
    if (!ped.task(i).offloadable) has_pinned = true;
  }
  EXPECT_TRUE(has_pinned);
  // The pinned stage is the actuation sink.
  EXPECT_FALSE(ped.task(ped.sinks()[0]).offloadable);
}

TEST(Apps, AdasDeadlinesAreTight) {
  EXPECT_LE(apps::pedestrian_detection().qos().deadline,
            sim::from_millis(100));
  EXPECT_LE(apps::lane_detection().qos().deadline, sim::from_millis(50));
  EXPECT_GT(apps::pedestrian_detection().qos().priority,
            apps::infotainment_chunk().qos().priority);
}

TEST(Apps, CategoriesCoverAllFour) {
  bool diag = false, adas = false, info = false, third = false;
  for (const auto& dag : apps::all()) {
    switch (dag.category()) {
      case ServiceCategory::kRealTimeDiagnostics: diag = true; break;
      case ServiceCategory::kAdas: adas = true; break;
      case ServiceCategory::kInfotainment: info = true; break;
      case ServiceCategory::kThirdParty: third = true; break;
    }
  }
  EXPECT_TRUE(diag && adas && info && third);
}

}  // namespace
}  // namespace vdap::workload
