#include "vcu/dsf.hpp"

#include <gtest/gtest.h>

#include "hw/catalog.hpp"
#include "workload/apps.hpp"

namespace vdap::vcu {
namespace {

class DsfTest : public ::testing::Test {
 protected:
  std::unique_ptr<Dsf> make_dsf(std::unique_ptr<Scheduler> sched,
                                DsfOptions opts = {}) {
    return std::make_unique<Dsf>(sim, reg, std::move(sched), opts);
  }

  sim::Simulator sim;
  hw::ComputeDevice cpu{sim, hw::catalog::core_i7_6700()};
  hw::ComputeDevice gpu{sim, hw::catalog::jetson_tx2_maxp()};
  hw::ComputeDevice fpga{sim, hw::catalog::automotive_fpga()};
  hw::ComputeDevice asic{sim, hw::catalog::cnn_asic()};
  ResourceRegistry reg;
};

TEST_F(DsfTest, RequiresScheduler) {
  EXPECT_THROW(Dsf(sim, reg, nullptr), std::invalid_argument);
}

TEST_F(DsfTest, RunsSingleTaskApp) {
  reg.join(&cpu);
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>());
  DagRun run;
  dsf->submit(workload::apps::lane_detection(),
              [&](const DagRun& r) { run = r; });
  sim.run_until();
  EXPECT_TRUE(run.ok);
  EXPECT_TRUE(run.deadline_met);
  ASSERT_EQ(run.tasks.size(), 1u);
  EXPECT_EQ(run.tasks[0].device, "core-i7-6700");
  // 0.10856 GF at 40 GF/s classic-vision = 2.714 ms.
  EXPECT_NEAR(sim::to_millis(run.latency()), 2.714, 0.01);
}

TEST_F(DsfTest, ChainRespectsPrecedence) {
  reg.join(&cpu);
  reg.join(&gpu);
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>());
  DagRun run;
  dsf->submit(workload::apps::license_plate_pipeline(),
              [&](const DagRun& r) { run = r; });
  sim.run_until();
  ASSERT_TRUE(run.ok);
  ASSERT_EQ(run.tasks.size(), 3u);
  EXPECT_LE(run.tasks[0].finished, run.tasks[1].started);
  EXPECT_LE(run.tasks[1].finished, run.tasks[2].started);
}

TEST_F(DsfTest, GreedyEftPicksFastDeviceForCnn) {
  reg.join(&cpu);
  reg.join(&asic);  // 230 GF/s CNN vs CPU 74 GF/s
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>());
  DagRun run;
  dsf->submit(workload::apps::inception_v3(),
              [&](const DagRun& r) { run = r; });
  sim.run_until();
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tasks[0].device, "cnn-asic");
}

TEST_F(DsfTest, GreedyEftSpillsToSlowerDeviceUnderBacklog) {
  reg.join(&cpu);
  reg.join(&asic);
  // Saturate the ASIC first.
  for (int i = 0; i < 8; ++i) {
    asic.submit({hw::TaskClass::kCnnInference, 230.0, 0, nullptr});  // 1 s each
  }
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>());
  DagRun run;
  dsf->submit(workload::apps::inception_v3(),
              [&](const DagRun& r) { run = r; });
  sim.run_until();
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tasks[0].device, "core-i7-6700");  // faster *finish*, not speed
}

TEST_F(DsfTest, CpuOnlyBaselinePinsToCpu) {
  reg.join(&cpu);
  reg.join(&gpu);
  reg.join(&asic);
  auto dsf = make_dsf(std::make_unique<CpuOnlyScheduler>());
  DagRun run;
  dsf->submit(workload::apps::inception_v3(),
              [&](const DagRun& r) { run = r; });
  sim.run_until();
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tasks[0].device, "core-i7-6700");
}

TEST_F(DsfTest, RoundRobinCycles) {
  reg.join(&cpu);
  reg.join(&gpu);
  auto dsf = make_dsf(std::make_unique<RoundRobinScheduler>());
  std::vector<std::string> devices;
  for (int i = 0; i < 4; ++i) {
    dsf->submit(workload::apps::inception_v3(), [&](const DagRun& r) {
      devices.push_back(r.tasks[0].device);
    });
  }
  sim.run_until();
  ASSERT_EQ(devices.size(), 4u);
  // Alternating assignment: two instances land on each device.
  int cpu_count = 0;
  for (const auto& d : devices) cpu_count += d == "core-i7-6700" ? 1 : 0;
  EXPECT_EQ(cpu_count, 2);
}

TEST_F(DsfTest, UnsupportedClassFailsInstance) {
  reg.join(&asic);  // CNN only
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>());
  DagRun run;
  run.ok = true;
  dsf->submit(workload::apps::speech_assistant(),
              [&](const DagRun& r) { run = r; });
  sim.run_until();
  EXPECT_FALSE(run.ok);
  EXPECT_FALSE(run.deadline_met);
  EXPECT_EQ(dsf->failed(), 1u);
  EXPECT_EQ(dsf->in_flight(), 0u);
}

TEST_F(DsfTest, DeviceExitMidTaskRetriesElsewhere) {
  reg.join(&cpu);
  reg.join(&gpu);
  auto dsf = make_dsf(std::make_unique<CpuOnlyScheduler>());
  DagRun run;
  dsf->submit(workload::apps::inception_v3(),
              [&](const DagRun& r) { run = r; });
  // Yank the CPU mid-execution; the task must retry on the GPU.
  sim.after(sim::msec(10), [&] { cpu.set_online(false); });
  sim.run_until();
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.tasks[0].device, "jetson-tx2-maxp");
  EXPECT_GE(run.tasks[0].attempts, 2);
}

TEST_F(DsfTest, ExhaustedRetriesFailTheInstance) {
  reg.join(&cpu);
  auto dsf = make_dsf(std::make_unique<CpuOnlyScheduler>(),
                      DsfOptions{false, {}, 2});
  DagRun run;
  run.ok = true;
  dsf->submit(workload::apps::inception_v3(),
              [&](const DagRun& r) { run = r; });
  sim.after(sim::msec(1), [&] { cpu.set_online(false); });
  sim.run_until();
  EXPECT_FALSE(run.ok);
}

TEST_F(DsfTest, PartitioningSpreadsAcrossDevices) {
  reg.join(&cpu);
  reg.join(&gpu);
  reg.join(&asic);
  DsfOptions opts;
  opts.enable_partitioning = true;
  opts.partition_policy.max_chunk_gflop = 3.0;
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>(), opts);
  DagRun run;
  dsf->submit(workload::apps::inception_v3(),
              [&](const DagRun& r) { run = r; });
  sim.run_until();
  ASSERT_TRUE(run.ok);
  EXPECT_GT(run.tasks.size(), 2u);  // chunks + merge
  std::set<std::string> used;
  for (const auto& t : run.tasks) used.insert(t.device);
  EXPECT_GE(used.size(), 2u);  // genuinely heterogeneous execution
}

TEST_F(DsfTest, PartitioningBeatsSingleDeviceLatency) {
  reg.join(&cpu);
  reg.join(&gpu);
  reg.join(&asic);
  // Unpartitioned on the best single device vs partitioned across all.
  auto base = make_dsf(std::make_unique<GreedyEftScheduler>());
  sim::SimDuration mono = 0;
  base->submit(workload::apps::vehicle_detection_tf(),
               [&](const DagRun& r) { mono = r.latency(); });
  sim.run_until();

  DsfOptions opts;
  opts.enable_partitioning = true;
  opts.partition_policy.max_chunk_gflop = 7.0;
  auto part = make_dsf(std::make_unique<GreedyEftScheduler>(), opts);
  sim::SimDuration split = 0;
  part->submit(workload::apps::vehicle_detection_tf(),
               [&](const DagRun& r) { split = r.latency(); });
  sim.run_until();
  EXPECT_LT(split, mono);
}

TEST_F(DsfTest, HeftPlansWholeDagAndCleansUp) {
  reg.join(&cpu);
  reg.join(&gpu);
  reg.join(&fpga);
  auto fetch = [this](const std::string& svc, hw::TaskClass cls) {
    return reg.candidates(svc, cls);
  };
  auto dsf = make_dsf(std::make_unique<HeftScheduler>(fetch));
  DagRun run;
  dsf->submit(workload::apps::pedestrian_detection(),
              [&](const DagRun& r) { run = r; });
  sim.run_until();
  ASSERT_TRUE(run.ok);
  EXPECT_TRUE(run.deadline_met);
  // Preprocess should land on the FPGA (120 GF/s vs CPU 30 / GPU 35).
  EXPECT_EQ(run.tasks[0].device, "automotive-fpga");
}

TEST_F(DsfTest, ProfilesAggregateAcrossInstances) {
  reg.join(&cpu);
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>());
  for (int i = 0; i < 5; ++i) {
    dsf->submit(workload::apps::lane_detection());
  }
  sim.run_until();
  const auto& profiles = dsf->app_profiles();
  ASSERT_TRUE(profiles.count("lane-detection"));
  const ApplicationProfile& p = profiles.at("lane-detection");
  EXPECT_EQ(p.released, 5u);
  EXPECT_EQ(p.completed, 5u);
  EXPECT_EQ(p.failed, 0u);
  EXPECT_GT(p.latency_ms.mean(), 0.0);
  EXPECT_DOUBLE_EQ(p.miss_rate(), 0.0);
}

TEST_F(DsfTest, PriorityInversionAvoidedOnContention) {
  reg.join(&asic);  // single slot
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>());
  // Fill the ASIC with a long low-priority job, then race a low-priority
  // and a high-priority instance; the high-priority one must start first.
  asic.submit({hw::TaskClass::kCnnInference, 230.0, 0, nullptr});
  sim::SimTime lo_started = 0, hi_started = 0;
  workload::AppDag lo("lo", workload::ServiceCategory::kThirdParty,
                      {0, 1, 0});
  lo.add_task({"x", hw::TaskClass::kCnnInference, 23.0, 0, 0, true});
  workload::AppDag hi("hi", workload::ServiceCategory::kAdas, {0, 9, 0});
  hi.add_task({"y", hw::TaskClass::kCnnInference, 23.0, 0, 0, true});
  dsf->submit(lo, [&](const DagRun& r) { lo_started = r.tasks[0].started; });
  dsf->submit(hi, [&](const DagRun& r) { hi_started = r.tasks[0].started; });
  sim.run_until();
  EXPECT_LT(hi_started, lo_started);
}

TEST_F(DsfTest, MidDagDispatchFailureDoesNotCorruptState) {
  // Regression: a task whose successor has no capable device used to
  // finalize the instance inside the successor loop and then keep using
  // the freed instance (use-after-free). The legacy OBC runs pedestrian
  // preprocessing but cannot run the CNN stage.
  hw::ComputeDevice obc{sim, hw::catalog::legacy_obc()};
  reg.join(&obc);
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>());
  std::vector<bool> oks;
  for (int i = 0; i < 20; ++i) {
    dsf->submit(workload::apps::pedestrian_detection(),
                [&](const DagRun& r) { oks.push_back(r.ok); });
  }
  sim.run_until(sim::minutes(2));
  ASSERT_EQ(oks.size(), 20u);
  for (bool ok : oks) EXPECT_FALSE(ok);  // CNN stage unrunnable
  EXPECT_EQ(dsf->in_flight(), 0u);
  EXPECT_EQ(dsf->failed(), 20u);
}

TEST_F(DsfTest, EftBeatsRoundRobinOnBatchMakespan) {
  // Property: on a heterogeneous board, backlog-aware EFT finishes a batch
  // of identical CNN jobs no later than load-blind round-robin.
  auto run_makespan = [&](std::unique_ptr<Scheduler> sched) {
    sim::Simulator local_sim;
    hw::ComputeDevice c(local_sim, hw::catalog::core_i7_6700());
    hw::ComputeDevice g(local_sim, hw::catalog::jetson_tx2_maxp());
    hw::ComputeDevice a(local_sim, hw::catalog::cnn_asic());
    ResourceRegistry local_reg;
    local_reg.join(&c);
    local_reg.join(&g);
    local_reg.join(&a);
    Dsf local_dsf(local_sim, local_reg, std::move(sched));
    sim::SimTime last = 0;
    for (int i = 0; i < 30; ++i) {
      local_dsf.submit(workload::apps::inception_v3(),
                       [&](const DagRun& r) {
                         last = std::max(last, r.finished);
                       });
    }
    local_sim.run_until(sim::minutes(10));
    return last;
  };
  sim::SimTime eft = run_makespan(std::make_unique<GreedyEftScheduler>());
  sim::SimTime rr = run_makespan(std::make_unique<RoundRobinScheduler>());
  EXPECT_LE(eft, rr);
  EXPECT_GT(eft, 0);
}

TEST_F(DsfTest, RejectsInvalidDag) {
  reg.join(&cpu);
  auto dsf = make_dsf(std::make_unique<GreedyEftScheduler>());
  workload::AppDag empty;
  EXPECT_THROW(dsf->submit(empty), std::invalid_argument);
}

}  // namespace
}  // namespace vdap::vcu
