#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace vdap::util {
namespace {

TEST(Split, DropsEmptyPieces) {
  EXPECT_EQ(split("/a//b/", '/'), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split("", '/'), (std::vector<std::string>{}));
  EXPECT_EQ(split("abc", '/'), (std::vector<std::string>{"abc"}));
}

TEST(SplitKeepEmpty, KeepsEmptyPieces) {
  EXPECT_EQ(split_keep_empty("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_keep_empty(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split_keep_empty("", ','), (std::vector<std::string>{""}));
}

TEST(Join, Joins) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(JoinSplit, RoundTrip) {
  std::vector<std::string> pieces{"v1", "models", "inception"};
  EXPECT_EQ(split(join(pieces, "/"), '/'), pieces);
}

TEST(Affixes, StartsEndsWith) {
  EXPECT_TRUE(starts_with("/v1/models", "/v1"));
  EXPECT_FALSE(starts_with("/v1", "/v1/models"));
  EXPECT_TRUE(ends_with("file.json", ".json"));
  EXPECT_FALSE(ends_with("json", "file.json"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Trim, TrimsWhitespace) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(ToLower, Lowers) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

TEST(Format, FormatsLikePrintf) {
  EXPECT_EQ(format("%s=%d", "x", 5), "x=5");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(HumanBytes, Scales) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.0 KiB");
  EXPECT_EQ(human_bytes(5ull * 1024 * 1024), "5.0 MiB");
  EXPECT_EQ(human_bytes(3ull << 30), "3.0 GiB");
}

}  // namespace
}  // namespace vdap::util
