#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace vdap::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(msec(3), 3000);
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_EQ(minutes(1), 60'000'000);
  EXPECT_EQ(from_seconds(1.5), 1'500'000);
  EXPECT_EQ(from_millis(13.57), 13'570);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(4)), 4.0);
  EXPECT_DOUBLE_EQ(to_millis(msec(7)), 7.0);
  EXPECT_EQ(from_seconds(-0.000001), -1);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  EventId a = q.push(10, [&] { ++fired; });
  q.push(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));  // double cancel is a no-op
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 20);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIdIsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(99));
  EXPECT_EQ(q.next_time(), kTimeMax);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.after(msec(5), [&] { seen.push_back(sim.now()); });
  sim.after(msec(1), [&] { seen.push_back(sim.now()); });
  sim.run_until();
  EXPECT_EQ(seen, (std::vector<SimTime>{msec(1), msec(5)}));
  EXPECT_EQ(sim.now(), msec(5));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  sim.after(10, [&] {
    sim.after(10, [&] {
      sim.after(10, [&] { depth = 3; });
    });
  });
  sim.run_until();
  EXPECT_EQ(depth, 3);
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.after(seconds(1), [&] { ++fired; });
  sim.after(seconds(10), [&] { ++fired; });
  std::size_t n = sim.run_until(seconds(5));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(5));  // clock advanced to the horizon
  sim.run_until(seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventExactlyAtHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.after(seconds(5), [&] { fired = true; });
  sim.run_until(seconds(5));
  EXPECT_TRUE(fired);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.after(100, [&] {
    bool ran = false;
    sim.at(0, [&] { ran = true; });  // in the past -> fires "now"
    (void)ran;
  });
  SimTime at_fire = -1;
  sim.at(50, [] {});
  sim.after(100, [&] { sim.at(10, [&] { at_fire = sim.now(); }); });
  sim.run_until();
  EXPECT_EQ(at_fire, 100);
}

TEST(Simulator, CancelScheduled) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.after(10, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, PeriodicFiresUntilStopped) {
  Simulator sim;
  int count = 0;
  auto handle = sim.every(seconds(1), [&] { ++count; });
  sim.run_until(seconds(5) + 1);
  EXPECT_EQ(count, 6);  // t = 0,1,2,3,4,5 (first_delay defaults to 0)
  handle.stop();
  sim.run_until(seconds(100));
  EXPECT_EQ(count, 6);
}

TEST(Simulator, PeriodicFirstDelay) {
  Simulator sim;
  std::vector<SimTime> at;
  sim.every(seconds(2), [&] { at.push_back(sim.now()); }, seconds(1));
  sim.run_until(seconds(6));
  EXPECT_EQ(at, (std::vector<SimTime>{seconds(1), seconds(3), seconds(5)}));
}

TEST(Simulator, PeriodicSelfStopInsideCallback) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle h = sim.every(10, [&] {
    if (++count == 3) h.stop();
  });
  sim.run_until();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicStopBeforeFirstFiringFiresNothing) {
  Simulator sim;
  int count = 0;
  auto h = sim.every(seconds(5), [&] { ++count; }, seconds(5));
  EXPECT_TRUE(h.active());
  h.stop();  // cancelled before the first tick was ever due
  EXPECT_FALSE(h.active());
  sim.run_until(seconds(60));
  EXPECT_EQ(count, 0);
}

TEST(Simulator, PeriodicStopFromAnotherEventBeforeFirstFiring) {
  Simulator sim;
  int count = 0;
  auto h = sim.every(seconds(10), [&] { ++count; }, seconds(10));
  sim.at(seconds(3), [&] { h.stop(); });
  sim.run_until(seconds(60));
  EXPECT_EQ(count, 0);
  EXPECT_FALSE(h.active());
}

TEST(Simulator, PeriodicRejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(sim.every(0, [] {}), std::invalid_argument);
}

TEST(Simulator, StepFiresOne) {
  Simulator sim;
  int fired = 0;
  sim.after(10, [&] { ++fired; });
  sim.after(20, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, AdvanceToGuardsPendingEvents) {
  Simulator sim;
  sim.after(10, [] {});
  EXPECT_THROW(sim.advance_to(20), std::logic_error);
  sim.run_until();
  sim.advance_to(50);
  EXPECT_EQ(sim.now(), 50);
  sim.advance_to(40);  // backwards is a no-op
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, NamedRngStreamsAreStableAndIndependent) {
  Simulator a(123);
  Simulator b(123);
  double a1 = a.rng("chan").uniform();
  a.rng("other").uniform();  // extra stream does not disturb "chan"
  double a2 = a.rng("chan").uniform();
  double b1 = b.rng("chan").uniform();
  double b2 = b.rng("chan").uniform();
  EXPECT_DOUBLE_EQ(a1, b1);
  EXPECT_DOUBLE_EQ(a2, b2);
  Simulator c(124);
  EXPECT_NE(a1, c.rng("chan").uniform());
}

TEST(Simulator, DeterministicReplay) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::pair<SimTime, double>> trace;
    sim.every(msec(10), [&] {
      trace.emplace_back(sim.now(), sim.rng("x").uniform());
    });
    sim.run_until(seconds(1));
    return trace;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

}  // namespace
}  // namespace vdap::sim
