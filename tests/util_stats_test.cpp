#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace vdap::util {
namespace {

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(Summary, MergeMatchesSequential) {
  RngStream rng(7);
  Summary whole;
  Summary a;
  Summary b;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (int i = 100; i >= 1; --i) h.add(i);  // unsorted insert
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.p50(), 50.0, 1.0);
  EXPECT_NEAR(h.p95(), 95.0, 1.0);
  EXPECT_NEAR(h.p99(), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(Histogram, EmptyAndClear) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
  h.add(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  RngStream rng(11);
  for (int i = 0; i < 500; ++i) h.add(rng.exponential(10.0));
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Histogram, SampleCapKeepsExactMomentsWhileThinning) {
  Histogram h;
  h.set_sample_cap(64);
  for (int i = 1; i <= 10000; ++i) h.add(i);
  // count/mean/min/max/sum are exact no matter how hard the store thinned.
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_DOUBLE_EQ(h.mean(), 5000.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10000.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10000.0 * 10001.0 / 2.0);
  // Memory stays bounded by the cap.
  EXPECT_LE(h.retained(), 64u);
  EXPECT_GT(h.retained(), 0u);
  // Quantiles come from the uniform subsample: approximate but sane.
  EXPECT_NEAR(h.p50(), 5000.0, 1000.0);
  EXPECT_GE(h.p95(), h.p50());
  // The exact extremes still anchor q=0 / q=1.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10000.0);
}

TEST(Histogram, SampleCapAppliesRetroactively) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(i);
  EXPECT_EQ(h.retained(), 1000u);
  h.set_sample_cap(100);
  EXPECT_LE(h.retained(), 100u);
  EXPECT_EQ(h.count(), 1000u);  // exact totals untouched
}

TEST(Histogram, ThinningIsDeterministic) {
  auto build = []() {
    Histogram h;
    h.set_sample_cap(32);
    for (int i = 0; i < 5000; ++i) h.add((i * 37) % 1000);
    return h;
  };
  Histogram a = build();
  Histogram b = build();
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
  }
  EXPECT_EQ(a.retained(), b.retained());
}

TEST(Histogram, MergeCombinesExactMoments) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 50; ++i) a.add(i);
  for (int i = 51; i <= 100; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.mean(), 50.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_NEAR(a.p50(), 50.0, 1.0);

  // Merging into an empty histogram copies the other's stats.
  Histogram empty;
  empty.merge(a);
  EXPECT_EQ(empty.count(), 100u);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  // And merging an empty one changes nothing.
  a.merge(Histogram{});
  EXPECT_EQ(a.count(), 100u);
}

// Percentile-accuracy bounds (DESIGN.md §6): the SLO evaluator judges p95
// over capped windows, so thinning error must stay a small fraction of the
// value range. A permutation of 1..N makes the exact quantiles known.
TEST(Histogram, PercentileAccuracyBoundsUnderThinning) {
  constexpr int kN = 20000;
  Histogram exact;
  Histogram thinned;
  thinned.set_sample_cap(512);
  for (int i = 0; i < kN; ++i) {
    double v = static_cast<double>((i * 7919) % kN + 1);  // permutation
    exact.add(v);
    thinned.add(v);
  }
  EXPECT_NEAR(exact.p50(), kN * 0.50, 2.0);
  EXPECT_NEAR(exact.p95(), kN * 0.95, 2.0);
  EXPECT_NEAR(exact.p99(), kN * 0.99, 2.0);

  EXPECT_LE(thinned.retained(), 512u);
  // The thinned subsample is uniform over arrival order, so each quantile
  // stays within 5% of the range of its exact value.
  EXPECT_NEAR(thinned.p50(), exact.p50(), kN * 0.05);
  EXPECT_NEAR(thinned.p95(), exact.p95(), kN * 0.05);
  EXPECT_NEAR(thinned.p99(), exact.p99(), kN * 0.05);
  // The tracked extremes stay exact.
  EXPECT_DOUBLE_EQ(thinned.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(thinned.quantile(1.0), kN);
}

TEST(Histogram, PercentileAccuracyBoundsAfterMergingThinnedAndUnthinned) {
  constexpr int kN = 20000;  // per part; union covers 1..2N
  Histogram thinned_evens;
  thinned_evens.set_sample_cap(512);
  Histogram exact_odds;
  for (int i = 0; i < kN; ++i) {
    int k = (i * 7919) % kN;
    thinned_evens.add(static_cast<double>(2 * k + 2));
    exact_odds.add(static_cast<double>(2 * k + 1));
  }

  // Uncapped destination: both parts sample the same 1..2N range, so the
  // pooled quantiles track the union even though the thinned part
  // contributes far fewer retained samples.
  Histogram merged = exact_odds;
  merged.merge(thinned_evens);
  EXPECT_EQ(merged.count(), 2u * kN);
  EXPECT_NEAR(merged.p50(), kN, 2 * kN * 0.05);
  EXPECT_NEAR(merged.p95(), 2 * kN * 0.95, 2 * kN * 0.05);
  EXPECT_NEAR(merged.p99(), 2 * kN * 0.99, 2 * kN * 0.05);

  // Capped destination: the merge re-thins to the cap without losing the
  // accuracy bound or the exact moments.
  Histogram capped = thinned_evens;
  capped.merge(exact_odds);
  EXPECT_LE(capped.retained(), 512u);
  EXPECT_EQ(capped.count(), 2u * kN);
  EXPECT_DOUBLE_EQ(capped.min(), 1.0);
  EXPECT_DOUBLE_EQ(capped.max(), 2.0 * kN);
  EXPECT_NEAR(capped.p50(), kN, 2 * kN * 0.05);
  EXPECT_NEAR(capped.p95(), 2 * kN * 0.95, 2 * kN * 0.05);
  EXPECT_NEAR(capped.p99(), 2 * kN * 0.99, 2 * kN * 0.05);
}

TEST(Histogram, MergeRespectsCapOfTheDestination) {
  Histogram a;
  a.set_sample_cap(64);
  Histogram b;
  for (int i = 0; i < 1000; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_LE(a.retained(), 64u);
}

// add_bulk's contract (columnar block sealing leans on it): bit-identical
// to the same values fed through repeated add() — same exact moments,
// same retained samples, same quantiles — across cap and stride
// transitions.
void expect_same_state(const Histogram& bulk, const Histogram& loop) {
  EXPECT_EQ(bulk.count(), loop.count());
  EXPECT_EQ(bulk.retained(), loop.retained());
  EXPECT_EQ(bulk.sum(), loop.sum());  // exact: same fp fold order
  EXPECT_EQ(bulk.min(), loop.min());
  EXPECT_EQ(bulk.max(), loop.max());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(bulk.quantile(q), loop.quantile(q)) << "q=" << q;
  }
}

TEST(Histogram, AddBulkMatchesRepeatedAddUncapped) {
  RngStream rng(41);
  std::vector<double> xs;
  for (int i = 0; i < 777; ++i) xs.push_back(rng.normal(10.0, 4.0));
  Histogram bulk;
  Histogram loop;
  bulk.add_bulk(xs.data(), xs.size());
  for (double x : xs) loop.add(x);
  expect_same_state(bulk, loop);
  // Empty and single-element bulks are fine too.
  bulk.add_bulk(xs.data(), 0);
  bulk.add_bulk(xs.data(), 1);
  loop.add(xs[0]);
  expect_same_state(bulk, loop);
}

TEST(Histogram, AddBulkMatchesRepeatedAddAcrossThinningBoundary) {
  RngStream rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  // Cap 256: the stream crosses several cap-fill / stride-doubling
  // transitions, and the bulk spans them mid-call.
  Histogram bulk;
  bulk.set_sample_cap(256);
  Histogram loop;
  loop.set_sample_cap(256);
  bulk.add_bulk(xs.data(), 300);            // crosses the first thinning
  bulk.add_bulk(xs.data() + 300, 1700);     // crosses several more
  for (double x : xs) loop.add(x);
  expect_same_state(bulk, loop);
  EXPECT_LE(bulk.retained(), 256u);
  EXPECT_EQ(bulk.count(), 2000u);
}

TEST(Histogram, AddBulkThenMergeMatchesAddThenMerge) {
  RngStream rng(43);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(5.0, 2.0));
  for (int i = 0; i < 400; ++i) ys.push_back(rng.normal(9.0, 3.0));
  Histogram bulk_a;
  Histogram bulk_b;
  bulk_a.set_sample_cap(128);
  bulk_b.set_sample_cap(128);
  bulk_a.add_bulk(xs.data(), xs.size());
  bulk_b.add_bulk(ys.data(), ys.size());
  bulk_a.merge(bulk_b);
  Histogram loop_a;
  Histogram loop_b;
  loop_a.set_sample_cap(128);
  loop_b.set_sample_cap(128);
  for (double x : xs) loop_a.add(x);
  for (double y : ys) loop_b.add(y);
  loop_a.merge(loop_b);
  expect_same_state(bulk_a, loop_a);
}

TEST(CounterSet, MergeAddsAndResetClears) {
  CounterSet a;
  CounterSet b;
  a.inc("x", 2);
  b.inc("x", 3);
  b.inc("y", 1);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5);
  EXPECT_EQ(a.get("y"), 1);
  a.reset();
  EXPECT_EQ(a.get("x"), 0);
  EXPECT_TRUE(a.all().empty());
}

TEST(CounterSet, IncrementAndRead) {
  CounterSet c;
  EXPECT_EQ(c.get("x"), 0);
  c.inc("x");
  c.inc("x", 4);
  c.inc("y", 2);
  EXPECT_EQ(c.get("x"), 5);
  EXPECT_EQ(c.get("y"), 2);
  EXPECT_EQ(c.all().size(), 2u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.50"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, NumFormat) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, StructuredAccessors) {
  TextTable t("accessors");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.title(), "accessors");
  ASSERT_EQ(t.header().size(), 2u);
  EXPECT_EQ(t.header()[1], "b");
  ASSERT_EQ(t.rows().size(), 2u);
  EXPECT_EQ(t.rows()[1][0], "3");
}

TEST(TextTable, NoHeaderMeansNoSeparator) {
  TextTable t;
  t.add_row({"just", "rows"});
  std::string s = t.to_string();
  EXPECT_EQ(s.find("=="), std::string::npos);    // no title banner
  EXPECT_EQ(s.find("----"), std::string::npos);  // no header separator
  EXPECT_NE(s.find("just"), std::string::npos);
}

TEST(Rng, DeterministicStreams) {
  RngStream a(42, "alpha");
  RngStream b(42, "alpha");
  RngStream c(42, "beta");
  double av = a.uniform();
  EXPECT_DOUBLE_EQ(av, b.uniform());
  EXPECT_NE(av, c.uniform());
}

TEST(Rng, RangesRespected) {
  RngStream r(3);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
    auto n = r.uniform_int(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
    EXPECT_GE(r.exponential(4.0), 0.0);
    EXPECT_GE(r.normal_min(0.0, 1.0, -0.5), -0.5);
  }
}

TEST(Rng, ChanceExtremes) {
  RngStream r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace vdap::util
