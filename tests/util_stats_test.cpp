#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace vdap::util {
namespace {

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(Summary, MergeMatchesSequential) {
  RngStream rng(7);
  Summary whole;
  Summary a;
  Summary b;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (int i = 100; i >= 1; --i) h.add(i);  // unsorted insert
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.p50(), 50.0, 1.0);
  EXPECT_NEAR(h.p95(), 95.0, 1.0);
  EXPECT_NEAR(h.p99(), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(Histogram, EmptyAndClear) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
  h.add(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  RngStream rng(11);
  for (int i = 0; i < 500; ++i) h.add(rng.exponential(10.0));
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(CounterSet, IncrementAndRead) {
  CounterSet c;
  EXPECT_EQ(c.get("x"), 0);
  c.inc("x");
  c.inc("x", 4);
  c.inc("y", 2);
  EXPECT_EQ(c.get("x"), 5);
  EXPECT_EQ(c.get("y"), 2);
  EXPECT_EQ(c.all().size(), 2u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.50"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, NumFormat) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Rng, DeterministicStreams) {
  RngStream a(42, "alpha");
  RngStream b(42, "alpha");
  RngStream c(42, "beta");
  double av = a.uniform();
  EXPECT_DOUBLE_EQ(av, b.uniform());
  EXPECT_NE(av, c.uniform());
}

TEST(Rng, RangesRespected) {
  RngStream r(3);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
    auto n = r.uniform_int(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
    EXPECT_GE(r.exponential(4.0), 0.0);
    EXPECT_GE(r.normal_min(0.0, 1.0, -0.5), -0.5);
  }
}

TEST(Rng, ChanceExtremes) {
  RngStream r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace vdap::util
