// A3 — Elastic Management (§IV-C): the A3/kidnapper-search polymorphic
// service through a 20-minute commute (city → highway → city, RSU coverage
// coming and going, cellular quality tracking speed). Compares the three
// static pipelines the paper names against the elastic selection.
//
// Expected shape: each static pipeline wins somewhere and loses somewhere
// (onboard wastes the idle edge; remote dies on the highway); elastic
// tracks the per-segment winner and never strands a release.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>
#include <map>

#include "core/platform.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"

namespace {

using namespace vdap;

struct Result {
  util::Histogram latency_ms;
  int ok = 0;
  int failed = 0;
  int misses = 0;
  int released = 0;
  std::map<std::string, int> pipeline_use;
};

/// mode: 0 = elastic (all pipelines), 1 = onboard only, 2 = remote-cloud
/// only, 3 = split-rsu only.
Result run_mode(int mode) {
  sim::Simulator sim(2024);
  core::OpenVdap cav(sim);
  core::DriveScenario scenario(sim, cav.topology(),
                               core::DriveScenario::commute(),
                               &cav.elastic());
  scenario.start();

  // Background perception load pinned on-board (the §I contention story),
  // so where the A3 service runs actually matters.
  auto pedestrian = workload::apps::pedestrian_detection();
  auto detector = workload::apps::vehicle_detection_tf();
  sim.every(sim::msec(20), [&] { cav.dsf().submit(pedestrian); });
  sim.every(sim::msec(150), [&] { cav.dsf().submit(detector); });

  auto svc = edgeos::make_polymorphic_multi(
      workload::apps::a3_kidnapper_search(),
      {net::Tier::kRsuEdge, net::Tier::kCloud});
  if (mode == 1) svc.pipelines = {svc.pipelines[0]};
  if (mode == 2) svc.pipelines = {svc.pipelines[3]};  // remote-cloud
  if (mode == 3) svc.pipelines = {svc.pipelines[2]};  // split-rsu

  Result res;
  sim.every(sim::seconds(2), [&] {
    res.released++;
    cav.elastic().run(svc, [&](const edgeos::ServiceRunReport& r) {
      if (r.ok) {
        res.ok++;
        res.latency_ms.add(sim::to_millis(r.latency()));
        if (!r.deadline_met) res.misses++;
        res.pipeline_use[r.pipeline]++;
      } else {
        res.failed++;
      }
    });
  });
  double total = scenario.total_duration_s();
  sim.run_until(sim::from_seconds(total));
  return res;
}

void print_table() {
  util::TextTable table(
      "A3: polymorphic pipelines vs elastic selection (A3 search, 20-min "
      "commute, release every 2 s)");
  table.set_header({"Mode", "ok", "failed", "mean ms", "p95 ms",
                    "deadline misses"});
  const char* names[] = {"elastic", "static onboard", "static remote-cloud",
                         "static split-rsu"};
  Result elastic_result;
  for (int mode = 0; mode < 4; ++mode) {
    Result r = run_mode(mode);
    if (mode == 0) elastic_result = r;
    table.add_row({names[mode], std::to_string(r.ok),
                   std::to_string(r.failed),
                   util::TextTable::num(r.latency_ms.mean(), 1),
                   util::TextTable::num(r.latency_ms.p95(), 1),
                   std::to_string(r.misses)});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf("Elastic pipeline usage across the commute:\n");
  for (const auto& [pipeline, n] : elastic_result.pipeline_use) {
    std::printf("  %-22s %d runs\n", pipeline.c_str(), n);
  }
  std::printf(
      "Expected shape: elastic matches the best static mode per segment "
      "(uses >1 pipeline)\nand has the fewest failures/misses overall.\n\n");
}

void BM_PipelineEstimation(benchmark::State& state) {
  sim::Simulator sim(7);
  core::OpenVdap cav(sim);
  auto svc = edgeos::make_polymorphic_multi(
      workload::apps::a3_kidnapper_search(),
      {net::Tier::kRsuEdge, net::Tier::kCloud});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cav.elastic().estimate(svc));
  }
}
BENCHMARK(BM_PipelineEstimation);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("elastic");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
