// T1 — Table I reproduction: "THE PERFORMANCE OF AUTONOMOUS DRIVING-RELATED
// ALGORITHMS" on an AWS EC2 node with a 2.4 GHz vCPU.
//
// Paper values: Lane Detection 13.57 ms, Vehicle Detection (Haar) 269.46 ms,
// Vehicle Detection (TensorFlow) 13 971.98 ms; Haar ≈ 51x faster than TF.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "hw/catalog.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"

namespace {

using namespace vdap;

/// End-to-end latency of one release of `dag` on a dedicated EC2 vCPU,
/// through the event-driven device model (not just the analytic formula).
double run_on_ec2_ms(const workload::AppDag& dag) {
  sim::Simulator sim;
  hw::ComputeDevice ec2(sim, hw::catalog::ec2_vcpu());
  sim::SimTime finished = 0;
  // Chain the DAG's tasks sequentially (Table I algorithms are single-task).
  for (int id : dag.topo_order()) {
    const workload::TaskSpec& t = dag.task(id);
    ec2.submit({t.cls, t.gflop, 0, [&](const hw::WorkReport& r) {
                  finished = r.finished;
                }});
  }
  sim.run_until();
  return sim::to_millis(finished);
}

void print_table() {
  util::TextTable table(
      "Table I: autonomous-driving algorithm latency (EC2 2.4 GHz vCPU)");
  table.set_header({"Algorithm", "paper (ms)", "measured (ms)"});
  struct Row {
    const char* name;
    workload::AppDag dag;
    double paper_ms;
  };
  Row rows[] = {
      {"Lane Detection", workload::apps::lane_detection(), 13.57},
      {"Vehicle Detection (Haar)", workload::apps::vehicle_detection_haar(),
       269.46},
      {"Vehicle Detection (TensorFlow)",
       workload::apps::vehicle_detection_tf(), 13971.98},
  };
  double haar_ms = 0, tf_ms = 0;
  for (Row& r : rows) {
    double ms = run_on_ec2_ms(r.dag);
    if (std::string(r.name).find("Haar") != std::string::npos) haar_ms = ms;
    if (std::string(r.name).find("Tensor") != std::string::npos) tf_ms = ms;
    table.add_row({r.name, util::TextTable::num(r.paper_ms, 2),
                   util::TextTable::num(ms, 2)});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Haar vs TensorFlow speedup: paper ~51x, measured %.1fx\n\n",
      tf_ms / haar_ms);
}

// Microbenchmark: wall-clock cost of simulating one Table I release.
void BM_SimulateLaneDetection(benchmark::State& state) {
  auto dag = workload::apps::lane_detection();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_on_ec2_ms(dag));
  }
}
BENCHMARK(BM_SimulateLaneDetection);

void BM_SimulateTfDetection(benchmark::State& state) {
  auto dag = workload::apps::vehicle_detection_tf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_on_ec2_ms(dag));
  }
}
BENCHMARK(BM_SimulateTfDetection);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("table1");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
