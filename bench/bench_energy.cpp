// A8 — the §III-B energy argument: "the pure in-vehicle solution that adds
// different types of processors will result in high power consumption ...
// a serious burden for the on-board power supply unit." The ADAS suite for
// 60 s on three boards:
//   * legacy OBC            — the traditional controller (can't keep up),
//   * reference 1stHEP      — the paper's curated heterogeneous board,
//   * CPU + Tesla V100 rig  — the naive "add a big GPU" fix.
//
// Expected shape: the rig holds deadlines but at hundreds of watts; the
// 1stHEP holds them within tens of watts; the legacy controller fails the
// workload outright.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "hw/board.hpp"
#include "util/stats.hpp"
#include "vcu/dsf.hpp"
#include "workload/generator.hpp"

namespace {

using namespace vdap;

struct Result {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t misses = 0;
  double mean_latency_ms = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double board_max_w = 0.0;
};

Result run_board(void (*populate)(hw::VcuBoard&)) {
  sim::Simulator sim(7);
  hw::VcuBoard board(sim, "board");
  populate(board);
  vcu::ResourceRegistry reg;
  for (const auto& d : board.devices()) reg.join(d.get());
  vcu::Dsf dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>());

  Result res;
  util::Summary latency;
  workload::WorkloadGenerator gen(sim, [&](const workload::Release& rel) {
    dsf.submit(*rel.dag, [&](const vcu::DagRun& run) {
      if (run.ok) {
        ++res.completed;
        latency.add(sim::to_millis(run.latency()));
        if (!run.deadline_met) ++res.misses;
      } else {
        ++res.failed;
      }
    });
  });
  for (auto& s : workload::adas_mix()) gen.add_stream(std::move(s));
  gen.start();
  sim.run_until(sim::minutes(1));
  res.mean_latency_ms = latency.mean();
  res.energy_j = board.energy_joules();
  res.avg_power_w = res.energy_j / 60.0;
  res.board_max_w = board.max_power_w();
  return res;
}

void print_table() {
  util::TextTable table(
      "A8: energy vs capability — ADAS suite for 60 s per board");
  table.set_header({"Board", "max W", "avg W", "energy J", "done", "failed",
                    "misses", "mean ms"});
  struct Row {
    const char* name;
    void (*populate)(hw::VcuBoard&);
  };
  const Row rows[] = {
      {"legacy OBC", hw::populate_legacy_vehicle},
      {"reference 1stHEP", hw::populate_reference_1sthep},
      {"CPU + Tesla V100 rig", hw::populate_power_hungry_rig},
  };
  for (const Row& row : rows) {
    Result r = run_board(row.populate);
    table.add_row({row.name, util::TextTable::num(r.board_max_w, 0),
                   util::TextTable::num(r.avg_power_w, 1),
                   util::TextTable::num(r.energy_j, 0),
                   std::to_string(r.completed), std::to_string(r.failed),
                   std::to_string(r.misses),
                   util::TextTable::num(r.mean_latency_ms, 1)});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: the legacy controller cannot run the suite; the "
      "V100 rig holds\ndeadlines at a 310 W envelope; the curated 1stHEP "
      "holds them under 100 W\n(the section III-B argument for carefully "
      "selected heterogeneous processors).\n\n");
}

void BM_EnergyAccounting(benchmark::State& state) {
  sim::Simulator sim(1);
  hw::ComputeDevice dev(sim, hw::catalog::jetson_tx2_maxp());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev.energy_joules());
  }
}
BENCHMARK(BM_EnergyAccounting);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("energy");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
