// Sharded columnar ingest scaling (DESIGN.md §6g): the fleet TSDB fed
// synthetic wire streams from 1k to 1M frames per simulated second.
//
// Three sections:
//   * A deterministic rate-scaling table — frames, samples, the
//     DDI-queried fleet p95 of the ingested metric, anomaly/detection
//     accounting and columnar storage footprint per ingest rate. The
//     stream values are drawn from the same distribution at every rate,
//     so the queried p95 must stay FLAT from 1k to 1M frames/s: the TSDB
//     neither drops nor distorts under load. Committed as
//     BENCH_ingest.json and held by the bench drift gate (>15% fails).
//   * A deterministic pool before/after table — block-memory allocation
//     vs reuse counts for the same append stream with and without the
//     BlockPool (satellite: pool-allocated hot ingest path).
//   * Wall-clock thread-scaling and pool-speedup tables printed for
//     humans but NOT recorded (wall time is not byte-stable). The
//     thread rows also re-assert byte-identical query output per thread
//     count.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/thread_pool.hpp"
#include "telemetry/fleet/columnar.hpp"
#include "telemetry/fleet/ingest.hpp"
#include "telemetry/fleet/wire.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;
namespace fleet = telemetry::fleet;

constexpr int kBatches = 10;       // 10 × 100 ms epochs = 1 s of load
constexpr int kImpaired = 3;       // one sick vehicle, every rate

std::string veh_name(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "cav-%05d", i);
  return buf;
}

/// One epoch's frames for a fleet shipping `rate` frames per simulated
/// second. Values are a fixed deterministic distribution over [20, 30)
/// regardless of rate (plus one +50 impaired vehicle), so quantiles are
/// comparable across rows.
std::vector<std::string> make_batch(int batch, int vehicles,
                                    int frames_per_vehicle,
                                    std::vector<std::uint64_t>* seq) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(vehicles) *
                static_cast<std::size_t>(frames_per_vehicle));
  const sim::SimTime t0 = sim::msec(100) * (batch + 1);
  for (int i = 0; i < vehicles; ++i) {
    for (int f = 0; f < frames_per_vehicle; ++f) {
      fleet::WireFrame frame;
      frame.vehicle = veh_name(i);
      frame.seq = ++(*seq)[static_cast<std::size_t>(i)];
      frame.created = t0 + sim::usec(3) * f;
      const double value =
          20.0 +
          0.01 * static_cast<double>((i * 131 + static_cast<int>(frame.seq) * 17) % 1000) +
          (i == kImpaired ? 50.0 : 0.0);
      frame.samples["svc.latency_ms"].push_back({frame.created, value});
      lines.push_back(fleet::wire_encode(frame));
    }
  }
  return lines;
}

struct RateRun {
  fleet::ShardedIngestBackend backend;
  double wall_seconds = 0.0;
  explicit RateRun(const fleet::IngestOptions& opts) : backend(opts) {}
};

/// Ingests 1 simulated second of load at `rate` frames/s. Fleet width
/// scales with the rate (rate/100 vehicles, 100 frames each), so the
/// detection columns also document the O(V)-per-barrier cost model.
void run_rate(RateRun* run, int rate) {
  const int vehicles = std::max(8, rate / 100);
  const int per_vehicle_per_batch =
      std::max(1, rate / vehicles / kBatches);
  std::vector<std::uint64_t> seq(static_cast<std::size_t>(vehicles), 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int b = 0; b < kBatches; ++b) {
    const std::vector<std::string> batch =
        make_batch(b, vehicles, per_vehicle_per_batch, &seq);
    std::vector<std::string_view> views(batch.begin(), batch.end());
    run->backend.ingest_batch(views);
  }
  run->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

double queried_p95(const fleet::ShardedIngestBackend& backend) {
  fleet::Query q;
  q.metric = "svc.latency_ms";
  return backend.run_query(q).p95;
}

void print_rate_table() {
  util::TextTable table(
      "sharded ingest scaling — 1 s of load, 10 epoch barriers, 8 shards "
      "(queried p95 must stay flat 1k -> 1M frames/s)");
  table.set_header({"frames/s", "vehicles", "frames", "samples", "p95",
                    "anomalies", "detect passes", "means/pass",
                    "sealed blk", "encoded KB"});
  double p95_min = 0.0;
  double p95_max = 0.0;
  for (int rate : {1000, 10000, 100000, 1000000}) {
    fleet::IngestOptions opts;
    opts.shards = 8;
    opts.threads = sim::ThreadPool::hardware_threads();
    opts.block.block_samples = 32;  // ~3 sealed blocks per vehicle
    RateRun run(opts);
    run_rate(&run, rate);
    const fleet::ShardedIngestBackend& b = run.backend;
    const double p95 = queried_p95(b);
    if (p95_min == 0.0 || p95 < p95_min) p95_min = p95;
    p95_max = std::max(p95_max, p95);
    const fleet::ShardedIngestBackend::PoolStats pool = b.pool_stats();
    table.add_row(
        {std::to_string(rate), std::to_string(b.vehicles().size()),
         std::to_string(b.frames_ingested()),
         std::to_string(b.samples_ingested()), util::TextTable::num(p95),
         std::to_string(b.anomalies().size()),
         std::to_string(b.detect_passes()),
         std::to_string(b.detect_scanned() / std::max<std::uint64_t>(
                                                 b.detect_passes(), 1)),
         std::to_string(pool.sealed_blocks),
         std::to_string(pool.encoded_bytes / 1024)});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  const double spread = (p95_max - p95_min) / p95_max;
  std::printf(
      "Expected shape: one fixed value distribution at every rate, so the\n"
      "queried p95 is flat while frames scale 1000x; exactly one anomaly\n"
      "(the impaired vehicle) per row; means/pass tracks fleet width, not\n"
      "frame count (O(V) per barrier, not O(V) per frame).\n"
      "p95_spread_1k_to_1M=%.1f%% (gate threshold 15%%)\n\n",
      spread * 100.0);
}

/// Satellite: pool-allocated hot path, before/after. Same append stream
/// through ColumnarStores with and without a BlockPool; the committed
/// columns are the (deterministic) allocation vs reuse counts.
void print_pool_table() {
  constexpr int kSeries = 64;
  constexpr int kAppends = 200000;
  fleet::ColumnarSeries::Options opts;
  opts.block_samples = 512;
  opts.max_blocks = 2;  // evictions recycle encode buffers through the pool

  auto fill = [&](fleet::ColumnarStore* store) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < kAppends; ++k) {
      char name[8];
      std::snprintf(name, sizeof name, "m%02d", k % kSeries);
      store->observe(name, sim::usec(50) * k,
                     20.0 + 0.01 * static_cast<double>(k % 1000));
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  fleet::BlockPool pool;
  fleet::ColumnarStore pooled(opts, &pool);
  const double pooled_s = fill(&pooled);
  fleet::ColumnarStore bare(opts, nullptr);
  const double bare_s = fill(&bare);

  std::uint64_t seals = 0;
  for (const std::string& name : pooled.names()) {
    const fleet::ColumnarSeries* s = pooled.series(name);
    seals += s->sealed_blocks() + s->evicted_blocks();
  }

  util::TextTable table(
      "columnar block memory — 200k appends over 64 series, before/after "
      "the ingest BlockPool");
  table.set_header({"mode", "seals", "buffer allocs", "buffer reuses",
                    "column allocs", "column reuses"});
  // Without a pool every seal heap-allocates a fresh encode buffer (one
  // per Sealed block, by construction); with the pool evicted blocks'
  // buffers and released columns come back through the free lists, so
  // steady-state ingest appends into already-grown memory.
  table.add_row({"no pool", std::to_string(seals), std::to_string(seals),
                 "0", "-", "-"});
  table.add_row({"pooled", std::to_string(seals),
                 std::to_string(pool.buffer_allocs()),
                 std::to_string(pool.buffer_reuses()),
                 std::to_string(pool.column_allocs()),
                 std::to_string(pool.column_reuses())});
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: identical seal count both modes; pooled allocations\n"
      "collapse to the free-list working set with the remainder served by\n"
      "reuse. (Wall clock, not committed: pooled %.0f ns/append vs bare "
      "%.0f ns/append.)\n\n",
      pooled_s / kAppends * 1e9, bare_s / kAppends * 1e9);
}

void print_thread_table() {
  const int rate = 100000;
  util::TextTable table(
      "ingest wall clock — 100k frames/s stream per thread count "
      "(not committed: wall time)");
  table.set_header({"threads", "wall s", "frames/s", "identical"});
  std::string reference;
  for (int threads :
       {1, 2, std::max(2, sim::ThreadPool::hardware_threads())}) {
    fleet::IngestOptions opts;
    opts.shards = 8;
    opts.threads = threads;
    RateRun run(opts);
    run_rate(&run, rate);
    const std::string out =
        run.backend.rollup_table() + run.backend.vehicle_table();
    if (reference.empty()) reference = out;
    table.add_row(
        {std::to_string(threads), util::TextTable::num(run.wall_seconds, 3),
         std::to_string(static_cast<long long>(
             static_cast<double>(run.backend.frames_ingested()) /
             run.wall_seconds)),
         out == reference ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Note: wall time includes frame generation + JSON decode; 'identical'\n"
      "re-checks that thread count never changes the query-visible state.\n\n");
}

void BM_IngestBatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  fleet::IngestOptions opts;
  opts.shards = 8;
  opts.threads = threads;
  const int vehicles = 1000;
  std::vector<std::uint64_t> seq(vehicles, 0);
  const std::vector<std::string> batch = make_batch(0, vehicles, 10, &seq);
  const std::vector<std::string_view> views(batch.begin(), batch.end());
  for (auto _ : state) {
    state.PauseTiming();
    fleet::ShardedIngestBackend backend(opts);
    state.ResumeTiming();
    benchmark::DoNotOptimize(backend.ingest_batch(views));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(views.size()));
}
BENCHMARK(BM_IngestBatch)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The bench gate invokes every binary with --benchmark_list_tests to
  // collect only the deterministic tables; the wall-clock sections would
  // be dead weight there (and are not byte-stable anyway).
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_list_tests", 0) == 0) {
      list_only = true;
    }
  }
  vdap::bench::BenchOutput bench_out("ingest");
  print_rate_table();
  print_pool_table();
  if (!list_only) print_thread_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
