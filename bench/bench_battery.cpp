// A12 — the §III-B electric-vehicle energy constraint, closed-loop: a
// BatteryModel meters the VCU's draw against a compute budget and an
// EnergyGovernor flips the elastic manager to the minimum-energy goal when
// the budget runs low ("achieve other goals, such as energy efficiency",
// §IV-C).
//
// Ten minutes of TF vehicle-detection requests (4/s). Expected shape: the governed
// run ends with meaningfully more charge left, paying a bounded latency
// premium after the switch; the ungoverned run burns the budget flat-out.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "core/battery.hpp"
#include "core/platform.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"

namespace {

using namespace vdap;

struct Result {
  util::Summary latency_ms;
  int ok = 0;
  double consumed_j = 0.0;
  double final_soc = 1.0;
  int switches = 0;
  sim::SimTime switched_at = -1;
};

Result run(bool governed) {
  sim::Simulator sim(11);
  core::OpenVdap cav(sim);
  core::BatteryModel battery(sim, cav.board(),
                             {10'000.0, sim::seconds(1)});
  battery.start();
  core::EnergyGovernor governor(sim, battery, cav.elastic(),
                                {0.4, 0.6, sim::seconds(5)});
  Result res;
  if (governed) {
    governor.start();
    governor.on_switch([&](bool saving) {
      if (saving && res.switched_at < 0) res.switched_at = sim.now();
    });
  }

  auto svc = edgeos::make_polymorphic(workload::apps::vehicle_detection_tf(),
                                      net::Tier::kRsuEdge);
  svc.dag.set_qos({0, 3, 0});
  sim.every(sim::msec(250), [&] {
    cav.elastic().run(svc, [&](const edgeos::ServiceRunReport& r) {
      if (r.ok) {
        ++res.ok;
        res.latency_ms.add(sim::to_millis(r.latency()));
      }
    });
  });
  sim.run_until(sim::minutes(10));
  res.consumed_j = battery.consumed_j();
  res.final_soc = battery.soc();
  res.switches = governor.mode_switches();
  return res;
}

void print_table() {
  util::TextTable table(
      "A12: battery-aware offloading — TF detection 4/s for 10 min, 10 kJ "
      "compute budget");
  table.set_header({"Policy", "ok", "mean ms", "consumed J", "final SoC",
                    "switched at"});
  for (bool governed : {false, true}) {
    Result r = run(governed);
    table.add_row(
        {governed ? "energy governor" : "always min-latency",
         std::to_string(r.ok), util::TextTable::num(r.latency_ms.mean(), 1),
         util::TextTable::num(r.consumed_j, 0),
         util::TextTable::num(100.0 * r.final_soc, 1) + "%",
         r.switched_at >= 0
             ? util::TextTable::num(sim::to_seconds(r.switched_at), 0) + " s"
             : "-"});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: the governor trades some latency after the switch "
      "for a flatter\ndischarge curve — more compute budget left at the end "
      "of the drive.\n\n");
}

void BM_GovernorCheck(benchmark::State& state) {
  sim::Simulator sim(1);
  core::OpenVdap cav(sim);
  core::BatteryModel battery(sim, cav.board());
  battery.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(battery.soc());
  }
}
BENCHMARK(BM_GovernorCheck);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("battery");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
