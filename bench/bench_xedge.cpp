// A9 — XEdge scalability: the paper's XEdge (an RSU box) is shared
// infrastructure, not per-vehicle hardware. As more CAVs in range offload
// to the same RSU, its queues grow and the dynamic planner must start
// spilling to the base station / cloud or staying on board.
//
// N vehicles (each with the contended on-board perception load of A1)
// release the heavyweight TF detector once per second for 60 s, all
// sharing ONE RSU server. Expected shape: per-request latency rises with
// fleet size; the dynamic planner's pipeline mix shifts away from the RSU
// as it saturates, keeping the deadline-met rate roughly flat — while a
// forced everyone-to-the-RSU policy degrades.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>
#include <map>
#include <memory>

#include "core/platform.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"

namespace {

using namespace vdap;

struct Result {
  util::Histogram latency_ms;
  int met = 0;
  int total = 0;
  std::map<std::string, int> pipelines;  // dynamic mode only
  double rsu_utilization = 0.0;
};

Result run_fleet(int n_vehicles, bool force_rsu) {
  sim::Simulator sim(42);
  // One shared RSU box for the whole fleet.
  hw::ComputeDevice rsu(sim, hw::catalog::rsu_edge_server());

  std::vector<std::unique_ptr<core::OpenVdap>> fleet;
  for (int v = 0; v < n_vehicles; ++v) {
    core::PlatformConfig cfg;
    cfg.vehicle_name = "cav-" + std::to_string(v);
    cfg.vehicle_secret = 100 + static_cast<std::uint64_t>(v);
    cfg.shared_rsu = &rsu;
    fleet.push_back(std::make_unique<core::OpenVdap>(sim, cfg));
  }

  Result res;
  auto heavy = workload::apps::vehicle_detection_tf();
  auto pedestrian = workload::apps::pedestrian_detection();
  int vi = 0;
  for (auto& cav : fleet) {
    core::OpenVdap* p = cav.get();
    ++vi;
    // Contended on-board perception (same as A1) so offloading matters.
    auto detector = workload::apps::vehicle_detection_tf();
    sim.every(sim::msec(20), [p, pedestrian] { p->dsf().submit(pedestrian); });
    sim.every(sim::msec(150), [p, detector] { p->dsf().submit(detector); });
    std::vector<net::Tier> tiers =
        force_rsu ? std::vector<net::Tier>{net::Tier::kRsuEdge}
                  : std::vector<net::Tier>{
                        net::Tier::kOnBoard, net::Tier::kRsuEdge,
                        net::Tier::kBaseStationEdge, net::Tier::kCloud};
    auto planner = std::make_shared<core::OffloadPlanner>(p->elastic(), tiers);
    // Staggered release phases: real fleets are not clock-aligned, and the
    // stagger lets later deciders observe the RSU backlog.
    sim.every(sim::seconds(1), [&res, planner, heavy] {
      res.total++;
      planner->run(heavy, [&res](const edgeos::ServiceRunReport& r) {
        if (r.ok) {
          res.latency_ms.add(sim::to_millis(r.latency()));
          res.met += r.deadline_met ? 1 : 0;
          res.pipelines[r.pipeline]++;
        }
      });
    }, sim::msec(37) * vi);
  }
  sim.run_until(sim::minutes(1));
  res.rsu_utilization = rsu.average_utilization();
  return res;
}

void print_table() {
  util::TextTable table(
      "A9: shared-XEdge scaling — N vehicles, one RSU box, TF detection "
      "1/s each (60 s)");
  table.set_header({"fleet", "policy", "mean ms", "p95 ms", "deadline met",
                    "RSU util", "pipeline mix"});
  for (int n : {1, 2, 4, 8, 16, 32}) {
    for (bool force : {true, false}) {
      Result r = run_fleet(n, force);
      std::string mix;
      for (const auto& [pipeline, count] : r.pipelines) {
        mix += pipeline + " x" + std::to_string(count) + " ";
      }
      double met =
          r.total > 0 ? 100.0 * static_cast<double>(r.met) / r.total : 0.0;
      table.add_row({std::to_string(n),
                     force ? "all-to-RSU" : "dynamic",
                     util::TextTable::num(r.latency_ms.mean(), 1),
                     util::TextTable::num(r.latency_ms.p95(), 1),
                     util::TextTable::num(met, 1) + "%",
                     util::TextTable::num(100.0 * r.rsu_utilization, 1) + "%",
                     force ? "-" : mix});
    }
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: all-to-RSU latency grows with fleet size as the box "
      "saturates;\nthe dynamic planner sheds load to other tiers and keeps "
      "deadline-met roughly flat.\n\n");
}

void BM_FleetOfFourSixtySeconds(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fleet(4, false));
  }
}
BENCHMARK(BM_FleetOfFourSixtySeconds)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("xedge");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
