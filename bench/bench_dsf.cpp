// A2 — DSF scheduling policies (§IV-B2) on the reference 1stHEP: the
// legacy CPU-only baseline, load-blind round-robin, DSF's backlog-aware
// greedy earliest-finish-time, and the HEFT-style whole-DAG planner, all
// driven by the full §II service mix for one simulated minute.
//
// Expected shape: CPU-only saturates (the paper's motivation for
// heterogeneous hardware); round-robin wastes the accelerators on
// mismatched work; EFT/HEFT hold deadlines at a fraction of the latency.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "hw/board.hpp"
#include "util/stats.hpp"
#include "vcu/dsf.hpp"
#include "workload/generator.hpp"

namespace {

using namespace vdap;

struct Result {
  util::Histogram latency_ms;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t misses = 0;
  double energy_j = 0.0;
};

std::unique_ptr<vcu::Scheduler> make_scheduler(const std::string& name,
                                               vcu::ResourceRegistry& reg) {
  if (name == "cpu-only") return std::make_unique<vcu::CpuOnlyScheduler>();
  if (name == "round-robin") {
    return std::make_unique<vcu::RoundRobinScheduler>();
  }
  if (name == "greedy-eft") return std::make_unique<vcu::GreedyEftScheduler>();
  return std::make_unique<vcu::HeftScheduler>(
      [&reg](const std::string& svc, hw::TaskClass cls) {
        return reg.candidates(svc, cls);
      });
}

Result run_policy(const std::string& policy, bool with_phone = false) {
  sim::Simulator sim(99);
  hw::VcuBoard board(sim, "vcu");
  hw::populate_reference_1sthep(board);
  vcu::ResourceRegistry reg;
  for (const auto& d : board.devices()) reg.join(d.get());
  // 2ndHEP: a passenger phone joins 20 s in and leaves at 50 s.
  auto phone = std::make_unique<hw::ComputeDevice>(
      sim, hw::catalog::phone_soc());
  if (with_phone) {
    sim.after(sim::seconds(20), [&reg, &phone] { reg.join(phone.get()); });
    sim.after(sim::seconds(50), [&reg] { reg.leave("phone-soc"); });
  }
  vcu::Dsf dsf(sim, reg, make_scheduler(policy, reg));

  Result res;
  workload::WorkloadGenerator gen(sim, [&](const workload::Release& rel) {
    dsf.submit(*rel.dag, [&](const vcu::DagRun& run) {
      if (run.ok) {
        res.latency_ms.add(sim::to_millis(run.latency()));
        if (!run.deadline_met) ++res.misses;
        ++res.completed;
      } else {
        ++res.failed;
      }
    });
  });
  for (auto& s : workload::full_vehicle_mix()) gen.add_stream(std::move(s));
  gen.start();
  sim.run_until(sim::minutes(1));
  res.energy_j = board.energy_joules();
  return res;
}

void print_table() {
  util::TextTable table(
      "A2: DSF scheduling policies, full vehicle mix on the reference "
      "1stHEP (60 s)");
  table.set_header({"Policy", "done", "failed", "mean ms", "p95 ms",
                    "deadline misses", "energy J"});
  for (const char* policy :
       {"cpu-only", "round-robin", "greedy-eft", "heft"}) {
    Result r = run_policy(policy);
    table.add_row({policy, std::to_string(r.completed),
                   std::to_string(r.failed),
                   util::TextTable::num(r.latency_ms.mean(), 1),
                   util::TextTable::num(r.latency_ms.p95(), 1),
                   std::to_string(r.misses),
                   util::TextTable::num(r.energy_j, 0)});
  }
  // 2ndHEP ablation: the same dynamic policy with a passenger phone
  // joining mid-run (plug-and-play resources, §IV-B1).
  Result r2 = run_policy("greedy-eft", /*with_phone=*/true);
  table.add_row({"greedy-eft + 2ndHEP phone", std::to_string(r2.completed),
                 std::to_string(r2.failed),
                 util::TextTable::num(r2.latency_ms.mean(), 1),
                 util::TextTable::num(r2.latency_ms.p95(), 1),
                 std::to_string(r2.misses),
                 util::TextTable::num(r2.energy_j, 0)});
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: cpu-only worst (legacy controller world), dynamic "
      "policies (eft/heft)\nbest on latency and misses by matching task "
      "classes to accelerators.\n\n");
}

void BM_GreedyEftPlacement(benchmark::State& state) {
  sim::Simulator sim(1);
  hw::VcuBoard board(sim, "vcu");
  hw::populate_reference_1sthep(board);
  vcu::ResourceRegistry reg;
  for (const auto& d : board.devices()) reg.join(d.get());
  vcu::GreedyEftScheduler sched;
  auto dag = workload::apps::pedestrian_detection();
  vcu::PlacementQuery q;
  q.dag = &dag;
  q.task_id = 1;
  q.candidates = reg.candidates(dag.name(), dag.task(1).cls);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.place(q));
  }
}
BENCHMARK(BM_GreedyEftPlacement);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("dsf");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
