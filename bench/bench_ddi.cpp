// A4 — DDI's two-level database (§IV-D): ten minutes of collector ingest,
// then a skewed read workload (services repeatedly asking for recent
// windows). Compares the paper's memcache+disk design against disk-only
// (cache capacity zero) on response latency and hit rate.
//
// Expected shape: the two-level design answers the hot queries at memory
// latency ("in-memory database caches the frequently used data ... to
// decrease the response latency of request").
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>
#include <filesystem>

#include "ddi/ddi.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;
namespace fs = std::filesystem;

struct Result {
  util::Histogram latency_us;
  double hit_rate = 0.0;
  std::uint64_t disk_records = 0;
};

Result run_config(bool with_cache) {
  sim::Simulator sim(31);
  std::string dir =
      (fs::temp_directory_path() /
       (std::string("vdap-bench-ddi-") + (with_cache ? "cache" : "nocache")))
          .string();
  fs::remove_all(dir);
  ddi::DdiOptions opts;
  opts.disk.dir = dir;
  if (!with_cache) opts.mem.capacity_bytes = 0;  // disk-only ablation
  ddi::Ddi ddi(sim, opts);

  // Collectors feed for 10 simulated minutes.
  ddi::ObdCollector obd(sim, [&](ddi::DataRecord r) { ddi.upload(std::move(r)); });
  ddi::WeatherFeed wx(sim, [&](ddi::DataRecord r) { ddi.upload(std::move(r)); });
  ddi::TrafficFeed tf(sim, [&](ddi::DataRecord r) { ddi.upload(std::move(r)); });
  obd.start();
  wx.start();
  tf.start();

  Result res;
  // Skewed read workload: every second, three services ask for the same
  // "last 30 s of OBD" window (rounded to 10 s buckets so queries repeat),
  // plus one cold historical query per 10 s.
  sim.every(sim::seconds(1), [&] {
    sim::SimTime bucket = (sim.now() / sim::seconds(10)) * sim::seconds(10);
    ddi::DownloadRequest hot{"vehicle/obd",
                             bucket - sim::seconds(30), bucket};
    for (int i = 0; i < 3; ++i) {
      auto resp = ddi.download_now(hot);
      res.latency_us.add(static_cast<double>(resp.latency));
    }
  });
  sim.every(sim::seconds(10), [&] {
    ddi::DownloadRequest cold{"vehicle/obd", 0, sim.now() / 2};
    auto resp = ddi.download_now(cold);
    res.latency_us.add(static_cast<double>(resp.latency));
  });
  sim.run_until(sim::minutes(10));
  res.hit_rate = ddi.cache().hit_rate();
  res.disk_records = ddi.disk().record_count();
  fs::remove_all(dir);
  return res;
}

void print_table() {
  util::TextTable table(
      "A4: DDI storage — two-level (memcache+disk) vs disk-only "
      "(10-min ingest + skewed reads)");
  table.set_header({"Config", "mean us", "p95 us", "cache hit rate",
                    "records on disk"});
  for (bool cache : {true, false}) {
    Result r = run_config(cache);
    table.add_row({cache ? "memcache + disk (paper)" : "disk-only",
                   util::TextTable::num(r.latency_us.mean(), 1),
                   util::TextTable::num(r.latency_us.p95(), 1),
                   util::TextTable::num(100.0 * r.hit_rate, 1) + "%",
                   std::to_string(r.disk_records)});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: the cached config answers hot queries roughly an order of magnitude faster "
      "on average.\n\n");
}

void BM_MemDbGet(benchmark::State& state) {
  ddi::MemDb db;
  ddi::DataRecord rec;
  rec.stream = "s";
  rec.payload["v"] = 1;
  db.put("k", rec, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.get("k", 1));
  }
}
BENCHMARK(BM_MemDbGet);

void BM_DiskDbPut(benchmark::State& state) {
  std::string dir =
      (fs::temp_directory_path() / "vdap-bench-diskdb").string();
  fs::remove_all(dir);
  ddi::DiskDb db({dir, 16 << 20});
  ddi::DataRecord rec;
  rec.stream = "vehicle/obd";
  rec.payload["speed_mps"] = 13.4;
  sim::SimTime ts = 0;
  for (auto _ : state) {
    rec.timestamp = ts++;
    db.put(rec);
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_DiskDbPut);

void BM_RecordCodecRoundTrip(benchmark::State& state) {
  ddi::DataRecord rec;
  rec.stream = "vehicle/obd";
  rec.timestamp = 123456;
  rec.payload["speed_mps"] = 13.4;
  rec.payload["rpm"] = 2100;
  for (auto _ : state) {
    std::vector<std::uint8_t> buf;
    ddi::encode(rec, buf);
    std::size_t off = 0;
    benchmark::DoNotOptimize(ddi::decode(buf, off));
  }
}
BENCHMARK(BM_RecordCodecRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("ddi");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
