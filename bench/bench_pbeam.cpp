// A5 — pBEAM and Deep Compression (§IV-E, Fig. 9): size / accuracy /
// edge-latency trade-off of compressing cBEAM, and the value of
// personalization (transfer learning on the driver's DDI data).
//
// Expected shape: compression buys an order of magnitude in footprint for
// a small accuracy dip (making the model edge-deployable), and
// personalization recovers accuracy on idiosyncratic drivers that the
// fleet model misreads.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "hw/catalog.hpp"
#include "libvdap/models.hpp"
#include "libvdap/pbeam.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace vdap;
using namespace vdap::libvdap;

void print_compression_sweep() {
  util::RngStream rng(2025);
  Dataset fleet = synth_fleet_dataset(300, rng);
  util::RngStream eval_rng(77);
  Dataset test = synth_fleet_dataset(150, eval_rng);

  util::TextTable table(
      "A5a: Deep-Compression sweep on cBEAM (fleet accuracy vs footprint; "
      "retrain = fine-tune after pruning, zeros preserved)");
  table.set_header({"sparsity", "bits", "size", "ratio", "fleet acc",
                    "acc after retrain"});
  struct Point {
    double sparsity;
    int bits;
  };
  const Point points[] = {{0.0, 0}, {0.3, 8}, {0.6, 5},
                          {0.8, 4}, {0.9, 3}, {0.95, 2}};
  for (const Point& p : points) {
    util::RngStream train_rng(2025);
    Mlp model({DrivingFeatures::kDim, 32, 16, kNumStyles}, train_rng);
    TrainOptions opt;
    opt.epochs = 60;
    model.train(fleet, opt, train_rng);
    CompressionReport rep = deep_compress(model, p.sparsity, p.bits);
    double raw_acc = model.accuracy(test);
    // Deep Compression's recipe retrains the surviving weights ([30]);
    // fine-tune with the pruned structure preserved, then re-quantize.
    TrainOptions retrain;
    retrain.epochs = 20;
    retrain.lr = 0.02;
    retrain.preserve_zeros = true;
    model.train(fleet, retrain, train_rng);
    if (p.bits > 0) quantize(model, p.bits);
    double retrained_acc = model.accuracy(test);
    table.add_row(
        {util::TextTable::num(p.sparsity, 2), std::to_string(p.bits),
         util::human_bytes(rep.compressed_bytes),
         util::TextTable::num(rep.ratio(), 1) + "x",
         util::TextTable::num(100.0 * raw_acc, 1) + "%",
         util::TextTable::num(100.0 * retrained_acc, 1) + "%"});
  }
  bench::BenchOutput::record(table);
  std::printf("%s\n", table.to_string().c_str());
}

void print_personalization() {
  util::TextTable table(
      "A5b: personalization (transfer learning on driver data) per "
      "idiosyncrasy level");
  table.set_header({"driver bias", "fleet-model acc", "pBEAM acc",
                    "gain"});
  for (double bias : {0.0, 1.0, 2.0, 3.0}) {
    util::RngStream rng(2025);
    PBeam pbeam = PBeam::build(synth_fleet_dataset(300, rng), {}, rng);
    util::RngStream driver_rng(900 + static_cast<std::uint64_t>(bias * 10));
    Dataset train =
        synth_driver_dataset(DrivingStyle::kNormal, 150, bias, driver_rng);
    Dataset test =
        synth_driver_dataset(DrivingStyle::kNormal, 150, bias, driver_rng);
    double before = pbeam.accuracy(test);
    pbeam.personalize(train, rng);
    double after = pbeam.accuracy(test);
    table.add_row({util::TextTable::num(bias, 1),
                   util::TextTable::num(100.0 * before, 1) + "%",
                   util::TextTable::num(100.0 * after, 1) + "%",
                   util::TextTable::num(100.0 * (after - before), 1) + "pp"});
  }
  bench::BenchOutput::record(table);
  std::printf("%s\n", table.to_string().c_str());
}

void print_edge_latency() {
  // What compression buys at inference time on edge silicon: the common
  // model library's full vs edge variants on the vehicle GPU.
  util::TextTable table(
      "A5c: common-model library — cloud vs edge variants on the vehicle "
      "GPU (TX2 Max-P)");
  table.set_header({"model", "size", "latency on TX2", "accuracy"});
  auto registry = ModelRegistry::with_default_catalog();
  auto tx2 = hw::catalog::jetson_tx2_maxp();
  for (const char* name :
       {"inception-v3", "inception-v3-edge", "yolo-v2", "yolo-v2-edge"}) {
    auto m = registry.find(name);
    if (!m) continue;
    auto d = tx2.service_time(m->task_class, m->gflop_per_inference);
    table.add_row({m->name, util::human_bytes(m->size_bytes),
                   d ? util::TextTable::num(sim::to_millis(*d), 1) + " ms"
                     : "n/a",
                   util::TextTable::num(100.0 * m->accuracy, 1) + "%"});
  }
  bench::BenchOutput::record(table);
  std::printf("%s\n", table.to_string().c_str());
}

void BM_PBeamInference(benchmark::State& state) {
  util::RngStream rng(1);
  PBeam pbeam = PBeam::build(synth_fleet_dataset(100, rng), {}, rng);
  DrivingFeatures f = sample_style_features(DrivingStyle::kNormal, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbeam.aggressiveness(f));
  }
}
BENCHMARK(BM_PBeamInference);

void BM_DeepCompress(benchmark::State& state) {
  util::RngStream rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    Mlp model({DrivingFeatures::kDim, 32, 16, kNumStyles}, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(deep_compress(model, 0.6, 5));
  }
}
BENCHMARK(BM_DeepCompress);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("pbeam");
  print_compression_sweep();
  print_personalization();
  print_edge_latency();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
