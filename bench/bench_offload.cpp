// A1 — the §III architecture comparison behind Fig. 1: cloud-only vs
// in-vehicle-only vs OpenVDAP's edge-based dynamic offloading, across the
// paper's three mobility conditions (parked / 35 MPH / 70 MPH).
//
// Workload: the A3 license-plate service plus ad-hoc Inception v3 requests
// released for two minutes. Metrics: mean / p95 end-to-end latency,
// deadline-met fraction, vehicle-side energy. Expected shape: at speed,
// cloud-only collapses with the cellular link (the Fig. 2 mechanism);
// in-vehicle-only holds latency but burns the §III-B power budget; dynamic
// edge offloading tracks the best of both.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "core/platform.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"

namespace {

using namespace vdap;

struct Result {
  util::Histogram latency_ms;
  int met = 0;
  int total = 0;
  double energy_j = 0.0;
};

Result run_architecture(const std::vector<net::Tier>& tiers, double mph,
                        bool rsu_coverage) {
  sim::Simulator sim(1234);
  core::PlatformConfig cfg;
  cfg.vehicle_name = "bench";
  core::OpenVdap cav(sim, cfg);
  core::DriveScenario scenario(
      sim, cav.topology(),
      {{200.0, mph, rsu_coverage, false}}, &cav.elastic());
  scenario.start();
  core::OffloadPlanner planner(cav.elastic(), tiers);

  Result res;
  // Background ADAS load pinned to the vehicle (safety-critical, §II-B):
  // this is the paper's motivating contention — "assume two
  // latency-sensitive applications require execution on the GPU at the
  // same time."
  // A multi-camera perception stack: 50 Hz pedestrian detection plus a
  // 7 Hz deep vehicle detector, all pinned on-board — ~440 GFLOP/s of CNN
  // demand against the 1stHEP's ~460 GFLOP/s, so offloadable work queues.
  auto pedestrian = workload::apps::pedestrian_detection();
  auto detector = workload::apps::vehicle_detection_tf();
  sim.every(sim::msec(20), [&] { cav.dsf().submit(pedestrian); });
  sim.every(sim::msec(150), [&] { cav.dsf().submit(detector); });

  // The offloadable stream: the paper's heavyweight TensorFlow vehicle
  // detector (27.9 GFLOP, 500 ms deadline) once per second, plus the A3
  // plate search every 2 s.
  auto heavy = workload::apps::vehicle_detection_tf();
  auto a3 = workload::apps::a3_kidnapper_search();
  sim.every(sim::seconds(1), [&] {
    res.total++;
    planner.run(heavy, [&](const edgeos::ServiceRunReport& r) {
      if (r.ok) {
        res.latency_ms.add(sim::to_millis(r.latency()));
        res.met += r.deadline_met ? 1 : 0;
      }
    });
  });
  sim.every(sim::seconds(2), [&] {
    res.total++;
    planner.run(a3, [&](const edgeos::ServiceRunReport& r) {
      if (r.ok) {
        res.latency_ms.add(sim::to_millis(r.latency()));
        res.met += r.deadline_met ? 1 : 0;
      }
    });
  });
  sim.run_until(sim::minutes(2));
  res.energy_j = cav.board().energy_joules();
  return res;
}

void print_table() {
  util::TextTable table(
      "A1: computing-architecture comparison (TF vehicle detection + A3 "
      "search under ADAS load, 2-min window)");
  table.set_header({"Condition", "Architecture", "mean ms", "p95 ms",
                    "deadline met", "vehicle J"});
  struct Arch {
    const char* name;
    std::vector<net::Tier> tiers;
  };
  const Arch archs[] = {
      {"cloud-only", {net::Tier::kCloud}},
      {"in-vehicle-only", {net::Tier::kOnBoard}},
      {"edge (dynamic)",
       {net::Tier::kOnBoard, net::Tier::kRsuEdge,
        net::Tier::kBaseStationEdge, net::Tier::kCloud}},
  };
  struct Cond {
    const char* name;
    double mph;
    bool rsu;
  };
  const Cond conds[] = {{"parked", 0.0, true},
                        {"35 MPH", 35.0, true},
                        {"70 MPH (no RSU)", 70.0, false}};
  for (const Cond& c : conds) {
    for (const Arch& a : archs) {
      Result r = run_architecture(a.tiers, c.mph, c.rsu);
      double met_frac =
          r.total > 0 ? static_cast<double>(r.met) / r.total : 0.0;
      table.add_row({c.name, a.name, util::TextTable::num(r.latency_ms.mean(), 1),
                     util::TextTable::num(r.latency_ms.p95(), 1),
                     util::TextTable::num(100.0 * met_frac, 1) + "%",
                     util::TextTable::num(r.energy_j, 0)});
    }
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: cloud-only degrades sharply with speed; in-vehicle "
      "holds latency\nbut uses the most vehicle energy; dynamic edge "
      "offloading stays near the best column-wise.\n\n");
}

void BM_OffloadDecision(benchmark::State& state) {
  sim::Simulator sim(7);
  core::OpenVdap cav(sim);
  auto dag = workload::apps::a3_kidnapper_search();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cav.offload().decide(dag));
  }
}
BENCHMARK(BM_OffloadDecision);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("offload");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
