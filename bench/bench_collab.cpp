// A6 — V2V collaboration (§III-C): a 5-vehicle platoon scanning plates on
// the same road for an AMBER alert. Each vehicle observes 100 plates; the
// observation sets overlap (vehicles follow each other). Compares isolated
// operation (everyone recognizes everything) against collaborative result
// sharing over DSRC.
//
// Expected shape: collaboration removes the overlapping recognitions
// ("avoiding executing unnecessary repeating operations"), cutting CNN
// GFLOP per vehicle roughly by the overlap fraction for followers, at the
// cost of millisecond-scale DSRC lookups.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "core/collaboration.hpp"
#include "hw/catalog.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"

namespace {

using namespace vdap;

struct Result {
  int computed = 0;        // recognitions actually run
  int reused = 0;          // results fetched from a neighbor
  double gflop_spent = 0.0;
  util::Histogram lookup_ms;
};

constexpr int kVehicles = 5;
constexpr int kPlatesPerVehicle = 100;
constexpr double kOverlap = 0.7;  // fraction shared with the predecessor

/// The recognition cost skipped when a result is reused: the plate
/// pipeline's detection + OCR stages.
double recognition_gflop() {
  auto dag = workload::apps::license_plate_pipeline();
  return dag.task(1).gflop + dag.task(2).gflop;
}

Result run(bool collaborative) {
  sim::Simulator sim(555);
  std::vector<std::unique_ptr<core::CollaborationCache>> caches;
  for (int v = 0; v < kVehicles; ++v) {
    caches.push_back(std::make_unique<core::CollaborationCache>(
        sim, "cav-" + std::to_string(v),
        "veh-" + std::to_string(1000 + v)));
  }
  if (collaborative) {
    for (int v = 0; v + 1 < kVehicles; ++v) {
      core::CollaborationCache::connect(*caches[v], *caches[v + 1]);
    }
  }

  // Plate id stream: vehicle v sees plates [v*30, v*30 + 100) — ~70%
  // overlap with its neighbor.
  Result res;
  double gflop = recognition_gflop();
  for (int v = 0; v < kVehicles; ++v) {
    int base = static_cast<int>(v * kPlatesPerVehicle * (1.0 - kOverlap));
    for (int i = 0; i < kPlatesPerVehicle; ++i) {
      std::string key = "plate:" + std::to_string(base + i);
      // Stagger sightings so earlier vehicles publish before followers ask.
      sim.after(sim::msec(v * 200 + i), [&, key, v]() {
        sim::SimTime asked = sim.now();
        caches[static_cast<std::size_t>(v)]->lookup(
            key, [&, key, v, asked](std::optional<core::SharedResult> r) {
              res.lookup_ms.add(sim::to_millis(sim.now() - asked));
              if (r.has_value()) {
                ++res.reused;
              } else {
                ++res.computed;
                res.gflop_spent += gflop;
                caches[static_cast<std::size_t>(v)]->put(
                    key, json::Value("decoded"));
              }
            });
      });
    }
  }
  sim.run_until(sim::minutes(5));
  return res;
}

void print_table() {
  util::TextTable table(
      "A6: V2V collaboration — 5-vehicle platoon, 100 plates each, ~70% "
      "overlap");
  table.set_header({"Mode", "recognitions run", "results reused",
                    "CNN GFLOP spent", "mean lookup ms"});
  for (bool collab : {false, true}) {
    Result r = run(collab);
    table.add_row({collab ? "collaborative (DSRC sharing)" : "isolated",
                   std::to_string(r.computed), std::to_string(r.reused),
                   util::TextTable::num(r.gflop_spent, 0),
                   util::TextTable::num(r.lookup_ms.mean(), 2)});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: collaboration cuts recognitions roughly by the "
      "overlap fraction,\npaying only millisecond-scale DSRC lookups.\n\n");
}

void BM_LocalLookup(benchmark::State& state) {
  sim::Simulator sim(1);
  core::CollaborationCache cache(sim, "cav", "veh-1");
  cache.put("k", json::Value("v"));
  for (auto _ : state) {
    cache.lookup("k", [](std::optional<core::SharedResult>) {});
  }
}
BENCHMARK(BM_LocalLookup);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("collab");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
