// Continuous-profiling overhead (DESIGN.md §6j): run_fleet_scale with
// the tag-stack sampling profiler OFF vs ON (per-thread seqlock stacks,
// ~1 kHz background sampler folding collapsed stacks per slot).
//
// Two committed tables:
//   * A prof-determinism table: sampler ticks > 0, truncation count, and
//     whether the sim digest matched the sampler-off run. Tick counts are
//     wall-clock and never committed as numbers — only the "sampled at
//     all" / "digest match" booleans are, because those are the contract:
//     the profiler observes the run through seqlock snapshots and must
//     not perturb a single deterministic byte (the `prof` sweep test
//     proves it across the shard × thread matrix).
//   * A prof-overhead table: the sampler-on / sampler-off wall-clock
//     RATIO (best of 3 each, 2 decimals). Absolute wall times are never
//     committed — the ratio is unit-free and machine-portable, and the
//     15% bench drift gate becomes exactly the overhead budget the
//     hot-path push/pop and the sampler thread have to keep: if leaving
//     the profiler on stops being cheap, this baseline catches it.
//
// The sampler-on run's profile.jsonl is attached to the bench output as
// BENCH_prof.profile.jsonl (BenchOutput::record_profile) — outside the
// numeric gate, but bench_compare.py uses baseline/candidate profile
// pairs to print the top regressed frames when the gate fails.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/fleet_scale.hpp"
#include "sim/thread_pool.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;
using core::FleetScaleConfig;
using core::FleetScaleOutcome;

FleetScaleConfig prof_config(int vehicles, bool prof) {
  FleetScaleConfig cfg;
  cfg.vehicles = vehicles;
  cfg.seed = 7;
  // The digest is shard/thread-count independent, so run the fast
  // configuration; the prof sweep test covers the full matrix.
  cfg.shards = 8;
  cfg.threads = sim::ThreadPool::hardware_threads();
  cfg.epoch = sim::seconds(1);
  cfg.sample_period = sim::seconds(2);
  cfg.samples_per_tick = 2;
  cfg.run_until = sim::seconds(4);
  cfg.drain = sim::seconds(4);
  cfg.shipper.flush_period = sim::seconds(2);
  // The ingest backend adds the decode/detect PROF_SCOPE sites to the hot
  // path, so the ratio prices the fully instrumented pipeline.
  cfg.ingest_backend = true;
  cfg.prof = prof;
  // Pin the interval: the committed tables must not move with the
  // environment (VDAP_PROF_INTERVAL_US is for interactive runs).
  cfg.prof_opts.interval_us = 1000;
  return cfg;
}

void print_determinism_table() {
  util::TextTable table(
      "prof determinism — sampler on vs off, seed 7 (tick counts are "
      "wall-clock; only the booleans are the contract)");
  table.set_header({"vehicles", "sampled", "truncated", "digest match"});
  for (int n : {1000, 10000}) {
    FleetScaleOutcome off = core::run_fleet_scale(prof_config(n, false));
    FleetScaleOutcome on = core::run_fleet_scale(prof_config(n, true));
    // The profile text carries the truncation counter on its meta line;
    // any non-zero value means a tag stack outgrew kMaxProfDepth.
    const bool truncated =
        on.profile_jsonl.find("\"truncated\":0}") == std::string::npos;
    table.add_row({std::to_string(n), on.prof_samples > 0 ? "yes" : "NO",
                   truncated ? "YES" : "no",
                   on.digest == off.digest ? "yes" : "NO"});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: the sampler always ticks (sampled=yes), no stack\n"
      "outgrows the fixed depth (truncated=no), and the sim digest never\n"
      "moves when the sampler toggles (profiles are wall-plane only).\n\n");
}

double best_wall(const FleetScaleConfig& cfg, FleetScaleOutcome* out) {
  double best = 1e300;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    *out = core::run_fleet_scale(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void print_overhead_table() {
  const int n = 10000;
  FleetScaleOutcome off_out;
  FleetScaleOutcome on_out;
  const double off = best_wall(prof_config(n, false), &off_out);
  const double on = best_wall(prof_config(n, true), &on_out);
  util::TextTable table(
      "prof overhead — 10k vehicles, sampler-on / sampler-off wall ratio "
      "(best of 3; absolute seconds never committed)");
  table.set_header({"vehicles", "overhead x", "digest match"});
  table.add_row({std::to_string(n), util::TextTable::num(on / off, 2),
                 on_out.digest == off_out.digest ? "yes" : "NO"});
  bench::BenchOutput::record(table);
  // The profile itself rides along (outside the numeric gate) so a failed
  // gate can name the frames that absorbed the regression.
  bench::BenchOutput::record_profile(on_out.profile_jsonl);
  std::printf("%s", table.to_string().c_str());
  std::printf("prof_on_s=%.3f prof_off_s=%.3f overhead=%.2fx "
              "(raw walls not committed)\n\n", on, off, on / off);
}

void BM_ScaleProf(benchmark::State& state) {
  const bool prof = state.range(0) != 0;
  for (auto _ : state) {
    FleetScaleOutcome r = core::run_fleet_scale(prof_config(2000, prof));
    benchmark::DoNotOptimize(r.digest);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ScaleProf)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("prof");
  print_determinism_table();
  // The overhead RATIO is committed — it must run (and record) even when
  // the bench gate collects tables with --benchmark_list_tests.
  print_overhead_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
