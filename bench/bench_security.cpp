// A7 — Security module (§IV-C): what isolation costs and what the
// monitor's remove-and-reinstall loop buys.
//
//   (a) isolation overhead: the same service under none / container / TEE;
//   (b) reliability: compromises injected into a container service at
//       random times; measured detection + recovery latency and service
//       availability over a 10-minute window.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "core/platform.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"

namespace {

using namespace vdap;

double measure_latency_ms(edgeos::IsolationMode mode) {
  sim::Simulator sim(3);
  core::OpenVdap cav(sim);
  auto svc = edgeos::make_polymorphic(workload::apps::inception_v3(),
                                      net::Tier::kRsuEdge);
  svc.pipelines = {svc.pipelines[0]};  // pure on-board compute
  svc.dag.set_qos({0, 3, 0});
  cav.os().install_service(svc, mode);
  double ms = 0.0;
  cav.run_service("inception-v3", [&](const edgeos::ServiceRunReport& r) {
    ms = sim::to_millis(r.latency());
  });
  sim.run_until(sim.now() + sim::seconds(30));
  return ms;
}

void print_overhead_table() {
  util::TextTable table(
      "A7a: isolation overhead (Inception v3 on-board, per mode)");
  table.set_header({"Isolation", "latency ms", "overhead"});
  double base = measure_latency_ms(edgeos::IsolationMode::kNone);
  for (auto mode : {edgeos::IsolationMode::kNone,
                    edgeos::IsolationMode::kContainer,
                    edgeos::IsolationMode::kTee}) {
    double ms = measure_latency_ms(mode);
    table.add_row({std::string(edgeos::to_string(mode)),
                   util::TextTable::num(ms, 1),
                   util::TextTable::num(100.0 * (ms / base - 1.0), 1) + "%"});
  }
  bench::BenchOutput::record(table);
  std::printf("%s\n", table.to_string().c_str());
}

void print_reliability_table() {
  sim::Simulator sim(17);
  edgeos::SecurityOptions opts;
  opts.monitor_interval = sim::msec(500);
  opts.reinstall_duration = sim::seconds(3);
  edgeos::SecurityModule sec(sim, opts);
  sec.install("third-party", edgeos::IsolationMode::kContainer);
  sec.install("critical-adas", edgeos::IsolationMode::kTee);
  sec.start_monitor();

  util::Histogram recovery_s;
  sim::SimTime compromised_at = 0;
  sec.on_reinstall([&](const std::string&) {
    recovery_s.add(sim::to_seconds(sim.now() - compromised_at));
  });

  // Inject an internal attack on both services every ~60 s.
  int attacks = 0;
  int tee_resisted = 0;
  sim.every(sim::seconds(61), [&] {
    ++attacks;
    compromised_at = sim.now();
    sec.compromise("third-party");
    if (!sec.compromise("critical-adas")) ++tee_resisted;
  });

  // Sample availability (service Running) once per second.
  int samples = 0, available = 0;
  sim.every(sim::seconds(1), [&] {
    ++samples;
    available +=
        sec.state("third-party") == edgeos::ServiceState::kRunning ? 1 : 0;
  });
  sim.run_until(sim::minutes(10));

  util::TextTable table("A7b: compromise -> detect -> reinstall (10-min window)");
  table.set_header({"metric", "value"});
  table.add_row({"attacks injected", std::to_string(attacks)});
  table.add_row({"TEE attacks resisted",
                 std::to_string(tee_resisted) + "/" + std::to_string(attacks)});
  table.add_row({"compromises detected",
                 std::to_string(sec.compromises_detected())});
  table.add_row({"reinstalls completed", std::to_string(sec.reinstalls())});
  table.add_row({"mean recovery (s)",
                 util::TextTable::num(recovery_s.mean(), 2)});
  table.add_row({"max recovery (s)",
                 util::TextTable::num(recovery_s.max(), 2)});
  table.add_row({"container availability",
                 util::TextTable::num(100.0 * available / samples, 2) + "%"});
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: recovery bounded by scan interval + reinstall time "
      "(<= 3.5 s);\nTEE services resist every injected internal attack.\n\n");
}

void BM_AttestVerify(benchmark::State& state) {
  sim::Simulator sim(1);
  edgeos::SecurityModule sec(sim);
  sec.install("svc", edgeos::IsolationMode::kTee);
  auto token = *sec.attest("svc");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sec.verify("svc", token));
  }
}
BENCHMARK(BM_AttestVerify);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("security");
  print_overhead_table();
  print_reliability_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
