// Observability overhead (DESIGN.md §6h): run_fleet_scale with per-shard
// capture domains OFF vs ON.
//
// Two committed tables:
//   * A capture-determinism table (frames, trace events, open spans,
//     metric keys per fleet size, plus whether the digest matched the
//     capture-off run) — every cell is a pure function of (seed, config),
//     independent of the shard/thread counts used to produce it.
//   * A capture-overhead table: the capture-on / capture-off wall-clock
//     RATIO (best of 3 each, 2 decimals). Absolute wall times are never
//     committed — the ratio is unit-free and machine-portable, and the
//     15% bench drift gate turns into exactly the overhead budget the
//     sharded capture path has to keep: if turning the tracer on gets
//     relatively slower, this baseline catches it.
//
// When VDAP_OBS_ARTIFACTS names a directory, the capture-on run's merged
// trace.json / metrics.jsonl / shards.jsonl are written there so the CI
// bench-gate job can upload them for offline inspection with
// `vdap-report` (check.sh exports it under build/bench-results/).
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fleet_scale.hpp"
#include "sim/thread_pool.hpp"
#include "telemetry/export.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;
using core::FleetScaleConfig;
using core::FleetScaleOutcome;

FleetScaleConfig obs_config(int vehicles, bool capture) {
  FleetScaleConfig cfg;
  cfg.vehicles = vehicles;
  cfg.seed = 7;
  // Deterministic columns are shard/thread-count independent (the obs
  // sweep test proves it), so run the fast configuration.
  cfg.shards = 8;
  cfg.threads = sim::ThreadPool::hardware_threads();
  cfg.epoch = sim::seconds(1);
  cfg.sample_period = sim::seconds(2);
  cfg.samples_per_tick = 2;
  cfg.run_until = sim::seconds(4);
  cfg.drain = sim::seconds(4);
  cfg.shipper.flush_period = sim::seconds(2);
  cfg.capture = capture;
  return cfg;
}

void print_capture_table() {
  util::TextTable table(
      "sharded capture determinism — merged exports, seed 7 "
      "(shard/thread-count independent)");
  table.set_header({"vehicles", "frames", "trace events", "open spans",
                    "metric keys", "digest match"});
  for (int n : {1000, 10000}) {
    FleetScaleOutcome off = core::run_fleet_scale(obs_config(n, false));
    FleetScaleOutcome on = core::run_fleet_scale(obs_config(n, true));
    table.add_row({std::to_string(n), std::to_string(on.frames_delivered),
                   std::to_string(on.trace_events),
                   std::to_string(on.open_spans),
                   std::to_string(on.metric_keys),
                   on.digest == off.digest ? "yes" : "NO"});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: trace events scale with frames; open spans drain to\n"
      "0; the digest never moves when capture toggles (the capture plane\n"
      "observes the run, it must not perturb it).\n\n");
}

double best_wall(const FleetScaleConfig& cfg, FleetScaleOutcome* out) {
  double best = 1e300;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    *out = core::run_fleet_scale(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void write_artifacts(const FleetScaleOutcome& on) {
  const char* dir = std::getenv("VDAP_OBS_ARTIFACTS");
  if (dir == nullptr || *dir == '\0') return;
  const std::string base(dir);
  if (telemetry::write_text_file(base + "/trace.json", on.chrome_trace) &&
      telemetry::write_text_file(base + "/metrics.jsonl", on.metrics_jsonl) &&
      telemetry::write_text_file(base + "/shards.jsonl", on.shards_jsonl)) {
    std::printf("obs artifacts (trace.json, metrics.jsonl, shards.jsonl) "
                "written under %s\n\n", dir);
  } else {
    std::fprintf(stderr,
                 "warning: VDAP_OBS_ARTIFACTS=%s is not writable — "
                 "skipping artifact dump\n", dir);
  }
}

void print_overhead_table() {
  const int n = 10000;
  FleetScaleOutcome off_out;
  FleetScaleOutcome on_out;
  const double off = best_wall(obs_config(n, false), &off_out);
  const double on = best_wall(obs_config(n, true), &on_out);
  util::TextTable table(
      "capture overhead — 10k vehicles, capture-on / capture-off wall "
      "ratio (best of 3; absolute seconds never committed)");
  table.set_header({"vehicles", "overhead x", "digest match"});
  table.add_row({std::to_string(n), util::TextTable::num(on / off, 2),
                 on_out.digest == off_out.digest ? "yes" : "NO"});
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf("capture_on_s=%.3f capture_off_s=%.3f overhead=%.2fx "
              "(raw walls not committed)\n\n", on, off, on / off);
  write_artifacts(on_out);
}

void BM_ScaleCapture(benchmark::State& state) {
  const bool capture = state.range(0) != 0;
  for (auto _ : state) {
    FleetScaleOutcome r = core::run_fleet_scale(obs_config(2000, capture));
    benchmark::DoNotOptimize(r.digest);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ScaleCapture)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("obs");
  print_capture_table();
  // Unlike bench_shard's speedup table, the overhead RATIO is committed —
  // it must run (and record) even when the bench gate collects tables
  // with --benchmark_list_tests.
  print_overhead_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
