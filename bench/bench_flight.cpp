// Flight-recorder overhead (DESIGN.md §6i): run_fleet_scale with the
// always-on black-box recorder OFF vs ON (metric + span mirroring into
// per-domain fixed rings, fold at every barrier, one scripted incident
// bundle snapshotted in memory).
//
// Two committed tables:
//   * A flight-determinism table (folded records, triggers, scratch
//     drops, FNV-1a of the serialized master ring, and whether the sim
//     digest matched the recorder-off run) — every cell is a pure
//     function of (seed, config), independent of the shard/thread
//     counts used to produce it (the flight sweep test proves it).
//   * A flight-overhead table: the recorder-on / recorder-off
//     wall-clock RATIO (best of 3 each, 2 decimals). Absolute wall
//     times are never committed — the ratio is unit-free and
//     machine-portable, and the 15% bench drift gate turns into exactly
//     the overhead budget the O(1)-append hot path has to keep: if the
//     black box stops being cheap enough to leave on, this baseline
//     catches it.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/fleet_scale.hpp"
#include "sim/thread_pool.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;
using core::FleetScaleConfig;
using core::FleetScaleOutcome;

FleetScaleConfig flight_config(int vehicles, bool flight) {
  FleetScaleConfig cfg;
  cfg.vehicles = vehicles;
  cfg.seed = 7;
  // Flight columns are shard/thread-count independent (the flight sweep
  // test proves it), so run the fast configuration.
  cfg.shards = 8;
  cfg.threads = sim::ThreadPool::hardware_threads();
  cfg.epoch = sim::seconds(1);
  cfg.sample_period = sim::seconds(2);
  cfg.samples_per_tick = 2;
  cfg.run_until = sim::seconds(4);
  cfg.drain = sim::seconds(4);
  cfg.shipper.flush_period = sim::seconds(2);
  // The backend's per-epoch metric stream is part of what gets mirrored;
  // keeping it on matches the sweep test's byte-identity configuration.
  cfg.ingest_backend = true;
  cfg.flight = flight;
  // One scripted incident mid-run so the bundle snapshot path (manifest
  // + rings serialization) is part of what the ratio prices. Options::dir
  // stays empty: bundles are kept in memory, no filesystem I/O.
  cfg.flight_incident_at = sim::seconds(3);
  return cfg;
}

std::string fnv_hex(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void print_determinism_table() {
  util::TextTable table(
      "flight determinism — folded master ring, seed 7 "
      "(shard/thread-count independent)");
  table.set_header({"vehicles", "folded", "triggers", "dropped",
                    "rings fnv", "digest match"});
  for (int n : {1000, 10000}) {
    FleetScaleOutcome off = core::run_fleet_scale(flight_config(n, false));
    FleetScaleOutcome on = core::run_fleet_scale(flight_config(n, true));
    table.add_row({std::to_string(n), std::to_string(on.flight_folded),
                   std::to_string(on.flight_triggers),
                   std::to_string(on.flight_scratch_dropped),
                   fnv_hex(on.flight_rings),
                   on.digest == off.digest ? "yes" : "NO"});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: folded records scale with vehicles; scratch drops\n"
      "stay 0 (byte-identity is conditional on them); the sim digest never\n"
      "moves when the recorder toggles (the black box observes the run, it\n"
      "must not perturb it).\n\n");
}

double best_wall(const FleetScaleConfig& cfg, FleetScaleOutcome* out) {
  double best = 1e300;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    *out = core::run_fleet_scale(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void print_overhead_table() {
  const int n = 10000;
  FleetScaleOutcome off_out;
  FleetScaleOutcome on_out;
  const double off = best_wall(flight_config(n, false), &off_out);
  const double on = best_wall(flight_config(n, true), &on_out);
  util::TextTable table(
      "flight overhead — 10k vehicles, recorder-on / recorder-off wall "
      "ratio (best of 3; absolute seconds never committed)");
  table.set_header({"vehicles", "overhead x", "digest match"});
  table.add_row({std::to_string(n), util::TextTable::num(on / off, 2),
                 on_out.digest == off_out.digest ? "yes" : "NO"});
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf("flight_on_s=%.3f flight_off_s=%.3f overhead=%.2fx "
              "(raw walls not committed)\n\n", on, off, on / off);
}

void BM_ScaleFlight(benchmark::State& state) {
  const bool flight = state.range(0) != 0;
  for (auto _ : state) {
    FleetScaleOutcome r = core::run_fleet_scale(flight_config(2000, flight));
    benchmark::DoNotOptimize(r.digest);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ScaleFlight)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("flight");
  print_determinism_table();
  // The overhead RATIO is committed — it must run (and record) even when
  // the bench gate collects tables with --benchmark_list_tests.
  print_overhead_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
