// A11 — infotainment quality-of-experience vs mobility (§II-C): streaming
// "not only require[s] compute resources but also present[s] a high
// requirement on the network bandwidth." A 2-minute 6 Mbps session over
// the cellular downlink while driving at the paper's three speeds, with a
// buffer-depth ablation.
//
// Expected shape: clean playback when parked; growing rebuffer ratio with
// speed (the downlink twin of Fig. 2's uplink story); deeper client
// buffers trade startup delay for stall resistance.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "core/infotainment.hpp"
#include "core/scenario.hpp"
#include "hw/catalog.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;

core::InfotainmentReport run_session(double mph, int buffer_chunks,
                                     std::uint64_t chunk_bytes,
                                     int startup_chunks = 1) {
  sim::Simulator sim(9);
  hw::ComputeDevice cpu(sim, hw::catalog::core_i7_6700());
  hw::ComputeDevice gpu(sim, hw::catalog::jetson_tx2_maxp());
  vcu::ResourceRegistry reg;
  reg.join(&cpu);
  reg.join(&gpu);
  vcu::Dsf dsf(sim, reg, std::make_unique<vcu::GreedyEftScheduler>());
  net::Topology topo(sim);
  core::CellularConditionModel model;
  topo.apply_cellular_condition(model.bandwidth_factor(mph),
                                model.loss_rate(mph));

  core::InfotainmentOptions opts;
  opts.buffer_target_chunks = buffer_chunks;
  opts.chunk_bytes = chunk_bytes;
  opts.startup_chunks = startup_chunks;
  core::InfotainmentSession session(sim, topo, dsf, opts);
  core::InfotainmentReport rep;
  session.start(60, [&](const core::InfotainmentReport& r) { rep = r; });
  sim.run_until(sim::minutes(30));
  return rep;
}

void print_table() {
  util::TextTable table(
      "A11: infotainment streaming QoE vs speed (60 chunks of 2 s each)");
  table.set_header({"Speed", "stream", "played", "failed", "stalls",
                    "stall s", "rebuffer", "startup ms"});
  struct Stream {
    const char* name;
    std::uint64_t chunk_bytes;
  };
  const Stream streams[] = {{"HD 6 Mbps", 1'500'000},
                            {"4K 15 Mbps", 3'750'000}};
  for (double mph : {0.0, 35.0, 70.0}) {
    for (const Stream& stream : streams) {
      core::InfotainmentReport r = run_session(mph, 3, stream.chunk_bytes);
      table.add_row(
          {util::TextTable::num(mph, 0) + " MPH", stream.name,
           std::to_string(r.chunks_played), std::to_string(r.chunks_failed),
           std::to_string(r.stalls),
           util::TextTable::num(sim::to_seconds(r.stall_time), 1),
           util::TextTable::num(100.0 * r.rebuffer_ratio(), 1) + "%",
           util::TextTable::num(sim::to_millis(r.startup_delay), 0)});
    }
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());

  // Prefetch-depth ablation in the worst cell (4K at 70 MPH): prefetching
  // more before starting delays playback but cannot rescue a *sustained*
  // bandwidth deficit — the stall count barely moves. The real fixes are
  // bitrate adaptation or better coverage, not buffering.
  util::TextTable ablate(
      "A11b: prefetch depth ablation (4K at 70 MPH; startup = prefetch)");
  ablate.set_header({"prefetch chunks", "stalls", "stall s", "startup ms"});
  for (int buffer : {1, 3, 6, 10}) {
    core::InfotainmentReport r =
        run_session(70.0, buffer, 3'750'000, buffer);
    ablate.add_row({std::to_string(buffer), std::to_string(r.stalls),
                    util::TextTable::num(sim::to_seconds(r.stall_time), 1),
                    util::TextTable::num(sim::to_millis(r.startup_delay), 0)});
  }
  bench::BenchOutput::record(ablate);
  std::printf("%s", ablate.to_string().c_str());
  std::printf(
      "Expected shape: clean at parked; rebuffering grows with speed and "
      "bitrate (downlink\ntwin of Fig. 2); prefetch trades startup delay "
      "for stall count, but a sustained\ndeficit (4K at 70 MPH) cannot be "
      "buffered away.\n\n");
}

void BM_OneStreamingSession(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_session(35.0, 3, 1'500'000));
  }
}
BENCHMARK(BM_OneStreamingSession)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("infotainment");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
