// Fleet telemetry ingest scaling (DESIGN.md §6e): a FleetAggregator
// consuming pre-encoded synthetic wire-frame streams for fleets of 10 to
// 1000 vehicles — the XEdge/cloud side of the shipping pipeline, isolated
// from the simulator so the benchmark measures decode + dedup + tsdb +
// MAD detection alone.
//
// The stream is fully deterministic (fixed latency pattern, one hot
// vehicle per fleet), so the printed table — and BENCH_fleet.json — are
// byte-stable and sit under the bench drift gate. Wall-clock throughput
// lives in the google-benchmark section below the table.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/fleet/aggregator.hpp"
#include "telemetry/fleet/wire.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;
using telemetry::fleet::FleetAggregator;
using telemetry::fleet::WireFrame;

// One encoded frame per vehicle per simulated second. The last vehicle
// runs 3x slower than the pack — every fleet size has exactly one
// outlier for the detector to find.
std::vector<std::string> make_stream(int vehicles, int seconds) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(vehicles) * seconds);
  for (int s = 1; s <= seconds; ++s) {
    for (int v = 0; v < vehicles; ++v) {
      WireFrame f;
      f.vehicle = "cav-" + std::to_string(v);
      f.seq = static_cast<std::uint64_t>(s);
      f.created = sim::seconds(1) * s;
      const bool hot = v == vehicles - 1;
      const double base = hot ? 300.0 : 100.0;
      const double jitter = 0.25 * ((s * 7 + v * 3) % 8);
      f.samples["svc.latency_ms"] = {
          {f.created - sim::msec(500), base + jitter},
          {f.created, base + 0.5 * jitter}};
      f.counters["svc.ok"] = 2;
      lines.push_back(wire_encode(f));
    }
  }
  return lines;
}

struct IngestResult {
  std::uint64_t frames = 0;
  std::uint64_t samples = 0;
  std::uint64_t bytes = 0;
  double p95 = 0.0;
  std::size_t anomalies = 0;
  std::string flagged;
};

IngestResult ingest(const std::vector<std::string>& lines) {
  FleetAggregator agg;
  IngestResult res;
  for (const std::string& line : lines) {
    agg.ingest_wire(line);
    res.bytes += line.size();
  }
  res.frames = agg.frames_ingested();
  res.samples = agg.fleet_store().total_count("svc.latency_ms");
  res.p95 = agg.fleet_store().quantile("svc.latency_ms", 0.95);
  res.anomalies = agg.anomalies().size();
  for (const std::string& v : agg.anomalous_vehicles()) {
    if (!res.flagged.empty()) res.flagged += ",";
    res.flagged += v;
  }
  return res;
}

void print_table() {
  util::TextTable table(
      "fleet ingest scaling — synthetic frame streams, 60 s, one hot "
      "vehicle per fleet");
  table.set_header({"vehicles", "frames", "samples", "wire KB", "p95 ms",
                    "anomalies", "flagged"});
  for (int n : {10, 100, 1000}) {
    IngestResult r = ingest(make_stream(n, 60));
    table.add_row({std::to_string(n), std::to_string(r.frames),
                   std::to_string(r.samples),
                   std::to_string(r.bytes / 1024),
                   util::TextTable::num(r.p95, 1),
                   std::to_string(r.anomalies), r.flagged});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: frames and wire bytes scale linearly with fleet "
      "size;\nexactly one vehicle (the hot one) is flagged at every "
      "scale.\n\n");
}

void BM_Ingest(benchmark::State& state) {
  const int vehicles = static_cast<int>(state.range(0));
  const std::vector<std::string> lines = make_stream(vehicles, 60);
  std::uint64_t bytes = 0;
  for (const std::string& l : lines) bytes += l.size();
  for (auto _ : state) {
    FleetAggregator agg;
    for (const std::string& line : lines) agg.ingest_wire(line);
    benchmark::DoNotOptimize(agg.frames_ingested());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Ingest)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("fleet");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
