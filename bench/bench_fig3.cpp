// F3 — Figure 3 reproduction: "Performance of running Inception v3 on
// various processors" — processing time (bars) and max power consumption
// (line) for the DSP-based Intel Movidius NCS, Jetson TX2 Max-Q (GPU#1),
// Jetson TX2 Max-P (GPU#2), Core i7-6700 (CPU) and Tesla V100 (GPU#3).
//
// Paper: 334.5 / 242.8 / 114.3 / 153.9 / 26.8 ms at ~1 / 7.5 / 15 / 60 /
// 250 W. "GPU#3 outperforms other kinds of processors in processing speed,
// while its corresponding max power consumption is considerably bigger."
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "hw/catalog.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;

struct Entry {
  const char* label;
  hw::ProcessorSpec spec;
  double paper_ms;
  double paper_power_w;
};

std::vector<Entry> entries() {
  return {
      {"DSP-based (Intel MNCS)", hw::catalog::intel_mncs(), 334.5, 1.0},
      {"GPU#1 (TX2 Max-Q)", hw::catalog::jetson_tx2_maxq(), 242.8, 7.5},
      {"GPU#2 (TX2 Max-P)", hw::catalog::jetson_tx2_maxp(), 114.3, 15.0},
      {"CPU (i7-6700)", hw::catalog::core_i7_6700(), 153.9, 60.0},
      {"GPU#3 (Tesla V100)", hw::catalog::tesla_v100(), 26.8, 250.0},
  };
}

/// Runs one Inception v3 inference on the device under the event clock and
/// returns {latency ms, energy J}.
std::pair<double, double> run_inception(const hw::ProcessorSpec& spec) {
  sim::Simulator sim;
  hw::ComputeDevice dev(sim, spec);
  double ms = 0.0;
  double energy = 0.0;
  dev.submit({hw::TaskClass::kCnnInference, hw::kInceptionV3Gflop, 0,
              [&](const hw::WorkReport& r) {
                ms = sim::to_millis(r.latency());
                energy = r.dynamic_energy_j;
              }});
  sim.run_until();
  return {ms, energy};
}

void print_table() {
  util::TextTable table(
      "Figure 3: Inception v3 processing time & max power per processor");
  table.set_header({"Processor", "paper (ms)", "measured (ms)",
                    "paper max W", "model max W", "energy/inf (J)"});
  for (const Entry& e : entries()) {
    auto [ms, energy] = run_inception(e.spec);
    table.add_row({e.label, util::TextTable::num(e.paper_ms, 1),
                   util::TextTable::num(ms, 1),
                   util::TextTable::num(e.paper_power_w, 1),
                   util::TextTable::num(e.spec.max_power_w, 1),
                   util::TextTable::num(energy, 2)});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Shape: V100 is fastest and most power-hungry; the embedded parts\n"
      "trade 4-12x the latency for 16-250x less power — the section III-B "
      "energy dilemma.\n\n");
}

void BM_InceptionOnV100Model(benchmark::State& state) {
  auto spec = hw::catalog::tesla_v100();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_inception(spec));
  }
}
BENCHMARK(BM_InceptionOnV100Model);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("fig3");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
