// Machine-readable bench results.
//
// Each bench binary constructs one BenchOutput at the top of main(); the
// print_* helpers then call BenchOutput::record(table) next to their
// printf, and the destructor writes BENCH_<name>.json into the working
// directory: {"bench": name, "tables": [{title, header, rows}, ...]}.
// Serialization goes through util::json (ordered keys), so the file is
// byte-stable for a deterministic run — diffable across commits the same
// way the printed tables are.
#pragma once

#include <fstream>
#include <string>
#include <utility>

#include "util/json.hpp"
#include "util/stats.hpp"

namespace vdap::bench {

class BenchOutput {
 public:
  explicit BenchOutput(std::string name) : name_(std::move(name)) {
    current_ = this;
  }
  ~BenchOutput() {
    write();
    current_ = nullptr;
  }

  BenchOutput(const BenchOutput&) = delete;
  BenchOutput& operator=(const BenchOutput&) = delete;

  /// Records one printed table into the JSON document. Safe to call with no
  /// BenchOutput alive (unit tests of print helpers): it becomes a no-op.
  static void record(const util::TextTable& table) {
    if (current_ != nullptr) current_->add_table(table);
  }

  /// Opt-in profile attachment (DESIGN.md §6j): benches that run with the
  /// sampling profiler attach the profile.jsonl text here, and the
  /// destructor writes it as BENCH_<name>.profile.jsonl next to the table
  /// file. The `.profile.jsonl` suffix keeps it out of bench_compare.py's
  /// numeric gate (which only loads BENCH_*.json); the script instead uses
  /// baseline/candidate profile pairs to print the top regressed frames
  /// when the gate fails. No-op with no BenchOutput alive.
  static void record_profile(std::string profile_jsonl) {
    if (current_ != nullptr) current_->profile_ = std::move(profile_jsonl);
  }

  static BenchOutput* current() { return current_; }

  void add_table(const util::TextTable& table) {
    json::Object o;
    o["title"] = table.title();
    json::Array header;
    for (const std::string& h : table.header()) header.emplace_back(h);
    o["header"] = json::Value(std::move(header));
    json::Array rows;
    for (const auto& row : table.rows()) {
      json::Array r;
      for (const std::string& cell : row) r.emplace_back(cell);
      rows.emplace_back(std::move(r));
    }
    o["rows"] = json::Value(std::move(rows));
    tables_.emplace_back(std::move(o));
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }
  std::string profile_path() const {
    return "BENCH_" + name_ + ".profile.jsonl";
  }

 private:
  void write() const {
    json::Object root;
    root["bench"] = name_;
    root["tables"] = json::Value(tables_);
    std::ofstream f(path(), std::ios::binary | std::ios::trunc);
    if (f) f << json::Value(std::move(root)).dump() << '\n';
    if (!profile_.empty()) {
      std::ofstream p(profile_path(), std::ios::binary | std::ios::trunc);
      if (p) p << profile_;
    }
  }

  static inline BenchOutput* current_ = nullptr;
  std::string name_;
  json::Array tables_;
  std::string profile_;
};

}  // namespace vdap::bench
