// A10 — the §IV-C open problem made concrete: "Zhang et al. [17] and Kang
// et al. [27] have demonstrated that dividing a workload into several
// parts and making them execute on different edge nodes along the path
// from the source to the cloud can get a better response latency ...
// However, how to dynamical divide workload on the edges is still a
// problem."
//
// We enumerate every monotone cut of the license-plate chain across
// vehicle → RSU → cloud and let the elastic manager pick, while sweeping
// the cellular bandwidth factor. Expected shape: with a fat pipe the best
// cut moves work outward; as the pipe degrades the cut retreats toward the
// vehicle; the chosen cut is never worse than the best pure-tier pipeline.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "core/platform.hpp"
#include "util/stats.hpp"
#include "workload/apps.hpp"

namespace {

using namespace vdap;

struct Setup {
  sim::Simulator sim{7};
  std::unique_ptr<core::OpenVdap> cav;
  Setup() {
    cav = std::make_unique<core::OpenVdap>(sim);
    // Busy vehicle: cut placement matters (idle vehicles keep everything).
    auto pedestrian = workload::apps::pedestrian_detection();
    for (int i = 0; i < 25; ++i) cav->dsf().submit(pedestrian);
  }
};

void print_table() {
  util::TextTable table(
      "A10: optimal workload cut across vehicle->RSU->cloud vs cellular "
      "quality (license-plate chain)");
  table.set_header({"cell bw factor", "chosen cut (stage tiers)",
                    "est ms", "best pure tier", "pure est ms"});

  auto dag = workload::apps::license_plate_pipeline();
  dag.set_qos({0, 4, 0});  // compare cuts without the deadline gate
  const std::vector<net::Tier> path = {
      net::Tier::kOnBoard, net::Tier::kRsuEdge, net::Tier::kCloud};

  for (double factor : {1.0, 0.5, 0.2, 0.05, 0.01}) {
    Setup s;
    s.cav->topology().apply_cellular_condition(factor, 0.0);
    // DSRC (RSU hop) is unaffected by the cellular condition; degrade it in
    // lockstep here so the sweep stresses the whole outward path, as if RSU
    // density also thins out at speed.
    if (factor < 0.2) {
      s.cav->topology().set_available(net::Tier::kRsuEdge, factor >= 0.05);
    }

    auto cuts = edgeos::make_path_split_pipelines(dag, path);
    auto pure = core::whole_dag_service(
        dag, {net::Tier::kOnBoard, net::Tier::kRsuEdge, net::Tier::kCloud});

    const edgeos::Pipeline* cut_choice = s.cav->elastic().choose(cuts);
    const edgeos::Pipeline* pure_choice = s.cav->elastic().choose(pure);
    auto cut_est = s.cav->elastic().estimate(cuts);
    auto pure_est = s.cav->elastic().estimate(pure);
    double cut_ms = -1, pure_ms = -1;
    for (std::size_t i = 0; i < cuts.pipelines.size(); ++i) {
      if (cut_choice && cuts.pipelines[i].name == cut_choice->name) {
        cut_ms = sim::to_millis(cut_est[i].latency);
      }
    }
    for (std::size_t i = 0; i < pure.pipelines.size(); ++i) {
      if (pure_choice && pure.pipelines[i].name == pure_choice->name) {
        pure_ms = sim::to_millis(pure_est[i].latency);
      }
    }
    // Render the chosen cut as per-stage tier initials.
    std::string cut_desc = "(none)";
    if (cut_choice != nullptr) {
      cut_desc.clear();
      for (int id : dag.topo_order()) {
        switch (cut_choice->placement[static_cast<std::size_t>(id)]) {
          case net::Tier::kOnBoard: cut_desc += "V "; break;
          case net::Tier::kRsuEdge: cut_desc += "R "; break;
          case net::Tier::kCloud: cut_desc += "C "; break;
          default: cut_desc += "? ";
        }
      }
    }
    table.add_row({util::TextTable::num(factor, 2), cut_desc,
                   cut_ms >= 0 ? util::TextTable::num(cut_ms, 1) : "-",
                   pure_choice ? pure_choice->name : "(none)",
                   pure_ms >= 0 ? util::TextTable::num(pure_ms, 1) : "-"});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Stages: motion-detect, plate-detect, plate-recognize. V=vehicle, "
      "R=RSU, C=cloud.\nExpected shape: the cut retreats toward the "
      "vehicle as the network degrades, and the\nbest cut is never worse "
      "than the best pure-tier placement.\n\n");
}

void BM_EnumerateAndChooseCuts(benchmark::State& state) {
  Setup s;
  auto dag = workload::apps::license_plate_pipeline();
  const std::vector<net::Tier> path = {
      net::Tier::kOnBoard, net::Tier::kRsuEdge, net::Tier::kCloud};
  for (auto _ : state) {
    auto cuts = edgeos::make_path_split_pipelines(dag, path);
    benchmark::DoNotOptimize(s.cav->elastic().choose(cuts));
  }
}
BENCHMARK(BM_EnumerateAndChooseCuts);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("pathsplit");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
