// F2 — Figure 2 reproduction: "The packet and frame loss rates in different
// scenarios" — RTP/UDP video upload over LTE while driving in Detroit at
// {static, 35 MPH, 70 MPH} with {720P @ 3.8 Mbps, 1080P @ 5.8 Mbps},
// 5-minute H.264 streams, 30 fps, one key frame per two seconds.
//
// Paper bars:  packet loss .002/.006/.021/.070/.535/.617
//              frame  loss .012/.027/.390/.763/.911/.980
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <cstdio>

#include "net/video.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;

struct Cell {
  const char* scenario;
  double mph;
  bool hd1080;
  double paper_packet;
  double paper_frame;
};

const Cell kCells[] = {
    {"Static", 0, false, 0.002, 0.012}, {"Static", 0, true, 0.006, 0.027},
    {"35MPH", 35, false, 0.021, 0.390}, {"35MPH", 35, true, 0.070, 0.763},
    {"70MPH", 70, false, 0.535, 0.911}, {"70MPH", 70, true, 0.617, 0.980},
};

void print_table() {
  util::TextTable table(
      "Figure 2: packet & frame loss of LTE video upload (5-min drives, "
      "mean of 5 seeds)");
  table.set_header({"Scenario", "Stream", "paper pkt", "measured pkt",
                    "paper frame", "measured frame"});
  for (const Cell& c : kCells) {
    auto spec = c.hd1080 ? net::VideoStreamSpec::hd1080()
                         : net::VideoStreamSpec::hd720();
    double packet = 0.0, frame = 0.0;
    constexpr int kSeeds = 5;
    for (int s = 0; s < kSeeds; ++s) {
      auto stats = net::run_fig2_cell(c.mph, spec, 1000 + s);
      packet += stats.packet_loss_rate() / kSeeds;
      frame += stats.frame_loss_rate() / kSeeds;
    }
    table.add_row({c.scenario, spec.name, util::TextTable::num(c.paper_packet, 3),
                   util::TextTable::num(packet, 3),
                   util::TextTable::num(c.paper_frame, 3),
                   util::TextTable::num(frame, 3)});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Shape checks: frame >= packet everywhere; loss grows superlinearly "
      "with speed;\n1080P >= 720P at every speed (paper section III-A).\n\n");

  // Mechanism breakdown at 70 MPH (the paper's explanation).
  net::LteMobilityParams lte;
  net::CellularChannel ch(lte, net::mph_to_mps(70.0), 300.0, 42);
  std::printf(
      "70 MPH channel mechanics: %d handovers (%d escalated to RLF), "
      "%.1f%% outage time,\nmean achievable uplink %.2f Mbps vs 3.8/5.8 "
      "Mbps offered.\n\n",
      ch.handovers(), ch.rlf_count(), 100.0 * ch.outage_fraction(),
      ch.mean_capacity_mbps());
}

void BM_Upload720pAt35Mph(benchmark::State& state) {
  for (auto _ : state) {
    auto stats = net::run_fig2_cell(35.0, net::VideoStreamSpec::hd720(),
                                    7, 60.0);
    benchmark::DoNotOptimize(stats.packets_lost);
  }
}
BENCHMARK(BM_Upload720pAt35Mph)->Unit(benchmark::kMillisecond);

void BM_ChannelTraceConstruction(benchmark::State& state) {
  net::LteMobilityParams lte;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    net::CellularChannel ch(lte, net::mph_to_mps(70.0), 300.0, seed++);
    benchmark::DoNotOptimize(ch.mean_capacity_mbps());
  }
}
BENCHMARK(BM_ChannelTraceConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vdap::bench::BenchOutput bench_out("fig2");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
