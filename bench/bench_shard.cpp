// Sharded-simulator scaling (DESIGN.md §6f): run_fleet_scale fleets from
// 1k to 100k vehicles on the lock-step sharded runner.
//
// Two sections:
//   * A deterministic digest table (frames, samples, FNV digest per fleet
//     size) — byte-stable per seed and INDEPENDENT of the shard/thread
//     counts used to produce it, so it is committed as BENCH_shard.json
//     and sits under the bench drift gate. Any nondeterminism in the
//     sharded core shows up here as a baseline diff.
//   * A wall-clock speedup table (1 shard/1 thread vs 8/8 at 100k
//     vehicles) printed for humans but NOT recorded — wall time is not
//     byte-stable. The CI scaling job greps it for the >2x criterion.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"

#include <chrono>
#include <cstdio>
#include <string>

#include "core/fleet_scale.hpp"
#include "sim/thread_pool.hpp"
#include "util/stats.hpp"

namespace {

using namespace vdap;
using core::FleetScaleConfig;
using core::FleetScaleOutcome;

FleetScaleConfig scale_config(int vehicles, int shards, int threads) {
  FleetScaleConfig cfg;
  cfg.vehicles = vehicles;
  cfg.seed = 7;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.epoch = sim::seconds(1);
  // Light per-vehicle schedule: the point is fleet WIDTH (100k calendar
  // queues' worth of events), not per-vehicle depth.
  cfg.sample_period = sim::seconds(2);
  cfg.samples_per_tick = 2;
  cfg.run_until = sim::seconds(4);
  cfg.drain = sim::seconds(4);
  cfg.shipper.flush_period = sim::seconds(2);
  return cfg;
}

void print_digest_table() {
  util::TextTable table(
      "sharded fleet-scale digests — 4 s load + 4 s drain, seed 7 "
      "(shard/thread-count independent)");
  table.set_header({"vehicles", "frames", "samples", "wire MB", "dropped",
                    "digest"});
  for (int n : {1000, 10000, 100000}) {
    // Run on many shards with every core: the digest is identical at
    // 1/1 (the sweep test proves it), so use the fast configuration.
    FleetScaleOutcome r = core::run_fleet_scale(
        scale_config(n, 8, sim::ThreadPool::hardware_threads()));
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(r.digest));
    table.add_row({std::to_string(n), std::to_string(r.frames_delivered),
                   std::to_string(r.samples_delivered),
                   std::to_string(r.wire_bytes / (1024 * 1024)),
                   std::to_string(r.frames_dropped), digest});
  }
  bench::BenchOutput::record(table);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected shape: frames and samples scale linearly with fleet size;\n"
      "digests are a pure function of (seed, config) — byte-identical no\n"
      "matter how many shards or threads produced them.\n\n");
}

double timed_run(const FleetScaleConfig& cfg, std::uint64_t* digest) {
  const auto t0 = std::chrono::steady_clock::now();
  FleetScaleOutcome r = core::run_fleet_scale(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  *digest = r.digest;
  return std::chrono::duration<double>(t1 - t0).count();
}

void print_speedup_table() {
  const int n = 100000;
  std::uint64_t d_serial = 0;
  std::uint64_t d_parallel = 0;
  const double serial = timed_run(scale_config(n, 1, 1), &d_serial);
  const double parallel = timed_run(scale_config(n, 8, 8), &d_parallel);
  util::TextTable table("sharded fleet-scale wall clock — 100k vehicles "
                        "(not committed: wall time)");
  table.set_header({"shards", "threads", "wall s", "speedup", "digest"});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(d_serial));
  table.add_row({"1", "1", util::TextTable::num(serial, 2), "1.0", buf});
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(d_parallel));
  table.add_row({"8", "8", util::TextTable::num(parallel, 2),
                 util::TextTable::num(serial / parallel, 2), buf});
  std::printf("%s", table.to_string().c_str());
  // hardware_threads bounds the achievable speedup: on a 1-core box the
  // 8/8 run degenerates to serial (and that is expected, not a failure).
  std::printf("speedup_8x8_vs_1x1=%.2f digests_match=%s hardware_threads=%d\n\n",
              serial / parallel, d_serial == d_parallel ? "yes" : "NO",
              sim::ThreadPool::hardware_threads());
}

void BM_ScaleEpochs(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    FleetScaleOutcome r =
        core::run_fleet_scale(scale_config(2000, shards, threads));
    benchmark::DoNotOptimize(r.digest);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ScaleEpochs)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The bench gate invokes every binary with --benchmark_list_tests to
  // collect only the deterministic tables; the wall-clock section would
  // be dead weight there (and is not byte-stable anyway).
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_list_tests", 0) == 0) {
      list_only = true;
    }
  }
  vdap::bench::BenchOutput bench_out("shard");
  print_digest_table();
  if (!list_only) print_speedup_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
