#!/usr/bin/env bash
# Full local gate: the tier-1 build + test run from ROADMAP.md, the bench
# regression gate (BENCH_*.json vs bench/baselines/, >15% drift fails),
# then an AddressSanitizer+UBSan build running the chaos/soak, telemetry-
# trace, SLO-health and fleet-telemetry suites (the long-horizon paths
# most likely to hide lifetime bugs).
#
# Usage: scripts/check.sh [--tier1-only | --bench-rebaseline]
#   --tier1-only        build + full ctest, skip bench gate and ASan pass
#   --bench-rebaseline  regenerate bench/baselines/ from this build and
#                       exit (bench tables are deterministic — fixed seeds
#                       — so the refreshed files are byte-stable)
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: build + full ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"

# Emits every bench's BENCH_*.json into $1 without timing loops:
# the paper tables print from main() before RunSpecifiedBenchmarks(), so
# --benchmark_list_tests skips the (wall-clock, non-deterministic) part.
run_benches() {
  local out_dir="$1"
  mkdir -p "$out_dir"
  for b in "$ROOT"/build/bench/bench_*; do
    [[ -x "$b" && ! "$b" == *.* ]] || continue
    (cd "$out_dir" && "$b" --benchmark_list_tests=true >/dev/null)
  done
}

if [[ "${1:-}" == "--bench-rebaseline" ]]; then
  echo "== regenerating bench/baselines/ =="
  rm -f "$ROOT"/bench/baselines/BENCH_*.json
  run_benches "$ROOT/bench/baselines"
  ls "$ROOT"/bench/baselines/
  echo "OK (rebaselined — review and commit bench/baselines/)"
  exit 0
fi

ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "OK (tier-1 only)"
  exit 0
fi

echo "== bench regression gate =="
rm -rf build/bench-results
run_benches "$ROOT/build/bench-results"
python3 scripts/bench_compare.py bench/baselines build/bench-results

echo "== asan: chaos + trace + slo + fleet suites under AddressSanitizer/UBSan =="
cmake -B build-asan -S . -DASAN=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L 'chaos|trace|slo|fleet'

echo "OK"
