#!/usr/bin/env bash
# Full local gate: the tier-1 build + test run from ROADMAP.md, the bench
# regression gate (BENCH_*.json vs bench/baselines/, >15% drift fails,
# --strict: missing baselines fail rather than auto-seed), then an
# AddressSanitizer+UBSan build running the chaos/soak, telemetry-trace,
# SLO-health, fleet-telemetry, sharded-simulator, sharded-ingest,
# shard-observability, flight-recorder and profiling suites (the
# long-horizon and multi-threaded paths most likely to hide lifetime and
# ordering bugs).
#
# Usage: scripts/check.sh
#          [--tier1-only | --bench-only | --bench-rebaseline | --tsan]
#   --tier1-only        build + full ctest, skip bench gate and sanitizers
#   --bench-only        build + bench regression gate, skip ctest and
#                       sanitizers (the CI bench job)
#   --bench-rebaseline  regenerate bench/baselines/ from this build and
#                       exit (bench tables are deterministic — fixed seeds
#                       — so the refreshed files are byte-stable)
#   --tsan              additionally build with ThreadSanitizer and run the
#                       sharded + fleet + ingest suites under it (the
#                       thread-pool epoch runner drives all concurrent code)
#
# JOBS can be overridden from the environment: JOBS=2 scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"

if [[ -z "${JOBS:-}" ]]; then
  JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || true)"
  if ! [[ "$JOBS" =~ ^[1-9][0-9]*$ ]]; then
    echo "error: cannot determine CPU count (nproc/sysctl failed: '$JOBS')." >&2
    echo "       set JOBS explicitly, e.g.: JOBS=4 scripts/check.sh" >&2
    exit 1
  fi
fi

echo "== tier-1: build + full ctest (JOBS=$JOBS) =="
cmake -B build -S .
cmake --build build -j "$JOBS"

# Emits every bench's BENCH_*.json into $1 without timing loops:
# the paper tables print from main() before RunSpecifiedBenchmarks(), so
# --benchmark_list_tests skips the (wall-clock, non-deterministic) part.
run_benches() {
  local out_dir="$1"
  local sources built
  mkdir -p "$out_dir"
  sources="$(cd "$ROOT/bench" && ls bench_*.cpp | sed 's/\.cpp$//')"
  built=0
  for b in "$ROOT"/build/bench/bench_*; do
    [[ "$b" == *.* ]] && continue  # CMake droppings (bench_foo.dir etc.)
    if [[ ! -x "$b" ]]; then
      echo "warning: skipping non-executable bench binary: $b" >&2
      continue
    fi
    (cd "$out_dir" && "$b" --benchmark_list_tests=true >/dev/null)
    built=$((built + 1))
  done
  # A bench source without a built binary means a stale build dir (or a
  # target dropped from bench/CMakeLists.txt) — the gate would silently
  # compare against a shrunken result set.
  for s in $sources; do
    if [[ ! -x "$ROOT/build/bench/$s" ]]; then
      echo "error: bench/$s.cpp has no built binary at build/bench/$s" >&2
      echo "       (stale build? re-run cmake, or remove the source)" >&2
      exit 1
    fi
  done
  if [[ "$built" -eq 0 ]]; then
    echo "error: no bench binaries found under build/bench/" >&2
    exit 1
  fi
}

if [[ "${1:-}" == "--bench-rebaseline" ]]; then
  echo "== regenerating bench/baselines/ =="
  rm -f "$ROOT"/bench/baselines/BENCH_*.json \
        "$ROOT"/bench/baselines/BENCH_*.profile.jsonl
  run_benches "$ROOT/bench/baselines"
  ls "$ROOT"/bench/baselines/
  echo "OK (rebaselined — review and commit bench/baselines/)"
  exit 0
fi

if [[ "${1:-}" != "--bench-only" ]]; then
  ctest --test-dir build --output-on-failure -j "$JOBS"
fi

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "OK (tier-1 only)"
  exit 0
fi

echo "== bench regression gate =="
rm -rf build/bench-results
# bench_obs dumps its capture-on trace/metrics/shards artifacts here so
# they ride along with the gate results (CI uploads the directory).
export VDAP_OBS_ARTIFACTS="$ROOT/build/bench-results/obs-artifacts"
mkdir -p "$VDAP_OBS_ARTIFACTS"
run_benches "$ROOT/build/bench-results"
# --strict: a bench without a committed baseline fails here (and in CI)
# instead of being auto-seeded; --bench-rebaseline is the seeding path.
# --report: print the full drift report even on success, so every run
# shows how close each metric sat to the 15% gate.
python3 scripts/bench_compare.py bench/baselines build/bench-results \
        --strict --report

if [[ "${1:-}" == "--bench-only" ]]; then
  echo "OK (bench only)"
  exit 0
fi

echo "== asan: chaos + trace + slo + fleet + shard + ingest + obs + flight + prof suites under ASan/UBSan =="
cmake -B build-asan -S . -DASAN=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -L 'chaos|trace|slo|fleet|shard|ingest|obs|flight|prof'

if [[ "${1:-}" == "--tsan" ]]; then
  echo "== tsan: shard + fleet + ingest + obs + flight + prof suites under ThreadSanitizer =="
  cmake -B build-tsan -S . -DTSAN=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -L 'shard|fleet|ingest|obs|flight|prof'
fi

echo "OK"
