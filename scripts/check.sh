#!/usr/bin/env bash
# Full local gate: the tier-1 build + test run from ROADMAP.md, then an
# AddressSanitizer+UBSan build running the chaos/soak and telemetry-trace
# suites (the long-horizon paths most likely to hide lifetime bugs).
#
# Usage: scripts/check.sh [--tier1-only]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: build + full ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "OK (tier-1 only)"
  exit 0
fi

echo "== asan: chaos + trace suites under AddressSanitizer/UBSan =="
cmake -B build-asan -S . -DASAN=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L 'chaos|trace'

echo "OK"
