#!/usr/bin/env python3
"""Bench regression gate: compare BENCH_*.json results against baselines.

Usage: bench_compare.py <baseline_dir> <candidate_dir> [--threshold 0.15]

Each BENCH_<name>.json is {"bench": name, "tables": [{title, header,
rows}, ...]} (bench/bench_output.hpp). The tables are paper-shaped
simulation results, deterministic for the fixed seeds baked into each
bench, so against up-to-date baselines every cell matches exactly.

The gate compares numeric cells (relative drift, symmetric so both
directions of surprise fail) and ignores non-numeric cells. On failure it
prints, besides the failing cells, a per-metric drift report covering
EVERY compared key — percentage and direction — so one glance separates a
systematic shift from a targeted regression; --report prints the same
drift report on success too (CI runs it, so the uploaded log always
shows how close every metric sat to the gate). When a bench attached a
profile (BENCH_<name>.profile.jsonl, bench/bench_output.hpp) and both
the baseline and candidate dirs carry one, a failure additionally prints
the top regressed frames — per-frame self-share in percentage points,
candidate minus baseline — pointing at the code region that absorbed the
wall-clock regression. Profiles never gate anything themselves (they are
wall-plane samples, not deterministic cells). A result file
missing from the candidate set, a table missing from the baseline, or a
changed table shape fails with a pointer at --bench-rebaseline. A
candidate file with no baseline is AUTO-SEEDED: the candidate is copied
into the baseline dir verbatim (loudly — the warning tells you to review
and commit it) so a brand-new bench doesn't fail the gate before its
first baseline lands. Under --strict a missing baseline FAILS instead:
CI runs strict so an uncommitted baseline can never slip through as a
silent auto-seed on a throwaway runner.

Exit codes: 0 ok, 1 regressions/shape mismatches, 2 usage/IO errors.
"""

import argparse
import json
import os
import shutil
import sys


def load_dir(path):
    """name -> parsed document, for every BENCH_*.json under path."""
    docs = {}
    if not os.path.isdir(path):
        return docs
    for entry in sorted(os.listdir(path)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        with open(os.path.join(path, entry), "rb") as f:
            docs[entry] = json.load(f)
    return docs


def load_profiles(path):
    """name -> {frame: self_count}, for BENCH_*.profile.jsonl under path.

    Mirrors the self-time fold of vdap-report --profile: each sampled
    stack's count is attributed to its innermost frame. The meta line
    (the first object, carrying interval_us) is skipped; unparseable
    files are skipped too — profiles are diagnostic, never load-bearing.
    """
    profiles = {}
    if not os.path.isdir(path):
        return profiles
    for entry in sorted(os.listdir(path)):
        if not (entry.startswith("BENCH_") and
                entry.endswith(".profile.jsonl")):
            continue
        frames = {}
        try:
            with open(os.path.join(path, entry), "rb") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    row = json.loads(line)
                    stack = row.get("stack")
                    if not stack:
                        continue  # meta line, or malformed
                    leaf = stack.split(";")[-1]
                    frames[leaf] = frames.get(leaf, 0) + int(row["count"])
        except (OSError, ValueError, KeyError, TypeError):
            continue
        if frames:
            profiles[entry] = frames
    return profiles


def print_profile_diffs(baseline_dir, candidate_dir, top_n=10):
    """On gate failure: name the frames that absorbed the regression."""
    base_profs = load_profiles(baseline_dir)
    cand_profs = load_profiles(candidate_dir)
    for name in sorted(base_profs.keys() & cand_profs.keys()):
        base, cand = base_profs[name], cand_profs[name]
        base_total = sum(base.values())
        cand_total = sum(cand.values())
        if base_total == 0 or cand_total == 0:
            continue
        deltas = []
        for frame in base.keys() | cand.keys():
            bp = 100.0 * base.get(frame, 0) / base_total
            cp = 100.0 * cand.get(frame, 0) / cand_total
            deltas.append((cp - bp, frame, bp, cp))
        deltas.sort(key=lambda d: (-d[0], d[1]))
        print(f"top regressed frames, {name} (self-share percentage "
              f"points, candidate vs baseline — frames that absorbed "
              f"time come first):")
        for delta, frame, bp, cp in deltas[:top_n]:
            print(f"  {delta:+7.2f}pp  {frame}: {bp:.2f}% -> {cp:.2f}%")


def as_number(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def drift(base, cand):
    """Symmetric relative drift in [0, 1]."""
    denom = max(abs(base), abs(cand))
    if denom < 1e-12:
        return 0.0
    return abs(cand - base) / denom


def compare_tables(name, base, cand, threshold, failures, comparisons):
    base_tables = {t.get("title", ""): t for t in base.get("tables", [])}
    cand_tables = {t.get("title", ""): t for t in cand.get("tables", [])}
    for title, bt in base_tables.items():
        ct = cand_tables.get(title)
        where = f"{name}: table {title!r}"
        if ct is None:
            failures.append(f"{where} missing from candidate")
            continue
        if bt.get("header") != ct.get("header"):
            failures.append(f"{where} header changed")
            continue
        brows, crows = bt.get("rows", []), ct.get("rows", [])
        if len(brows) != len(crows):
            failures.append(
                f"{where} row count {len(brows)} -> {len(crows)}")
            continue
        for brow, crow in zip(brows, crows):
            label = brow[0] if brow else "?"
            if len(brow) != len(crow):
                failures.append(f"{where} row {label!r} width changed")
                continue
            for col, (b, c) in enumerate(zip(brow, crow)):
                bn, cn = as_number(b), as_number(c)
                if bn is None or cn is None:
                    continue
                d = drift(bn, cn)
                header = bt.get("header", [])
                col_name = header[col] if col < len(header) else str(col)
                key = f"{name}: {title!r} row {label!r} col {col_name!r}"
                comparisons.append((key, b, c, d, cn - bn))
                if d > threshold:
                    failures.append(f"{key}: {b} -> {c} ({d:.1%} drift)")
    for title in cand_tables:
        if title not in base_tables:
            print(f"note: {name}: new table {title!r} (no baseline)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline_dir")
    ap.add_argument("candidate_dir")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max relative drift per numeric cell (default 0.15)")
    ap.add_argument("--strict", action="store_true",
                    help="fail on a candidate with no baseline instead of "
                         "auto-seeding it (CI mode: baselines must be "
                         "committed, never invented on the runner)")
    ap.add_argument("--report", action="store_true",
                    help="print the per-metric drift report even when the "
                         "gate passes (CI mode: the log shows how close "
                         "every metric sat to the threshold)")
    args = ap.parse_args()

    baselines = load_dir(args.baseline_dir)
    candidates = load_dir(args.candidate_dir)
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir} "
              f"(run scripts/check.sh --bench-rebaseline)", file=sys.stderr)
        return 2
    if not candidates:
        print(f"error: no BENCH_*.json results in {args.candidate_dir}",
              file=sys.stderr)
        return 2

    failures = []
    comparisons = []
    for name, base in baselines.items():
        cand = candidates.get(name)
        if cand is None:
            failures.append(f"{name}: result file missing from candidate run")
            continue
        compare_tables(name, base, cand, args.threshold, failures, comparisons)
    for name in candidates:
        if name not in baselines:
            if args.strict:
                failures.append(
                    f"{name}: no committed baseline (--strict forbids "
                    f"auto-seeding; run the bench locally and commit "
                    f"bench/baselines/{name})")
                continue
            # A brand-new bench: seed its baseline from this run instead of
            # failing. Copy bytes verbatim so the baseline is exactly what
            # the (deterministic) bench wrote.
            seeded = os.path.join(args.baseline_dir, name)
            shutil.copyfile(os.path.join(args.candidate_dir, name), seeded)
            print("!" * 72, file=sys.stderr)
            print(f"WARNING: {name}: no baseline found — AUTO-SEEDED it from "
                  f"this run into {seeded}.\n"
                  f"Review the numbers and COMMIT that file; future runs are "
                  f"gated against it.", file=sys.stderr)
            print("!" * 72, file=sys.stderr)

    # Full drift report: every compared key, with percentage and
    # direction, so one glance separates a systematic shift (everything
    # moved) from a targeted regression (one metric spiked). Printed on
    # every failure, and on success too under --report.
    def drift_report():
        print(f"per-metric drift, all {len(comparisons)} compared key(s) "
              f"('+' candidate above baseline, '-' below):")
        for key, b, c, d, delta in comparisons:
            direction = "+" if delta > 0 else ("-" if delta < 0 else "=")
            marker = " FAIL" if d > args.threshold else ""
            print(f"  {direction} {d:7.2%}  {key}: {b} -> {c}{marker}")

    if failures:
        print(f"bench regression gate: {len(failures)} failure(s) at "
              f">{args.threshold:.0%} drift:")
        for f in failures:
            print(f"  FAIL {f}")
        drift_report()
        # Where attached profiles exist on both sides, name the frames
        # that absorbed the regression (DESIGN.md §6j).
        print_profile_diffs(args.baseline_dir, args.candidate_dir)
        print("if intentional, refresh with scripts/check.sh "
              "--bench-rebaseline and commit bench/baselines/")
        return 1
    print(f"bench regression gate: {len(baselines)} result file(s) within "
          f"{args.threshold:.0%} of baseline")
    if args.report:
        drift_report()
    return 0


if __name__ == "__main__":
    sys.exit(main())
