#!/usr/bin/env python3
"""CLI/README lockstep check for vdap-report.

Usage: check_cli_docs.py <vdap-report-binary> <README.md>

Runs `<binary> --help`, extracts every flag mode the binary advertises in
its "modes:" section (--fleet, --shards, ...), and fails — naming the
missing flag — unless each one has a row in a README markdown table
(a line starting with '|' containing the backticked flag). The ctest
registration in tools/CMakeLists.txt runs this, so adding a mode to the
binary without documenting it (or documenting a mode the binary dropped)
breaks the build's test suite, not a reader.

Exit codes: 0 in lockstep, 1 drift, 2 usage/IO errors.
"""

import re
import subprocess
import sys


def help_mode_flags(binary):
    out = subprocess.run([binary, "--help"], capture_output=True, text=True,
                         timeout=60)
    if out.returncode != 0:
        print(f"error: {binary} --help exited {out.returncode}",
              file=sys.stderr)
        sys.exit(2)
    flags = []
    in_modes = False
    for line in out.stdout.splitlines():
        if line.strip() == "modes:":
            in_modes = True
            continue
        if not in_modes:
            continue
        # A mode line starts with two spaces then the mode token; flag
        # modes start with '--' (the positional trace mode has no flag to
        # look up in the README table by name).
        m = re.match(r"  (--[a-z-]+)\s", line)
        if m:
            flags.append(m.group(1))
    if not flags:
        print("error: no flag modes found in --help output (format drift? "
              "expected a 'modes:' section with '  --flag ...' lines)",
              file=sys.stderr)
        sys.exit(2)
    return flags


def readme_table_flags(readme_path):
    flags = set()
    with open(readme_path, encoding="utf-8") as f:
        for line in f:
            if not line.lstrip().startswith("|"):
                continue
            flags.update(re.findall(r"`(--[a-z-]+)", line))
    return flags


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    binary, readme = sys.argv[1], sys.argv[2]
    advertised = help_mode_flags(binary)
    documented = readme_table_flags(readme)
    missing = [f for f in advertised if f not in documented]
    if missing:
        for f in missing:
            print(f"FAIL: {binary} --help advertises {f!r} but {readme} has "
                  f"no table row mentioning `{f}`")
        return 1
    print(f"ok: all {len(advertised)} vdap-report modes "
          f"({', '.join(advertised)}) have README table rows")
    return 0


if __name__ == "__main__":
    sys.exit(main())
