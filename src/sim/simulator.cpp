#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace vdap::sim {

EventId Simulator::at(SimTime when, EventFn fn) {
  if (when < now_) when = now_;
  return queue_.push(when, std::move(fn));
}

Simulator::PeriodicHandle Simulator::every(SimDuration period, EventFn fn,
                                           SimDuration first_delay) {
  if (period <= 0) throw std::invalid_argument("periodic: period must be > 0");
  PeriodicHandle handle;
  auto alive = handle.alive_;
  // Self-rescheduling closure: each firing checks liveness, runs the user
  // callback, then re-arms itself. The closure holds only a weak_ptr to
  // itself — ownership lives in the queued events — so no shared_ptr cycle
  // outlives the queue.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  auto cb = std::move(fn);
  *tick = [this, alive, period, cb, weak]() {
    if (!*alive) return;
    cb();
    if (!*alive) return;
    if (auto self = weak.lock()) {
      after(period, [self]() { (*self)(); });
    }
  };
  after(first_delay, [tick]() { (*tick)(); });
  return handle;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    SimTime t = queue_.next_time();
    if (t > until) break;
    auto ev = queue_.pop();
    assert(ev.at >= now_);
    now_ = ev.at;
    ev.fn();
    ++fired;
  }
  if (until != kTimeMax && now_ < until) now_ = until;
  return fired;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  now_ = ev.at;
  ev.fn();
  return true;
}

void Simulator::advance_to(SimTime when) {
  if (when < now_) return;
  if (queue_.next_time() < when) {
    throw std::logic_error(
        "advance_to would skip pending events; use run_until instead");
  }
  now_ = when;
}

util::RngStream& Simulator::rng(std::string_view name) {
  auto it = streams_.find(std::string(name));
  if (it == streams_.end()) {
    it = streams_
             .emplace(std::string(name),
                      std::make_unique<util::RngStream>(seed_, name))
             .first;
  }
  return *it->second;
}

}  // namespace vdap::sim
