// Priority event queues for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a strictly increasing
// sequence number breaks ties), which makes simulations deterministic and
// lets components rely on happens-before within a timestep.
//
// Two implementations share the interface:
//
//   * EventQueue — a two-level bucketed calendar queue: a wheel of
//     fixed-width time buckets covers the near future (push/pop are O(1)
//     amortized; a bucket is sorted once, when the cursor reaches it), and
//     a binary heap holds everything beyond the horizon, migrating into
//     the wheel as the window advances. Event callbacks live in a
//     slot-recycling pool, so memory stays proportional to the number of
//     *pending* events instead of growing with every event ever pushed —
//     the property that lets a 100k-vehicle shard run for minutes.
//
//   * HeapEventQueue — the original std::priority_queue implementation,
//     kept as the reference oracle: tests/sharded_test.cpp drives both
//     through randomized push/cancel/pop sequences and asserts identical
//     behavior.
//
// Both order events by (time, push sequence); EventQueue's ids additionally
// encode a generation so a recycled slot cannot be cancelled through a
// stale handle.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace vdap::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// `bucket_width` x `buckets` is the calendar horizon (default ~4 s of
  /// sim time); events beyond it wait in the overflow heap.
  explicit EventQueue(SimDuration bucket_width = usec(8192),
                      std::size_t buckets = 512);

  /// Enqueues `fn` to fire at absolute time `at`. Returns an id usable with
  /// cancel().
  EventId push(SimTime at, EventFn fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// no-op returning false. Cancelled events are dropped lazily on pop.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Occupancy introspection (the sharded runtime report): physical entries
  /// currently in the calendar wheel / the overflow heap. Both include
  /// cancelled-but-not-yet-dropped entries, so they bound memory, not work.
  std::size_t wheel_entries() const { return wheel_entries_; }
  std::size_t overflow_entries() const { return overflow_.size(); }

  /// Time of the earliest pending event; kTimeMax when empty.
  SimTime next_time();

  /// Pops and returns the earliest event. Precondition: !empty().
  struct Fired {
    SimTime at;
    EventId id;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    bool pending = false;  // false once fired or cancelled
  };
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: insertion order
    std::uint32_t slot;
  };
  struct EntryAfter {  // min-heap comparator for the overflow
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::uint32_t alloc_slot(EventFn fn);
  void retire_slot(std::uint32_t slot);
  EventId id_of(std::uint32_t slot) const {
    return (static_cast<EventId>(slots_[slot].gen) << 32) | slot;
  }
  void wheel_insert(Entry e);
  /// Advances cursor / re-anchors / migrates overflow until the earliest
  /// live entry sits at buckets_[cursor_][active_pos_]. Returns false when
  /// nothing is pending.
  bool position();
  void advance_bucket();
  void migrate_overflow();

  const SimDuration width_;
  const std::size_t nbuckets_;
  std::vector<std::vector<Entry>> buckets_;
  std::priority_queue<Entry, std::vector<Entry>, EntryAfter> overflow_;
  SimTime win_lo_ = 0;      // start time of the cursor bucket
  SimTime win_hi_ = 0;      // first time beyond the wheel horizon
  std::size_t cursor_ = 0;  // bucket the window starts at
  bool active_sorted_ = false;  // cursor bucket sorted + being consumed
  std::size_t active_pos_ = 0;  // consume index into the cursor bucket
  std::size_t wheel_entries_ = 0;  // physical entries in the wheel

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

/// The original binary-heap event queue (see file comment). Same interface
/// and firing order as EventQueue; ids are plain insertion indices.
class HeapEventQueue {
 public:
  EventId push(SimTime at, EventFn fn);
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  SimTime next_time();

  using Fired = EventQueue::Fired;
  Fired pop();

 private:
  struct Entry {
    SimTime at;
    EventId id;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Callbacks are stored out of the heap so cancel() is O(1).
  std::vector<EventFn> fns_;          // indexed by id
  std::vector<bool> cancelled_;       // indexed by id
  EventId next_id_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace vdap::sim
