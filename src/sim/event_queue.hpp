// Priority event queue for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a strictly increasing
// sequence number breaks ties), which makes simulations deterministic and
// lets components rely on happens-before within a timestep.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace vdap::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Enqueues `fn` to fire at absolute time `at`. Returns an id usable with
  /// cancel().
  EventId push(SimTime at, EventFn fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// no-op returning false. Cancelled events are dropped lazily on pop.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event; kTimeMax when empty.
  SimTime next_time();

  /// Pops and returns the earliest event. Precondition: !empty().
  struct Fired {
    SimTime at;
    EventId id;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime at;
    EventId id;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Callbacks are stored out of the heap so cancel() is O(1).
  std::vector<EventFn> fns_;          // indexed by id
  std::vector<bool> cancelled_;       // indexed by id
  EventId next_id_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace vdap::sim
