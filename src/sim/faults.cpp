#include "sim/faults.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "telemetry/flight.hpp"
#include "telemetry/telemetry.hpp"

namespace vdap::sim {

void FaultInjector::on(FaultKind kind, Handler handler) {
  handlers_[kind] = std::move(handler);
}

void FaultInjector::arm(const FaultPlan& plan) {
  if (armed_) throw std::logic_error("FaultInjector::arm called twice");
  armed_ = true;
  plan_name_ = plan.name;
  for (const FaultSpec& spec : plan.faults) {
    auto shared = std::make_shared<const FaultSpec>(spec);
    int repeat = std::max(1, spec.repeat);
    for (int r = 0; r < repeat; ++r) {
      schedule_window(shared, spec.start + r * spec.period);
    }
  }
}

void FaultInjector::schedule_window(std::shared_ptr<const FaultSpec> spec,
                                    SimTime start) {
  if (spec->kind == FaultKind::kLinkFlap) {
    SimTime window_end = start + spec->duration;
    sim_.at(start, [this, spec, window_end]() { flap_down(spec, window_end); });
    return;
  }
  sim_.at(start, [this, spec]() { fire(*spec, true); });
  if (spec->duration > 0) {
    sim_.at(start + spec->duration, [this, spec]() { fire(*spec, false); });
  }
}

void FaultInjector::flap_down(std::shared_ptr<const FaultSpec> spec,
                              SimTime window_end) {
  if (sim_.now() >= window_end) return;
  fire(*spec, true);
  SimTime up_at =
      std::min(sim_.now() + jittered(*spec, spec->down_time), window_end);
  sim_.at(up_at, [this, spec, window_end]() {
    fire(*spec, false);
    SimTime down_at = sim_.now() + jittered(*spec, spec->up_time);
    if (down_at < window_end) {
      sim_.at(down_at,
              [this, spec, window_end]() { flap_down(spec, window_end); });
    }
  });
}

SimDuration FaultInjector::jittered(const FaultSpec& spec, SimDuration base) {
  if (spec.jitter <= 0.0) return std::max<SimDuration>(base, usec(1));
  double u = sim_.rng("fault." + spec.name).uniform();
  double factor = 1.0 + spec.jitter * (2.0 * u - 1.0);
  auto d = static_cast<SimDuration>(static_cast<double>(base) * factor);
  return std::max<SimDuration>(d, usec(1));
}

void FaultInjector::fire(const FaultSpec& spec, bool begin) {
  trace_.push_back(
      FaultTraceEvent{sim_.now(), spec.name, spec.kind, spec.target, begin});
  if (begin) {
    ++applied_;
    if (spec.duration > 0) ++active_;
  } else {
    --active_;
  }
  if (flight_recording_) {
    // Flight plane (always-on, independent of telemetry::on()): record
    // the window edge and raise an incident trigger on begin.
    telemetry::flight_fault(sim_.now(), spec.name, spec.target,
                            to_string(spec.kind), begin);
  }
  if (telemetry::on()) {
    telemetry::Tracer& tr = telemetry::tracer();
    json::Object args;
    args["kind"] = std::string(to_string(spec.kind));
    args["target"] = spec.target;
    args["severity"] = spec.severity;
    if (begin) {
      telemetry::count("faults.applied",
                       {{"kind", to_string(spec.kind)}});
      if (spec.duration > 0) {
        telem_open_[spec.name].push_back(tr.begin(
            sim_.now(), "fault", spec.name, "faults", std::move(args)));
      } else {
        tr.instant(sim_.now(), "fault", spec.name, "faults", std::move(args));
      }
    } else {
      auto it = telem_open_.find(spec.name);
      if (it != telem_open_.end() && !it->second.empty()) {
        tr.end(sim_.now(), it->second.back());
        it->second.pop_back();
        if (it->second.empty()) telem_open_.erase(it);
      }
    }
    telemetry::gauge("faults.active", active_);
  }
  auto it = handlers_.find(spec.kind);
  if (it != handlers_.end() && it->second) it->second(spec, begin);
}

std::vector<std::string> FaultInjector::trace_lines() const {
  std::vector<std::string> lines;
  lines.reserve(trace_.size());
  for (const FaultTraceEvent& ev : trace_) {
    std::ostringstream os;
    os << "t=" << ev.time << (ev.begin ? " begin " : " end ")
       << to_string(ev.kind) << ' ' << ev.fault << " target=" << ev.target;
    lines.push_back(os.str());
  }
  return lines;
}

namespace plans {

// All plans fit comfortably inside a ten-simulated-minute run; the soak
// suite stretches them via FaultSpec recurrence instead of longer windows.

FaultPlan commute_cellular() {
  FaultPlan p;
  p.name = "commute-cellular";
  // Fig. 2: urban commute swings between a healthy cell, a congested one
  // (~0.2 of nominal bandwidth), and near-outage underpasses.
  FaultSpec congested;
  congested.name = "cell-congested";
  congested.kind = FaultKind::kCellularCollapse;
  congested.target = "cellular";
  congested.start = seconds(20);
  congested.duration = seconds(60);
  congested.severity = 0.2;
  congested.extra_loss = 0.05;
  p.faults.push_back(congested);

  FaultSpec underpass;
  underpass.name = "cell-underpass";
  underpass.kind = FaultKind::kCellularCollapse;
  underpass.target = "cellular";
  underpass.start = seconds(100);
  underpass.duration = seconds(8);
  underpass.severity = 0.05;
  underpass.extra_loss = 0.3;
  underpass.repeat = 3;
  underpass.period = seconds(40);
  p.faults.push_back(underpass);

  FaultSpec lte;
  lte.name = "lte-degrade";
  lte.kind = FaultKind::kLinkDegrade;
  lte.target = "basestation-edge";
  lte.start = seconds(150);
  lte.duration = seconds(45);
  lte.severity = 0.5;
  lte.extra_loss = 0.02;
  p.faults.push_back(lte);
  return p;
}

FaultPlan flaky_rsu() {
  FaultPlan p;
  p.name = "flaky-rsu";
  FaultSpec flap;
  flap.name = "rsu-flap";
  flap.kind = FaultKind::kLinkFlap;
  flap.target = "rsu-edge";
  flap.start = seconds(10);
  flap.duration = seconds(90);
  flap.down_time = seconds(3);
  flap.up_time = seconds(7);
  flap.jitter = 0.4;
  flap.repeat = 2;
  flap.period = seconds(150);
  p.faults.push_back(flap);

  FaultSpec degrade;
  degrade.name = "rsu-weak-signal";
  degrade.kind = FaultKind::kLinkDegrade;
  degrade.target = "rsu-edge";
  degrade.start = seconds(120);
  degrade.duration = seconds(25);
  degrade.severity = 0.3;
  degrade.extra_loss = 0.1;
  p.faults.push_back(degrade);
  return p;
}

FaultPlan cloud_blackout() {
  FaultPlan p;
  p.name = "cloud-blackout";
  FaultSpec down;
  down.name = "cloud-down";
  down.kind = FaultKind::kLinkDown;
  down.target = "cloud";
  down.start = seconds(30);
  down.duration = seconds(75);
  p.faults.push_back(down);

  FaultSpec bs;
  bs.name = "bs-degraded";
  bs.kind = FaultKind::kLinkDegrade;
  bs.target = "basestation-edge";
  bs.start = seconds(30);
  bs.duration = seconds(75);
  bs.severity = 0.4;
  p.faults.push_back(bs);

  FaultSpec after;
  after.name = "cloud-aftershock";
  after.kind = FaultKind::kLinkFlap;
  after.target = "cloud";
  after.start = seconds(120);
  after.duration = seconds(40);
  after.down_time = seconds(2);
  after.up_time = seconds(6);
  after.jitter = 0.25;
  p.faults.push_back(after);

  // After the aftershock the backbone stays up but lossy: the cellular
  // gate remains open, so uploads are attempted and actually fail —
  // exercising the retry-with-backoff path instead of the skip path.
  FaultSpec lossy;
  lossy.name = "cloud-lossy";
  lossy.kind = FaultKind::kLinkDegrade;
  lossy.target = "cloud";
  lossy.start = seconds(165);
  lossy.duration = seconds(60);
  lossy.severity = 0.6;
  lossy.extra_loss = 0.9;
  p.faults.push_back(lossy);
  return p;
}

FaultPlan edge_attack() {
  FaultPlan p;
  p.name = "edge-attack";
  FaultSpec comp;
  comp.name = "lane-compromise";
  comp.kind = FaultKind::kServiceCompromise;
  comp.target = "lane-detection";
  comp.start = seconds(25);
  p.faults.push_back(comp);

  // Container services have no TEE shield: this one gets detected and
  // reinstalled by the security monitor.
  FaultSpec comp2;
  comp2.name = "infotainment-compromise";
  comp2.kind = FaultKind::kServiceCompromise;
  comp2.target = "infotainment-chunk";
  comp2.start = seconds(35);
  p.faults.push_back(comp2);

  FaultSpec crash;
  crash.name = "speech-crash";
  crash.kind = FaultKind::kServiceCrash;
  crash.target = "speech-assistant";
  crash.start = seconds(50);
  crash.repeat = 2;
  crash.period = seconds(80);
  p.faults.push_back(crash);

  FaultSpec proc;
  proc.name = "gpu-offline";
  proc.kind = FaultKind::kProcessorOffline;
  proc.target = "proc:1";
  proc.start = seconds(70);
  proc.duration = seconds(30);
  p.faults.push_back(proc);

  FaultSpec slow;
  slow.name = "cpu-thermal";
  slow.kind = FaultKind::kProcessorSlowdown;
  slow.target = "proc:0";
  slow.start = seconds(110);
  slow.duration = seconds(50);
  slow.severity = 0.5;
  p.faults.push_back(slow);
  return p;
}

FaultPlan disk_hiccups() {
  FaultPlan p;
  p.name = "disk-hiccups";
  FaultSpec disk;
  disk.name = "nvme-stall";
  disk.kind = FaultKind::kDiskWriteError;
  disk.target = "ddi";
  disk.start = seconds(15);
  disk.duration = seconds(5);
  disk.repeat = 5;
  disk.period = seconds(35);
  p.faults.push_back(disk);

  FaultSpec cell;
  cell.name = "cell-wobble";
  cell.kind = FaultKind::kCellularCollapse;
  cell.target = "cellular";
  cell.start = seconds(60);
  cell.duration = seconds(30);
  cell.severity = 0.45;
  p.faults.push_back(cell);
  return p;
}

FaultPlan rolling_chaos() {
  FaultPlan p;
  p.name = "rolling-chaos";
  FaultSpec flap;
  flap.name = "chaos-rsu-flap";
  flap.kind = FaultKind::kLinkFlap;
  flap.target = "rsu-edge";
  flap.start = seconds(5);
  flap.duration = seconds(170);
  flap.down_time = seconds(4);
  flap.up_time = seconds(9);
  flap.jitter = 0.5;
  p.faults.push_back(flap);

  FaultSpec cloud;
  cloud.name = "chaos-cloud-down";
  cloud.kind = FaultKind::kLinkDown;
  cloud.target = "cloud";
  cloud.start = seconds(40);
  cloud.duration = seconds(20);
  cloud.repeat = 3;
  cloud.period = seconds(55);
  p.faults.push_back(cloud);

  FaultSpec cell;
  cell.name = "chaos-cell-collapse";
  cell.kind = FaultKind::kCellularCollapse;
  cell.target = "cellular";
  cell.start = seconds(65);
  cell.duration = seconds(35);
  cell.severity = 0.1;
  cell.extra_loss = 0.15;
  p.faults.push_back(cell);

  FaultSpec disk;
  disk.name = "chaos-disk";
  disk.kind = FaultKind::kDiskWriteError;
  disk.target = "ddi";
  disk.start = seconds(80);
  disk.duration = seconds(10);
  disk.repeat = 2;
  disk.period = seconds(45);
  p.faults.push_back(disk);

  FaultSpec crash;
  crash.name = "chaos-crash";
  crash.kind = FaultKind::kServiceCrash;
  crash.target = "license-plate";
  crash.start = seconds(95);
  p.faults.push_back(crash);

  FaultSpec proc;
  proc.name = "chaos-cpu-slow";
  proc.kind = FaultKind::kProcessorSlowdown;
  proc.target = "proc:0";
  proc.start = seconds(120);
  proc.duration = seconds(40);
  proc.severity = 0.6;
  p.faults.push_back(proc);
  return p;
}

std::vector<FaultPlan> all() {
  return {commute_cellular(), flaky_rsu(),   cloud_blackout(),
          edge_attack(),      disk_hiccups(), rolling_chaos()};
}

}  // namespace plans

}  // namespace vdap::sim
