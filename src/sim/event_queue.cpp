#include "sim/event_queue.hpp"

#include <cassert>

namespace vdap::sim {

EventId EventQueue::push(SimTime at, EventFn fn) {
  EventId id = next_id_++;
  fns_.push_back(std::move(fn));
  cancelled_.push_back(false);
  assert(fns_.size() == next_id_);
  heap_.push(Entry{at, id});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= next_id_ || cancelled_[id] || !fns_[id]) return false;
  cancelled_[id] = true;
  fns_[id] = nullptr;  // release captured state promptly
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && cancelled_[heap_.top().id]) heap_.pop();
}

SimTime EventQueue::next_time() {
  drop_cancelled();
  return heap_.empty() ? kTimeMax : heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  Entry e = heap_.top();
  heap_.pop();
  Fired fired{e.at, e.id, std::move(fns_[e.id])};
  fns_[e.id] = nullptr;
  --live_count_;
  return fired;
}

}  // namespace vdap::sim
