#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace vdap::sim {

// --- EventQueue (bucketed calendar) -----------------------------------------

EventQueue::EventQueue(SimDuration bucket_width, std::size_t buckets)
    : width_(bucket_width > 0 ? bucket_width : 1),
      nbuckets_(buckets > 0 ? buckets : 1),
      buckets_(nbuckets_) {
  win_hi_ = win_lo_ + static_cast<SimDuration>(nbuckets_) * width_;
}

std::uint32_t EventQueue::alloc_slot(EventFn fn) {
  if (!free_slots_.empty()) {
    std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    slots_[s].fn = std::move(fn);
    slots_[s].pending = true;
    return s;
  }
  slots_.push_back(Slot{std::move(fn), 0, true});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  s.pending = false;
  ++s.gen;
  free_slots_.push_back(slot);
}

EventId EventQueue::push(SimTime at, EventFn fn) {
  if (at < 0) at = 0;  // the simulator never schedules into negative time
  std::uint32_t slot = alloc_slot(std::move(fn));
  EventId id = id_of(slot);
  wheel_insert(Entry{at, next_seq_++, slot});
  ++live_count_;
  return id;
}

void EventQueue::wheel_insert(Entry e) {
  if (e.at >= win_hi_) {
    overflow_.push(e);
    return;
  }
  std::size_t b = e.at < win_lo_
                      ? cursor_
                      : static_cast<std::size_t>(e.at / width_) % nbuckets_;
  std::vector<Entry>& vec = buckets_[b];
  if (b == cursor_ && active_sorted_) {
    // The cursor bucket is sorted and partially consumed: insert in order,
    // at or after the consume position, so it still fires by (at, seq).
    auto it = std::lower_bound(
        vec.begin() + static_cast<std::ptrdiff_t>(active_pos_), vec.end(), e,
        [](const Entry& a, const Entry& b2) {
          if (a.at != b2.at) return a.at < b2.at;
          return a.seq < b2.seq;
        });
    vec.insert(it, e);
  } else {
    vec.push_back(e);
  }
  ++wheel_entries_;
}

bool EventQueue::cancel(EventId id) {
  std::uint32_t slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.pending || s.gen != gen) return false;
  s.pending = false;
  s.fn = nullptr;  // release captured state promptly
  --live_count_;
  return true;
}

void EventQueue::migrate_overflow() {
  while (!overflow_.empty() && overflow_.top().at < win_hi_) {
    Entry e = overflow_.top();
    overflow_.pop();
    if (!slots_[e.slot].pending) {
      retire_slot(e.slot);  // cancelled while waiting beyond the horizon
    } else {
      wheel_insert(e);
    }
  }
}

void EventQueue::advance_bucket() {
  buckets_[cursor_].clear();
  active_sorted_ = false;
  active_pos_ = 0;
  cursor_ = (cursor_ + 1) % nbuckets_;
  win_lo_ += width_;
  win_hi_ += width_;
  // The just-vacated bucket now fronts the horizon; pull anything that
  // was waiting right behind it.
  migrate_overflow();
}

bool EventQueue::position() {
  for (;;) {
    if (wheel_entries_ == 0) {
      // The cursor bucket can still hold its consumed prefix (pop only
      // advances active_pos_; advance_bucket is what clears). Drop it now:
      // its slots are already retired, and a re-anchored cursor landing on
      // this bucket must not retire them twice.
      buckets_[cursor_].clear();
      active_sorted_ = false;
      active_pos_ = 0;
      if (overflow_.empty()) return false;
      // Re-anchor the wheel at the overflow's earliest entry (the wheel is
      // physically empty, so the mapping can jump arbitrarily far ahead).
      SimTime t = overflow_.top().at;
      win_lo_ = (t / width_) * width_;
      win_hi_ = win_lo_ + static_cast<SimDuration>(nbuckets_) * width_;
      cursor_ = static_cast<std::size_t>(t / width_) % nbuckets_;
      active_sorted_ = false;
      active_pos_ = 0;
      migrate_overflow();
      continue;
    }
    std::vector<Entry>& b = buckets_[cursor_];
    if (!active_sorted_) {
      if (b.empty()) {
        advance_bucket();
        continue;
      }
      std::sort(b.begin(), b.end(), [](const Entry& x, const Entry& y) {
        if (x.at != y.at) return x.at < y.at;
        return x.seq < y.seq;
      });
      active_sorted_ = true;
      active_pos_ = 0;
    }
    while (active_pos_ < b.size() && !slots_[b[active_pos_].slot].pending) {
      retire_slot(b[active_pos_].slot);  // cancelled; drop lazily
      ++active_pos_;
      --wheel_entries_;
    }
    if (active_pos_ == b.size()) {
      advance_bucket();
      continue;
    }
    return true;
  }
}

SimTime EventQueue::next_time() {
  if (!position()) return kTimeMax;
  return buckets_[cursor_][active_pos_].at;
}

EventQueue::Fired EventQueue::pop() {
  bool found = position();
  assert(found);
  (void)found;
  Entry e = buckets_[cursor_][active_pos_];
  Slot& s = slots_[e.slot];
  Fired fired{e.at, id_of(e.slot), std::move(s.fn)};
  retire_slot(e.slot);
  ++active_pos_;
  --wheel_entries_;
  --live_count_;
  return fired;
}

// --- HeapEventQueue (reference oracle) --------------------------------------

EventId HeapEventQueue::push(SimTime at, EventFn fn) {
  EventId id = next_id_++;
  fns_.push_back(std::move(fn));
  cancelled_.push_back(false);
  assert(fns_.size() == next_id_);
  heap_.push(Entry{at, id});
  ++live_count_;
  return id;
}

bool HeapEventQueue::cancel(EventId id) {
  if (id >= next_id_ || cancelled_[id] || !fns_[id]) return false;
  cancelled_[id] = true;
  fns_[id] = nullptr;  // release captured state promptly
  --live_count_;
  return true;
}

void HeapEventQueue::drop_cancelled() {
  while (!heap_.empty() && cancelled_[heap_.top().id]) heap_.pop();
}

SimTime HeapEventQueue::next_time() {
  drop_cancelled();
  return heap_.empty() ? kTimeMax : heap_.top().at;
}

HeapEventQueue::Fired HeapEventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  Entry e = heap_.top();
  heap_.pop();
  Fired fired{e.at, e.id, std::move(fns_[e.id])};
  fns_[e.id] = nullptr;
  --live_count_;
  return fired;
}

}  // namespace vdap::sim
