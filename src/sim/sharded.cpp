#include "sim/sharded.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace vdap::sim {

ShardedSimulator::ShardedSimulator(std::uint64_t seed, Options options)
    : seed_(seed), opts_(options) {
  if (opts_.shards < 1) opts_.shards = 1;
  if (opts_.epoch_length <= 0) {
    throw std::invalid_argument("sharded: epoch_length must be > 0");
  }
  opts_.threads = std::clamp(opts_.threads, 1, opts_.shards);
  shards_.reserve(static_cast<std::size_t>(opts_.shards));
  for (int i = 0; i < opts_.shards; ++i) {
    // Every shard derives RNG streams from the SAME root seed: a stream
    // named per entity ("veh.17", "link.ship/cav-17") draws the same
    // sequence no matter which shard hosts the entity — the keystone of
    // shard-count-independent output.
    shards_.push_back(Shard{std::make_unique<Simulator>(seed), {}, 0});
  }
}

void ShardedSimulator::post(int from_shard, SimTime at, std::uint64_t key,
                            std::string payload) {
  shards_[static_cast<std::size_t>(from_shard)].outbox.push_back(
      ShardMessage{at, key, std::move(payload)});
}

bool ShardedSimulator::idle() const {
  for (const Shard& s : shards_) {
    if (!s.sim->idle()) return false;
  }
  return true;
}

void ShardedSimulator::exchange(SimTime epoch_end) {
  std::vector<ShardMessage> batch;
  std::size_t total = 0;
  for (const Shard& s : shards_) total += s.outbox.size();
  batch.reserve(total);
  for (Shard& s : shards_) {
    for (ShardMessage& m : s.outbox) batch.push_back(std::move(m));
    s.outbox.clear();
  }
  // Stable: same-(at, key) messages — one producer by contract — keep
  // their emit order regardless of how entities are spread over shards.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const ShardMessage& a, const ShardMessage& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.key < b.key;
                   });
  if (sink_) sink_(epoch_end, std::move(batch));
}

std::size_t ShardedSimulator::run_until(SimTime until) {
  if (opts_.threads > 1 && telemetry::Telemetry::enabled()) {
    throw std::logic_error(
        "sharded: the global telemetry registry is not thread-safe; close "
        "the telemetry::Session or run with threads = 1");
  }
  if (until == kTimeMax) {
    // Lock-step epochs need a finite horizon (an idle shard still has to
    // reach every barrier); callers drain with explicit horizons instead.
    throw std::invalid_argument("sharded: run_until needs a finite horizon");
  }
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(opts_.threads);
  std::size_t fired_total = 0;
  while (now_ < until) {
    SimTime epoch_end = until - now_ < opts_.epoch_length
                            ? until
                            : now_ + opts_.epoch_length;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards_.size());
    for (Shard& s : shards_) {
      Shard* shard = &s;
      tasks.push_back(
          [shard, epoch_end] { shard->fired += shard->sim->run_until(epoch_end); });
    }
    pool_->run(tasks);
    now_ = epoch_end;
    ++epochs_;
    exchange(epoch_end);
  }
  for (Shard& s : shards_) {
    fired_total += s.fired;
    s.fired = 0;
  }
  return fired_total;
}

}  // namespace vdap::sim
