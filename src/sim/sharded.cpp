#include "sim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "telemetry/domains.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/prof/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace vdap::sim {

ShardedSimulator::ShardedSimulator(std::uint64_t seed, Options options)
    : seed_(seed), opts_(options) {
  if (opts_.shards < 1) opts_.shards = 1;
  if (opts_.epoch_length <= 0) {
    throw std::invalid_argument("sharded: epoch_length must be > 0");
  }
  opts_.threads = std::clamp(opts_.threads, 1, opts_.shards);
  shards_.reserve(static_cast<std::size_t>(opts_.shards));
  for (int i = 0; i < opts_.shards; ++i) {
    // Every shard derives RNG streams from the SAME root seed: a stream
    // named per entity ("veh.17", "link.ship/cav-17") draws the same
    // sequence no matter which shard hosts the entity — the keystone of
    // shard-count-independent output.
    shards_.push_back(Shard{std::make_unique<Simulator>(seed), {}, 0, 0.0});
  }
  runtime_.resize(shards_.size());
}

void ShardedSimulator::post(int from_shard, SimTime at, std::uint64_t key,
                            std::string payload) {
  shards_[static_cast<std::size_t>(from_shard)].outbox.push_back(
      ShardMessage{at, key, std::move(payload)});
}

void ShardedSimulator::set_flight(telemetry::FlightRecorder* flight) {
  flight_ = flight;
  if (flight_ == nullptr) return;
  if (flight_->domains() != shards() + 1) {
    throw std::invalid_argument(
        "sharded: flight recorder has " + std::to_string(flight_->domains()) +
        " rings for " + std::to_string(shards()) +
        " shards (+1 coordinator)");
  }
  // Scratch ring i reads shard i's live clock so metric mirrors (which
  // have no caller timestamp) stay precise and deterministic.
  for (int i = 0; i < shards(); ++i) {
    flight_->ring(i).set_clock(
        shards_[static_cast<std::size_t>(i)].sim->now_ptr());
  }
}

void ShardedSimulator::set_prof(telemetry::prof::Profiler* prof) {
  if (prof != nullptr &&
      prof->slots() < static_cast<std::size_t>(shards()) + 1) {
    throw std::invalid_argument(
        "sharded: profiler has " + std::to_string(prof->slots()) +
        " slots for " + std::to_string(shards()) + " shards (+1 coordinator)");
  }
  // Changing the binding while workers exist would leave them parked in a
  // "pool/wait" scope holding pointers into the OLD profiler's slots —
  // freed as soon as the caller destroys it. Joining the pool here drains
  // those scopes while the slots are still alive (callers detach with
  // set_prof(nullptr) before destroying the profiler); the next run_until
  // respawns workers against the new binding.
  if (prof != prof_ && pool_ != nullptr) pool_.reset();
  prof_ = prof;
}

bool ShardedSimulator::idle() const {
  for (const Shard& s : shards_) {
    if (!s.sim->idle()) return false;
  }
  return true;
}

void ShardedSimulator::exchange(SimTime epoch_end) {
  std::vector<ShardMessage> batch;
  std::size_t total = 0;
  for (const Shard& s : shards_) total += s.outbox.size();
  batch.reserve(total);
  for (Shard& s : shards_) {
    for (ShardMessage& m : s.outbox) batch.push_back(std::move(m));
    s.outbox.clear();
  }
  // Stable: same-(at, key) messages — one producer by contract — keep
  // their emit order regardless of how entities are spread over shards.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const ShardMessage& a, const ShardMessage& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.key < b.key;
                   });
  if (sink_) sink_(epoch_end, std::move(batch));
}

void ShardedSimulator::collect_runtime() {
  // Runs at the barrier with every shard quiesced. A shard's barrier wait
  // is "how much sooner than the slowest shard it finished" — the epoch
  // ends for everyone when the slowest worker arrives.
  double max_busy = 0.0;
  double min_busy = shards_.empty() ? 0.0 : shards_[0].epoch_busy;
  for (const Shard& s : shards_) {
    max_busy = std::max(max_busy, s.epoch_busy);
    min_busy = std::min(min_busy, s.epoch_busy);
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = shards_[i];
    ShardRuntime& rt = runtime_[i];
    rt.busy_s += s.epoch_busy;
    rt.wait_s += max_busy - s.epoch_busy;
    rt.queue_peak = std::max(rt.queue_peak, s.sim->pending_events());
    rt.wheel_peak = std::max(rt.wheel_peak, s.sim->queue().wheel_entries());
    rt.overflow_peak =
        std::max(rt.overflow_peak, s.sim->queue().overflow_entries());
  }
  if (capture_ != nullptr) {
    const double imbalance =
        max_busy > 0.0 ? (max_busy - min_busy) / max_busy : 0.0;
    mirror_runtime_metrics(max_busy, imbalance);
  }
  if (flight_ != nullptr) {
    // Shard-runtime snapshots land in the recorder's wall-clock ring —
    // rendered as runtime.jsonl in incident bundles, never part of the
    // deterministic rings.vfr surface.
    telemetry::FlightRing& rt = flight_->runtime_ring();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      rt.append(telemetry::make_flight_record(
          telemetry::FlightKind::kRuntime, now_,
          "shard-" + std::to_string(i), "runtime", "epoch_busy_s",
          static_cast<std::int64_t>(shards_[i].sim->pending_events()),
          shards_[i].epoch_busy));
    }
  }
}

void ShardedSimulator::mirror_runtime_metrics(double epoch_wall_s,
                                              double epoch_imbalance) {
  // Runtime plane only: wall-clock-derived values go into the DomainSet's
  // runtime registry, never into the deterministic capture domains.
  telemetry::MetricsRegistry& r = capture_->runtime();
  r.observe("sharded.epoch.wall_s", epoch_wall_s);
  r.observe("sharded.epoch.imbalance", epoch_imbalance);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardRuntime& rt = runtime_[i];
    const std::string shard = std::to_string(i);
    r.set_gauge("sharded.shard.busy_s", {{"shard", shard}}, rt.busy_s);
    r.set_gauge("sharded.shard.wait_s", {{"shard", shard}}, rt.wait_s);
    r.set_gauge("sharded.shard.queue_peak", {{"shard", shard}},
                static_cast<double>(rt.queue_peak));
    r.set_gauge("sharded.shard.wheel_peak", {{"shard", shard}},
                static_cast<double>(rt.wheel_peak));
    r.set_gauge("sharded.shard.overflow_peak", {{"shard", shard}},
                static_cast<double>(rt.overflow_peak));
  }
}

std::size_t ShardedSimulator::run_until(SimTime until) {
  if (opts_.threads > 1 && telemetry::Telemetry::enabled()) {
    // The truly-unsupported combination: a legacy telemetry::Session binds
    // the process-global domain to the calling thread, and the calling
    // thread *participates* in shard work (ThreadPool::run). The Session
    // would capture whichever shards scheduling happened to hand it —
    // nondeterministic and racy. Per-shard capture has no such problem.
    throw std::logic_error(
        "sharded: a legacy telemetry::Session (process-global capture) "
        "cannot observe threads > 1 — it would record a scheduling-"
        "dependent subset of shard work; attach per-shard domains with "
        "set_capture(telemetry::DomainSet) or run with threads = 1");
  }
  if (capture_ != nullptr && capture_->shards() != shards()) {
    throw std::invalid_argument(
        "sharded: capture DomainSet has " + std::to_string(capture_->shards()) +
        " domains for " + std::to_string(shards()) + " shards");
  }
  if (flight_ != nullptr && flight_->domains() != shards() + 1) {
    throw std::invalid_argument(
        "sharded: flight recorder has " + std::to_string(flight_->domains()) +
        " rings for " + std::to_string(shards()) + " shards (+1 coordinator)");
  }
  if (until == kTimeMax) {
    // Lock-step epochs need a finite horizon (an idle shard still has to
    // reach every barrier); callers drain with explicit horizons instead.
    throw std::invalid_argument("sharded: run_until needs a finite horizon");
  }
  if (pool_ == nullptr) {
    // Worker-registration hooks give each spawned worker its own prof
    // slot, so barrier waits ("pool/wait") show up in sampled profiles.
    // The hooks read prof_ at worker spawn: attach the profiler before
    // the first run_until (the pool is created lazily right here).
    ThreadPool::WorkerHooks hooks;
    hooks.on_start = [this](std::size_t w) {
      if (prof_ != nullptr) {
        telemetry::prof::bind_prof(
            prof_->slot(static_cast<std::size_t>(shards()) + 1 + w));
      }
    };
    hooks.on_exit = [](std::size_t) { telemetry::prof::bind_prof(nullptr); };
    pool_ = std::make_unique<ThreadPool>(opts_.threads, std::move(hooks));
  }
  std::size_t fired_total = 0;
  while (now_ < until) {
    SimTime epoch_end = until - now_ < opts_.epoch_length
                            ? until
                            : now_ + opts_.epoch_length;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard* shard = &shards_[i];
      telemetry::Domain* domain =
          capture_ != nullptr ? capture_->shard_domain(static_cast<int>(i))
                              : nullptr;
      telemetry::FlightRing* ring =
          flight_ != nullptr ? &flight_->ring(static_cast<int>(i)) : nullptr;
      telemetry::prof::ProfSlot* pslot =
          prof_ != nullptr ? prof_->slot(i) : nullptr;
      tasks.push_back([shard, epoch_end, domain, ring, pslot] {
        const auto t0 = std::chrono::steady_clock::now();
        // Bind the shard's domain for the duration of its epoch so every
        // instrumentation site below records into per-shard storage. The
        // previous binding is restored because the calling thread also
        // works tasks and must leave with its own binding intact. The
        // flight ring and prof slot bind the same way (independently —
        // the black box and the sampler work with capture off too).
        telemetry::Domain* prev = nullptr;
        telemetry::FlightRing* prev_ring = nullptr;
        telemetry::prof::ProfSlot* prev_prof = nullptr;
        if (domain != nullptr) prev = telemetry::bind_domain(domain);
        if (ring != nullptr) prev_ring = telemetry::bind_flight(ring);
        if (pslot != nullptr) prev_prof = telemetry::prof::bind_prof(pslot);
        {
          PROF_SCOPE("sim/epoch");
          shard->fired += shard->sim->run_until(epoch_end);
        }
        if (pslot != nullptr) telemetry::prof::bind_prof(prev_prof);
        if (ring != nullptr) telemetry::bind_flight(prev_ring);
        if (domain != nullptr) telemetry::bind_domain(prev);
        shard->epoch_busy =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
      });
    }
    pool_->run(tasks);
    now_ = epoch_end;
    ++epochs_;
    collect_runtime();
    // The epoch sink mutates shards from the coordinator thread; its
    // instrumentation lands in the coordinator domain and is merged with
    // the shard domains right after. Its flight records land in the
    // coordinator ring, timestamped with the barrier's epoch end.
    telemetry::Domain* prev = nullptr;
    telemetry::FlightRing* prev_ring = nullptr;
    telemetry::prof::ProfSlot* prev_prof = nullptr;
    if (capture_ != nullptr) {
      prev = telemetry::bind_domain(capture_->coordinator_domain());
    }
    if (flight_ != nullptr) {
      telemetry::FlightRing& coord = flight_->ring(shards());
      coord.set_time_hint(epoch_end);
      prev_ring = telemetry::bind_flight(&coord);
    }
    if (prof_ != nullptr) {
      prev_prof = telemetry::prof::bind_prof(
          prof_->slot(static_cast<std::size_t>(shards())));
    }
    {
      PROF_SCOPE("sim/exchange");
      exchange(epoch_end);
    }
    if (flight_ != nullptr) telemetry::bind_flight(prev_ring);
    if (capture_ != nullptr) {
      telemetry::bind_domain(prev);
      PROF_SCOPE("sim/merge");
      capture_->merge_epoch();
    }
    // Fold every scratch ring into the master ring in canonical content
    // order and service any incident trigger raised this epoch — the
    // shards are quiesced, so this is race-free and deterministic.
    if (flight_ != nullptr) {
      PROF_SCOPE("flight/fold");
      flight_->fold_barrier(epoch_end);
    }
    if (prof_ != nullptr) telemetry::prof::bind_prof(prev_prof);
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = shards_[i];
    fired_total += s.fired;
    runtime_[i].events += s.fired;
    s.fired = 0;
  }
  return fired_total;
}

}  // namespace vdap::sim
