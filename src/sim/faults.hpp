// Deterministic fault injection.
//
// A FaultPlan is data: a named list of fault windows (start, duration,
// optional recurrence) against string-addressed targets. A FaultInjector
// turns an armed plan into simulator events and dispatches each fault
// begin/end to a handler registered per FaultKind. All randomness (flap
// jitter) comes from the simulator's named RNG streams ("fault.<name>"),
// so a (seed, plan) pair replays bit-identically — the property the chaos
// suite (tests/chaos_test.cpp) asserts.
//
// Targets are strings so this layer stays free of net/hw/edgeos types:
// tier names as printed by net::to_string(Tier) ("rsu-edge", "cloud", ...),
// "proc:<index>" for VCU board devices, service names for EdgeOSv faults.
// net::ImpairmentController and the test harness own the actual wiring.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace vdap::sim {

enum class FaultKind {
  kLinkDown,           // tier unreachable for the window
  kLinkFlap,           // tier toggles down/up inside the window
  kLinkDegrade,        // tier bandwidth x severity, +extra_loss
  kCellularCollapse,   // cellular channel x severity (Fig. 2 regimes)
  kProcessorSlowdown,  // board device speed x severity
  kProcessorOffline,   // board device offline for the window
  kDiskWriteError,     // DDI disk writes fail for the window
  kServiceCrash,       // impulse: edge service crashes, reinstall begins
  kServiceCompromise,  // impulse: edge service flagged compromised
};

constexpr std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kCellularCollapse: return "cellular-collapse";
    case FaultKind::kProcessorSlowdown: return "processor-slowdown";
    case FaultKind::kProcessorOffline: return "processor-offline";
    case FaultKind::kDiskWriteError: return "disk-write-error";
    case FaultKind::kServiceCrash: return "service-crash";
    case FaultKind::kServiceCompromise: return "service-compromise";
  }
  return "unknown";
}

struct FaultSpec {
  std::string name;    // unique within the plan; names the jitter RNG stream
  FaultKind kind = FaultKind::kLinkDown;
  std::string target;  // tier name / "proc:<i>" / service name
  SimTime start = 0;
  SimDuration duration = 0;  // 0 => impulse (begin only, no end event)
  double severity = 1.0;     // bandwidth/speed factor while active
  double extra_loss = 0.0;   // added message loss while active

  // kLinkFlap shape: alternate down_time / up_time inside the window,
  // each phase length jittered by +/- `jitter` fraction.
  SimDuration down_time = seconds(2);
  SimDuration up_time = seconds(5);
  double jitter = 0.0;

  // Recurrence: replay the whole window `repeat` times, `period` apart.
  int repeat = 1;
  SimDuration period = 0;
};

struct FaultPlan {
  std::string name;
  std::vector<FaultSpec> faults;
};

struct FaultTraceEvent {
  SimTime time = 0;
  std::string fault;  // FaultSpec::name
  FaultKind kind = FaultKind::kLinkDown;
  std::string target;
  bool begin = true;  // false = window end / flap up-edge
};

/// Schedules an armed FaultPlan's events on the simulator and dispatches
/// them to per-kind handlers. Also records a trace — the determinism
/// fixture compares traces across runs of the same (seed, plan).
class FaultInjector {
 public:
  /// begin=true when the fault starts biting, false when it lets go.
  /// Impulse faults (duration 0) only ever see begin=true.
  using Handler = std::function<void(const FaultSpec&, bool begin)>;

  explicit FaultInjector(Simulator& sim) : sim_(sim) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers (replaces) the handler for one fault kind. Faults with no
  /// handler still appear in the trace.
  void on(FaultKind kind, Handler handler);

  /// Schedules every fault in the plan. May be called once per injector.
  void arm(const FaultPlan& plan);

  const std::string& plan_name() const { return plan_name_; }
  const std::vector<FaultTraceEvent>& trace() const { return trace_; }
  /// One formatted line per trace event — convenient for EXPECT_EQ diffs.
  std::vector<std::string> trace_lines() const;

  /// Windows currently open (impulses never count).
  int active_faults() const { return active_; }
  /// Total begin events fired so far.
  std::size_t applied() const { return applied_; }

  /// Whether fire() mirrors activations into the calling thread's flight
  /// ring (telemetry::flight_fault — records the window edge and raises
  /// an incident trigger on begin). Defaults on. Multi-shard scenarios
  /// that arm every shard's injector with the same plan (core::run_fleet)
  /// keep it on for exactly one injector, so each activation appears
  /// once no matter the shard count.
  void set_flight_recording(bool on) { flight_recording_ = on; }
  bool flight_recording() const { return flight_recording_; }

 private:
  void schedule_window(std::shared_ptr<const FaultSpec> spec, SimTime start);
  void flap_down(std::shared_ptr<const FaultSpec> spec, SimTime window_end);
  SimDuration jittered(const FaultSpec& spec, SimDuration base);
  void fire(const FaultSpec& spec, bool begin);

  Simulator& sim_;
  std::map<FaultKind, Handler> handlers_;
  std::vector<FaultTraceEvent> trace_;
  std::string plan_name_;
  bool armed_ = false;
  bool flight_recording_ = true;
  int active_ = 0;
  std::size_t applied_ = 0;
  // Telemetry span ids for windows currently open, keyed by fault name
  // (recurrence can overlap a fault with itself, hence a stack per name).
  std::map<std::string, std::vector<std::uint64_t>> telem_open_;
};

/// Canned fault plans used by the chaos/soak suites; also reasonable
/// starting points for new scenarios (see DESIGN.md §6b).
namespace plans {
FaultPlan commute_cellular();  // Fig. 2 cellular regimes on a commute
FaultPlan flaky_rsu();         // recurring RSU flap with jitter
FaultPlan cloud_blackout();    // long cloud outage + degraded basestation
FaultPlan edge_attack();       // compromise + crash + processor offline
FaultPlan disk_hiccups();      // recurring DDI disk-write error windows
FaultPlan rolling_chaos();     // a bit of everything, overlapping
std::vector<FaultPlan> all();
}  // namespace plans

}  // namespace vdap::sim
