// Simulated time.
//
// All platform latencies are expressed as SimTime, a signed 64-bit count of
// microseconds since simulation start. Integer time keeps the event queue
// deterministic across platforms (no FP rounding in comparisons) while one
// microsecond of resolution is far below anything the paper measures
// (its finest number is 13.57 ms).
#pragma once

#include <cstdint>

namespace vdap::sim {

/// Microseconds since simulation start.
using SimTime = std::int64_t;

/// Durations share the representation of time points.
using SimDuration = std::int64_t;

constexpr SimTime kTimeZero = 0;
constexpr SimTime kTimeMax = INT64_MAX;

constexpr SimDuration usec(std::int64_t n) { return n; }
constexpr SimDuration msec(std::int64_t n) { return n * 1000; }
constexpr SimDuration seconds(std::int64_t n) { return n * 1'000'000; }
constexpr SimDuration minutes(std::int64_t n) { return n * 60'000'000; }

/// Converts fractional seconds to SimDuration (rounds to nearest µs).
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}

/// Converts fractional milliseconds to SimDuration.
constexpr SimDuration from_millis(double ms) { return from_seconds(ms / 1e3); }

constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_millis(SimDuration d) { return static_cast<double>(d) / 1e3; }

}  // namespace vdap::sim
