// The discrete-event simulator driving every OpenVDAP experiment.
//
// A Simulator owns a clock and an event queue. Components schedule callbacks
// (absolute or relative), periodic tasks, and query `now()`. Determinism
// contract: with the same seed and the same schedule order, two runs produce
// identical traces (integer time, FIFO tie-break, named RNG streams).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace vdap::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : seed_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  /// Stable pointer to the clock, for observers that need the current
  /// sim time without a callback (telemetry::FlightRing::set_clock).
  const SimTime* now_ptr() const { return &now_; }
  std::uint64_t seed() const { return seed_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  EventId at(SimTime when, EventFn fn);

  /// Schedules `fn` after `delay` from now.
  EventId after(SimDuration delay, EventFn fn) {
    return at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancels a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Schedules `fn` every `period`, starting after `first_delay`. The
  /// returned handle cancels future firings. The callback may call
  /// PeriodicHandle::stop() on its own handle.
  class PeriodicHandle {
   public:
    void stop() { *alive_ = false; }
    bool active() const { return *alive_; }

   private:
    friend class Simulator;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  };
  PeriodicHandle every(SimDuration period, EventFn fn,
                       SimDuration first_delay = 0);

  /// Runs until the queue drains or `until` is passed. Events scheduled
  /// exactly at `until` still fire. Returns the number of events fired.
  std::size_t run_until(SimTime until = kTimeMax);

  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

  /// Advances the clock to `when` without firing later events (only valid
  /// when no earlier event is pending; used by sequential transfer models).
  void advance_to(SimTime when);

  bool idle() { return queue_.empty(); }
  std::size_t pending_events() { return queue_.size(); }
  /// Calendar-queue occupancy introspection (the sharded runtime report).
  const EventQueue& queue() const { return queue_; }

  /// Named deterministic RNG stream derived from the simulation seed.
  /// Streams are created on first use and owned by the simulator.
  util::RngStream& rng(std::string_view name);

 private:
  std::uint64_t seed_;
  SimTime now_ = kTimeZero;
  EventQueue queue_;
  std::unordered_map<std::string, std::unique_ptr<util::RngStream>> streams_;
};

}  // namespace vdap::sim
