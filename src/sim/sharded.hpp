// Sharded discrete-event simulation: K independent sim::Simulators
// advancing in deterministic lock-step epochs on a thread pool
// (DESIGN.md §6f).
//
// Model
//   * Each shard owns a Simulator (clock + calendar queue + named RNG
//     streams, all derived from the same root seed) plus whatever state
//     the caller builds on it — vehicles, links, fault injectors. Within
//     an epoch, shards run with NO shared mutable state; one worker thread
//     drives one shard at a time.
//   * Cross-shard communication happens only at epoch boundaries: during
//     an epoch a shard appends ShardMessages to its private outbox; at the
//     barrier the runner merges all outboxes into one batch ordered by
//     (at, key, emit order) and hands it to the epoch sink on the calling
//     thread. The sink may mutate any shard (e.g. schedule next-epoch
//     events, retarget impairment plans) — everything is quiesced.
//
// Determinism
//   * Thread count: a shard's epoch depends only on its own state, so the
//     worker-to-shard assignment (the only thing scheduling changes) is
//     invisible. Byte-identical output for 1..N threads.
//   * Shard count: holds whenever per-entity state and RNG streams are
//     partitioned by entity (per-vehicle stream names, per-shard link
//     instances) and every message key is emitted by exactly one shard —
//     then the merged batch order is a pure function of (seed, plan).
//     tests/sharded_test.cpp sweeps shard counts 1/2/8 x thread counts to
//     prove both properties for the fleet scenarios.
//   * Telemetry: the global telemetry registry is process-wide, so running
//     with threads > 1 while a telemetry::Session is live is refused.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/thread_pool.hpp"

namespace vdap::sim {

/// One cross-shard message. `key` orders messages from different shards
/// deterministically (e.g. a global vehicle index); messages with the same
/// (at, key) keep their emit order.
struct ShardMessage {
  SimTime at = 0;
  std::uint64_t key = 0;
  std::string payload;
};

class ShardedSimulator {
 public:
  struct Options {
    int shards = 1;
    /// Worker threads driving the shards (clamped to [1, shards]).
    int threads = 1;
    /// Lock-step epoch length; cross-shard messages are exchanged at
    /// multiples of this.
    SimDuration epoch_length = seconds(1);
  };

  /// Called once per epoch barrier with all messages the epoch produced,
  /// merged in (at, key, emit) order. Runs on the calling thread.
  using EpochSink =
      std::function<void(SimTime epoch_end, std::vector<ShardMessage>&& batch)>;

  ShardedSimulator(std::uint64_t seed, Options options);

  int shards() const { return static_cast<int>(shards_.size()); }
  int threads() const { return opts_.threads; }
  SimDuration epoch_length() const { return opts_.epoch_length; }
  std::uint64_t seed() const { return seed_; }

  Simulator& shard(int i) { return *shards_[static_cast<std::size_t>(i)].sim; }

  /// Deterministic home shard for a dense entity index (round-robin).
  int shard_of(std::uint64_t entity) const {
    return static_cast<int>(entity % shards_.size());
  }

  /// Appends a message to `from_shard`'s outbox. Must be called either
  /// from code running on that shard (inside its epoch) or between epochs.
  void post(int from_shard, SimTime at, std::uint64_t key,
            std::string payload);

  void set_epoch_sink(EpochSink sink) { sink_ = std::move(sink); }

  /// Runs every shard to `until` in lock-step epochs (the final epoch may
  /// be shorter), exchanging messages at each boundary. `until` must be
  /// finite (an idle shard still reaches every barrier). Returns the total
  /// number of events fired across all shards.
  std::size_t run_until(SimTime until);

  /// The last epoch boundary every shard has reached.
  SimTime now() const { return now_; }
  std::uint64_t epochs_run() const { return epochs_; }
  /// True when no shard has pending events.
  bool idle() const;

 private:
  struct Shard {
    std::unique_ptr<Simulator> sim;
    std::vector<ShardMessage> outbox;
    std::size_t fired = 0;
  };

  void exchange(SimTime epoch_end);

  std::uint64_t seed_;
  Options opts_;
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> pool_;
  EpochSink sink_;
  SimTime now_ = kTimeZero;
  std::uint64_t epochs_ = 0;
};

}  // namespace vdap::sim
