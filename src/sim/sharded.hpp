// Sharded discrete-event simulation: K independent sim::Simulators
// advancing in deterministic lock-step epochs on a thread pool
// (DESIGN.md §6f).
//
// Model
//   * Each shard owns a Simulator (clock + calendar queue + named RNG
//     streams, all derived from the same root seed) plus whatever state
//     the caller builds on it — vehicles, links, fault injectors. Within
//     an epoch, shards run with NO shared mutable state; one worker thread
//     drives one shard at a time.
//   * Cross-shard communication happens only at epoch boundaries: during
//     an epoch a shard appends ShardMessages to its private outbox; at the
//     barrier the runner merges all outboxes into one batch ordered by
//     (at, key, emit order) and hands it to the epoch sink on the calling
//     thread. The sink may mutate any shard (e.g. schedule next-epoch
//     events, retarget impairment plans) — everything is quiesced.
//
// Determinism
//   * Thread count: a shard's epoch depends only on its own state, so the
//     worker-to-shard assignment (the only thing scheduling changes) is
//     invisible. Byte-identical output for 1..N threads.
//   * Shard count: holds whenever per-entity state and RNG streams are
//     partitioned by entity (per-vehicle stream names, per-shard link
//     instances) and every message key is emitted by exactly one shard —
//     then the merged batch order is a pure function of (seed, plan).
//     tests/sharded_test.cpp sweeps shard counts 1/2/8 x thread counts to
//     prove both properties for the fleet scenarios.
//   * Telemetry: attach a telemetry::DomainSet with set_capture() and each
//     worker shard records into its own domain (bound thread-locally around
//     its epoch), merged deterministically at every barrier — so captured
//     exports stay byte-identical across the shard × thread matrix
//     (DESIGN.md §6h). The one refused combination is a live legacy
//     telemetry::Session (process-global domain) with threads > 1: the
//     calling thread participates in shard work, so the Session would
//     capture a scheduling-dependent subset of events.
//
// Beyond capture, the runner always keeps per-shard *runtime* statistics
// (wall-clock busy/wait at barriers, event-queue occupancy peaks) — see
// runtime(); these are diagnostic and never part of the deterministic
// surface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/thread_pool.hpp"

namespace vdap::telemetry {
class DomainSet;
class FlightRecorder;
}  // namespace vdap::telemetry

namespace vdap::telemetry::prof {
class Profiler;
}  // namespace vdap::telemetry::prof

namespace vdap::sim {

/// One cross-shard message. `key` orders messages from different shards
/// deterministically (e.g. a global vehicle index); messages with the same
/// (at, key) keep their emit order.
struct ShardMessage {
  SimTime at = 0;
  std::uint64_t key = 0;
  std::string payload;
};

class ShardedSimulator {
 public:
  struct Options {
    int shards = 1;
    /// Worker threads driving the shards (clamped to [1, shards]).
    int threads = 1;
    /// Lock-step epoch length; cross-shard messages are exchanged at
    /// multiples of this.
    SimDuration epoch_length = seconds(1);
  };

  /// Called once per epoch barrier with all messages the epoch produced,
  /// merged in (at, key, emit) order. Runs on the calling thread.
  using EpochSink =
      std::function<void(SimTime epoch_end, std::vector<ShardMessage>&& batch)>;

  ShardedSimulator(std::uint64_t seed, Options options);

  int shards() const { return static_cast<int>(shards_.size()); }
  int threads() const { return opts_.threads; }
  SimDuration epoch_length() const { return opts_.epoch_length; }
  std::uint64_t seed() const { return seed_; }

  Simulator& shard(int i) { return *shards_[static_cast<std::size_t>(i)].sim; }

  /// Deterministic home shard for a dense entity index (round-robin).
  int shard_of(std::uint64_t entity) const {
    return static_cast<int>(entity % shards_.size());
  }

  /// Appends a message to `from_shard`'s outbox. Must be called either
  /// from code running on that shard (inside its epoch) or between epochs.
  void post(int from_shard, SimTime at, std::uint64_t key,
            std::string payload);

  void set_epoch_sink(EpochSink sink) { sink_ = std::move(sink); }

  /// Attaches per-shard telemetry domains (one per shard — enforced at
  /// run_until). While attached, shard i's epoch work records into
  /// capture->shard_domain(i), the epoch sink records into the coordinator
  /// domain, and domains are merged at every barrier. Pass nullptr to
  /// detach. The DomainSet must outlive the runs it captures.
  void set_capture(telemetry::DomainSet* capture) { capture_ = capture; }
  telemetry::DomainSet* capture() const { return capture_; }

  /// Attaches an always-on flight recorder (DESIGN.md §6i). It must own
  /// shards()+1 rings: shard i's epoch work records into ring i (clocked
  /// by that shard's simulator), the epoch sink into ring shards() (the
  /// coordinator ring, time-hinted with each epoch end), and the
  /// recorder folds + services incident triggers at every barrier.
  /// Independent of set_capture — the black box works with capture off.
  /// Pass nullptr to detach; the recorder must outlive the runs.
  void set_flight(telemetry::FlightRecorder* flight);
  telemetry::FlightRecorder* flight() const { return flight_; }

  /// Attaches a sampling profiler (DESIGN.md §6j). Slot layout: shard i's
  /// epoch work publishes into slot i, the coordinator's barrier sections
  /// into slot shards(), and pool worker w (spawned worker threads only)
  /// into slot shards()+1+w — the profiler must own at least shards()+1
  /// slots; worker slots beyond its size are simply not registered.
  /// Purely wall-plane: the sampler only reads seqlock-published stacks,
  /// so sim outputs stay byte-identical with the profiler on or off.
  /// Attach before the first run_until so pool workers register on spawn.
  /// Detach with set_prof(nullptr) BEFORE destroying the profiler: a
  /// binding change joins any live pool workers (their parked "pool/wait"
  /// scopes hold pointers into the old profiler's slots), and the next
  /// run_until respawns them against the new binding.
  void set_prof(telemetry::prof::Profiler* prof);
  telemetry::prof::Profiler* prof() const { return prof_; }

  /// Per-shard runtime statistics, accumulated across every run_until call
  /// (wall-clock derived — diagnostic only, never deterministic).
  struct ShardRuntime {
    std::uint64_t events = 0;      // events fired by this shard
    double busy_s = 0.0;           // wall seconds inside epoch work
    double wait_s = 0.0;           // wall seconds stalled at barriers
    std::size_t queue_peak = 0;    // live pending events, peak
    std::size_t wheel_peak = 0;    // calendar-wheel entries, peak
    std::size_t overflow_peak = 0; // overflow-heap entries, peak
  };
  const std::vector<ShardRuntime>& runtime() const { return runtime_; }

  /// Runs every shard to `until` in lock-step epochs (the final epoch may
  /// be shorter), exchanging messages at each boundary. `until` must be
  /// finite (an idle shard still reaches every barrier). Returns the total
  /// number of events fired across all shards.
  std::size_t run_until(SimTime until);

  /// The last epoch boundary every shard has reached.
  SimTime now() const { return now_; }
  std::uint64_t epochs_run() const { return epochs_; }
  /// True when no shard has pending events.
  bool idle() const;

 private:
  struct Shard {
    std::unique_ptr<Simulator> sim;
    std::vector<ShardMessage> outbox;
    std::size_t fired = 0;
    // Wall seconds this shard's last epoch took; written by the worker
    // task, read by the coordinator after the barrier.
    double epoch_busy = 0.0;
  };

  void exchange(SimTime epoch_end);
  void collect_runtime();
  void mirror_runtime_metrics(double epoch_wall_s, double epoch_imbalance);

  std::uint64_t seed_;
  Options opts_;
  std::vector<Shard> shards_;
  std::vector<ShardRuntime> runtime_;
  std::unique_ptr<ThreadPool> pool_;
  EpochSink sink_;
  telemetry::DomainSet* capture_ = nullptr;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::prof::Profiler* prof_ = nullptr;
  SimTime now_ = kTimeZero;
  std::uint64_t epochs_ = 0;
};

}  // namespace vdap::sim
