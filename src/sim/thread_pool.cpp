#include "sim/thread_pool.hpp"

namespace vdap::sim {

ThreadPool::ThreadPool(int threads) {
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool ThreadPool::take_task() {
  std::function<void()>* task = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_ == nullptr || next_task_ >= tasks_->size()) return false;
    task = &(*tasks_)[next_task_++];
  }
  (*task)();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++done_tasks_;
    if (tasks_ != nullptr && done_tasks_ == tasks_->size()) {
      done_cv_.notify_all();
    }
  }
  return true;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (tasks_ != nullptr && batch_gen_ != seen_gen &&
                             next_task_ < tasks_->size());
      });
      if (shutdown_) return;
      seen_gen = batch_gen_;
    }
    while (take_task()) {
    }
  }
}

void ThreadPool::run(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (auto& t : tasks) t();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = &tasks;
    next_task_ = 0;
    done_tasks_ = 0;
    ++batch_gen_;
  }
  work_cv_.notify_all();
  // The calling thread works the batch too instead of just blocking.
  while (take_task()) {
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_tasks_ == tasks.size(); });
  tasks_ = nullptr;
}

}  // namespace vdap::sim
