#include "sim/thread_pool.hpp"

#include "telemetry/prof/profiler.hpp"

namespace vdap::sim {

ThreadPool::ThreadPool(int threads, WorkerHooks hooks)
    : hooks_(std::move(hooks)) {
  for (int i = 1; i < threads; ++i) {
    const std::size_t index = static_cast<std::size_t>(i - 1);
    workers_.emplace_back([this, index] { worker_loop(index); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool ThreadPool::take_task() {
  std::function<void()>* task = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_ == nullptr || next_task_ >= tasks_->size()) return false;
    task = &(*tasks_)[next_task_++];
  }
  (*task)();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++done_tasks_;
    if (tasks_ != nullptr && done_tasks_ == tasks_->size()) {
      done_cv_.notify_all();
    }
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  if (hooks_.on_start) hooks_.on_start(worker_index);
  std::uint64_t seen_gen = 0;
  for (;;) {
    {
      PROF_SCOPE("pool/wait");
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (tasks_ != nullptr && batch_gen_ != seen_gen &&
                             next_task_ < tasks_->size());
      });
      if (shutdown_) break;
      seen_gen = batch_gen_;
    }
    while (take_task()) {
    }
  }
  if (hooks_.on_exit) hooks_.on_exit(worker_index);
}

void ThreadPool::run(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (auto& t : tasks) t();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = &tasks;
    next_task_ = 0;
    done_tasks_ = 0;
    ++batch_gen_;
  }
  work_cv_.notify_all();
  // The calling thread works the batch too instead of just blocking.
  while (take_task()) {
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_tasks_ == tasks.size(); });
  tasks_ = nullptr;
}

}  // namespace vdap::sim
