// A minimal fixed-size thread pool for lock-step shard execution.
//
// Not a general task system: run() executes one batch of independent tasks
// and blocks until every task finished — the barrier ShardedSimulator
// needs between epochs. All coordination goes through one mutex +
// condition variables, so the completion of every task happens-before
// run() returning (the property the cross-shard merge relies on, and the
// one ThreadSanitizer checks).
//
// With `threads <= 1` no worker threads are created and run() executes the
// batch inline on the calling thread, so single-threaded configurations
// stay exactly as debuggable as the old sequential code.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vdap::sim {

class ThreadPool {
 public:
  /// Per-worker lifecycle hooks, called on the worker thread itself right
  /// after it starts (`on_start`) and right before it exits (`on_exit`),
  /// with the worker's index (0-based over the spawned workers; the
  /// calling thread that participates in run() is not a worker). The
  /// profiling plane uses these to register worker threads with the
  /// sampler (sim::ShardedSimulator binds a prof slot per worker).
  struct WorkerHooks {
    std::function<void(std::size_t)> on_start;
    std::function<void(std::size_t)> on_exit;
  };

  explicit ThreadPool(int threads, WorkerHooks hooks = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads backing the pool (0 for an inline pool).
  int threads() const { return static_cast<int>(workers_.size()); }

  /// Runs every task in `tasks` (the calling thread participates) and
  /// returns when all of them completed. Tasks must not throw.
  void run(std::vector<std::function<void()>>& tasks);

  /// Hardware concurrency with a sane floor (probing can return 0).
  static int hardware_threads();

 private:
  void worker_loop(std::size_t worker_index);
  bool take_task();

  WorkerHooks hooks_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // run() waits for batch completion
  std::vector<std::function<void()>>* tasks_ = nullptr;
  std::size_t next_task_ = 0;
  std::size_t done_tasks_ = 0;
  std::uint64_t batch_gen_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vdap::sim
