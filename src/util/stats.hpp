// Lightweight metrics used across the platform and the benchmark harness:
// counters, running summaries, quantile-capable histograms, and an aligned
// text table printer that the bench binaries use to emit paper-shaped tables.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vdap::util {

/// Running summary over a stream of doubles: count/mean/min/max/variance.
/// Uses Welford's algorithm so it is numerically stable for long runs.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile histogram: stores samples and sorts lazily on query. Exact by
/// default (fine for simulation-scale sample counts); with a sample cap it
/// switches to deterministic stride thinning so soak-length runs don't grow
/// memory without limit — count/mean/min/max stay exact, quantiles come
/// from the retained subsample.
class Histogram {
 public:
  void add(double x);
  /// Folds `n` values in one pass. Produces exactly the state that n
  /// repeated add() calls would (same stride/thinning transitions, same
  /// floating-point sum order), but min/max fold in a tight loop and the
  /// retained-sample vector grows in one append when no thinning can
  /// trigger — the path columnar block sealing runs per block.
  void add_bulk(const double* xs, std::size_t n);
  /// Total values observed (exact even when samples were thinned).
  std::size_t count() const { return total_; }
  /// Values currently retained for quantile queries (≤ count()).
  std::size_t retained() const { return samples_.size(); }
  double mean() const;
  double min() const { return total_ > 0 ? min_ : 0.0; }
  double max() const { return total_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Quantile in [0,1]; nearest-rank. Returns 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  void clear();

  /// Bounds retained samples to `cap` (0 = unbounded, the default). When
  /// the store fills, every other retained sample is dropped and the
  /// record stride doubles — deterministic, allocation-bounded thinning.
  void set_sample_cap(std::size_t cap);
  std::size_t sample_cap() const { return cap_; }

  /// Folds `other` into this histogram. Count/mean/min/max merge exactly;
  /// quantiles afterwards reflect the union of both retained sample sets
  /// (re-thinned if a cap is set).
  void merge(const Histogram& other);

 private:
  void ensure_sorted() const;
  void thin();
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  std::size_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::size_t cap_ = 0;
  std::size_t stride_ = 1;   // record every stride-th add
  std::size_t skipped_ = 0;  // adds since the last recorded sample
};

/// Named monotonically-increasing counters.
class CounterSet {
 public:
  void inc(const std::string& name, std::int64_t by = 1) { c_[name] += by; }
  std::int64_t get(const std::string& name) const {
    auto it = c_.find(name);
    return it == c_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::int64_t>& all() const { return c_; }

  /// Adds every counter of `other` into this set.
  void merge(const CounterSet& other) {
    for (const auto& [name, v] : other.c_) c_[name] += v;
  }
  void reset() { c_.clear(); }

 private:
  std::map<std::string, std::int64_t> c_;
};

/// Column-aligned text table with an optional title; the bench binaries use
/// this to print paper-figure reproductions in a uniform format.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  std::string to_string() const;

  // Structured access, for machine-readable exports (bench/bench_output.hpp).
  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Formats a double with the given precision (helper for row building).
  static std::string num(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vdap::util
