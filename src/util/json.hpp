// Minimal JSON value type, parser, and serializer.
//
// OpenVDAP uses JSON as the interchange format between libvdap's RESTful API,
// the DDI service layer, and external feeds (weather/traffic/social). The
// subset implemented here is full RFC 8259 JSON minus \u surrogate pairs
// beyond the BMP (sufficient for platform telemetry and API payloads).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace vdap::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps object keys ordered, which makes serialization
// deterministic — important for tests and content hashing.
using Object = std::map<std::string, Value>;

enum class Type { Null, Bool, Int, Double, String, Array, Object };

/// A dynamically-typed JSON value with value semantics.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::Null; }
  bool is_bool() const { return type() == Type::Bool; }
  bool is_int() const { return type() == Type::Int; }
  bool is_double() const { return type() == Type::Double; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::String; }
  bool is_array() const { return type() == Type::Array; }
  bool is_object() const { return type() == Type::Object; }

  bool as_bool() const { return get<bool>("bool"); }
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  Array& as_array() { return get<Array>("array"); }
  const Object& as_object() const { return get<Object>("object"); }
  Object& as_object() { return get<Object>("object"); }

  /// Object member access; throws std::out_of_range when missing.
  const Value& at(const std::string& key) const;
  /// Array element access; throws std::out_of_range when out of bounds.
  const Value& at(std::size_t idx) const;
  /// True when this is an object containing `key`.
  bool contains(const std::string& key) const;
  /// Object member lookup returning nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;

  /// Inserting accessor: turns Null into an Object on first use.
  Value& operator[](const std::string& key);

  std::size_t size() const;

  // Typed getters with defaults, the common pattern for config payloads.
  std::int64_t get_int(const std::string& key, std::int64_t def = 0) const;
  double get_double(const std::string& key, double def = 0.0) const;
  std::string get_string(const std::string& key, std::string def = "") const;
  bool get_bool(const std::string& key, bool def = false) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

  /// Compact single-line serialization.
  std::string dump() const;
  /// Pretty-printed serialization with two-space indentation.
  std::string pretty() const;

 private:
  template <typename T>
  const T& get(const char* what) const {
    const T* p = std::get_if<T>(&data_);
    if (p == nullptr) {
      throw std::runtime_error(std::string("json: value is not a ") + what);
    }
    return *p;
  }
  template <typename T>
  T& get(const char* what) {
    T* p = std::get_if<T>(&data_);
    if (p == nullptr) {
      throw std::runtime_error(std::string("json: value is not a ") + what);
    }
    return *p;
  }

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Parses `text` as JSON. Throws std::runtime_error with position info on
/// malformed input; trailing non-whitespace is an error.
Value parse(std::string_view text);

/// Parse variant that returns std::nullopt instead of throwing.
std::optional<Value> try_parse(std::string_view text);

/// Escapes a string for embedding into JSON output (adds quotes).
std::string escape(std::string_view s);

}  // namespace vdap::json
