#include "util/stats.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace vdap::util {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-variance merge.
  double delta = other.mean_ - mean_;
  std::int64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double Summary::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Histogram::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Histogram::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

void Histogram::clear() {
  samples_.clear();
  sorted_ = true;
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << "  ";
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size(), ' ');
      }
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i != 0 ? 2 : 0);
    }
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace vdap::util
