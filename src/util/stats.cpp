#include "util/stats.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace vdap::util {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-variance merge.
  double delta = other.mean_ - mean_;
  std::int64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double Summary::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Histogram::add(double x) {
  if (total_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++total_;
  sum_ += x;
  if (stride_ > 1) {
    if (++skipped_ < stride_) return;
    skipped_ = 0;
  }
  samples_.push_back(x);
  sorted_ = false;
  if (cap_ > 0 && samples_.size() >= cap_) thin();
}

void Histogram::add_bulk(const double* xs, std::size_t n) {
  if (n == 0) return;
  if (total_ == 0) min_ = max_ = xs[0];
  // min/max are order-independent so they vectorize; the sum stays in
  // arrival order so the result is bit-identical to repeated add().
  double mn = min_;
  double mx = max_;
  double s = sum_;
  for (std::size_t i = 0; i < n; ++i) {
    mn = std::min(mn, xs[i]);
    mx = std::max(mx, xs[i]);
    s += xs[i];
  }
  min_ = mn;
  max_ = mx;
  sum_ = s;
  total_ += n;
  if (stride_ == 1 && (cap_ == 0 || samples_.size() + n < cap_)) {
    // No thinning can trigger mid-append: record everything at once.
    samples_.insert(samples_.end(), xs, xs + n);
    sorted_ = false;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (stride_ > 1) {
      if (++skipped_ < stride_) continue;
      skipped_ = 0;
    }
    samples_.push_back(xs[i]);
    sorted_ = false;
    if (cap_ > 0 && samples_.size() >= cap_) thin();
  }
}

void Histogram::thin() {
  // Keep every other retained sample and double the record stride: memory
  // stays ≤ cap while the subsample remains uniform over arrival order.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < samples_.size(); i += 2) {
    samples_[kept++] = samples_[i];
  }
  samples_.resize(kept);
  stride_ *= 2;
  skipped_ = 0;
}

void Histogram::set_sample_cap(std::size_t cap) {
  cap_ = cap;
  while (cap_ > 0 && samples_.size() >= cap_ && samples_.size() > 1) thin();
}

void Histogram::merge(const Histogram& other) {
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
  samples_.reserve(samples_.size() + other.samples_.size());
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
  while (cap_ > 0 && samples_.size() >= cap_ && samples_.size() > 1) thin();
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::mean() const {
  return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  // The extremes are tracked exactly even when samples were thinned.
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

void Histogram::clear() {
  samples_.clear();
  sorted_ = true;
  total_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
  stride_ = 1;
  skipped_ = 0;
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << "  ";
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size(), ' ');
      }
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i != 0 ? 2 : 0);
    }
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace vdap::util
