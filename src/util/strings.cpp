#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace vdap::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (b < e && is_ws(s[b])) ++b;
  while (e > b && is_ws(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string human_bytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return format(u == 0 ? "%.0f %s" : "%.1f %s", v, units[u]);
}

}  // namespace vdap::util
