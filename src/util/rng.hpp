// Deterministic random-number streams.
//
// Every stochastic component of the simulation (arrival processes, channel
// fading, collector feeds, NN initialization) draws from a named RngStream so
// that experiments are reproducible bit-for-bit and components do not perturb
// each other's sequences when one is reconfigured.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace vdap::util {

/// A self-contained PRNG stream (mersenne twister) with convenience draws.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  /// Derives a stream from a master seed and a component name, so adding a
  /// component never shifts the draws of existing ones.
  RngStream(std::uint64_t master_seed, std::string_view name)
      : engine_(mix(master_seed, name)) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean (not rate).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal draw.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Normal draw truncated below at `lo`.
  double normal_min(double mean, double stddev, double lo) {
    double v = normal(mean, stddev);
    return v < lo ? lo : v;
  }

  /// Poisson draw with the given mean.
  std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t seed, std::string_view name) {
    // FNV-1a over the name folded into the master seed; cheap and stable.
    std::uint64_t h = 1469598103934665603ULL ^ seed;
    for (char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

  std::mt19937_64 engine_;
};

}  // namespace vdap::util
