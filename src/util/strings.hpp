// Small string helpers shared across modules (path splitting for the RESTful
// router, keyword parsing in the DDI service layer, id formatting).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vdap::util {

/// Splits `s` on `sep`, dropping empty pieces ("/a//b" -> {"a","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on `sep`, keeping empty pieces ("a,,b" -> {"a","","b"}).
std::vector<std::string> split_keep_empty(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Stable non-cryptographic 64-bit hash (FNV-1a). Used for content ids,
/// pseudonym derivation, and the data-sharing bus' message auth tags; NOT a
/// security primitive (documented as a simulation stand-in).
std::uint64_t fnv1a(std::string_view s);

/// Renders a byte count as a human-readable string ("1.5 MiB").
std::string human_bytes(std::uint64_t bytes);

}  // namespace vdap::util
