#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace vdap::json {

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) {
    return static_cast<std::int64_t>(*d);
  }
  throw std::runtime_error("json: value is not a number");
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  throw std::runtime_error("json: value is not a number");
}

const Value& Value::at(const std::string& key) const {
  const Object& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) {
    throw std::out_of_range("json: missing key '" + key + "'");
  }
  return it->second;
}

const Value& Value::at(std::size_t idx) const {
  const Array& a = as_array();
  if (idx >= a.size()) throw std::out_of_range("json: index out of range");
  return a[idx];
}

bool Value::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const Value* Value::find(const std::string& key) const {
  const Object* o = std::get_if<Object>(&data_);
  if (o == nullptr) return nullptr;
  auto it = o->find(key);
  return it == o->end() ? nullptr : &it->second;
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  return get<Object>("object")[key];
}

std::size_t Value::size() const {
  if (const auto* a = std::get_if<Array>(&data_)) return a->size();
  if (const auto* o = std::get_if<Object>(&data_)) return o->size();
  return 0;
}

std::int64_t Value::get_int(const std::string& key, std::int64_t def) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : def;
}

double Value::get_double(const std::string& key, double def) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : def;
}

std::string Value::get_string(const std::string& key, std::string def) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::move(def);
}

bool Value::get_bool(const std::string& key, bool def) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : def;
}

namespace {

void append_u_escape(std::string& out, unsigned code) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "\\u%04x", code);
  out += buf;
}

/// Decodes one UTF-8 sequence starting at s[i]; advances i past it and
/// returns the code point, or returns 0xFFFD (advancing one byte) on an
/// invalid/truncated/overlong sequence so malformed labels still yield
/// valid JSON.
unsigned decode_utf8(std::string_view s, std::size_t& i) {
  const auto b0 = static_cast<unsigned char>(s[i]);
  int len = 0;
  unsigned code = 0;
  unsigned min = 0;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2; code = b0 & 0x1Fu; min = 0x80;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3; code = b0 & 0x0Fu; min = 0x800;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4; code = b0 & 0x07u; min = 0x10000;
  } else {
    ++i;
    return 0xFFFD;  // stray continuation or invalid lead byte
  }
  if (i + static_cast<std::size_t>(len) > s.size()) {
    ++i;
    return 0xFFFD;
  }
  for (int k = 1; k < len; ++k) {
    const auto b = static_cast<unsigned char>(s[i + static_cast<std::size_t>(k)]);
    if ((b & 0xC0) != 0x80) {
      ++i;
      return 0xFFFD;
    }
    code = (code << 6) | (b & 0x3Fu);
  }
  // Reject overlong encodings, UTF-16 surrogate code points and
  // out-of-range values — all invalid UTF-8.
  if (code < min || code > 0x10FFFF || (code >= 0xD800 && code <= 0xDFFF)) {
    ++i;
    return 0xFFFD;
  }
  i += static_cast<std::size_t>(len);
  return code;
}

}  // namespace

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (std::size_t i = 0; i < s.size();) {
    char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      default: break;
    }
    const auto b = static_cast<unsigned char>(c);
    if (b < 0x20) {
      append_u_escape(out, b);
      ++i;
    } else if (b < 0x80) {
      out.push_back(c);
      ++i;
    } else {
      // Non-ASCII: BMP code points become \uXXXX (the output stays pure
      // ASCII and our own parser decodes them back); valid astral
      // sequences pass through as raw UTF-8 (the parser has no surrogate
      // pairs); invalid bytes become U+FFFD instead of corrupting the
      // document.
      std::size_t start = i;
      unsigned code = decode_utf8(s, i);
      if (code <= 0xFFFF) {
        append_u_escape(out, code);
      } else {
        out.append(s.substr(start, i - start));
      }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void format_double(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null (matches common lenient serializers).
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
    double back = std::strtod(probe, nullptr);
    if (back == d) {
      out += probe;
      return;
    }
  }
  out += buf;
}

void dump_impl(const Value& v, std::string& out, int indent, int depth) {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Type::Int: out += std::to_string(v.as_int()); break;
    case Type::Double: format_double(out, v.as_double()); break;
    case Type::String: out += escape(v.as_string()); break;
    case Type::Array: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Value& e : a) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        dump_impl(e, out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::Object: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, e] : o) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        out += escape(k);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        dump_impl(e, out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o[std::move(key)] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value(std::move(o));
  }

  Value parse_array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value(std::move(a));
  }

  std::string parse_string() {
    skip_ws();
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode the BMP code point as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("invalid number");
    if (!is_double) {
      std::int64_t i = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Value(i);
    }
    double d = std::strtod(std::string(tok).c_str(), nullptr);
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_impl(*this, out, /*indent=*/-1, 0);
  return out;
}

std::string Value::pretty() const {
  std::string out;
  dump_impl(*this, out, /*indent=*/2, 0);
  return out;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::optional<Value> try_parse(std::string_view text) {
  try {
    return parse(text);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace vdap::json
