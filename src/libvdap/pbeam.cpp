#include "libvdap/pbeam.hpp"

#include <cmath>
#include <stdexcept>

namespace vdap::libvdap {

std::vector<double> DrivingFeatures::to_vector() const {
  // Normalized to comparable scales so SGD behaves.
  return {mean_speed_mps / 30.0, speed_stddev / 10.0,
          accel_stddev / 3.0,    harsh_brake_rate / 5.0,
          harsh_accel_rate / 5.0, mean_abs_jerk / 5.0,
          overspeed_frac};
}

DrivingFeatures features_from_records(
    const std::vector<ddi::DataRecord>& w) {
  DrivingFeatures f;
  if (w.size() < 3) return f;
  double speed_sum = 0.0, speed_sq = 0.0;
  double accel_sum = 0.0, accel_sq = 0.0;
  double jerk_sum = 0.0;
  int harsh_brakes = 0, harsh_accels = 0, overspeed = 0;
  double prev_accel = 0.0;
  double prev_t = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    double speed = w[i].payload.get_double("speed_mps");
    double accel = w[i].payload.get_double("accel_mps2");
    double t = sim::to_seconds(w[i].timestamp);
    speed_sum += speed;
    speed_sq += speed * speed;
    accel_sum += accel;
    accel_sq += accel * accel;
    if (accel < -2.5) ++harsh_brakes;
    if (accel > 2.0) ++harsh_accels;
    if (speed > 29.0) ++overspeed;
    if (i > 0 && t > prev_t) {
      jerk_sum += std::abs(accel - prev_accel) / (t - prev_t);
    }
    prev_accel = accel;
    prev_t = t;
  }
  double n = static_cast<double>(w.size());
  double duration_min =
      (sim::to_seconds(w.back().timestamp) -
       sim::to_seconds(w.front().timestamp)) /
      60.0;
  if (duration_min <= 0.0) duration_min = n / 600.0;  // assume 10 Hz
  f.mean_speed_mps = speed_sum / n;
  f.speed_stddev =
      std::sqrt(std::max(0.0, speed_sq / n - f.mean_speed_mps *
                                                 f.mean_speed_mps));
  double mean_accel = accel_sum / n;
  f.accel_stddev =
      std::sqrt(std::max(0.0, accel_sq / n - mean_accel * mean_accel));
  f.harsh_brake_rate = harsh_brakes / duration_min;
  f.harsh_accel_rate = harsh_accels / duration_min;
  f.mean_abs_jerk = jerk_sum / (n - 1);
  f.overspeed_frac = overspeed / n;
  return f;
}

DrivingFeatures sample_style_features(DrivingStyle style,
                                      util::RngStream& rng) {
  DrivingFeatures f;
  switch (style) {
    case DrivingStyle::kCautious:
      f.mean_speed_mps = rng.normal_min(10.0, 2.5, 0.0);
      f.speed_stddev = rng.normal_min(2.0, 0.7, 0.1);
      f.accel_stddev = rng.normal_min(0.5, 0.15, 0.05);
      f.harsh_brake_rate = rng.normal_min(0.1, 0.1, 0.0);
      f.harsh_accel_rate = rng.normal_min(0.05, 0.05, 0.0);
      f.mean_abs_jerk = rng.normal_min(0.4, 0.15, 0.05);
      f.overspeed_frac = rng.normal_min(0.0, 0.01, 0.0);
      break;
    case DrivingStyle::kNormal:
      f.mean_speed_mps = rng.normal_min(15.0, 3.0, 0.0);
      f.speed_stddev = rng.normal_min(4.0, 1.0, 0.1);
      f.accel_stddev = rng.normal_min(1.0, 0.25, 0.05);
      f.harsh_brake_rate = rng.normal_min(0.5, 0.3, 0.0);
      f.harsh_accel_rate = rng.normal_min(0.4, 0.25, 0.0);
      f.mean_abs_jerk = rng.normal_min(1.0, 0.3, 0.05);
      f.overspeed_frac = rng.normal_min(0.05, 0.04, 0.0);
      break;
    case DrivingStyle::kAggressive:
      f.mean_speed_mps = rng.normal_min(21.0, 4.0, 0.0);
      f.speed_stddev = rng.normal_min(7.0, 1.5, 0.1);
      f.accel_stddev = rng.normal_min(1.9, 0.4, 0.05);
      f.harsh_brake_rate = rng.normal_min(2.2, 0.8, 0.0);
      f.harsh_accel_rate = rng.normal_min(2.0, 0.7, 0.0);
      f.mean_abs_jerk = rng.normal_min(2.4, 0.6, 0.05);
      f.overspeed_frac = rng.normal_min(0.25, 0.10, 0.0);
      break;
  }
  return f;
}

Dataset synth_fleet_dataset(int per_style, util::RngStream& rng) {
  Dataset data;
  data.reserve(static_cast<std::size_t>(per_style) * kNumStyles);
  for (int label = 0; label < kNumStyles; ++label) {
    for (int i = 0; i < per_style; ++i) {
      LabeledSample s;
      s.features =
          sample_style_features(static_cast<DrivingStyle>(label), rng)
              .to_vector();
      s.label = label;
      data.push_back(std::move(s));
    }
  }
  return data;
}

Dataset synth_driver_dataset(DrivingStyle style, int samples,
                             double personal_bias, util::RngStream& rng) {
  Dataset data;
  data.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    DrivingFeatures f = sample_style_features(style, rng);
    // Idiosyncrasy: this driver systematically shifts some features (e.g.
    // brakes harder but speeds less than the fleet's average for the
    // style) — what a personalized model can exploit.
    f.harsh_brake_rate += personal_bias;
    f.mean_speed_mps -= personal_bias * 2.0;
    f.mean_abs_jerk += personal_bias * 0.5;
    LabeledSample s;
    s.features = f.to_vector();
    s.label = static_cast<int>(style);
    data.push_back(std::move(s));
  }
  return data;
}

PBeam PBeam::build(const Dataset& fleet, const PBeamConfig& config,
                   util::RngStream& rng) {
  if (fleet.empty()) throw std::invalid_argument("empty fleet dataset");
  std::vector<std::size_t> dims;
  dims.push_back(DrivingFeatures::kDim);
  for (std::size_t h : config.hidden) dims.push_back(h);
  dims.push_back(kNumStyles);
  Mlp model(dims, rng);
  model.train(fleet, config.cloud_train, rng);
  CompressionReport rep =
      deep_compress(model, config.compress_sparsity, config.compress_bits);
  return PBeam(std::move(model), rep, config);
}

void PBeam::personalize(const Dataset& driver_data, util::RngStream& rng) {
  if (driver_data.empty()) {
    throw std::invalid_argument("empty driver dataset");
  }
  model_.train(driver_data, config_.personalize_train, rng);
  personalized_ = true;
}

DrivingStyle PBeam::classify(const DrivingFeatures& f) const {
  return static_cast<DrivingStyle>(model_.predict(f.to_vector()));
}

double PBeam::aggressiveness(const DrivingFeatures& f) const {
  return model_.predict_proba(f.to_vector())
      [static_cast<std::size_t>(DrivingStyle::kAggressive)];
}

}  // namespace vdap::libvdap
