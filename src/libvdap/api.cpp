#include "libvdap/api.hpp"

#include "util/strings.hpp"

namespace vdap::libvdap {

ApiResponse ApiResponse::not_found(const std::string& what) {
  ApiResponse r;
  r.status = 404;
  r.body["error"] = "not found: " + what;
  return r;
}

ApiResponse ApiResponse::bad_request(const std::string& why) {
  ApiResponse r;
  r.status = 400;
  r.body["error"] = why;
  return r;
}

void ApiRouter::route(Method method, const std::string& pattern,
                      Handler handler) {
  Route r;
  r.method = method;
  r.segments = util::split(pattern, '/');
  r.handler = std::move(handler);
  routes_.push_back(std::move(r));
}

bool ApiRouter::match(const Route& route,
                      const std::vector<std::string>& path,
                      PathParams* params) {
  if (route.segments.size() != path.size()) return false;
  PathParams out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const std::string& seg = route.segments[i];
    if (!seg.empty() && seg[0] == ':') {
      out[seg.substr(1)] = path[i];
    } else if (seg != path[i]) {
      return false;
    }
  }
  if (params != nullptr) *params = std::move(out);
  return true;
}

ApiResponse ApiRouter::handle(const ApiRequest& request) const {
  std::vector<std::string> path = util::split(request.path, '/');
  bool path_matched = false;
  for (const Route& r : routes_) {
    PathParams params;
    if (!match(r, path, &params)) continue;
    path_matched = true;
    if (r.method != request.method) continue;
    return r.handler(request, params);
  }
  if (path_matched) {
    ApiResponse resp;
    resp.status = 405;
    resp.body["error"] = "method not allowed";
    return resp;
  }
  return ApiResponse::not_found(request.path);
}

namespace {

json::Value model_to_json(const ModelSpec& m) {
  json::Value v;
  v["name"] = m.name;
  v["domain"] = std::string(to_string(m.domain));
  v["task_class"] = std::string(hw::to_string(m.task_class));
  v["gflop"] = m.gflop_per_inference;
  v["size_bytes"] = static_cast<std::int64_t>(m.size_bytes);
  v["accuracy"] = m.accuracy;
  v["compressed"] = m.compressed;
  if (!m.base_model.empty()) v["base_model"] = m.base_model;
  return v;
}

json::Value profile_to_json(const vcu::ResourceProfile& p) {
  json::Value v;
  v["device"] = p.device;
  v["kind"] = std::string(hw::to_string(p.kind));
  v["online"] = p.online;
  v["slots"] = p.slots;
  v["busy_slots"] = p.busy_slots;
  v["queue_length"] = static_cast<std::int64_t>(p.queue_length);
  v["utilization"] = p.utilization;
  v["power_w"] = p.power_now_w;
  json::Value classes;
  for (const auto& [cls, tput] : p.gflops) {
    classes[std::string(hw::to_string(cls))] = tput;
  }
  v["gflops"] = classes;
  return v;
}

}  // namespace

LibVdap::LibVdap(ModelRegistry models, vcu::ResourceRegistry& resources,
                 ddi::Ddi& ddi)
    : models_(std::move(models)), resources_(resources), ddi_(ddi) {
  mount_routes();
}

void LibVdap::attach_pbeam(PBeam pbeam) { pbeam_.emplace(std::move(pbeam)); }

void LibVdap::mount_routes() {
  // --- Common model library -----------------------------------------------
  router_.route(Method::kGet, "/v1/models",
                [this](const ApiRequest&, const PathParams&) {
                  json::Array arr;
                  for (const ModelSpec& m : models_.list()) {
                    arr.push_back(model_to_json(m));
                  }
                  json::Value body;
                  body["models"] = json::Value(std::move(arr));
                  return ApiResponse::ok(std::move(body));
                });
  router_.route(Method::kGet, "/v1/models/:name",
                [this](const ApiRequest&, const PathParams& params) {
                  auto m = models_.find(params.at("name"));
                  if (!m) return ApiResponse::not_found(params.at("name"));
                  return ApiResponse::ok(model_to_json(*m));
                });

  // --- VCU system resources library ---------------------------------------
  router_.route(Method::kGet, "/v1/resources",
                [this](const ApiRequest&, const PathParams&) {
                  json::Array arr;
                  for (const auto& p : resources_.profiles()) {
                    arr.push_back(profile_to_json(p));
                  }
                  json::Value body;
                  body["resources"] = json::Value(std::move(arr));
                  return ApiResponse::ok(std::move(body));
                });
  router_.route(Method::kGet, "/v1/resources/:device",
                [this](const ApiRequest&, const PathParams& params) {
                  for (const auto& p : resources_.profiles()) {
                    if (p.device == params.at("device")) {
                      return ApiResponse::ok(profile_to_json(p));
                    }
                  }
                  return ApiResponse::not_found(params.at("device"));
                });

  // --- Data sharing library (DDI) ------------------------------------------
  router_.route(
      Method::kPost, "/v1/data/query",
      [this](const ApiRequest& req, const PathParams&) {
        if (!req.body.is_object() || !req.body.contains("stream")) {
          return ApiResponse::bad_request("body needs stream/t0/t1");
        }
        ddi::DownloadRequest q;
        q.stream = req.body.get_string("stream");
        q.t0 = req.body.get_int("t0");
        q.t1 = req.body.get_int("t1");
        if (req.body.contains("geo")) {
          const json::Value& g = req.body.at("geo");
          q.geo = true;
          q.lat0 = g.get_double("lat0");
          q.lat1 = g.get_double("lat1");
          q.lon0 = g.get_double("lon0");
          q.lon1 = g.get_double("lon1");
        }
        auto resp = ddi_.download_now(q);
        json::Array arr;
        for (const auto& r : resp.records) {
          json::Value v;
          v["ts"] = r.timestamp;
          v["lat"] = r.lat;
          v["lon"] = r.lon;
          v["payload"] = r.payload;
          arr.push_back(std::move(v));
        }
        json::Value body;
        body["records"] = json::Value(std::move(arr));
        body["from_cache"] = resp.from_cache;
        return ApiResponse::ok(std::move(body));
      });
  router_.route(
      Method::kPost, "/v1/data/upload",
      [this](const ApiRequest& req, const PathParams&) {
        if (!req.body.is_object() || !req.body.contains("stream")) {
          return ApiResponse::bad_request("body needs stream");
        }
        ddi::DataRecord rec;
        rec.stream = req.body.get_string("stream");
        rec.timestamp = req.body.get_int("ts");
        rec.lat = req.body.get_double("lat");
        rec.lon = req.body.get_double("lon");
        if (const json::Value* p = req.body.find("payload")) {
          rec.payload = *p;
        }
        ddi_.upload(std::move(rec));
        json::Value body;
        body["accepted"] = true;
        return ApiResponse::ok(std::move(body));
      });

  // --- pBEAM -----------------------------------------------------------------
  router_.route(
      Method::kPost, "/v1/pbeam/score",
      [this](const ApiRequest& req, const PathParams&) {
        if (!pbeam_) return ApiResponse::not_found("pbeam (not built yet)");
        if (!req.body.is_object()) {
          return ApiResponse::bad_request("body needs driving features");
        }
        DrivingFeatures f;
        f.mean_speed_mps = req.body.get_double("mean_speed_mps");
        f.speed_stddev = req.body.get_double("speed_stddev");
        f.accel_stddev = req.body.get_double("accel_stddev");
        f.harsh_brake_rate = req.body.get_double("harsh_brake_rate");
        f.harsh_accel_rate = req.body.get_double("harsh_accel_rate");
        f.mean_abs_jerk = req.body.get_double("mean_abs_jerk");
        f.overspeed_frac = req.body.get_double("overspeed_frac");
        json::Value body;
        body["style"] = std::string(to_string(pbeam_->classify(f)));
        body["aggressiveness"] = pbeam_->aggressiveness(f);
        body["personalized"] = pbeam_->personalized();
        return ApiResponse::ok(std::move(body));
      });
  router_.route(Method::kGet, "/v1/pbeam",
                [this](const ApiRequest&, const PathParams&) {
                  if (!pbeam_) {
                    return ApiResponse::not_found("pbeam (not built yet)");
                  }
                  json::Value body;
                  body["personalized"] = pbeam_->personalized();
                  body["compressed_bytes"] = static_cast<std::int64_t>(
                      pbeam_->compression().compressed_bytes);
                  body["dense_bytes"] = static_cast<std::int64_t>(
                      pbeam_->compression().dense_bytes);
                  body["sparsity"] = pbeam_->compression().sparsity;
                  return ApiResponse::ok(std::move(body));
                });
}

}  // namespace vdap::libvdap
