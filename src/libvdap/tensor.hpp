// Minimal dense linear algebra for libvdap's model library: row-major
// double matrices with exactly the operations the MLP (nn.hpp) and Deep
// Compression (compress.hpp) need. No BLAS — model sizes here are the
// compressed, edge-resident kind the paper argues for (§IV-E).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace vdap::libvdap {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix randn(std::size_t rows, std::size_t cols,
                      util::RngStream& rng, double stddev);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// y = W x  (x sized cols, result sized rows).
  std::vector<double> apply(const std::vector<double>& x) const;

  /// y = Wᵀ x  (x sized rows, result sized cols) — used in backprop.
  std::vector<double> apply_transposed(const std::vector<double>& x) const;

  /// W -= lr * g xᵀ  (rank-one gradient update).
  void rank_one_update(const std::vector<double>& g,
                       const std::vector<double>& x, double lr);

  std::size_t nonzeros() const;
  double sparsity() const {
    return size() == 0 ? 0.0
                       : 1.0 - static_cast<double>(nonzeros()) / size();
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place ReLU.
void relu(std::vector<double>& v);
/// Derivative mask of ReLU at the *activated* values (1 where > 0).
std::vector<double> relu_mask(const std::vector<double>& activated);
/// In-place numerically-stable softmax.
void softmax(std::vector<double>& v);
std::size_t argmax(const std::vector<double>& v);

}  // namespace vdap::libvdap
