#include "libvdap/models.hpp"

#include <stdexcept>

namespace vdap::libvdap {

void ModelRegistry::add(ModelSpec spec) {
  if (spec.name.empty()) throw std::invalid_argument("model needs a name");
  if (find(spec.name).has_value()) {
    throw std::invalid_argument("model '" + spec.name + "' already exists");
  }
  models_.push_back(std::move(spec));
}

std::optional<ModelSpec> ModelRegistry::find(const std::string& name) const {
  for (const ModelSpec& m : models_) {
    if (m.name == name) return m;
  }
  return std::nullopt;
}

std::vector<ModelSpec> ModelRegistry::by_domain(ModelDomain domain) const {
  std::vector<ModelSpec> out;
  for (const ModelSpec& m : models_) {
    if (m.domain == domain) out.push_back(m);
  }
  return out;
}

std::vector<ModelSpec> ModelRegistry::edge_deployable(
    std::uint64_t budget_bytes) const {
  std::vector<ModelSpec> out;
  for (const ModelSpec& m : models_) {
    if (m.size_bytes <= budget_bytes) out.push_back(m);
  }
  return out;
}

ModelRegistry ModelRegistry::with_default_catalog() {
  using TC = hw::TaskClass;
  ModelRegistry r;
  // Cloud originals (sizes/compute from the public model zoo; accuracy is
  // the commonly reported benchmark top-1 / WER-derived score).
  r.add({"inception-v3", ModelDomain::kVideo, TC::kCnnInference, 11.4,
         95'000'000, 0.78, false, ""});
  r.add({"yolo-v2", ModelDomain::kVideo, TC::kCnnInference, 34.9,
         258'000'000, 0.76, false, ""});
  r.add({"deepspeech", ModelDomain::kAudio, TC::kAudio, 4.5, 190'000'000,
         0.84, false, ""});
  r.add({"nlp-intent-lstm", ModelDomain::kNlp, TC::kNlp, 2.2, 120'000'000,
         0.92, false, ""});
  r.add({"cbeam", ModelDomain::kDriving, TC::kCnnInference, 0.002, 2'000'000,
         0.95, false, ""});
  // Deep-Compressed edge variants (~10-20x smaller, slight accuracy dip,
  // modestly cheaper compute).
  r.add({"inception-v3-edge", ModelDomain::kVideo, TC::kCnnInference, 9.7,
         6'500'000, 0.76, true, "inception-v3"});
  r.add({"yolo-v2-edge", ModelDomain::kVideo, TC::kCnnInference, 28.0,
         17'000'000, 0.73, true, "yolo-v2"});
  r.add({"deepspeech-edge", ModelDomain::kAudio, TC::kAudio, 3.6,
         12'000'000, 0.81, true, "deepspeech"});
  r.add({"nlp-intent-edge", ModelDomain::kNlp, TC::kNlp, 1.8, 8'000'000,
         0.90, true, "nlp-intent-lstm"});
  r.add({"cbeam-edge", ModelDomain::kDriving, TC::kCnnInference, 0.0017,
         160'000, 0.94, true, "cbeam"});
  return r;
}

}  // namespace vdap::libvdap
