#include "libvdap/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace vdap::libvdap {

Matrix Matrix::randn(std::size_t rows, std::size_t cols,
                     util::RngStream& rng, double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.normal(0.0, stddev);
  return m;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::apply_transposed(
    const std::vector<double>& x) const {
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Matrix::rank_one_update(const std::vector<double>& g,
                             const std::vector<double>& x, double lr) {
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * cols_;
    double gr = lr * g[r];
    for (std::size_t c = 0; c < cols_; ++c) row[c] -= gr * x[c];
  }
}

std::size_t Matrix::nonzeros() const {
  std::size_t n = 0;
  for (double v : data_) n += v != 0.0 ? 1 : 0;
  return n;
}

void relu(std::vector<double>& v) {
  for (double& x : v) x = std::max(0.0, x);
}

std::vector<double> relu_mask(const std::vector<double>& activated) {
  std::vector<double> m(activated.size());
  for (std::size_t i = 0; i < activated.size(); ++i) {
    m[i] = activated[i] > 0.0 ? 1.0 : 0.0;
  }
  return m;
}

void softmax(std::vector<double>& v) {
  if (v.empty()) return;
  double mx = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (double& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (double& x : v) x /= sum;
}

std::size_t argmax(const std::vector<double>& v) {
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace vdap::libvdap
