// A small but real multi-layer perceptron: ReLU hidden layers, softmax
// cross-entropy output, SGD training with backprop. This is the model class
// behind cBEAM/pBEAM (§IV-E): big enough to learn driving-behavior
// classification, small enough to live (and be fine-tuned) on the vehicle
// after Deep Compression.
#pragma once

#include <cstdint>
#include <vector>

#include "libvdap/tensor.hpp"

namespace vdap::libvdap {

struct LabeledSample {
  std::vector<double> features;
  int label = 0;
};

using Dataset = std::vector<LabeledSample>;

struct TrainOptions {
  int epochs = 30;
  double lr = 0.05;
  double lr_decay = 0.98;       // per epoch
  bool shuffle = true;
  /// Train only the final layer (transfer learning, §IV-E: "Transfer
  /// learning is used to transfer the compressed cBEAM to pBEAM").
  bool freeze_hidden = false;
  /// Keep pruned (exactly-zero) weights at zero during updates, so
  /// fine-tuning preserves the compressed sparsity structure.
  bool preserve_zeros = false;
  /// L2 regularization on updated layers (keeps fine-tuned logits sane).
  double weight_decay = 0.0;
};

class Mlp {
 public:
  Mlp() = default;
  /// dims = {in, hidden..., out}; weights ~ N(0, sqrt(2/fan_in)).
  Mlp(const std::vector<std::size_t>& dims, util::RngStream& rng);

  /// Class probabilities for one input.
  std::vector<double> predict_proba(const std::vector<double>& x) const;
  int predict(const std::vector<double>& x) const;

  /// One SGD pass over `data` per epoch. Returns final-epoch mean CE loss.
  double train(const Dataset& data, const TrainOptions& options,
               util::RngStream& rng);

  double accuracy(const Dataset& data) const;
  double mean_loss(const Dataset& data) const;

  std::size_t num_layers() const { return weights_.size(); }
  Matrix& weights(std::size_t layer) { return weights_[layer]; }
  const Matrix& weights(std::size_t layer) const { return weights_[layer]; }
  std::vector<double>& bias(std::size_t layer) { return biases_[layer]; }

  std::size_t num_params() const;
  /// Dense fp32 serialized size — the pre-compression footprint.
  std::uint64_t dense_bytes() const { return num_params() * 4; }

  std::size_t input_dim() const;
  std::size_t output_dim() const;

  /// Binary model serialization — how a cloud-trained (compressed) cBEAM
  /// ships to the vehicle (§IV-E: "The compressed cBEAM is then downloaded
  /// to the vehicle"). Layout: magic, layer count, per-layer dims + fp64
  /// weights + biases. deserialize() throws std::runtime_error on corrupt
  /// or truncated input.
  std::vector<std::uint8_t> serialize() const;
  static Mlp deserialize(const std::vector<std::uint8_t>& bytes);

 private:
  struct ForwardTrace {
    std::vector<std::vector<double>> activations;  // per layer, post-ReLU
    std::vector<double> probs;
  };
  ForwardTrace forward(const std::vector<double>& x) const;
  void backward(const ForwardTrace& t, const std::vector<double>& x,
                int label, double lr, const TrainOptions& options);

  std::vector<Matrix> weights_;
  std::vector<std::vector<double>> biases_;
};

}  // namespace vdap::libvdap
