// libvdap's uniform RESTful API (§IV-E, Fig. 8): "libvdap provides a
// uniform RESTful API. By calling the API, developers can access all
// software and hardware resources", grouped into four libraries —
// pBEAM, the Common model library, the VCU system resources library, and
// the Data sharing library (DDI + the EdgeOSv bus).
//
// The router is in-process (requests are dispatched function calls, not
// sockets) but keeps HTTP semantics: methods, paths with :params, status
// codes, JSON bodies — so a real HTTP front-end could mount it unchanged.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ddi/ddi.hpp"
#include "libvdap/models.hpp"
#include "libvdap/pbeam.hpp"
#include "vcu/registry.hpp"

namespace vdap::libvdap {

enum class Method { kGet, kPost };

struct ApiRequest {
  Method method = Method::kGet;
  std::string path;
  json::Value body;
};

struct ApiResponse {
  int status = 200;
  json::Value body;

  static ApiResponse ok(json::Value body = {}) { return {200, std::move(body)}; }
  static ApiResponse not_found(const std::string& what);
  static ApiResponse bad_request(const std::string& why);
};

/// Path parameters extracted from ":name" segments.
using PathParams = std::map<std::string, std::string>;
using Handler =
    std::function<ApiResponse(const ApiRequest&, const PathParams&)>;

class ApiRouter {
 public:
  /// Registers a handler for a method + pattern ("/v1/models/:name").
  void route(Method method, const std::string& pattern, Handler handler);

  /// Dispatches; 404 when no pattern matches, 405 when only the method
  /// differs.
  ApiResponse handle(const ApiRequest& request) const;

  std::size_t route_count() const { return routes_.size(); }

 private:
  struct Route {
    Method method;
    std::vector<std::string> segments;  // ":x" marks a parameter
    Handler handler;
  };
  static bool match(const Route& route, const std::vector<std::string>& path,
                    PathParams* params);

  std::vector<Route> routes_;
};

/// The assembled libvdap service: mounts the four resource groups onto a
/// router over live platform components.
class LibVdap {
 public:
  LibVdap(ModelRegistry models, vcu::ResourceRegistry& resources,
          ddi::Ddi& ddi);

  /// Attaches a built pBEAM (optional; /v1/pbeam 404s until then).
  void attach_pbeam(PBeam pbeam);

  ApiResponse handle(const ApiRequest& request) const {
    return router_.handle(request);
  }
  /// Convenience GET.
  ApiResponse get(const std::string& path) const {
    return handle({Method::kGet, path, {}});
  }
  ApiResponse post(const std::string& path, json::Value body) const {
    return handle({Method::kPost, path, std::move(body)});
  }

  const ModelRegistry& models() const { return models_; }
  const PBeam* pbeam() const { return pbeam_ ? &*pbeam_ : nullptr; }

 private:
  void mount_routes();

  ModelRegistry models_;
  vcu::ResourceRegistry& resources_;
  ddi::Ddi& ddi_;
  std::optional<PBeam> pbeam_;
  ApiRouter router_;
};

}  // namespace vdap::libvdap
