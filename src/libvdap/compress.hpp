// Deep Compression (§IV-E, after Han et al. [30]): "cBEAM is pruned first
// to reduce the number of connections by learning only the important
// connections, then the number of bits for representing each weight is
// reduced via the weight sharing technique."
//
// Implemented for real on the Mlp weights:
//   * magnitude pruning to a target sparsity (smallest |w| go to zero);
//   * k-means weight sharing over the surviving weights (2^bits centroids),
//     every weight snapped to its centroid;
//   * compressed-size accounting: CSR-style sparse indices + per-weight
//     codebook indices + the fp32 codebook, mirroring [30]'s storage model.
#pragma once

#include <cstdint>

#include "libvdap/nn.hpp"

namespace vdap::libvdap {

struct CompressionReport {
  double sparsity = 0.0;          // fraction of zeroed weights
  int codebook_bits = 0;          // 0 = not quantized
  std::uint64_t dense_bytes = 0;  // original fp32 footprint
  std::uint64_t compressed_bytes = 0;
  double ratio() const {
    return compressed_bytes > 0
               ? static_cast<double>(dense_bytes) / compressed_bytes
               : 0.0;
  }
};

/// Zeroes the smallest-magnitude fraction `sparsity` of each layer's
/// weights (per-layer thresholding, as in [30]). In-place.
void prune(Mlp& model, double sparsity);

/// K-means weight sharing: clusters each layer's nonzero weights into
/// 2^bits centroids (linear-initialized, `iters` Lloyd steps) and snaps
/// weights to centroids. In-place. bits in [1, 16].
void quantize(Mlp& model, int bits, int iters = 15);

/// Storage footprint of the model as-is, assuming sparse + codebook
/// encoding with `codebook_bits` per surviving weight (pass 0 for
/// fp32-sparse, i.e. pruned but unquantized; dense fp32 when nothing is
/// pruned and bits == 0).
std::uint64_t compressed_bytes(const Mlp& model, int codebook_bits);

/// Convenience: prune + (optional) retrain-free quantize + report.
CompressionReport deep_compress(Mlp& model, double sparsity, int bits);

/// Overall model sparsity across layers.
double model_sparsity(const Mlp& model);

}  // namespace vdap::libvdap
