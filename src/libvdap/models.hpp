// Common model library (§IV-E): "contains many common algorithms and models
// that are used frequently in vehicle-based applications, such as Natural
// Language Processing, Video Processing, Audio Processing and so on. The
// most powerful models ... are too large for the OpenVDAP to run, so the
// models that are in the Common model library are compressed based on the
// powerful models."
//
// Each catalog entry describes the full cloud model and its edge-compressed
// variant (footprint and compute derived from a Deep-Compression profile),
// plus the task class it runs as on the VCU.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/task_class.hpp"

namespace vdap::libvdap {

enum class ModelDomain { kNlp, kVideo, kAudio, kDriving };

constexpr std::string_view to_string(ModelDomain d) {
  switch (d) {
    case ModelDomain::kNlp: return "nlp";
    case ModelDomain::kVideo: return "video";
    case ModelDomain::kAudio: return "audio";
    case ModelDomain::kDriving: return "driving";
  }
  return "unknown";
}

struct ModelSpec {
  std::string name;
  ModelDomain domain = ModelDomain::kVideo;
  hw::TaskClass task_class = hw::TaskClass::kCnnInference;
  double gflop_per_inference = 0.0;
  std::uint64_t size_bytes = 0;
  double accuracy = 0.0;      // top-1 on the model's benchmark
  bool compressed = false;    // an edge variant produced by Deep Compression
  std::string base_model;     // for compressed variants: the cloud model
};

class ModelRegistry {
 public:
  /// Registry preloaded with the cBEAM catalog (cloud + edge variants of
  /// representative NLP / video / audio / driving models).
  static ModelRegistry with_default_catalog();

  void add(ModelSpec spec);
  std::optional<ModelSpec> find(const std::string& name) const;
  std::vector<ModelSpec> list() const { return models_; }
  std::vector<ModelSpec> by_domain(ModelDomain domain) const;
  /// Models small enough for an edge budget (bytes).
  std::vector<ModelSpec> edge_deployable(std::uint64_t budget_bytes) const;
  std::size_t size() const { return models_.size(); }

 private:
  std::vector<ModelSpec> models_;
};

}  // namespace vdap::libvdap
