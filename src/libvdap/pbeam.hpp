// pBEAM — the Personalized Driving Behavior Model, "the core component of
// libvdap" (§IV-E, Fig. 9):
//
//   cloud:   train cBEAM on a large fleet dataset  →  Deep-Compress
//   vehicle: transfer-learn the compressed cBEAM on the driver's own DDI
//            data  →  pBEAM, served to third parties (e.g. an insurance
//            company asking "is this driver aggressive?").
//
// Driving-behavior features are extracted from windows of DDI OBD records;
// the fleet dataset is generated from a per-style generative model
// (substitute for the paper's real-field data — DESIGN.md §2).
#pragma once

#include <vector>

#include "ddi/record.hpp"
#include "libvdap/compress.hpp"

namespace vdap::libvdap {

/// Behaviour classes cBEAM/pBEAM predict.
enum class DrivingStyle { kCautious = 0, kNormal = 1, kAggressive = 2 };
constexpr int kNumStyles = 3;

constexpr std::string_view to_string(DrivingStyle s) {
  switch (s) {
    case DrivingStyle::kCautious: return "cautious";
    case DrivingStyle::kNormal: return "normal";
    case DrivingStyle::kAggressive: return "aggressive";
  }
  return "unknown";
}

/// Window features computed from consecutive OBD samples.
struct DrivingFeatures {
  double mean_speed_mps = 0.0;
  double speed_stddev = 0.0;
  double accel_stddev = 0.0;
  double harsh_brake_rate = 0.0;   // events (< -2.5 m/s²) per minute
  double harsh_accel_rate = 0.0;   // events (> +2.0 m/s²) per minute
  double mean_abs_jerk = 0.0;      // m/s³
  double overspeed_frac = 0.0;     // fraction of samples above 29 m/s

  std::vector<double> to_vector() const;
  static constexpr std::size_t kDim = 7;
};

/// Extracts features from a time-ordered window of "vehicle/obd" records
/// (payload fields speed_mps / accel_mps2 as written by ObdCollector).
DrivingFeatures features_from_records(const std::vector<ddi::DataRecord>& w);

/// Generative per-style feature model used to synthesize fleet data.
DrivingFeatures sample_style_features(DrivingStyle style,
                                      util::RngStream& rng);

/// Synthetic fleet dataset: `per_style` labeled feature vectors per style.
Dataset synth_fleet_dataset(int per_style, util::RngStream& rng);

/// A driver-specific dataset: the driver's own style with an idiosyncratic
/// bias vector (what personalization must adapt to).
Dataset synth_driver_dataset(DrivingStyle style, int samples,
                             double personal_bias, util::RngStream& rng);

struct PBeamConfig {
  std::vector<std::size_t> hidden = {32, 16};
  TrainOptions cloud_train{60, 0.05, 0.98, true, false, false, 0.0};
  double compress_sparsity = 0.6;
  int compress_bits = 5;
  TrainOptions personalize_train{40, 0.03, 0.98, true, true, true, 0.01};
};

class PBeam {
 public:
  /// Cloud side: trains cBEAM on the fleet dataset and Deep-Compresses it.
  static PBeam build(const Dataset& fleet, const PBeamConfig& config,
                     util::RngStream& rng);

  /// Vehicle side: transfer-learns the final layer on the driver's data
  /// (hidden layers frozen; pruned structure preserved).
  void personalize(const Dataset& driver_data, util::RngStream& rng);

  DrivingStyle classify(const DrivingFeatures& f) const;
  /// P(aggressive) — what the paper's insurance-company example consumes.
  double aggressiveness(const DrivingFeatures& f) const;

  double accuracy(const Dataset& data) const { return model_.accuracy(data); }
  const CompressionReport& compression() const { return compression_; }
  const Mlp& model() const { return model_; }
  bool personalized() const { return personalized_; }

 private:
  PBeam(Mlp model, CompressionReport rep, PBeamConfig config)
      : model_(std::move(model)),
        compression_(rep),
        config_(std::move(config)) {}

  Mlp model_;
  CompressionReport compression_;
  PBeamConfig config_;
  bool personalized_ = false;
};

}  // namespace vdap::libvdap
