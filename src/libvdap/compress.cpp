#include "libvdap/compress.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace vdap::libvdap {

void prune(Mlp& model, double sparsity) {
  if (sparsity < 0.0 || sparsity >= 1.0) {
    throw std::invalid_argument("sparsity must be in [0, 1)");
  }
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    Matrix& w = model.weights(l);
    if (w.size() == 0) continue;
    std::vector<double> mags;
    mags.reserve(w.size());
    for (double v : w.data()) mags.push_back(std::abs(v));
    std::size_t k = static_cast<std::size_t>(sparsity * mags.size());
    if (k == 0) continue;
    std::nth_element(mags.begin(), mags.begin() + (k - 1), mags.end());
    double threshold = mags[k - 1];
    std::size_t zeroed = 0;
    for (double& v : w.data()) {
      // <= threshold, but stop once the per-layer quota is met so ties do
      // not over-prune.
      if (zeroed < k && std::abs(v) <= threshold && v != 0.0) {
        v = 0.0;
        ++zeroed;
      }
    }
  }
}

void quantize(Mlp& model, int bits, int iters) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("codebook bits must be in [1, 16]");
  }
  std::size_t k = std::size_t{1} << bits;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    Matrix& w = model.weights(l);
    std::vector<double*> nz;
    for (double& v : w.data()) {
      if (v != 0.0) nz.push_back(&v);
    }
    if (nz.empty()) continue;
    double lo = 1e300, hi = -1e300;
    for (double* p : nz) {
      lo = std::min(lo, *p);
      hi = std::max(hi, *p);
    }
    if (lo == hi) continue;  // single value; already "quantized"
    std::size_t clusters = std::min(k, nz.size());
    // Linear initialization across [lo, hi] (the scheme [30] found best).
    std::vector<double> centroid(clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
      centroid[c] = lo + (hi - lo) * (static_cast<double>(c) + 0.5) /
                             static_cast<double>(clusters);
    }
    std::vector<std::size_t> assign(nz.size(), 0);
    for (int it = 0; it < iters; ++it) {
      // Assign (centroids are sorted: binary search the midpoints).
      for (std::size_t i = 0; i < nz.size(); ++i) {
        double v = *nz[i];
        std::size_t best = 0;
        double best_d = 1e300;
        // Centroid count is small (<= 2^bits); linear scan is fine.
        for (std::size_t c = 0; c < clusters; ++c) {
          double d = std::abs(v - centroid[c]);
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        assign[i] = best;
      }
      // Update.
      std::vector<double> sum(clusters, 0.0);
      std::vector<std::size_t> count(clusters, 0);
      for (std::size_t i = 0; i < nz.size(); ++i) {
        sum[assign[i]] += *nz[i];
        ++count[assign[i]];
      }
      for (std::size_t c = 0; c < clusters; ++c) {
        if (count[c] > 0) centroid[c] = sum[c] / count[c];
      }
    }
    for (std::size_t i = 0; i < nz.size(); ++i) *nz[i] = centroid[assign[i]];
  }
}

std::uint64_t compressed_bytes(const Mlp& model, int codebook_bits) {
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    const Matrix& w = model.weights(l);
    std::uint64_t nnz = w.nonzeros();
    bool pruned = nnz < w.size();
    if (!pruned && codebook_bits == 0) {
      total += w.size() * 4;  // dense fp32
    } else {
      // Sparse storage: 4-bit relative row indices per nonzero ([30]'s
      // scheme, ~0.5 B) + column pointers, approximated as 1 B per nonzero.
      std::uint64_t index_bytes = nnz;
      std::uint64_t value_bits =
          codebook_bits > 0 ? static_cast<std::uint64_t>(codebook_bits)
                            : 32;  // fp32 values if not quantized
      std::uint64_t value_bytes = (nnz * value_bits + 7) / 8;
      // quantize() never creates more centroids than nonzero weights.
      std::uint64_t codebook =
          codebook_bits > 0
              ? std::min(std::uint64_t{1} << codebook_bits, nnz) * 4
              : 0;
      total += index_bytes + value_bytes + codebook;
    }
    total += model.weights(l).rows() * 4;  // biases, fp32
  }
  return total;
}

double model_sparsity(const Mlp& model) {
  std::size_t total = 0, nz = 0;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    total += model.weights(l).size();
    nz += model.weights(l).nonzeros();
  }
  return total == 0 ? 0.0 : 1.0 - static_cast<double>(nz) / total;
}

CompressionReport deep_compress(Mlp& model, double sparsity, int bits) {
  CompressionReport rep;
  rep.dense_bytes = model.dense_bytes();
  if (sparsity > 0.0) prune(model, sparsity);
  if (bits > 0) quantize(model, bits);
  rep.sparsity = model_sparsity(model);
  rep.codebook_bits = bits;
  rep.compressed_bytes = compressed_bytes(model, bits);
  return rep;
}

}  // namespace vdap::libvdap
