#include "libvdap/nn.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace vdap::libvdap {

Mlp::Mlp(const std::vector<std::size_t>& dims, util::RngStream& rng) {
  if (dims.size() < 2) throw std::invalid_argument("mlp needs >= 2 dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    double stddev = std::sqrt(2.0 / static_cast<double>(dims[i]));
    weights_.push_back(Matrix::randn(dims[i + 1], dims[i], rng, stddev));
    biases_.emplace_back(dims[i + 1], 0.0);
  }
}

std::size_t Mlp::input_dim() const {
  return weights_.empty() ? 0 : weights_.front().cols();
}

std::size_t Mlp::output_dim() const {
  return weights_.empty() ? 0 : weights_.back().rows();
}

Mlp::ForwardTrace Mlp::forward(const std::vector<double>& x) const {
  ForwardTrace t;
  std::vector<double> h = x;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    h = weights_[l].apply(h);
    for (std::size_t i = 0; i < h.size(); ++i) h[i] += biases_[l][i];
    if (l + 1 < weights_.size()) {
      relu(h);
      t.activations.push_back(h);
    }
  }
  softmax(h);
  t.probs = std::move(h);
  return t;
}

std::vector<double> Mlp::predict_proba(const std::vector<double>& x) const {
  if (x.size() != input_dim()) {
    throw std::invalid_argument("input dimension mismatch");
  }
  return forward(x).probs;
}

int Mlp::predict(const std::vector<double>& x) const {
  return static_cast<int>(argmax(predict_proba(x)));
}

void Mlp::backward(const ForwardTrace& t, const std::vector<double>& x,
                   int label, double lr, const TrainOptions& options) {
  // Softmax + CE gradient at the output: p - onehot(y).
  std::vector<double> delta = t.probs;
  delta[static_cast<std::size_t>(label)] -= 1.0;

  for (std::size_t l = weights_.size(); l-- > 0;) {
    const std::vector<double>& input =
        l == 0 ? x : t.activations[l - 1];
    bool update = !(options.freeze_hidden && l + 1 < weights_.size());
    std::vector<double> next_delta;
    if (l > 0) {
      next_delta = weights_[l].apply_transposed(delta);
      std::vector<double> mask = relu_mask(t.activations[l - 1]);
      for (std::size_t i = 0; i < next_delta.size(); ++i) {
        next_delta[i] *= mask[i];
      }
    }
    if (update) {
      if (options.weight_decay > 0.0) {
        Matrix& w = weights_[l];
        double k = 1.0 - lr * options.weight_decay;
        for (double& v : w.data()) v *= k;
      }
      if (options.preserve_zeros) {
        // Masked update: pruned weights stay pruned.
        Matrix& w = weights_[l];
        for (std::size_t r = 0; r < w.rows(); ++r) {
          for (std::size_t c = 0; c < w.cols(); ++c) {
            double& wv = w.at(r, c);
            if (wv != 0.0) wv -= lr * delta[r] * input[c];
          }
        }
      } else {
        weights_[l].rank_one_update(delta, input, lr);
      }
      for (std::size_t i = 0; i < delta.size(); ++i) {
        biases_[l][i] -= lr * delta[i];
      }
    }
    delta = std::move(next_delta);
  }
}

double Mlp::train(const Dataset& data, const TrainOptions& options,
                  util::RngStream& rng) {
  if (data.empty()) throw std::invalid_argument("empty dataset");
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  double lr = options.lr;
  double last_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.shuffle) {
      std::shuffle(order.begin(), order.end(), rng.engine());
    }
    double loss = 0.0;
    for (std::size_t idx : order) {
      const LabeledSample& s = data[idx];
      ForwardTrace t = forward(s.features);
      loss += -std::log(
          std::max(1e-12, t.probs[static_cast<std::size_t>(s.label)]));
      backward(t, s.features, s.label, lr, options);
    }
    last_loss = loss / static_cast<double>(data.size());
    lr *= options.lr_decay;
  }
  return last_loss;
}

double Mlp::accuracy(const Dataset& data) const {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (const LabeledSample& s : data) {
    correct += predict(s.features) == s.label ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double Mlp::mean_loss(const Dataset& data) const {
  if (data.empty()) return 0.0;
  double loss = 0.0;
  for (const LabeledSample& s : data) {
    auto probs = predict_proba(s.features);
    loss += -std::log(
        std::max(1e-12, probs[static_cast<std::size_t>(s.label)]));
  }
  return loss / static_cast<double>(data.size());
}

namespace {
constexpr std::uint32_t kModelMagic = 0x56444150;  // "VDAP"

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T get(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  if (pos + sizeof(T) > in.size()) {
    throw std::runtime_error("model blob truncated");
  }
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}
}  // namespace

std::vector<std::uint8_t> Mlp::serialize() const {
  std::vector<std::uint8_t> out;
  put<std::uint32_t>(out, kModelMagic);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(weights_.size()));
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const Matrix& w = weights_[l];
    put<std::uint32_t>(out, static_cast<std::uint32_t>(w.rows()));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(w.cols()));
    for (double v : w.data()) put<double>(out, v);
    for (double b : biases_[l]) put<double>(out, b);
  }
  return out;
}

Mlp Mlp::deserialize(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  if (get<std::uint32_t>(bytes, pos) != kModelMagic) {
    throw std::runtime_error("not a vdap model blob");
  }
  std::uint32_t layers = get<std::uint32_t>(bytes, pos);
  if (layers == 0 || layers > 64) {
    throw std::runtime_error("implausible layer count");
  }
  Mlp model;
  for (std::uint32_t l = 0; l < layers; ++l) {
    std::uint32_t rows = get<std::uint32_t>(bytes, pos);
    std::uint32_t cols = get<std::uint32_t>(bytes, pos);
    if (rows == 0 || cols == 0 || rows > 1'000'000 || cols > 1'000'000) {
      throw std::runtime_error("implausible layer shape");
    }
    Matrix w(rows, cols);
    for (double& v : w.data()) v = get<double>(bytes, pos);
    std::vector<double> bias(rows);
    for (double& b : bias) b = get<double>(bytes, pos);
    model.weights_.push_back(std::move(w));
    model.biases_.push_back(std::move(bias));
  }
  if (pos != bytes.size()) throw std::runtime_error("trailing bytes");
  // Dimensional consistency between layers.
  for (std::size_t l = 1; l < model.weights_.size(); ++l) {
    if (model.weights_[l].cols() != model.weights_[l - 1].rows()) {
      throw std::runtime_error("layer dimension mismatch");
    }
  }
  return model;
}

std::size_t Mlp::num_params() const {
  std::size_t n = 0;
  for (const Matrix& w : weights_) n += w.size();
  for (const auto& b : biases_) n += b.size();
  return n;
}

}  // namespace vdap::libvdap
