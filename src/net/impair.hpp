// Network impairment controller: the bridge between the sim-layer fault
// injector (sim/faults.hpp, which speaks in strings so it can stay free of
// net dependencies) and the Topology.
//
// Two mechanisms:
//  - Availability: link_down/link_up are REFCOUNTED per tier. Overlapping
//    down-windows (a flap plan plus a one-shot outage) compose sanely: the
//    tier comes back only when every window has ended, and it restores to
//    whatever availability it had before the first window (a tier the
//    coverage model had already marked unreachable stays unreachable).
//  - Degradation: degrade/cellular_collapse hand out tokens; restore(token)
//    undoes exactly that impairment. Only the most recent degradation per
//    tier is in effect (they don't stack), matching how fault windows are
//    typically authored; cellular collapse routes through the Topology's
//    dedicated impairment channel so it composes with the drive scenario.
//
// Sharded execution (DESIGN.md §6f): one controller per shard-local
// Topology copy. Identical fault plans replayed against identical copies
// (same seed, same jitter streams) keep every shard's view of the shared
// network byte-for-byte in step without any cross-shard coordination.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/topology.hpp"

namespace vdap::net {

/// Parses the names produced by to_string(Tier) ("rsu-edge", "cloud", ...).
std::optional<Tier> tier_from_string(const std::string& name);

class ImpairmentController {
 public:
  explicit ImpairmentController(Topology& topo);

  /// Refcounted availability window. Returns true if the tier just went
  /// down (first open window).
  bool link_down(Tier t);
  /// Closes one window; restores prior availability when the last window
  /// closes. Returns true if the tier just came back up.
  bool link_up(Tier t);
  bool is_down(Tier t) const;

  /// Degrades one tier's paths. Returns a token for restore().
  std::uint64_t degrade(Tier t, double bandwidth_factor, double extra_loss);

  /// Collapses the cellular channel (Fig. 2 regimes: e.g. 0.2 for a
  /// congested cell, 0.05 for a near-outage). Returns a token.
  std::uint64_t cellular_collapse(double bandwidth_factor, double extra_loss);

  /// Undoes the impairment behind `token` (no-op for unknown/stale tokens,
  /// so fault windows can end in any order).
  void restore(std::uint64_t token);

  /// Clears every impairment this controller applied: reopens all
  /// availability windows and resets all degradations.
  void restore_all();

  Topology& topology() { return topo_; }

 private:
  struct Degradation {
    bool cellular = false;
    Tier tier = Tier::kCloud;
  };

  Topology& topo_;
  // Tier -> (open windows, availability before the first window).
  std::map<Tier, std::pair<int, bool>> down_;
  std::map<std::uint64_t, Degradation> degradations_;
  std::uint64_t next_token_ = 1;
};

}  // namespace vdap::net
