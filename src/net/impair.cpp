#include "net/impair.hpp"

namespace vdap::net {

std::optional<Tier> tier_from_string(const std::string& name) {
  for (Tier t : kAllTiers) {
    if (name == to_string(t)) return t;
  }
  return std::nullopt;
}

ImpairmentController::ImpairmentController(Topology& topo) : topo_(topo) {}

bool ImpairmentController::link_down(Tier t) {
  auto [it, inserted] = down_.try_emplace(t, 0, topo_.available(t));
  ++it->second.first;
  if (inserted || it->second.first == 1) {
    topo_.set_available(t, false);
    return true;
  }
  return false;
}

bool ImpairmentController::link_up(Tier t) {
  auto it = down_.find(t);
  if (it == down_.end()) return false;
  if (--it->second.first > 0) return false;
  bool prior = it->second.second;
  down_.erase(it);
  topo_.set_available(t, prior);
  return prior;
}

bool ImpairmentController::is_down(Tier t) const {
  auto it = down_.find(t);
  return it != down_.end() && it->second.first > 0;
}

std::uint64_t ImpairmentController::degrade(Tier t, double bandwidth_factor,
                                            double extra_loss) {
  topo_.apply_tier_condition(t, bandwidth_factor, extra_loss);
  std::uint64_t token = next_token_++;
  degradations_[token] = Degradation{/*cellular=*/false, t};
  return token;
}

std::uint64_t ImpairmentController::cellular_collapse(double bandwidth_factor,
                                                      double extra_loss) {
  topo_.apply_cellular_impairment(bandwidth_factor, extra_loss);
  std::uint64_t token = next_token_++;
  degradations_[token] = Degradation{/*cellular=*/true};
  return token;
}

void ImpairmentController::restore(std::uint64_t token) {
  auto it = degradations_.find(token);
  if (it == degradations_.end()) return;
  Degradation d = it->second;
  degradations_.erase(it);
  if (d.cellular) {
    // Restore only if no other cellular impairment window remains open.
    for (const auto& [tok, deg] : degradations_) {
      if (deg.cellular) return;
    }
    topo_.apply_cellular_impairment(1.0, 0.0);
  } else {
    for (const auto& [tok, deg] : degradations_) {
      if (!deg.cellular && deg.tier == d.tier) return;
    }
    topo_.apply_tier_condition(d.tier, 1.0, 0.0);
  }
}

void ImpairmentController::restore_all() {
  while (!down_.empty()) {
    auto it = down_.begin();
    it->second.first = 1;  // collapse remaining windows
    link_up(it->first);
  }
  degradations_.clear();
  topo_.apply_cellular_impairment(1.0, 0.0);
  for (Tier t : kAllTiers) {
    if (t == Tier::kOnBoard) continue;
    topo_.apply_tier_condition(t, 1.0, 0.0);
  }
}

}  // namespace vdap::net
