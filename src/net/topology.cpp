#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdap::net {

sim::SimDuration PathSpec::estimate(std::uint64_t bytes) const {
  sim::SimDuration total = 0;
  for (const LinkSpec& hop : hops) total += hop.estimate(bytes);
  return total;
}

sim::SimDuration PathSpec::estimate_reliable(std::uint64_t bytes) const {
  sim::SimDuration total = 0;
  for (const LinkSpec& hop : hops) total += hop.estimate_reliable(bytes);
  return total;
}

double PathSpec::bottleneck_mbps() const {
  double bw = std::numeric_limits<double>::infinity();
  for (const LinkSpec& hop : hops) bw = std::min(bw, hop.bandwidth_mbps);
  return hops.empty() ? 0.0 : bw;
}

double PathSpec::delivery_probability() const {
  double p = 1.0;
  for (const LinkSpec& hop : hops) p *= (1.0 - hop.loss_rate);
  return p;
}

LinkSpec PathSpec::collapse(const std::string& name) const {
  LinkSpec out;
  out.name = name;
  out.kind = hops.empty() ? LinkKind::kWired : hops.front().kind;
  out.bandwidth_mbps = bottleneck_mbps();
  out.latency = 0;
  for (const LinkSpec& hop : hops) out.latency += hop.latency;
  out.loss_rate = 1.0 - delivery_probability();
  return out;
}

Topology::Topology(sim::Simulator& sim) : sim_(sim) {
  // On-board: no hops; always available.
  state(Tier::kOnBoard).available = true;

  state(Tier::kNeighbor).up = PathSpec{{links::dsrc()}};
  state(Tier::kNeighbor).down = PathSpec{{links::dsrc()}};
  state(Tier::kNeighbor).available = false;  // needs a willing peer

  state(Tier::kRsuEdge).up = PathSpec{{links::dsrc()}};
  state(Tier::kRsuEdge).down = PathSpec{{links::dsrc()}};

  base_bs_up_ = PathSpec{{links::lte_uplink()}};
  base_bs_down_ = PathSpec{{links::lte_downlink()}};
  base_cloud_up_ = PathSpec{{links::lte_uplink(), links::metro_fiber()}};
  base_cloud_down_ = PathSpec{{links::metro_fiber(), links::lte_downlink()}};
  state(Tier::kBaseStationEdge).up = base_bs_up_;
  state(Tier::kBaseStationEdge).down = base_bs_down_;
  state(Tier::kCloud).up = base_cloud_up_;
  state(Tier::kCloud).down = base_cloud_down_;

  for (Tier t : kAllTiers) rebuild_links(t);
}

bool Topology::available(Tier t) const { return state(t).available; }

void Topology::set_available(Tier t, bool available) {
  if (t == Tier::kOnBoard && !available) {
    throw std::invalid_argument("the on-board tier cannot be disabled");
  }
  state(t).available = available;
}

void Topology::apply_cellular_condition(double bandwidth_factor,
                                        double extra_loss) {
  cell_factor_ = std::clamp(bandwidth_factor, 0.01, 1.0);
  cell_extra_loss_ = std::clamp(extra_loss, 0.0, 0.99);
  auto degrade = [&](PathSpec base) {
    for (LinkSpec& hop : base.hops) {
      if (hop.kind == LinkKind::kLte || hop.kind == LinkKind::k5g) {
        hop.bandwidth_mbps *= cell_factor_;
        hop.loss_rate =
            1.0 - (1.0 - hop.loss_rate) * (1.0 - cell_extra_loss_);
      }
    }
    return base;
  };
  state(Tier::kBaseStationEdge).up = degrade(base_bs_up_);
  state(Tier::kBaseStationEdge).down = degrade(base_bs_down_);
  state(Tier::kCloud).up = degrade(base_cloud_up_);
  state(Tier::kCloud).down = degrade(base_cloud_down_);
  rebuild_links(Tier::kBaseStationEdge);
  rebuild_links(Tier::kCloud);
}

void Topology::rebuild_links(Tier t) {
  TierState& s = state(t);
  if (s.up.empty()) {
    s.up_link.reset();
    s.down_link.reset();
    return;
  }
  std::string base = std::string(to_string(t));
  s.up_link = std::make_unique<Link>(sim_, s.up.collapse(base + ".up"));
  s.down_link = std::make_unique<Link>(sim_, s.down.collapse(base + ".down"));
}

const PathSpec& Topology::uplink(Tier t) const { return state(t).up; }
const PathSpec& Topology::downlink(Tier t) const { return state(t).down; }

std::optional<sim::SimDuration> Topology::estimate_round_trip(
    Tier t, std::uint64_t up_bytes, std::uint64_t down_bytes) const {
  const TierState& s = state(t);
  if (!s.available) return std::nullopt;
  if (t == Tier::kOnBoard) return 0;
  return s.up.estimate_reliable(up_bytes) +
         s.down.estimate_reliable(down_bytes);
}

void Topology::transfer(Link* link, bool available, std::uint64_t bytes,
                        int attempt, sim::SimTime submitted,
                        std::function<void(const TransferOutcome&)> done) {
  constexpr int kMaxAttempts = 5;
  if (link == nullptr || !available) {
    TransferOutcome out;
    out.delivered = false;
    out.attempts = 0;
    out.submitted = out.finished = sim_.now();
    if (done) done(out);
    return;
  }
  link->send(bytes, [this, link, available, bytes, attempt, submitted,
                     done](const TransferReport& rep) {
    if (rep.delivered || attempt + 1 >= kMaxAttempts) {
      TransferOutcome out;
      out.delivered = rep.delivered;
      out.attempts = attempt + 1;
      out.submitted = submitted;
      out.finished = sim_.now();
      if (done) done(out);
      return;
    }
    transfer(link, available, bytes, attempt + 1, submitted, done);
  });
}

void Topology::transfer_up(Tier t, std::uint64_t bytes,
                           std::function<void(const TransferOutcome&)> done) {
  if (t == Tier::kOnBoard) {
    TransferOutcome out;
    out.delivered = true;
    out.attempts = 0;
    out.submitted = out.finished = sim_.now();
    if (done) done(out);
    return;
  }
  TierState& s = state(t);
  transfer(s.up_link.get(), s.available, bytes, 0, sim_.now(),
           std::move(done));
}

void Topology::transfer_down(Tier t, std::uint64_t bytes,
                             std::function<void(const TransferOutcome&)> done) {
  if (t == Tier::kOnBoard) {
    TransferOutcome out;
    out.delivered = true;
    out.attempts = 0;
    out.submitted = out.finished = sim_.now();
    if (done) done(out);
    return;
  }
  TierState& s = state(t);
  transfer(s.down_link.get(), s.available, bytes, 0, sim_.now(),
           std::move(done));
}

}  // namespace vdap::net
