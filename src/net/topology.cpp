#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace vdap::net {

sim::SimDuration PathSpec::estimate(std::uint64_t bytes) const {
  sim::SimDuration total = 0;
  for (const LinkSpec& hop : hops) total += hop.estimate(bytes);
  return total;
}

sim::SimDuration PathSpec::estimate_reliable(std::uint64_t bytes) const {
  sim::SimDuration total = 0;
  for (const LinkSpec& hop : hops) total += hop.estimate_reliable(bytes);
  return total;
}

double PathSpec::bottleneck_mbps() const {
  double bw = std::numeric_limits<double>::infinity();
  for (const LinkSpec& hop : hops) bw = std::min(bw, hop.bandwidth_mbps);
  return hops.empty() ? 0.0 : bw;
}

double PathSpec::delivery_probability() const {
  double p = 1.0;
  for (const LinkSpec& hop : hops) p *= (1.0 - hop.loss_rate);
  return p;
}

LinkSpec PathSpec::collapse(const std::string& name) const {
  LinkSpec out;
  out.name = name;
  out.kind = hops.empty() ? LinkKind::kWired : hops.front().kind;
  out.bandwidth_mbps = bottleneck_mbps();
  out.latency = 0;
  for (const LinkSpec& hop : hops) out.latency += hop.latency;
  out.loss_rate = 1.0 - delivery_probability();
  return out;
}

namespace {
// Compounds two independent loss probabilities.
double combine_loss(double a, double b) {
  return 1.0 - (1.0 - a) * (1.0 - b);
}
}  // namespace

Topology::Topology(sim::Simulator& sim) : sim_(sim) {
  // On-board: no hops; always available.
  state(Tier::kOnBoard).available = true;

  state(Tier::kNeighbor).base_up = PathSpec{{links::dsrc()}};
  state(Tier::kNeighbor).base_down = PathSpec{{links::dsrc()}};
  state(Tier::kNeighbor).available = false;  // needs a willing peer

  state(Tier::kRsuEdge).base_up = PathSpec{{links::dsrc()}};
  state(Tier::kRsuEdge).base_down = PathSpec{{links::dsrc()}};

  state(Tier::kBaseStationEdge).base_up = PathSpec{{links::lte_uplink()}};
  state(Tier::kBaseStationEdge).base_down = PathSpec{{links::lte_downlink()}};
  state(Tier::kCloud).base_up =
      PathSpec{{links::lte_uplink(), links::metro_fiber()}};
  state(Tier::kCloud).base_down =
      PathSpec{{links::metro_fiber(), links::lte_downlink()}};

  for (Tier t : kAllTiers) recompute(t);
}

bool Topology::available(Tier t) const { return state(t).available; }

void Topology::set_available(Tier t, bool available) {
  if (t == Tier::kOnBoard && !available) {
    throw std::invalid_argument("the on-board tier cannot be disabled");
  }
  TierState& s2 = state(t);
  if (s2.available != available && telemetry::on()) {
    json::Object args;
    args["tier"] = std::string(to_string(t));
    args["available"] = available;
    telemetry::tracer().instant(sim_.now(), "net",
                                available ? "tier-up" : "tier-down",
                                "net/topology", std::move(args));
    telemetry::count("net.tier_changes", {{"tier", to_string(t)}});
  }
  s2.available = available;
}

void Topology::apply_cellular_condition(double bandwidth_factor,
                                        double extra_loss) {
  cell_factor_ = std::clamp(bandwidth_factor, 0.01, 1.0);
  cell_extra_loss_ = std::clamp(extra_loss, 0.0, 0.99);
  recompute(Tier::kBaseStationEdge);
  recompute(Tier::kCloud);
  record_cellular_sample();
}

void Topology::apply_cellular_impairment(double bandwidth_factor,
                                         double extra_loss) {
  imp_factor_ = std::clamp(bandwidth_factor, 0.01, 1.0);
  imp_loss_ = std::clamp(extra_loss, 0.0, 0.99);
  recompute(Tier::kBaseStationEdge);
  recompute(Tier::kCloud);
  record_cellular_sample();
}

void Topology::record_cellular_sample() {
  if (!telemetry::on()) return;
  telemetry::tracer().counter(sim_.now(), "net/cellular",
                              "cellular.bandwidth_factor",
                              cellular_bandwidth_factor());
  telemetry::gauge("net.cellular_bandwidth_factor",
                   cellular_bandwidth_factor());
}

void Topology::apply_tier_condition(Tier t, double bandwidth_factor,
                                    double extra_loss) {
  if (t == Tier::kOnBoard) {
    throw std::invalid_argument("the on-board tier has no links to degrade");
  }
  TierState& s = state(t);
  s.cond_factor = std::clamp(bandwidth_factor, 0.01, 1.0);
  s.cond_loss = std::clamp(extra_loss, 0.0, 0.99);
  recompute(t);
}

void Topology::recompute(Tier t) {
  TierState& s = state(t);
  if (s.base_up.empty()) return;  // kOnBoard
  double cell_f = cell_factor_ * imp_factor_;
  double cell_l = combine_loss(cell_extra_loss_, imp_loss_);
  auto degrade = [&](const PathSpec& base) {
    PathSpec out = base;
    for (LinkSpec& hop : out.hops) {
      double f = s.cond_factor;
      double l = s.cond_loss;
      if (hop.kind == LinkKind::kLte || hop.kind == LinkKind::k5g) {
        f *= cell_f;
        l = combine_loss(l, cell_l);
      }
      hop.bandwidth_mbps *= f;
      hop.loss_rate = combine_loss(hop.loss_rate, l);
    }
    return out;
  };
  s.up = degrade(s.base_up);
  s.down = degrade(s.base_down);
  std::string base = std::string(to_string(t));
  LinkSpec up_spec = s.up.collapse(base + ".up");
  LinkSpec down_spec = s.down.collapse(base + ".down");
  if (s.up_link == nullptr) {
    s.up_link = std::make_unique<Link>(sim_, std::move(up_spec));
    s.down_link = std::make_unique<Link>(sim_, std::move(down_spec));
  } else {
    s.up_link->set_spec(std::move(up_spec));
    s.down_link->set_spec(std::move(down_spec));
  }
}

const PathSpec& Topology::uplink(Tier t) const { return state(t).up; }
const PathSpec& Topology::downlink(Tier t) const { return state(t).down; }

std::optional<sim::SimDuration> Topology::estimate_round_trip(
    Tier t, std::uint64_t up_bytes, std::uint64_t down_bytes) const {
  const TierState& s = state(t);
  if (!s.available) return std::nullopt;
  if (t == Tier::kOnBoard) return 0;
  return s.up.estimate_reliable(up_bytes) +
         s.down.estimate_reliable(down_bytes);
}

void Topology::transfer(Tier t, bool up, std::uint64_t bytes, int attempt,
                        sim::SimTime submitted,
                        std::function<void(const TransferOutcome&)> done) {
  constexpr int kMaxAttempts = 5;
  // Re-resolve the tier each attempt: availability and link specs may have
  // changed (fault injection, coverage) since the transfer was submitted.
  TierState& s = state(t);
  Link* link = up ? s.up_link.get() : s.down_link.get();
  if (link == nullptr || !s.available) {
    TransferOutcome out;
    out.delivered = false;
    out.attempts = attempt;
    out.submitted = submitted;
    out.finished = sim_.now();
    if (done) done(out);
    return;
  }
  link->send(bytes, [this, t, up, bytes, attempt, submitted,
                     done](const TransferReport& rep) {
    // A tier that dropped out while the message was in flight never
    // delivered anything the receiver could act on.
    bool delivered = rep.delivered && state(t).available;
    if (delivered || attempt + 1 >= kMaxAttempts) {
      TransferOutcome out;
      out.delivered = delivered;
      out.attempts = attempt + 1;
      out.submitted = submitted;
      out.finished = sim_.now();
      if (done) done(out);
      return;
    }
    transfer(t, up, bytes, attempt + 1, submitted, done);
  });
}

void Topology::transfer_up(Tier t, std::uint64_t bytes,
                           std::function<void(const TransferOutcome&)> done) {
  if (t == Tier::kOnBoard) {
    TransferOutcome out;
    out.delivered = true;
    out.attempts = 0;
    out.submitted = out.finished = sim_.now();
    if (done) done(out);
    return;
  }
  transfer(t, /*up=*/true, bytes, 0, sim_.now(), std::move(done));
}

void Topology::transfer_down(Tier t, std::uint64_t bytes,
                             std::function<void(const TransferOutcome&)> done) {
  if (t == Tier::kOnBoard) {
    TransferOutcome out;
    out.delivered = true;
    out.attempts = 0;
    out.submitted = out.finished = sim_.now();
    if (done) done(out);
    return;
  }
  transfer(t, /*up=*/false, bytes, 0, sim_.now(), std::move(done));
}

}  // namespace vdap::net
