#include "net/video.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>
#include <vector>

namespace vdap::net {

std::uint64_t VideoStreamSpec::p_frame_bytes() const {
  double avg = bitrate_mbps * 1e6 / 8.0 / fps;
  int n = frames_per_gop();
  // One key (= ratio * P) plus n-1 P frames must average to `avg`.
  double p = avg * n / (static_cast<double>(n) - 1.0 + keyframe_size_ratio);
  return static_cast<std::uint64_t>(p + 0.5);
}

std::uint64_t VideoStreamSpec::key_frame_bytes() const {
  return static_cast<std::uint64_t>(
      static_cast<double>(p_frame_bytes()) * keyframe_size_ratio + 0.5);
}

VideoStreamSpec VideoStreamSpec::hd720() {
  VideoStreamSpec s;
  s.name = "720P";
  s.width = 1280;
  s.height = 720;
  s.bitrate_mbps = 3.8;
  return s;
}

VideoStreamSpec VideoStreamSpec::hd1080() {
  VideoStreamSpec s;
  s.name = "1080P";
  s.width = 1920;
  s.height = 1080;
  s.bitrate_mbps = 5.8;
  return s;
}

UploadStats simulate_rtp_upload(const CellularChannel& channel,
                                const VideoStreamSpec& video,
                                double duration_s, std::uint64_t seed,
                                const RtpSenderParams& params) {
  if (duration_s <= 0) throw std::invalid_argument("duration must be > 0");
  util::RngStream air_rng(seed, "rtp.air");

  const int fps = video.fps;
  const double frame_interval = 1.0 / fps;
  const int frames_per_gop = video.frames_per_gop();
  const std::uint64_t total_frames =
      static_cast<std::uint64_t>(duration_s * fps);
  const std::uint64_t p_bytes = video.p_frame_bytes();
  const std::uint64_t key_bytes = video.key_frame_bytes();
  const std::uint64_t pkt = static_cast<std::uint64_t>(video.packet_bytes);

  const std::uint64_t buffer_cap_bytes = static_cast<std::uint64_t>(
      params.buffer_seconds * video.bitrate_mbps * 1e6 / 8.0);

  struct Packet {
    std::uint64_t frame;
    std::uint64_t bytes;
  };

  UploadStats stats;
  stats.frames_total = total_frames;
  std::vector<bool> frame_lost(total_frames, false);

  std::deque<Packet> queue;
  std::uint64_t queue_bytes = 0;
  double carry_budget = 0.0;  // unconsumed drain budget across steps

  const double dt = params.step_s;
  std::uint64_t next_frame = 0;
  // Packets of the in-flight frame are paced across its frame interval;
  // we approximate by enqueueing the whole frame at its timestamp (the
  // sender buffer then paces onto the channel).
  for (double t = 0.0; t < duration_s; t += dt) {
    // Enqueue frames due in [t, t+dt).
    while (next_frame < total_frames &&
           static_cast<double>(next_frame) * frame_interval < t + dt) {
      bool is_key = (next_frame % static_cast<std::uint64_t>(frames_per_gop)) == 0;
      std::uint64_t remaining = is_key ? key_bytes : p_bytes;
      while (remaining > 0) {
        std::uint64_t size = std::min(pkt, remaining);
        remaining -= size;
        ++stats.packets_sent;
        stats.bytes_offered += size;
        if (queue_bytes + size > buffer_cap_bytes) {
          // Sender buffer overflow: tail-drop (no retransmission on RTP/UDP).
          ++stats.packets_lost;
          frame_lost[next_frame] = true;
        } else {
          queue.push_back(Packet{next_frame, size});
          queue_bytes += size;
        }
      }
      ++next_frame;
    }

    // Drain at the channel's current achievable rate.
    double budget = carry_budget + channel.capacity_mbps(t) * 1e6 / 8.0 * dt;
    while (!queue.empty() &&
           budget >= static_cast<double>(queue.front().bytes)) {
      Packet p = queue.front();
      queue.pop_front();
      queue_bytes -= p.bytes;
      budget -= static_cast<double>(p.bytes);
      double loss_p = params.air_loss + channel.micro_loss();
      if (loss_p > 0.0 && air_rng.chance(loss_p)) {
        ++stats.packets_lost;
        frame_lost[p.frame] = true;
      } else {
        stats.bytes_delivered += p.bytes;
      }
    }
    // Cap the carried budget at one step's peak worth so a long outage
    // doesn't bank phantom capacity.
    carry_budget = std::min(budget, channel.params().peak_uplink_mbps * 1e6 /
                                        8.0 * dt);
  }

  // Whatever is still queued at the end of the five-minute session was
  // never delivered in time; count it lost (matches a live-stream receiver).
  for (const Packet& p : queue) {
    ++stats.packets_lost;
    frame_lost[p.frame] = true;
  }

  // Frame-level counting: a GOP whose key frame lost any packet loses all
  // of its frames (the paper's policy).
  stats.gops_total =
      (total_frames + frames_per_gop - 1) / frames_per_gop;
  for (std::uint64_t g = 0; g < stats.gops_total; ++g) {
    std::uint64_t key_frame = g * static_cast<std::uint64_t>(frames_per_gop);
    if (frame_lost[key_frame]) {
      ++stats.gops_lost;
      std::uint64_t gop_end = std::min(
          total_frames, key_frame + static_cast<std::uint64_t>(frames_per_gop));
      stats.frames_lost += gop_end - key_frame;
    }
  }
  return stats;
}

UploadStats run_fig2_cell(double speed_mph, const VideoStreamSpec& video,
                          std::uint64_t seed, double duration_s,
                          const LteMobilityParams& lte) {
  CellularChannel channel(lte, mph_to_mps(speed_mph), duration_s, seed);
  return simulate_rtp_upload(channel, video, duration_s, seed);
}

}  // namespace vdap::net
