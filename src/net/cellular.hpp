// Cellular (LTE) channel under vehicular mobility — the model behind the
// paper's Fig. 2 drive experiment.
//
// The paper attributes its measured loss to two mechanisms (§III-A):
//   1. "the higher speed may lead to the vehicle's stay time within the
//      coverage of its closest base station pretty short, making the
//      Internet connection ... highly unreliable" — short per-cell dwell
//      time, handover outages, and radio-link failures during base-station
//      change; and
//   2. "the higher video resolution ... requires higher network bandwidth
//      for successful transmission" — offered load vs achievable capacity.
//
// The model composes:
//   * cell geometry: towers every 2R along a straight road; capacity falls
//     from the cell center toward the boundary (d^beta profile);
//   * a Doppler/speed penalty on achievable capacity, 1/(1+(v/v0)^2);
//   * correlated log-normal shadow fading (AR(1) over fixed blocks) whose
//     σ grows with speed;
//   * short deep fades (Poisson arrivals, rate growing with speed);
//   * handover outages at each boundary crossing, whose duration grows
//     with speed, plus probabilistic radio-link failures that force a long
//     RRC re-establishment.
//
// Parameter values are tuned so the six Fig. 2 cells land near the paper's
// bars (see bench/bench_fig2 and EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace vdap::net {

struct LteMobilityParams {
  double peak_uplink_mbps = 16.0;   // best-case sustained uplink
  double cell_radius_m = 500.0;
  double edge_capacity_frac = 0.35; // capacity multiplier at the boundary
  double profile_exponent = 4.0;    // capacity ~ 1-(1-frac)*d^beta
  double static_cell_pos = 0.40;    // where a parked vehicle sits (d in [0,1])

  double doppler_v0_mps = 23.4;     // speed penalty 1/(1+(v/v0)^k)
  double doppler_exponent = 6.0;    // k: gentle at 35 MPH, harsh at 70 MPH

  // Residual per-packet corruption that grows with speed (Doppler spread,
  // missed HARQ deadlines). Thinly spread, so it drives the key-frame
  // amplification between packet and frame loss at moderate speed.
  double micro_loss_per_mps = 0.0003;

  double fade_sigma0 = 0.28;        // lognormal shadowing sigma at standstill
  double fade_sigma_per_mps = 0.016;
  double fade_block_s = 0.10;       // fading update granularity
  double fade_corr = 0.90;          // AR(1) correlation across blocks

  double deep_fade_rate0_hz = 0.04; // deep fades per second at standstill
  double deep_fade_rate_per_mps = 0.002;
  double deep_fade_duration_s = 0.35;

  double handover_base_s = 0.25;    // outage at every boundary crossing
  double handover_speed_s = 2.0;    // + this * (v / 30 m/s)^2
  double rlf_prob_per_mps = 0.006;  // P(radio-link failure) per crossing
  double rlf_extra_s = 4.0;         // re-establishment time after an RLF
};

constexpr double mph_to_mps(double mph) { return mph * 0.44704; }

/// Precomputed capacity trace for one drive (or parked session) of
/// `duration_s` at constant `speed_mps`. Deterministic in (params, speed,
/// duration, seed).
class CellularChannel {
 public:
  CellularChannel(const LteMobilityParams& params, double speed_mps,
                  double duration_s, std::uint64_t seed);

  /// Achievable uplink capacity at time t (Mbps); 0 during outages.
  double capacity_mbps(double t_s) const;

  /// True while a handover/RLF outage is in progress.
  bool in_outage(double t_s) const;

  double block_s() const { return params_.fade_block_s; }
  double duration_s() const { return duration_s_; }
  double speed_mps() const { return speed_mps_; }
  const LteMobilityParams& params() const { return params_; }

  /// Number of handovers experienced during the trace.
  int handovers() const { return handovers_; }
  /// Number of handovers that escalated to radio-link failure.
  int rlf_count() const { return rlf_count_; }
  /// Fraction of blocks spent in outage.
  double outage_fraction() const;
  /// Time-averaged capacity over the trace (Mbps, zeros included).
  double mean_capacity_mbps() const;

  /// Speed-dependent residual per-packet loss applied to every delivered
  /// packet (on top of capacity-driven drops).
  double micro_loss() const {
    return params_.micro_loss_per_mps * speed_mps_;
  }

 private:
  std::size_t block_index(double t_s) const;

  LteMobilityParams params_;
  double speed_mps_;
  double duration_s_;
  std::vector<double> capacity_;  // per fade block; 0 == outage
  std::vector<bool> outage_;
  int handovers_ = 0;
  int rlf_count_ = 0;
};

}  // namespace vdap::net
