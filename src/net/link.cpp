#include "net/link.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace vdap::net {

sim::SimDuration LinkSpec::estimate(std::uint64_t bytes) const {
  double serialize_s = static_cast<double>(bytes) * 8.0 / (bandwidth_mbps * 1e6);
  return latency + sim::from_seconds(serialize_s);
}

sim::SimDuration LinkSpec::estimate_reliable(std::uint64_t bytes) const {
  // With iid message loss p, a stop-and-wait sender needs 1/(1-p) expected
  // attempts. Clamp so a pathological loss rate stays finite.
  double p = std::clamp(loss_rate, 0.0, 0.95);
  double attempts = 1.0 / (1.0 - p);
  return static_cast<sim::SimDuration>(
      static_cast<double>(estimate(bytes)) * attempts);
}

namespace links {

LinkSpec dsrc() {
  // 802.11p: ~27 Mbps effective at short range, one hop.
  return {"dsrc", LinkKind::kDsrc, 27.0, sim::msec(2), 0.01};
}

LinkSpec nr5g() {
  return {"5g", LinkKind::k5g, 200.0, sim::msec(8), 0.005};
}

LinkSpec lte_uplink() {
  // §III-A cites 100 Mbps as the *fastest* LTE upload; a realistic
  // sustained uplink is far lower. Wide-area RTT dominates latency.
  return {"lte-up", LinkKind::kLte, 20.0, sim::msec(35), 0.01};
}

LinkSpec lte_downlink() {
  return {"lte-down", LinkKind::kLte, 60.0, sim::msec(35), 0.01};
}

LinkSpec wifi() {
  return {"wifi", LinkKind::kWifi, 80.0, sim::msec(3), 0.005};
}

LinkSpec bluetooth() {
  return {"bluetooth", LinkKind::kBluetooth, 2.0, sim::msec(15), 0.01};
}

LinkSpec metro_fiber() {
  // RSU / base station to regional cloud over wired backhaul (§IV-A).
  return {"metro-fiber", LinkKind::kWired, 1000.0, sim::msec(12), 0.0};
}

}  // namespace links

Link::Link(sim::Simulator& sim, LinkSpec spec)
    : sim_(sim), spec_(std::move(spec)) {
  if (spec_.bandwidth_mbps <= 0) {
    throw std::invalid_argument("link bandwidth must be positive");
  }
}

void Link::set_spec(LinkSpec spec) {
  if (spec.bandwidth_mbps <= 0) {
    throw std::invalid_argument("link bandwidth must be positive");
  }
  spec_ = std::move(spec);
}

std::uint64_t Link::send(std::uint64_t bytes,
                         std::function<void(const TransferReport&)> done) {
  std::uint64_t id = next_id_++;
  pending_.push_back(Msg{id, bytes, sim_.now(), std::move(done)});
  maybe_start();
  return id;
}

void Link::maybe_start() {
  if (busy_ || pending_.empty()) return;
  busy_ = true;
  auto msg = std::make_shared<Msg>(std::move(pending_.front()));
  pending_.pop_front();
  double serialize_s =
      static_cast<double>(msg->bytes) * 8.0 / (spec_.bandwidth_mbps * 1e6);
  sim::SimDuration ser = sim::from_seconds(serialize_s);
  // The link frees up after serialization; delivery lands after propagation.
  sim_.after(ser, [this, msg]() {
    busy_ = false;
    bytes_sent_ += msg->bytes;
    bool lost = spec_.loss_rate > 0.0 &&
                sim_.rng("link." + spec_.name).chance(spec_.loss_rate);
    maybe_start();
    sim_.after(spec_.latency, [this, msg, lost]() {
      if (lost) {
        ++dropped_;
      } else {
        ++delivered_;
      }
      if (telemetry::on()) {
        json::Object args;
        args["bytes"] = static_cast<std::int64_t>(msg->bytes);
        args["delivered"] = !lost;
        telemetry::tracer().complete(msg->submitted,
                                     sim_.now() - msg->submitted, "net",
                                     "xfer", "net/" + spec_.name,
                                     std::move(args));
        telemetry::count("net.messages", {{"link", spec_.name}});
        telemetry::count("net.bytes", {{"link", spec_.name}},
                         static_cast<std::int64_t>(msg->bytes));
        if (lost) telemetry::count("net.dropped", {{"link", spec_.name}});
      }
      if (msg->done) {
        TransferReport rep;
        rep.transfer_id = msg->id;
        rep.bytes = msg->bytes;
        rep.submitted = msg->submitted;
        rep.finished = sim_.now();
        rep.delivered = !lost;
        msg->done(rep);
      }
    });
  });
}

}  // namespace vdap::net
