// Point-to-point link models.
//
// OpenVDAP's communication fabric (§IV-A): DSRC and 5G for V2V / V2-RSU,
// cellular (3G/4G/LTE) vehicle-to-base-station, WiFi/Bluetooth for passenger
// devices, and wired Ethernet/fiber between RSU/base station and the cloud.
// A Link is a FIFO store-and-forward pipe: serialization at `bandwidth_mbps`
// plus fixed propagation `latency`, with optional iid packet/message loss.
// Analytic estimates (no queueing) are exposed for the offload planner.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulator.hpp"

namespace vdap::net {

enum class LinkKind { kDsrc, kLte, k5g, kWifi, kBluetooth, kWired };

constexpr std::string_view to_string(LinkKind k) {
  switch (k) {
    case LinkKind::kDsrc: return "dsrc";
    case LinkKind::kLte: return "lte";
    case LinkKind::k5g: return "5g";
    case LinkKind::kWifi: return "wifi";
    case LinkKind::kBluetooth: return "bluetooth";
    case LinkKind::kWired: return "wired";
  }
  return "unknown";
}

struct LinkSpec {
  std::string name;
  LinkKind kind = LinkKind::kWired;
  double bandwidth_mbps = 100.0;
  sim::SimDuration latency = sim::msec(1);
  double loss_rate = 0.0;  // iid per-message loss (retransmits model below)

  /// Serialization + propagation time for `bytes`, ignoring queueing and
  /// loss. The offload planner's base estimate.
  sim::SimDuration estimate(std::uint64_t bytes) const;

  /// Expected time including loss-driven retransmissions (geometric retry
  /// model, as a reliable transport would experience on this link).
  sim::SimDuration estimate_reliable(std::uint64_t bytes) const;
};

/// Reference specs for each medium. Bandwidth/latency figures follow the
/// paper's usage: DSRC/5G "higher bandwidth" short-range (§IV-A), LTE with
/// ~100 Mbps down / ~20 Mbps up and wide-area latency, wired RSU-to-cloud.
namespace links {
LinkSpec dsrc();              // vehicle <-> vehicle / RSU, one hop
LinkSpec nr5g();              // vehicle <-> RSU / base station
LinkSpec lte_uplink();        // vehicle -> base station
LinkSpec lte_downlink();      // base station -> vehicle
LinkSpec wifi();              // vehicle <-> passenger device
LinkSpec bluetooth();         // vehicle <-> passenger device (low rate)
LinkSpec metro_fiber();       // RSU / base station <-> cloud
}  // namespace links

struct TransferReport {
  std::uint64_t transfer_id = 0;
  std::uint64_t bytes = 0;
  sim::SimTime submitted = 0;
  sim::SimTime finished = 0;
  bool delivered = true;  // false when the loss model dropped the message
  sim::SimDuration latency() const { return finished - submitted; }
};

/// Event-driven FIFO link. Messages serialize one at a time at the link
/// rate; delivery fires after propagation latency. With loss_rate > 0 each
/// message is dropped independently (UDP semantics); callers wanting
/// reliability layer retries on top.
class Link {
 public:
  Link(sim::Simulator& sim, LinkSpec spec);

  std::uint64_t send(std::uint64_t bytes,
                     std::function<void(const TransferReport&)> done);

  /// Swaps the link's spec in place (condition changes, fault injection).
  /// The message currently serializing finishes at the rate it started
  /// with; queued and future messages see the new spec. Keeping the Link
  /// object alive across condition changes keeps in-flight completion
  /// events valid.
  void set_spec(LinkSpec spec);

  const LinkSpec& spec() const { return spec_; }
  std::size_t queue_length() const { return pending_.size(); }
  bool busy() const { return busy_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Msg {
    std::uint64_t id;
    std::uint64_t bytes;
    sim::SimTime submitted;
    std::function<void(const TransferReport&)> done;
  };
  void maybe_start();

  sim::Simulator& sim_;
  LinkSpec spec_;
  std::deque<Msg> pending_;
  bool busy_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace vdap::net
