// RSU coverage geometry.
//
// The paper places XEdge on "base stations, RSUs, and traffic signal
// systems" (§IV): physical boxes with physical radio range. A CoverageMap
// holds RSU sites along a (1-D) route; whether the vehicle has an RSU tier
// at all is then a function of where it is, not a hand-set flag. The
// drive-scenario builder (core::DriveScenario::from_route) slices a speed
// profile into segments at the coverage boundaries this map induces.
#pragma once

#include <optional>
#include <vector>

namespace vdap::net {

struct RsuSite {
  double position_m = 0.0;  // along-route coordinate of the RSU
  double range_m = 300.0;   // DSRC reach on the route
};

class CoverageMap {
 public:
  explicit CoverageMap(std::vector<RsuSite> sites);

  /// True when an RSU is reachable from route position `pos_m`.
  bool covered(double pos_m) const;

  /// The next position >= `pos_m` where coverage flips (entering or
  /// leaving a site's range); nullopt when it never flips again.
  std::optional<double> next_boundary(double pos_m) const;

  const std::vector<RsuSite>& sites() const { return sites_; }

  /// Fraction of [0, route_m] that is covered.
  double coverage_fraction(double route_m) const;

  /// Evenly spaced RSUs: one every `spacing_m` starting at spacing/2.
  static CoverageMap corridor(double route_m, double spacing_m,
                              double range_m = 300.0);

 private:
  // Merged, sorted coverage intervals [begin, end).
  std::vector<std::pair<double, double>> intervals_;
  std::vector<RsuSite> sites_;
};

}  // namespace vdap::net
