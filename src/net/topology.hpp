// Two-tier network topology (§IV-A, Fig. 4): the vehicle talks to
// neighboring vehicles over DSRC, to RSU XEdge over DSRC/5G, to
// base-station XEdge over the cellular network, and to the cloud through a
// base station plus wired backhaul. Each offload destination is a Tier with
// an uplink and downlink path.
//
// Paths collapse their hops into one effective FIFO link (bottleneck
// bandwidth, summed latency, combined loss) — adequate because the vehicle's
// wireless first hop dominates every path in practice.
//
// Sharded execution (DESIGN.md §6f): a Topology is bound to ONE
// sim::Simulator, so sharded scenarios give every shard its own copy.
// All construction-time randomness comes from streams named by fixed
// strings derived from the simulator's root seed, so K copies built on
// K same-seed shards are identical — the property the shard-count
// byte-identity sweep relies on.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/link.hpp"

namespace vdap::net {

enum class Tier {
  kOnBoard,          // no network involved
  kNeighbor,         // neighboring vehicle via DSRC
  kRsuEdge,          // XEdge on a roadside unit
  kBaseStationEdge,  // XEdge on a cellular base station
  kCloud,            // remote cloud behind the base station
};

constexpr std::array<Tier, 5> kAllTiers = {
    Tier::kOnBoard, Tier::kNeighbor, Tier::kRsuEdge, Tier::kBaseStationEdge,
    Tier::kCloud};

constexpr std::string_view to_string(Tier t) {
  switch (t) {
    case Tier::kOnBoard: return "on-board";
    case Tier::kNeighbor: return "neighbor";
    case Tier::kRsuEdge: return "rsu-edge";
    case Tier::kBaseStationEdge: return "basestation-edge";
    case Tier::kCloud: return "cloud";
  }
  return "unknown";
}

/// A multi-hop path collapsed to hop specs for estimation.
struct PathSpec {
  std::vector<LinkSpec> hops;

  bool empty() const { return hops.empty(); }
  /// One-way estimate for `bytes`, summing hop serialization + latency.
  sim::SimDuration estimate(std::uint64_t bytes) const;
  /// As estimate(), but inflating each hop by its loss-driven retries.
  sim::SimDuration estimate_reliable(std::uint64_t bytes) const;
  double bottleneck_mbps() const;
  /// Probability a message survives every hop unlossed.
  double delivery_probability() const;
  /// Collapses the hops into a single effective LinkSpec.
  LinkSpec collapse(const std::string& name) const;
};

struct TransferOutcome {
  bool delivered = false;
  int attempts = 0;
  sim::SimTime submitted = 0;
  sim::SimTime finished = 0;
  sim::SimDuration latency() const { return finished - submitted; }
};

/// The vehicle-centric network view used by the offload planner and the
/// elastic manager. Availability and cellular quality change as the vehicle
/// moves (set_available / apply_cellular_condition).
class Topology {
 public:
  explicit Topology(sim::Simulator& sim);

  /// Tier reachability: RSUs come and go with coverage; a neighbor willing
  /// to collaborate is not always present.
  bool available(Tier t) const;
  void set_available(Tier t, bool available);

  /// Degrades (factor < 1) or restores the cellular tiers' bandwidth and
  /// adds mobility loss — driven by the drive scenario's speed profile.
  /// Affects kBaseStationEdge and kCloud paths.
  void apply_cellular_condition(double bandwidth_factor, double extra_loss);

  /// A second, independent cellular degradation channel used by fault
  /// injection (net::ImpairmentController), so an injected bandwidth
  /// collapse composes multiplicatively with whatever condition the drive
  /// scenario applied instead of clobbering it.
  void apply_cellular_impairment(double bandwidth_factor, double extra_loss);

  /// Per-tier degradation (any tier but kOnBoard): scales every hop of the
  /// tier's paths and compounds loss. Composes with the cellular channels
  /// above. Fault injection restores by re-applying (1.0, 0.0).
  void apply_tier_condition(Tier t, double bandwidth_factor,
                            double extra_loss);
  double tier_bandwidth_factor(Tier t) const { return state(t).cond_factor; }

  /// Effective cellular bandwidth factor (scenario x impairment) — the
  /// CloudSync gate reads this.
  double cellular_bandwidth_factor() const {
    return cell_factor_ * imp_factor_;
  }

  const PathSpec& uplink(Tier t) const;
  const PathSpec& downlink(Tier t) const;

  /// Analytic round-trip estimate: upload `up_bytes`, download `down_bytes`
  /// (retries included). kOnBoard estimates 0. Returns nullopt when the
  /// tier is unavailable.
  std::optional<sim::SimDuration> estimate_round_trip(
      Tier t, std::uint64_t up_bytes, std::uint64_t down_bytes) const;

  /// Event-driven reliable upload with bounded retries (5). Calls `done`
  /// with the outcome; an unavailable tier fails immediately.
  void transfer_up(Tier t, std::uint64_t bytes,
                   std::function<void(const TransferOutcome&)> done);
  void transfer_down(Tier t, std::uint64_t bytes,
                     std::function<void(const TransferOutcome&)> done);

  sim::Simulator& simulator() { return sim_; }

 private:
  struct TierState {
    bool available = true;
    // Pristine paths, so conditions always re-apply from a clean base.
    PathSpec base_up;
    PathSpec base_down;
    // Effective paths under the current conditions.
    PathSpec up;
    PathSpec down;
    // Per-tier degradation (fault injection).
    double cond_factor = 1.0;
    double cond_loss = 0.0;
    std::unique_ptr<Link> up_link;    // collapsed, event-driven
    std::unique_ptr<Link> down_link;
  };

  /// Recomputes the tier's effective paths from base + conditions and
  /// updates the event-driven links in place (they are never destroyed
  /// while the topology lives, so in-flight completions stay valid).
  void recompute(Tier t);
  /// Records the effective cellular bandwidth factor as a telemetry counter
  /// sample + gauge (no-op when telemetry is off).
  void record_cellular_sample();
  TierState& state(Tier t) { return tiers_[static_cast<std::size_t>(t)]; }
  const TierState& state(Tier t) const {
    return tiers_[static_cast<std::size_t>(t)];
  }
  void transfer(Tier t, bool up, std::uint64_t bytes, int attempt,
                sim::SimTime submitted,
                std::function<void(const TransferOutcome&)> done);

  sim::Simulator& sim_;
  std::array<TierState, 5> tiers_;
  // Scenario-applied cellular condition (drive speed profile).
  double cell_factor_ = 1.0;
  double cell_extra_loss_ = 0.0;
  // Fault-injected cellular impairment; composes with the scenario.
  double imp_factor_ = 1.0;
  double imp_loss_ = 0.0;
};

}  // namespace vdap::net
