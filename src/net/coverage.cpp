#include "net/coverage.hpp"

#include <algorithm>

namespace vdap::net {

CoverageMap::CoverageMap(std::vector<RsuSite> sites)
    : sites_(std::move(sites)) {
  std::vector<std::pair<double, double>> raw;
  raw.reserve(sites_.size());
  for (const RsuSite& s : sites_) {
    raw.emplace_back(s.position_m - s.range_m, s.position_m + s.range_m);
  }
  std::sort(raw.begin(), raw.end());
  // Merge overlaps so queries are a single scan.
  for (const auto& iv : raw) {
    if (!intervals_.empty() && iv.first <= intervals_.back().second) {
      intervals_.back().second = std::max(intervals_.back().second, iv.second);
    } else {
      intervals_.push_back(iv);
    }
  }
}

bool CoverageMap::covered(double pos_m) const {
  for (const auto& [b, e] : intervals_) {
    if (pos_m < b) return false;
    if (pos_m < e) return true;
  }
  return false;
}

std::optional<double> CoverageMap::next_boundary(double pos_m) const {
  for (const auto& [b, e] : intervals_) {
    if (pos_m < b) return b;   // next: entering coverage
    if (pos_m < e) return e;   // next: leaving coverage
  }
  return std::nullopt;
}

double CoverageMap::coverage_fraction(double route_m) const {
  if (route_m <= 0) return 0.0;
  double covered_m = 0.0;
  for (const auto& [b, e] : intervals_) {
    double lo = std::max(0.0, b);
    double hi = std::min(route_m, e);
    if (hi > lo) covered_m += hi - lo;
  }
  return covered_m / route_m;
}

CoverageMap CoverageMap::corridor(double route_m, double spacing_m,
                                  double range_m) {
  std::vector<RsuSite> sites;
  for (double pos = spacing_m / 2.0; pos < route_m; pos += spacing_m) {
    sites.push_back(RsuSite{pos, range_m});
  }
  return CoverageMap(std::move(sites));
}

}  // namespace vdap::net
