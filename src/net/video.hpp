// Video streaming over RTP/UDP — the sender side of the Fig. 2 experiment.
//
// Matches the paper's setup (§III-A): H.264 at 30 fps with one key frame
// per two seconds, packetized onto a UDP-based RTP transport with no
// retransmission, streamed over the LTE mobility channel. Loss is counted
// at two levels exactly as the paper does:
//   * packet loss rate — network-level fraction of RTP packets lost;
//   * frame loss rate — application level, where "the rule of marking a
//     frame as lost is based on whether its first key frame is lost or not,
//     rather than on its own status": losing any packet of a GOP's key
//     frame loses the entire GOP.
#pragma once

#include <cstdint>
#include <string>

#include "net/cellular.hpp"

namespace vdap::net {

struct VideoStreamSpec {
  std::string name;
  int width = 1280;
  int height = 720;
  int fps = 30;
  double bitrate_mbps = 3.8;       // encoded stream rate
  double gop_seconds = 2.0;        // one key frame per two seconds
  double keyframe_size_ratio = 8.0;  // key frame bytes / P-frame bytes
  int packet_bytes = 1200;         // RTP payload size

  int frames_per_gop() const {
    return static_cast<int>(gop_seconds * fps + 0.5);
  }
  /// Bytes of a predicted (P) frame, derived from bitrate and GOP shape.
  std::uint64_t p_frame_bytes() const;
  std::uint64_t key_frame_bytes() const;

  /// The paper's two test streams: 1280x720 at 3.8 Mbps and 1920x1080 at
  /// 5.8 Mbps ("the bandwidth of transmitting a live 1080P video is around
  /// 5.8Mbps, while the lower bound is 3.8Mbps for a 720P video").
  static VideoStreamSpec hd720();
  static VideoStreamSpec hd1080();
};

struct UploadStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t frames_total = 0;
  std::uint64_t frames_lost = 0;   // key-frame counting policy
  std::uint64_t gops_total = 0;
  std::uint64_t gops_lost = 0;     // GOPs whose key frame lost >=1 packet
  std::uint64_t bytes_offered = 0;
  std::uint64_t bytes_delivered = 0;

  double packet_loss_rate() const {
    return packets_sent ? static_cast<double>(packets_lost) / packets_sent
                        : 0.0;
  }
  double frame_loss_rate() const {
    return frames_total ? static_cast<double>(frames_lost) / frames_total
                        : 0.0;
  }
};

struct RtpSenderParams {
  double buffer_seconds = 0.25;  // sender-side pacing buffer depth
  double air_loss = 0.0001;      // residual per-packet loss on a clean link
  double step_s = 0.01;          // simulation step
};

/// Simulates uploading `video` for `duration_s` over `channel`.
/// Deterministic in (channel, video, params, seed).
UploadStats simulate_rtp_upload(const CellularChannel& channel,
                                const VideoStreamSpec& video,
                                double duration_s, std::uint64_t seed,
                                const RtpSenderParams& params = {});

/// Convenience wrapper for one Fig. 2 cell: builds the LTE channel at the
/// given speed (mph) and streams `video` for `duration_s` (paper: 5-minute
/// videos).
UploadStats run_fig2_cell(double speed_mph, const VideoStreamSpec& video,
                          std::uint64_t seed, double duration_s = 300.0,
                          const LteMobilityParams& lte = {});

}  // namespace vdap::net
