#include "net/cellular.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdap::net {

CellularChannel::CellularChannel(const LteMobilityParams& params,
                                 double speed_mps, double duration_s,
                                 std::uint64_t seed)
    : params_(params), speed_mps_(speed_mps), duration_s_(duration_s) {
  if (duration_s <= 0) throw std::invalid_argument("duration must be > 0");
  if (speed_mps < 0) throw std::invalid_argument("speed must be >= 0");

  const double dt = params_.fade_block_s;
  const std::size_t blocks = static_cast<std::size_t>(duration_s / dt) + 1;
  capacity_.assign(blocks, 0.0);
  outage_.assign(blocks, false);

  util::RngStream fade_rng(seed, "lte.fade");
  util::RngStream ho_rng(seed, "lte.handover");
  util::RngStream deep_rng(seed, "lte.deepfade");

  const double v = speed_mps;
  const double speed_penalty =
      1.0 / (1.0 + std::pow(v / params_.doppler_v0_mps,
                            params_.doppler_exponent));
  const double sigma = params_.fade_sigma0 + params_.fade_sigma_per_mps * v;
  const double rho = params_.fade_corr;

  // --- handover outage windows -------------------------------------------
  // The vehicle starts mid-cell; boundaries lie every 2R of travel.
  std::vector<std::pair<double, double>> outages;  // [start, end)
  if (v > 0) {
    const double cell_span_m = 2.0 * params_.cell_radius_m;
    double first_boundary_m = cell_span_m * (1.0 - params_.static_cell_pos);
    for (double x = first_boundary_m;; x += cell_span_m) {
      double t = x / v;
      if (t >= duration_s) break;
      ++handovers_;
      double outage = params_.handover_base_s +
                      params_.handover_speed_s * (v / 30.0) * (v / 30.0);
      if (ho_rng.chance(std::min(1.0, params_.rlf_prob_per_mps * v))) {
        ++rlf_count_;
        outage += params_.rlf_extra_s;
      }
      outages.emplace_back(t, t + outage);
    }
  }

  // --- deep fades ----------------------------------------------------------
  const double deep_rate =
      params_.deep_fade_rate0_hz + params_.deep_fade_rate_per_mps * v;
  std::vector<std::pair<double, double>> fades;
  if (deep_rate > 0) {
    double t = deep_rng.exponential(1.0 / deep_rate);
    while (t < duration_s) {
      fades.emplace_back(t, t + params_.deep_fade_duration_s);
      t += deep_rng.exponential(1.0 / deep_rate);
    }
  }

  // --- per-block capacity --------------------------------------------------
  double x_log = 0.0;  // AR(1) state of log-fading
  std::size_t oi = 0;
  std::size_t fi = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    double t = static_cast<double>(b) * dt;

    // Normalized distance to the serving tower, d in [0,1].
    double d;
    if (v > 0) {
      const double cell_span_m = 2.0 * params_.cell_radius_m;
      double start_m = cell_span_m * params_.static_cell_pos;
      double pos = std::fmod(start_m + v * t, cell_span_m);
      // Tower at the middle of each 2R span: distance from the tower.
      d = std::abs(pos - params_.cell_radius_m) / params_.cell_radius_m;
    } else {
      d = params_.static_cell_pos;
    }

    // Handover outage?
    while (oi < outages.size() && t >= outages[oi].second) ++oi;
    bool in_ho = oi < outages.size() && t >= outages[oi].first;
    while (fi < fades.size() && t >= fades[fi].second) ++fi;
    bool in_fade = fi < fades.size() && t >= fades[fi].first;

    // Correlated lognormal shadowing, mean-one.
    x_log = rho * x_log +
            std::sqrt(1.0 - rho * rho) * fade_rng.normal(0.0, sigma);
    double fading = std::exp(x_log - sigma * sigma / 2.0);

    if (in_ho || in_fade) {
      capacity_[b] = 0.0;
      outage_[b] = in_ho;
      continue;
    }
    double profile =
        1.0 - (1.0 - params_.edge_capacity_frac) *
                  std::pow(d, params_.profile_exponent);
    capacity_[b] =
        std::max(0.0, params_.peak_uplink_mbps * profile * speed_penalty *
                          fading);
  }
}

std::size_t CellularChannel::block_index(double t_s) const {
  if (t_s < 0) t_s = 0;
  auto idx = static_cast<std::size_t>(t_s / params_.fade_block_s);
  return std::min(idx, capacity_.size() - 1);
}

double CellularChannel::capacity_mbps(double t_s) const {
  return capacity_[block_index(t_s)];
}

bool CellularChannel::in_outage(double t_s) const {
  return outage_[block_index(t_s)];
}

double CellularChannel::outage_fraction() const {
  std::size_t n = 0;
  for (bool o : outage_) n += o ? 1 : 0;
  return outage_.empty() ? 0.0
                         : static_cast<double>(n) / outage_.size();
}

double CellularChannel::mean_capacity_mbps() const {
  double s = 0.0;
  for (double c : capacity_) s += c;
  return capacity_.empty() ? 0.0 : s / capacity_.size();
}

}  // namespace vdap::net
