// Application DAGs.
//
// §IV-B2: the DSF "divides the original applications into some sub-tasks by
// fine-grained and tries to match the tasks with the computing resources".
// An AppDag is that division: tasks plus precedence edges. The license-plate
// example from the paper (motion detection → plate detection → plate number
// recognition, after [17]) is a three-stage chain; richer apps fan out.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "workload/task.hpp"

namespace vdap::workload {

class AppDag {
 public:
  AppDag() = default;
  AppDag(std::string name, ServiceCategory category, QosSpec qos)
      : name_(std::move(name)), category_(category), qos_(qos) {}

  /// Adds a task; returns its index.
  int add_task(TaskSpec spec);

  /// Adds a precedence edge `from` → `to`. Throws on invalid ids,
  /// self-edges, or duplicates.
  void add_edge(int from, int to);

  const std::string& name() const { return name_; }
  ServiceCategory category() const { return category_; }
  const QosSpec& qos() const { return qos_; }
  void set_qos(const QosSpec& q) { qos_ = q; }

  int size() const { return static_cast<int>(tasks_.size()); }
  bool empty() const { return tasks_.empty(); }
  const TaskSpec& task(int id) const;
  TaskSpec& task(int id);

  const std::vector<int>& predecessors(int id) const;
  const std::vector<int>& successors(int id) const;
  std::vector<int> sources() const;  // tasks with no predecessors
  std::vector<int> sinks() const;    // tasks with no successors

  /// Topological order; throws std::logic_error when the graph has a cycle.
  std::vector<int> topo_order() const;

  /// True when the DAG is well-formed: nonempty, acyclic, valid specs.
  bool validate(std::string* why = nullptr) const;

  double total_gflop() const;
  std::uint64_t total_input_bytes() const;

  /// Sum over the longest path of per-task gflop (critical path length in
  /// compute terms; a lower bound on any schedule with 1 GF/s devices).
  double critical_path_gflop() const;

 private:
  void check_id(int id) const;

  std::string name_;
  ServiceCategory category_ = ServiceCategory::kThirdParty;
  QosSpec qos_;
  std::vector<TaskSpec> tasks_;
  std::vector<std::vector<int>> preds_;
  std::vector<std::vector<int>> succs_;
};

}  // namespace vdap::workload
