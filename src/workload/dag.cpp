#include "workload/dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdap::workload {

int AppDag::add_task(TaskSpec spec) {
  if (!spec.valid()) {
    throw std::invalid_argument("invalid task spec '" + spec.name + "'");
  }
  tasks_.push_back(std::move(spec));
  preds_.emplace_back();
  succs_.emplace_back();
  return static_cast<int>(tasks_.size()) - 1;
}

void AppDag::check_id(int id) const {
  if (id < 0 || id >= size()) {
    throw std::out_of_range("task id " + std::to_string(id) +
                            " out of range");
  }
}

void AppDag::add_edge(int from, int to) {
  check_id(from);
  check_id(to);
  if (from == to) throw std::invalid_argument("self-edge");
  auto& s = succs_[static_cast<std::size_t>(from)];
  if (std::find(s.begin(), s.end(), to) != s.end()) {
    throw std::invalid_argument("duplicate edge");
  }
  s.push_back(to);
  preds_[static_cast<std::size_t>(to)].push_back(from);
}

const TaskSpec& AppDag::task(int id) const {
  check_id(id);
  return tasks_[static_cast<std::size_t>(id)];
}

TaskSpec& AppDag::task(int id) {
  check_id(id);
  return tasks_[static_cast<std::size_t>(id)];
}

const std::vector<int>& AppDag::predecessors(int id) const {
  check_id(id);
  return preds_[static_cast<std::size_t>(id)];
}

const std::vector<int>& AppDag::successors(int id) const {
  check_id(id);
  return succs_[static_cast<std::size_t>(id)];
}

std::vector<int> AppDag::sources() const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (preds_[static_cast<std::size_t>(i)].empty()) out.push_back(i);
  }
  return out;
}

std::vector<int> AppDag::sinks() const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (succs_[static_cast<std::size_t>(i)].empty()) out.push_back(i);
  }
  return out;
}

std::vector<int> AppDag::topo_order() const {
  std::vector<int> indegree(static_cast<std::size_t>(size()), 0);
  for (int i = 0; i < size(); ++i) {
    indegree[static_cast<std::size_t>(i)] =
        static_cast<int>(preds_[static_cast<std::size_t>(i)].size());
  }
  std::vector<int> frontier = sources();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(size()));
  // Kahn's algorithm; the frontier is kept sorted for determinism.
  while (!frontier.empty()) {
    std::sort(frontier.begin(), frontier.end());
    int n = frontier.front();
    frontier.erase(frontier.begin());
    order.push_back(n);
    for (int s : succs_[static_cast<std::size_t>(n)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) frontier.push_back(s);
    }
  }
  if (static_cast<int>(order.size()) != size()) {
    throw std::logic_error("dag '" + name_ + "' contains a cycle");
  }
  return order;
}

bool AppDag::validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (empty()) return fail("dag has no tasks");
  for (const TaskSpec& t : tasks_) {
    if (!t.valid()) return fail("invalid task '" + t.name + "'");
  }
  try {
    (void)topo_order();
  } catch (const std::logic_error& e) {
    return fail(e.what());
  }
  if (why != nullptr) why->clear();
  return true;
}

double AppDag::total_gflop() const {
  double g = 0.0;
  for (const TaskSpec& t : tasks_) g += t.gflop;
  return g;
}

std::uint64_t AppDag::total_input_bytes() const {
  std::uint64_t b = 0;
  for (const TaskSpec& t : tasks_) b += t.input_bytes;
  return b;
}

double AppDag::critical_path_gflop() const {
  std::vector<double> best(static_cast<std::size_t>(size()), 0.0);
  double overall = 0.0;
  for (int id : topo_order()) {
    double up = 0.0;
    for (int p : preds_[static_cast<std::size_t>(id)]) {
      up = std::max(up, best[static_cast<std::size_t>(p)]);
    }
    best[static_cast<std::size_t>(id)] =
        up + tasks_[static_cast<std::size_t>(id)].gflop;
    overall = std::max(overall, best[static_cast<std::size_t>(id)]);
  }
  return overall;
}

}  // namespace vdap::workload
