// Workload generators: release recurring service instances and stochastic
// third-party requests into the platform under the discrete-event clock.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "workload/apps.hpp"

namespace vdap::workload {

/// One stream of releases: a template DAG released periodically (with
/// optional jitter) or as a Poisson process.
struct StreamSpec {
  AppDag dag;
  /// Period between releases; used when poisson_rate_hz == 0.
  sim::SimDuration period = sim::seconds(1);
  /// Uniform jitter added to each periodic release in [0, jitter].
  sim::SimDuration jitter = 0;
  /// If > 0, releases follow a Poisson process at this rate instead.
  double poisson_rate_hz = 0.0;
  /// Stop releasing after this many instances (0 = unbounded).
  std::uint64_t max_instances = 0;
};

/// A released DAG instance.
struct Release {
  std::uint64_t instance_id = 0;
  const AppDag* dag = nullptr;
  sim::SimTime released_at = 0;
};

class WorkloadGenerator {
 public:
  using Sink = std::function<void(const Release&)>;

  WorkloadGenerator(sim::Simulator& sim, Sink sink)
      : sim_(sim), sink_(std::move(sink)) {}

  /// Registers a stream; releases begin at its first scheduled point once
  /// start() is called.
  void add_stream(StreamSpec spec);

  /// Arms all streams. Call once, before running the simulator.
  void start();

  /// Stops all future releases.
  void stop();

  std::uint64_t released() const { return released_; }

 private:
  void arm_periodic(std::size_t idx);
  void arm_poisson(std::size_t idx);
  void emit(std::size_t idx);

  sim::Simulator& sim_;
  Sink sink_;
  std::vector<StreamSpec> streams_;
  std::vector<std::uint64_t> counts_;
  bool started_ = false;
  bool stopped_ = false;
  std::uint64_t released_ = 0;
};

/// The paper's §II service portfolio as a ready-made mix: diagnostics,
/// ADAS (lane + pedestrian), infotainment, and third-party streams.
std::vector<StreamSpec> full_vehicle_mix();

/// ADAS-only mix for latency-critical experiments.
std::vector<StreamSpec> adas_mix();

}  // namespace vdap::workload
