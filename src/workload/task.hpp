// Task and QoS model.
//
// OpenVDAP treats every in-vehicle service as a demand vector the platform
// can reason about: a task class (what kind of processor fits it), a compute
// cost in GFLOP, input/output payload sizes (what offloading it would cost
// in bandwidth), and QoS (deadline + priority) — exactly the quantities the
// paper's DSF and offloading discussion revolve around (§IV-B2, §IV-C).
#pragma once

#include <cstdint>
#include <string>

#include "hw/task_class.hpp"
#include "sim/time.hpp"

namespace vdap::workload {

/// Service categories from §II. Used for reporting and scheduling policy.
enum class ServiceCategory {
  kRealTimeDiagnostics,
  kAdas,
  kInfotainment,
  kThirdParty,
};

constexpr std::string_view to_string(ServiceCategory c) {
  switch (c) {
    case ServiceCategory::kRealTimeDiagnostics: return "diagnostics";
    case ServiceCategory::kAdas: return "adas";
    case ServiceCategory::kInfotainment: return "infotainment";
    case ServiceCategory::kThirdParty: return "third-party";
  }
  return "unknown";
}

struct TaskSpec {
  std::string name;
  hw::TaskClass cls = hw::TaskClass::kGeneric;
  double gflop = 0.0;
  std::uint64_t input_bytes = 0;   // payload needed where the task runs
  std::uint64_t output_bytes = 0;  // result size shipped back / downstream
  /// Safety-pinned stages (e.g. actuation) must stay on the vehicle.
  bool offloadable = true;

  bool valid() const { return !name.empty() && gflop >= 0.0; }
};

struct QosSpec {
  /// End-to-end deadline for one DAG execution; 0 means best-effort.
  sim::SimDuration deadline = 0;
  /// Higher runs first on contended resources.
  int priority = 0;
  /// For recurring services: the period between releases; 0 means one-shot.
  sim::SimDuration period = 0;

  bool has_deadline() const { return deadline > 0; }
  bool periodic() const { return period > 0; }
};

}  // namespace vdap::workload
