// task.hpp is header-only; this translation unit anchors the library and
// keeps one definition of nothing in particular.
#include "workload/task.hpp"
