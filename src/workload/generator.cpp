#include "workload/generator.hpp"

#include <stdexcept>

namespace vdap::workload {

void WorkloadGenerator::add_stream(StreamSpec spec) {
  if (started_) throw std::logic_error("add_stream after start");
  std::string why;
  if (!spec.dag.validate(&why)) {
    throw std::invalid_argument("stream dag invalid: " + why);
  }
  if (spec.poisson_rate_hz <= 0.0 && spec.period <= 0) {
    throw std::invalid_argument("stream needs a period or a poisson rate");
  }
  streams_.push_back(std::move(spec));
  counts_.push_back(0);
}

void WorkloadGenerator::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].poisson_rate_hz > 0.0) {
      arm_poisson(i);
    } else {
      arm_periodic(i);
    }
  }
}

void WorkloadGenerator::stop() { stopped_ = true; }

void WorkloadGenerator::emit(std::size_t idx) {
  Release r;
  r.instance_id = ++released_;
  r.dag = &streams_[idx].dag;
  r.released_at = sim_.now();
  ++counts_[idx];
  if (sink_) sink_(r);
}

void WorkloadGenerator::arm_periodic(std::size_t idx) {
  const StreamSpec& s = streams_[idx];
  // The first release fires after jitter only; later ones period + jitter.
  sim::SimDuration delay = counts_[idx] == 0 ? 0 : s.period;
  if (s.jitter > 0) {
    delay += static_cast<sim::SimDuration>(
        sim_.rng("wl.jitter." + s.dag.name())
            .uniform(0.0, static_cast<double>(s.jitter)));
  }
  sim_.after(delay, [this, idx]() {
    if (stopped_) return;
    const StreamSpec& spec = streams_[idx];
    if (spec.max_instances != 0 && counts_[idx] >= spec.max_instances) return;
    emit(idx);
    arm_periodic(idx);
  });
}

void WorkloadGenerator::arm_poisson(std::size_t idx) {
  const StreamSpec& s = streams_[idx];
  double gap_s =
      sim_.rng("wl.poisson." + s.dag.name()).exponential(1.0 / s.poisson_rate_hz);
  sim_.after(sim::from_seconds(gap_s), [this, idx]() {
    if (stopped_) return;
    const StreamSpec& spec = streams_[idx];
    if (spec.max_instances != 0 && counts_[idx] >= spec.max_instances) return;
    emit(idx);
    arm_poisson(idx);
  });
}

std::vector<StreamSpec> full_vehicle_mix() {
  std::vector<StreamSpec> mix;
  auto periodic = [&](AppDag dag) {
    StreamSpec s;
    s.period = dag.qos().period > 0 ? dag.qos().period : sim::seconds(1);
    s.jitter = sim::from_millis(5);
    s.dag = std::move(dag);
    mix.push_back(std::move(s));
  };
  periodic(apps::lane_detection());
  periodic(apps::pedestrian_detection());
  periodic(apps::obd_diagnostics());
  periodic(apps::infotainment_chunk());
  periodic(apps::license_plate_pipeline());
  StreamSpec voice;
  voice.dag = apps::speech_assistant();
  voice.poisson_rate_hz = 0.05;  // a request every ~20 s
  mix.push_back(std::move(voice));
  StreamSpec adhoc;
  adhoc.dag = apps::inception_v3();
  adhoc.poisson_rate_hz = 0.2;
  mix.push_back(std::move(adhoc));
  return mix;
}

std::vector<StreamSpec> adas_mix() {
  std::vector<StreamSpec> mix;
  for (AppDag dag : {apps::lane_detection(), apps::pedestrian_detection(),
                     apps::vehicle_detection_haar()}) {
    StreamSpec s;
    s.period = dag.qos().period > 0 ? dag.qos().period : sim::from_millis(100);
    s.dag = std::move(dag);
    mix.push_back(std::move(s));
  }
  return mix;
}

}  // namespace vdap::workload
