// Concrete application models — every workload the paper names, as demand
// DAGs. Compute costs are calibrated against the paper's own measurements
// (Table I on the EC2 vCPU; Inception v3 for Fig. 3); payload sizes use the
// paper's stream parameters (dash-cam frames) and representative result
// sizes. See DESIGN.md §5.
#pragma once

#include "workload/dag.hpp"

namespace vdap::workload::apps {

// --- Table I algorithms (§II-B) -------------------------------------------
/// Classic-CV lane detection: 13.57 ms on the EC2 vCPU.
AppDag lane_detection();
/// Haar-cascade vehicle detection: 269.46 ms on the EC2 vCPU.
AppDag vehicle_detection_haar();
/// TensorFlow (deep) vehicle detection: 13 971.98 ms on the EC2 vCPU.
AppDag vehicle_detection_tf();

// --- Fig. 3 workload -------------------------------------------------------
/// Single Inception v3 classification (11.4 GFLOP CNN inference).
AppDag inception_v3();

// --- ADAS ------------------------------------------------------------------
/// Pedestrian alert: preprocess → CNN detect, 100 ms deadline, top priority.
AppDag pedestrian_detection();

// --- The paper's running third-party example (§IV-C, after [17]) ----------
/// License-plate recognition split into motion detection → plate detection
/// → plate number recognition; the polymorphic A3 / AMBER-alert service.
AppDag license_plate_pipeline();
/// Mobile-A3 kidnapper search: plate pipeline + a watchlist match stage.
AppDag a3_kidnapper_search();

// --- Diagnostics (§II-A) ---------------------------------------------------
/// OBD self-diagnosis sweep: collect → analyze → predict faults.
AppDag obd_diagnostics();

// --- Infotainment (§II-C) --------------------------------------------------
/// Streaming video chunk: download-side decode + render prep. Large input,
/// codec-heavy, loose deadline.
AppDag infotainment_chunk();
/// Voice assistant request: audio frontend → NLP intent.
AppDag speech_assistant();

// --- libvdap / pBEAM -------------------------------------------------------
/// On-vehicle pBEAM transfer-learning step (CNN training class).
AppDag pbeam_finetune();

/// Everything above, for enumeration in tests and benches.
std::vector<AppDag> all();

}  // namespace vdap::workload::apps
