#include "workload/apps.hpp"

#include "hw/catalog.hpp"

namespace vdap::workload::apps {

namespace {
using hw::TaskClass;

// A compressed 720P dash-cam frame (JPEG-quality), the unit of visual input.
constexpr std::uint64_t kCameraFrameBytes = 120'000;
// A cropped region of interest forwarded between pipeline stages.
constexpr std::uint64_t kRoiBytes = 40'000;
// Small structured results (labels, boxes, codes).
constexpr std::uint64_t kResultBytes = 1'000;
}  // namespace

AppDag lane_detection() {
  AppDag dag("lane-detection", ServiceCategory::kAdas,
             QosSpec{sim::from_millis(50), 8, sim::from_millis(100)});
  dag.add_task({"lane-detect", TaskClass::kVisionClassic, 0.10856,
                kCameraFrameBytes, kResultBytes, true});
  return dag;
}

AppDag vehicle_detection_haar() {
  AppDag dag("vehicle-detection-haar", ServiceCategory::kAdas,
             QosSpec{sim::from_millis(500), 7, sim::from_millis(1000)});
  dag.add_task({"haar-detect", TaskClass::kVisionClassic, 2.15568,
                kCameraFrameBytes, kResultBytes, true});
  return dag;
}

AppDag vehicle_detection_tf() {
  AppDag dag("vehicle-detection-tf", ServiceCategory::kAdas,
             QosSpec{sim::from_millis(500), 7, sim::from_millis(1000)});
  dag.add_task({"tf-detect", TaskClass::kCnnInference, 27.94396,
                kCameraFrameBytes, kResultBytes, true});
  return dag;
}

AppDag inception_v3() {
  AppDag dag("inception-v3", ServiceCategory::kThirdParty,
             QosSpec{sim::from_millis(1000), 3, 0});
  dag.add_task({"inception-v3", TaskClass::kCnnInference,
                hw::kInceptionV3Gflop, 270'000 /* 299x299x3 */, kResultBytes,
                true});
  return dag;
}

AppDag pedestrian_detection() {
  AppDag dag("pedestrian-alert", ServiceCategory::kAdas,
             QosSpec{sim::from_millis(100), 10, sim::from_millis(100)});
  int pre = dag.add_task({"frame-preprocess", TaskClass::kPreprocess, 0.4,
                          kCameraFrameBytes, kRoiBytes, true});
  int det = dag.add_task({"pedestrian-cnn", TaskClass::kCnnInference, 5.0,
                          kRoiBytes, kResultBytes, true});
  // The alert itself must fire on the vehicle (actuation).
  int alert = dag.add_task(
      {"alert-actuate", TaskClass::kGeneric, 0.001, kResultBytes, 0, false});
  dag.add_edge(pre, det);
  dag.add_edge(det, alert);
  return dag;
}

AppDag license_plate_pipeline() {
  // After Zhang et al. [17]: "a license plate number recognition process is
  // split into three parts ... able to be executed on different devices
  // concurrently."
  AppDag dag("license-plate", ServiceCategory::kThirdParty,
             QosSpec{sim::from_millis(1000), 4, sim::from_millis(1000)});
  int motion = dag.add_task({"motion-detect", TaskClass::kPreprocess, 0.08,
                             kCameraFrameBytes, kRoiBytes, true});
  int plate = dag.add_task({"plate-detect", TaskClass::kVisionClassic, 0.9,
                            kRoiBytes, 12'000, true});
  int ocr = dag.add_task({"plate-recognize", TaskClass::kCnnInference, 1.6,
                          12'000, 200, true});
  dag.add_edge(motion, plate);
  dag.add_edge(plate, ocr);
  return dag;
}

AppDag a3_kidnapper_search() {
  AppDag dag = license_plate_pipeline();
  // Rebuild under the A3 identity with an extra watchlist-match stage.
  AppDag out("a3-kidnapper-search", ServiceCategory::kThirdParty,
             QosSpec{sim::from_millis(2000), 5, sim::from_millis(1000)});
  int motion = out.add_task(dag.task(0));
  int plate = out.add_task(dag.task(1));
  int ocr = out.add_task(dag.task(2));
  int match = out.add_task({"watchlist-match", TaskClass::kDbQuery, 0.02,
                            200, 200, true});
  out.add_edge(motion, plate);
  out.add_edge(plate, ocr);
  out.add_edge(ocr, match);
  return out;
}

AppDag obd_diagnostics() {
  // §II-A: future CAVs build diagnostics in: collect real-time + historical
  // data, quietly analyze, predict faults.
  AppDag dag("obd-diagnostics", ServiceCategory::kRealTimeDiagnostics,
             QosSpec{sim::seconds(5), 2, sim::seconds(10)});
  int collect = dag.add_task(
      {"obd-collect", TaskClass::kDbQuery, 0.01, 4'000, 4'000, false});
  int analyze = dag.add_task(
      {"trend-analysis", TaskClass::kGeneric, 0.5, 4'000, 2'000, true});
  int predict = dag.add_task(
      {"fault-predict", TaskClass::kCnnInference, 1.0, 2'000, 500, true});
  dag.add_edge(collect, analyze);
  dag.add_edge(analyze, predict);
  return dag;
}

AppDag infotainment_chunk() {
  // §II-C: "video or audio data must be downloaded from the Internet and
  // then decoded locally".
  AppDag dag("infotainment-chunk", ServiceCategory::kInfotainment,
             QosSpec{sim::seconds(2), 1, sim::seconds(2)});
  int fetch = dag.add_task(
      {"chunk-fetch", TaskClass::kGeneric, 0.005, 2'000'000, 2'000'000,
       false});  // the download endpoint is the vehicle by definition
  int decode = dag.add_task(
      {"h264-decode", TaskClass::kCodec, 3.0, 2'000'000, 6'000'000, true});
  int render = dag.add_task(
      {"render-prep", TaskClass::kGeneric, 0.05, 6'000'000, 0, false});
  dag.add_edge(fetch, decode);
  dag.add_edge(decode, render);
  return dag;
}

AppDag speech_assistant() {
  AppDag dag("speech-assistant", ServiceCategory::kInfotainment,
             QosSpec{sim::from_millis(800), 3, 0});
  int audio = dag.add_task(
      {"audio-frontend", TaskClass::kAudio, 0.3, 160'000, 20'000, true});
  int nlp = dag.add_task(
      {"nlp-intent", TaskClass::kNlp, 4.0, 20'000, 1'000, true});
  dag.add_edge(audio, nlp);
  return dag;
}

AppDag pbeam_finetune() {
  // §IV-E: transfer learning of the compressed cBEAM on local DDI data.
  AppDag dag("pbeam-finetune", ServiceCategory::kThirdParty,
             QosSpec{0, 0, sim::minutes(30)});
  int fetch = dag.add_task(
      {"ddi-batch-fetch", TaskClass::kDbQuery, 0.05, 0, 8'000'000, false});
  int train = dag.add_task({"transfer-learn", TaskClass::kCnnTraining, 60.0,
                            8'000'000, 2'000'000, true});
  dag.add_edge(fetch, train);
  return dag;
}

std::vector<AppDag> all() {
  return {lane_detection(),
          vehicle_detection_haar(),
          vehicle_detection_tf(),
          inception_v3(),
          pedestrian_detection(),
          license_plate_pipeline(),
          a3_kidnapper_search(),
          obd_diagnostics(),
          infotainment_chunk(),
          speech_assistant(),
          pbeam_finetune()};
}

}  // namespace vdap::workload::apps
