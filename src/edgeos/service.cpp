#include "edgeos/service.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace vdap::edgeos {

bool PolymorphicService::validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  std::string dag_why;
  if (!dag.validate(&dag_why)) return fail(dag_why);
  if (pipelines.empty()) return fail("service has no pipelines");
  for (const Pipeline& p : pipelines) {
    if (p.name.empty()) return fail("unnamed pipeline");
    if (static_cast<int>(p.placement.size()) != dag.size()) {
      return fail("pipeline '" + p.name + "' does not cover every task");
    }
    for (int i = 0; i < dag.size(); ++i) {
      if (!dag.task(i).offloadable &&
          p.placement[static_cast<std::size_t>(i)] != net::Tier::kOnBoard) {
        return fail("pipeline '" + p.name + "' offloads pinned task '" +
                    dag.task(i).name + "'");
      }
    }
  }
  if (why != nullptr) why->clear();
  return true;
}

namespace {

Pipeline onboard_pipeline(const workload::AppDag& dag) {
  Pipeline p;
  p.name = "onboard";
  p.placement.assign(static_cast<std::size_t>(dag.size()),
                     net::Tier::kOnBoard);
  return p;
}

Pipeline remote_pipeline(const workload::AppDag& dag, net::Tier remote) {
  Pipeline p;
  p.name = "remote-" + std::string(net::to_string(remote));
  p.placement.resize(static_cast<std::size_t>(dag.size()));
  for (int i = 0; i < dag.size(); ++i) {
    p.placement[static_cast<std::size_t>(i)] =
        dag.task(i).offloadable ? remote : net::Tier::kOnBoard;
  }
  return p;
}

Pipeline split_pipeline(const workload::AppDag& dag, net::Tier remote) {
  // First stage(s) — the DAG's sources — stay on board (cheap filtering like
  // motion detection), everything downstream goes remote.
  Pipeline p;
  p.name = "split-" + std::string(net::to_string(remote));
  p.placement.resize(static_cast<std::size_t>(dag.size()));
  auto sources = dag.sources();
  for (int i = 0; i < dag.size(); ++i) {
    bool is_source =
        std::find(sources.begin(), sources.end(), i) != sources.end();
    p.placement[static_cast<std::size_t>(i)] =
        (is_source || !dag.task(i).offloadable) ? net::Tier::kOnBoard
                                                : remote;
  }
  return p;
}

}  // namespace

PolymorphicService make_polymorphic(const workload::AppDag& dag,
                                    net::Tier remote) {
  return make_polymorphic_multi(dag, {remote});
}

PolymorphicService make_path_split_pipelines(
    const workload::AppDag& dag, const std::vector<net::Tier>& path) {
  if (path.empty() || path.front() != net::Tier::kOnBoard) {
    throw std::invalid_argument("path must start at the on-board tier");
  }
  // Verify the DAG is a chain and get its stage order.
  std::vector<int> order = dag.topo_order();
  for (int id : order) {
    if (dag.successors(id).size() > 1 || dag.predecessors(id).size() > 1) {
      throw std::invalid_argument("path-split needs a chain DAG");
    }
  }

  PolymorphicService svc;
  svc.dag = dag;
  const int n = dag.size();
  const int k = static_cast<int>(path.size());

  // Enumerate monotone assignments: stage i gets path[level[i]] with
  // level non-decreasing along the chain. Recursion over cut positions.
  std::vector<int> level(static_cast<std::size_t>(n), 0);
  std::function<void(int, int)> emit = [&](int stage, int min_level) {
    if (stage == n) {
      Pipeline p;
      p.placement.resize(static_cast<std::size_t>(n));
      std::string name = "cut";
      for (int i = 0; i < n; ++i) {
        p.placement[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
            path[static_cast<std::size_t>(level[static_cast<std::size_t>(i)])];
        name += "-" + std::to_string(level[static_cast<std::size_t>(i)]);
      }
      p.name = name;
      svc.pipelines.push_back(std::move(p));
      return;
    }
    const workload::TaskSpec& t =
        dag.task(order[static_cast<std::size_t>(stage)]);
    if (!t.offloadable) {
      // Pinned stage: only valid while still on board.
      if (min_level == 0) {
        level[static_cast<std::size_t>(stage)] = 0;
        emit(stage + 1, 0);
      }
      return;
    }
    for (int l = min_level; l < k; ++l) {
      level[static_cast<std::size_t>(stage)] = l;
      emit(stage + 1, l);
    }
  };
  emit(0, 0);
  if (svc.pipelines.empty()) {
    throw std::invalid_argument(
        "no valid monotone placement (pinned stage after an offload?)");
  }
  return svc;
}

PolymorphicService make_polymorphic_multi(
    const workload::AppDag& dag, const std::vector<net::Tier>& remotes) {
  PolymorphicService svc;
  svc.dag = dag;
  svc.pipelines.push_back(onboard_pipeline(dag));
  for (net::Tier remote : remotes) {
    svc.pipelines.push_back(remote_pipeline(dag, remote));
    svc.pipelines.push_back(split_pipeline(dag, remote));
  }
  return svc;
}

}  // namespace vdap::edgeos
