// Elastic Management (§IV-C, Fig. 6): chooses, per release, the pipeline of
// a polymorphic service that best meets its QoS under the *current* network
// and compute conditions — "pipelines with lower response time can be
// chosen for the service, and some services will be hung up, which cannot
// be responded to within the required time no matter what the computational
// workload is executed in the cloud, at the edge, or in the collaborative
// cloud-edge environment."
//
// Estimation walks the DAG: per-task execution estimates come from the
// on-board registry (backlog-aware) or the shared remote tier servers;
// tier-crossing edges pay reliable-transfer time on the current paths.
// Execution is event-driven over the same model, so estimates and actuals
// diverge only through contention that arises after the decision — exactly
// the gap the paper's dynamic re-evaluation addresses.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "edgeos/service.hpp"
#include "net/topology.hpp"
#include "vcu/dsf.hpp"

namespace vdap::edgeos {

enum class Goal { kMinLatency, kMinEnergy };

struct PipelineEstimate {
  std::string pipeline;
  bool feasible = false;          // every task has a capable endpoint
  sim::SimDuration latency = 0;   // end-to-end, result back on the vehicle
  double onboard_energy_j = 0.0;  // vehicle-side compute + radio energy
};

/// Where one service run's wall time went (DESIGN.md §6d). These are
/// attribution *sums*, not a partition of latency: parallel DAG branches
/// overlap, and a failed attempt's network/compute time also lies inside
/// its failover window. The trace-based critical-path extractor
/// (telemetry/analysis/critical_path.hpp) computes the exclusive
/// decomposition offline; these streaming sums give the SLO evaluator its
/// attribution without trace parsing.
struct SegmentBreakdown {
  sim::SimDuration queue = 0;     // hung, waiting for any pipeline to fit
  sim::SimDuration network = 0;   // tier-crossing transfers, wall time
  sim::SimDuration compute = 0;   // device queueing + execution, all tasks
  sim::SimDuration failover = 0;  // attempts abandoned to mid-run failover

  /// The largest segment ("queue"/"net"/"compute"/"failover"); "compute"
  /// when all are zero (a run that never left the board lives there).
  std::string_view dominant() const;
};

struct ServiceRunReport {
  std::uint64_t run_id = 0;
  std::string service;
  std::string pipeline;           // empty when the service hung
  sim::SimTime released = 0;
  sim::SimTime finished = 0;
  bool ok = false;
  bool deadline_met = false;
  bool was_hung = false;          // spent time in the hung queue first
  int failovers = 0;              // mid-run pipeline re-decisions taken
  bool infeasible = false;        // abandoned: no pipeline could ever fit

  // Critical-path attribution (fed to the health layer, core/health.hpp).
  SegmentBreakdown segments;
  /// Attributed wall time per remote tier (transfers + remote compute),
  /// keyed by net::to_string(tier).
  std::map<std::string, sim::SimDuration> tier_time;
  /// The tier implicated in this run's fate: the tier whose transfer or
  /// device failed when a failover/hang was involved, else the remote tier
  /// with the most attributed time, else "on-board".
  std::string implicated_tier;

  sim::SimDuration latency() const { return finished - released; }
};

struct ElasticOptions {
  Goal goal = Goal::kMinLatency;
  /// Radio power draw while transferring, watts (vehicle-side energy cost
  /// of offloading; §III-B energy accounting).
  double radio_power_w = 2.5;
  /// Safety factor applied to estimates before the deadline check.
  double estimate_margin = 1.0;
  /// When a task fails mid-run (its tier's link died, its device went
  /// offline), re-choose a pipeline under the *current* conditions and
  /// restart instead of failing the run. Bounded by max_failovers; when no
  /// pipeline fits anymore the run hangs and reevaluate()/abandon_hung()
  /// decide its fate.
  bool failover = false;
  int max_failovers = 3;
};

class ElasticManager {
 public:
  ElasticManager(sim::Simulator& sim, vcu::Dsf& dsf, net::Topology& topo,
                 ElasticOptions options = {});

  /// Registers the shared compute endpoint serving a remote tier (the RSU
  /// box, the base-station box, the cloud pool). Without one, pipelines
  /// touching that tier are infeasible.
  void set_remote_device(net::Tier tier, hw::ComputeDevice* device);

  /// Estimates every pipeline of `svc` under current conditions.
  std::vector<PipelineEstimate> estimate(const PolymorphicService& svc) const;

  /// Picks the best feasible pipeline per the configured goal; nullptr when
  /// none meets the service's deadline (→ hang up). The returned pointer
  /// aliases `svc.pipelines` — it is only valid while `svc` lives.
  const Pipeline* choose(const PolymorphicService& svc) const;

  /// Releases one execution of `svc`. If no pipeline is currently feasible
  /// the run is hung and retried at every reevaluate() until it fits.
  std::uint64_t run(const PolymorphicService& svc,
                    std::function<void(const ServiceRunReport&)> done = nullptr);

  /// Retries hung services (call when conditions change or periodically —
  /// "the service will be hung up until meeting requirements again").
  void reevaluate();

  /// Reports every hung run as infeasible (ok=false, infeasible=true) and
  /// clears the hung queue — the explicit give-up the chaos invariants
  /// require ("every offloaded DAG completes or is reported infeasible").
  /// Returns the number of runs abandoned.
  std::size_t abandon_hung();

  /// Observer called with every final ServiceRunReport (completions,
  /// failures and abandon_hung()), after the per-run `done` callback. The
  /// health layer (core/health.hpp) feeds its SLO evaluator from this.
  void set_run_observer(std::function<void(const ServiceRunReport&)> obs) {
    observer_ = std::move(obs);
  }

  /// Health-driven ranking penalty: choose() multiplies the score of any
  /// pipeline placing a task on `tier` by `factor` (>1 demotes it). The
  /// deadline feasibility gate stays on the honest estimate, so penalties
  /// steer the choice between feasible variants without hanging
  /// otherwise-feasible services.
  void set_tier_penalty(net::Tier tier, double factor);
  void clear_tier_penalty(net::Tier tier);
  double tier_penalty(net::Tier tier) const;
  const std::map<net::Tier, double>& tier_penalties() const {
    return penalties_;
  }

  std::size_t hung_count() const { return hung_.size(); }
  /// Runs currently executing (in-flight DAGs, excluding hung ones).
  std::size_t active_runs() const { return runs_.size(); }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t failovers() const { return failovers_; }

  ElasticOptions& options() { return options_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  struct Run {
    // Internal key into runs_. A failover restart gets a FRESH internal id
    // so stale device/transfer callbacks from the abandoned attempt find
    // nothing and no-op; public_id (what run() returned and reports carry)
    // survives restarts.
    std::uint64_t id = 0;
    std::uint64_t public_id = 0;
    PolymorphicService svc;
    Pipeline pipeline;
    sim::SimTime released = 0;
    std::vector<int> waiting_preds;
    int remaining = 0;
    bool failed = false;
    bool was_hung = false;
    int failovers = 0;
    std::function<void(const ServiceRunReport&)> done;
    // Open telemetry span for the whole service run; survives failover
    // restarts and hang/resume cycles (it follows public_id, not id).
    std::uint64_t telem_span = 0;
    // Segment accounting (carried across failovers and hang/resume).
    sim::SimTime attempt_started = 0;
    SegmentBreakdown seg;
    std::map<std::string, sim::SimDuration> tier_time;
    std::string failed_tier;  // tier of the most recent task/transfer failure
  };
  struct HungRun {
    std::uint64_t id;  // public id
    PolymorphicService svc;
    sim::SimTime released;
    std::function<void(const ServiceRunReport&)> done;
    int failovers = 0;
    std::uint64_t telem_span = 0;
    sim::SimTime hung_since = 0;
    SegmentBreakdown seg;
    std::map<std::string, sim::SimDuration> tier_time;
    std::string failed_tier;
  };

  sim::SimDuration transfer_estimate(net::Tier from, net::Tier to,
                                     std::uint64_t bytes, bool* ok) const;
  void start(std::unique_ptr<Run> run);
  void dispatch(Run& run, int task_id);
  void compute(Run& run, int task_id);
  void complete_task(std::uint64_t run_id, int task_id, bool ok);
  void failover(std::uint64_t run_id);
  void finish(Run& run);
  void transfer(net::Tier from, net::Tier to, std::uint64_t bytes,
                std::function<void(bool)> done);
  /// transfer() plus per-run segment accounting and a "net" trace slice.
  void tracked_transfer(std::uint64_t run_id, net::Tier from, net::Tier to,
                        std::uint64_t bytes, std::function<void(bool)> done);
  double pipeline_penalty(const Pipeline& p) const;

  sim::Simulator& sim_;
  vcu::Dsf& dsf_;
  net::Topology& topo_;
  ElasticOptions options_;
  std::map<net::Tier, hw::ComputeDevice*> remote_;
  std::map<std::uint64_t, std::unique_ptr<Run>> runs_;
  std::vector<HungRun> hung_;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t failovers_ = 0;
  std::function<void(const ServiceRunReport&)> observer_;
  std::map<net::Tier, double> penalties_;
};

}  // namespace vdap::edgeos
