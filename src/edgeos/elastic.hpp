// Elastic Management (§IV-C, Fig. 6): chooses, per release, the pipeline of
// a polymorphic service that best meets its QoS under the *current* network
// and compute conditions — "pipelines with lower response time can be
// chosen for the service, and some services will be hung up, which cannot
// be responded to within the required time no matter what the computational
// workload is executed in the cloud, at the edge, or in the collaborative
// cloud-edge environment."
//
// Estimation walks the DAG: per-task execution estimates come from the
// on-board registry (backlog-aware) or the shared remote tier servers;
// tier-crossing edges pay reliable-transfer time on the current paths.
// Execution is event-driven over the same model, so estimates and actuals
// diverge only through contention that arises after the decision — exactly
// the gap the paper's dynamic re-evaluation addresses.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "edgeos/service.hpp"
#include "net/topology.hpp"
#include "vcu/dsf.hpp"

namespace vdap::edgeos {

enum class Goal { kMinLatency, kMinEnergy };

struct PipelineEstimate {
  std::string pipeline;
  bool feasible = false;          // every task has a capable endpoint
  sim::SimDuration latency = 0;   // end-to-end, result back on the vehicle
  double onboard_energy_j = 0.0;  // vehicle-side compute + radio energy
};

struct ServiceRunReport {
  std::uint64_t run_id = 0;
  std::string service;
  std::string pipeline;           // empty when the service hung
  sim::SimTime released = 0;
  sim::SimTime finished = 0;
  bool ok = false;
  bool deadline_met = false;
  bool was_hung = false;          // spent time in the hung queue first
  int failovers = 0;              // mid-run pipeline re-decisions taken
  bool infeasible = false;        // abandoned: no pipeline could ever fit

  sim::SimDuration latency() const { return finished - released; }
};

struct ElasticOptions {
  Goal goal = Goal::kMinLatency;
  /// Radio power draw while transferring, watts (vehicle-side energy cost
  /// of offloading; §III-B energy accounting).
  double radio_power_w = 2.5;
  /// Safety factor applied to estimates before the deadline check.
  double estimate_margin = 1.0;
  /// When a task fails mid-run (its tier's link died, its device went
  /// offline), re-choose a pipeline under the *current* conditions and
  /// restart instead of failing the run. Bounded by max_failovers; when no
  /// pipeline fits anymore the run hangs and reevaluate()/abandon_hung()
  /// decide its fate.
  bool failover = false;
  int max_failovers = 3;
};

class ElasticManager {
 public:
  ElasticManager(sim::Simulator& sim, vcu::Dsf& dsf, net::Topology& topo,
                 ElasticOptions options = {});

  /// Registers the shared compute endpoint serving a remote tier (the RSU
  /// box, the base-station box, the cloud pool). Without one, pipelines
  /// touching that tier are infeasible.
  void set_remote_device(net::Tier tier, hw::ComputeDevice* device);

  /// Estimates every pipeline of `svc` under current conditions.
  std::vector<PipelineEstimate> estimate(const PolymorphicService& svc) const;

  /// Picks the best feasible pipeline per the configured goal; nullptr when
  /// none meets the service's deadline (→ hang up). The returned pointer
  /// aliases `svc.pipelines` — it is only valid while `svc` lives.
  const Pipeline* choose(const PolymorphicService& svc) const;

  /// Releases one execution of `svc`. If no pipeline is currently feasible
  /// the run is hung and retried at every reevaluate() until it fits.
  std::uint64_t run(const PolymorphicService& svc,
                    std::function<void(const ServiceRunReport&)> done = nullptr);

  /// Retries hung services (call when conditions change or periodically —
  /// "the service will be hung up until meeting requirements again").
  void reevaluate();

  /// Reports every hung run as infeasible (ok=false, infeasible=true) and
  /// clears the hung queue — the explicit give-up the chaos invariants
  /// require ("every offloaded DAG completes or is reported infeasible").
  /// Returns the number of runs abandoned.
  std::size_t abandon_hung();

  std::size_t hung_count() const { return hung_.size(); }
  /// Runs currently executing (in-flight DAGs, excluding hung ones).
  std::size_t active_runs() const { return runs_.size(); }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t failovers() const { return failovers_; }

  ElasticOptions& options() { return options_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  struct Run {
    // Internal key into runs_. A failover restart gets a FRESH internal id
    // so stale device/transfer callbacks from the abandoned attempt find
    // nothing and no-op; public_id (what run() returned and reports carry)
    // survives restarts.
    std::uint64_t id = 0;
    std::uint64_t public_id = 0;
    PolymorphicService svc;
    Pipeline pipeline;
    sim::SimTime released = 0;
    std::vector<int> waiting_preds;
    int remaining = 0;
    bool failed = false;
    bool was_hung = false;
    int failovers = 0;
    std::function<void(const ServiceRunReport&)> done;
    // Open telemetry span for the whole service run; survives failover
    // restarts and hang/resume cycles (it follows public_id, not id).
    std::uint64_t telem_span = 0;
  };
  struct HungRun {
    std::uint64_t id;  // public id
    PolymorphicService svc;
    sim::SimTime released;
    std::function<void(const ServiceRunReport&)> done;
    int failovers = 0;
    std::uint64_t telem_span = 0;
  };

  sim::SimDuration transfer_estimate(net::Tier from, net::Tier to,
                                     std::uint64_t bytes, bool* ok) const;
  void start(std::unique_ptr<Run> run);
  void dispatch(Run& run, int task_id);
  void compute(Run& run, int task_id);
  void complete_task(std::uint64_t run_id, int task_id, bool ok);
  void failover(std::uint64_t run_id);
  void finish(Run& run);
  void transfer(net::Tier from, net::Tier to, std::uint64_t bytes,
                std::function<void(bool)> done);

  sim::Simulator& sim_;
  vcu::Dsf& dsf_;
  net::Topology& topo_;
  ElasticOptions options_;
  std::map<net::Tier, hw::ComputeDevice*> remote_;
  std::map<std::uint64_t, std::unique_ptr<Run>> runs_;
  std::vector<HungRun> hung_;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace vdap::edgeos
