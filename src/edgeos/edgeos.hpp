// EdgeOSv facade (§IV-C): the vehicle operating system assembling Elastic
// Management, Security, Data Sharing, and Privacy over the VCU's DSF, and
// carrying the DEIR properties inherited from EdgeOS_H [24]:
//   Differentiation — per-service pipeline choice and priorities (Elastic);
//   Extensibility  — hardware via the VCU registry, software via libvdap;
//   Isolation      — TEE/containers + the bus' auth/ACL (Security);
//   Reliability    — compromise detection/reinstall + Elastic hang-up.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "edgeos/elastic.hpp"
#include "edgeos/privacy.hpp"
#include "edgeos/security.hpp"
#include "edgeos/sharing.hpp"

namespace vdap::edgeos {

struct DeirReport {
  // Differentiation.
  std::map<std::string, std::map<std::string, std::uint64_t>>
      pipeline_use;  // service -> pipeline -> runs
  std::size_t hung_services = 0;
  // Extensibility.
  std::size_t registered_devices = 0;
  std::size_t installed_services = 0;
  // Isolation.
  std::uint64_t bus_rejected_auth = 0;
  std::uint64_t bus_rejected_acl = 0;
  // Reliability.
  std::uint64_t compromises_detected = 0;
  std::uint64_t reinstalls = 0;
};

class EdgeOSv {
 public:
  EdgeOSv(sim::Simulator& sim, vcu::Dsf& dsf, net::Topology& topo,
          std::uint64_t vehicle_secret = 0xC0FFEE,
          SecurityOptions sec = {}, ElasticOptions elastic = {});
  // (the ctor wires the bus' telemetry clock to sim.now())

  /// Installs a polymorphic service under an isolation mode: registers it
  /// with the security module (attestation key) and enrolls it on the bus.
  void install_service(PolymorphicService svc, IsolationMode mode);
  bool has_service(const std::string& name) const;

  /// Releases one execution of the installed service. The security module's
  /// isolation overhead is applied to every task's compute cost.
  std::uint64_t run_service(
      const std::string& name,
      std::function<void(const ServiceRunReport&)> done = nullptr);

  ElasticManager& elastic() { return elastic_; }
  SecurityModule& security() { return security_; }
  DataSharingBus& bus() { return bus_; }
  PseudonymManager& pseudonyms() { return pseudonyms_; }
  const LocationFuzzer& location_fuzzer() const { return fuzzer_; }

  /// Bus credential issued to a service at install time.
  std::uint64_t credential(const std::string& name) const;

  DeirReport deir_report() const;

 private:
  struct Installed {
    PolymorphicService svc;          // original demand
    PolymorphicService svc_scaled;   // compute scaled by isolation overhead
    std::uint64_t credential = 0;
  };

  sim::Simulator& sim_;
  vcu::Dsf& dsf_;
  ElasticManager elastic_;
  SecurityModule security_;
  DataSharingBus bus_;
  PseudonymManager pseudonyms_;
  LocationFuzzer fuzzer_;
  std::map<std::string, Installed> installed_;
  std::map<std::string, std::map<std::string, std::uint64_t>> pipeline_use_;
};

}  // namespace vdap::edgeos
