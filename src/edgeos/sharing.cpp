#include "edgeos/sharing.hpp"

#include "telemetry/telemetry.hpp"

namespace vdap::edgeos {

void DataSharingBus::note_grant(const char* op, const std::string& topic,
                                const std::string& service) {
  if (!telemetry::on()) return;
  json::Object args;
  args["op"] = op;
  args["topic"] = topic;
  args["service"] = service;
  telemetry::tracer().instant(now(), "sharing", "sharing.grant", "sharing",
                              std::move(args));
  telemetry::count("sharing.grants", {{"op", op}});
}

void DataSharingBus::note_deny(const char* op, const char* reason,
                               const std::string& topic,
                               const std::string& service) {
  if (!telemetry::on()) return;
  json::Object args;
  args["op"] = op;
  args["reason"] = reason;
  args["topic"] = topic;
  args["service"] = service;
  telemetry::tracer().instant(now(), "sharing", "sharing.deny", "sharing",
                              std::move(args));
  telemetry::count("sharing.denials", {{"reason", reason}});
}

std::uint64_t DataSharingBus::enroll(const std::string& service) {
  std::uint64_t cred = next_credential_;
  next_credential_ =
      next_credential_ * 2862933555777941757ULL + 3037000493ULL;
  credentials_[service] = cred;
  telemetry::count("sharing.enrollments");
  return cred;
}

bool DataSharingBus::enrolled(const std::string& service) const {
  return credentials_.count(service) > 0;
}

void DataSharingBus::grant_publish(const std::string& topic,
                                   const std::string& service) {
  pub_acl_[topic].insert(service);
  note_grant("publish", topic, service);
}

void DataSharingBus::grant_subscribe(const std::string& topic,
                                     const std::string& service) {
  sub_acl_[topic].insert(service);
  note_grant("subscribe", topic, service);
}

void DataSharingBus::revoke_publish(const std::string& topic,
                                    const std::string& service) {
  auto it = pub_acl_.find(topic);
  if (it != pub_acl_.end()) it->second.erase(service);
}

void DataSharingBus::revoke_subscribe(const std::string& topic,
                                      const std::string& service) {
  auto it = sub_acl_.find(topic);
  if (it != sub_acl_.end()) it->second.erase(service);
  auto sit = subs_.find(topic);
  if (sit != subs_.end()) {
    auto& v = sit->second;
    for (auto i = v.begin(); i != v.end();) {
      i = i->service == service ? v.erase(i) : i + 1;
    }
  }
}

bool DataSharingBus::can_publish(const std::string& topic,
                                 const std::string& service) const {
  auto it = pub_acl_.find(topic);
  return it != pub_acl_.end() && it->second.count(service) > 0;
}

bool DataSharingBus::can_subscribe(const std::string& topic,
                                   const std::string& service) const {
  auto it = sub_acl_.find(topic);
  return it != sub_acl_.end() && it->second.count(service) > 0;
}

bool DataSharingBus::authenticate(const std::string& service,
                                  std::uint64_t credential) const {
  auto it = credentials_.find(service);
  return it != credentials_.end() && it->second == credential;
}

int DataSharingBus::publish(const std::string& service,
                            std::uint64_t credential,
                            const std::string& topic, json::Value payload) {
  if (!authenticate(service, credential)) {
    ++rejected_auth_;
    note_deny("publish", "auth", topic, service);
    return -1;
  }
  if (!can_publish(topic, service)) {
    ++rejected_acl_;
    note_deny("publish", "acl", topic, service);
    return -1;
  }
  ++published_;
  telemetry::count("sharing.published", {{"topic", topic}});
  SharedMessage msg;
  msg.topic = topic;
  msg.publisher = service;
  msg.payload = std::move(payload);
  msg.seq = ++seq_;
  int count = 0;
  auto it = subs_.find(topic);
  if (it != subs_.end()) {
    for (const Subscription& s : it->second) {
      s.handler(msg);
      ++count;
      ++delivered_;
    }
  }
  telemetry::count("sharing.delivered", count);
  return count;
}

bool DataSharingBus::subscribe(const std::string& service,
                               std::uint64_t credential,
                               const std::string& topic, Handler handler) {
  if (!authenticate(service, credential)) {
    ++rejected_auth_;
    note_deny("subscribe", "auth", topic, service);
    return false;
  }
  if (!can_subscribe(topic, service)) {
    ++rejected_acl_;
    note_deny("subscribe", "acl", topic, service);
    return false;
  }
  subs_[topic].push_back({service, std::move(handler)});
  telemetry::count("sharing.subscriptions", {{"topic", topic}});
  return true;
}

}  // namespace vdap::edgeos
