#include "edgeos/edgeos.hpp"

#include <stdexcept>

namespace vdap::edgeos {

EdgeOSv::EdgeOSv(sim::Simulator& sim, vcu::Dsf& dsf, net::Topology& topo,
                 std::uint64_t vehicle_secret, SecurityOptions sec,
                 ElasticOptions elastic)
    : sim_(sim),
      dsf_(dsf),
      elastic_(sim, dsf, topo, elastic),
      security_(sim, sec),
      pseudonyms_(vehicle_secret, sim::minutes(5)),
      fuzzer_() {
  bus_.set_clock([&sim] { return sim.now(); });
  security_.start_monitor();
  // A reinstalled service gets a fresh bus credential: whatever the attacker
  // exfiltrated stops authenticating.
  security_.on_reinstall([this](const std::string& name) {
    auto it = installed_.find(name);
    if (it != installed_.end()) {
      it->second.credential = bus_.enroll(name);
    }
  });
}

void EdgeOSv::install_service(PolymorphicService svc, IsolationMode mode) {
  std::string why;
  if (!svc.validate(&why)) {
    throw std::invalid_argument("service invalid: " + why);
  }
  const std::string name = svc.dag.name();
  if (installed_.count(name) > 0) {
    throw std::invalid_argument("service '" + name + "' already installed");
  }
  security_.install(name, mode);
  Installed inst;
  inst.credential = bus_.enroll(name);
  inst.svc = svc;
  // Isolation costs compute: scale every task by the mode's overhead.
  double overhead = security_.compute_overhead(name);
  for (int i = 0; i < svc.dag.size(); ++i) {
    svc.dag.task(i).gflop *= overhead;
  }
  inst.svc_scaled = std::move(svc);
  installed_[name] = std::move(inst);
}

bool EdgeOSv::has_service(const std::string& name) const {
  return installed_.count(name) > 0;
}

std::uint64_t EdgeOSv::run_service(
    const std::string& name,
    std::function<void(const ServiceRunReport&)> done) {
  auto it = installed_.find(name);
  if (it == installed_.end()) {
    throw std::invalid_argument("service '" + name + "' not installed");
  }
  if (security_.state(name) != ServiceState::kRunning) {
    // Compromised or reinstalling services do not run (Isolation +
    // Reliability): report failure immediately.
    ServiceRunReport rep;
    rep.service = name;
    rep.released = rep.finished = sim_.now();
    rep.ok = false;
    if (done) done(rep);
    return 0;
  }
  return elastic_.run(
      it->second.svc_scaled,
      [this, name, done](const ServiceRunReport& rep) {
        if (rep.ok) ++pipeline_use_[name][rep.pipeline];
        if (done) done(rep);
      });
}

std::uint64_t EdgeOSv::credential(const std::string& name) const {
  auto it = installed_.find(name);
  if (it == installed_.end()) {
    throw std::invalid_argument("service '" + name + "' not installed");
  }
  return it->second.credential;
}

DeirReport EdgeOSv::deir_report() const {
  DeirReport r;
  r.pipeline_use = pipeline_use_;
  r.hung_services = elastic_.hung_count();
  r.registered_devices = dsf_.registry().size();
  r.installed_services = installed_.size();
  r.bus_rejected_auth = bus_.rejected_auth();
  r.bus_rejected_acl = bus_.rejected_acl();
  r.compromises_detected = security_.compromises_detected();
  r.reinstalls = security_.reinstalls();
  return r;
}

}  // namespace vdap::edgeos
