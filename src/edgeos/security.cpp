#include "edgeos/security.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"

namespace vdap::edgeos {

SecurityModule::SecurityModule(sim::Simulator& sim, SecurityOptions options)
    : sim_(sim), options_(options) {
  // Each module (one per vehicle) derives its own key chain, so containers
  // migrated between vehicles are re-keyed under a different root of trust.
  static std::uint64_t instance_counter = 0;
  next_key_ ^= ++instance_counter * 0xbf58476d1ce4e5b9ULL;
}

std::uint64_t SecurityModule::install(const std::string& service,
                                      IsolationMode mode,
                                      std::uint64_t state_bytes) {
  if (services_.count(service) > 0) {
    throw std::invalid_argument("service '" + service + "' already installed");
  }
  Entry e;
  e.mode = mode;
  e.state = ServiceState::kRunning;
  e.key = next_key_;
  next_key_ = next_key_ * 6364136223846793005ULL + 1442695040888963407ULL;
  e.state_bytes = state_bytes;
  services_[service] = e;
  return e.key;
}

void SecurityModule::uninstall(const std::string& service) {
  if (services_.erase(service) == 0) {
    throw std::invalid_argument("service '" + service + "' not installed");
  }
}

bool SecurityModule::installed(const std::string& service) const {
  return services_.count(service) > 0;
}

const SecurityModule::Entry& SecurityModule::entry(
    const std::string& service) const {
  auto it = services_.find(service);
  if (it == services_.end()) {
    throw std::invalid_argument("service '" + service + "' not installed");
  }
  return it->second;
}

SecurityModule::Entry& SecurityModule::entry(const std::string& service) {
  return const_cast<Entry&>(
      static_cast<const SecurityModule*>(this)->entry(service));
}

IsolationMode SecurityModule::mode(const std::string& service) const {
  return entry(service).mode;
}

ServiceState SecurityModule::state(const std::string& service) const {
  return entry(service).state;
}

double SecurityModule::compute_overhead(const std::string& service) const {
  switch (entry(service).mode) {
    case IsolationMode::kTee: return options_.tee_overhead;
    case IsolationMode::kContainer: return options_.container_overhead;
    case IsolationMode::kNone: return 1.0;
  }
  return 1.0;
}

std::optional<std::uint64_t> SecurityModule::attest(
    const std::string& service) const {
  const Entry& e = entry(service);
  if (e.state != ServiceState::kRunning) return std::nullopt;
  // Token binds the service identity to its enclave/container key.
  return util::fnv1a(service) ^ e.key;
}

bool SecurityModule::verify(const std::string& service,
                            std::uint64_t token) const {
  auto it = services_.find(service);
  if (it == services_.end()) return false;
  if (it->second.state != ServiceState::kRunning) return false;
  return token == (util::fnv1a(service) ^ it->second.key);
}

bool SecurityModule::compromise(const std::string& service) {
  Entry& e = entry(service);
  if (e.mode == IsolationMode::kTee) {
    // Encrypted instructions in memory: the internal attack fails (§IV-C).
    if (telemetry::on()) {
      json::Object args;
      args["service"] = service;
      telemetry::tracer().instant(sim_.now(), "security",
                                  "attack-blocked:" + service, "security",
                                  std::move(args));
      telemetry::count("security.attacks_blocked");
    }
    return false;
  }
  if (e.state == ServiceState::kRunning) e.state = ServiceState::kCompromised;
  if (telemetry::on() && e.state == ServiceState::kCompromised) {
    json::Object args;
    args["service"] = service;
    telemetry::tracer().instant(sim_.now(), "security",
                                "compromised:" + service, "security",
                                std::move(args));
    telemetry::count("security.compromised");
  }
  return e.state == ServiceState::kCompromised;
}

void SecurityModule::start_monitor() {
  if (monitor_ && monitor_->active()) return;
  monitor_ = sim_.every(options_.monitor_interval, [this]() { scan(); });
}

void SecurityModule::stop_monitor() {
  if (monitor_) monitor_->stop();
}

bool SecurityModule::crash(const std::string& service) {
  Entry& e = entry(service);
  if (e.state != ServiceState::kRunning) return false;
  ++crashes_;
  telemetry::count("security.crashes");
  e.state = ServiceState::kReinstalling;
  schedule_reinstall(service);
  return true;
}

void SecurityModule::scan() {
  for (auto& [name, e] : services_) {
    if (e.state != ServiceState::kCompromised) continue;
    ++detected_;
    telemetry::count("security.detected");
    e.state = ServiceState::kReinstalling;
    schedule_reinstall(name);
  }
}

void SecurityModule::schedule_reinstall(const std::string& service) {
  std::uint64_t span = 0;
  if (telemetry::on()) {
    json::Object args;
    args["service"] = service;
    span = telemetry::tracer().begin(sim_.now(), "security",
                                     "reinstall:" + service, "security",
                                     std::move(args));
  }
  // Fresh key on reinstall: stolen credentials die with the old instance.
  sim_.after(options_.reinstall_duration, [this, service, span]() {
    if (telemetry::on()) telemetry::tracer().end(sim_.now(), span);
    auto it = services_.find(service);
    if (it == services_.end()) return;  // uninstalled meanwhile
    it->second.state = ServiceState::kRunning;
    it->second.key = next_key_;
    next_key_ = next_key_ * 6364136223846793005ULL + 1442695040888963407ULL;
    ++reinstalls_;
    telemetry::count("security.reinstalls");
    if (reinstall_cb_) reinstall_cb_(service);
  });
}

std::optional<ContainerImage> SecurityModule::migrate_out(
    const std::string& service) {
  Entry& e = entry(service);
  if (e.mode == IsolationMode::kTee) return std::nullopt;
  if (e.state != ServiceState::kRunning) return std::nullopt;
  ContainerImage img;
  img.service = service;
  img.mode = e.mode;
  img.state_bytes = e.state_bytes;
  img.attestation_key = e.key;
  services_.erase(service);
  return img;
}

void SecurityModule::migrate_in(const ContainerImage& image) {
  if (services_.count(image.service) > 0) {
    throw std::invalid_argument("service '" + image.service +
                                "' already present");
  }
  Entry e;
  e.mode = image.mode;
  e.state = ServiceState::kRunning;
  // A migrated container is re-keyed under the local root of trust; the
  // foreign key is not honored ("a neighbor vehicle ... may not be
  // trustworthy").
  e.key = next_key_;
  next_key_ = next_key_ * 6364136223846793005ULL + 1442695040888963407ULL;
  e.state_bytes = image.state_bytes;
  services_[image.service] = e;
}

std::vector<std::string> SecurityModule::services() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, e] : services_) out.push_back(name);
  return out;
}

}  // namespace vdap::edgeos
