#include "edgeos/elastic.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace vdap::edgeos {

namespace {

// Opens the whole-service-run telemetry span ('b' on the "elastic" track).
std::uint64_t open_run_span(sim::SimTime now, const std::string& service,
                            std::uint64_t public_id,
                            const std::string& pipeline) {
  json::Object args;
  args["run"] = static_cast<std::int64_t>(public_id);
  args["pipeline"] = pipeline;
  return telemetry::tracer().begin(now, "service", service, "elastic",
                                   std::move(args));
}

// The tier a run's fate is pinned on: an explicit failure wins, then the
// remote tier with the most attributed time, then the board itself.
std::string implicated_tier_of(
    const std::string& failed_tier,
    const std::map<std::string, sim::SimDuration>& tier_time) {
  if (!failed_tier.empty()) return failed_tier;
  std::string best = "on-board";
  sim::SimDuration most = 0;
  for (const auto& [tier, d] : tier_time) {
    if (d > most) {
      most = d;
      best = tier;
    }
  }
  return best;
}

}  // namespace

std::string_view SegmentBreakdown::dominant() const {
  std::string_view name = "compute";
  sim::SimDuration top = compute;
  if (queue > top) {
    top = queue;
    name = "queue";
  }
  if (network > top) {
    top = network;
    name = "net";
  }
  if (failover > top) {
    name = "failover";
  }
  return name;
}

ElasticManager::ElasticManager(sim::Simulator& sim, vcu::Dsf& dsf,
                               net::Topology& topo, ElasticOptions options)
    : sim_(sim), dsf_(dsf), topo_(topo), options_(options) {}

void ElasticManager::set_tier_penalty(net::Tier tier, double factor) {
  penalties_[tier] = factor;
}

void ElasticManager::clear_tier_penalty(net::Tier tier) {
  penalties_.erase(tier);
}

double ElasticManager::tier_penalty(net::Tier tier) const {
  auto it = penalties_.find(tier);
  return it == penalties_.end() ? 1.0 : it->second;
}

double ElasticManager::pipeline_penalty(const Pipeline& p) const {
  if (penalties_.empty()) return 1.0;
  double f = 1.0;
  for (net::Tier t : p.placement) {
    auto it = penalties_.find(t);
    if (it != penalties_.end()) f = std::max(f, it->second);
  }
  return f;
}

void ElasticManager::set_remote_device(net::Tier tier,
                                       hw::ComputeDevice* device) {
  if (tier == net::Tier::kOnBoard) {
    throw std::invalid_argument("on-board execution goes through DSF");
  }
  remote_[tier] = device;
}

sim::SimDuration ElasticManager::transfer_estimate(net::Tier from,
                                                   net::Tier to,
                                                   std::uint64_t bytes,
                                                   bool* ok) const {
  *ok = true;
  if (from == to || bytes == 0) return 0;
  sim::SimDuration total = 0;
  // tier→vehicle leg.
  if (from != net::Tier::kOnBoard) {
    if (!topo_.available(from)) {
      *ok = false;
      return 0;
    }
    total += topo_.downlink(from).estimate_reliable(bytes);
  }
  // vehicle→tier leg.
  if (to != net::Tier::kOnBoard) {
    if (!topo_.available(to)) {
      *ok = false;
      return 0;
    }
    total += topo_.uplink(to).estimate_reliable(bytes);
  }
  return total;
}

std::vector<PipelineEstimate> ElasticManager::estimate(
    const PolymorphicService& svc) const {
  std::string why;
  if (!svc.validate(&why)) {
    throw std::invalid_argument("polymorphic service invalid: " + why);
  }
  const workload::AppDag& dag = svc.dag;
  auto order = dag.topo_order();

  std::vector<PipelineEstimate> out;
  for (const Pipeline& p : svc.pipelines) {
    PipelineEstimate est;
    est.pipeline = p.name;
    est.feasible = true;
    std::vector<double> finish_s(static_cast<std::size_t>(dag.size()), 0.0);
    double energy = 0.0;

    for (int id : order) {
      if (!est.feasible) break;
      const workload::TaskSpec& t = dag.task(id);
      net::Tier tier = p.placement[static_cast<std::size_t>(id)];

      // Earliest time inputs are present at `tier`.
      double ready = 0.0;
      bool ok = true;
      if (dag.predecessors(id).empty()) {
        // Sensor data originates on the vehicle.
        sim::SimDuration xfer =
            transfer_estimate(net::Tier::kOnBoard, tier, t.input_bytes, &ok);
        if (!ok) {
          est.feasible = false;
          break;
        }
        ready = sim::to_seconds(xfer);
        if (tier != net::Tier::kOnBoard) {
          energy += options_.radio_power_w * sim::to_seconds(xfer);
        }
      } else {
        for (int pr : dag.predecessors(id)) {
          net::Tier pt = p.placement[static_cast<std::size_t>(pr)];
          sim::SimDuration xfer = transfer_estimate(
              pt, tier, dag.task(pr).output_bytes, &ok);
          if (!ok) break;
          if (pt != tier &&
              (pt == net::Tier::kOnBoard || tier == net::Tier::kOnBoard)) {
            energy += options_.radio_power_w * sim::to_seconds(xfer);
          }
          ready = std::max(ready,
                           finish_s[static_cast<std::size_t>(pr)] +
                               sim::to_seconds(xfer));
        }
        if (!ok) {
          est.feasible = false;
          break;
        }
      }

      // Execution estimate at the placement.
      double exec_s = -1.0;
      if (tier == net::Tier::kOnBoard) {
        auto cands = dsf_.registry().candidates(dag.name(), t.cls);
        sim::SimTime best = std::numeric_limits<sim::SimTime>::max();
        const hw::ComputeDevice* best_dev = nullptr;
        for (hw::ComputeDevice* d : cands) {
          auto f = d->estimate_finish(t.cls, t.gflop);
          if (f && *f < best) {
            best = *f;
            best_dev = d;
          }
        }
        if (best_dev != nullptr) {
          exec_s = sim::to_seconds(best - sim_.now());
          double tput = best_dev->spec().throughput(t.cls);
          double busy_s = t.gflop / tput;
          int slots = best_dev->spec().slots;
          energy += busy_s *
                    (best_dev->spec().max_power_w -
                     best_dev->spec().idle_power_w) /
                    (slots > 0 ? slots : 1);
        }
      } else {
        auto it = remote_.find(tier);
        if (it != remote_.end() && it->second != nullptr &&
            topo_.available(tier)) {
          auto f = it->second->estimate_finish(t.cls, t.gflop);
          if (f) exec_s = sim::to_seconds(*f - sim_.now());
        }
      }
      if (exec_s < 0.0) {
        est.feasible = false;
        break;
      }
      finish_s[static_cast<std::size_t>(id)] = ready + exec_s;
    }

    if (est.feasible) {
      // The result must land back on the vehicle.
      double end = 0.0;
      for (int s : dag.sinks()) {
        net::Tier tier = p.placement[static_cast<std::size_t>(s)];
        bool ok = true;
        sim::SimDuration xfer = transfer_estimate(
            tier, net::Tier::kOnBoard, dag.task(s).output_bytes, &ok);
        if (!ok) {
          est.feasible = false;
          break;
        }
        if (tier != net::Tier::kOnBoard) {
          energy += options_.radio_power_w * sim::to_seconds(xfer);
        }
        end = std::max(end, finish_s[static_cast<std::size_t>(s)] +
                                sim::to_seconds(xfer));
      }
      est.latency = sim::from_seconds(end * options_.estimate_margin);
      est.onboard_energy_j = energy;
    }
    out.push_back(est);
  }
  return out;
}

const Pipeline* ElasticManager::choose(const PolymorphicService& svc) const {
  auto ests = estimate(svc);
  const workload::QosSpec& qos = svc.dag.qos();
  const Pipeline* best = nullptr;
  double best_score = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < ests.size(); ++i) {
    const PipelineEstimate& e = ests[i];
    if (!e.feasible) continue;
    // The deadline gate uses the honest estimate; health penalties only
    // re-rank the feasible variants (so a breach steers, never hangs).
    if (qos.has_deadline() && e.latency > qos.deadline) continue;
    double score = options_.goal == Goal::kMinLatency
                       ? sim::to_seconds(e.latency)
                       : e.onboard_energy_j;
    score *= pipeline_penalty(svc.pipelines[i]);
    if (best == nullptr || score < best_score) {
      best = &svc.pipelines[i];
      best_score = score;
    }
  }
  return best;
}

std::uint64_t ElasticManager::run(
    const PolymorphicService& svc,
    std::function<void(const ServiceRunReport&)> done) {
  const Pipeline* choice = choose(svc);
  std::uint64_t id = next_id_++;
  if (choice == nullptr) {
    std::uint64_t span = 0;
    if (telemetry::on()) {
      span = open_run_span(sim_.now(), svc.dag.name(), id, "(hung)");
      telemetry::count("elastic.hung");
    }
    HungRun h;
    h.id = id;
    h.svc = svc;
    h.released = sim_.now();
    h.done = std::move(done);
    h.telem_span = span;
    h.hung_since = sim_.now();
    hung_.push_back(std::move(h));
    return id;
  }
  auto run = std::make_unique<Run>();
  run->id = id;
  run->public_id = id;
  run->svc = svc;
  run->pipeline = *choice;
  run->released = sim_.now();
  run->done = std::move(done);
  if (telemetry::on()) {
    run->telem_span =
        open_run_span(sim_.now(), svc.dag.name(), id, run->pipeline.name);
    telemetry::count("elastic.released",
                     {{"pipeline", run->pipeline.name}});
  }
  start(std::move(run));
  return id;
}

void ElasticManager::reevaluate() {
  std::vector<HungRun> still_hung;
  for (HungRun& h : hung_) {
    const Pipeline* choice = choose(h.svc);
    if (choice == nullptr) {
      still_hung.push_back(std::move(h));
      continue;
    }
    Pipeline chosen = *choice;  // copy: `choice` aliases h.svc.pipelines
    auto run = std::make_unique<Run>();
    run->id = next_id_++;
    run->public_id = h.id;
    run->svc = std::move(h.svc);
    run->pipeline = std::move(chosen);
    run->released = h.released;  // latency counts the hung time
    run->was_hung = true;
    run->failovers = h.failovers;
    run->done = std::move(h.done);
    run->telem_span = h.telem_span;
    run->seg = h.seg;
    run->tier_time = std::move(h.tier_time);
    run->failed_tier = std::move(h.failed_tier);
    sim::SimDuration waited = sim_.now() - h.hung_since;
    run->seg.queue += waited;
    if (telemetry::on() && waited > 0) {
      json::Object seg_args;
      seg_args["run"] = static_cast<std::int64_t>(run->public_id);
      telemetry::tracer().complete(h.hung_since, waited, "segment", "queue",
                                   "elastic/segments", std::move(seg_args));
    }
    if (telemetry::on()) {
      json::Object args;
      args["run"] = static_cast<std::int64_t>(run->public_id);
      args["pipeline"] = run->pipeline.name;
      telemetry::tracer().instant(sim_.now(), "service", "elastic.resume",
                                  "elastic", std::move(args));
      telemetry::count("elastic.resumed");
    }
    start(std::move(run));
  }
  hung_ = std::move(still_hung);
}

std::size_t ElasticManager::abandon_hung() {
  std::vector<HungRun> hung = std::move(hung_);
  hung_.clear();
  for (HungRun& h : hung) {
    ServiceRunReport rep;
    rep.run_id = h.id;
    rep.service = h.svc.dag.name();
    rep.released = h.released;
    rep.finished = sim_.now();
    rep.ok = false;
    rep.was_hung = true;
    rep.infeasible = true;
    rep.failovers = h.failovers;
    rep.segments = h.seg;
    rep.segments.queue += sim_.now() - h.hung_since;
    rep.tier_time = std::move(h.tier_time);
    rep.implicated_tier = implicated_tier_of(h.failed_tier, rep.tier_time);
    ++failed_;
    if (telemetry::on()) {
      sim::SimDuration waited = sim_.now() - h.hung_since;
      if (waited > 0) {
        json::Object seg_args;
        seg_args["run"] = static_cast<std::int64_t>(h.id);
        telemetry::tracer().complete(h.hung_since, waited, "segment", "queue",
                                     "elastic/segments", std::move(seg_args));
      }
      if (h.telem_span != 0) {
        json::Object args;
        args["infeasible"] = true;
        telemetry::tracer().end(sim_.now(), h.telem_span, std::move(args));
      }
      telemetry::count("elastic.abandoned");
      telemetry::count("elastic.runs",
                       {{"service", rep.service}, {"ok", "false"}});
    }
    if (h.done) h.done(rep);
    if (observer_) observer_(rep);
  }
  return hung.size();
}

void ElasticManager::start(std::unique_ptr<Run> run) {
  Run& r = *run;
  r.attempt_started = sim_.now();
  const workload::AppDag& dag = r.svc.dag;
  r.remaining = dag.size();
  r.waiting_preds.resize(static_cast<std::size_t>(dag.size()));
  for (int i = 0; i < dag.size(); ++i) {
    r.waiting_preds[static_cast<std::size_t>(i)] =
        static_cast<int>(dag.predecessors(i).size());
  }
  std::uint64_t id = r.id;
  std::vector<int> sources = r.svc.dag.sources();
  runs_[id] = std::move(run);
  for (int src : sources) {
    // dispatch() can fail synchronously and finalize (erase) the run.
    auto it = runs_.find(id);
    if (it == runs_.end()) break;
    dispatch(*it->second, src);
  }
}

void ElasticManager::transfer(net::Tier from, net::Tier to,
                              std::uint64_t bytes,
                              std::function<void(bool)> done) {
  if (from == to || bytes == 0) {
    done(true);
    return;
  }
  auto up_leg = [this, to, bytes, done](bool ok) {
    if (!ok || to == net::Tier::kOnBoard) {
      done(ok);
      return;
    }
    topo_.transfer_up(to, bytes, [done](const net::TransferOutcome& o) {
      done(o.delivered);
    });
  };
  if (from != net::Tier::kOnBoard) {
    topo_.transfer_down(from, bytes,
                        [up_leg](const net::TransferOutcome& o) {
                          up_leg(o.delivered);
                        });
  } else {
    up_leg(true);
  }
}

void ElasticManager::tracked_transfer(std::uint64_t run_id, net::Tier from,
                                      net::Tier to, std::uint64_t bytes,
                                      std::function<void(bool)> done) {
  sim::SimTime t0 = sim_.now();
  transfer(from, to, bytes,
           [this, run_id, from, to, t0, done = std::move(done)](bool ok) {
             auto it = runs_.find(run_id);
             if (it != runs_.end()) {
               Run& r = *it->second;
               sim::SimDuration d = sim_.now() - t0;
               r.seg.network += d;
               // Attribute the wall time (and any failure) to the remote
               // endpoint; for a remote→remote edge, the `from` leg runs
               // first and gets the blame.
               net::Tier remote = from != net::Tier::kOnBoard ? from : to;
               if (remote != net::Tier::kOnBoard) {
                 r.tier_time[std::string(net::to_string(remote))] += d;
                 if (!ok) r.failed_tier = std::string(net::to_string(remote));
               }
               if (from != net::Tier::kOnBoard && to != net::Tier::kOnBoard &&
                   from != to) {
                 r.tier_time[std::string(net::to_string(to))] += d;
               }
               if (telemetry::on() && d > 0) {
                 json::Object args;
                 args["run"] = static_cast<std::int64_t>(r.public_id);
                 args["tier"] = std::string(net::to_string(remote));
                 if (!ok) args["failed"] = true;
                 telemetry::tracer().complete(t0, d, "segment", "net",
                                              "elastic/segments",
                                              std::move(args));
               }
             }
             done(ok);
           });
}

void ElasticManager::dispatch(Run& run, int task_id) {
  const workload::TaskSpec& t = run.svc.dag.task(task_id);
  net::Tier tier = run.pipeline.placement[static_cast<std::size_t>(task_id)];
  std::uint64_t id = run.id;
  if (run.svc.dag.predecessors(task_id).empty() &&
      tier != net::Tier::kOnBoard) {
    // Ship the sensor input up before computing.
    tracked_transfer(id, net::Tier::kOnBoard, tier, t.input_bytes,
                     [this, id, task_id](bool ok) {
                       auto it = runs_.find(id);
                       if (it == runs_.end()) return;
                       if (!ok) {
                         complete_task(id, task_id, false);
                       } else {
                         compute(*it->second, task_id);
                       }
                     });
  } else {
    compute(run, task_id);
  }
}

void ElasticManager::compute(Run& run, int task_id) {
  const workload::TaskSpec& t = run.svc.dag.task(task_id);
  net::Tier tier = run.pipeline.placement[static_cast<std::size_t>(task_id)];
  std::uint64_t id = run.id;

  hw::ComputeDevice* dev = nullptr;
  if (tier == net::Tier::kOnBoard) {
    auto cands = dsf_.registry().candidates(run.svc.dag.name(), t.cls);
    sim::SimTime best = std::numeric_limits<sim::SimTime>::max();
    for (hw::ComputeDevice* d : cands) {
      auto f = d->estimate_finish(t.cls, t.gflop);
      if (f && *f < best) {
        best = *f;
        dev = d;
      }
    }
  } else {
    auto it = remote_.find(tier);
    dev = it != remote_.end() ? it->second : nullptr;
  }
  if (dev == nullptr) {
    auto it = runs_.find(id);
    if (it != runs_.end() && tier != net::Tier::kOnBoard) {
      it->second->failed_tier = std::string(net::to_string(tier));
    }
    complete_task(id, task_id, false);
    return;
  }
  dev->submit({t.cls, t.gflop, run.svc.dag.qos().priority,
               [this, id, task_id, tier](const hw::WorkReport& rep) {
                 auto it = runs_.find(id);
                 if (it != runs_.end()) {
                   Run& r = *it->second;
                   sim::SimDuration d = rep.finished - rep.submitted;
                   r.seg.compute += d;
                   if (tier != net::Tier::kOnBoard) {
                     r.tier_time[std::string(net::to_string(tier))] += d;
                     if (!rep.ok) {
                       r.failed_tier = std::string(net::to_string(tier));
                     }
                   }
                   if (telemetry::on() && d > 0) {
                     json::Object args;
                     args["run"] = static_cast<std::int64_t>(r.public_id);
                     args["tier"] = std::string(net::to_string(tier));
                     args["device"] = rep.device;
                     telemetry::tracer().complete(rep.submitted, d, "segment",
                                                  "compute",
                                                  "elastic/segments",
                                                  std::move(args));
                   }
                 }
                 complete_task(id, task_id, rep.ok);
               }});
}

void ElasticManager::complete_task(std::uint64_t run_id, int task_id,
                                   bool ok) {
  auto it = runs_.find(run_id);
  if (it == runs_.end()) return;
  Run& run = *it->second;
  const workload::AppDag& dag = run.svc.dag;
  net::Tier tier = run.pipeline.placement[static_cast<std::size_t>(task_id)];

  if (!ok && !run.failed && options_.failover &&
      run.failovers < options_.max_failovers) {
    // First failure of this attempt: re-decide under current conditions
    // instead of failing the whole run. failover() erases run_id, so any
    // other in-flight callbacks of this attempt no-op.
    failover(run_id);
    return;
  }
  if (!ok && !run.failed) {
    run.failed = true;
  }

  // Sinks ship their result back to the vehicle before counting complete.
  bool is_sink = dag.successors(task_id).empty();
  if (ok && is_sink && tier != net::Tier::kOnBoard) {
    std::uint64_t bytes = dag.task(task_id).output_bytes;
    // Re-enter completion with the tier rewritten so we don't loop.
    tracked_transfer(run_id, tier, net::Tier::kOnBoard, bytes,
                     [this, run_id, task_id](bool delivered) {
                       auto rit = runs_.find(run_id);
                       if (rit == runs_.end()) return;
                       Run& r = *rit->second;
                       r.pipeline.placement[static_cast<std::size_t>(task_id)] =
                           net::Tier::kOnBoard;
                       complete_task(run_id, task_id, delivered);
                     });
    return;
  }

  --run.remaining;
  if (ok && !run.failed) {
    std::vector<int> ready;
    for (int s : dag.successors(task_id)) {
      int& waiting = run.waiting_preds[static_cast<std::size_t>(s)];
      if (--waiting == 0) ready.push_back(s);
    }
    std::uint64_t rid = run.id;
    for (int s : ready) {
      // A synchronous failure inside dispatch/complete can finalize (erase)
      // the run; re-resolve it every iteration.
      auto rit = runs_.find(rid);
      if (rit == runs_.end()) return;
      Run& r = *rit->second;
      // Pay the tier-crossing transfer on the slowest edge, then dispatch.
      net::Tier st = r.pipeline.placement[static_cast<std::size_t>(s)];
      if (st != tier) {
        std::uint64_t bytes = r.svc.dag.task(task_id).output_bytes;
        tracked_transfer(rid, tier, st, bytes, [this, rid, s](bool delivered) {
          auto rit2 = runs_.find(rid);
          if (rit2 == runs_.end()) return;
          if (!delivered) {
            complete_task(rid, s, false);
          } else {
            dispatch(*rit2->second, s);
          }
        });
      } else {
        dispatch(r, s);
      }
    }
    if (runs_.find(rid) == runs_.end()) return;
  } else if (!ok) {
    // Retire never-started tasks so the run can finalize (mirrors DSF).
    for (int i = 0; i < dag.size(); ++i) {
      if (run.waiting_preds[static_cast<std::size_t>(i)] > 0) {
        run.waiting_preds[static_cast<std::size_t>(i)] = -1;
        --run.remaining;
      }
    }
  }

  if (run.remaining <= 0) finish(run);
}

void ElasticManager::failover(std::uint64_t run_id) {
  auto it = runs_.find(run_id);
  if (it == runs_.end()) return;
  std::unique_ptr<Run> old = std::move(it->second);
  runs_.erase(it);
  ++failovers_;
  // The whole abandoned attempt is failover-wasted time; the net/compute
  // accounted inside it stays too (sums attribute, they don't partition).
  sim::SimDuration wasted = sim_.now() - old->attempt_started;
  old->seg.failover += wasted;
  const Pipeline* choice = choose(old->svc);
  if (telemetry::on()) {
    if (wasted > 0) {
      json::Object seg_args;
      seg_args["run"] = static_cast<std::int64_t>(old->public_id);
      if (!old->failed_tier.empty()) seg_args["tier"] = old->failed_tier;
      telemetry::tracer().complete(old->attempt_started, wasted, "segment",
                                   "failover", "elastic/segments",
                                   std::move(seg_args));
    }
    json::Object args;
    args["run"] = static_cast<std::int64_t>(old->public_id);
    args["failovers"] = old->failovers + 1;
    args["rechosen"] = choice != nullptr ? choice->name : "(hung)";
    telemetry::tracer().instant(sim_.now(), "service", "elastic.failover",
                                "elastic", std::move(args));
    telemetry::count("elastic.failovers");
  }
  if (choice == nullptr) {
    // Nothing fits right now: park it; reevaluate() retries when
    // conditions change, abandon_hung() reports it infeasible.
    HungRun h;
    h.id = old->public_id;
    h.svc = std::move(old->svc);
    h.released = old->released;
    h.done = std::move(old->done);
    h.failovers = old->failovers + 1;
    h.telem_span = old->telem_span;
    h.hung_since = sim_.now();
    h.seg = old->seg;
    h.tier_time = std::move(old->tier_time);
    h.failed_tier = std::move(old->failed_tier);
    hung_.push_back(std::move(h));
    return;
  }
  Pipeline chosen = *choice;  // copy before svc moves out from under it
  auto run = std::make_unique<Run>();
  run->id = next_id_++;
  run->public_id = old->public_id;
  run->svc = std::move(old->svc);
  run->pipeline = std::move(chosen);
  run->released = old->released;  // latency spans the whole ordeal
  run->was_hung = old->was_hung;
  run->failovers = old->failovers + 1;
  run->done = std::move(old->done);
  run->telem_span = old->telem_span;
  run->seg = old->seg;
  run->tier_time = std::move(old->tier_time);
  run->failed_tier = std::move(old->failed_tier);
  start(std::move(run));
}

void ElasticManager::finish(Run& run) {
  ServiceRunReport rep;
  rep.run_id = run.public_id;
  rep.service = run.svc.dag.name();
  rep.pipeline = run.pipeline.name;
  rep.released = run.released;
  rep.finished = sim_.now();
  rep.ok = !run.failed;
  rep.was_hung = run.was_hung;
  rep.failovers = run.failovers;
  const workload::QosSpec& qos = run.svc.dag.qos();
  rep.deadline_met =
      rep.ok && (!qos.has_deadline() || rep.latency() <= qos.deadline);
  rep.segments = run.seg;
  rep.tier_time = run.tier_time;
  rep.implicated_tier = implicated_tier_of(run.failed_tier, run.tier_time);
  if (rep.ok) {
    ++completed_;
  } else {
    ++failed_;
  }
  if (telemetry::on()) {
    if (run.telem_span != 0) {
      json::Object args;
      args["ok"] = rep.ok;
      args["pipeline"] = rep.pipeline;
      args["deadline_met"] = rep.deadline_met;
      if (rep.failovers > 0) args["failovers"] = rep.failovers;
      args["latency_ms"] = sim::to_millis(rep.latency());
      telemetry::tracer().end(sim_.now(), run.telem_span, std::move(args));
    }
    telemetry::count(rep.ok ? "elastic.completed" : "elastic.failed");
    telemetry::count("elastic.runs", {{"service", rep.service},
                                      {"ok", rep.ok ? "true" : "false"}});
    telemetry::observe("elastic.latency_ms", {{"service", rep.service}},
                       sim::to_millis(rep.latency()));
  }
  auto done = std::move(run.done);
  runs_.erase(run.id);
  if (done) done(rep);
  if (observer_) observer_(rep);
}

}  // namespace vdap::edgeos
