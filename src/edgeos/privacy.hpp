// Privacy module (§IV-C): "the vehicle can use the pseudonym, generated and
// periodically updated by the Privacy module, for privacy protection in
// data sharing", plus location generalization for services that only need
// coarse position (the GPS-trace-analysis risk of §III-D).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace vdap::edgeos {

/// Rotating pseudonyms derived from a vehicle secret and the time epoch.
/// Two epochs never share a pseudonym (unlinkability across rotations);
/// within an epoch the pseudonym is stable so sessions still work.
class PseudonymManager {
 public:
  PseudonymManager(std::uint64_t vehicle_secret, sim::SimDuration rotation);

  /// The pseudonym valid at `now`. When successive queries cross an epoch
  /// boundary a rotation is observed — counted and traced as a
  /// "privacy.rotate" instant (telemetry only; the pseudonym itself is a
  /// pure function of (secret, epoch)).
  std::string pseudonym(sim::SimTime now) const;

  /// Epoch index at `now` (exposed for tests/analysis).
  std::uint64_t epoch(sim::SimTime now) const;

  sim::SimDuration rotation() const { return rotation_; }

  /// True when the two times fall in different epochs (so their pseudonyms
  /// are unlinkable).
  bool rotated_between(sim::SimTime a, sim::SimTime b) const {
    return epoch(a) != epoch(b);
  }

 private:
  std::uint64_t secret_;
  sim::SimDuration rotation_;
  /// Epoch of the last pseudonym() query, for rotation observation only —
  /// never feeds back into the derived pseudonym.
  mutable std::uint64_t last_epoch_ = ~0ULL;
};

struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Location generalization: snaps positions to a grid of `cell_m` meters and
/// adds bounded noise, so shared locations cannot be traced to an exact
/// address while staying useful for weather/traffic services.
class LocationFuzzer {
 public:
  explicit LocationFuzzer(double cell_m = 500.0, double noise_m = 100.0)
      : cell_m_(cell_m), noise_m_(noise_m) {}

  GeoPoint fuzz(const GeoPoint& p, util::RngStream& rng) const;

  /// Upper bound on the displacement fuzz() can introduce, meters.
  double max_error_m() const { return cell_m_ * 0.71 + noise_m_; }

  double cell_m() const { return cell_m_; }

 private:
  double cell_m_;
  double noise_m_;
};

/// Approximate surface distance between two points, meters (equirectangular,
/// fine at city scale).
double distance_m(const GeoPoint& a, const GeoPoint& b);

}  // namespace vdap::edgeos
