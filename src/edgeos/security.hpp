// Security module (§IV-C): trusted execution environments for key services,
// container isolation for the rest, and an integrity monitor that detects
// compromised services, removes them, and reinstalls a clean instance —
// "Once the service is compromised, this module will remove the compromised
// one and re-install an initialized one without compromising, which
// implements the part of function of Reliability."
//
// Functional model: TEE/container semantics (memory encryption overhead,
// attestation tokens, isolation domains, migration images) are enforced at
// the API level; no actual SGX. The overhead factor and recovery timings
// drive bench_security (experiment A7).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace vdap::edgeos {

enum class IsolationMode { kTee, kContainer, kNone };

constexpr std::string_view to_string(IsolationMode m) {
  switch (m) {
    case IsolationMode::kTee: return "tee";
    case IsolationMode::kContainer: return "container";
    case IsolationMode::kNone: return "none";
  }
  return "unknown";
}

enum class ServiceState { kRunning, kCompromised, kReinstalling };

struct SecurityOptions {
  /// Compute slowdown inside an enclave (encrypted memory, EPC paging).
  double tee_overhead = 1.18;
  /// Compute slowdown inside a container (near-native).
  double container_overhead = 1.02;
  /// Time to tear down and re-install a compromised service.
  sim::SimDuration reinstall_duration = sim::seconds(3);
  /// Integrity scan period.
  sim::SimDuration monitor_interval = sim::msec(500);
};

/// A snapshot of a serialized container, migratable to another vehicle
/// ("the service might be migrated from a neighbor vehicle").
struct ContainerImage {
  std::string service;
  IsolationMode mode = IsolationMode::kContainer;
  std::uint64_t state_bytes = 0;
  std::uint64_t attestation_key = 0;
};

class SecurityModule {
 public:
  SecurityModule(sim::Simulator& sim, SecurityOptions options = {});

  /// Installs a service under an isolation mode; returns its attestation
  /// key. Reinstalling an existing name is an error.
  std::uint64_t install(const std::string& service, IsolationMode mode,
                        std::uint64_t state_bytes = 1 << 20);
  void uninstall(const std::string& service);
  bool installed(const std::string& service) const;

  IsolationMode mode(const std::string& service) const;
  ServiceState state(const std::string& service) const;

  /// Compute-cost multiplier for the service's isolation mode.
  double compute_overhead(const std::string& service) const;

  // --- attestation ---------------------------------------------------------
  /// Produces an attestation token binding the service to this module's
  /// root of trust; only valid while the service is Running.
  std::optional<std::uint64_t> attest(const std::string& service) const;
  bool verify(const std::string& service, std::uint64_t token) const;

  // --- compromise & recovery (fault injection + monitor) -------------------
  /// Marks a service compromised (an internal attack, §III-D). TEE services
  /// resist: returns false and stays Running.
  bool compromise(const std::string& service);

  /// Non-malicious failure (fault injection): the service drops straight to
  /// kReinstalling — no integrity scan needed to notice a dead process —
  /// and a clean instance comes back after reinstall_duration. Returns
  /// false if the service was not Running (already down or mid-reinstall).
  bool crash(const std::string& service);

  /// Starts the integrity monitor: every monitor_interval it scans, removes
  /// compromised services and schedules their reinstall.
  void start_monitor();
  void stop_monitor();

  // --- container migration --------------------------------------------------
  /// Serializes a container for V2V migration; the local instance stops.
  /// TEE services refuse to migrate (their state never leaves the enclave).
  std::optional<ContainerImage> migrate_out(const std::string& service);
  /// Installs a migrated image. Untrusted sources must fail verification
  /// at the caller (the image's attestation key is re-derived locally).
  void migrate_in(const ContainerImage& image);

  // --- stats ----------------------------------------------------------------
  std::uint64_t compromises_detected() const { return detected_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t reinstalls() const { return reinstalls_; }
  std::vector<std::string> services() const;

  /// Fires after each completed reinstall (service name).
  void on_reinstall(std::function<void(const std::string&)> cb) {
    reinstall_cb_ = std::move(cb);
  }

 private:
  struct Entry {
    IsolationMode mode = IsolationMode::kNone;
    ServiceState state = ServiceState::kRunning;
    std::uint64_t key = 0;
    std::uint64_t state_bytes = 0;
  };
  const Entry& entry(const std::string& service) const;
  Entry& entry(const std::string& service);
  void scan();
  void schedule_reinstall(const std::string& service);

  sim::Simulator& sim_;
  SecurityOptions options_;
  std::map<std::string, Entry> services_;
  std::optional<sim::Simulator::PeriodicHandle> monitor_;
  std::uint64_t detected_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t reinstalls_ = 0;
  std::uint64_t next_key_ = 0x9e3779b97f4a7c15ULL;
  std::function<void(const std::string&)> reinstall_cb_;
};

}  // namespace vdap::edgeos
