#include "edgeos/privacy.hpp"

#include <cmath>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"

namespace vdap::edgeos {

namespace {
constexpr double kMetersPerDegLat = 111'320.0;
}

PseudonymManager::PseudonymManager(std::uint64_t vehicle_secret,
                                   sim::SimDuration rotation)
    : secret_(vehicle_secret), rotation_(rotation) {
  if (rotation <= 0) throw std::invalid_argument("rotation must be > 0");
}

std::uint64_t PseudonymManager::epoch(sim::SimTime now) const {
  return static_cast<std::uint64_t>(now / rotation_);
}

std::string PseudonymManager::pseudonym(sim::SimTime now) const {
  std::uint64_t e = epoch(now);
  if (last_epoch_ != ~0ULL && e != last_epoch_ && telemetry::on()) {
    json::Object args;
    args["epoch"] = static_cast<std::int64_t>(e);
    args["from_epoch"] = static_cast<std::int64_t>(last_epoch_);
    telemetry::tracer().instant(now, "privacy", "privacy.rotate", "privacy",
                                std::move(args));
    telemetry::count("privacy.rotations");
  }
  last_epoch_ = e;
  // One-way derivation: knowing a pseudonym (or many) does not reveal the
  // secret or link epochs. fnv1a is a stand-in for a keyed PRF.
  std::uint64_t h = util::fnv1a(util::format(
      "%016llx:%016llx", static_cast<unsigned long long>(secret_),
      static_cast<unsigned long long>(e)));
  return util::format("veh-%016llx", static_cast<unsigned long long>(h));
}

GeoPoint LocationFuzzer::fuzz(const GeoPoint& p, util::RngStream& rng) const {
  double cell_deg_lat = cell_m_ / kMetersPerDegLat;
  double cos_lat = std::cos(p.lat * M_PI / 180.0);
  if (std::abs(cos_lat) < 1e-6) cos_lat = 1e-6;
  double cell_deg_lon = cell_m_ / (kMetersPerDegLat * cos_lat);
  GeoPoint out;
  // Snap to cell centers, then jitter within the noise radius.
  out.lat = (std::floor(p.lat / cell_deg_lat) + 0.5) * cell_deg_lat;
  out.lon = (std::floor(p.lon / cell_deg_lon) + 0.5) * cell_deg_lon;
  double angle = rng.uniform(0.0, 2.0 * M_PI);
  double r = rng.uniform(0.0, noise_m_);
  out.lat += r * std::sin(angle) / kMetersPerDegLat;
  out.lon += r * std::cos(angle) / (kMetersPerDegLat * cos_lat);
  return out;
}

double distance_m(const GeoPoint& a, const GeoPoint& b) {
  double mean_lat = (a.lat + b.lat) / 2.0 * M_PI / 180.0;
  double dy = (a.lat - b.lat) * kMetersPerDegLat;
  double dx = (a.lon - b.lon) * kMetersPerDegLat * std::cos(mean_lat);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace vdap::edgeos
