// Polymorphic services (§IV-C): "each service offers multiple execution
// pipelines in response to various network and computational constraints."
// A Pipeline is a per-task placement of the service's DAG onto tiers; the
// paper's canonical example (searching for a kidnapper with mobile A3)
// has three pipelines: all on board, all on the edge/cloud, and a split
// with motion detection on board and recognition remote.
#pragma once

#include <string>
#include <vector>

#include "net/topology.hpp"
#include "workload/dag.hpp"

namespace vdap::edgeos {

struct Pipeline {
  std::string name;
  /// Tier for each DAG task (indexed by task id).
  std::vector<net::Tier> placement;

  bool all_on_board() const {
    for (net::Tier t : placement) {
      if (t != net::Tier::kOnBoard) return false;
    }
    return true;
  }
};

struct PolymorphicService {
  workload::AppDag dag;
  std::vector<Pipeline> pipelines;

  /// Well-formed when every pipeline covers every task and pins
  /// non-offloadable tasks on board.
  bool validate(std::string* why = nullptr) const;
};

/// Builds the paper's three standard pipelines for `dag` against `remote`:
///   1. "onboard"  — all workloads execute on board;
///   2. "remote"   — all offloadable workloads execute on the remote tier;
///   3. "split"    — the first stage (e.g. motion detection) stays on board,
///                   downstream stages go remote.
/// Non-offloadable tasks stay on board in every pipeline.
PolymorphicService make_polymorphic(const workload::AppDag& dag,
                                    net::Tier remote);

/// As make_polymorphic, but emits one remote and one split pipeline per
/// entry in `remotes` (e.g. RSU edge and cloud), plus the onboard pipeline.
PolymorphicService make_polymorphic_multi(const workload::AppDag& dag,
                                          const std::vector<net::Tier>& remotes);

/// The §IV-C open problem ("dividing a workload into several parts and
/// making them execute on different edge nodes along the path from the
/// source to the cloud", after [17]/[27]): for a *chain* DAG, enumerates
/// every monotone cut of its stages across `path` (an ordered list of
/// tiers, e.g. {on-board, RSU, cloud}). A stage's tier never moves closer
/// to the vehicle than its predecessor's, so data flows strictly outward —
/// n stages over k tiers yields C(n+k-1, k-1) pipelines. Non-offloadable
/// stages pin their cut. The elastic manager can then pick the optimal cut
/// point for the current bandwidth (see edgeos_pathsplit_test and
/// bench_pathsplit). Throws if `dag` is not a chain.
PolymorphicService make_path_split_pipelines(const workload::AppDag& dag,
                                             const std::vector<net::Tier>& path);

}  // namespace vdap::edgeos
