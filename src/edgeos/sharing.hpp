// Data Sharing module (§IV-C): "provides a mechanism for data sharing
// between different services with a high security, which will authenticate
// the service and perform fine grain access control." A topic-based bus:
// publishers must present their attestation-derived credential; subscribers
// must hold a per-topic grant. The paper's example: the pedestrian-detection
// service and mobile A3 both read the camera topic; A3 shares results with
// the vehicle-recorder service.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/json.hpp"

namespace vdap::edgeos {

struct SharedMessage {
  std::string topic;
  std::string publisher;
  json::Value payload;
  std::uint64_t seq = 0;
};

class DataSharingBus {
 public:
  using Handler = std::function<void(const SharedMessage&)>;

  /// Clock for telemetry instants (EdgeOSv wires the simulator's now()).
  /// Without one, events are stamped at t=0; the bus itself never reads
  /// wall time.
  void set_clock(std::function<sim::SimTime()> now) { now_ = std::move(now); }

  /// Enrolls a service; returns its credential. Re-enrolling rotates it
  /// (used after a compromised service is reinstalled).
  std::uint64_t enroll(const std::string& service);
  bool enrolled(const std::string& service) const;

  /// Per-topic grants (fine-grained access control).
  void grant_publish(const std::string& topic, const std::string& service);
  void grant_subscribe(const std::string& topic, const std::string& service);
  void revoke_publish(const std::string& topic, const std::string& service);
  void revoke_subscribe(const std::string& topic, const std::string& service);
  bool can_publish(const std::string& topic, const std::string& service) const;
  bool can_subscribe(const std::string& topic,
                     const std::string& service) const;

  /// Publishes if the credential authenticates and the ACL admits the
  /// publisher. Returns the number of subscribers that received it, or -1
  /// on rejection.
  int publish(const std::string& service, std::uint64_t credential,
              const std::string& topic, json::Value payload);

  /// Subscribes (credential + grant required). Returns false on rejection.
  bool subscribe(const std::string& service, std::uint64_t credential,
                 const std::string& topic, Handler handler);

  // Counters for the DEIR report.
  std::uint64_t published() const { return published_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t rejected_auth() const { return rejected_auth_; }
  std::uint64_t rejected_acl() const { return rejected_acl_; }

 private:
  bool authenticate(const std::string& service,
                    std::uint64_t credential) const;
  sim::SimTime now() const { return now_ ? now_() : 0; }
  void note_grant(const char* op, const std::string& topic,
                  const std::string& service);
  void note_deny(const char* op, const char* reason, const std::string& topic,
                 const std::string& service);

  struct Subscription {
    std::string service;
    Handler handler;
  };

  std::function<sim::SimTime()> now_;
  std::map<std::string, std::uint64_t> credentials_;
  std::map<std::string, std::set<std::string>> pub_acl_;   // topic -> services
  std::map<std::string, std::set<std::string>> sub_acl_;
  std::map<std::string, std::vector<Subscription>> subs_;  // topic -> subs
  std::uint64_t next_credential_ = 0xa5a5a5a55a5a5a5aULL;
  std::uint64_t seq_ = 0;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t rejected_auth_ = 0;
  std::uint64_t rejected_acl_ = 0;
};

}  // namespace vdap::edgeos
