// VcuBoard: the physical composition of the Vehicle Computing Unit — the
// 1stHEP processors, SSD storage, and the power envelope. The 2ndHEP
// (passenger devices) and external tiers attach at the VCU registry level,
// not here. Factory helpers build the paper's reference configurations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/catalog.hpp"
#include "hw/processor.hpp"
#include "hw/storage.hpp"

namespace vdap::hw {

class VcuBoard {
 public:
  VcuBoard(sim::Simulator& sim, std::string name, SsdSpec ssd_spec = {})
      : sim_(sim), name_(std::move(name)), ssd_(sim, std::move(ssd_spec)) {}

  VcuBoard(const VcuBoard&) = delete;
  VcuBoard& operator=(const VcuBoard&) = delete;

  /// Adds a processor; returns the created device.
  ComputeDevice& add_processor(ProcessorSpec spec);

  const std::string& name() const { return name_; }
  SsdModel& ssd() { return ssd_; }

  const std::vector<std::unique_ptr<ComputeDevice>>& devices() const {
    return devices_;
  }
  ComputeDevice* device(const std::string& name);

  /// Sum of instantaneous power draw across processors, watts.
  double power_now() const;
  /// Total energy consumed by all processors so far, joules.
  double energy_joules() const;
  /// Sum of the processors' max power — the §III-B power-budget figure.
  double max_power_w() const;

  sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  SsdModel ssd_;
  std::vector<std::unique_ptr<ComputeDevice>> devices_;
};

/// The paper's reference 1stHEP: CPU + embedded GPU + FPGA + ASIC (§IV-B1).
void populate_reference_1sthep(VcuBoard& board);

/// A minimal legacy vehicle: just the traditional on-board controller.
void populate_legacy_vehicle(VcuBoard& board);

/// A brute-force in-vehicle rig for the §III-B energy argument:
/// CPU + Tesla V100.
void populate_power_hungry_rig(VcuBoard& board);

}  // namespace vdap::hw
