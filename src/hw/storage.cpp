#include "hw/storage.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdap::hw {

SsdModel::SsdModel(sim::Simulator& sim, SsdSpec spec)
    : sim_(sim), spec_(std::move(spec)) {
  if (spec_.channels <= 0) throw std::invalid_argument("ssd needs channels");
}

std::uint64_t SsdModel::read(std::uint64_t bytes,
                             std::function<void(const IoReport&)> done) {
  return submit(false, bytes, std::move(done));
}

std::uint64_t SsdModel::write(std::uint64_t bytes,
                              std::function<void(const IoReport&)> done) {
  return submit(true, bytes, std::move(done));
}

std::uint64_t SsdModel::submit(bool write, std::uint64_t bytes,
                               std::function<void(const IoReport&)> done) {
  std::uint64_t id = next_id_++;
  pending_.push_back(Io{id, write, bytes, sim_.now(), std::move(done)});
  maybe_start();
  return id;
}

sim::SimDuration SsdModel::service_time(const Io& io) const {
  double mbps = io.write ? spec_.write_mbps : spec_.read_mbps;
  double xfer_s = static_cast<double>(io.bytes) / (mbps * 1e6);
  sim::SimDuration fixed = io.write ? spec_.write_latency : spec_.read_latency;
  return std::max<sim::SimDuration>(1, fixed + sim::from_seconds(xfer_s));
}

void SsdModel::maybe_start() {
  while (!pending_.empty() && busy_ < spec_.channels) {
    Io io = std::move(pending_.front());
    pending_.pop_front();
    ++busy_;
    sim::SimTime started = sim_.now();
    sim::SimDuration dur = service_time(io);
    auto shared = std::make_shared<Io>(std::move(io));
    sim_.after(dur, [this, shared, started]() {
      --busy_;
      ++completed_;
      if (shared->write) {
        bytes_written_ += shared->bytes;
      } else {
        bytes_read_ += shared->bytes;
      }
      IoReport rep;
      rep.io_id = shared->id;
      rep.write = shared->write;
      rep.bytes = shared->bytes;
      rep.submitted = shared->submitted;
      rep.started = started;
      rep.finished = sim_.now();
      maybe_start();
      if (shared->done) shared->done(rep);
    });
  }
}

}  // namespace vdap::hw
