// Task classes: the coarse computational signatures that OpenVDAP's DSF uses
// to match work to heterogeneous processors ("tries to match the tasks with
// the computing resources according to their computing characteristics",
// §IV-B2). A device advertises an effective throughput per class.
#pragma once

#include <array>
#include <string_view>

namespace vdap::hw {

enum class TaskClass {
  kVisionClassic,  // classic CV (lane detection, Haar cascades)
  kCnnInference,   // deep-model forward pass (Inception v3, detectors)
  kCnnTraining,    // on-vehicle fine-tuning (pBEAM transfer learning)
  kPreprocess,     // feature extraction, filtering, sensor fusion prep
  kCodec,          // media encode/decode (infotainment, dash-cam)
  kNlp,            // language models (voice assistants)
  kAudio,          // audio pipelines
  kDbQuery,        // DDI storage/query work
  kGeneric,        // anything else (control logic, bookkeeping)
};

constexpr std::size_t kNumTaskClasses = 9;

constexpr std::array<TaskClass, kNumTaskClasses> kAllTaskClasses = {
    TaskClass::kVisionClassic, TaskClass::kCnnInference,
    TaskClass::kCnnTraining,   TaskClass::kPreprocess,
    TaskClass::kCodec,         TaskClass::kNlp,
    TaskClass::kAudio,         TaskClass::kDbQuery,
    TaskClass::kGeneric,
};

constexpr std::string_view to_string(TaskClass c) {
  switch (c) {
    case TaskClass::kVisionClassic: return "vision-classic";
    case TaskClass::kCnnInference: return "cnn-inference";
    case TaskClass::kCnnTraining: return "cnn-training";
    case TaskClass::kPreprocess: return "preprocess";
    case TaskClass::kCodec: return "codec";
    case TaskClass::kNlp: return "nlp";
    case TaskClass::kAudio: return "audio";
    case TaskClass::kDbQuery: return "db-query";
    case TaskClass::kGeneric: return "generic";
  }
  return "unknown";
}

}  // namespace vdap::hw
