#include "hw/processor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace vdap::hw {

std::optional<sim::SimDuration> ProcessorSpec::service_time(
    TaskClass c, double gflop) const {
  double tput = throughput(c);
  if (tput <= 0.0) return std::nullopt;
  if (gflop < 0.0) return std::nullopt;
  // At least 1 µs so zero-cost tasks still order behind their submission.
  return std::max<sim::SimDuration>(1, sim::from_seconds(gflop / tput));
}

ComputeDevice::ComputeDevice(sim::Simulator& sim, ProcessorSpec spec)
    : sim_(sim), spec_(std::move(spec)) {
  if (spec_.slots <= 0) throw std::invalid_argument("device needs >=1 slot");
  est_slot_free_.assign(static_cast<std::size_t>(spec_.slots), sim_.now());
  last_account_ = sim_.now();
}

std::uint64_t ComputeDevice::submit(WorkRequest req) {
  std::uint64_t id = next_id_++;
  auto reject = [&](std::uint64_t wid) {
    WorkReport r;
    r.work_id = wid;
    r.device = spec_.name;
    r.submitted = r.started = r.finished = sim_.now();
    r.ok = false;
    ++aborted_;
    if (req.done) req.done(r);
  };
  if (!online_ || !spec_.supports(req.cls)) {
    reject(id);
    return id;
  }
  // Maintain the admission-time finish estimate used by schedulers.
  auto slot = std::min_element(est_slot_free_.begin(), est_slot_free_.end());
  sim::SimTime start_est = std::max(*slot, sim_.now());
  *slot = start_est + *spec_.service_time(req.cls, req.gflop);

  pending_.push_back(Pending{id, std::move(req), sim_.now()});
  maybe_start();
  return id;
}

std::optional<sim::SimTime> ComputeDevice::estimate_finish(
    TaskClass cls, double gflop) const {
  if (!online_) return std::nullopt;
  auto dur = spec_.service_time(cls, gflop);
  if (!dur) return std::nullopt;
  sim::SimTime free_at =
      *std::min_element(est_slot_free_.begin(), est_slot_free_.end());
  return std::max(free_at, sim_.now()) + *dur;
}

ComputeDevice::Pending ComputeDevice::pop_best_pending() {
  assert(!pending_.empty());
  auto best = pending_.begin();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->req.priority > best->req.priority) best = it;  // FIFO within prio
  }
  Pending p = std::move(*best);
  pending_.erase(best);
  return p;
}

void ComputeDevice::maybe_start() {
  while (online_ && !pending_.empty() &&
         busy_slots() < spec_.slots) {
    start(pop_best_pending());
  }
}

void ComputeDevice::start(Pending p) {
  account_busy_time();
  auto dur = spec_.service_time(p.req.cls, p.req.gflop);
  assert(dur.has_value());
  Running r;
  r.id = p.id;
  r.req = std::move(p.req);
  r.submitted = p.submitted;
  r.started = sim_.now();
  r.finish_at = sim_.now() + *dur;
  std::uint64_t id = p.id;
  r.event = sim_.at(r.finish_at, [this, id]() { finish(id); });
  running_.push_back(std::move(r));
}

void ComputeDevice::finish(std::uint64_t id) {
  auto it = std::find_if(running_.begin(), running_.end(),
                         [&](const Running& r) { return r.id == id; });
  if (it == running_.end()) return;  // aborted meanwhile
  account_busy_time();
  Running r = std::move(*it);
  running_.erase(it);
  WorkReport rep;
  rep.work_id = r.id;
  rep.device = spec_.name;
  rep.submitted = r.submitted;
  rep.started = r.started;
  rep.finished = sim_.now();
  rep.ok = true;
  rep.dynamic_energy_j =
      per_slot_power() * sim::to_seconds(rep.finished - rep.started);
  ++completed_;
  maybe_start();
  if (r.req.done) r.req.done(rep);
}

void ComputeDevice::set_online(bool online) {
  if (online == online_) return;
  account_busy_time();
  online_ = online;
  if (!online_) {
    // Abort everything in flight; the owner (DSF) decides about requeueing.
    std::vector<Running> running = std::move(running_);
    running_.clear();
    std::deque<Pending> pending = std::move(pending_);
    pending_.clear();
    est_slot_free_.assign(est_slot_free_.size(), sim_.now());
    for (auto& r : running) {
      sim_.cancel(r.event);
      WorkReport rep;
      rep.work_id = r.id;
      rep.device = spec_.name;
      rep.submitted = r.submitted;
      rep.started = r.started;
      rep.finished = sim_.now();
      rep.ok = false;
      ++aborted_;
      if (r.req.done) r.req.done(rep);
    }
    for (auto& p : pending) {
      WorkReport rep;
      rep.work_id = p.id;
      rep.device = spec_.name;
      rep.submitted = p.submitted;
      rep.started = rep.finished = sim_.now();
      rep.ok = false;
      ++aborted_;
      if (p.req.done) p.req.done(rep);
    }
  } else {
    est_slot_free_.assign(est_slot_free_.size(), sim_.now());
  }
}

void ComputeDevice::reconfigure(const ProcessorSpec& spec) {
  if (spec.name != spec_.name) {
    throw std::invalid_argument("reconfigure cannot rename a device");
  }
  if (spec.slots != spec_.slots) {
    throw std::invalid_argument("reconfigure cannot change slot count");
  }
  // Settle energy under the old power model before switching.
  account_busy_time();
  spec_ = spec;
  // Backlog estimates were computed at the old speed; conservatively reset
  // to "free now" so schedulers re-estimate against the new throughput.
  est_slot_free_.assign(est_slot_free_.size(), sim_.now());
}

void ComputeDevice::account_busy_time() {
  sim::SimTime now = sim_.now();
  double dt = sim::to_seconds(now - last_account_);
  if (dt > 0) {
    busy_slot_seconds_ += dt * busy_slots();
    dynamic_energy_j_ += dt * busy_slots() * per_slot_power();
    // Integrate idle power per period so DVFS reconfigure() attributes each
    // stretch to the power model that was active during it.
    idle_energy_j_ += dt * spec_.idle_power_w;
  }
  last_account_ = now;
}

double ComputeDevice::average_utilization() const {
  double total = sim::to_seconds(sim_.now());
  if (total <= 0 || spec_.slots == 0) return 0.0;
  double busy = busy_slot_seconds_;
  // Include the not-yet-accounted stretch since the last state change.
  busy += sim::to_seconds(sim_.now() - last_account_) * busy_slots();
  return busy / (total * spec_.slots);
}

double ComputeDevice::energy_joules() const {
  double live_dt = sim::to_seconds(sim_.now() - last_account_);
  double idle = idle_energy_j_ + live_dt * spec_.idle_power_w;
  double dynamic =
      dynamic_energy_j_ + live_dt * busy_slots() * per_slot_power();
  return idle + dynamic;
}

double ComputeDevice::power_now() const {
  return spec_.idle_power_w + per_slot_power() * busy_slots();
}

}  // namespace vdap::hw
