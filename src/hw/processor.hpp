// Processor model.
//
// A ComputeDevice executes work items under the discrete-event clock. The
// model is calibrated-analytic: each device advertises an *effective*
// throughput (GFLOP/s) per TaskClass, fitted to the paper's published
// measurements (Fig. 3 and Table I; see hw/catalog.cpp). A device has
// `slots` independent execution contexts; work beyond that queues in
// priority-then-FIFO order. Energy is integrated from a two-point power
// model (idle power, max power, linear in busy-slot fraction) — the same
// abstraction level at which the paper argues its energy points (§III-B).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hw/task_class.hpp"
#include "sim/simulator.hpp"

namespace vdap::hw {

enum class ProcKind { kCpu, kGpu, kDsp, kFpga, kAsic, kPhoneSoc, kServer };

constexpr std::string_view to_string(ProcKind k) {
  switch (k) {
    case ProcKind::kCpu: return "cpu";
    case ProcKind::kGpu: return "gpu";
    case ProcKind::kDsp: return "dsp";
    case ProcKind::kFpga: return "fpga";
    case ProcKind::kAsic: return "asic";
    case ProcKind::kPhoneSoc: return "phone-soc";
    case ProcKind::kServer: return "server";
  }
  return "unknown";
}

struct ProcessorSpec {
  std::string name;
  ProcKind kind = ProcKind::kCpu;
  double max_power_w = 0.0;
  double idle_power_w = 0.0;
  int slots = 1;
  /// Effective GFLOP/s per task class. A class missing from the map is
  /// unsupported on this device (throughput() returns 0).
  std::map<TaskClass, double> gflops;

  /// Effective throughput for `c`; 0 when the class is unsupported.
  double throughput(TaskClass c) const {
    auto it = gflops.find(c);
    return it == gflops.end() ? 0.0 : it->second;
  }
  bool supports(TaskClass c) const { return throughput(c) > 0.0; }

  /// Execution time of `gflop` of class `c` work, ignoring queueing.
  /// Returns nullopt for unsupported classes.
  std::optional<sim::SimDuration> service_time(TaskClass c,
                                               double gflop) const;
};

/// Completion report delivered to the submitter.
struct WorkReport {
  std::uint64_t work_id = 0;
  std::string device;
  sim::SimTime submitted = 0;
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  bool ok = false;            // false when aborted (device went offline)
  double dynamic_energy_j = 0.0;  // energy attributed to this item

  sim::SimDuration queueing() const { return started - submitted; }
  sim::SimDuration latency() const { return finished - submitted; }
};

/// A work submission: `gflop` of `cls` work at `priority` (higher first).
struct WorkRequest {
  TaskClass cls = TaskClass::kGeneric;
  double gflop = 0.0;
  int priority = 0;
  std::function<void(const WorkReport&)> done;
};

class ComputeDevice {
 public:
  ComputeDevice(sim::Simulator& sim, ProcessorSpec spec);

  const ProcessorSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// Submits work. Unsupported classes complete immediately with ok=false.
  /// Returns the work id.
  std::uint64_t submit(WorkRequest req);

  /// Admission-time estimate of when newly submitted work of (cls, gflop)
  /// would finish, accounting for the current backlog. Used by schedulers
  /// (greedy-EFT / HEFT). Returns nullopt for unsupported classes.
  std::optional<sim::SimTime> estimate_finish(TaskClass cls,
                                              double gflop) const;

  /// Plug-and-play (2ndHEP): taking a device offline aborts running and
  /// queued work (reports ok=false) and rejects new submissions.
  void set_online(bool online);
  bool online() const { return online_; }

  /// DVFS / power-mode switch (the TX2's Max-Q vs Max-P duality, §IV-B1):
  /// swaps the throughput and power tables for *future* work; running tasks
  /// finish at the rate they started with (a real mode switch drains the
  /// pipeline). The new spec must keep the device's name and slot count
  /// (identity and queue structure are invariant). Energy accounting
  /// integrates each period at the power model active during it.
  void reconfigure(const ProcessorSpec& spec);

  // --- dynamic status, exported to DSF resource profiles -----------------
  int busy_slots() const { return static_cast<int>(running_.size()); }
  std::size_t queue_length() const { return pending_.size(); }
  double utilization() const {
    return spec_.slots > 0
               ? static_cast<double>(busy_slots()) / spec_.slots
               : 0.0;
  }
  /// Time-averaged utilization since construction.
  double average_utilization() const;

  // --- energy accounting --------------------------------------------------
  /// Total energy consumed so far (idle + dynamic), joules.
  double energy_joules() const;
  /// Dynamic-only energy (above idle).
  double dynamic_energy_joules() const { return dynamic_energy_j_; }
  /// Instantaneous power draw, watts.
  double power_now() const;

  std::uint64_t completed() const { return completed_; }
  std::uint64_t aborted() const { return aborted_; }

 private:
  struct Pending {
    std::uint64_t id;
    WorkRequest req;
    sim::SimTime submitted;
  };
  struct Running {
    std::uint64_t id;
    WorkRequest req;
    sim::SimTime submitted;
    sim::SimTime started;
    sim::SimTime finish_at;
    sim::EventId event;
  };

  void maybe_start();
  void start(Pending p);
  void finish(std::uint64_t id);
  void account_busy_time();
  double per_slot_power() const {
    return spec_.slots > 0 ? (spec_.max_power_w - spec_.idle_power_w) /
                                 spec_.slots
                           : 0.0;
  }
  /// Removes from pending_ and returns the highest-priority oldest item.
  Pending pop_best_pending();

  sim::Simulator& sim_;
  ProcessorSpec spec_;
  bool online_ = true;

  std::deque<Pending> pending_;
  std::vector<Running> running_;

  // Admission-time slot-availability estimates for estimate_finish().
  std::vector<sim::SimTime> est_slot_free_;

  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;

  // Energy integration state.
  sim::SimTime last_account_ = 0;
  double busy_slot_seconds_ = 0.0;  // ∫ busy_slots dt
  double dynamic_energy_j_ = 0.0;
  double idle_energy_j_ = 0.0;
};

}  // namespace vdap::hw
