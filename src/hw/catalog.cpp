#include "hw/catalog.hpp"

namespace vdap::hw::catalog {

namespace {
using TC = TaskClass;

/// Throughput that makes Inception v3 (kInceptionV3Gflop) finish in `ms`.
double cnn_tput_for_ms(double ms) { return kInceptionV3Gflop / (ms / 1e3); }
}  // namespace

ProcessorSpec intel_mncs() {
  ProcessorSpec s;
  s.name = "intel-mncs";
  s.kind = ProcKind::kDsp;
  s.max_power_w = 1.0;   // Fig. 3 power bar (USB-stick class device)
  s.idle_power_w = 0.3;
  s.slots = 1;
  // Fig. 3: 334.5 ms for Inception v3. The NCS runs only neural workloads.
  s.gflops = {
      {TC::kCnnInference, cnn_tput_for_ms(334.5)},
      {TC::kAudio, 20.0},
  };
  return s;
}

ProcessorSpec jetson_tx2_maxq() {
  ProcessorSpec s;
  s.name = "jetson-tx2-maxq";
  s.kind = ProcKind::kGpu;
  s.max_power_w = 7.5;   // Max-Q efficiency mode
  s.idle_power_w = 1.5;
  s.slots = 1;
  // Fig. 3: 242.8 ms for Inception v3.
  s.gflops = {
      {TC::kCnnInference, cnn_tput_for_ms(242.8)},
      {TC::kCnnTraining, cnn_tput_for_ms(242.8) * 0.35},
      {TC::kVisionClassic, 25.0},
      {TC::kCodec, 40.0},
      {TC::kPreprocess, 20.0},
      {TC::kAudio, 15.0},
      {TC::kNlp, 20.0},
      {TC::kGeneric, 8.0},
  };
  return s;
}

ProcessorSpec jetson_tx2_maxp() {
  ProcessorSpec s;
  s.name = "jetson-tx2-maxp";
  s.kind = ProcKind::kGpu;
  s.max_power_w = 15.0;  // Max-P performance mode
  s.idle_power_w = 2.5;
  s.slots = 1;
  // Fig. 3: 114.3 ms for Inception v3.
  s.gflops = {
      {TC::kCnnInference, cnn_tput_for_ms(114.3)},
      {TC::kCnnTraining, cnn_tput_for_ms(114.3) * 0.35},
      {TC::kVisionClassic, 45.0},
      {TC::kCodec, 70.0},
      {TC::kPreprocess, 35.0},
      {TC::kAudio, 25.0},
      {TC::kNlp, 35.0},
      {TC::kGeneric, 14.0},
  };
  return s;
}

ProcessorSpec core_i7_6700() {
  ProcessorSpec s;
  s.name = "core-i7-6700";
  s.kind = ProcKind::kCpu;
  s.max_power_w = 60.0;  // Fig. 3 power bar (65 W TDP part)
  s.idle_power_w = 6.0;
  s.slots = 4;           // quad core
  // Fig. 3: 153.9 ms for Inception v3.
  s.gflops = {
      {TC::kCnnInference, cnn_tput_for_ms(153.9)},
      {TC::kCnnTraining, cnn_tput_for_ms(153.9) * 0.30},
      {TC::kVisionClassic, 40.0},
      {TC::kCodec, 35.0},
      {TC::kPreprocess, 30.0},
      {TC::kAudio, 25.0},
      {TC::kNlp, 30.0},
      {TC::kDbQuery, 40.0},
      {TC::kGeneric, 25.0},
  };
  return s;
}

ProcessorSpec tesla_v100() {
  ProcessorSpec s;
  s.name = "tesla-v100";
  s.kind = ProcKind::kGpu;
  s.max_power_w = 250.0;
  s.idle_power_w = 30.0;
  s.slots = 4;  // concurrent streams
  // Fig. 3: 26.8 ms for Inception v3.
  s.gflops = {
      {TC::kCnnInference, cnn_tput_for_ms(26.8)},
      {TC::kCnnTraining, cnn_tput_for_ms(26.8) * 0.5},
      {TC::kVisionClassic, 120.0},
      {TC::kCodec, 200.0},
      {TC::kPreprocess, 100.0},
      {TC::kAudio, 80.0},
      {TC::kNlp, 150.0},
      {TC::kGeneric, 30.0},
  };
  return s;
}

ProcessorSpec ec2_vcpu() {
  ProcessorSpec s;
  s.name = "ec2-vcpu";
  s.kind = ProcKind::kCpu;
  s.max_power_w = 15.0;  // one vCPU's share of a server socket
  s.idle_power_w = 2.0;
  s.slots = 1;
  // Table I anchors: with 8 GF/s classic-vision throughput, lane detection
  // (0.10856 GFLOP) takes 13.57 ms and Haar vehicle detection (2.15568
  // GFLOP) takes 269.46 ms; with 2 GF/s CNN throughput the TensorFlow
  // vehicle detector (27.94396 GFLOP) takes 13 971.98 ms.
  s.gflops = {
      {TC::kVisionClassic, 8.0},
      {TC::kCnnInference, 2.0},
      {TC::kCnnTraining, 0.6},
      {TC::kPreprocess, 6.0},
      {TC::kCodec, 6.0},
      {TC::kAudio, 5.0},
      {TC::kNlp, 5.0},
      {TC::kDbQuery, 8.0},
      {TC::kGeneric, 5.0},
  };
  return s;
}

ProcessorSpec automotive_fpga() {
  ProcessorSpec s;
  s.name = "automotive-fpga";
  s.kind = ProcKind::kFpga;
  s.max_power_w = 10.0;
  s.idle_power_w = 2.0;
  s.slots = 2;  // two reconfigurable regions
  // §IV-B1: "FPGA will perform the tasks like feature extraction, and data
  // compression and media coding and decoding".
  s.gflops = {
      {TC::kPreprocess, 120.0},
      {TC::kCodec, 150.0},
      {TC::kCnnInference, 60.0},
      {TC::kAudio, 60.0},
  };
  return s;
}

ProcessorSpec cnn_asic() {
  ProcessorSpec s;
  s.name = "cnn-asic";
  s.kind = ProcKind::kAsic;
  s.max_power_w = 8.0;
  s.idle_power_w = 0.5;
  s.slots = 1;
  // §IV-B1: ASICs "accelerate specific algorithms" with the best
  // performance and energy efficiency; this one only runs CNN inference.
  s.gflops = {
      {TC::kCnnInference, 230.0},
  };
  return s;
}

ProcessorSpec phone_soc() {
  ProcessorSpec s;
  s.name = "phone-soc";
  s.kind = ProcKind::kPhoneSoc;
  s.max_power_w = 4.0;
  s.idle_power_w = 0.5;
  s.slots = 2;
  // 2ndHEP passenger device (§IV-B1): modest, joins/leaves dynamically.
  s.gflops = {
      {TC::kCnnInference, 18.0},
      {TC::kVisionClassic, 10.0},
      {TC::kCodec, 20.0},
      {TC::kPreprocess, 8.0},
      {TC::kAudio, 8.0},
      {TC::kNlp, 8.0},
      {TC::kGeneric, 6.0},
  };
  return s;
}

ProcessorSpec legacy_obc() {
  ProcessorSpec s;
  s.name = "legacy-obc";
  s.kind = ProcKind::kCpu;
  s.max_power_w = 5.0;
  s.idle_power_w = 1.0;
  s.slots = 1;
  // "it has very limited computing power, failing to support the
  // state-of-the-art applications" (§IV-B).
  s.gflops = {
      {TC::kGeneric, 1.0},
      {TC::kDbQuery, 2.0},
      {TC::kPreprocess, 1.0},
  };
  return s;
}

ProcessorSpec rsu_edge_server() {
  ProcessorSpec s;
  s.name = "rsu-edge-server";
  s.kind = ProcKind::kServer;
  s.max_power_w = 150.0;
  s.idle_power_w = 40.0;
  s.slots = 4;
  // Inference-accelerator-equipped RSU: stronger than the vehicle, weaker
  // than the cloud ("more powerful compute resources than the on-board
  // computing unit", §I).
  s.gflops = {
      {TC::kCnnInference, 260.0},
      {TC::kCnnTraining, 90.0},
      {TC::kVisionClassic, 90.0},
      {TC::kCodec, 120.0},
      {TC::kPreprocess, 70.0},
      {TC::kAudio, 50.0},
      {TC::kNlp, 90.0},
      {TC::kDbQuery, 80.0},
      {TC::kGeneric, 40.0},
  };
  return s;
}

ProcessorSpec basestation_edge_server() {
  ProcessorSpec s = rsu_edge_server();
  s.name = "basestation-edge-server";
  s.max_power_w = 220.0;
  s.idle_power_w = 60.0;
  s.slots = 6;
  for (auto& [cls, tput] : s.gflops) tput *= 1.4;
  return s;
}

ProcessorSpec cloud_server() {
  ProcessorSpec s;
  s.name = "cloud-server";
  s.kind = ProcKind::kServer;
  s.max_power_w = 600.0;
  s.idle_power_w = 150.0;
  s.slots = 16;
  // "conceptually with unconstrained resources" (§Abstract): a multi-GPU
  // box, ~2x V100 per stream.
  s.gflops = {
      {TC::kCnnInference, 850.0},
      {TC::kCnnTraining, 420.0},
      {TC::kVisionClassic, 240.0},
      {TC::kCodec, 400.0},
      {TC::kPreprocess, 200.0},
      {TC::kAudio, 160.0},
      {TC::kNlp, 300.0},
      {TC::kDbQuery, 160.0},
      {TC::kGeneric, 60.0},
  };
  return s;
}

std::optional<ProcessorSpec> by_name(const std::string& name) {
  for (const auto& s : all()) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

std::vector<ProcessorSpec> all() {
  return {intel_mncs(),      jetson_tx2_maxq(),
          jetson_tx2_maxp(), core_i7_6700(),
          tesla_v100(),      ec2_vcpu(),
          automotive_fpga(), cnn_asic(),
          phone_soc(),       legacy_obc(),
          rsu_edge_server(), basestation_edge_server(),
          cloud_server()};
}

}  // namespace vdap::hw::catalog
