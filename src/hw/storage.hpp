// SSD model for the VCU's storage subsystem (§IV-B1: "the
// parallelism-supported solid state drive is chosen to store vehicle data
// and applications"). Models per-op fixed latency plus bandwidth-limited
// transfer over `channels` parallel flash channels; requests beyond that
// queue FIFO.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace vdap::hw {

struct SsdSpec {
  std::string name = "vcu-ssd";
  double read_mbps = 2000.0;    // sequential read bandwidth
  double write_mbps = 1200.0;   // sequential write bandwidth
  sim::SimDuration read_latency = sim::usec(80);
  sim::SimDuration write_latency = sim::usec(30);
  int channels = 4;             // parallel flash channels
};

struct IoReport {
  std::uint64_t io_id = 0;
  bool write = false;
  std::uint64_t bytes = 0;
  sim::SimTime submitted = 0;
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  sim::SimDuration latency() const { return finished - submitted; }
};

class SsdModel {
 public:
  SsdModel(sim::Simulator& sim, SsdSpec spec = {});

  std::uint64_t read(std::uint64_t bytes,
                     std::function<void(const IoReport&)> done);
  std::uint64_t write(std::uint64_t bytes,
                      std::function<void(const IoReport&)> done);

  const SsdSpec& spec() const { return spec_; }
  std::size_t queue_length() const { return pending_.size(); }
  int busy_channels() const { return busy_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  struct Io {
    std::uint64_t id;
    bool write;
    std::uint64_t bytes;
    sim::SimTime submitted;
    std::function<void(const IoReport&)> done;
  };

  std::uint64_t submit(bool write, std::uint64_t bytes,
                       std::function<void(const IoReport&)> done);
  void maybe_start();
  sim::SimDuration service_time(const Io& io) const;

  sim::Simulator& sim_;
  SsdSpec spec_;
  std::deque<Io> pending_;
  int busy_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace vdap::hw
