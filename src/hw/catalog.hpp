// Device catalog.
//
// Every processor the paper measures or names, as a calibrated ProcessorSpec.
// Calibration anchors (documented in DESIGN.md §5):
//   * Fig. 3 — Inception v3 (11.4 GFLOP forward pass) processing time and
//     max power on MNCS / TX2 Max-Q / TX2 Max-P / i7-6700 / Tesla V100.
//   * Table I — lane detection, Haar and TF vehicle detection on an AWS EC2
//     2.4 GHz vCPU.
// Other devices (FPGA, ASIC, phone SoC, RSU/base-station/cloud servers,
// legacy on-board controller) use representative public figures; they feed
// the scheduling/offloading experiments where only ratios matter.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/processor.hpp"

namespace vdap::hw {

/// GFLOP cost of one Inception v3 forward pass (≈5.7 GMACs ≈ 11.4 GFLOP).
constexpr double kInceptionV3Gflop = 11.4;

namespace catalog {

// --- Fig. 3 devices -------------------------------------------------------
ProcessorSpec intel_mncs();     // DSP-based, Intel Movidius NCS
ProcessorSpec jetson_tx2_maxq();// GPU#1
ProcessorSpec jetson_tx2_maxp();// GPU#2
ProcessorSpec core_i7_6700();   // CPU-based
ProcessorSpec tesla_v100();     // GPU#3

// --- Table I device -------------------------------------------------------
ProcessorSpec ec2_vcpu();       // AWS EC2 node, 2.4 GHz vCPU

// --- Other platform devices ----------------------------------------------
ProcessorSpec automotive_fpga();      // 1stHEP FPGA (preprocess/codec)
ProcessorSpec cnn_asic();             // 1stHEP inference ASIC
ProcessorSpec phone_soc();            // 2ndHEP passenger phone
ProcessorSpec legacy_obc();           // traditional on-board controller
ProcessorSpec rsu_edge_server();      // XEdge at an RSU
ProcessorSpec basestation_edge_server();  // XEdge at a base station
ProcessorSpec cloud_server();         // remote cloud instance

/// Looks a spec up by its catalog name; nullopt when unknown.
std::optional<ProcessorSpec> by_name(const std::string& name);

/// All catalog entries (for enumeration in tests/benches).
std::vector<ProcessorSpec> all();

}  // namespace catalog
}  // namespace vdap::hw
