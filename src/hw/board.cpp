#include "hw/board.hpp"

namespace vdap::hw {

ComputeDevice& VcuBoard::add_processor(ProcessorSpec spec) {
  devices_.push_back(std::make_unique<ComputeDevice>(sim_, std::move(spec)));
  return *devices_.back();
}

ComputeDevice* VcuBoard::device(const std::string& name) {
  for (auto& d : devices_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

double VcuBoard::power_now() const {
  double w = 0.0;
  for (const auto& d : devices_) w += d->power_now();
  return w;
}

double VcuBoard::energy_joules() const {
  double j = 0.0;
  for (const auto& d : devices_) j += d->energy_joules();
  return j;
}

double VcuBoard::max_power_w() const {
  double w = 0.0;
  for (const auto& d : devices_) w += d->spec().max_power_w;
  return w;
}

void populate_reference_1sthep(VcuBoard& board) {
  board.add_processor(catalog::core_i7_6700());
  board.add_processor(catalog::jetson_tx2_maxp());
  board.add_processor(catalog::automotive_fpga());
  board.add_processor(catalog::cnn_asic());
}

void populate_legacy_vehicle(VcuBoard& board) {
  board.add_processor(catalog::legacy_obc());
}

void populate_power_hungry_rig(VcuBoard& board) {
  board.add_processor(catalog::core_i7_6700());
  board.add_processor(catalog::tesla_v100());
}

}  // namespace vdap::hw
