#include "vcu/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdap::vcu {

void ResourceRegistry::join(hw::ComputeDevice* device) {
  if (device == nullptr) throw std::invalid_argument("null device");
  if (contains(device->name())) {
    throw std::invalid_argument("device '" + device->name() +
                                "' already registered");
  }
  devices_.push_back(device);
  knobs_.emplace_back();
  for (const auto& l : listeners_) l(device->name(), true);
}

void ResourceRegistry::leave(const std::string& name) {
  auto it = std::find_if(devices_.begin(), devices_.end(),
                         [&](hw::ComputeDevice* d) { return d->name() == name; });
  if (it == devices_.end()) {
    throw std::invalid_argument("device '" + name + "' not registered");
  }
  (*it)->set_online(false);  // abort in-flight work so owners can requeue
  knobs_.erase(knobs_.begin() + (it - devices_.begin()));
  devices_.erase(it);
  for (const auto& l : listeners_) l(name, false);
}

bool ResourceRegistry::contains(const std::string& name) const {
  return std::any_of(devices_.begin(), devices_.end(),
                     [&](hw::ComputeDevice* d) { return d->name() == name; });
}

hw::ComputeDevice* ResourceRegistry::find(const std::string& name) {
  for (hw::ComputeDevice* d : devices_) {
    if (d->name() == name) return d;
  }
  return nullptr;
}

std::vector<hw::ComputeDevice*> ResourceRegistry::candidates(
    const std::string& service, hw::TaskClass cls) {
  std::vector<hw::ComputeDevice*> out;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    hw::ComputeDevice* d = devices_[i];
    if (d->online() && d->spec().supports(cls) && knobs_[i].admits(service)) {
      out.push_back(d);
    }
  }
  return out;
}

std::vector<ResourceProfile> ResourceRegistry::profiles() const {
  std::vector<ResourceProfile> out;
  out.reserve(devices_.size());
  for (const hw::ComputeDevice* d : devices_) {
    out.push_back(ResourceProfile::snapshot(*d));
  }
  return out;
}

ControlKnob& ResourceRegistry::knob(const std::string& name) {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i]->name() == name) return knobs_[i];
  }
  throw std::invalid_argument("device '" + name + "' not registered");
}

}  // namespace vdap::vcu
