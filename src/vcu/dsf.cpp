#include "vcu/dsf.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace vdap::vcu {

Dsf::Dsf(sim::Simulator& sim, ResourceRegistry& registry,
         std::unique_ptr<Scheduler> scheduler, DsfOptions options)
    : sim_(sim),
      registry_(registry),
      scheduler_(std::move(scheduler)),
      options_(options) {
  if (!scheduler_) throw std::invalid_argument("dsf needs a scheduler");
}

std::uint64_t Dsf::submit(const workload::AppDag& dag, Callback done) {
  std::string why;
  if (!dag.validate(&why)) {
    throw std::invalid_argument("dag '" + dag.name() + "': " + why);
  }
  auto inst = std::make_unique<Instance>();
  inst->id = next_instance_++;
  inst->dag = options_.enable_partitioning
                  ? partition(dag, options_.partition_policy)
                  : dag;
  inst->released = sim_.now();
  inst->done = std::move(done);
  const int n = inst->dag.size();
  inst->remaining = n;
  inst->waiting_preds.resize(static_cast<std::size_t>(n));
  inst->records.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inst->waiting_preds[static_cast<std::size_t>(i)] =
        static_cast<int>(inst->dag.predecessors(i).size());
    inst->records[static_cast<std::size_t>(i)].task_id = i;
    inst->records[static_cast<std::size_t>(i)].task = inst->dag.task(i).name;
  }

  ++submitted_;
  profiles_[dag.name()].app = dag.name();
  profiles_[dag.name()].released++;

  if (telemetry::on()) {
    telemetry::Tracer& tr = telemetry::tracer();
    json::Object args;
    args["instance"] = static_cast<std::int64_t>(inst->id);
    args["tasks"] = n;
    args["scheduler"] = std::string(scheduler_->name());
    inst->telem_span =
        tr.begin(sim_.now(), "task", dag.name(), "dsf", std::move(args));
    telemetry::count("dsf.submitted", {{"app", dag.name()}});
    if (options_.enable_partitioning && n != dag.size()) {
      json::Object pargs;
      pargs["tasks_in"] = dag.size();
      pargs["tasks_out"] = n;
      tr.instant(sim_.now(), "task", "partition:" + dag.name(), "dsf",
                 std::move(pargs));
    }
  }

  scheduler_->on_release(inst->dag, inst->id);

  std::uint64_t id = inst->id;
  std::vector<int> sources = inst->dag.sources();
  instances_[id] = std::move(inst);
  for (int src : sources) {
    // dispatch() can fail synchronously and finalize (erase) the instance;
    // re-resolve it for every source.
    auto it = instances_.find(id);
    if (it == instances_.end()) break;
    dispatch(*it->second, src);
  }
  return id;
}

void Dsf::dispatch(Instance& inst, int task_id) {
  const workload::TaskSpec& t = inst.dag.task(task_id);
  TaskRecord& rec = inst.records[static_cast<std::size_t>(task_id)];
  ++rec.attempts;
  rec.submitted = sim_.now();

  if (telemetry::on()) {
    telemetry::count("vcu.place", {{"policy", scheduler_->name()}});
    if (rec.attempts > 1) telemetry::count("dsf.task_retries");
  }

  PlacementQuery q;
  q.dag = &inst.dag;
  q.instance = inst.id;
  q.task_id = task_id;
  q.candidates = registry_.candidates(inst.dag.name(), t.cls);
  hw::ComputeDevice* dev = scheduler_->place(q);
  std::uint64_t id = inst.id;
  if (dev == nullptr) {
    // No capable device on board: surface the failure through the normal
    // completion path so the caller (e.g. the elastic manager) can react.
    if (telemetry::on()) telemetry::count("dsf.placement_failed");
    inst.failed = true;
    hw::WorkReport rep;
    rep.submitted = rep.started = rep.finished = sim_.now();
    rep.ok = false;
    on_task_done(id, task_id, rep);
    return;
  }
  rec.device = dev->name();
  dev->submit({t.cls, t.gflop, inst.dag.qos().priority,
               [this, id, task_id](const hw::WorkReport& rep) {
                 on_task_done(id, task_id, rep);
               }});
}

void Dsf::on_task_done(std::uint64_t instance_id, int task_id,
                       const hw::WorkReport& rep) {
  auto it = instances_.find(instance_id);
  if (it == instances_.end()) return;  // instance already finalized
  Instance& inst = *it->second;
  TaskRecord& rec = inst.records[static_cast<std::size_t>(task_id)];

  if (!rep.ok && !inst.failed &&
      rec.attempts < options_.max_task_retries) {
    // Device aborted (went offline / left the registry): retry elsewhere.
    dispatch(inst, task_id);
    return;
  }

  rec.started = rep.started;
  rec.finished = rep.finished;
  rec.ok = rep.ok;
  --inst.remaining;

  if (telemetry::on() && !rec.device.empty()) {
    telemetry::Tracer& tr = telemetry::tracer();
    json::Object args;
    args["instance"] = static_cast<std::int64_t>(instance_id);
    args["ok"] = rep.ok;
    if (rec.attempts > 1) args["attempts"] = rec.attempts;
    tr.complete(rep.started, rep.finished - rep.started, "task", rec.task,
                "vcu/" + rec.device, std::move(args));
    telemetry::observe("dsf.task_ms", {{"device", rec.device}},
                       sim::to_millis(rep.finished - rep.started));
  }

  if (rep.ok && !inst.failed) {
    std::vector<int> ready;
    for (int s : inst.dag.successors(task_id)) {
      if (--inst.waiting_preds[static_cast<std::size_t>(s)] == 0) {
        ready.push_back(s);
      }
    }
    for (int s : ready) {
      // A synchronous dispatch failure can finalize (erase) the instance;
      // re-resolve it for every ready successor.
      auto rit = instances_.find(instance_id);
      if (rit == instances_.end()) return;
      dispatch(*rit->second, s);
    }
    // The instance may have been finalized by a failing successor above.
    if (instances_.find(instance_id) == instances_.end()) return;
  } else if (!rep.ok) {
    // The instance cannot succeed anymore. Retire every task that was never
    // dispatched; tasks already running report later through this same path
    // (their successors are covered by this retirement).
    inst.failed = true;
    for (int i = 0; i < inst.dag.size(); ++i) {
      TaskRecord& r = inst.records[static_cast<std::size_t>(i)];
      if (r.attempts == 0) {
        r.attempts = -1;  // mark retired so a second failure skips it
        --inst.remaining;
      }
    }
  }

  if (inst.remaining <= 0) finish(inst);
}

void Dsf::finish(Instance& inst) {
  DagRun run;
  run.instance = inst.id;
  run.app = inst.dag.name();
  run.released = inst.released;
  run.finished = sim_.now();
  run.ok = !inst.failed;
  const workload::QosSpec& qos = inst.dag.qos();
  run.deadline_met =
      !qos.has_deadline() || (run.latency() <= qos.deadline && run.ok);
  run.tasks = std::move(inst.records);

  ApplicationProfile& prof = profiles_[run.app];
  if (run.ok) {
    ++prof.completed;
    prof.latency_ms.add(sim::to_millis(run.latency()));
    if (!run.deadline_met) ++prof.deadline_misses;
    ++completed_;
  } else {
    ++prof.failed;
    ++failed_;
  }

  if (telemetry::on()) {
    if (inst.telem_span != 0) {
      json::Object args;
      args["ok"] = run.ok;
      args["deadline_met"] = run.deadline_met;
      args["latency_ms"] = sim::to_millis(run.latency());
      telemetry::tracer().end(sim_.now(), inst.telem_span, std::move(args));
    }
    telemetry::count(run.ok ? "dsf.completed" : "dsf.failed");
    telemetry::observe("dsf.latency_ms", {{"app", run.app}},
                       sim::to_millis(run.latency()));
  }

  scheduler_->on_complete(inst.id);
  Callback done = std::move(inst.done);
  instances_.erase(inst.id);
  if (done) done(run);
}

}  // namespace vdap::vcu
