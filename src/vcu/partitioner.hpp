// Task partitioner (§IV-B2): "DSF divides the original applications into
// some sub-tasks by fine-grained". Data-parallel classes (classic vision,
// CNN inference, preprocessing, codec) can be split into k chunks executed
// on different processors concurrently, joined by a cheap merge task.
#pragma once

#include "workload/dag.hpp"

namespace vdap::vcu {

struct PartitionPolicy {
  /// Tasks above this compute cost get split.
  double max_chunk_gflop = 2.0;
  /// Upper bound on chunks per task (merge overhead grows with k).
  int max_fanout = 4;
  /// Compute cost of the merge/reduce step, per chunk merged.
  double merge_gflop_per_chunk = 0.002;
};

/// True when `cls` is data-parallel (splittable across devices).
bool divisible(hw::TaskClass cls);

/// Returns a new DAG where every divisible task larger than the policy's
/// chunk size is replaced by ceil(gflop/max_chunk) parallel chunks feeding a
/// merge task. Non-divisible or small tasks pass through unchanged. The
/// result preserves all original precedence constraints.
workload::AppDag partition(const workload::AppDag& dag,
                           const PartitionPolicy& policy = {});

}  // namespace vdap::vcu
