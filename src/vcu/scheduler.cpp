#include "vcu/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace vdap::vcu {

hw::ComputeDevice* CpuOnlyScheduler::place(const PlacementQuery& q) {
  for (hw::ComputeDevice* d : q.candidates) {
    if (d->spec().kind == hw::ProcKind::kCpu) return d;
  }
  return q.candidates.empty() ? nullptr : q.candidates.front();
}

hw::ComputeDevice* RoundRobinScheduler::place(const PlacementQuery& q) {
  if (q.candidates.empty()) return nullptr;
  return q.candidates[next_++ % q.candidates.size()];
}

hw::ComputeDevice* GreedyEftScheduler::place(const PlacementQuery& q) {
  const workload::TaskSpec& t = q.dag->task(q.task_id);
  hw::ComputeDevice* best = nullptr;
  sim::SimTime best_finish = std::numeric_limits<sim::SimTime>::max();
  for (hw::ComputeDevice* d : q.candidates) {
    auto est = d->estimate_finish(t.cls, t.gflop);
    if (est && *est < best_finish) {
      best_finish = *est;
      best = d;
    }
  }
  return best;
}

void HeftScheduler::on_release(const workload::AppDag& dag,
                               std::uint64_t instance) {
  // Mean execution cost of each task over its candidate set.
  const int n = dag.size();
  std::vector<double> mean_cost(static_cast<std::size_t>(n), 0.0);
  std::vector<std::vector<hw::ComputeDevice*>> cands(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const workload::TaskSpec& t = dag.task(i);
    cands[static_cast<std::size_t>(i)] = fetch_(dag.name(), t.cls);
    double sum = 0.0;
    int cnt = 0;
    for (hw::ComputeDevice* d : cands[static_cast<std::size_t>(i)]) {
      double tput = d->spec().throughput(t.cls);
      if (tput > 0) {
        sum += t.gflop / tput;
        ++cnt;
      }
    }
    mean_cost[static_cast<std::size_t>(i)] = cnt > 0 ? sum / cnt : 0.0;
  }

  // Upward rank: rank(i) = mean_cost(i) + max over successors of rank(s).
  auto order = dag.topo_order();
  std::vector<double> rank(static_cast<std::size_t>(n), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int i = *it;
    double succ_max = 0.0;
    for (int s : dag.successors(i)) {
      succ_max = std::max(succ_max, rank[static_cast<std::size_t>(s)]);
    }
    rank[static_cast<std::size_t>(i)] =
        mean_cost[static_cast<std::size_t>(i)] + succ_max;
  }

  std::vector<int> by_rank(order);
  std::sort(by_rank.begin(), by_rank.end(), [&](int a, int b) {
    double ra = rank[static_cast<std::size_t>(a)];
    double rb = rank[static_cast<std::size_t>(b)];
    return ra != rb ? ra > rb : a < b;  // deterministic tie-break
  });

  // Projected per-device availability (seconds from now), advanced as we
  // assign — the classic insertion-free HEFT approximation, seeded with the
  // devices' real backlog.
  std::map<std::string, double> avail;
  auto backlog_s = [&](hw::ComputeDevice* d) {
    auto est = d->estimate_finish(hw::TaskClass::kGeneric, 0.0);
    // estimate_finish(0 gflop) ≈ device-free time; convert to relative s.
    return est ? sim::to_seconds(*est) : 0.0;
  };

  std::map<int, std::string>& plan = plans_[instance];
  // Earliest start induced by predecessors' projected finishes.
  std::vector<double> finish(static_cast<std::size_t>(n), 0.0);
  for (int i : by_rank) {
    const workload::TaskSpec& t = dag.task(i);
    hw::ComputeDevice* best = nullptr;
    double best_finish = std::numeric_limits<double>::max();
    double ready = 0.0;
    for (int p : dag.predecessors(i)) {
      ready = std::max(ready, finish[static_cast<std::size_t>(p)]);
    }
    for (hw::ComputeDevice* d : cands[static_cast<std::size_t>(i)]) {
      double tput = d->spec().throughput(t.cls);
      if (tput <= 0) continue;
      auto it = avail.find(d->name());
      double dev_free = it != avail.end() ? it->second : backlog_s(d);
      double f = std::max(ready, dev_free) + t.gflop / tput;
      if (f < best_finish) {
        best_finish = f;
        best = d;
      }
    }
    if (best == nullptr) continue;  // no candidate; DSF will fall back
    double start = std::max(ready, avail.count(best->name())
                                       ? avail[best->name()]
                                       : backlog_s(best));
    avail[best->name()] =
        start + t.gflop / best->spec().throughput(t.cls);
    finish[static_cast<std::size_t>(i)] = avail[best->name()];
    plan[i] = best->name();
  }
}

hw::ComputeDevice* HeftScheduler::place(const PlacementQuery& q) {
  auto pit = plans_.find(q.instance);
  if (pit != plans_.end()) {
    auto tit = pit->second.find(q.task_id);
    if (tit != pit->second.end()) {
      for (hw::ComputeDevice* d : q.candidates) {
        if (d->name() == tit->second) {
          if (telemetry::on()) telemetry::count("vcu.heft.plan_hits");
          return d;
        }
      }
    }
  }
  // Planned device gone (offline / plug-and-play churn): greedy fallback.
  if (telemetry::on()) telemetry::count("vcu.heft.fallbacks");
  return fallback_.place(q);
}

}  // namespace vdap::vcu
