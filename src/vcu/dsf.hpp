// DSF — the Dynamic Scheduling Framework (§IV-B2).
//
// Executes application DAGs on the registered heterogeneous resources:
// optionally partitions them, places each ready task through the configured
// Scheduler, retries tasks whose device failed or left (plug-and-play
// 2ndHEP), reduces results ("DSF will reduce the results of each task and
// return it to the upper operating system or application"), and maintains
// per-application profiles.
//
// On-board data movement between tasks is treated as free (shared
// memory/SSD on one board); inter-tier movement is the offload planner's
// job (core/offload).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "vcu/partitioner.hpp"
#include "vcu/registry.hpp"
#include "vcu/scheduler.hpp"

namespace vdap::vcu {

struct TaskRecord {
  int task_id = -1;
  std::string task;
  std::string device;
  sim::SimTime submitted = 0;
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  int attempts = 0;
  bool ok = false;
};

struct DagRun {
  std::uint64_t instance = 0;
  std::string app;
  sim::SimTime released = 0;
  sim::SimTime finished = 0;
  bool ok = false;
  bool deadline_met = true;
  std::vector<TaskRecord> tasks;

  sim::SimDuration latency() const { return finished - released; }
};

struct DsfOptions {
  bool enable_partitioning = false;
  PartitionPolicy partition_policy;
  int max_task_retries = 3;
};

class Dsf {
 public:
  using Callback = std::function<void(const DagRun&)>;

  Dsf(sim::Simulator& sim, ResourceRegistry& registry,
      std::unique_ptr<Scheduler> scheduler, DsfOptions options = {});

  /// Releases one instance of `dag` for on-board execution. `done` fires at
  /// completion (success or failure). Returns the instance id.
  std::uint64_t submit(const workload::AppDag& dag, Callback done = nullptr);

  Scheduler& scheduler() { return *scheduler_; }
  ResourceRegistry& registry() { return registry_; }

  const std::map<std::string, ApplicationProfile>& app_profiles() const {
    return profiles_;
  }

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t in_flight() const { return instances_.size(); }

 private:
  struct Instance {
    std::uint64_t id = 0;
    workload::AppDag dag;  // post-partitioning copy
    sim::SimTime released = 0;
    std::vector<int> waiting_preds;
    std::vector<TaskRecord> records;
    int remaining = 0;
    bool failed = false;
    Callback done;
    std::uint64_t telem_span = 0;  // open telemetry span, 0 = none
  };

  void dispatch(Instance& inst, int task_id);
  void on_task_done(std::uint64_t instance_id, int task_id,
                    const hw::WorkReport& rep);
  void finish(Instance& inst);

  sim::Simulator& sim_;
  ResourceRegistry& registry_;
  std::unique_ptr<Scheduler> scheduler_;
  DsfOptions options_;

  std::map<std::uint64_t, std::unique_ptr<Instance>> instances_;
  std::map<std::string, ApplicationProfile> profiles_;
  std::uint64_t next_instance_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace vdap::vcu
