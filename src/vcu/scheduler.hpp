// Task schedulers (§IV-B2 "Task scheduling"): policies that map ready tasks
// onto the heterogeneous candidate devices. Baselines (CPU-only — the
// traditional on-board controller world; round-robin) sit beside the
// dynamic policies the paper argues for (greedy earliest-finish-time, and a
// HEFT-style whole-DAG planner); bench_dsf compares them (experiment A2).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/processor.hpp"
#include "workload/dag.hpp"

namespace vdap::vcu {

/// Placement context for one ready task.
struct PlacementQuery {
  const workload::AppDag* dag = nullptr;
  std::uint64_t instance = 0;
  int task_id = -1;
  std::vector<hw::ComputeDevice*> candidates;  // online, supporting, admitted
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  /// Called once when a DAG instance is released (lets planners precompute).
  virtual void on_release(const workload::AppDag& dag, std::uint64_t instance) {
    (void)dag;
    (void)instance;
  }

  /// Picks a device for the task; nullptr when no candidate is acceptable.
  virtual hw::ComputeDevice* place(const PlacementQuery& q) = 0;

  /// Called when a DAG instance finishes (planners drop cached state).
  virtual void on_complete(std::uint64_t instance) { (void)instance; }
};

/// Pins everything onto the first CPU candidate — models the legacy
/// single-controller vehicle. Non-CPU-capable tasks fall back to any
/// candidate.
class CpuOnlyScheduler : public Scheduler {
 public:
  std::string name() const override { return "cpu-only"; }
  hw::ComputeDevice* place(const PlacementQuery& q) override;
};

/// Cycles through candidates without looking at load or speed.
class RoundRobinScheduler : public Scheduler {
 public:
  std::string name() const override { return "round-robin"; }
  hw::ComputeDevice* place(const PlacementQuery& q) override;

 private:
  std::size_t next_ = 0;
};

/// Greedy earliest-finish-time: asks every candidate for its backlog-aware
/// finish estimate and takes the minimum — the dynamic policy DSF runs by
/// default.
class GreedyEftScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-eft"; }
  hw::ComputeDevice* place(const PlacementQuery& q) override;
};

/// HEFT-style planner: at release time, ranks tasks by upward rank (mean
/// execution cost over candidates) and assigns each, in rank order, to the
/// device minimizing its projected finish; place() then serves the plan.
/// Falls back to greedy EFT for tasks missing from the plan (e.g. after a
/// device exit).
class HeftScheduler : public Scheduler {
 public:
  using ResourceFetcher =
      std::function<std::vector<hw::ComputeDevice*>(const std::string& service,
                                                    hw::TaskClass cls)>;

  explicit HeftScheduler(ResourceFetcher fetch) : fetch_(std::move(fetch)) {}

  std::string name() const override { return "heft"; }
  void on_release(const workload::AppDag& dag,
                  std::uint64_t instance) override;
  hw::ComputeDevice* place(const PlacementQuery& q) override;

  /// Drops a finished instance's plan.
  void on_complete(std::uint64_t instance) override { plans_.erase(instance); }

 private:
  ResourceFetcher fetch_;
  // instance -> task_id -> planned device name
  std::map<std::uint64_t, std::map<int, std::string>> plans_;
  GreedyEftScheduler fallback_;
};

}  // namespace vdap::vcu
