// Resource registry (§IV-B2 "Computing resources collection"): devices join
// and exit dynamically (2ndHEP passenger phones, plug-and-play USB/PCIe
// accelerators), DSF polls their real-time status, and access is gated
// through per-device control knobs ("resources accessed by applications are
// tightly controlled by DSF, which will achieve resources isolation").
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "vcu/profile.hpp"

namespace vdap::vcu {

/// Per-device access-control knob. An empty allow-set admits every service;
/// otherwise only listed services may be placed on the device.
class ControlKnob {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void allow(const std::string& service) { allowed_.insert(service); }
  void revoke(const std::string& service) { allowed_.erase(service); }
  void clear_allowlist() { allowed_.clear(); }

  bool admits(const std::string& service) const {
    return enabled_ && (allowed_.empty() || allowed_.count(service) > 0);
  }

 private:
  bool enabled_ = true;
  std::set<std::string> allowed_;
};

class ResourceRegistry {
 public:
  using Listener = std::function<void(const std::string& device, bool joined)>;

  /// Registers a device (does not take ownership — devices live on their
  /// VcuBoard or attach transiently, e.g. a passenger phone).
  void join(hw::ComputeDevice* device);

  /// Removes a device; its in-flight work is aborted via set_online(false)
  /// so submitters can requeue.
  void leave(const std::string& name);

  bool contains(const std::string& name) const;
  hw::ComputeDevice* find(const std::string& name);

  /// Online devices admitted for `service` that support `cls`, in join
  /// order (deterministic).
  std::vector<hw::ComputeDevice*> candidates(const std::string& service,
                                             hw::TaskClass cls);

  /// All registered devices (online or not).
  std::vector<hw::ComputeDevice*> devices() const { return devices_; }

  std::vector<ResourceProfile> profiles() const;

  ControlKnob& knob(const std::string& name);

  void subscribe(Listener listener) { listeners_.push_back(std::move(listener)); }

  std::size_t size() const { return devices_.size(); }

 private:
  std::vector<hw::ComputeDevice*> devices_;
  std::vector<ControlKnob> knobs_;  // parallel to devices_
  std::vector<Listener> listeners_;
};

}  // namespace vdap::vcu
