// Profiles (§IV-B2): "These dynamic status and static information
// (computing ability and matched task type) of computing resources are
// taken as their profiles" — the inputs DSF's scheduling decisions use.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hw/processor.hpp"
#include "util/stats.hpp"

namespace vdap::vcu {

/// Snapshot of one computing resource: static capability + dynamic status.
struct ResourceProfile {
  std::string device;
  hw::ProcKind kind = hw::ProcKind::kCpu;
  bool online = false;
  int slots = 0;
  int busy_slots = 0;
  std::size_t queue_length = 0;
  double utilization = 0.0;
  double power_now_w = 0.0;
  std::map<hw::TaskClass, double> gflops;  // supported classes

  static ResourceProfile snapshot(const hw::ComputeDevice& dev);
};

/// Rolling per-application statistics, fed by DSF completions; the "each
/// service's status" the paper's offloading decisions consult.
struct ApplicationProfile {
  std::string app;
  std::uint64_t released = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_misses = 0;
  util::Summary latency_ms;

  double miss_rate() const {
    return completed > 0
               ? static_cast<double>(deadline_misses) / completed
               : 0.0;
  }
};

}  // namespace vdap::vcu
