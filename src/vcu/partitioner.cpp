#include "vcu/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace vdap::vcu {

bool divisible(hw::TaskClass cls) {
  switch (cls) {
    case hw::TaskClass::kVisionClassic:
    case hw::TaskClass::kCnnInference:
    case hw::TaskClass::kPreprocess:
    case hw::TaskClass::kCodec:
      return true;
    default:
      return false;
  }
}

workload::AppDag partition(const workload::AppDag& dag,
                           const PartitionPolicy& policy) {
  workload::AppDag out(dag.name(), dag.category(), dag.qos());

  // For each original task, the node(s) in the new DAG that receive its
  // incoming edges (entries) and emit its outgoing edges (exit).
  std::vector<std::vector<int>> entries(static_cast<std::size_t>(dag.size()));
  std::vector<int> exits(static_cast<std::size_t>(dag.size()), -1);

  int split_tasks = 0;
  for (int id = 0; id < dag.size(); ++id) {
    const workload::TaskSpec& t = dag.task(id);
    int k = 1;
    if (divisible(t.cls) && t.offloadable &&
        t.gflop > policy.max_chunk_gflop) {
      k = std::min<int>(
          policy.max_fanout,
          static_cast<int>(std::ceil(t.gflop / policy.max_chunk_gflop)));
    }
    if (k <= 1) {
      int n = out.add_task(t);
      entries[static_cast<std::size_t>(id)] = {n};
      exits[static_cast<std::size_t>(id)] = n;
      continue;
    }
    // Split into k chunks plus a merge node carrying the task's output.
    std::vector<int> chunks;
    for (int c = 0; c < k; ++c) {
      workload::TaskSpec chunk = t;
      chunk.name = t.name + "#" + std::to_string(c);
      chunk.gflop = t.gflop / k;
      chunk.input_bytes = t.input_bytes / static_cast<std::uint64_t>(k);
      chunk.output_bytes = t.output_bytes;  // partial results, same order
      chunks.push_back(out.add_task(chunk));
    }
    workload::TaskSpec merge;
    merge.name = t.name + "#merge";
    merge.cls = hw::TaskClass::kGeneric;
    merge.gflop = policy.merge_gflop_per_chunk * k;
    merge.input_bytes = t.output_bytes;
    merge.output_bytes = t.output_bytes;
    merge.offloadable = t.offloadable;
    int m = out.add_task(merge);
    for (int c : chunks) out.add_edge(c, m);
    entries[static_cast<std::size_t>(id)] = chunks;
    exits[static_cast<std::size_t>(id)] = m;
    ++split_tasks;
  }
  if (telemetry::on()) {
    telemetry::count("vcu.partition.calls");
    if (split_tasks > 0) {
      telemetry::count("vcu.partition.split_tasks", split_tasks);
      telemetry::count("vcu.partition.tasks_added", out.size() - dag.size());
    }
  }

  // Re-create precedence: every original edge u→v becomes exit(u)→each
  // entry(v).
  for (int u = 0; u < dag.size(); ++u) {
    for (int v : dag.successors(u)) {
      for (int e : entries[static_cast<std::size_t>(v)]) {
        out.add_edge(exits[static_cast<std::size_t>(u)], e);
      }
    }
  }
  return out;
}

}  // namespace vdap::vcu
