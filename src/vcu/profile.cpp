#include "vcu/profile.hpp"

namespace vdap::vcu {

ResourceProfile ResourceProfile::snapshot(const hw::ComputeDevice& dev) {
  ResourceProfile p;
  p.device = dev.name();
  p.kind = dev.spec().kind;
  p.online = dev.online();
  p.slots = dev.spec().slots;
  p.busy_slots = dev.busy_slots();
  p.queue_length = dev.queue_length();
  p.utilization = dev.utilization();
  p.power_now_w = dev.power_now();
  p.gflops = dev.spec().gflops;
  return p;
}

}  // namespace vdap::vcu
