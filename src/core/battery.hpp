// Battery model + energy governor (§III-B): "this problem will become more
// serious for the electric vehicles which are constrained by supply power
// and energy capacity. Deploying the power-hungry processors locally will
// affect the mileage per discharge cycle."
//
// BatteryModel integrates the VCU board's (and radio's) draw out of a
// compute energy budget. EnergyGovernor watches the state of charge and
// flips the elastic manager's goal from minimum latency to minimum vehicle
// energy when the budget runs low — trading latency for range, exactly the
// §IV-C "or achieve other goals, such as energy efficiency" lever.
#pragma once

#include <functional>

#include "edgeos/elastic.hpp"
#include "hw/board.hpp"

namespace vdap::core {

struct BatteryOptions {
  /// Energy budget reserved for computing, joules. (A 60 kWh pack with ~1%
  /// allotted to the VCU would be 2.16 MJ; defaults are sized for short
  /// simulations.)
  double compute_budget_j = 50'000.0;
  /// Accounting period.
  sim::SimDuration sample_period = sim::seconds(1);
};

class BatteryModel {
 public:
  BatteryModel(sim::Simulator& sim, hw::VcuBoard& board,
               BatteryOptions options = {});

  /// Starts periodic integration of the board's energy into the budget.
  void start();
  void stop();

  /// Extra vehicle-side draw (e.g. radio transfers) the board meter does
  /// not see.
  void add_external_energy(double joules) { external_j_ += joules; }

  /// State of charge of the compute budget, in [0, 1].
  double soc() const;
  double consumed_j() const;

 private:
  void sample();

  sim::Simulator& sim_;
  hw::VcuBoard& board_;
  BatteryOptions options_;
  std::optional<sim::Simulator::PeriodicHandle> handle_;
  double board_baseline_j_ = 0.0;  // board energy at start()
  double board_consumed_j_ = 0.0;
  double external_j_ = 0.0;
};

struct GovernorOptions {
  /// Below this state of charge the governor switches the elastic manager
  /// to the minimum-energy goal; above `restore_soc` it switches back.
  double low_soc = 0.3;
  double restore_soc = 0.5;
  sim::SimDuration check_period = sim::seconds(5);
};

class EnergyGovernor {
 public:
  EnergyGovernor(sim::Simulator& sim, BatteryModel& battery,
                 edgeos::ElasticManager& elastic,
                 GovernorOptions options = {});

  void start();
  void stop();

  bool saving() const { return saving_; }
  int mode_switches() const { return switches_; }

  /// Fires on every goal change (true = entered energy-saving mode).
  void on_switch(std::function<void(bool)> cb) { cb_ = std::move(cb); }

 private:
  void check();

  sim::Simulator& sim_;
  BatteryModel& battery_;
  edgeos::ElasticManager& elastic_;
  GovernorOptions options_;
  std::optional<sim::Simulator::PeriodicHandle> handle_;
  bool saving_ = false;
  int switches_ = 0;
  std::function<void(bool)> cb_;
};

}  // namespace vdap::core
