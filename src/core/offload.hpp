// Whole-application offload planning — the §III architecture choice
// (in-vehicle vs edge vs cloud) as a per-release decision. This is the
// coarse-grained complement to EdgeOSv's pipeline-level elastic manager:
// one destination for the entire DAG, which is how the paper frames the
// three computing architectures it compares (and what bench_offload, A1,
// sweeps).
#pragma once

#include "edgeos/elastic.hpp"

namespace vdap::core {

struct OffloadDecision {
  net::Tier tier = net::Tier::kOnBoard;
  sim::SimDuration est_latency = 0;
  double onboard_energy_j = 0.0;
  bool feasible = false;  // false when no tier can run the DAG in time
};

/// Builds the single-tier polymorphic service for `dag`: one pipeline per
/// candidate tier placing every offloadable task there (pinned tasks stay
/// on board).
edgeos::PolymorphicService whole_dag_service(
    const workload::AppDag& dag, const std::vector<net::Tier>& tiers);

class OffloadPlanner {
 public:
  /// Uses the elastic manager's estimators and remote endpoints.
  explicit OffloadPlanner(edgeos::ElasticManager& elastic,
                          std::vector<net::Tier> candidate_tiers =
                              {net::Tier::kOnBoard, net::Tier::kRsuEdge,
                               net::Tier::kBaseStationEdge,
                               net::Tier::kCloud});

  /// Picks the destination per the elastic manager's goal (latency or
  /// vehicle energy) subject to the DAG's deadline.
  OffloadDecision decide(const workload::AppDag& dag) const;

  /// Estimate for one forced destination (nullopt when infeasible).
  std::optional<sim::SimDuration> estimate(const workload::AppDag& dag,
                                           net::Tier tier) const;

  /// Executes the DAG at the decided destination; reports like the elastic
  /// manager. Infeasible DAGs hang (retried at elastic reevaluation).
  std::uint64_t run(const workload::AppDag& dag,
                    std::function<void(const edgeos::ServiceRunReport&)> done =
                        nullptr);

  /// Arms mid-run tier failover in the underlying elastic manager: when
  /// the chosen tier's link dies mid-run, the DAG is re-decided onto a
  /// surviving tier instead of failing (see ElasticOptions::failover).
  void enable_failover(int max_failovers = 3) {
    elastic_.options().failover = true;
    elastic_.options().max_failovers = max_failovers;
  }

  const std::vector<net::Tier>& candidate_tiers() const { return tiers_; }

 private:
  edgeos::ElasticManager& elastic_;
  std::vector<net::Tier> tiers_;
};

}  // namespace vdap::core
