// Closed-loop service health (DESIGN.md §6d): adapts every final
// ServiceRunReport into the streaming SLO evaluator
// (telemetry/analysis/slo.hpp) and wires breach/recover events back into
// the platform's control knobs:
//
//   * latency/availability breach whose attribution implicates a remote
//     tier → ElasticManager::set_tier_penalty() demotes that tier in
//     choose()'s ranking, steering subsequent releases (and
//     OffloadPlanner::decide(), which routes through choose()) toward
//     healthier variants;
//   * recovery → the penalty is lifted once no breaching service blames
//     the tier anymore.
//
// The deadline feasibility gate stays on the honest estimate (see
// elastic.hpp), so health pressure re-ranks feasible pipelines but never
// hangs a feasible service. Everything runs on the sim clock off the
// observation stream — no wall time, no RNG — and the whole loop is off
// by default (PlatformConfig::health.enabled), like the tracer.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "edgeos/elastic.hpp"
#include "telemetry/analysis/slo.hpp"

namespace vdap::core {

struct HealthOptions {
  /// Master switch; when false OpenVdap builds no controller at all.
  bool enabled = false;
  telemetry::analysis::SloEvaluator::Options evaluator;
  /// Per-service targets; empty ⇒ analysis::standard_slos() (Table I).
  std::vector<telemetry::analysis::SloTarget> targets;
  /// Ranking penalty factor applied to an implicated tier while any
  /// breaching service blames it.
  double tier_penalty = 4.0;
};

class HealthController {
 public:
  HealthController(sim::Simulator& sim, edgeos::ElasticManager& elastic,
                   HealthOptions options);

  /// Observer entry point (OpenVdap wires elastic.set_run_observer here).
  void on_run(const edgeos::ServiceRunReport& report);

  /// Closes the in-progress SLO window (call at end of run before reading
  /// the compliance table).
  void flush();

  telemetry::analysis::SloEvaluator& evaluator() { return evaluator_; }
  const telemetry::analysis::SloEvaluator& evaluator() const {
    return evaluator_;
  }
  const std::vector<telemetry::analysis::HealthEvent>& events() const {
    return evaluator_.events();
  }
  /// Tiers currently demoted by this controller.
  const std::map<net::Tier, double>& penalized() const { return applied_; }

  /// Forwards every breach/recover HealthEvent (after the controller has
  /// acted on it) to an external consumer — e.g. a fleet TelemetryShipper.
  void set_event_sink(
      std::function<void(const telemetry::analysis::HealthEvent&)> sink) {
    event_sink_ = std::move(sink);
  }

 private:
  void on_event(const telemetry::analysis::HealthEvent& event);
  void reconcile_penalties();
  /// Services currently blaming `tier`, comma-joined (instant args).
  std::string blaming_services(net::Tier tier) const;

  sim::Simulator& sim_;
  edgeos::ElasticManager& elastic_;
  HealthOptions options_;
  telemetry::analysis::SloEvaluator evaluator_;
  /// Breaching service → the tier its breach implicated.
  std::map<std::string, net::Tier> blame_;
  std::map<net::Tier, double> applied_;
  std::function<void(const telemetry::analysis::HealthEvent&)> event_sink_;
};

}  // namespace vdap::core
