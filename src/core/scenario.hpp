// Drive scenarios: translate a vehicle's journey (speed profile, RSU
// coverage, neighbor presence) into the dynamic conditions the platform
// reacts to — cellular quality follows speed (the Fig. 2 mechanism), RSU
// tiers appear and disappear, and the elastic manager is re-evaluated at
// every condition change ("dynamically detect each service's status ... and
// the optimal offloading destination").
#pragma once

#include <string>
#include <vector>

#include "edgeos/elastic.hpp"
#include "net/cellular.hpp"
#include "net/coverage.hpp"
#include "net/topology.hpp"

namespace vdap::core {

struct ScenarioSegment {
  double duration_s = 60.0;
  double speed_mph = 35.0;
  bool rsu_coverage = true;
  bool neighbor_present = false;
};

/// Maps speed to the cellular condition applied to the topology, using the
/// same calibrated mobility model as Fig. 2: bandwidth scales with the
/// Doppler penalty, loss with the speed-dependent micro-loss plus the
/// expected outage fraction.
struct CellularConditionModel {
  net::LteMobilityParams lte;

  double bandwidth_factor(double speed_mph) const;
  double loss_rate(double speed_mph) const;
};

class DriveScenario {
 public:
  DriveScenario(sim::Simulator& sim, net::Topology& topo,
                std::vector<ScenarioSegment> segments,
                edgeos::ElasticManager* elastic = nullptr);

  /// Applies segment 0 immediately and schedules the rest.
  void start();

  double total_duration_s() const;
  double speed_mph_at(sim::SimTime t) const;
  const std::vector<ScenarioSegment>& segments() const { return segments_; }
  int current_segment() const { return current_; }

  /// Derives segments from road geometry: drive `speed_profile` (speed per
  /// stretch) along a route with RSU sites in `coverage`; segments split at
  /// every coverage boundary so rsu_coverage is geometric, not hand-set.
  struct SpeedStretch {
    double distance_m = 1000.0;
    double speed_mph = 35.0;
    bool neighbor_present = false;
  };
  static std::vector<ScenarioSegment> from_route(
      const std::vector<SpeedStretch>& speed_profile,
      const net::CoverageMap& coverage);

  /// A 20-minute mixed commute: city → arterial → highway → city, with an
  /// RSU-less highway stretch and a platooning neighbor in the city.
  static std::vector<ScenarioSegment> commute();
  /// Parked (engine on): everything reachable, pristine network.
  static std::vector<ScenarioSegment> parked(double duration_s = 300.0);
  /// Sustained 70 MPH highway with sparse RSUs — the hostile Fig. 2 case.
  static std::vector<ScenarioSegment> highway_sprint(double duration_s = 600.0);

 private:
  void apply(std::size_t index);

  sim::Simulator& sim_;
  net::Topology& topo_;
  std::vector<ScenarioSegment> segments_;
  edgeos::ElasticManager* elastic_;
  CellularConditionModel model_;
  int current_ = -1;
};

}  // namespace vdap::core
