#include "core/battery.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdap::core {

BatteryModel::BatteryModel(sim::Simulator& sim, hw::VcuBoard& board,
                           BatteryOptions options)
    : sim_(sim), board_(board), options_(options) {
  if (options_.compute_budget_j <= 0) {
    throw std::invalid_argument("battery budget must be positive");
  }
}

void BatteryModel::start() {
  if (handle_ && handle_->active()) return;
  board_baseline_j_ = board_.energy_joules();
  handle_ = sim_.every(options_.sample_period, [this]() { sample(); });
}

void BatteryModel::stop() {
  if (handle_) handle_->stop();
}

void BatteryModel::sample() {
  board_consumed_j_ = board_.energy_joules() - board_baseline_j_;
}

double BatteryModel::consumed_j() const {
  return board_consumed_j_ + external_j_;
}

double BatteryModel::soc() const {
  return std::clamp(1.0 - consumed_j() / options_.compute_budget_j, 0.0,
                    1.0);
}

EnergyGovernor::EnergyGovernor(sim::Simulator& sim, BatteryModel& battery,
                               edgeos::ElasticManager& elastic,
                               GovernorOptions options)
    : sim_(sim), battery_(battery), elastic_(elastic), options_(options) {
  if (options_.restore_soc < options_.low_soc) {
    throw std::invalid_argument("restore_soc must be >= low_soc");
  }
}

void EnergyGovernor::start() {
  if (handle_ && handle_->active()) return;
  handle_ = sim_.every(options_.check_period, [this]() { check(); });
}

void EnergyGovernor::stop() {
  if (handle_) handle_->stop();
}

void EnergyGovernor::check() {
  double soc = battery_.soc();
  if (!saving_ && soc < options_.low_soc) {
    saving_ = true;
    ++switches_;
    elastic_.options().goal = edgeos::Goal::kMinEnergy;
    elastic_.reevaluate();  // hung services may fit the new goal
    if (cb_) cb_(true);
  } else if (saving_ && soc > options_.restore_soc) {
    saving_ = false;
    ++switches_;
    elastic_.options().goal = edgeos::Goal::kMinLatency;
    elastic_.reevaluate();
    if (cb_) cb_(false);
  }
}

}  // namespace vdap::core
