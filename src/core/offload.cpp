#include "core/offload.hpp"

#include "telemetry/telemetry.hpp"

namespace vdap::core {

edgeos::PolymorphicService whole_dag_service(
    const workload::AppDag& dag, const std::vector<net::Tier>& tiers) {
  edgeos::PolymorphicService svc;
  svc.dag = dag;
  for (net::Tier tier : tiers) {
    edgeos::Pipeline p;
    p.name = std::string(net::to_string(tier));
    p.placement.resize(static_cast<std::size_t>(dag.size()));
    for (int i = 0; i < dag.size(); ++i) {
      p.placement[static_cast<std::size_t>(i)] =
          dag.task(i).offloadable ? tier : net::Tier::kOnBoard;
    }
    svc.pipelines.push_back(std::move(p));
  }
  return svc;
}

OffloadPlanner::OffloadPlanner(edgeos::ElasticManager& elastic,
                               std::vector<net::Tier> candidate_tiers)
    : elastic_(elastic), tiers_(std::move(candidate_tiers)) {}

OffloadDecision OffloadPlanner::decide(const workload::AppDag& dag) const {
  edgeos::PolymorphicService svc = whole_dag_service(dag, tiers_);
  const edgeos::Pipeline* best = elastic_.choose(svc);
  OffloadDecision d;
  if (best != nullptr) {
    auto ests = elastic_.estimate(svc);
    for (std::size_t i = 0; i < svc.pipelines.size(); ++i) {
      if (svc.pipelines[i].name == best->name) {
        d.tier = tiers_[i];
        d.est_latency = ests[i].latency;
        d.onboard_energy_j = ests[i].onboard_energy_j;
        d.feasible = true;
        break;
      }
    }
  }

  if (telemetry::on()) {
    // Record the decision with the per-tier scores that drove it.
    json::Object scores;
    for (const edgeos::PipelineEstimate& e : elastic_.estimate(svc)) {
      json::Object s;
      s["feasible"] = e.feasible;
      if (e.feasible) {
        s["latency_ms"] = sim::to_millis(e.latency);
        s["energy_j"] = e.onboard_energy_j;
      }
      scores[e.pipeline] = json::Value(std::move(s));
    }
    json::Object args;
    args["chosen"] =
        d.feasible ? std::string(net::to_string(d.tier)) : "(infeasible)";
    args["scores"] = json::Value(std::move(scores));
    telemetry::tracer().instant(elastic_.simulator().now(), "offload",
                                "decide:" + dag.name(), "offload",
                                std::move(args));
    if (d.feasible) {
      telemetry::count("offload.decisions",
                       {{"tier", net::to_string(d.tier)}});
    } else {
      telemetry::count("offload.infeasible");
    }
  }
  return d;
}

std::optional<sim::SimDuration> OffloadPlanner::estimate(
    const workload::AppDag& dag, net::Tier tier) const {
  edgeos::PolymorphicService svc = whole_dag_service(dag, {tier});
  auto ests = elastic_.estimate(svc);
  if (ests.empty() || !ests[0].feasible) return std::nullopt;
  return ests[0].latency;
}

std::uint64_t OffloadPlanner::run(
    const workload::AppDag& dag,
    std::function<void(const edgeos::ServiceRunReport&)> done) {
  return elastic_.run(whole_dag_service(dag, tiers_), std::move(done));
}

}  // namespace vdap::core
