// OpenVdap — the assembled platform (Fig. 4): VCU (board + registry + DSF)
// under EdgeOSv (elastic + security + sharing + privacy), with DDI and the
// libvdap API on top, wired to the two-tier network (XEdge at RSU/base
// station + cloud) and V2V collaboration. This is the object examples and
// benches instantiate — one per vehicle.
#pragma once

#include <memory>
#include <string>

#include "core/collaboration.hpp"
#include "core/health.hpp"
#include "core/offload.hpp"
#include "core/scenario.hpp"
#include "edgeos/edgeos.hpp"
#include "hw/board.hpp"
#include "libvdap/api.hpp"

namespace vdap::core {

struct PlatformConfig {
  std::string vehicle_name = "cav-0";
  std::uint64_t vehicle_secret = 0xC0FFEE;
  /// DDI disk directory; empty = a fresh directory under the system temp.
  std::string ddi_dir;
  /// Populate the reference 1stHEP (CPU+GPU+FPGA+ASIC); otherwise the
  /// caller adds processors to board() and joins them manually.
  bool reference_board = true;
  /// Create shared XEdge / cloud compute endpoints and register them with
  /// the elastic manager.
  bool with_remote_tiers = true;
  /// Instead of creating private endpoints, attach these (e.g. one RSU box
  /// shared by a whole fleet — XEdge is infrastructure, not per-vehicle).
  /// Non-null entries override with_remote_tiers for that tier.
  hw::ComputeDevice* shared_rsu = nullptr;
  hw::ComputeDevice* shared_basestation = nullptr;
  hw::ComputeDevice* shared_cloud = nullptr;
  /// Start the OBD/weather/traffic/social collectors into DDI.
  bool start_collectors = false;
  edgeos::SecurityOptions security;
  edgeos::ElasticOptions elastic;
  /// Closed-loop SLO health (core/health.hpp); disabled by default.
  HealthOptions health;
};

class OpenVdap {
 public:
  OpenVdap(sim::Simulator& sim, PlatformConfig config = {});
  ~OpenVdap();

  OpenVdap(const OpenVdap&) = delete;
  OpenVdap& operator=(const OpenVdap&) = delete;

  // --- components ----------------------------------------------------------
  sim::Simulator& simulator() { return sim_; }
  hw::VcuBoard& board() { return *board_; }
  vcu::ResourceRegistry& registry() { return registry_; }
  vcu::Dsf& dsf() { return *dsf_; }
  net::Topology& topology() { return *topo_; }
  edgeos::EdgeOSv& os() { return *os_; }
  edgeos::ElasticManager& elastic() { return os_->elastic(); }
  ddi::Ddi& ddi() { return *ddi_; }
  libvdap::LibVdap& api() { return *api_; }
  OffloadPlanner& offload() { return *offload_; }
  CollaborationCache& collaboration() { return *collab_; }
  /// nullptr unless PlatformConfig::health.enabled.
  HealthController* health() { return health_.get(); }

  /// Shared remote endpoints (nullptr when with_remote_tiers is false).
  hw::ComputeDevice* remote_device(net::Tier tier);

  /// Installs the paper's service portfolio as polymorphic services:
  /// lane detection & pedestrian alert (TEE), diagnostics, infotainment,
  /// license plate / A3 (containers).
  void install_standard_services();

  /// Shorthand for os().run_service().
  std::uint64_t run_service(
      const std::string& name,
      std::function<void(const edgeos::ServiceRunReport&)> done = nullptr) {
    return os_->run_service(name, std::move(done));
  }

  const PlatformConfig& config() const { return config_; }
  const std::string& name() const { return config_.vehicle_name; }

 private:
  sim::Simulator& sim_;
  PlatformConfig config_;
  std::string ddi_dir_;
  bool owns_ddi_dir_ = false;

  std::unique_ptr<hw::VcuBoard> board_;
  vcu::ResourceRegistry registry_;
  std::unique_ptr<vcu::Dsf> dsf_;
  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<edgeos::EdgeOSv> os_;
  std::unique_ptr<ddi::Ddi> ddi_;
  std::unique_ptr<libvdap::LibVdap> api_;
  std::unique_ptr<OffloadPlanner> offload_;
  std::unique_ptr<CollaborationCache> collab_;
  std::unique_ptr<HealthController> health_;

  std::unique_ptr<hw::ComputeDevice> rsu_server_;
  std::unique_ptr<hw::ComputeDevice> bs_server_;
  std::unique_ptr<hw::ComputeDevice> cloud_server_;

  std::unique_ptr<ddi::ObdCollector> obd_;
  std::unique_ptr<ddi::WeatherFeed> weather_;
  std::unique_ptr<ddi::TrafficFeed> traffic_;
  std::unique_ptr<ddi::SocialFeed> social_;
};

}  // namespace vdap::core
