#include "core/health.hpp"

#include "net/impair.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/telemetry.hpp"

namespace vdap::core {

namespace analysis = telemetry::analysis;

HealthController::HealthController(sim::Simulator& sim,
                                   edgeos::ElasticManager& elastic,
                                   HealthOptions options)
    : sim_(sim), elastic_(elastic), options_(std::move(options)),
      evaluator_(options_.evaluator) {
  std::vector<analysis::SloTarget> targets =
      options_.targets.empty() ? analysis::standard_slos() : options_.targets;
  for (analysis::SloTarget& t : targets) {
    evaluator_.add_target(std::move(t));
  }
  evaluator_.set_listener(
      [this](const analysis::HealthEvent& ev) { on_event(ev); });
}

void HealthController::on_run(const edgeos::ServiceRunReport& report) {
  analysis::RunObservation obs;
  obs.service = report.service;
  obs.finished = report.finished;
  obs.latency = report.latency();
  obs.ok = report.ok;
  obs.dominant_segment = std::string(report.segments.dominant());
  obs.implicated_tier = report.implicated_tier;
  evaluator_.observe(obs);
}

void HealthController::flush() { evaluator_.flush(sim_.now()); }

void HealthController::on_event(const analysis::HealthEvent& event) {
  const bool breach = event.kind == analysis::HealthEventKind::kLatencyBreach ||
                      event.kind ==
                          analysis::HealthEventKind::kAvailabilityBreach;
  if (telemetry::on()) {
    json::Object args;
    args["service"] = event.service;
    args["observed"] = event.observed;
    args["target"] = event.target;
    args["severity"] = std::string(analysis::to_string(event.severity));
    if (!event.attributed_segment.empty()) {
      args["segment"] = event.attributed_segment;
    }
    if (!event.implicated_tier.empty()) args["tier"] = event.implicated_tier;
    telemetry::tracer().instant(
        event.at, "health", std::string(analysis::to_string(event.kind)),
        "health", std::move(args));
    telemetry::count(breach ? "health.breaches" : "health.recoveries",
                     {{"service", event.service}});
  }
  // Flight plane: the black box records SLO edges (with the critical-
  // path tier attribution as the blame field) even when full capture is
  // off, and a breach raises an incident trigger.
  telemetry::flight_health(event.at, event.service, event.implicated_tier,
                           breach, event.observed);

  if (breach) {
    std::optional<net::Tier> tier =
        net::tier_from_string(event.implicated_tier);
    if (tier.has_value() && *tier != net::Tier::kOnBoard) {
      blame_[event.service] = *tier;
    }
  } else if (!evaluator_.breached(event.service)) {
    blame_.erase(event.service);
  }
  reconcile_penalties();
  if (event_sink_) event_sink_(event);
}

std::string HealthController::blaming_services(net::Tier tier) const {
  std::string out;
  for (const auto& [service, blamed] : blame_) {
    if (blamed != tier) continue;
    if (!out.empty()) out += ",";
    out += service;
  }
  return out;
}

void HealthController::reconcile_penalties() {
  std::map<net::Tier, double> desired;
  for (const auto& [service, tier] : blame_) {
    desired[tier] = options_.tier_penalty;
  }
  for (const auto& [tier, factor] : desired) {
    auto it = applied_.find(tier);
    if (it == applied_.end() || it->second != factor) {
      elastic_.set_tier_penalty(tier, factor);
      if (telemetry::on()) {
        // The "services" arg answers *why* the loop acted: which breaching
        // services blame this tier right now (vdap-report's health
        // timeline prints it next to the demotion).
        json::Object args;
        args["tier"] = std::string(net::to_string(tier));
        args["factor"] = factor;
        args["services"] = blaming_services(tier);
        telemetry::tracer().instant(sim_.now(), "health", "health.penalize",
                                    "health", std::move(args));
        telemetry::count("health.penalties");
      }
    }
  }
  for (const auto& [tier, factor] : applied_) {
    if (desired.count(tier) == 0) {
      elastic_.clear_tier_penalty(tier);
      if (telemetry::on()) {
        json::Object args;
        args["tier"] = std::string(net::to_string(tier));
        args["services"] = blaming_services(tier);  // empty: nobody blames it
        telemetry::tracer().instant(sim_.now(), "health", "health.restore",
                                    "health", std::move(args));
        telemetry::count("health.restores");
      }
    }
  }
  applied_ = std::move(desired);
}

}  // namespace vdap::core
