// V2V collaboration (§III-C, §IV): "the collaboration of vehicles can save
// computing power by avoiding executing unnecessary repeating operations"
// — e.g. two vehicles on the same road both recognizing the same plate for
// an AMBER alert (the A3 example, after [15]).
//
// Each vehicle runs a CollaborationCache of keyed results. A lookup first
// checks locally, then asks connected neighbors over DSRC (request/response
// messages on per-pair links, paying real serialization + latency + loss).
// Results carry the producing vehicle's *pseudonym*, not its identity
// (§IV-C privacy).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/link.hpp"
#include "util/json.hpp"

namespace vdap::core {

struct SharedResult {
  std::string key;
  json::Value value;
  sim::SimTime produced_at = 0;
  std::string producer_pseudonym;
  std::uint64_t result_bytes = 200;  // payload size on the wire
};

class CollaborationCache {
 public:
  CollaborationCache(sim::Simulator& sim, std::string vehicle_name,
                     std::string pseudonym);

  /// Connects two vehicles in DSRC range (bidirectional pair of links).
  static void connect(CollaborationCache& a, CollaborationCache& b);
  static void disconnect(CollaborationCache& a, CollaborationCache& b);

  /// Stores a locally computed result (shared on demand).
  void put(const std::string& key, json::Value value,
           std::uint64_t result_bytes = 200);

  /// Async lookup: local hit answers immediately; otherwise every connected
  /// neighbor is queried over DSRC and the first positive response wins.
  /// `done(nullopt)` when nobody has it.
  void lookup(const std::string& key,
              std::function<void(std::optional<SharedResult>)> done);

  /// Synchronous local-only probe.
  bool has_local(const std::string& key) const {
    return results_.count(key) > 0;
  }

  const std::string& name() const { return name_; }
  const std::string& pseudonym() const { return pseudonym_; }
  std::size_t neighbor_count() const { return peers_.size(); }
  std::size_t size() const { return results_.size(); }

  std::uint64_t local_hits() const { return local_hits_; }
  std::uint64_t remote_hits() const { return remote_hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t requests_served() const { return served_; }

 private:
  struct Peer {
    CollaborationCache* cache;
    std::unique_ptr<net::Link> link_out;  // this -> peer
  };

  /// Peer-side handler: answers a remote query (counts as served on a hit).
  std::optional<SharedResult> serve(const std::string& key);

  sim::Simulator& sim_;
  std::string name_;
  std::string pseudonym_;
  std::map<std::string, SharedResult> results_;
  std::map<std::string, Peer> peers_;  // by peer name
  std::uint64_t local_hits_ = 0;
  std::uint64_t remote_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace vdap::core
